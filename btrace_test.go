package btrace

import (
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, cfg Config) *Tracer {
	t.Helper()
	tr, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%+v): %v", cfg, err)
	}
	return tr
}

func TestOpenValidation(t *testing.T) {
	bad := []Config{
		{},
		{Cores: 4},
		{BufferBytes: 1 << 20},
		{Cores: 4, BufferBytes: 1 << 20, MaxBufferBytes: 1 << 10},
		{Cores: 4, BufferBytes: 100}, // too small for one block per core
	}
	for i, cfg := range bad {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

func TestWriteSnapshotRoundTrip(t *testing.T) {
	tr := open(t, Config{Cores: 4, BufferBytes: 1 << 20})
	w, err := tr.Writer(2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{TS: 42, Category: 9, Level: 2, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	r := tr.NewReader()
	defer r.Close()
	es := r.Snapshot()
	if len(es) != 1 {
		t.Fatalf("snapshot = %d events", len(es))
	}
	e := es[0]
	if e.Stamp != 1 || e.TS != 42 || e.Core != 2 || e.TID != 77 || e.Category != 9 ||
		e.Level != 2 || string(e.Payload) != "hello" {
		t.Fatalf("event: %+v", e)
	}
	if tr.Stats().Writes != 1 {
		t.Fatalf("stats: %+v", tr.Stats())
	}
}

func TestWriterValidation(t *testing.T) {
	tr := open(t, Config{Cores: 4, BufferBytes: 1 << 20})
	if _, err := tr.Writer(-1, 0); err == nil {
		t.Error("negative core")
	}
	if _, err := tr.Writer(4, 0); err == nil {
		t.Error("core out of range")
	}
}

func TestStampsAssignedMonotonically(t *testing.T) {
	tr := open(t, Config{Cores: 2, BufferBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, _ := tr.Writer(g%2, g)
			for i := 0; i < 500; i++ {
				if err := w.Write(Event{TS: uint64(i)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	r := tr.NewReader()
	defer r.Close()
	es := r.Snapshot()
	if len(es) != 4000 {
		t.Fatalf("snapshot = %d events, want 4000", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Stamp <= es[i-1].Stamp {
			t.Fatal("snapshot not stamp-ordered")
		}
	}
}

func TestResizePublicAPI(t *testing.T) {
	tr := open(t, Config{Cores: 2, BufferBytes: 1 << 20, MaxBufferBytes: 4 << 20, PoisonOnReclaim: true})
	if tr.Capacity() != 1<<20 {
		t.Fatalf("capacity = %d", tr.Capacity())
	}
	if err := tr.Resize(4 << 20); err != nil {
		t.Fatal(err)
	}
	if tr.Capacity() != 4<<20 {
		t.Fatalf("capacity after grow = %d", tr.Capacity())
	}
	if err := tr.Resize(8 << 20); err == nil {
		t.Error("beyond reservation: expected error")
	}
	w, _ := tr.Writer(0, 1)
	for i := 0; i < 1000; i++ {
		if err := w.Write(Event{TS: uint64(i), Payload: make([]byte, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Resize(1); err != nil { // rounds up to one block round
		t.Fatal(err)
	}
	if tr.Capacity() >= 1<<20 {
		t.Fatalf("capacity after shrink = %d", tr.Capacity())
	}
	// Still writable and readable.
	if err := w.Write(Event{TS: 1}); err != nil {
		t.Fatal(err)
	}
	r := tr.NewReader()
	defer r.Close()
	if es := r.Snapshot(); len(es) == 0 {
		t.Fatal("nothing readable after shrink")
	}
}

func TestMaxEntryPayload(t *testing.T) {
	tr := open(t, Config{Cores: 1, BufferBytes: 1 << 20})
	w, _ := tr.Writer(0, 0)
	if err := w.Write(Event{Payload: make([]byte, tr.MaxEntryPayload())}); err != nil {
		t.Fatalf("max payload write: %v", err)
	}
	if err := w.Write(Event{Payload: make([]byte, tr.MaxEntryPayload()+8)}); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestResetPublicAPI(t *testing.T) {
	tr := open(t, Config{Cores: 1, BufferBytes: 1 << 20})
	w, _ := tr.Writer(0, 0)
	for i := 0; i < 10; i++ {
		if err := w.Write(Event{}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Reset()
	r := tr.NewReader()
	defer r.Close()
	if es := r.Snapshot(); len(es) != 0 {
		t.Fatalf("%d events after Reset", len(es))
	}
}

func TestBlocksAcquiredPublic(t *testing.T) {
	tr := open(t, Config{Cores: 2, BufferBytes: 1 << 20})
	w, _ := tr.Writer(1, 5)
	for i := 0; i < 2000; i++ {
		if err := w.Write(Event{Payload: make([]byte, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	acq := tr.BlocksAcquired()
	if len(acq) != 2 || acq[1] == 0 || acq[0] != 0 {
		t.Fatalf("BlocksAcquired = %v", acq)
	}
}

func TestWriteNow(t *testing.T) {
	tr := open(t, Config{Cores: 1, BufferBytes: 1 << 20})
	w, _ := tr.Writer(0, 0)
	if err := w.WriteNow(Event{Category: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if err := w.WriteNow(Event{Category: 1}); err != nil {
		t.Fatal(err)
	}
	r := tr.NewReader()
	defer r.Close()
	es := r.Snapshot()
	if len(es) != 2 {
		t.Fatalf("%d events", len(es))
	}
	if es[1].TS <= es[0].TS {
		t.Fatalf("timestamps not increasing: %d then %d", es[0].TS, es[1].TS)
	}
}

func TestPublicPoll(t *testing.T) {
	tr := open(t, Config{Cores: 1, BufferBytes: 1 << 20})
	w, _ := tr.Writer(0, 0)
	r := tr.NewReader()
	defer r.Close()
	for i := 0; i < 5; i++ {
		if err := w.Write(Event{TS: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	es, missed := r.Poll()
	if missed != 0 || len(es) != 5 {
		t.Fatalf("poll: %d events, %d missed", len(es), missed)
	}
	if es, _ := r.Poll(); len(es) != 0 {
		t.Fatalf("idle poll returned %d", len(es))
	}
	if err := w.Write(Event{TS: 9}); err != nil {
		t.Fatal(err)
	}
	es, _ = r.Poll()
	if len(es) != 1 || es[0].Stamp != 6 {
		t.Fatalf("incremental poll: %+v", es)
	}
}
