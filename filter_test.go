package btrace

import (
	"testing"
	"testing/quick"
)

func TestFilterAllows(t *testing.T) {
	all := Filter{}
	if !all.Allows(0, 1) || !all.Allows(63, 3) || !all.Allows(200, 9) {
		t.Fatal("zero filter must allow everything")
	}
	lvl := Filter{MaxLevel: 2}
	if !lvl.Allows(5, 2) || lvl.Allows(5, 3) {
		t.Fatal("level gating")
	}
	mask, err := CategoryMask(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cat := Filter{Categories: mask}
	if !cat.Allows(3, 3) || !cat.Allows(7, 1) || cat.Allows(4, 1) || cat.Allows(64, 1) {
		t.Fatal("category gating")
	}
	if _, err := CategoryMask(56); err == nil {
		t.Fatal("category 56 should be out of range")
	}
}

func TestFilterPackRoundTrip(t *testing.T) {
	f := func(level uint8, cats uint64) bool {
		in := Filter{MaxLevel: level, Categories: cats & (1<<56 - 1)}
		return unpackFilter(in.pack()) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetFilterGatesWrites(t *testing.T) {
	tr := open(t, Config{Cores: 2, BufferBytes: 1 << 20})
	w, _ := tr.Writer(0, 1)

	// Baseline: only level-1 binder events (the always-on §2.2 posture).
	mask, _ := CategoryMask(2)
	tr.SetFilter(Filter{MaxLevel: 1, Categories: mask})
	if got := tr.GetFilter(); got.MaxLevel != 1 || got.Categories != mask {
		t.Fatalf("GetFilter: %+v", got)
	}

	writes := []struct {
		cat, level uint8
		kept       bool
	}{
		{2, 1, true},
		{2, 3, false}, // level too high
		{5, 1, false}, // category off
		{2, 1, true},
	}
	for i, wr := range writes {
		if err := w.Write(Event{TS: uint64(i), Category: wr.cat, Level: wr.level}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Filtered() != 2 {
		t.Fatalf("Filtered = %d, want 2", tr.Filtered())
	}
	r := tr.NewReader()
	defer r.Close()
	if es := r.Snapshot(); len(es) != 2 {
		t.Fatalf("retained %d events, want 2", len(es))
	}

	// The critical phase begins: open the filter fully; everything lands.
	tr.SetFilter(Filter{})
	if err := w.Write(Event{TS: 99, Category: 9, Level: 3}); err != nil {
		t.Fatal(err)
	}
	if es := r.Snapshot(); len(es) != 3 {
		t.Fatalf("after opening filter: %d events", len(es))
	}
	// Filtered events consume no stamps: the retained sequence stays
	// contiguous.
	es := r.Snapshot()
	for i := 1; i < len(es); i++ {
		if es[i].Stamp != es[i-1].Stamp+1 {
			t.Fatal("filtered events left stamp holes")
		}
	}
}

func TestQueryMatchAndSelect(t *testing.T) {
	tr := open(t, Config{Cores: 4, BufferBytes: 1 << 20})
	for c := 0; c < 4; c++ {
		w, _ := tr.Writer(c, c)
		for i := 0; i < 10; i++ {
			if err := w.Write(Event{
				TS: uint64(i * 1000), Category: uint8(i % 3), Level: uint8(i%3 + 1),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	r := tr.NewReader()
	defer r.Close()

	if got := len(r.Select(Query{})); got != 40 {
		t.Fatalf("empty query: %d, want 40", got)
	}
	coreMask := uint64(1<<1 | 1<<2)
	if got := len(r.Select(Query{Cores: coreMask})); got != 20 {
		t.Fatalf("core query: %d, want 20", got)
	}
	catMask, _ := CategoryMask(0)
	sel := r.Select(Query{Categories: catMask})
	if len(sel) != 16 { // i in {0,3,6,9} per core
		t.Fatalf("category query: %d, want 16", len(sel))
	}
	for _, e := range sel {
		if e.Category != 0 {
			t.Fatal("category filter leaked")
		}
	}
	if got := len(r.Select(Query{MinTS: 5000, MaxTS: 7000})); got != 12 {
		t.Fatalf("time query: %d, want 12", got)
	}
	if got := len(r.Select(Query{MaxLevel: 1})); got != 16 {
		t.Fatalf("level query: %d, want 16", got)
	}
	// Composite.
	got := r.Select(Query{Cores: 1 << 3, MaxLevel: 1, MinTS: 1})
	if len(got) != 3 {
		t.Fatalf("composite query: %d, want 3", len(got))
	}
}
