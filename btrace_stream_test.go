package btrace

import (
	"encoding/binary"
	"sort"
	"sync"
	"testing"
)

func TestReaderNextBatch(t *testing.T) {
	tr, err := Open(Config{Cores: 2, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.Writer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const total = 100
	for i := 0; i < total; i++ {
		if err := w.Write(Event{TS: uint64(i), Category: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}

	r := tr.NewReader()
	defer r.Close()
	want := r.Snapshot()
	if len(want) != total {
		t.Fatalf("snapshot has %d events, want %d", len(want), total)
	}

	// A small batch forces delivery across multiple Next calls.
	batch := make([]Event, 7)
	var got []Event
	for {
		n, missed, err := r.Next(batch)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if missed != 0 {
			t.Fatalf("missed = %d, want 0", missed)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			e := batch[i]
			e.Payload = append([]byte(nil), e.Payload...) // batch is borrowed
			got = append(got, e)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Next delivered %d events, Snapshot %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Stamp != want[i].Stamp || string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("event %d: Next %+v != Snapshot %+v", i, got[i], want[i])
		}
	}

	// New writes arrive on the same reader without re-delivery.
	if err := w.Write(Event{TS: 999, Category: 1}); err != nil {
		t.Fatal(err)
	}
	n, _, err := r.Next(batch)
	if err != nil || n != 1 || batch[0].Stamp != total+1 {
		t.Fatalf("incremental Next = (%d, %v), stamp %d; want 1 event with stamp %d",
			n, err, batch[0].Stamp, total+1)
	}
}

func TestReaderEventsIterator(t *testing.T) {
	tr, err := Open(Config{Cores: 1, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tr.Writer(0, 1)
	for i := 0; i < 20; i++ {
		if err := w.Write(Event{TS: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := tr.NewReader()
	defer r.Close()
	var stamps []uint64
	for e, err := range r.Events(make([]Event, 6)) {
		if err != nil {
			t.Fatalf("iterator error: %v", err)
		}
		stamps = append(stamps, e.Stamp)
	}
	if len(stamps) != 20 {
		t.Fatalf("iterator yielded %d events, want 20", len(stamps))
	}
	for i, s := range stamps {
		if s != uint64(i+1) {
			t.Fatalf("stamp[%d] = %d, want %d", i, s, i+1)
		}
	}
}

// TestStampBatchUniqueAndMonotonic exercises the batched stamp
// reservation: stamps must stay globally unique and strictly increasing
// per Writer even when every Writer reserves ranges of 64.
func TestStampBatchUniqueAndMonotonic(t *testing.T) {
	tr, err := Open(Config{Cores: 8, BufferBytes: 4 << 20, StampBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers  = 8
		perEach  = 500
		seqBytes = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, err := tr.Writer(g, g+1)
			if err != nil {
				t.Error(err)
				return
			}
			payload := make([]byte, seqBytes)
			for i := 0; i < perEach; i++ {
				// The payload records the writer's own sequence number so
				// the readout can reconstruct per-writer write order.
				binary.LittleEndian.PutUint64(payload, uint64(i))
				if err := w.Write(Event{TS: uint64(i), Payload: payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	r := tr.NewReader()
	defer r.Close()
	es := r.Snapshot()
	if len(es) != writers*perEach {
		t.Fatalf("retained %d events, want %d (buffer too small for the test)", len(es), writers*perEach)
	}
	type rec struct{ seq, stamp uint64 }
	seen := make(map[uint64]bool, len(es))
	perWriter := make(map[uint32][]rec)
	for _, e := range es {
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d", e.Stamp)
		}
		seen[e.Stamp] = true
		perWriter[e.TID] = append(perWriter[e.TID], rec{binary.LittleEndian.Uint64(e.Payload), e.Stamp})
	}
	if len(perWriter) != writers {
		t.Fatalf("saw %d writers, want %d", len(perWriter), writers)
	}
	for tid, recs := range perWriter {
		sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
		for i := 1; i < len(recs); i++ {
			if recs[i].stamp <= recs[i-1].stamp {
				t.Fatalf("writer %d: stamp %d (seq %d) not above %d (seq %d)",
					tid, recs[i].stamp, recs[i].seq, recs[i-1].stamp, recs[i-1].seq)
			}
		}
	}
}

// TestStampBatchDefaultKeepsGlobalOrder pins the default: without
// StampBatch the global stamp sequence matches cross-thread write order
// (one atomic add per write), which Poll's gap accounting relies on.
func TestStampBatchDefaultKeepsGlobalOrder(t *testing.T) {
	tr, err := Open(Config{Cores: 1, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tr.Writer(0, 1)
	for i := 0; i < 50; i++ {
		if err := w.Write(Event{TS: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := tr.NewReader()
	defer r.Close()
	es := r.Snapshot()
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("stamp[%d] = %d, want %d", i, e.Stamp, i+1)
		}
	}
}

// BenchmarkWritePathStampBatch measures the write-path contention win of
// batched stamp reservation: concurrent writers on a shared tracer, one
// atomic add per write (batch=1) versus one per 64 writes.
func BenchmarkWritePathStampBatch(b *testing.B) {
	for _, batch := range []int{1, 64} {
		name := "batch=1"
		if batch != 1 {
			name = "batch=64"
		}
		b.Run(name, func(b *testing.B) {
			tr, err := Open(Config{Cores: 8, BufferBytes: 8 << 20, StampBatch: batch})
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 32)
			var nextID int64
			var mu sync.Mutex
			b.ReportAllocs()
			// Open's buffer setup must not be billed to the measured
			// write loop; at small -benchtime it dominates and skews the
			// batch=1 vs batch=64 comparison.
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				id := int(nextID)
				nextID++
				mu.Unlock()
				w, err := tr.Writer(id%8, id+1)
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					if err := w.Write(Event{TS: 1, Payload: payload}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
