// Framedrop reproduces the paper's §6 "Frame drops" case study: a
// misbehaving thread busy-loops for a while, silently terminates, the
// accumulated heat later triggers the thermal daemon to downclock the CPU,
// and frames start dropping — seconds after the culprit is gone.
//
// The root cause can only be found if the tracer still holds the events
// from long before the symptom. This example runs the incident timeline
// through BTrace and then performs the analysis a developer would: walk
// back from the frame-drop events to the frequency change, the thermal
// trigger, and finally the terminated busy-loop thread.
package main

import (
	"fmt"
	"log"

	"btrace"
)

// Event categories for this scenario.
const (
	catSched   = 1 // scheduler activity (high volume background noise)
	catBusy    = 2 // the misbehaving thread's activity bursts
	catThermal = 3 // temperature sensor readings
	catFreq    = 4 // CPU frequency changes
	catFrame   = 5 // frame presentation (missed = dropped)
)

func main() {
	tr, err := btrace.Open(btrace.Config{Cores: 8, BufferBytes: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}

	const (
		nsPerMs   = 1_000_000
		totalMs   = 20_000 // a 20-second window
		busyEndMs = 6_000  // the culprit dies at t=6 s
		dropAtMs  = 14_000 // frames start dropping at t=14 s
	)

	writers := make([]*btrace.Writer, 8)
	for c := range writers {
		if writers[c], err = tr.Writer(c, 100+c); err != nil {
			log.Fatal(err)
		}
	}
	write := func(core int, ms int, cat uint8, payload string) {
		if err := writers[core].Write(btrace.Event{
			TS: uint64(ms) * nsPerMs, Category: cat, Level: 3, Payload: []byte(payload),
		}); err != nil {
			log.Fatal(err)
		}
	}

	temp := 35.0
	freqMHz := 2800
	for ms := 0; ms < totalMs; ms++ {
		// Background scheduling noise on every core, every millisecond —
		// the volume that would push old events out of a smaller or
		// fragmented buffer.
		for c := 0; c < 8; c++ {
			write(c, ms, catSched, "sched_switch")
		}
		// The culprit busy-loops on core 7 until it silently terminates.
		if ms < busyEndMs {
			write(7, ms, catBusy, "busyloop tid=4242 util=100%")
			temp += 0.004
		} else {
			temp -= 0.0005 // slow cool-down: heat lingers
		}
		// Thermal samples every 100 ms.
		if ms%100 == 0 {
			write(0, ms, catThermal, fmt.Sprintf("temp=%.1fC", temp))
		}
		// The thermal daemon downclocks when the (delayed) average
		// crosses its threshold.
		if freqMHz == 2800 && ms > busyEndMs && temp > 50 && ms >= dropAtMs-400 {
			freqMHz = 1400
			write(0, ms, catFreq, "cpufreq 2800MHz->1400MHz reason=thermal")
		}
		// Frames every ~16 ms; at the reduced frequency some miss.
		if ms%16 == 0 {
			if freqMHz < 2000 && ms%48 == 0 {
				write(1, ms, catFrame, "frame DROPPED")
			} else {
				write(1, ms, catFrame, "frame ok")
			}
		}
	}

	// --- the developer's root-cause walk ---
	r := tr.NewReader()
	defer r.Close()
	events := r.Snapshot()
	fmt.Printf("retained %d events spanning %.1fs of the %.0fs incident\n",
		len(events), spanSec(events), float64(totalMs)/1000)

	var firstDrop, freqChange, lastBusy *btrace.Event
	for i := range events {
		e := &events[i]
		switch {
		case e.Category == catFrame && string(e.Payload) == "frame DROPPED" && firstDrop == nil:
			firstDrop = e
		case e.Category == catFreq:
			freqChange = e
		case e.Category == catBusy:
			lastBusy = e
		}
	}
	if firstDrop == nil {
		log.Fatal("no dropped frame in the trace")
	}
	fmt.Printf("symptom:    first dropped frame at t=%.1fs\n", sec(firstDrop))
	if freqChange != nil {
		fmt.Printf("mechanism:  %s at t=%.1fs\n", freqChange.Payload, sec(freqChange))
	}
	if lastBusy != nil {
		fmt.Printf("root cause: busy-loop thread last seen at t=%.1fs (%.1fs BEFORE the symptom)\n",
			sec(lastBusy), sec(firstDrop)-sec(lastBusy))
		fmt.Println("verdict:    root cause retained — the long-duration causal chain is intact")
	} else {
		fmt.Println("verdict:    root cause already overwritten — a shorter latest fragment would miss it")
	}
}

func sec(e *btrace.Event) float64 { return float64(e.TS) / 1e9 }

func spanSec(es []btrace.Event) float64 {
	if len(es) == 0 {
		return 0
	}
	return (float64(es[len(es)-1].TS) - float64(es[0].TS)) / 1e9
}
