// Serverscale demonstrates the paper's §7 outlook: on many-core servers
// most work runs on a few cores at a time but migrates frequently, so
// per-core tracers must reserve capacity on every core and waste most of
// it. BTrace's dynamically assigned blocks follow the work.
//
// The example runs a migrating task set on a 64-core machine twice — once
// into BTrace, once into a statically partitioned per-core split of the
// same total budget (implemented here with one small BTrace instance per
// core, which is exactly what a per-core tracer is) — and compares how
// much of the most recent activity each retains.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"btrace"
)

const (
	cores    = 64
	budget   = 8 << 20
	events   = 400_000
	hotCores = 6 // only a few cores are busy at any time
)

// run replays the migrating workload; write is called with (core, seq).
func run(write func(core int, seq uint64)) {
	rng := rand.New(rand.NewSource(42))
	hot := make([]int, hotCores)
	for i := range hot {
		hot[i] = rng.Intn(cores)
	}
	for seq := uint64(1); seq <= events; seq++ {
		// Tasks migrate: every few thousand events the hot set shifts.
		if seq%5000 == 0 {
			hot[rng.Intn(hotCores)] = rng.Intn(cores)
		}
		write(hot[rng.Intn(hotCores)], seq)
	}
}

func main() {
	payload := make([]byte, 64)

	// --- BTrace: one global buffer, blocks follow the hot cores ---
	global, err := btrace.Open(btrace.Config{Cores: cores, BufferBytes: budget})
	if err != nil {
		log.Fatal(err)
	}
	gw := make([]*btrace.Writer, cores)
	for c := range gw {
		if gw[c], err = global.Writer(c, c); err != nil {
			log.Fatal(err)
		}
	}
	run(func(core int, seq uint64) {
		if err := gw[core].Write(btrace.Event{TS: seq, Payload: payload}); err != nil {
			log.Fatal(err)
		}
	})
	gr := global.NewReader()
	defer gr.Close()
	ges := gr.Snapshot()
	gLatest := latestRun(stamps(ges))

	// --- per-core split: budget/64 per core, capacity stranded on idle
	// cores (what ftrace-style tracers do) ---
	perCore := make([]*btrace.Tracer, cores)
	pw := make([]*btrace.Writer, cores)
	var seqs [cores][]uint64
	for c := range perCore {
		if perCore[c], err = btrace.Open(btrace.Config{Cores: 1, BufferBytes: budget / cores}); err != nil {
			log.Fatal(err)
		}
		if pw[c], err = perCore[c].Writer(0, c); err != nil {
			log.Fatal(err)
		}
	}
	run(func(core int, seq uint64) {
		if err := pw[core].Write(btrace.Event{TS: seq, Payload: payload}); err != nil {
			log.Fatal(err)
		}
	})
	for c := range perCore {
		r := perCore[c].NewReader()
		for _, e := range r.Snapshot() {
			seqs[c] = append(seqs[c], e.TS) // TS carries the global seq
		}
		r.Close()
	}
	var merged []uint64
	for c := range seqs {
		merged = append(merged, seqs[c]...)
	}
	pLatest := latestRun(merged)

	fmt.Printf("64-core server, %d migrating events, %d MiB total budget:\n", events, budget>>20)
	fmt.Printf("  btrace (global blocks):   latest continuous run %7d events\n", gLatest)
	fmt.Printf("  per-core split (1/64 ea): latest continuous run %7d events\n", pLatest)
	if pLatest > 0 {
		fmt.Printf("  => %.1fx longer continuous trace with dynamically assigned blocks\n",
			float64(gLatest)/float64(pLatest))
	}
	fmt.Println("  (per-core tracers strand capacity on the", cores-hotCores, "cold cores; §7)")
}

// stamps extracts the global sequence numbers (carried in TS).
func stamps(es []btrace.Event) []uint64 {
	out := make([]uint64, len(es))
	for i := range es {
		out[i] = es[i].TS
	}
	return out
}

// latestRun returns the length of the run of consecutive sequence numbers
// ending at the maximum retained one.
func latestRun(ss []uint64) int {
	if len(ss) == 0 {
		return 0
	}
	present := make(map[uint64]bool, len(ss))
	var maxS uint64
	for _, s := range ss {
		present[s] = true
		if s > maxS {
			maxS = s
		}
	}
	n := 0
	for s := maxS; s > 0 && present[s]; s-- {
		n++
	}
	return n
}
