// Silentdefect reproduces the paper's §6 "Silent defects" case study: a
// watchdog daemon follows the live trace and reports when a subsystem
// goes quiet past its timeout. The paper's example: after a userspace
// driver hot-unplugs a CPU, threads bound to it fail to migrate in a
// corner case and starve; nothing crashes — the defect is only visible as
// 20+ seconds of silence, and diagnosing it requires the trace covering
// the whole timeout window.
package main

import (
	"fmt"
	"log"

	"btrace"
	"btrace/internal/collect"
	"btrace/internal/tracer"
)

const (
	catSched   = 1
	catFreeze  = 2 // freeze/wake heartbeats the daemon watches
	catHotplug = 3
	catMigrate = 4
)

func main() {
	tr, err := btrace.Open(btrace.Config{Cores: 8, BufferBytes: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// The daemon follows the buffer incrementally and fires when the
	// freeze heartbeat is silent for >20 s (the §6 timeout).
	reader := tr.NewReader()
	defer reader.Close()
	daemon, err := collect.New(collect.Config{
		Source:   pollAdapter{reader},
		Triggers: []collect.Trigger{&collect.Watchdog{Category: catFreeze, TimeoutNs: 20e9}},
		// Keep enough rolling context to span the whole timeout window.
		MaxWindowEvents: 500_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	writers := make([]*btrace.Writer, 8)
	for c := range writers {
		if writers[c], err = tr.Writer(c, 300+c); err != nil {
			log.Fatal(err)
		}
	}
	write := func(core, ms int, cat uint8, payload string) {
		if err := writers[core].Write(btrace.Event{
			TS: uint64(ms) * 1e6, Category: cat, Level: 2, Payload: []byte(payload),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// 40 seconds of system activity. At t=12 s a userspace driver
	// hot-unplugs core 6; the bound worker fails to migrate (the corner
	// case) and the freeze heartbeat it was responsible for stops.
	var dump *collect.Dump
	for ms := 0; ms < 40_000 && dump == nil; ms++ {
		for c := 0; c < 8; c++ {
			if c == 6 && ms >= 12_000 {
				continue // the unplugged core runs nothing
			}
			write(c, ms, catSched, "sched_switch")
		}
		if ms < 12_000 && ms%1000 == 0 {
			write(6, ms, catFreeze, "freeze heartbeat ok")
		}
		if ms == 12_000 {
			write(0, ms, catHotplug, "userspace driver: hot-unplug cpu6")
			write(0, ms, catMigrate, "migrate bound threads off cpu6: 3 moved, tid=888 FAILED (bound)")
		}
		// The daemon polls every 500 ms of virtual time.
		if ms%500 == 0 {
			dump = daemon.Step()
		}
	}
	if dump == nil {
		dump = daemon.Step()
	}
	if dump == nil {
		log.Fatal("watchdog never fired")
	}

	fmt.Printf("watchdog fired: %s\n", dump.Reason)
	fmt.Printf("dump contains %d events of context\n", len(dump.Events))

	// Root-cause walk inside the dumped window: find the last heartbeat,
	// then the hotplug and the failed migration that explain the silence.
	var lastBeat, hotplug, failedMigrate string
	var beatTS, hotplugTS uint64
	for _, e := range dump.Events {
		switch e.Category {
		case catFreeze:
			lastBeat, beatTS = string(e.Payload), e.TS
		case catHotplug:
			hotplug, hotplugTS = string(e.Payload), e.TS
		case catMigrate:
			failedMigrate = string(e.Payload)
		}
	}
	fmt.Printf("last heartbeat: %q at t=%.1fs\n", lastBeat, float64(beatTS)/1e9)
	if hotplug != "" {
		fmt.Printf("root cause:     %q at t=%.1fs\n", hotplug, float64(hotplugTS)/1e9)
		fmt.Printf("mechanism:      %q\n", failedMigrate)
		fmt.Println("verdict:        the bound thread starved after the hot-unplug — found because")
		fmt.Println("                the trace still covered the entire 20s timeout window")
	}
}

// pollAdapter adapts the public Reader to the collector's Poller.
type pollAdapter struct{ r *btrace.Reader }

func (p pollAdapter) Poll() ([]tracer.Entry, uint64) {
	// btrace.Event is an alias of tracer.Entry, so no conversion is needed.
	return p.r.Poll()
}
