// Chaos: provoke the failures the paper's availability mechanisms exist
// for — a preemption storm inside the allocate→confirm window, a writer
// frozen holding unconfirmed bytes, a flaky poll source and a dump sink
// that dies — and watch the tracer and the supervised collector absorb
// them. Every fault is planned from one seed: rerun with the same -seed
// and the exact same schedule is injected.
//
//	go run ./examples/chaos -seed 42
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	"btrace/internal/collect"
	"btrace/internal/core"
	"btrace/internal/faults"
	"btrace/internal/sim"
	"btrace/internal/tracer"
)

func main() {
	seed := flag.Int64("seed", 42, "root fault-plan seed")
	flag.Parse()
	in := faults.New(*seed)

	fmt.Printf("=== chaos plan seed %d ===\n\n", *seed)
	stormAndStraggler(in)
	supervisedPipeline(in)

	fmt.Println("injected fault schedule (deterministic for this seed):")
	for _, h := range in.Hooks() {
		s := in.Schedule(h)
		if len(s) > 6 {
			s = s[:6]
		}
		fmt.Printf("  %-28s %v…\n", h, s)
	}
}

// stormAndStraggler drives a preemption storm over every writer while one
// thread is frozen mid-write, then verifies the buffer invariants.
func stormAndStraggler(in *faults.Injector) {
	m, err := sim.NewMachine(sim.Topology{Middle: 4})
	if err != nil {
		log.Fatal(err)
	}
	b, err := core.New(core.Options{Cores: 4, BlockSize: 1024, ActiveBlocks: 8, Ratio: 4})
	if err != nil {
		log.Fatal(err)
	}
	storm := in.PreemptStorm(0.3)
	str := in.Straggler(0, 5) // freeze thread 0 the 5th time it is about to confirm
	chain := faults.NewChain(str, storm)

	var stamp atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		th, err := m.NewThread(sim.ThreadConfig{ID: g, Core: g % 4})
		if err != nil {
			log.Fatal(err)
		}
		th.SetFaultController(chain)
		wg.Add(1)
		go func(g int, th *sim.Thread) {
			defer wg.Done()
			th.Acquire()
			defer th.Release()
			for i := 0; i < 2000; i++ {
				s := stamp.Add(1)
				e := &tracer.Entry{Stamp: s, TS: s, TID: uint32(g), Payload: []byte("ev")}
				if err := b.Write(th, e); err != nil {
					log.Fatalf("write: %v", err)
				}
			}
		}(g, th)
	}
	for !str.Stalled() {
		runtime.Gosched()
	}
	fmt.Println("thread 0 frozen holding unconfirmed bytes; others keep writing…")
	str.Release() // the "kernel" reaps the frozen writer
	wg.Wait()

	st := b.Stats()
	rep := b.Verify()
	fmt.Printf("storm forced %d preemptions; %d blocks skipped around the straggler\n",
		storm.Fired(), st.SkippedBlocks)
	fmt.Printf("invariant readout: ok=%v (%d blocks, %d entries recovered)\n\n",
		rep.Ok(), rep.Blocks, rep.Entries)
}

// supervisedPipeline runs the self-healing collector over a flaky source
// and a sink that dies permanently partway through.
func supervisedPipeline(in *faults.Injector) {
	b, err := core.New(core.Options{Cores: 1, BlockSize: 512, ActiveBlocks: 2, Ratio: 2, MaxRatio: 8})
	if err != nil {
		log.Fatal(err)
	}
	r := b.NewReader()
	defer r.Close()
	src := in.FlakyPoller(r, 0.3, 0.4) // 30% failed polls, 40% torn batches
	var dst bytes.Buffer
	sink := in.FlakySink(&dst, 2, 6) // 2 transient failures, dead after 6 writes

	s, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source:   src,
		Triggers: []collect.Trigger{&collect.LossDetector{Tolerance: 8}},
		Sink:     sink,
		Resizer:  b,
		MaxRatio: 8, GrowAfter: 2, ShrinkAfter: 16,
		Seed: in.Seed(),
	})
	if err != nil {
		log.Fatal(err)
	}

	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	var stamp uint64
	for step := 0; step < 120; step++ {
		burst := 300 // overruns the small buffer: sustained loss pressure
		if step > 60 {
			burst = 2 // pressure subsides
		}
		for i := 0; i < burst; i++ {
			stamp++
			if err := b.Write(p, &tracer.Entry{Stamp: stamp, TS: stamp, TID: 1, Payload: []byte("x")}); err != nil {
				log.Fatal(err)
			}
		}
		s.Step()
	}
	st := s.Stats()
	h := s.Health()
	fmt.Println("supervised pipeline over a flaky source and a dying sink:")
	fmt.Printf("  polls ok/failed:       %d/%d (backoff steps %d)\n", st.Polls, st.PollErrors, st.PollBackoffSteps)
	fmt.Printf("  dumps produced:        %d (delivered %d, spilled %d, dropped %d)\n",
		st.Dumps, st.DumpsWritten, st.Spilled, st.SpillDropped)
	fmt.Printf("  adaptive resize:       %d grows, %d shrinks (ratio now %d)\n", st.Grows, st.Shrinks, b.Ratio())
	fmt.Printf("  health: sinkFailed=%v sourceWedged=%v spillRing=%d\n\n", h.SinkFailed, h.SourceWedged, h.SpilledDumps)
}
