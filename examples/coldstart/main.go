// Coldstart reproduces the paper's §2.2 Observation 3 workflow: a phone
// keeps only a small always-on tracing buffer, grows it when an anomaly
// detector flags an app cold start, captures the launch in full detail,
// dumps the window of interest, and shrinks the buffer back — all while
// producers keep writing, with no synchronization added to their fast
// path (implicit reclaiming, §3.3/§4.4).
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"btrace"
)

func main() {
	// Reserve 16 MiB of address space but start with a small 2 MiB
	// always-on buffer (the paper reserves the maximum via mmap).
	tr, err := btrace.Open(btrace.Config{
		Cores:          8,
		BufferBytes:    2 << 20,
		MaxBufferBytes: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("always-on capacity: %s\n", mb(tr.Capacity()))

	// The always-on posture: only level-1 events are recorded (the
	// filter is the runtime equivalent of atrace's category switches).
	tr.SetFilter(btrace.Filter{MaxLevel: 1})

	// Background producers run for the whole session, always emitting the
	// full level-3 instrumentation; the filter decides what is recorded.
	var (
		phase  atomic.Uint32 // 0 idle, 1 cold start, 2 done
		wg     sync.WaitGroup
		writes [3]atomic.Uint64
	)
	stop := make(chan struct{})
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w, err := tr.Writer(c, 10+c)
			if err != nil {
				log.Fatal(err)
			}
			var ts uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := phase.Load()
				ts += 1000
				// Instrumentation emits every level; what sticks is up to
				// the filter.
				for level := uint8(1); level <= 3; level++ {
					payload := 24 * int(level)
					if err := w.Write(btrace.Event{
						TS: ts, Category: uint8(c), Level: level,
						Payload: make([]byte, payload),
					}); err != nil {
						log.Fatal(err)
					}
				}
				writes[p].Add(1)
			}
		}(c)
	}

	waitWrites := func(p uint32, n uint64) {
		for writes[p].Load() < n {
		}
	}

	// Phase 0: idle baseline.
	waitWrites(0, 50_000)

	// The anomaly detector fires: grow to 16 MiB and open the filter to
	// full level-3 detail for the cold start.
	if err := tr.Resize(16 << 20); err != nil {
		log.Fatal(err)
	}
	tr.SetFilter(btrace.Filter{}) // record everything
	fmt.Printf("cold start detected -> grew to %s, filter opened to level 3 (producers never paused)\n", mb(tr.Capacity()))
	phase.Store(1)
	waitWrites(1, 100_000)

	// Launch finished: dump the detailed window...
	phase.Store(2)
	r := tr.NewReader()
	events := r.Snapshot()
	detail := 0
	for _, e := range events {
		if e.Level == 3 {
			detail++
		}
	}
	fmt.Printf("dumped %d events, %d of them level-3 cold-start detail\n", len(events), detail)
	r.Close()

	// ...and shrink back to the always-on footprint, closing the filter
	// again. Shrinking waits for producers implicitly (a filled block is
	// an exited epoch) and for readers via epoch-based reclamation; it
	// adds nothing to the producers' fast path.
	tr.SetFilter(btrace.Filter{MaxLevel: 1})
	if err := tr.Resize(2 << 20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shrunk back to %s, filter back to level 1 (%d events filtered so far)\n",
		mb(tr.Capacity()), tr.Filtered())

	waitWrites(2, 20_000)
	close(stop)
	wg.Wait()

	st := tr.Stats()
	fmt.Printf("session total: %d writes, %d block advancements, %d skipped blocks\n",
		st.Writes, st.Advancements, st.SkippedBlocks)
	fmt.Println("the buffer served three phases without ever blocking a producer")
}

func mb(b int) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }
