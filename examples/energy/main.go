// Energy reproduces the paper's §6 "Energy defects" case study: in some
// scenarios the middle cores enter a deep idle state, user-experience-
// critical render threads get scheduled onto them, time out while the
// core is still waking, and are prematurely migrated to the big cores by
// an over-aggressive scheduling strategy. Each migration is cheap; the
// energy cost only shows up statistically over a long window.
//
// The example generates the long window of scheduling/idle/migration
// events, then runs the statistical analysis the paper describes:
// counting wake-timeout migrations per scenario phase and attributing the
// excess energy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"btrace"
)

const (
	catSched   = 1
	catIdle    = 2
	catMigrate = 3
	catEnergy  = 4
)

func main() {
	tr, err := btrace.Open(btrace.Config{Cores: 12, BufferBytes: 12 << 20})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	writers := make([]*btrace.Writer, 12)
	for c := range writers {
		if writers[c], err = tr.Writer(c, 200+c); err != nil {
			log.Fatal(err)
		}
	}
	write := func(core, ms int, cat uint8, payload string) {
		if err := writers[core].Write(btrace.Event{
			TS: uint64(ms) * 1_000_000, Category: cat, Level: 3, Payload: []byte(payload),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Two 15-second phases: a healthy one and one with the buggy
	// deep-idle + aggressive-migration interplay on the middle cores
	// (cores 4..9; 10-11 are big).
	const phaseMs = 15_000
	deepIdle := [12]bool{}
	for ms := 0; ms < 2*phaseMs; ms++ {
		buggy := ms >= phaseMs
		for c := 0; c < 12; c++ {
			if ms%1 == 0 {
				write(c, ms, catSched, "sched_switch")
			}
		}
		// Middle cores toggle idle states; in the buggy phase they
		// prefer the deep state.
		if ms%50 == 0 {
			for c := 4; c <= 9; c++ {
				state := "C1"
				if buggy && rng.Float64() < 0.7 {
					state = "C3-deep"
					deepIdle[c] = true
				} else {
					deepIdle[c] = false
				}
				write(c, ms, catIdle, "idle enter "+state)
			}
		}
		// A render thread is placed on a middle core every 10 ms. If the
		// core is in deep idle, the wake takes too long, the scheduler
		// times out and migrates the thread to a big core.
		if ms%10 == 0 {
			c := 4 + rng.Intn(6)
			if deepIdle[c] {
				write(c, ms, catMigrate,
					fmt.Sprintf("render tid=777 wake-timeout on core %d -> migrate to big", c))
				write(10+rng.Intn(2), ms, catEnergy, "wakeup burst +3.1mJ")
			} else {
				write(c, ms, catSched, "render tid=777 runs in place")
			}
		}
	}

	// --- statistical analysis over the retained long window ---
	r := tr.NewReader()
	defer r.Close()
	events := r.Snapshot()

	var (
		migrations  [2]int
		energyMJ    [2]float64
		firstTS     = events[0].TS
		lastTS      = events[len(events)-1].TS
		spanSeconds = float64(lastTS-firstTS) / 1e9
	)
	for _, e := range events {
		ph := 0
		if e.TS >= phaseMs*1_000_000 {
			ph = 1
		}
		switch e.Category {
		case catMigrate:
			migrations[ph]++
		case catEnergy:
			energyMJ[ph] += 3.1
		}
	}
	fmt.Printf("analyzed %d retained events covering %.1fs\n", len(events), spanSeconds)
	fmt.Printf("healthy phase: %4d wake-timeout migrations, %7.1f mJ wake bursts\n", migrations[0], energyMJ[0])
	fmt.Printf("buggy phase:   %4d wake-timeout migrations, %7.1f mJ wake bursts\n", migrations[1], energyMJ[1])
	if migrations[0] == 0 {
		migrations[0] = 1
	}
	fmt.Printf("=> the buggy phase migrates %dx more often; the interplay of deep-idle\n",
		migrations[1]/migrations[0])
	fmt.Println("   selection and the aggressive migration strategy is the energy defect.")
	fmt.Println("   (No single event is anomalous — only the long-duration statistics show it,")
	fmt.Println("   which is why the latest fragment must cover the whole window.)")
}
