// Quickstart: open a BTrace buffer, write events from several goroutines
// (each standing in for a thread pinned to a core), snapshot, and print
// what the tracer retained.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"btrace"
)

func main() {
	// An 8-"core" tracer with a 4 MiB buffer. On a real device the core
	// id would be the pinned CPU; in portable Go any stable shard id in
	// [0, Cores) works.
	tr, err := btrace.Open(btrace.Config{Cores: 8, BufferBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened btrace: capacity %d bytes, max payload %d bytes\n",
		tr.Capacity(), tr.MaxEntryPayload())

	start := time.Now()
	var wg sync.WaitGroup
	for core := 0; core < 8; core++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			w, err := tr.Writer(core, 1000+core)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 10_000; i++ {
				err := w.Write(btrace.Event{
					TS:       uint64(time.Since(start).Nanoseconds()),
					Category: uint8(i % 4),
					Level:    1,
					Payload:  []byte(fmt.Sprintf("core%d event %d", core, i)),
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(core)
	}
	wg.Wait()

	r := tr.NewReader()
	defer r.Close()
	events := r.Snapshot()

	stats := tr.Stats()
	fmt.Printf("wrote %d events (%d bytes); retained %d\n",
		stats.Writes, stats.BytesWritten, len(events))
	if len(events) > 0 {
		first, last := events[0], events[len(events)-1]
		fmt.Printf("oldest retained: stamp %d core %d %q\n", first.Stamp, first.Core, first.Payload)
		fmt.Printf("newest retained: stamp %d core %d %q\n", last.Stamp, last.Core, last.Payload)
	}
	// Stamps are globally ordered; gaps in the retained sequence can only
	// be at the old end (BTrace never drops the newest events).
	contiguous := true
	for i := 1; i < len(events); i++ {
		if events[i].Stamp != events[i-1].Stamp+1 {
			contiguous = false
			break
		}
	}
	fmt.Printf("retained sequence contiguous: %v\n", contiguous)
}
