// Package btrace is the public API of BTrace, the block-based mobile
// tracer of "Enabling Efficient Mobile Tracing with BTrace" (ASPLOS 2025).
//
// BTrace partitions one contiguous buffer into equally sized blocks that
// are dynamically assigned to the most demanding cores: it keeps the
// memory efficiency of a global buffer and the low recording latency of
// per-core buffers, retains roughly twice the continuous trace of a
// per-core tracer under skewed mobile workloads, never drops the newest
// events, and supports runtime buffer resizing without synchronizing
// producers.
//
// # Quick start
//
//	tr, err := btrace.Open(btrace.Config{Cores: 8, BufferBytes: 8 << 20})
//	if err != nil { ... }
//	w := tr.Writer(coreID, threadID)
//	w.Write(btrace.Event{TS: now, Category: 3, Level: 1, Payload: data})
//	r := tr.NewReader()
//	events, _ := r.Snapshot()
//
// Each producing thread obtains a Writer naming the (virtual or physical)
// core it runs on; the core id routes the write to the core's current
// block. On platforms with real thread pinning, use the pinned CPU id; in
// portable Go programs any stable shard id in [0, Cores) preserves the
// algorithm's benefits.
package btrace

import (
	"fmt"
	"sync/atomic"
	"time"

	"btrace/internal/core"
	"btrace/internal/tracer"
)

// Proc is the execution-context abstraction producers write under: it
// names the current core and exposes the preemption points simulated
// schedulers hook. Library users normally use Tracer.Writer, which
// supplies a fixed Proc; integrations with custom schedulers (see
// internal/sim) may implement Proc themselves.
type Proc = tracer.Proc

// Event is a trace event. Stamp is assigned by the tracer on write and
// reported on read; the remaining fields are caller-provided.
type Event struct {
	// Stamp is the unique, monotonically increasing logic stamp the
	// tracer assigned at write time (read side only).
	Stamp uint64
	// TS is the caller's timestamp in nanoseconds.
	TS uint64
	// Core is the core the event was written from (read side only).
	Core uint8
	// TID identifies the producing thread (24 bits).
	TID uint32
	// Category and Level classify the event (see internal/workload for
	// the atrace-style scheme the evaluation uses).
	Category uint8
	Level    uint8
	// Payload is the event body; at most MaxPayload bytes.
	Payload []byte
}

// MaxPayload is the largest payload a single event may carry.
const MaxPayload = tracer.MaxPayload

// Config configures Open.
type Config struct {
	// Cores is the number of cores (or stable shard ids) that will
	// produce traces. Required.
	Cores int
	// BufferBytes is the tracing buffer capacity. Required.
	BufferBytes int
	// MaxBufferBytes reserves address space for growth via Resize; it
	// defaults to BufferBytes (no growth headroom). The paper reserves
	// the maximum size up front and maps/unmaps physical memory (§4.4).
	MaxBufferBytes int
	// BlockSize is the data block size (default 4 KiB, the paper's
	// choice).
	BlockSize int
	// ActivePerCore sets the number of active blocks per core (A =
	// ActivePerCore x Cores); default 16, the §5.1 sweet spot.
	ActivePerCore int
	// PoisonOnReclaim overwrites memory reclaimed by a shrink with a
	// poison pattern, turning use-after-reclaim bugs into loud decode
	// failures. Intended for tests.
	PoisonOnReclaim bool
}

// Tracer is an open BTrace instance.
type Tracer struct {
	buf   *core.Buffer
	stamp atomic.Uint64
	epoch time.Time
	filterState
}

// Open creates a tracer.
func Open(cfg Config) (*Tracer, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("btrace: Cores must be positive")
	}
	if cfg.BufferBytes <= 0 {
		return nil, fmt.Errorf("btrace: BufferBytes must be positive")
	}
	if cfg.MaxBufferBytes == 0 {
		cfg.MaxBufferBytes = cfg.BufferBytes
	}
	if cfg.MaxBufferBytes < cfg.BufferBytes {
		return nil, fmt.Errorf("btrace: MaxBufferBytes (%d) < BufferBytes (%d)",
			cfg.MaxBufferBytes, cfg.BufferBytes)
	}
	opt, err := core.OptionsForBudget(cfg.BufferBytes, cfg.Cores, cfg.BlockSize, cfg.ActivePerCore)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBufferBytes > cfg.BufferBytes {
		maxRatio := cfg.MaxBufferBytes / (opt.ActiveBlocks * opt.BlockSize)
		if maxRatio > opt.Ratio {
			opt.MaxRatio = maxRatio
		}
	}
	opt.PoisonOnReclaim = cfg.PoisonOnReclaim
	buf, err := core.New(opt)
	if err != nil {
		return nil, err
	}
	return &Tracer{buf: buf, epoch: time.Now()}, nil
}

// Capacity returns the current live buffer capacity in bytes.
func (t *Tracer) Capacity() int { return t.buf.Capacity() }

// MaxEntryPayload returns the largest payload Write accepts under the
// configured block size.
func (t *Tracer) MaxEntryPayload() int { return t.buf.MaxEntryPayload() }

// Resize changes the buffer capacity to approximately bytes (rounded down
// to a whole number of block rounds, minimum one). Growing is immediate;
// shrinking blocks until the reclaimed memory is provably unreachable by
// producers (implicit reclaiming, §3.3) and consumers (epoch-based
// reclamation, §4.4), without adding any synchronization to the producer
// fast path.
func (t *Tracer) Resize(bytes int) error {
	opt := t.buf.Options()
	perRound := opt.ActiveBlocks * opt.BlockSize
	ratio := bytes / perRound
	if ratio < 1 {
		ratio = 1
	}
	if ratio > opt.MaxRatio {
		return fmt.Errorf("btrace: %d B exceeds reserved maximum %d B", bytes, opt.MaxRatio*perRound)
	}
	return t.buf.Resize(ratio)
}

// Stats returns a snapshot of internal counters.
func (t *Tracer) Stats() tracer.Stats { return t.buf.Stats() }

// BlocksAcquired returns, per core, how many data blocks each core has
// drawn from the shared pool — the observable form of the dynamic block
// assignment in the paper's title: demanding cores acquire proportionally
// more blocks.
func (t *Tracer) BlocksAcquired() []uint64 { return t.buf.BlocksAcquired() }

// Reset discards all recorded events. It must not run concurrently with
// writers.
func (t *Tracer) Reset() { t.buf.Reset() }

// Writer returns a write handle for a thread running on the given core.
// The Writer is not safe for concurrent use; create one per thread (they
// are small and allocation-free to use).
func (t *Tracer) Writer(core, tid int) (*Writer, error) {
	if core < 0 || core >= t.buf.Options().Cores {
		return nil, fmt.Errorf("btrace: core %d out of range [0,%d)", core, t.buf.Options().Cores)
	}
	return &Writer{t: t, proc: tracer.FixedProc{CoreID: core, TID: tid}}, nil
}

// Writer is a per-thread write handle.
type Writer struct {
	t    *Tracer
	proc tracer.FixedProc
}

// Write records e. The event receives the next global logic stamp; the
// write is wait-free with respect to other threads except for the bounded
// block-advancement slow path.
func (w *Writer) Write(e Event) error {
	return w.t.WriteProc(&w.proc, e)
}

// WriteProc records e under an explicit execution context; simulated
// schedulers use this to inject preemption at the algorithm's preemption
// points.
func (t *Tracer) WriteProc(p Proc, e Event) error {
	if f := unpackFilter(t.filter.Load()); !f.Allows(e.Category, e.Level) {
		t.filtered.Add(1)
		return nil
	}
	ent := tracer.Entry{
		Stamp:   t.stamp.Add(1),
		TS:      e.TS,
		Core:    uint8(p.Core()),
		TID:     uint32(p.Thread()) & 0xFFFFFF,
		Cat:     e.Category,
		Level:   e.Level,
		Payload: e.Payload,
	}
	return t.buf.Write(p, &ent)
}

// Reader is a registered consumer. Snapshots never block producers; a
// block being overwritten during a read is detected and dropped (§4.3).
type Reader struct {
	r *core.Reader
}

// NewReader registers a consumer.
func (t *Tracer) NewReader() *Reader { return &Reader{r: t.buf.NewReader()} }

// Close unregisters the reader.
func (r *Reader) Close() { r.r.Close() }

// Snapshot returns every currently recoverable event, oldest first by
// logic stamp.
func (r *Reader) Snapshot() []Event {
	es, _ := r.r.Snapshot()
	return convertEntries(es)
}

// Poll returns the events recorded since the previous Poll (oldest
// first) and how many were lost to overwrite in between — the incremental
// mode a collector daemon uses to follow a live trace without ever
// blocking producers.
func (r *Reader) Poll() (events []Event, missed uint64) {
	es, missed := r.r.Poll()
	return convertEntries(es), missed
}

func convertEntries(es []tracer.Entry) []Event {
	out := make([]Event, len(es))
	for i, e := range es {
		out[i] = Event{
			Stamp: e.Stamp, TS: e.TS, Core: e.Core, TID: e.TID,
			Category: e.Cat, Level: e.Level, Payload: e.Payload,
		}
	}
	return out
}

// WriteNow records e with TS set to the tracer's monotonic clock (nanoseconds
// since Open), the convenient form for live instrumentation; use Write when
// the caller supplies its own timebase.
func (w *Writer) WriteNow(e Event) error {
	e.TS = uint64(time.Since(w.t.epoch).Nanoseconds())
	return w.t.WriteProc(&w.proc, e)
}
