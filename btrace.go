// Package btrace is the public API of BTrace, the block-based mobile
// tracer of "Enabling Efficient Mobile Tracing with BTrace" (ASPLOS 2025).
//
// BTrace partitions one contiguous buffer into equally sized blocks that
// are dynamically assigned to the most demanding cores: it keeps the
// memory efficiency of a global buffer and the low recording latency of
// per-core buffers, retains roughly twice the continuous trace of a
// per-core tracer under skewed mobile workloads, never drops the newest
// events, and supports runtime buffer resizing without synchronizing
// producers.
//
// # Quick start
//
//	tr, err := btrace.Open(btrace.Config{Cores: 8, BufferBytes: 8 << 20})
//	if err != nil { ... }
//	w, _ := tr.Writer(coreID, threadID)
//	w.Write(btrace.Event{TS: now, Category: 3, Level: 1, Payload: data})
//
//	r := tr.NewReader()
//	batch := make([]btrace.Event, 256)
//	for {
//		n, missed, _ := r.Next(batch)
//		if n == 0 { break }
//		consume(batch[:n], missed) // valid until the next call to Next
//	}
//
// Each producing thread obtains a Writer naming the (virtual or physical)
// core it runs on; the core id routes the write to the core's current
// block. On platforms with real thread pinning, use the pinned CPU id; in
// portable Go programs any stable shard id in [0, Cores) preserves the
// algorithm's benefits.
//
// The batch Next loop is the steady-state read path: it reuses a decode
// arena across calls, so following a busy buffer allocates nothing per
// poll. Snapshot and Poll remain as convenience wrappers that return
// freshly allocated, caller-owned slices.
package btrace

import (
	"fmt"
	"iter"
	"sync/atomic"
	"time"

	"btrace/internal/core"
	"btrace/internal/tracer"
)

// Proc is the execution-context abstraction producers write under: it
// names the current core and exposes the preemption points simulated
// schedulers hook. Library users normally use Tracer.Writer, which
// supplies a fixed Proc; integrations with custom schedulers (see
// internal/sim) may implement Proc themselves.
type Proc = tracer.Proc

// Event is a trace event: the Stamp, Core, and TID fields are assigned
// by the tracer at write time and reported on read; TS, Category, Level,
// and Payload are caller-provided. It is an alias of the internal wire
// entry, so slices returned by the read path are the decoder's output
// with no per-event conversion or copy.
type Event = tracer.Entry

// MaxPayload is the largest payload a single event may carry.
const MaxPayload = tracer.MaxPayload

// Config configures Open.
type Config struct {
	// Cores is the number of cores (or stable shard ids) that will
	// produce traces. Required.
	Cores int
	// BufferBytes is the tracing buffer capacity. Required.
	BufferBytes int
	// MaxBufferBytes reserves address space for growth via Resize; it
	// defaults to BufferBytes (no growth headroom). The paper reserves
	// the maximum size up front and maps/unmaps physical memory (§4.4).
	MaxBufferBytes int
	// BlockSize is the data block size (default 4 KiB, the paper's
	// choice).
	BlockSize int
	// ActivePerCore sets the number of active blocks per core (A =
	// ActivePerCore x Cores); default 16, the §5.1 sweet spot.
	ActivePerCore int
	// StampBatch makes each Writer reserve logic stamps in ranges of
	// this size with a single atomic add, instead of one contended add
	// per write. Stamps stay globally unique and strictly increasing per
	// Writer, but writes by different Writers may commit with
	// out-of-order stamps, so global stamp order no longer matches
	// cross-thread write order. Leave at 0 or 1 (the default, one add
	// per write) when consumers rely on global stamp order — Poll's
	// missed accounting and collect.Verifier's ordering check do.
	StampBatch int
	// PoisonOnReclaim overwrites memory reclaimed by a shrink with a
	// poison pattern, turning use-after-reclaim bugs into loud decode
	// failures. Intended for tests.
	PoisonOnReclaim bool
	// DisableStats opts this tracer out of the self-observability layer:
	// no counters are registered and nothing appears in Metrics(). The
	// record fast path is identical either way (event counting rides the
	// confirmation CAS the protocol already performs — see DESIGN.md,
	// "Self-observability"); this exists for baseline measurements and
	// for embedders that want zero metrics surface.
	DisableStats bool
}

// Tracer is an open BTrace instance.
type Tracer struct {
	buf        *core.Buffer
	stamp      atomic.Uint64
	stampBatch uint64
	epoch      time.Time
	filterState
}

// Open creates a tracer.
func Open(cfg Config) (*Tracer, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("btrace: Cores must be positive")
	}
	if cfg.BufferBytes <= 0 {
		return nil, fmt.Errorf("btrace: BufferBytes must be positive")
	}
	if cfg.MaxBufferBytes == 0 {
		cfg.MaxBufferBytes = cfg.BufferBytes
	}
	if cfg.MaxBufferBytes < cfg.BufferBytes {
		return nil, fmt.Errorf("btrace: MaxBufferBytes (%d) < BufferBytes (%d)",
			cfg.MaxBufferBytes, cfg.BufferBytes)
	}
	if cfg.StampBatch < 0 {
		return nil, fmt.Errorf("btrace: StampBatch must be non-negative")
	}
	opt, err := core.OptionsForBudget(cfg.BufferBytes, cfg.Cores, cfg.BlockSize, cfg.ActivePerCore)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBufferBytes > cfg.BufferBytes {
		maxRatio := cfg.MaxBufferBytes / (opt.ActiveBlocks * opt.BlockSize)
		if maxRatio > opt.Ratio {
			opt.MaxRatio = maxRatio
		}
	}
	opt.PoisonOnReclaim = cfg.PoisonOnReclaim
	opt.DisableStats = cfg.DisableStats
	buf, err := core.New(opt)
	if err != nil {
		return nil, err
	}
	sb := uint64(cfg.StampBatch)
	if sb == 0 {
		sb = 1
	}
	return &Tracer{buf: buf, stampBatch: sb, epoch: time.Now()}, nil
}

// Capacity returns the current live buffer capacity in bytes.
func (t *Tracer) Capacity() int { return t.buf.Capacity() }

// MaxEntryPayload returns the largest payload Write accepts under the
// configured block size.
func (t *Tracer) MaxEntryPayload() int { return t.buf.MaxEntryPayload() }

// Resize changes the buffer capacity to approximately bytes (rounded down
// to a whole number of block rounds, minimum one). Growing is immediate;
// shrinking blocks until the reclaimed memory is provably unreachable by
// producers (implicit reclaiming, §3.3) and consumers (epoch-based
// reclamation, §4.4), without adding any synchronization to the producer
// fast path.
func (t *Tracer) Resize(bytes int) error {
	opt := t.buf.Options()
	perRound := opt.ActiveBlocks * opt.BlockSize
	ratio := bytes / perRound
	if ratio < 1 {
		ratio = 1
	}
	if ratio > opt.MaxRatio {
		return fmt.Errorf("btrace: %d B exceeds reserved maximum %d B", bytes, opt.MaxRatio*perRound)
	}
	return t.buf.Resize(ratio)
}

// Stats returns a snapshot of internal counters.
func (t *Tracer) Stats() tracer.Stats { return t.buf.Stats() }

// BlocksAcquired returns, per core, how many data blocks each core has
// drawn from the shared pool — the observable form of the dynamic block
// assignment in the paper's title: demanding cores acquire proportionally
// more blocks.
func (t *Tracer) BlocksAcquired() []uint64 { return t.buf.BlocksAcquired() }

// Reset discards all recorded events. It must not run concurrently with
// writers.
func (t *Tracer) Reset() { t.buf.Reset() }

// Writer returns a write handle for a thread running on the given core.
// The Writer is not safe for concurrent use; create one per thread (they
// are small and allocation-free to use).
func (t *Tracer) Writer(core, tid int) (*Writer, error) {
	if core < 0 || core >= t.buf.Options().Cores {
		return nil, fmt.Errorf("btrace: core %d out of range [0,%d)", core, t.buf.Options().Cores)
	}
	return &Writer{t: t, proc: tracer.FixedProc{CoreID: core, TID: tid}}, nil
}

// Writer is a per-thread write handle. With Config.StampBatch > 1 it
// holds the thread's current reservation of logic stamps.
type Writer struct {
	t    *Tracer
	proc tracer.FixedProc
	// nextStamp..endStamp (inclusive) is the unconsumed remainder of the
	// Writer's stamp reservation; empty when nextStamp > endStamp.
	nextStamp uint64
	endStamp  uint64
}

// takeStamp returns the Writer's next logic stamp, reserving a fresh
// range of StampBatch stamps with one atomic add when the current
// reservation is exhausted. With StampBatch == 1 this is exactly one add
// per write — the globally ordered default.
func (w *Writer) takeStamp() uint64 {
	if w.nextStamp > w.endStamp || w.nextStamp == 0 {
		n := w.t.stampBatch
		hi := w.t.stamp.Add(n)
		w.nextStamp, w.endStamp = hi-n+1, hi
	}
	s := w.nextStamp
	w.nextStamp++
	return s
}

// Write records e. The event receives the Writer's next logic stamp; the
// write is wait-free with respect to other threads except for the bounded
// block-advancement slow path.
func (w *Writer) Write(e Event) error {
	t := w.t
	if f := unpackFilter(t.filter.Load()); !f.Allows(e.Category, e.Level) {
		t.filtered.Add(1)
		return nil
	}
	return t.writeStamped(&w.proc, &e, w.takeStamp())
}

// WriteNow records e with TS set to the tracer's monotonic clock (nanoseconds
// since Open), the convenient form for live instrumentation; use Write when
// the caller supplies its own timebase.
func (w *Writer) WriteNow(e Event) error {
	e.TS = uint64(time.Since(w.t.epoch).Nanoseconds())
	return w.Write(e)
}

// WriteProc records e under an explicit execution context; simulated
// schedulers use this to inject preemption at the algorithm's preemption
// points. It always allocates the stamp with a single global add
// (StampBatch applies only to Writers, which can hold a reservation).
func (t *Tracer) WriteProc(p Proc, e Event) error {
	if f := unpackFilter(t.filter.Load()); !f.Allows(e.Category, e.Level) {
		t.filtered.Add(1)
		return nil
	}
	return t.writeStamped(p, &e, t.stamp.Add(1))
}

// writeStamped stamps e with the tracer-assigned fields and records it.
func (t *Tracer) writeStamped(p Proc, e *Event, stamp uint64) error {
	e.Stamp = stamp
	e.Core = uint8(p.Core())
	e.TID = uint32(p.Thread()) & 0xFFFFFF
	return t.buf.Write(p, e)
}

// Reader is a registered consumer. Reads never block producers; a block
// being overwritten during a read is detected and dropped (§4.3).
//
// Next is the streaming batch API (arena-backed, allocation-free at
// steady state); Snapshot and Poll are one-shot wrappers returning
// caller-owned slices. A Reader is not safe for concurrent use.
type Reader struct {
	buf *core.Buffer
	r   *core.Reader
	cur *core.Cursor
}

// NewReader registers a consumer.
func (t *Tracer) NewReader() *Reader {
	return &Reader{buf: t.buf, r: t.buf.NewReader()}
}

// Close unregisters the reader.
func (r *Reader) Close() {
	r.r.Close()
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
}

// Next fills batch with up to len(batch) events recorded since the
// previous call (oldest first by logic stamp) and returns the count and
// how many events were lost to overwrite in between. n == 0 means no new
// events are currently available. The filled events — including their
// Payload slices, which point into a reused decode arena — are valid
// only until the next call to Next or Close; copy what must be retained.
func (r *Reader) Next(batch []Event) (n int, missed uint64, err error) {
	if r.cur == nil {
		r.cur = r.buf.NewCursor()
	}
	return r.cur.Next(batch)
}

// Events returns a Go iterator over the events recorded after the
// iterator starts draining, reading through batch (which must be
// non-empty and sizes each underlying read). The yielded *Event is
// borrowed per the Next contract: valid only for that iteration step.
func (r *Reader) Events(batch []Event) iter.Seq2[*Event, error] {
	if r.cur == nil {
		r.cur = r.buf.NewCursor()
	}
	return tracer.Events(r.cur, batch)
}

// Snapshot returns every currently recoverable event, oldest first by
// logic stamp. The slice and its payloads are freshly allocated and
// owned by the caller.
func (r *Reader) Snapshot() []Event {
	es, _ := r.r.Snapshot()
	return es
}

// Poll returns the events recorded since the previous Poll (oldest
// first) and how many were lost to overwrite in between — the incremental
// mode a collector daemon uses to follow a live trace without ever
// blocking producers. The slice is freshly allocated and caller-owned;
// steady-state collectors should prefer Next, which reuses its arena.
func (r *Reader) Poll() (events []Event, missed uint64) {
	return r.r.Poll()
}
