package btrace

import (
	"strings"
	"testing"
)

// TestMetricsSnapshot checks the public metrics API: recording traffic
// moves the core series, and the Prometheus rendering exposes them.
func TestMetricsSnapshot(t *testing.T) {
	before := Metrics().Value("btrace_core_writes_total")

	tr, err := Open(Config{Cores: 2, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.Writer(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 100
	for i := 0; i < writes; i++ {
		if err := w.Write(Event{TS: uint64(i), Category: 1, Level: 1}); err != nil {
			t.Fatal(err)
		}
	}

	s := Metrics()
	if got := s.Value("btrace_core_writes_total") - before; got < writes {
		t.Fatalf("btrace_core_writes_total moved by %v, want >= %d", got, writes)
	}
	if _, ok := s.Get("btrace_core_capacity_bytes"); !ok {
		t.Fatal("btrace_core_capacity_bytes missing")
	}
	if st := tr.Stats(); float64(st.Writes) > s.Value("btrace_core_writes_total") {
		t.Fatalf("tracer stats (%d writes) exceed the process-wide series (%v)",
			st.Writes, s.Value("btrace_core_writes_total"))
	}

	var sb strings.Builder
	if err := WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE btrace_core_writes_total counter",
		"btrace_core_capacity_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteMetrics output missing %q", want)
		}
	}
}

// TestMetricsDisableStats checks the opt-out: a tracer opened with
// Config.DisableStats registers nothing, so recording traffic through it
// moves no process-wide series.
func TestMetricsDisableStats(t *testing.T) {
	tr, err := Open(Config{Cores: 2, BufferBytes: 1 << 20, DisableStats: true})
	if err != nil {
		t.Fatal(err)
	}
	before := Metrics().Value("btrace_core_writes_total")
	w, err := tr.Writer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Write(Event{TS: uint64(i), Category: 1, Level: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := Metrics().Value("btrace_core_writes_total") - before; got != 0 {
		t.Fatalf("DisableStats tracer moved btrace_core_writes_total by %v", got)
	}
	if st := tr.Stats(); st.Writes != 0 {
		t.Fatalf("DisableStats tracer reports %d writes in Stats", st.Writes)
	}
}
