# Build/test entry points for the BTrace repository. `make tier1` is the
# gate every change must keep green (ROADMAP.md); `make chaos` runs the
# deterministic fault-injection suite on its own.

GO ?= go

.PHONY: all build vet test race tier1 chaos

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (the tracer core, simulator, fault
# injector and collector pipeline all exercise real concurrency).
race:
	$(GO) test -race ./internal/...

tier1: build vet test race

# The chaos suite: every DESIGN.md invariant under injected preemption
# storms, stalled writers, hotplug-during-resize, and poll/sink failures.
# Honors -short (make chaos SHORT=-short) for a quick pass.
SHORT ?=
chaos:
	$(GO) test $(SHORT) -v -run 'TestChaos' ./internal/faults/
