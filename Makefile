# Build/test entry points for the BTrace repository. `make tier1` is the
# gate every change must keep green (ROADMAP.md); `make chaos` runs the
# deterministic fault-injection suite on its own.

GO ?= go

.PHONY: all build vet test race tier1 chaos bench

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (the tracer core, simulator, fault
# injector and collector pipeline all exercise real concurrency).
race:
	$(GO) test -race ./internal/...

tier1: build vet test race

# The chaos suite: every DESIGN.md invariant under injected preemption
# storms, stalled writers, hotplug-during-resize, and poll/sink failures.
# Honors -short (make chaos SHORT=-short) for a quick pass.
SHORT ?=
chaos:
	$(GO) test $(SHORT) -v -run 'TestChaos' ./internal/faults/

# Read/write-path benchmarks with allocation accounting, recorded as
# machine-readable JSON (BENCH_readpath.json) to track the perf
# trajectory across commits. BENCHTIME trades precision for runtime.
BENCHTIME ?= 2000x
bench:
	@{ $(GO) test ./internal/core -run '^$$' -bench 'BenchmarkReadPath' -benchmem -benchtime $(BENCHTIME); \
	   $(GO) test . -run '^$$' -bench 'BenchmarkWritePathStampBatch' -benchmem -benchtime $(BENCHTIME); } \
	 | tee /dev/stderr | $(GO) run ./cmd/bench2json > BENCH_readpath.json
	@echo "wrote BENCH_readpath.json"
	@$(GO) test ./internal/store -run '^$$' -bench 'BenchmarkStore(Append|Query)' -benchmem -benchtime $(BENCHTIME) \
	 | tee /dev/stderr | $(GO) run ./cmd/bench2json > BENCH_store.json
	@echo "wrote BENCH_store.json"
