# Build/test entry points for the BTrace repository. `make tier1` is the
# gate every change must keep green (ROADMAP.md); `make chaos` runs the
# deterministic fault-injection suite on its own.

GO ?= go

.PHONY: all build fmt vet test race race-stress tier1 chaos overload-stress compaction-chaos cluster-chaos vulture-soak bench benchdiff

all: tier1

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any tracked Go file is not
# gofmt-clean, so formatting drift cannot land through CI.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	  echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages (the tracer core, simulator, fault
# injector and collector pipeline all exercise real concurrency).
race:
	$(GO) test -race ./internal/...

# The store's parallel-cursor stress test under the race detector:
# concurrent appenders, short- and long-lived parallel cursors and
# retention all racing mid-scan. -short keeps a double run CI-sized.
race-stress:
	$(GO) test -race -short -count 2 -run 'TestStoreParallelStress' ./internal/store

tier1: build fmt vet test race

# The chaos suite: every DESIGN.md invariant under injected preemption
# storms, stalled writers, hotplug-during-resize, and poll/sink failures.
# Honors -short (make chaos SHORT=-short) for a quick pass.
SHORT ?=
chaos:
	$(GO) test $(SHORT) -v -run 'TestChaos' ./internal/faults/

# The overload storm scenario on its own: oversubscribed producers and a
# wedged store drive the adaptive gate through two full
# engage → degrade → recover cycles, checking the tier trajectory, the
# event-exact accounting identity and the p99 latency bound. Honors
# -short (make overload-stress SHORT=-short).
overload-stress:
	$(GO) test $(SHORT) -v -run 'TestChaosOverloadStorm' ./internal/faults/

# The tiered-storage chaos suite under the race detector: the object-
# backend conformance pass, crash snapshots at every tier-transition
# boundary (each reopened and checked for exactly-once recovery), and
# the compactor stress test racing appends, queries and retention.
compaction-chaos:
	$(GO) test -race -count 1 -v \
	  -run 'TestCompactionChaosTierBoundaries|TestObjectBackendConformance|TestStoreCompactorStress' \
	  ./internal/store

# The distributed ingest tier's kill-a-shard scenario under the race
# detector: a 4-shard RF=2 cluster with flaky replica stores loses one
# shard mid-storm and another wedges transiently; every quorum-acked
# event must remain readable through the merged query view, the tenant
# accounting identity must hold exactly, and the ring property tests
# bound key movement on join/leave. Honors -short
# (make cluster-chaos SHORT=-short).
cluster-chaos:
	$(GO) test -race $(SHORT) -v -run 'TestChaosClusterShardKill' ./internal/faults/
	$(GO) test -race -run 'TestRing' ./internal/ring/

# Continuous-verification soak: boot a real 4-shard RF=2 btrace-serve,
# run btrace-vulture against it (known stamped writes read back through
# /live, sequential and parallel /store/query, and the cold tier), and
# drain a shard mid-soak. Fails on any acked-stamp loss, duplication or
# mis-ordering. Honors -short (make vulture-soak SHORT=-short, ~30s).
vulture-soak:
	./scripts/vulture-soak.sh $(SHORT)

# Read/write-path benchmarks with allocation accounting, recorded as
# machine-readable JSON (BENCH_*.json) to track the perf trajectory
# across commits. BENCHTIME trades precision for runtime. BENCH_obs.json
# captures the self-observability overhead contract: the instrumented
# record/read fast paths must stay at 0 allocs/op and within noise of
# the Options.DisableStats baseline (see DESIGN.md). The obs record
# sub-benchmarks measure a single ~45ns Write, so they get their own
# much higher iteration count (OBS_RECORD_BENCHTIME) — at BENCHTIME-scale
# counts the timer granularity would swamp the <2% contract.
BENCHTIME ?= 2000x
OBS_RECORD_BENCHTIME ?= 200000x
bench:
	@{ $(GO) test ./internal/core -run '^$$' -bench 'BenchmarkReadPath' -benchmem -benchtime $(BENCHTIME); \
	   $(GO) test . -run '^$$' -bench 'BenchmarkWritePathStampBatch' -benchmem -benchtime $(BENCHTIME); \
	   $(GO) test ./internal/live -run '^$$' -bench 'BenchmarkLiveFanout' -benchmem -benchtime $(BENCHTIME); } \
	 | tee /dev/stderr | $(GO) run ./cmd/bench2json > BENCH_readpath.json
	@echo "wrote BENCH_readpath.json"
	@{ $(GO) test ./internal/store -run '^$$' -bench 'BenchmarkStore(Append|Query)|BenchmarkColdQuery|BenchmarkCompactTier|BenchmarkQuery(FullScan|SelectiveBTQL|Aggregate)' -benchmem -benchtime $(BENCHTIME); \
	   $(GO) test ./internal/distributor -run '^$$' -bench 'BenchmarkDistributorIngest' -benchmem -benchtime $(BENCHTIME); } \
	 | tee /dev/stderr | $(GO) run ./cmd/bench2json > BENCH_store.json
	@echo "wrote BENCH_store.json"
	@{ $(GO) test ./internal/core -run '^$$' -bench 'BenchmarkObsOverhead/record' -benchmem -benchtime $(OBS_RECORD_BENCHTIME); \
	   $(GO) test ./internal/core -run '^$$' -bench 'BenchmarkObsOverhead/read' -benchmem -benchtime $(BENCHTIME); \
	   $(GO) test ./internal/overload -run '^$$' -bench 'BenchmarkRecordUnderOverload' -benchmem -benchtime $(BENCHTIME); } \
	 | tee /dev/stderr | $(GO) run ./cmd/bench2json > BENCH_obs.json
	@echo "wrote BENCH_obs.json"

# Compare freshly produced BENCH_*.json against the committed baselines
# (taken from HEAD): >30% ns/op regressions fail, and the read-path / obs
# fast paths must stay allocation-free. The -max-ratio rules enforce the
# storage contracts within the fresh run itself (hardware-independent):
# the wide query over the majority-cold store must stay within 2x of the
# identical all-hot query, and a selective BTQL query with predicate
# pushdown must beat the full-scan-and-filter baseline by at least 5x.
# CI runs the same comparison on every push (bench-smoke job).
benchdiff:
	@mkdir -p .benchbase
	@for f in BENCH_readpath.json BENCH_store.json BENCH_obs.json; do \
	  git show HEAD:$$f > .benchbase/$$f 2>/dev/null || rm -f .benchbase/$$f; done
	$(GO) run ./cmd/benchdiff -old .benchbase -new . \
	  -zero-allocs 'BenchmarkReadPathCursor,BenchmarkObsOverhead/.*,BenchmarkLiveFanout/idle' \
	  -max-ratio 'BenchmarkColdQuery<=2*BenchmarkStoreQueryParallel,BenchmarkQuerySelectiveBTQL<=0.2*BenchmarkQueryFullScan'
