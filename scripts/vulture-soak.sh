#!/usr/bin/env bash
# vulture-soak: boot a 4-shard RF=2 btrace-serve cluster, run
# btrace-vulture against it, and drain a shard out of the ring halfway
# through the soak. Exits non-zero if any acked stamp was lost,
# duplicated or delivered out of order on any read surface — the CI
# soak gate (`make vulture-soak`; `make vulture-soak SHORT=-short` for
# the quick variant).
set -euo pipefail

cd "$(dirname "$0")/.."

DUR="${DUR:-60}"        # writing phase, seconds
COLD_AFTER="${COLD_AFTER:-5s}"
COLD_AGE="${COLD_AGE:-8s}"
PORT="${PORT:-8339}"
if [ "${1:-}" = "-short" ]; then
  DUR=20
fi

TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building btrace-serve and btrace-vulture"
go build -o "$TMP/btrace-serve" ./cmd/btrace-serve
go build -o "$TMP/btrace-vulture" ./cmd/btrace-vulture

# Small segments + aggressive compaction + short cold-after so the soak
# exercises segment rolls, merges and the frozen columnar tier within
# its runtime. Sampling and shedding are off: every accepted event is a
# durability promise, which is exactly what the vulture holds the
# server to (-strict-live needs that too).
echo "== booting 4-shard RF=2 cluster on :$PORT"
"$TMP/btrace-serve" -addr "localhost:$PORT" -store "$TMP/cluster" \
  -shards 4 -replication 2 \
  -segment-bytes 65536 -commit-every 50ms \
  -compact-interval 250ms -cold-after "$COLD_AFTER" \
  -sample-rate 1 -shed=false \
  >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

ready=0
for _ in $(seq 1 80); do
  if curl -fsS "http://localhost:$PORT/readyz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.25
done
if [ "$ready" != 1 ]; then
  echo "btrace-serve never became ready; log:" >&2
  cat "$TMP/serve.log" >&2
  exit 2
fi

echo "== soaking for ${DUR}s (shard drain at T+$((DUR / 2))s)"
"$TMP/btrace-vulture" -url "http://localhost:$PORT" \
  -duration "${DUR}s" -strict-live -cold-age "$COLD_AGE" \
  -report vulture-report.txt &
VULTURE_PID=$!

# Mid-soak topology change: drain one shard out of the ring while
# writes and reads are in flight. Every stamp acked before, during and
# after the drain must stay readable from the survivors.
sleep "$((DUR / 2))"
echo "== draining shard-02 mid-soak"
curl -fsS -X POST "http://localhost:$PORT/ring?action=drain&shard=shard-02" || {
  echo "shard drain failed" >&2
  kill "$VULTURE_PID" 2>/dev/null || true
  exit 2
}
echo

rc=0
wait "$VULTURE_PID" || rc=$?
echo "== vulture exit code: $rc (report in vulture-report.txt)"
if [ "$rc" != 0 ]; then
  echo "== server log tail:" >&2
  tail -50 "$TMP/serve.log" >&2
fi
exit "$rc"
