package btrace

import (
	"fmt"
	"sync/atomic"
)

// Filter selects which events are recorded, the way Android's atrace
// enables categories and the evaluation's trace levels gate detail
// (§2.2, Fig. 2/3): recording a level-3 energy investigation and flipping
// back to a cheap level-1 baseline is a runtime operation, not a rebuild.
// The zero Filter records everything.
type Filter struct {
	// MaxLevel drops events with Level above it; 0 means no level limit.
	MaxLevel uint8
	// Categories is a bitmask of enabled categories (bit i enables
	// category i, for categories 0-63); 0 means all categories.
	Categories uint64
}

// pack encodes the filter into one atomic word: Categories' low 56 bits
// (plenty for the 19 atrace categories) and MaxLevel in the top byte.
func (f Filter) pack() uint64 {
	return uint64(f.MaxLevel)<<56 | f.Categories&(1<<56-1)
}

func unpackFilter(w uint64) Filter {
	return Filter{MaxLevel: uint8(w >> 56), Categories: w & (1<<56 - 1)}
}

// Allows reports whether an event with the given category and level
// passes the filter.
func (f Filter) Allows(category, level uint8) bool {
	if f.MaxLevel != 0 && level > f.MaxLevel {
		return false
	}
	if f.Categories != 0 && (category >= 64 || f.Categories&(1<<category) == 0) {
		return false
	}
	return true
}

// CategoryMask builds a Categories bitmask from category ids.
func CategoryMask(categories ...uint8) (uint64, error) {
	var m uint64
	for _, c := range categories {
		if c >= 56 {
			return 0, fmt.Errorf("btrace: category %d out of filterable range [0,56)", c)
		}
		m |= 1 << c
	}
	return m, nil
}

// SetFilter installs f atomically; concurrent writers observe it on their
// next write. Filtering happens before any buffer work, so a filtered-out
// event costs one atomic load.
func (t *Tracer) SetFilter(f Filter) {
	t.filter.Store(f.pack())
}

// GetFilter returns the current filter.
func (t *Tracer) GetFilter() Filter {
	return unpackFilter(t.filter.Load())
}

// Filtered returns how many events the filter discarded.
func (t *Tracer) Filtered() uint64 { return t.filtered.Load() }

// filterState is embedded in Tracer (declared here to keep the filter
// logic in one file).
type filterState struct {
	filter   atomic.Uint64
	filtered atomic.Uint64
}

// Query selects events on the read side, the way trace viewers narrow a
// dump: by virtual time range, category set, core set and level.
// Zero-valued fields impose no constraint.
type Query struct {
	// MinTS/MaxTS bound the virtual timestamp (inclusive; MaxTS 0 means
	// no upper bound).
	MinTS, MaxTS uint64
	// Categories is a bitmask as in Filter (0 = all).
	Categories uint64
	// Cores is a bitmask of core ids (bit i = core i; 0 = all).
	Cores uint64
	// MaxLevel drops events above it (0 = all).
	MaxLevel uint8
}

// Match reports whether e satisfies the query.
func (q Query) Match(e *Event) bool {
	if e.TS < q.MinTS {
		return false
	}
	if q.MaxTS != 0 && e.TS > q.MaxTS {
		return false
	}
	if q.MaxLevel != 0 && e.Level > q.MaxLevel {
		return false
	}
	if q.Categories != 0 && (e.Category >= 64 || q.Categories&(1<<e.Category) == 0) {
		return false
	}
	if q.Cores != 0 && (e.Core >= 64 || q.Cores&(1<<e.Core) == 0) {
		return false
	}
	return true
}

// Select returns the snapshot events matching q, oldest first.
func (r *Reader) Select(q Query) []Event {
	all := r.Snapshot()
	out := all[:0:0]
	for i := range all {
		if q.Match(&all[i]) {
			out = append(out, all[i])
		}
	}
	return out
}
