module btrace

go 1.22
