module btrace

go 1.23
