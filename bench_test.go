package btrace

// The benchmark harness: one benchmark per table and figure of the paper
// (regenerating its rows/series via internal/experiments and reporting the
// headline numbers as custom metrics), plus microbenchmarks of the
// recording fast path against every baseline tracer.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-volume reproductions (closer to the paper's absolute numbers, much
// slower) are available through cmd/btrace-bench with -scale 1.0.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"btrace/internal/analysis"
	"btrace/internal/core"
	"btrace/internal/experiments"
	"btrace/internal/replay"
	"btrace/internal/tracer"
	"btrace/internal/workload"
)

// benchOpts is the reduced configuration the in-tree benchmarks use: the
// paper's 12 MiB budget at 2% volume over four representative workloads.
func benchOpts() experiments.Options {
	o := experiments.Defaults()
	o.RateScale = 0.02
	o.Workloads = []string{"LockScr.", "IM", "Video-1", "eShop-2"}
	return o
}

// BenchmarkFig1RetentionMaps regenerates Fig. 1 (retention maps of the
// last N written events on the lock-screen and shopping scenarios).
func BenchmarkFig1RetentionMaps(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFig1(b, res)
		}
	}
}

func reportFig1(b *testing.B, res *experiments.Fig1Result) {
	for _, row := range res.Rows["LockScr."] {
		b.ReportMetric(float64(row.Retention.LatestFragmentBytes)/1e6,
			"lockscr-latest-MB-"+row.Tracer)
	}
}

// BenchmarkFig2CategoryRates regenerates Fig. 2 (category rate model).
func BenchmarkFig2CategoryRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].PeakMBPerCoreMin < res.Rows[len(res.Rows)-1].PeakMBPerCoreMin {
			b.Fatal("unsorted")
		}
	}
}

// BenchmarkFig3LevelCapacity regenerates Fig. 3 (trace levels recordable
// in a fixed buffer over 30 s, btrace vs ftrace).
func BenchmarkFig3LevelCapacity(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			l3 := res.Levels[2]
			b.ReportMetric(l3.ContinuousSec["btrace"], "level3-sec-btrace")
			b.ReportMetric(l3.ContinuousSec["ftrace"], "level3-sec-ftrace")
		}
	}
}

// BenchmarkFig4PerCoreSpeeds regenerates Fig. 4 (per-core speed profiles).
func BenchmarkFig4PerCoreSpeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.RatesK) != 6 {
			b.Fatal("shape")
		}
	}
}

// BenchmarkFig5PerCoreFragmentation regenerates the Fig. 5 worked example.
func BenchmarkFig5PerCoreFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Retention.EffectivityRatio*100, "effectivity-%")
		}
	}
}

// BenchmarkFig6Oversubscription regenerates Fig. 6 (distinct producing
// threads per core).
func BenchmarkFig6Oversubscription(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Workload == "eShop-2" {
					b.ReportMetric(row.TotalBox.Median, "eshop2-threads-per-core")
				}
			}
		}
	}
}

// BenchmarkTable1Formulas regenerates Table 1 (analytic comparison).
func BenchmarkTable1Formulas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.Options{Budget: 12 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Tracer == "btrace" {
					b.ReportMetric(row.Utilization*100, "btrace-utilization-%")
					b.ReportMetric(row.Effectivity*100, "btrace-effectivity-%")
				}
			}
		}
	}
}

// BenchmarkFig10ActiveBlocksSweep regenerates Fig. 10 (latest fragment vs
// number of active blocks, core- and thread-level replay).
func BenchmarkFig10ActiveBlocksSweep(b *testing.B) {
	o := benchOpts()
	o.Workloads = []string{"Video-1", "eShop-2"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.ReportMetric(p.ThreadLevel.Median, fmt.Sprintf("latest-MB-at-%dx", p.Multiplier))
			}
		}
	}
}

// BenchmarkTable2StateOfTheArt regenerates Table 2 (latest fragment, loss
// rate, fragments, latency for all five tracers).
func BenchmarkTable2StateOfTheArt(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, tn := range res.Tracers {
				gm := res.GeoMean[tn]
				b.ReportMetric(gm.LatestMB, "latest-MB-"+tn)
				b.ReportMetric(gm.LatencyGeoNs, "latency-ns-"+tn)
			}
		}
	}
}

// BenchmarkFig11LatencyCDF regenerates Fig. 11 (recording latency CDFs).
func BenchmarkFig11LatencyCDF(b *testing.B) {
	o := benchOpts()
	o.Tracers = []string{"btrace", "ftrace", "bbq"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range res.Overall {
				b.ReportMetric(c.Stats.GeoMean, "geomean-ns-"+c.Tracer)
			}
		}
	}
}

// --- microbenchmarks of the recording fast path ---

// BenchmarkWriteSingleThread measures the uncontended recording latency of
// every tracer (the fast-path cost behind Table 2's latency column).
func BenchmarkWriteSingleThread(b *testing.B) {
	for _, name := range experiments.AllTracers {
		b.Run(name, func(b *testing.B) {
			tr, err := tracer.New(name, 12<<20, 12, 500)
			if err != nil {
				b.Fatal(err)
			}
			p := &tracer.FixedProc{CoreID: 3, TID: 7}
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := tracer.Entry{Stamp: uint64(i + 1), TS: uint64(i), Payload: payload}
				if err := tr.Write(p, &e); err != nil && err != tracer.ErrDropped {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWriteParallel measures recording throughput with all cores
// writing concurrently — the contention profile that separates the global
// buffer (BBQ) from the distributed designs.
func BenchmarkWriteParallel(b *testing.B) {
	for _, name := range experiments.AllTracers {
		b.Run(name, func(b *testing.B) {
			tr, err := tracer.New(name, 12<<20, 12, 500)
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			var tid atomic.Uint64
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(tid.Add(1))
				p := &tracer.FixedProc{CoreID: id % 12, TID: id}
				for pb.Next() {
					e := tracer.Entry{Stamp: next.Add(1), Payload: payload}
					if err := tr.Write(p, &e); err != nil && err != tracer.ErrDropped {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSnapshot measures the speculative consumer.
func BenchmarkSnapshot(b *testing.B) {
	tr, err := Open(Config{Cores: 12, BufferBytes: 12 << 20})
	if err != nil {
		b.Fatal(err)
	}
	w, _ := tr.Writer(0, 1)
	payload := make([]byte, 64)
	for i := 0; i < 100_000; i++ {
		if err := w.Write(Event{TS: uint64(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
	r := tr.NewReader()
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if es := r.Snapshot(); len(es) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkResize measures the grow/shrink cycle under live producers —
// the §4.4 operation a production phone performs around critical phases.
func BenchmarkResize(b *testing.B) {
	tr, err := Open(Config{Cores: 4, BufferBytes: 2 << 20, MaxBufferBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	for c := 0; c < 4; c++ {
		go func(c int) {
			w, _ := tr.Writer(c, c)
			payload := make([]byte, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = w.Write(Event{Payload: payload})
			}
		}(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Resize(16 << 20); err != nil {
			b.Fatal(err)
		}
		if err := tr.Resize(2 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationBlockSize sweeps the data block size (the paper fixes
// one page; the sweep shows why).
func BenchmarkAblationBlockSize(b *testing.B) {
	w, err := workload.ByName("eShop-2")
	if err != nil {
		b.Fatal(err)
	}
	for _, bs := range []int{512, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("block%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				latest, err := runBTraceOnce(w, 2<<20, bs, 16, 0.02)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(latest/1e6, "latest-MB")
				}
			}
		})
	}
}

// BenchmarkAblationActiveWindow compares the production A=16xC active
// window against "ring mode" (A=N, §3.2 closing effectively disabled).
// Ring mode retains slightly more in steady state — the same ~7% the
// paper's Table 2 shows BBQ winning over BTrace — but it is exactly the
// configuration whose availability collapses under preemption (every
// wrap lands on a potentially held block); the bounded active window is
// what makes skipping affordable.
func BenchmarkAblationActiveWindow(b *testing.B) {
	w, err := workload.ByName("Video-1")
	if err != nil {
		b.Fatal(err)
	}
	cases := map[string]int{"window16x": 16, "ringMode": 1 << 12}
	for name, apc := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				latest, err := runBTraceOnce(w, 2<<20, 4096, apc, 0.02)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(latest/1e6, "latest-MB")
				}
			}
		})
	}
}

// newBTraceFor constructs a BTrace buffer with explicit block size and
// active-blocks-per-core for the ablation benches, honoring the requested
// A exactly (no sweet-spot clamping).
func newBTraceFor(budget, blockSize, activePerCore int) (tracer.Tracer, error) {
	const cores = 12
	n := budget / blockSize
	a := activePerCore * cores
	if a > n {
		a = n
	}
	ratio := n / a
	if ratio < 1 {
		ratio = 1
	}
	buf, err := core.New(core.Options{
		Cores: cores, BlockSize: blockSize, ActiveBlocks: a, Ratio: ratio,
	})
	if err != nil {
		return nil, err
	}
	return core.Adapter{Buffer: buf}, nil
}

// runBTraceOnce replays w into a fresh BTrace with the given parameters
// and returns the latest fragment in bytes.
func runBTraceOnce(w workload.Workload, budget, blockSize, activePerCore int, scale float64) (float64, error) {
	tr, err := newBTraceFor(budget, blockSize, activePerCore)
	if err != nil {
		return 0, err
	}
	rr, err := replay.Run(replay.Config{
		Tracer: tr, Workload: w, Mode: replay.ThreadLevel,
		RateScale: scale, PreemptProb: 0.005,
	})
	if err != nil {
		return 0, err
	}
	retained, err := replay.RetainedStamps(tr)
	if err != nil {
		return 0, err
	}
	ret, err := analysis.Analyze(rr.Truth, retained, budget)
	if err != nil {
		return 0, err
	}
	return float64(ret.LatestFragmentBytes), nil
}

// BenchmarkMemoryRequirement regenerates the §2.2 memory-overprovisioning
// claim: the smallest buffer retaining the full window, per tracer.
func BenchmarkMemoryRequirement(b *testing.B) {
	o := benchOpts()
	o.Workloads = []string{"Video-1"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.MemoryRequirement(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := res.Rows[0]
			b.ReportMetric(float64(row.Required["btrace"])/float64(row.WrittenBytes), "btrace-factor")
			b.ReportMetric(float64(row.Required["ftrace"])/float64(row.WrittenBytes), "ftrace-factor")
		}
	}
}

// BenchmarkAblationSkipping compares BTrace's §3.4 skipping policy with
// the blocking alternative under oversubscribed, preempting producers:
// skipping trades a little memory for tail latency.
func BenchmarkAblationSkipping(b *testing.B) {
	for name, block := range map[string]bool{"skip": false, "block": true} {
		b.Run(name, func(b *testing.B) {
			opt, err := core.OptionsForBudget(4<<20, 12, 4096, 16)
			if err != nil {
				b.Fatal(err)
			}
			opt.BlockOnStragglers = block
			buf, err := core.New(opt)
			if err != nil {
				b.Fatal(err)
			}
			tr := core.Adapter{Buffer: buf}
			w, err := workload.ByName("eShop-2")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rr, err := replay.Run(replay.Config{
					Tracer: tr, Workload: w, Mode: replay.ThreadLevel,
					RateScale: 0.01, PreemptProb: 0.01, MeasureLatency: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					st := analysis.Latency(rr.LatenciesNs)
					b.ReportMetric(float64(st.P99), "p99-ns")
					b.ReportMetric(st.GeoMean, "geomean-ns")
				}
			}
		})
	}
}
