package btrace

import (
	"io"
	"net/http"

	"btrace/internal/obs"
)

// MetricsSnapshot is a consistent, name-sorted view of every metric
// series the process's BTrace subsystems expose: block lifecycle
// counters from each open tracer (btrace_core_*), supervised collector
// pipelines (btrace_collect_*), and durable stores (btrace_store_*).
// Multiple instances of one subsystem merge by summing; instances that
// have been closed or collected keep contributing their final counter
// totals, so the series are process-lifetime monotonic.
type MetricsSnapshot = obs.Snapshot

// MetricSample is one series in a MetricsSnapshot.
type MetricSample = obs.Sample

// Metrics returns a snapshot of every BTrace metric series in the
// process. Use MetricsSnapshot.Get/Value for programmatic access and
// WriteMetrics for the Prometheus text form.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// WriteMetrics renders the current metrics in the Prometheus text
// exposition format (version 0.0.4).
func WriteMetrics(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// MetricsHandler returns an http.Handler serving the Prometheus text
// form — mount it at /metrics to scrape a process that embeds BTrace.
func MetricsHandler() http.Handler { return obs.Default().Handler() }
