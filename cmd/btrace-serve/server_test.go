package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer(0, nil, 0); err == nil {
		t.Error("zero scale")
	}
	if _, err := newServer(2, nil, 0); err == nil {
		t.Error("scale > 1")
	}
}

func TestIndex(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, frag := range []string{"BTrace benchmark dashboard", "/experiment/table1", "/experiment/memreq"} {
		if !strings.Contains(body, frag) {
			t.Errorf("index missing %q", frag)
		}
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d", code)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	ts := testServer(t)
	// Cheap, deterministic experiments run in full; the replay-based ones
	// are exercised with a small workload subset.
	for _, name := range []string{"fig2", "fig4", "fig5", "table1"} {
		code, body := get(t, ts.URL+"/experiment/"+name)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", name, code)
		}
		if !strings.Contains(body, "<pre>") {
			t.Errorf("%s: no preformatted body", name)
		}
	}
	code, body := get(t, ts.URL+"/experiment/fig1?workloads=LockScr.,eShop-1&tracers=btrace,ftrace")
	if code != http.StatusOK || !strings.Contains(body, "latest=") {
		t.Fatalf("fig1: %d\n%s", code, body)
	}
	if code, _ := get(t, ts.URL+"/experiment/fig99"); code != http.StatusNotFound {
		t.Errorf("unknown experiment: %d", code)
	}
	if code, _ := get(t, ts.URL+"/experiment/fig1?scale=9"); code != http.StatusBadRequest {
		t.Errorf("bad scale: %d", code)
	}
	// Request scale is capped below the operator's full-volume range.
	if code, _ := get(t, ts.URL+"/experiment/fig1?scale=0.5"); code != http.StatusBadRequest {
		t.Errorf("over-cap scale: %d", code)
	}
}

func TestReplayScaleCapped(t *testing.T) {
	ts := testServer(t)
	if code, _ := get(t, ts.URL+"/replay?scale=0.5"); code != http.StatusBadRequest {
		t.Errorf("over-cap replay scale: %d", code)
	}
	if code, _ := get(t, ts.URL+"/replay.json?scale=0.9"); code != http.StatusBadRequest {
		t.Errorf("over-cap replay.json scale: %d", code)
	}
}

func TestRunSemaphoreSheds(t *testing.T) {
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	// Saturate the computation semaphore: further runs must be shed with
	// 503 instead of queuing, while cheap pages still serve.
	for i := 0; i < maxConcurrentRuns; i++ {
		srv.runs <- struct{}{}
	}
	defer func() {
		for i := 0; i < maxConcurrentRuns; i++ {
			<-srv.runs
		}
	}()
	resp, err := http.Get(ts.URL + "/replay?tracer=btrace&workload=IM")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated replay: status %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("no Retry-After on 503")
	}
	if code, _ := get(t, ts.URL+"/experiment/table1"); code != http.StatusServiceUnavailable {
		t.Errorf("saturated experiment: status %d", code)
	}
	if code, _ := get(t, ts.URL+"/"); code != http.StatusOK {
		t.Errorf("index while saturated: status %d", code)
	}
}

func TestReplayEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts.URL+"/replay?tracer=btrace&workload=IM")
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	for _, frag := range []string{"latest fragment", "effectivity", "replay.json"} {
		if !strings.Contains(body, frag) {
			t.Errorf("replay page missing %q", frag)
		}
	}
	if code, _ := get(t, ts.URL+"/replay?tracer=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown tracer: %d", code)
	}
	if code, _ := get(t, ts.URL+"/replay?workload=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown workload: %d", code)
	}
}

func TestReplayJSONEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/replay.json?tracer=btrace&workload=Music")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
}
