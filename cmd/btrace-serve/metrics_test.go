package main

import (
	"bufio"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"btrace"
	"btrace/internal/collect"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// parseProm parses a Prometheus text body into samples keyed by "name"
// or `name{labels}`, failing the test on malformed lines.
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series[line[:sp]] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

func scrape(t *testing.T, srv *server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	return parseProm(t, rec.Body.String())
}

// TestMetricsEndToEnd drives real traffic through all three instrumented
// subsystems — a tracer's block lifecycle, a supervised collector, and a
// durable store — then scrapes /metrics and checks that every subsystem's
// series are present and that the counters moved with the traffic.
func TestMetricsEndToEnd(t *testing.T) {
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := scrape(t, srv)

	// Core + collect: record events and pump them through a supervisor.
	tr, err := btrace.Open(btrace.Config{Cores: 2, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.Writer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 500
	for i := 0; i < writes; i++ {
		if err := w.Write(btrace.Event{TS: uint64(i), Category: 1, Level: 1}); err != nil {
			t.Fatal(err)
		}
	}
	r := tr.NewReader()
	defer r.Close()
	sup, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source: collect.Fallible(pollerFunc(r.Poll)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sup.Step()
	}
	// The supervisor's obs collector retires via finalizer; keep the
	// supervisor reachable past the scrape or a GC between here and
	// there folds its gauge series away.
	defer runtime.KeepAlive(sup)

	// Store: append, seal, close.
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEntries([]tracer.Entry{{Stamp: 1, TS: 1}, {Stamp: 2, TS: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	after := scrape(t, srv)

	// Every subsystem must expose its series.
	for _, name := range []string{
		"btrace_core_writes_total",
		"btrace_core_written_bytes_total",
		"btrace_core_capacity_bytes",
		"btrace_collect_polls_total",
		"btrace_collect_pending_dumps",
		"btrace_store_appends_total",
		`btrace_store_append_ns_bucket{le="+Inf"}`,
		"btrace_store_fsync_ns_count",
		"btrace_store_seals_total",
	} {
		if _, ok := after[name]; !ok {
			t.Errorf("series %s missing from /metrics", name)
		}
	}

	// And the traffic must be visible as counter movement. Other tests in
	// the process share the registry, so compare against the first scrape
	// instead of zero.
	if got := after["btrace_core_writes_total"] - before["btrace_core_writes_total"]; got < writes {
		t.Errorf("core writes moved by %v, want >= %d", got, writes)
	}
	if got := after["btrace_collect_polls_total"] - before["btrace_collect_polls_total"]; got < 3 {
		t.Errorf("collector polls moved by %v, want >= 3", got)
	}
	if got := after["btrace_store_appends_total"] - before["btrace_store_appends_total"]; got < 2 {
		t.Errorf("store appends moved by %v, want >= 2", got)
	}
	// The closed store folded into retired totals: its counters persist,
	// its per-instance gauge contribution is gone or reduced to other
	// live stores.
	if got := after["btrace_store_seals_total"] - before["btrace_store_seals_total"]; got < 1 {
		t.Errorf("store seals moved by %v, want >= 1", got)
	}
}

// pollerFunc adapts a Poll closure to collect.Poller.
type pollerFunc func() ([]tracer.Entry, uint64)

func (f pollerFunc) Poll() ([]tracer.Entry, uint64) { return f() }

// TestPprofEndpoints checks the pprof surface responds on the private mux.
func TestPprofEndpoints(t *testing.T) {
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s status %d", path, rec.Code)
		}
	}
}
