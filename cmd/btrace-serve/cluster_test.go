package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"btrace/internal/btql"
	"btrace/internal/distributor"
	"btrace/internal/overload"
	"btrace/internal/tracer"
)

// newClusterServer builds a server in cluster mode over a temp root.
func newClusterServer(t *testing.T, shards, rf int, overrides string) *server {
	t.Helper()
	ov, err := distributor.ParseOverrides(overrides)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := newClusterPipeline(clusterConfig{
		Dir:         t.TempDir(),
		Shards:      shards,
		Replication: rf,
		Overrides:   ov,
		Gate:        overload.Config{MinSampleRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cp.Close() })
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.attachCluster(cp)
	return srv
}

func clusterEvents(n int, start uint64) []tracer.Entry {
	es := make([]tracer.Entry, n)
	for i := range es {
		stamp := start + uint64(i)
		es[i] = tracer.Entry{Stamp: stamp, TS: stamp * 1000, TID: uint32(50 + i%8),
			Category: 1, Level: 1, Payload: []byte(fmt.Sprintf("s%d", stamp))}
	}
	return es
}

// TestClusterIngestQueryEndToEnd: a tenant batch POSTed to /ingest is
// quorum-replicated across the shards; /store/query returns exactly one
// copy of each event; /store/segments and /ring break the fleet down
// per shard with the tenant attributed.
func TestClusterIngestQueryEndToEnd(t *testing.T) {
	srv := newClusterServer(t, 4, 2, "")
	body := encodeEvents(t, clusterEvents(60, 1))
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(string(body)))
	req.Header.Set(tenantHeader, "acme")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 202 {
		t.Fatalf("/ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Tenant string
		Acked  int
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "acme" || resp.Acked != 60 {
		t.Fatalf("ingest response %+v, want 60 acked for acme", resp)
	}

	// RF=2 stores two copies; the merged query view returns one.
	qrec := httpGet(t, srv, "/store/query?format=csv&limit=1000")
	if qrec.Code != 200 {
		t.Fatalf("/store/query status %d: %s", qrec.Code, qrec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(qrec.Body.String()), "\n")
	if got := len(lines) - 1; got != 60 { // minus header row
		t.Fatalf("query returned %d rows, want 60", got)
	}

	// Per-shard breakdown with fleet totals: RF=2 means 120 raw copies.
	srec := httpGet(t, srv, "/store/segments")
	if srec.Code != 200 {
		t.Fatalf("/store/segments status %d", srec.Code)
	}
	var segs struct {
		Shards []struct {
			Name   string
			Events uint64
		}
		Events  uint64
		Tenants map[string]overload.TenantStats
	}
	if err := json.NewDecoder(srec.Body).Decode(&segs); err != nil {
		t.Fatal(err)
	}
	if len(segs.Shards) != 4 {
		t.Fatalf("segments list %d shards, want 4", len(segs.Shards))
	}
	if segs.Events != 120 {
		t.Fatalf("fleet holds %d events, want 120 (60 x RF 2)", segs.Events)
	}
	if segs.Tenants["acme"].Seen != 60 {
		t.Fatalf("tenant attribution %+v, want acme seen 60", segs.Tenants)
	}

	// Probes: ready with the full ring healthy.
	if rrec := httpGet(t, srv, "/readyz"); rrec.Code != 200 {
		t.Fatalf("/readyz status %d: %s", rrec.Code, rrec.Body.String())
	}
}

// TestClusterRingTopology: GET /ring reports ownership summing to ~1;
// POST add/drain reshape the ring and keep the data readable.
func TestClusterRingTopology(t *testing.T) {
	srv := newClusterServer(t, 3, 2, "")
	body := encodeEvents(t, clusterEvents(40, 1))
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 202 {
		t.Fatalf("/ingest status %d: %s", rec.Code, rec.Body.String())
	}

	var info struct {
		Replication int
		Shards      []struct {
			Name      string
			Healthy   bool
			Ownership float64
		}
	}
	grec := httpGet(t, srv, "/ring")
	if grec.Code != 200 {
		t.Fatalf("GET /ring status %d", grec.Code)
	}
	if err := json.NewDecoder(grec.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Replication != 2 || len(info.Shards) != 3 {
		t.Fatalf("ring info %+v", info)
	}
	var own float64
	for _, sh := range info.Shards {
		if !sh.Healthy {
			t.Fatalf("shard %s unhealthy at rest", sh.Name)
		}
		own += sh.Ownership
	}
	if own < 0.99 || own > 1.01 {
		t.Fatalf("ownership sums to %v, want ~1", own)
	}

	// Join a shard, then drain one of the originals.
	if prec := httpPost(t, srv, "/ring?action=add&shard=shard-77", nil); prec.Code != 200 {
		t.Fatalf("add shard: status %d: %s", prec.Code, prec.Body.String())
	}
	if prec := httpPost(t, srv, "/ring?action=add&shard=shard-77", nil); prec.Code != 409 {
		t.Fatalf("duplicate add: status %d, want 409", prec.Code)
	}
	if prec := httpPost(t, srv, "/ring?action=drain&shard=shard-01", nil); prec.Code != 200 {
		t.Fatalf("drain shard: status %d: %s", prec.Code, prec.Body.String())
	}
	if prec := httpPost(t, srv, "/ring?action=bogus&shard=shard-00", nil); prec.Code != 400 {
		t.Fatalf("bogus action: status %d, want 400", prec.Code)
	}
	if prec := httpPost(t, srv, "/ring?action=drain&shard=../evil", nil); prec.Code != 400 {
		t.Fatalf("bad shard name: status %d, want 400", prec.Code)
	}

	// All 40 events survive the reshape, exactly once each.
	qrec := httpGet(t, srv, "/store/query?format=csv&limit=1000")
	lines := strings.Split(strings.TrimSpace(qrec.Body.String()), "\n")
	if got := len(lines) - 1; got != 40 {
		t.Fatalf("query after reshape returned %d rows, want 40", got)
	}
}

// TestClusterTenantOverrideOverHTTP: the -tenant-overrides quota drops
// events for the named tenant and the response attributes them.
func TestClusterTenantOverrideOverHTTP(t *testing.T) {
	srv := newClusterServer(t, 2, 2, "limited=1:1")
	es := make([]tracer.Entry, 6)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: 1000, TID: 9, Category: 1, Level: 1}
	}
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(string(encodeEvents(t, es))))
	req.Header.Set(tenantHeader, "limited")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 202 {
		t.Fatalf("/ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Acked     int
		Throttled int
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Acked != 1 || resp.Throttled != 5 {
		t.Fatalf("limited tenant: %+v, want 1 acked 5 throttled", resp)
	}
}

// TestClusterModeOffSurface: without -shards the cluster endpoints
// explain themselves instead of 404ing silently.
func TestClusterModeOffSurface(t *testing.T) {
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := httpGet(t, srv, "/ring")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "-shards") {
		t.Fatalf("/ring without cluster: status %d body %q", rec.Code, rec.Body.String())
	}
}

// TestClusterBTQLAggregate: a ?q= aggregate in cluster mode runs over the
// merged replica-deduplicated stream — RF copies must not inflate counts.
func TestClusterBTQLAggregate(t *testing.T) {
	srv := newClusterServer(t, 4, 2, "")
	body := encodeEvents(t, clusterEvents(60, 1))
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(string(body)))
	req.Header.Set(tenantHeader, "acme")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 202 {
		t.Fatalf("/ingest status %d: %s", rec.Code, rec.Body.String())
	}

	qrec := httpGet(t, srv, "/store/query?q="+url.QueryEscape(`category == 1 | count()`))
	if qrec.Code != 200 {
		t.Fatalf("/store/query aggregate status %d: %s", qrec.Code, qrec.Body.String())
	}
	var resp struct {
		Result btql.Result `json:"result"`
	}
	if err := json.Unmarshal(qrec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid aggregate JSON: %v\n%s", err, qrec.Body.String())
	}
	if resp.Result.Kind != "count" || resp.Result.Events != 60 {
		t.Fatalf("cluster aggregate counted %d events, want 60 (RF must dedup): %+v",
			resp.Result.Events, resp.Result)
	}

	qrec = httpGet(t, srv, "/store/query?q="+url.QueryEscape(`tid == 52 | count()`))
	if qrec.Code != 200 {
		t.Fatalf("filtered aggregate status %d", qrec.Code)
	}
	if err := json.Unmarshal(qrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Events != 8 {
		t.Fatalf("tid == 52 counted %d events, want 8", resp.Result.Events)
	}
}
