package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// encodeEvents wire-encodes entries the way a client of POST /ingest
// would: tracer.EncodeEvent records, concatenated.
func encodeEvents(t *testing.T, es []tracer.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range es {
		rec := make([]byte, es[i].WireSize())
		n, err := tracer.EncodeEvent(rec, &es[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(rec[:n])
	}
	return buf.Bytes()
}

func httpGet(t *testing.T, srv *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func httpPost(t *testing.T, srv *server, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(body)))
	return rec
}

// TestProbesDashboardOnly: without an ingest pipeline the server is live
// and ready (it is a working read-only dashboard), and /ingest explains
// what is missing instead of 404ing.
func TestProbesDashboardOnly(t *testing.T) {
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec := httpGet(t, srv, "/healthz"); rec.Code != 200 {
		t.Errorf("/healthz status %d", rec.Code)
	}
	rec := httpGet(t, srv, "/readyz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "dashboard only") {
		t.Errorf("/readyz status %d body %q", rec.Code, rec.Body.String())
	}
	if rec := httpPost(t, srv, "/ingest", nil); rec.Code != 503 {
		t.Errorf("/ingest without store: status %d, want 503", rec.Code)
	}
}

// newIngestServer builds a server over a fresh store with a live ingest
// pipeline; cleanup stops the pipeline before the store closes, like
// main does.
func newIngestServer(t *testing.T, cfg ingestConfig) (*server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ing, err := newIngestPipeline(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	srv, err := newServer(0.005, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.attachIngest(ing)
	return srv, st
}

// TestIngestEndToEnd: well-formed posted events land durably in the
// store, the response reports the accepted count, and the probes stay
// green throughout.
func TestIngestEndToEnd(t *testing.T) {
	srv, st := newIngestServer(t, ingestConfig{SampleRate: 1, Shed: true})
	body := encodeEvents(t, []tracer.Entry{
		{Stamp: 1, TS: 10, TID: 7, Category: 1, Level: 1, Payload: []byte("a")},
		{Stamp: 2, TS: 20, TID: 7, Category: 1, Level: 1},
		{Stamp: 3, TS: 30, TID: 7, Category: 2, Level: 2},
	})
	rec := httpPost(t, srv, "/ingest", body)
	if rec.Code != 202 {
		t.Fatalf("/ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct{ Accepted int }
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 {
		t.Fatalf("accepted %d, want 3", resp.Accepted)
	}
	if rec := httpGet(t, srv, "/readyz"); rec.Code != 200 {
		t.Fatalf("/readyz during ingest: %d %s", rec.Code, rec.Body.String())
	}
	// The pipeline drains asynchronously; closing it flushes everything
	// accepted, after which the store must hold all three events.
	srv.ingest.Close()
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Events() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("store holds %d events, want 3", st.Events())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestRejectsBadPayloads covers the 4xx surface: wrong method,
// corrupt framing, event-free payloads, oversized bodies.
func TestIngestRejectsBadPayloads(t *testing.T) {
	srv, _ := newIngestServer(t, ingestConfig{SampleRate: 1, Shed: true})
	if rec := httpGet(t, srv, "/ingest"); rec.Code != 405 {
		t.Errorf("GET /ingest: status %d, want 405", rec.Code)
	}
	if rec := httpPost(t, srv, "/ingest", []byte("garbage!")); rec.Code != 400 {
		t.Errorf("corrupt payload: status %d, want 400", rec.Code)
	}
	if rec := httpPost(t, srv, "/ingest", nil); rec.Code != 400 {
		t.Errorf("empty payload: status %d, want 400", rec.Code)
	}
	if rec := httpPost(t, srv, "/ingest", make([]byte, maxIngestBody+8)); rec.Code != 413 {
		t.Errorf("oversized payload: status %d, want 413", rec.Code)
	}
}

// TestIngestQueueFullBackpressure: a stalled pipeline (no drain
// goroutine, one-slot queue) answers 429 with Retry-After instead of
// queuing without bound.
func TestIngestQueueFullBackpressure(t *testing.T) {
	srv, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.attachIngest(&ingestPipeline{queue: make(chan tenantBatch, 1)})
	body := encodeEvents(t, []tracer.Entry{{Stamp: 1, TS: 10, TID: 7, Category: 1, Level: 1}})
	if rec := httpPost(t, srv, "/ingest", body); rec.Code != 202 {
		t.Fatalf("first post: status %d", rec.Code)
	}
	rec := httpPost(t, srv, "/ingest", body)
	if rec.Code != 429 {
		t.Fatalf("second post: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := srv.ingest.rejected.Load(); got != 1 {
		t.Errorf("rejected batches: %d, want 1", got)
	}
}

// TestReadyzReportsOverloadAndStoreFailure: the readiness probe turns
// 503 with a reason for each not-ready condition it folds in.
func TestReadyzReportsOverloadAndStoreFailure(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(0.005, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-built pipeline (no goroutine) lets the test set snapshot
	// state deterministically.
	p := &ingestPipeline{st: st}
	srv.attachIngest(p)

	if rec := httpGet(t, srv, "/readyz"); rec.Code != 200 {
		t.Fatalf("healthy: /readyz status %d", rec.Code)
	}
	p.mu.Lock()
	p.tier = overload.TierStream
	p.mu.Unlock()
	rec := httpGet(t, srv, "/readyz")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "full-drop tier") {
		t.Errorf("full-drop tier: status %d body %q", rec.Code, rec.Body.String())
	}
	p.mu.Lock()
	p.tier = overload.TierNone
	p.health.SinkFailed = true
	p.mu.Unlock()
	rec = httpGet(t, srv, "/readyz")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "permanent failure") {
		t.Errorf("sink failed: status %d body %q", rec.Code, rec.Body.String())
	}
	p.mu.Lock()
	p.health.SinkFailed = false
	p.mu.Unlock()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec = httpGet(t, srv, "/readyz")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "store write path failed") {
		t.Errorf("closed store: status %d body %q", rec.Code, rec.Body.String())
	}
}
