package main

import (
	"errors"
	"net/http"
	"time"

	"btrace/internal/live"
	"btrace/internal/tracer"
)

// liveHeartbeat is how often an idle /live stream emits a keepalive
// comment so proxies and clients can tell a quiet trace from a dead
// connection.
const liveHeartbeat = 15 * time.Second

// liveBatch sizes the per-drain read from the subscriber's ring.
const liveBatch = 256

// handleLive serves GET /live: a Server-Sent-Events stream of admitted
// ingest events, filtered by the /store/query parameter shapes
// (min_ts, max_ts, cores, categories, tids) and scoped to the
// X-Btrace-Tenant header when one is sent (absent = all tenants, the
// single-operator dashboard view). Slow subscribers see their loss as
// missed events; a subscriber that falls EvictAfterMissed behind gets
// a terminal evicted event. 503 when the subscriber cap is reached.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		http.Error(w, "live tail requires an ingest path (start btrace-serve with -store)",
			http.StatusNotFound)
		return
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	filter, err := live.ParseQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	filter.Tenant = r.Header.Get(tenantHeader)
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	sub, err := s.live.Subscribe(filter)
	if err != nil {
		if errors.Is(err, live.ErrSubscribers) {
			w.Header().Set("Retry-After", "5")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// The server's blanket WriteTimeout would cut a healthy tail after
	// two minutes; a live stream manages its own liveness via
	// heartbeats instead.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})

	heartbeat := time.NewTicker(liveHeartbeat)
	defer heartbeat.Stop()
	batch := make([]tracer.Entry, liveBatch)
	for {
		n, missed, err := sub.Next(batch)
		// Loss first: the missed events precede the buffered ones.
		if missed > 0 {
			if werr := live.EncodeMissed(w, missed); werr != nil {
				return
			}
		}
		for i := 0; i < n; i++ {
			if werr := live.EncodeFrame(w, &batch[i]); werr != nil {
				return
			}
		}
		if err != nil {
			if errors.Is(err, live.ErrEvicted) {
				live.EncodeEvicted(w, sub.Stats().Missed)
				flusher.Flush()
			}
			return
		}
		if n > 0 || missed > 0 {
			flusher.Flush()
			continue
		}
		// Idle: park until the hub signals, the client leaves, or the
		// heartbeat fires.
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-sub.Notify():
		case <-heartbeat.C:
			if _, werr := w.Write([]byte(": keepalive\n\n")); werr != nil {
				return
			}
			flusher.Flush()
		}
	}
}
