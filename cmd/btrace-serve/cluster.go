package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"btrace/internal/distributor"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/store/backend"
)

// clusterGateEvery is how often the cluster's shared overload gate is
// re-evaluated against the worst store pressure across the shard fleet.
// The single-store pipeline evaluates per supervisor step; the cluster's
// gate has no step loop of its own, so a ticker stands in.
const clusterGateEvery = 250 * time.Millisecond

// shardNamePattern constrains operator-supplied shard names: they become
// directory names under the cluster root.
var shardNamePattern = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// clusterConfig shapes a clusterPipeline.
type clusterConfig struct {
	// Dir is the cluster root; each shard stores under Dir/shard-NN.
	Dir string
	// Shards is the initial shard count (-shards).
	Shards int
	// Replication is the replica count per stream key (-replication).
	Replication int
	// Overrides are the parsed per-tenant quota overrides
	// (-tenant-overrides).
	Overrides map[string]distributor.TenantLimit
	// Store is the per-shard store configuration template; Backend is
	// ignored (each shard gets its own).
	Store store.Config
	// ObjectBackend gives every shard an in-process volatile backend
	// (-backend object).
	ObjectBackend bool
	// Gate configures the shared overload gate.
	Gate overload.Config
}

// clusterPipeline owns the distributed ingest tier inside btrace-serve:
// N in-process replicated shards under one directory root, fronted by
// the consistent-hash distributor, plus the background gate evaluation
// the single-store path gets from its supervisor loop.
type clusterPipeline struct {
	cfg clusterConfig
	d   *distributor.Distributor

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// topo serializes operator topology changes (/ring POST): add, drain
	// and remove are rare and slow, so one at a time is plenty.
	topo sync.Mutex
}

// openShard opens one shard's store under the cluster root and wraps it
// in a LocalShard.
func (cfg clusterConfig) openShard(name string) (*distributor.LocalShard, error) {
	scfg := cfg.Store
	if cfg.ObjectBackend {
		scfg.Backend = backend.NewObject()
	}
	st, err := store.Open(filepath.Join(cfg.Dir, name), scfg)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", name, err)
	}
	sh, err := distributor.NewLocalShard(distributor.LocalConfig{Name: name, Store: st})
	if err != nil {
		st.Close()
		return nil, err
	}
	return sh, nil
}

// newClusterPipeline opens the shard stores and starts the gate loop.
func newClusterPipeline(cfg clusterConfig) (*clusterPipeline, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("cluster needs at least 2 shards, got %d", cfg.Shards)
	}
	if cfg.Replication < 1 || cfg.Replication > cfg.Shards {
		return nil, fmt.Errorf("replication %d out of [1, %d shards]", cfg.Replication, cfg.Shards)
	}
	shards := make([]distributor.Shard, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := cfg.openShard(fmt.Sprintf("shard-%02d", i))
		if err != nil {
			for _, prev := range shards {
				prev.Close()
			}
			return nil, err
		}
		shards = append(shards, sh)
	}
	d, err := distributor.New(shards, distributor.Config{
		Replication: cfg.Replication,
		Overrides:   cfg.Overrides,
		Gate:        cfg.Gate,
	})
	if err != nil {
		for _, prev := range shards {
			prev.Close()
		}
		return nil, err
	}
	p := &clusterPipeline{cfg: cfg, d: d, stop: make(chan struct{}), done: make(chan struct{})}
	go p.gateLoop()
	return p, nil
}

// gateLoop periodically folds the fleet's store pressure into the shared
// gate so the shedding tiers engage and release like the single-store
// path's.
func (p *clusterPipeline) gateLoop() {
	defer close(p.done)
	t := time.NewTicker(clusterGateEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.d.EvaluateGate()
		}
	}
}

// Close stops the gate loop and closes every shard (drain + flush +
// store close). Safe to call more than once.
func (p *clusterPipeline) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	return p.d.Close()
}

// addShard creates a fresh shard under the cluster root and joins it to
// the ring; the distributor copies the moved hash ranges onto it before
// returning.
func (p *clusterPipeline) addShard(name string) (distributor.DrainReport, error) {
	sh, err := p.cfg.openShard(name)
	if err != nil {
		return distributor.DrainReport{}, err
	}
	rep, err := p.d.AddShard(sh)
	if err != nil {
		sh.Close()
		return rep, err
	}
	return rep, nil
}

// drainShard re-places the shard's moved ranges onto the survivors,
// removes it from the ring, and closes it.
func (p *clusterPipeline) drainShard(name string) (distributor.DrainReport, error) {
	sh, rep, err := p.d.DrainShard(name)
	if sh != nil {
		sh.Close()
	}
	return rep, err
}

// removeShard is the crash path: drop the shard from the ring without
// moving anything, relying on its peers' replicas.
func (p *clusterPipeline) removeShard(name string) error {
	sh, err := p.d.RemoveShard(name)
	if err != nil {
		return err
	}
	return sh.Close()
}

// handleRing serves the cluster topology. GET returns the ring view —
// per-shard ownership, health, footprint — plus the distributor's
// counters and per-tenant attribution. POST mutates the topology:
//
//	POST /ring?action=add&shard=shard-07     join a fresh shard
//	POST /ring?action=drain&shard=shard-02   re-place moved ranges, then remove
//	POST /ring?action=remove&shard=shard-02  drop without draining (crash path)
func (s *server) handleRing(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		http.Error(w, "not running in cluster mode (start btrace-serve with -shards)", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		resp := struct {
			distributor.Info
			Stats   distributor.Stats               `json:"stats"`
			Tenants map[string]overload.TenantStats `json:"tenants"`
			Tier    string                          `json:"overload_tier"`
		}{
			Info:    s.cluster.d.Info(),
			Stats:   s.cluster.d.Stats(),
			Tenants: s.cluster.d.TenantStats(),
			Tier:    s.cluster.d.GateTier().String(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPost:
		name := r.URL.Query().Get("shard")
		if !shardNamePattern.MatchString(name) {
			http.Error(w, "shard name must match "+shardNamePattern.String(), http.StatusBadRequest)
			return
		}
		s.cluster.topo.Lock()
		defer s.cluster.topo.Unlock()
		switch action := r.URL.Query().Get("action"); action {
		case "add":
			rep, err := s.cluster.addShard(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"added": name, "report": rep})
		case "drain":
			rep, err := s.cluster.drainShard(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"drained": name, "report": rep})
		case "remove":
			if err := s.cluster.removeShard(name); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"removed": name})
		default:
			http.Error(w, fmt.Sprintf("unknown action %q (add|drain|remove)", action), http.StatusBadRequest)
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}
