package main

import (
	"bytes"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"btrace/internal/analysis"
	"btrace/internal/experiments"
	"btrace/internal/export"
	"btrace/internal/live"
	"btrace/internal/obs"
	"btrace/internal/replay"
	"btrace/internal/store"
	"btrace/internal/tracer"
	"btrace/internal/workload"

	_ "btrace/internal/bbq"
	_ "btrace/internal/core"
	_ "btrace/internal/ftrace"
	_ "btrace/internal/lttng"
	_ "btrace/internal/vtrace"
)

// experimentNames lists the dashboard's experiments in display order.
var experimentNames = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"table1", "fig10", "table2", "fig11", "memreq",
}

// maxRequestScale caps the ?scale= a request may ask for: replays and
// experiments are CPU-bound, and an unauthenticated query must not be
// able to demand a full-volume run. (The operator's -scale flag is
// validated separately in main — it may go up to 1, but never outside
// (0, 1].)
const maxRequestScale = 0.25

// maxQueryEvents caps /store/query responses; larger extractions should
// page by stamp range.
const maxQueryEvents = 1 << 20

// defaultQueryEvents is the /store/query limit applied when the request
// does not pick one.
const defaultQueryEvents = 1 << 16

// maxConcurrentRuns bounds simultaneous experiment/replay executions;
// excess requests are rejected with 503 instead of queuing without bound.
const maxConcurrentRuns = 4

// server is the dashboard handler.
type server struct {
	mux          *http.ServeMux
	defaultScale float64
	tmpl         *template.Template
	// runs is the semaphore limiting concurrent heavy computations.
	runs chan struct{}
	// store is the durable trace store served by /store/*; nil when the
	// server runs without one.
	store *store.Store
	// queryWorkers sizes the parallel scan pool /store/query uses; zero
	// or negative falls back to the sequential cursor.
	queryWorkers int
	// ingest is the POST /ingest delivery pipeline; nil when the server
	// runs without a store (attachIngest wires it after construction).
	ingest *ingestPipeline
	// cluster is the distributed ingest tier (-shards); nil in
	// single-store and dashboard-only deployments. When set it takes over
	// /ingest, /store/query, /store/segments and /readyz, and serves
	// /ring.
	cluster *clusterPipeline
	// live fans admitted ingest batches out to /live subscribers; nil in
	// dashboard-only deployments (attachLive wires it).
	live *live.Hub
}

func newServer(defaultScale float64, st *store.Store, queryWorkers int) (*server, error) {
	if defaultScale <= 0 || defaultScale > 1 {
		return nil, fmt.Errorf("scale %v out of (0,1]", defaultScale)
	}
	s := &server{
		mux:          http.NewServeMux(),
		defaultScale: defaultScale,
		tmpl:         template.Must(template.New("page").Parse(pageTemplate)),
		runs:         make(chan struct{}, maxConcurrentRuns),
		store:        st,
		queryWorkers: queryWorkers,
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/experiment/", s.handleExperiment)
	s.mux.HandleFunc("/replay", s.handleReplay)
	s.mux.HandleFunc("/replay.json", s.handleReplayJSON)
	s.mux.HandleFunc("/store/segments", s.handleStoreSegments)
	s.mux.HandleFunc("/store/query", s.handleStoreQuery)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/ring", s.handleRing)
	s.mux.HandleFunc("/live", s.handleLive)
	// Probe surface: /healthz is pure liveness, /readyz folds in the
	// store write path and the overload controller (see ingest.go).
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	// Self-observability surface: Prometheus text metrics over the
	// process-wide registry, plus the standard pprof profiles (explicit
	// routes — importing net/http/pprof for its DefaultServeMux side
	// effect would do nothing for this private mux).
	s.mux.Handle("/metrics", obs.Default().Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// attachIngest hands the server its ingest pipeline. Separate from
// newServer so dashboard-only deployments (and most tests) need not
// build one.
func (s *server) attachIngest(p *ingestPipeline) { s.ingest = p }

// attachCluster hands the server its distributed ingest tier; mutually
// exclusive with attachIngest (main wires one or the other).
func (s *server) attachCluster(p *clusterPipeline) { s.cluster = p }

// attachLive hands the server the hub its /live endpoint subscribes
// against; main wires the same hub into the ingest gate's Admitted hook.
func (s *server) attachLive(h *live.Hub) { s.live = h }

// acquireRun takes a slot in the computation semaphore, answering 503
// (with Retry-After) and returning false when the server is saturated.
// The caller must invoke the returned release func when done.
func (s *server) acquireRun(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.runs <- struct{}{}:
		return func() { <-s.runs }, true
	default:
		w.Header().Set("Retry-After", "5")
		http.Error(w, fmt.Sprintf("busy: %d runs already in flight", maxConcurrentRuns),
			http.StatusServiceUnavailable)
		return nil, false
	}
}

// requestScale parses and validates a ?scale= value from a request.
func requestScale(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 || f > maxRequestScale {
		return 0, fmt.Errorf("bad scale %q (allowed: (0, %v])", v, maxRequestScale)
	}
	return f, nil
}

// page is the template payload.
type page struct {
	Title       string
	Experiments []string
	Tracers     []string
	Workloads   []string
	Body        string // preformatted ASCII output
	Elapsed     string
	Links       []link
}

type link struct{ Href, Label string }

func (s *server) render(w http.ResponseWriter, p page) {
	p.Experiments = experimentNames
	p.Tracers = tracer.Names()
	p.Workloads = workload.Names()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tmpl.Execute(w, p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, page{
		Title: "BTrace benchmark dashboard",
		Body: "Pick an experiment above to regenerate the paper's table/figure,\n" +
			"or run an ad-hoc replay: /replay?tracer=btrace&workload=Video-1\n\n" +
			"Defaults: scale=" + strconv.FormatFloat(s.defaultScale, 'f', -1, 64) +
			" (override with ?scale=), budget=12MiB scaled with volume.",
	})
}

// options extracts experiment options from the query string.
func (s *server) options(r *http.Request) (experiments.Options, error) {
	o := experiments.Defaults()
	o.RateScale = s.defaultScale
	q := r.URL.Query()
	if v := q.Get("scale"); v != "" {
		f, err := requestScale(v)
		if err != nil {
			return o, err
		}
		o.RateScale = f
	}
	if v := q.Get("workloads"); v != "" {
		o.Workloads = strings.Split(v, ",")
	}
	if v := q.Get("tracers"); v != "" {
		o.Tracers = strings.Split(v, ",")
	}
	return o, nil
}

func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/experiment/")
	opt, err := s.options(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.acquireRun(w)
	if !ok {
		return
	}
	defer release()
	var res interface{ Render(io.Writer) }
	started := time.Now()
	switch name {
	case "fig1":
		res, err = experiments.Fig1(opt)
	case "fig2":
		res, err = experiments.Fig2(opt)
	case "fig3":
		res, err = experiments.Fig3(opt)
	case "fig4":
		res, err = experiments.Fig4(opt)
	case "fig5":
		res, err = experiments.Fig5(opt)
	case "fig6":
		res, err = experiments.Fig6(opt)
	case "fig10":
		res, err = experiments.Fig10(opt)
	case "fig11":
		res, err = experiments.Fig11(opt)
	case "table1":
		res, err = experiments.Table1(opt)
	case "table2":
		res, err = experiments.Table2(opt)
	case "memreq":
		res, err = experiments.MemoryRequirement(opt)
	default:
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var buf bytes.Buffer
	res.Render(&buf)
	s.render(w, page{
		Title:   name,
		Body:    buf.String(),
		Elapsed: time.Since(started).Round(time.Millisecond).String(),
	})
}

// runReplay executes the query's replay and returns the tracer (for
// readout), result and analysis.
func (s *server) runReplay(r *http.Request) (tracer.Tracer, *replay.Result, analysis.Retention, error) {
	var zero analysis.Retention
	q := r.URL.Query()
	tn := q.Get("tracer")
	if tn == "" {
		tn = "btrace"
	}
	wn := q.Get("workload")
	if wn == "" {
		wn = "eShop-1"
	}
	scale := s.defaultScale
	if v := q.Get("scale"); v != "" {
		f, err := requestScale(v)
		if err != nil {
			return nil, nil, zero, err
		}
		scale = f
	}
	w, err := workload.ByName(wn)
	if err != nil {
		return nil, nil, zero, err
	}
	budget := int(12 << 20 * scale)
	if budget < 12*4*4096 {
		budget = 12 * 4 * 4096
	}
	tr, err := tracer.New(tn, budget, 12, w.ThreadsTotal*12)
	if err != nil {
		return nil, nil, zero, err
	}
	res, err := replay.Run(replay.Config{
		Tracer: tr, Workload: w, Mode: replay.ThreadLevel,
		RateScale: scale, PreemptProb: 0.002, MeasureLatency: true,
	})
	if err != nil {
		return nil, nil, zero, err
	}
	retained, err := replay.RetainedStamps(tr)
	if err != nil {
		return nil, nil, zero, err
	}
	ret, err := analysis.Analyze(res.Truth, retained, budget)
	if err != nil {
		return nil, nil, zero, err
	}
	return tr, res, ret, nil
}

func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquireRun(w)
	if !ok {
		return
	}
	defer release()
	started := time.Now()
	_, res, ret, err := s.runReplay(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lat := analysis.Latency(res.LatenciesNs)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "written:          %d events (%d dropped by policy)\n", res.Written, res.Dropped)
	fmt.Fprintf(&buf, "retained:         %d events\n", ret.Retained)
	fmt.Fprintf(&buf, "latest fragment:  %.2f MB (%d entries)\n", float64(ret.LatestFragmentBytes)/1e6, ret.LatestFragmentEntries)
	fmt.Fprintf(&buf, "fragments:        %d\n", ret.Fragments)
	fmt.Fprintf(&buf, "loss rate:        %.2f%%\n", ret.LossRate*100)
	fmt.Fprintf(&buf, "effectivity:      %.2f%%\n", ret.EffectivityRatio*100)
	fmt.Fprintf(&buf, "latency geo-mean: %.0f ns (p99 %d ns)\n", lat.GeoMean, lat.P99)
	s.render(w, page{
		Title:   "replay " + r.URL.RawQuery,
		Body:    buf.String(),
		Elapsed: time.Since(started).Round(time.Millisecond).String(),
		Links:   []link{{Href: "/replay.json?" + r.URL.RawQuery, Label: "download Chrome trace JSON"}},
	})
}

func (s *server) handleReplayJSON(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquireRun(w)
	if !ok {
		return
	}
	defer release()
	tr, _, _, err := s.runReplay(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="btrace-replay.json"`)
	// Stream through a cursor when the tracer supports it: the response is
	// produced in bounded batches instead of materializing the readout.
	if cs, ok := tr.(tracer.CursorSource); ok {
		cur := cs.NewCursor()
		defer cur.Close()
		batch := make([]tracer.Entry, 1024)
		if _, _, err := export.ChromeTraceCursor(w, cur, batch); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	es, err := tr.ReadAll()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := export.ChromeTrace(w, es); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

const pageTemplate = `<!DOCTYPE html>
<html><head><title>{{.Title}} — btrace</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; max-width: 110ch; }
nav a { margin-right: .8rem; }
pre { background: #f6f6f6; padding: 1rem; overflow-x: auto; font-size: 12px; line-height: 1.35; }
.meta { color: #666; font-size: .9rem; }
</style></head>
<body>
<h1>{{.Title}}</h1>
<nav>{{range .Experiments}}<a href="/experiment/{{.}}">{{.}}</a>{{end}}</nav>
{{if .Elapsed}}<p class="meta">computed in {{.Elapsed}}</p>{{end}}
<pre>{{.Body}}</pre>
{{range .Links}}<p><a href="{{.Href}}">{{.Label}}</a></p>{{end}}
<p class="meta">tracers: {{range .Tracers}}{{.}} {{end}}| workloads: {{range .Workloads}}{{.}} {{end}}</p>
</body></html>`
