package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"btrace/internal/live"
	"btrace/internal/tracer"
)

// liveServer builds a single-store ingest server with a live hub wired
// through the gate's Admitted hook, served over a real listener (SSE
// needs a streaming connection, which ResponseRecorder cannot provide).
func liveServer(t *testing.T, hubCfg live.Config) (*httptest.Server, *live.Hub) {
	t.Helper()
	hub := live.NewHub(hubCfg)
	srv, _ := newIngestServer(t, ingestConfig{SampleRate: 1, Hub: hub})
	srv.attachLive(hub)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, hub
}

// sseFrame is one decoded trace event plus the stream position it
// arrived at, collected by readLiveStamps.
func readLiveStamps(t *testing.T, resp *http.Response, want int) []tracer.Entry {
	t.Helper()
	sr := live.NewStreamReader(resp.Body)
	var got []tracer.Entry
	for len(got) < want {
		event, data, err := sr.Next()
		if err != nil {
			t.Fatalf("stream ended after %d/%d events: %v", len(got), want, err)
		}
		switch event {
		case live.EventTrace:
			e, err := live.DecodeFrame(data)
			if err != nil {
				t.Fatalf("bad frame %q: %v", data, err)
			}
			got = append(got, e)
		case live.EventMissed:
			t.Fatalf("unexpected missed event on a fast subscriber: %q", data)
		}
	}
	return got
}

// TestLiveTailEndToEnd: events POSTed to /ingest arrive on a matching
// /live subscription in stamp order, filtered server-side, with
// payloads intact — the full admitted-batch fan-out path through the
// gate hook, the hub, and the SSE encoder.
func TestLiveTailEndToEnd(t *testing.T) {
	ts, _ := liveServer(t, live.Config{})

	resp, err := http.Get(ts.URL + "/live?tids=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/live status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	// Half the events match the tids filter, half must be screened out.
	var es []tracer.Entry
	for i := 1; i <= 20; i++ {
		tid := uint32(7)
		if i%2 == 0 {
			tid = 9
		}
		es = append(es, tracer.Entry{
			Stamp: uint64(i), TS: uint64(1000 + i), TID: tid,
			Category: 1, Level: 2, Payload: []byte{byte(i), 0xEE},
		})
	}
	post, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(encodeEvents(t, es)))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusAccepted {
		t.Fatalf("/ingest status %d", post.StatusCode)
	}

	got := readLiveStamps(t, resp, 10)
	for i, e := range got {
		wantStamp := uint64(2*i + 1)
		if e.Stamp != wantStamp || e.TID != 7 {
			t.Fatalf("frame %d: stamp %d tid %d, want stamp %d tid 7", i, e.Stamp, e.TID, wantStamp)
		}
		if len(e.Payload) != 2 || e.Payload[0] != byte(wantStamp) || e.Payload[1] != 0xEE {
			t.Fatalf("frame %d payload %v", i, e.Payload)
		}
	}
}

// TestLiveTenantScoping: a subscription carrying X-Btrace-Tenant sees
// only that tenant's admitted events; one without the header sees all.
func TestLiveTenantScoping(t *testing.T) {
	ts, hub := liveServer(t, live.Config{})

	req, _ := http.NewRequest("GET", ts.URL+"/live", nil)
	req.Header.Set(tenantHeader, "beta")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait for the subscription to land before publishing: Subscribe
	// happens inside the handler, racing the POSTs below.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	for i, tenant := range []string{"alpha", "beta"} {
		es := []tracer.Entry{{Stamp: uint64(100 + i), TS: 5, TID: 1, Level: 1}}
		req, _ := http.NewRequest("POST", ts.URL+"/ingest",
			bytes.NewReader(encodeEvents(t, es)))
		req.Header.Set(tenantHeader, tenant)
		pr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
		if pr.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest as %s: status %d", tenant, pr.StatusCode)
		}
	}

	got := readLiveStamps(t, resp, 1)
	if got[0].Stamp != 101 {
		t.Fatalf("beta subscriber saw stamp %d, want only beta's 101", got[0].Stamp)
	}
}

// TestLiveInterleavedClients: batches from independent clients arrive
// on the ingest queue in arbitrary global stamp order (client B's
// higher-stamped batch before client A's). The pipeline's verifier runs
// in unordered mode, so both batches must reach a live subscriber — a
// regression here means interleaved traffic is quarantined around the
// gate: persisted but invisible to live tail, sampling and rate limits.
func TestLiveInterleavedClients(t *testing.T) {
	ts, hub := liveServer(t, live.Config{})

	resp, err := http.Get(ts.URL + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	batches := [][]tracer.Entry{
		{{Stamp: 100, TS: 10, TID: 9, Category: 1, Level: 1},
			{Stamp: 101, TS: 11, TID: 9, Category: 1, Level: 1}},
		{{Stamp: 1, TS: 1, TID: 7, Category: 1, Level: 1},
			{Stamp: 2, TS: 2, TID: 7, Category: 1, Level: 1}},
	}
	for _, es := range batches {
		post, err := http.Post(ts.URL+"/ingest", "application/octet-stream",
			bytes.NewReader(encodeEvents(t, es)))
		if err != nil {
			t.Fatal(err)
		}
		post.Body.Close()
		if post.StatusCode != http.StatusAccepted {
			t.Fatalf("/ingest status %d", post.StatusCode)
		}
	}

	got := readLiveStamps(t, resp, 4)
	want := []uint64{100, 101, 1, 2}
	for i, e := range got {
		if e.Stamp != want[i] {
			t.Fatalf("frame %d: stamp %d, want %d (got %+v)", i, e.Stamp, want[i], got)
		}
	}
}

// TestLiveRequestValidation covers the non-streaming error paths, which
// return immediately and so work against a plain recorder.
func TestLiveRequestValidation(t *testing.T) {
	hub := live.NewHub(live.Config{MaxSubscribers: 1})
	srv, _ := newIngestServer(t, ingestConfig{SampleRate: 1, Hub: hub})
	srv.attachLive(hub)

	if rec := httpGet(t, srv, "/live?min_ts=5&max_ts=1"); rec.Code != http.StatusBadRequest {
		t.Errorf("inverted window: status %d, want 400", rec.Code)
	}
	if rec := httpGet(t, srv, "/live?tids=notanumber"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad tids: status %d, want 400", rec.Code)
	}
	if rec := httpPost(t, srv, "/live", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /live: status %d, want 405", rec.Code)
	}

	// Saturate the hub's one subscriber slot directly; the endpoint must
	// answer 503 with Retry-After rather than hanging.
	sub, err := hub.Subscribe(live.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	rec := httpGet(t, srv, "/live")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Errorf("over cap: status %d Retry-After %q, want 503 with Retry-After",
			rec.Code, rec.Header().Get("Retry-After"))
	}

	// Without a hub (dashboard-only) the endpoint explains what to start.
	bare, err := newServer(0.005, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec := httpGet(t, bare, "/live"); rec.Code != http.StatusNotFound ||
		!strings.Contains(rec.Body.String(), "-store") {
		t.Errorf("/live without hub: status %d body %q", rec.Code, rec.Body.String())
	}
}

// TestStoreQueryWorkersParam: ?workers= switches /store/query between
// the sequential and parallel scan surfaces, and both return the same
// stream; out-of-range values are rejected.
func TestStoreQueryWorkersParam(t *testing.T) {
	ts, _ := storeServer(t, 50)
	var bodies []string
	for _, q := range []string{"workers=0", "workers=4", ""} {
		url := ts.URL + "/store/query?format=csv"
		if q != "" {
			url += "&" + q
		}
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d:\n%s", q, code, body)
		}
		if n := strings.Count(body, "\n"); n != 51 { // header + 50 rows
			t.Fatalf("%s: %d lines, want 51", q, n)
		}
		bodies = append(bodies, body)
	}
	if bodies[0] != bodies[1] || bodies[1] != bodies[2] {
		t.Fatal("sequential, parallel and default surfaces disagree")
	}
	if code, _ := get(t, ts.URL+"/store/query?workers=99"); code != http.StatusBadRequest {
		t.Fatalf("workers=99: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/store/query?workers=-1"); code != http.StatusBadRequest {
		t.Fatalf("workers=-1: status %d, want 400", code)
	}
}
