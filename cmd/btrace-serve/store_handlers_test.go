package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"btrace/internal/btql"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

func storeServer(t *testing.T, n int) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for i := 0; i < n; i++ {
		e := tracer.Entry{
			Stamp:    uint64(i + 1),
			TS:       uint64(1000 + i),
			Core:     uint8(i % 4),
			Category: uint8(i % 3),
			Level:    1,
		}
		if err := st.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := newServer(0.005, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, st
}

func TestStoreEndpointsWithoutStore(t *testing.T) {
	ts := testServer(t) // no store configured
	for _, path := range []string{"/store/segments", "/store/query"} {
		if code, body := get(t, ts.URL+path); code != http.StatusNotFound ||
			!strings.Contains(body, "-store") {
			t.Errorf("%s without store: %d %q", path, code, body)
		}
	}
}

func TestStoreSegmentsEndpoint(t *testing.T) {
	ts, st := storeServer(t, 10)
	code, body := get(t, ts.URL+"/store/segments")
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	var resp struct {
		Dir      string              `json:"dir"`
		Segments []store.SegmentInfo `json:"segments"`
		Events   uint64              `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if resp.Dir != st.Dir() || resp.Events != 10 || len(resp.Segments) == 0 {
		t.Fatalf("segments response: %+v", resp)
	}
	if s0 := resp.Segments[0]; s0.BaseStamp != 1 || s0.MaxStamp != 10 {
		t.Fatalf("segment meta: %+v", s0)
	}
}

func TestStoreQueryEndpoint(t *testing.T) {
	ts, _ := storeServer(t, 20)

	// Default text format, stamp-range filtered.
	code, body := get(t, ts.URL+"/store/query?min_stamp=5&max_stamp=8")
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n") + 1; n != 4 {
		t.Fatalf("want 4 text lines, got %d:\n%s", n, body)
	}

	// CSV has a header row plus one line per event.
	code, body = get(t, ts.URL+"/store/query?format=csv&limit=3")
	if code != http.StatusOK || strings.Count(body, "\n") != 4 {
		t.Fatalf("csv: %d\n%s", code, body)
	}

	// Chrome trace is valid JSON with the filtered events.
	code, body = get(t, ts.URL+"/store/query?format=chrome&cores=1")
	if code != http.StatusOK {
		t.Fatalf("chrome: %d", code)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 { // stamps 2,6,10,14,18 on core 1
		t.Fatalf("chrome events: %d", len(parsed.TraceEvents))
	}

	// Parameter validation.
	for _, q := range []string{
		"?min_stamp=zebra",
		"?cores=1,999",
		"?limit=0",
		"?limit=99999999",
		"?format=xml",
	} {
		if code, _ := get(t, ts.URL+"/store/query"+q); code != http.StatusBadRequest {
			t.Errorf("query %s: status %d, want 400", q, code)
		}
	}
}

// TestStoreQueryBTQL: ?q= compiles a BTQL filter into the query and, with
// a pipeline aggregate, turns the response into one JSON document instead
// of an event stream.
func TestStoreQueryBTQL(t *testing.T) {
	ts, _ := storeServer(t, 20)
	esc := url.QueryEscape

	// Filter stage only: same text stream as the field parameters.
	code, body := get(t, ts.URL+"/store/query?q="+esc(`core == 1`))
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n") + 1; n != 5 {
		t.Fatalf("core == 1 matched %d lines, want 5:\n%s", n, body)
	}

	// BTQL ANDs with the field parameters.
	code, body = get(t, ts.URL+"/store/query?max_stamp=10&q="+esc(`core == 1`))
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n") + 1; n != 3 {
		t.Fatalf("core == 1 under max_stamp=10 matched %d lines, want 3", n)
	}

	// Aggregate stage: one JSON result, limit ignored.
	code, body = get(t, ts.URL+"/store/query?limit=2&q="+esc(`core == 1 | count()`))
	if code != http.StatusOK {
		t.Fatalf("aggregate status %d:\n%s", code, body)
	}
	var resp struct {
		Query  string      `json:"query"`
		Result btql.Result `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("invalid aggregate JSON: %v\n%s", err, body)
	}
	if resp.Result.Kind != "count" || resp.Result.Events != 5 {
		t.Fatalf("count aggregate: %+v", resp.Result)
	}

	code, body = get(t, ts.URL+"/store/query?q="+esc(`stamp <= 10 | topk(2, core)`))
	if code != http.StatusOK {
		t.Fatalf("topk status %d:\n%s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("invalid topk JSON: %v\n%s", err, body)
	}
	if resp.Result.Kind != "topk" || len(resp.Result.Top) != 2 ||
		resp.Result.Top[0].Value != 0 || resp.Result.Top[0].Count != 3 {
		t.Fatalf("topk aggregate: %+v", resp.Result)
	}

	// A malformed query is a client error.
	for _, bad := range []string{`core ==`, `tid ~ 5`, `| rate()`} {
		if code, _ := get(t, ts.URL+"/store/query?q="+esc(bad)); code != http.StatusBadRequest {
			t.Errorf("q=%s: status %d, want 400", bad, code)
		}
	}
}
