package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"btrace/internal/store"
	"btrace/internal/tracer"
)

func storeServer(t *testing.T, n int) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for i := 0; i < n; i++ {
		e := tracer.Entry{
			Stamp:    uint64(i + 1),
			TS:       uint64(1000 + i),
			Core:     uint8(i % 4),
			Category: uint8(i % 3),
			Level:    1,
		}
		if err := st.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := newServer(0.005, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, st
}

func TestStoreEndpointsWithoutStore(t *testing.T) {
	ts := testServer(t) // no store configured
	for _, path := range []string{"/store/segments", "/store/query"} {
		if code, body := get(t, ts.URL+path); code != http.StatusNotFound ||
			!strings.Contains(body, "-store") {
			t.Errorf("%s without store: %d %q", path, code, body)
		}
	}
}

func TestStoreSegmentsEndpoint(t *testing.T) {
	ts, st := storeServer(t, 10)
	code, body := get(t, ts.URL+"/store/segments")
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	var resp struct {
		Dir      string              `json:"dir"`
		Segments []store.SegmentInfo `json:"segments"`
		Events   uint64              `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if resp.Dir != st.Dir() || resp.Events != 10 || len(resp.Segments) == 0 {
		t.Fatalf("segments response: %+v", resp)
	}
	if s0 := resp.Segments[0]; s0.BaseStamp != 1 || s0.MaxStamp != 10 {
		t.Fatalf("segment meta: %+v", s0)
	}
}

func TestStoreQueryEndpoint(t *testing.T) {
	ts, _ := storeServer(t, 20)

	// Default text format, stamp-range filtered.
	code, body := get(t, ts.URL+"/store/query?min_stamp=5&max_stamp=8")
	if code != http.StatusOK {
		t.Fatalf("status %d:\n%s", code, body)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n") + 1; n != 4 {
		t.Fatalf("want 4 text lines, got %d:\n%s", n, body)
	}

	// CSV has a header row plus one line per event.
	code, body = get(t, ts.URL+"/store/query?format=csv&limit=3")
	if code != http.StatusOK || strings.Count(body, "\n") != 4 {
		t.Fatalf("csv: %d\n%s", code, body)
	}

	// Chrome trace is valid JSON with the filtered events.
	code, body = get(t, ts.URL+"/store/query?format=chrome&cores=1")
	if code != http.StatusOK {
		t.Fatalf("chrome: %d", code)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 { // stamps 2,6,10,14,18 on core 1
		t.Fatalf("chrome events: %d", len(parsed.TraceEvents))
	}

	// Parameter validation.
	for _, q := range []string{
		"?min_stamp=zebra",
		"?cores=1,999",
		"?limit=0",
		"?limit=99999999",
		"?format=xml",
	} {
		if code, _ := get(t, ts.URL+"/store/query"+q); code != http.StatusBadRequest {
			t.Errorf("query %s: status %d, want 400", q, code)
		}
	}
}
