package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"btrace/internal/btql"
	"btrace/internal/export"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// shardSegments is one shard's slice of the cluster /store/segments
// view.
type shardSegments struct {
	Name     string              `json:"name"`
	Dir      string              `json:"dir"`
	Healthy  bool                `json:"healthy"`
	Segments []store.SegmentInfo `json:"segments"`
	Tiers    []store.TierStat    `json:"tiers"`
	Bytes    int64               `json:"bytes"`
	Events   uint64              `json:"events"`
}

// handleClusterSegments is /store/segments in cluster mode: the same
// operator view, broken down per shard, with fleet totals and the
// per-tenant attribution the gate knows about.
func (s *server) handleClusterSegments(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Shards  []shardSegments                 `json:"shards"`
		Bytes   int64                           `json:"bytes"`
		Events  uint64                          `json:"events"`
		Tenants map[string]overload.TenantStats `json:"tenants"`
	}{Tenants: s.cluster.d.TenantStats()}
	for _, sh := range s.cluster.d.Shards() {
		resp.Shards = append(resp.Shards, shardSegments{
			Name:     sh.Name(),
			Dir:      sh.Dir(),
			Healthy:  sh.Healthy(),
			Segments: sh.Segments(),
			Tiers:    sh.TierStats(),
			Bytes:    sh.Size(),
			Events:   sh.Events(),
		})
		resp.Bytes += sh.Size()
		resp.Events += sh.Events()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleStoreSegments reports the store's per-segment metadata as JSON:
// the operator's view of what survived on disk, segment by segment. In
// cluster mode the view is per shard.
func (s *server) handleStoreSegments(w http.ResponseWriter, r *http.Request) {
	if s.cluster != nil {
		s.handleClusterSegments(w, r)
		return
	}
	if s.store == nil {
		http.Error(w, "no trace store configured (start btrace-serve with -store)", http.StatusNotFound)
		return
	}
	segs := s.store.Segments()
	resp := struct {
		Dir      string              `json:"dir"`
		Segments []store.SegmentInfo `json:"segments"`
		Tiers    []store.TierStat    `json:"tiers"`
		Bytes    int64               `json:"bytes"`
		Events   uint64              `json:"events"`
	}{Dir: s.store.Dir(), Segments: segs, Tiers: s.store.TierStats(),
		Bytes: s.store.Size(), Events: s.store.Events()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseStoreQuery builds a store.Query from request parameters:
// min_stamp, max_stamp, min_ts, max_ts, cores, categories (comma
// lists), limit — plus ?q=, a BTQL expression whose filter stage is
// compiled into the query's predicate (ANDed with the field filters)
// and whose optional aggregate stage is returned alongside.
func parseStoreQuery(r *http.Request) (store.Query, *btql.AggSpec, error) {
	var q store.Query
	var agg *btql.AggSpec
	if src := r.URL.Query().Get("q"); src != "" {
		bq, err := btql.Parse(src)
		if err != nil {
			return q, nil, err
		}
		if bq.Filter != nil {
			q.Pred = bq.Predicate()
		}
		agg = bq.Agg
	}
	get := func(name string) (uint64, bool, error) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return 0, false, nil
		}
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("bad %s %q", name, v)
		}
		return u, true, nil
	}
	var err error
	if q.MinStamp, _, err = get("min_stamp"); err != nil {
		return q, nil, err
	}
	if q.MaxStamp, _, err = get("max_stamp"); err != nil {
		return q, nil, err
	}
	if q.MinTS, _, err = get("min_ts"); err != nil {
		return q, nil, err
	}
	if q.MaxTS, _, err = get("max_ts"); err != nil {
		return q, nil, err
	}
	parseList := func(name string) ([]uint8, error) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return nil, nil
		}
		var out []uint8
		for _, part := range strings.Split(v, ",") {
			u, err := strconv.ParseUint(strings.TrimSpace(part), 10, 8)
			if err != nil {
				return nil, fmt.Errorf("bad %s element %q", name, part)
			}
			out = append(out, uint8(u))
		}
		return out, nil
	}
	if q.Cores, err = parseList("cores"); err != nil {
		return q, nil, err
	}
	if q.Categories, err = parseList("categories"); err != nil {
		return q, nil, err
	}
	limit, ok, err := get("limit")
	if err != nil {
		return q, nil, err
	}
	switch {
	case agg != nil:
		// An aggregate is defined over every match; the stream the limit
		// guards is never materialized.
		q.Limit = 0
	case !ok:
		q.Limit = defaultQueryEvents
	case limit == 0 || limit > maxQueryEvents:
		return q, nil, fmt.Errorf("limit must be in [1, %d]", maxQueryEvents)
	default:
		q.Limit = int(limit)
	}
	return q, agg, nil
}

// maxQueryWorkers caps the per-request ?workers= override: each worker
// pins a scan goroutine, and an unauthenticated query must not be able
// to demand an unbounded pool.
const maxQueryWorkers = 32

// requestWorkers resolves the scan-pool size for one /store/query:
// ?workers=0 forces the sequential cursor, ?workers=N a pool of N
// (capped), and an absent parameter falls back to the operator default.
func requestWorkers(r *http.Request, def int) (int, error) {
	v := r.URL.Query().Get("workers")
	if v == "" {
		return def, nil
	}
	u, err := strconv.ParseUint(v, 10, 16)
	if err != nil || u > maxQueryWorkers {
		return 0, fmt.Errorf("bad workers %q (allowed: [0, %d])", v, maxQueryWorkers)
	}
	return int(u), nil
}

// handleStoreQuery streams the matching slice of the durable trace in
// the requested format (text, csv or chrome), through the same cursor
// contract every in-memory exporter uses. ?workers= picks the scan
// surface per request: 0 the sequential cursor, N a parallel pool —
// both must yield the identical stamp-ordered stream (btrace-vulture
// continuously cross-checks that equivalence).
func (s *server) handleStoreQuery(w http.ResponseWriter, r *http.Request) {
	if s.store == nil && s.cluster == nil {
		http.Error(w, "no trace store configured (start btrace-serve with -store)", http.StatusNotFound)
		return
	}
	q, agg, err := parseStoreQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	workers, err := requestWorkers(r, s.queryWorkers)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if agg != nil {
		s.serveStoreAggregate(w, r, q, agg)
		return
	}
	var cur tracer.Cursor
	switch {
	case s.cluster != nil:
		// Cluster mode: fan out to every healthy shard and k-way-merge
		// the replicas back to one stamp-ordered copy each.
		if workers > 0 {
			cur, err = s.cluster.d.QueryParallel(q, workers)
		} else {
			cur, err = s.cluster.d.Query(q)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	case workers > 0:
		cur = s.store.QueryParallel(q, workers)
	default:
		cur = s.store.Query(q)
	}
	defer cur.Close()
	batch := make([]tracer.Entry, 1024)
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _, err = export.TextCursor(w, cur, batch)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_, _, err = export.CSVCursor(w, cur, batch)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="btrace-store-query.json"`)
		_, _, err = export.ChromeTraceCursor(w, cur, batch)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (text|csv|chrome)", format), http.StatusBadRequest)
		return
	}
	if err != nil {
		// Headers are gone; the best we can do is cut the stream short.
		return
	}
}

// serveStoreAggregate answers a BTQL query whose pipeline ends in an
// aggregate stage: the result is one JSON document, not an event
// stream. Single-node execution is columnar (cold v2 blocks feed the
// aggregators without materializing events); cluster execution streams
// the merged replica-deduplicated cursor through the same aggregators.
func (s *server) serveStoreAggregate(w http.ResponseWriter, r *http.Request, q store.Query, agg *btql.AggSpec) {
	specs := []btql.AggSpec{*agg}
	var (
		results []btql.Result
		missed  uint64
		err     error
	)
	if s.cluster != nil {
		results, missed, err = s.cluster.d.Aggregate(q, specs)
	} else {
		results, missed, err = s.store.Aggregate(q, specs)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := struct {
		Query  string      `json:"query"`
		Missed uint64      `json:"missed,omitempty"`
		Result btql.Result `json:"result"`
	}{Query: r.URL.Query().Get("q"), Missed: missed, Result: results[0]}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
