package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"btrace/internal/collect"
	"btrace/internal/live"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// maxIngestBody caps a single POST /ingest payload. At 32 bytes minimum
// per wire record this is well over 100k events — a batch, not a bulk
// import; larger uploads should be split.
const maxIngestBody = 4 << 20

// ingestQueueDepth is the number of accepted-but-unprocessed batches the
// pipeline holds before /ingest starts answering 429. The bound is the
// server-side backpressure: beyond it the client is told to slow down
// instead of the queue growing without limit.
const ingestQueueDepth = 256

// ingestIdleSleep is how long the pipeline goroutine sleeps when the
// queue is empty before polling again.
const ingestIdleSleep = 2 * time.Millisecond

// ingestConfig carries the overload-control flags into the pipeline.
type ingestConfig struct {
	// SampleRate is the head-sampling keep-rate floor (-sample-rate).
	SampleRate float64
	// RateLimit is the per-category token refill rate in events per
	// second of virtual time; 0 disables the bucket (-rate-limit).
	RateLimit float64
	// RateBurst is the bucket capacity; 0 defaults to 2×RateLimit
	// (-rate-burst).
	RateBurst float64
	// Shed enables the tiered load-shedding controller (-shed). When
	// false the gate still samples and rate-limits, but never escalates
	// past TierNone.
	Shed bool
	// Hub, when set, receives every admitted batch via the gate's
	// Admitted hook — the /live fan-out. Both the single-store pipeline
	// and the cluster distributor build their gate through gateConfig,
	// so one field covers both ingest paths.
	Hub *live.Hub
}

// tenantHeader names the request header carrying the tenant on POST
// /ingest; absent or empty falls back to the default tenant.
const tenantHeader = "X-Btrace-Tenant"

// gateConfig maps the overload-control flags onto the gate
// configuration; shared by the single-store pipeline and the cluster
// distributor so both paths shed identically.
func (cfg ingestConfig) gateConfig() (overload.Config, error) {
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		return overload.Config{}, fmt.Errorf("sample rate %v out of (0, 1]", cfg.SampleRate)
	}
	gcfg := overload.Config{
		MinSampleRate: cfg.SampleRate,
		RatePerSec:    cfg.RateLimit,
		Burst:         cfg.RateBurst,
	}
	if !cfg.Shed {
		// A score can never exceed 1, so an engage threshold above it
		// pins the controller at TierNone while sampling and rate limits
		// keep working.
		gcfg.EngagePressure = 2
	}
	if cfg.Hub != nil {
		gcfg.Admitted = cfg.Hub.Publish
	}
	return gcfg, nil
}

// ingestTrigger fires a dump for every non-empty admitted batch: the
// ingest path has no windowing semantics of its own, so each accepted
// batch goes straight to the durable store.
type ingestTrigger struct{}

func (ingestTrigger) Observe(es []tracer.Entry) string {
	if len(es) > 0 {
		return "ingest"
	}
	return ""
}
func (ingestTrigger) Name() string { return "ingest" }

// tenantBatch is one accepted /ingest batch with its resolved tenant:
// the queue carries the tenant alongside the events so the gate's
// per-tenant attribution happens in the supervisor goroutine, where the
// gate is legal to touch.
type tenantBatch struct {
	tenant string
	es     []tracer.Entry
}

// queuePoller adapts the ingest queue to collect.FalliblePoller: each
// poll drains at most one batch, without blocking, and never fails. It
// labels the gate with the batch's tenant before handing the events
// over — Poll runs inside Supervisor.Step, the gate's single goroutine.
type queuePoller struct {
	q    chan tenantBatch
	gate *overload.Gate
}

func (p queuePoller) Poll() ([]tracer.Entry, uint64, error) {
	select {
	case b := <-p.q:
		p.gate.SetTenant(b.tenant)
		return b.es, 0, nil
	default:
		return nil, 0, nil
	}
}

// ingestPipeline owns the POST /ingest delivery path: a bounded queue of
// decoded batches drained by a supervised collector running in StoreSink
// mode behind an adaptive overload gate. HTTP handlers touch only the
// queue, the atomic counters and the mutex-protected snapshots — the
// Supervisor itself stays single-goroutine, as its contract requires.
type ingestPipeline struct {
	queue chan tenantBatch
	gate  *overload.Gate
	sup   *collect.Supervisor
	st    *store.Store

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	accepted atomic.Uint64 // events accepted into the queue
	rejected atomic.Uint64 // batches refused with 429 (queue full)

	// mu guards the snapshots the run loop publishes after every step so
	// /readyz never calls into the Supervisor from a second goroutine.
	mu     sync.Mutex
	health collect.HealthReport
	tier   overload.Tier
}

// newIngestPipeline wires the gate and supervisor over st and starts the
// drain goroutine.
func newIngestPipeline(st *store.Store, cfg ingestConfig) (*ingestPipeline, error) {
	gcfg, err := cfg.gateConfig()
	if err != nil {
		return nil, err
	}
	p := &ingestPipeline{
		queue: make(chan tenantBatch, ingestQueueDepth),
		gate:  overload.NewGate(gcfg),
		st:    st,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	sup, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source:    queuePoller{p.queue, p.gate},
		Triggers:  []collect.Trigger{ingestTrigger{}},
		Store:     st,
		StoreSink: true,
		Overload:  p.gate,
		// The queue multiplexes independent clients: their batches
		// interleave arbitrarily, so only per-thread stamp order is an
		// invariant. Without this, interleaved batches are quarantined
		// around the gate — persisted, but invisible to live tail,
		// sampling and rate limits.
		SourceUnordered: true,
	})
	if err != nil {
		return nil, err
	}
	p.sup = sup
	go p.run()
	return p, nil
}

// run is the pipeline goroutine: it steps the supervisor, publishes the
// health/tier snapshot, and sleeps briefly when the queue is dry.
func (p *ingestPipeline) run() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			// Drain what was already accepted, then flush pending and
			// spilled dumps, before the store is closed behind us. Errors
			// are reflected in the final snapshot's SinkFailed.
			for len(p.queue) > 0 {
				p.sup.Step()
			}
			p.sup.Flush()
			p.snapshot()
			return
		default:
		}
		p.sup.Step()
		p.snapshot()
		if len(p.queue) == 0 {
			select {
			case <-p.stop:
				continue // let the stop branch above run the flush
			case <-time.After(ingestIdleSleep):
			}
		}
	}
}

func (p *ingestPipeline) snapshot() {
	h := p.sup.Health()
	t := p.gate.Tier()
	p.mu.Lock()
	p.health, p.tier = h, t
	p.mu.Unlock()
}

// Close stops the drain goroutine, flushing whatever is queued or
// spilled into the store first. Safe to call more than once.
func (p *ingestPipeline) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// enqueue offers one decoded batch to the pipeline without blocking.
func (p *ingestPipeline) enqueue(tenant string, es []tracer.Entry) bool {
	select {
	case p.queue <- tenantBatch{tenant: tenant, es: es}:
		p.accepted.Add(uint64(len(es)))
		return true
	default:
		p.rejected.Add(1)
		return false
	}
}

// notReadyReasons returns why the ingest path should refuse traffic —
// empty when it is ready. The conditions mirror DESIGN.md "Overload
// control": a dead store write path, a wedged or permanently failing
// pipeline, and the full-drop shedding tier (at which nearly every
// accepted event would be discarded anyway).
func (p *ingestPipeline) notReadyReasons() []string {
	var reasons []string
	if err := p.st.WriteErr(); err != nil {
		reasons = append(reasons, "store write path failed: "+err.Error())
	}
	p.mu.Lock()
	h, tier := p.health, p.tier
	p.mu.Unlock()
	if h.SourceWedged {
		reasons = append(reasons, "ingest pipeline wedged")
	}
	if h.SinkFailed {
		reasons = append(reasons, "store sink in permanent failure")
	}
	if tier >= overload.TierStream {
		reasons = append(reasons, "overload shedding at full-drop tier")
	}
	return reasons
}

// handleIngest accepts wire-encoded trace records (tracer.EncodeEvent
// framing, concatenated) and feeds the events through the overload gate
// into the durable store — or, in cluster mode, through the distributor
// to a replica quorum. The tenant comes from the X-Btrace-Tenant header
// (default tenant when absent) and drives quota overrides and the
// per-tenant drop attribution on /metrics. Responses: 202 with the
// accepted count, 429 when the queue is full (client should back off
// and retry), 503 when quorum is unavailable, 400 for malformed
// payloads.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil && s.cluster == nil {
		http.Error(w, "ingest requires a durable store (start with -store)",
			http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBody+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxIngestBody {
		http.Error(w, fmt.Sprintf("payload exceeds %d bytes", maxIngestBody),
			http.StatusRequestEntityTooLarge)
		return
	}
	recs, truncated := tracer.DecodeAll(body)
	if truncated {
		http.Error(w, "corrupt or truncated record stream", http.StatusBadRequest)
		return
	}
	var es []tracer.Entry
	for _, rec := range recs {
		if rec.Kind == tracer.KindEvent {
			es = append(es, rec.Event)
		}
	}
	if len(es) == 0 {
		http.Error(w, "no event records in payload", http.StatusBadRequest)
		return
	}
	tenant := r.Header.Get(tenantHeader)
	if s.cluster != nil {
		// Cluster mode: synchronous quorum-ack. A 202 means every event
		// was either durably replicated or attributably dropped by quota
		// or gate policy; only a failed quorum asks the client to retry.
		res := s.cluster.d.Ingest(tenant, es)
		if res.Refused == res.Seen {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "replica quorum unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{
			"tenant":       res.Tenant,
			"accepted":     res.Seen,
			"acked":        res.Acked,
			"throttled":    res.Throttled,
			"gate_dropped": res.GateDropped,
			"refused":      res.Refused,
		})
		return
	}
	if !s.ingest.enqueue(tenant, es) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"accepted": len(es)})
}

// handleHealthz is the liveness probe: the process is up and serving.
// It deliberately checks nothing else — liveness failing triggers
// restarts, and restarting does not fix an overloaded store.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: 200 while the server can do
// useful work, 503 with one reason per line while it cannot. Without an
// ingest pipeline the server is a read-only dashboard and is always
// ready once it is serving.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cluster != nil {
		if reasons := s.cluster.d.NotReadyReasons(); len(reasons) > 0 {
			http.Error(w, strings.Join(reasons, "\n"), http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
		return
	}
	if s.ingest == nil {
		io.WriteString(w, "ok (dashboard only, no ingest pipeline)\n")
		return
	}
	if reasons := s.ingest.notReadyReasons(); len(reasons) > 0 {
		http.Error(w, strings.Join(reasons, "\n"), http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}
