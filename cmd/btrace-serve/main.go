// Command btrace-serve runs a local dashboard for the benchmark harness:
// it regenerates the paper's tables and figures on demand and renders
// them in the browser, runs ad-hoc replays, and exports readouts as
// Chrome trace JSON for chrome://tracing / Perfetto.
//
//	btrace-serve -addr localhost:8321
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"btrace/internal/distributor"
	"btrace/internal/live"
	"btrace/internal/store"
	"btrace/internal/store/backend"
)

// drainDeadline bounds graceful shutdown: in-flight requests get this
// long to finish after SIGINT/SIGTERM before the server is torn down.
const drainDeadline = 10 * time.Second

func main() {
	addr := flag.String("addr", "localhost:8321", "listen address")
	scale := flag.Float64("scale", 0.02, "default volume fraction for experiments, in (0, 1]")
	storeDir := flag.String("store", "", "durable trace store directory to serve via /store/query and /store/segments")
	queryWorkers := flag.Int("query-workers", store.DefaultQueryWorkers, "parallel scan workers for /store/query (0 = sequential cursor)")
	segmentBytes := flag.Int64("segment-bytes", 0, "store segment roll size in bytes (0 = default 1MiB)")
	commitEvery := flag.Duration("commit-every", 0, "store group-commit interval (0 = fsync only on demand)")
	commitBytes := flag.Int64("commit-bytes", 0, "store group-commit byte threshold (0 = no byte trigger)")
	compactInterval := flag.Duration("compact-interval", 0, "background compactor tick interval: merge + freeze pass (0 = no background compaction)")
	coldAfter := flag.Duration("cold-after", 0, "age at which sealed segments are compressed into the cold tier, in virtual-time terms (0 = never freeze)")
	backendKind := flag.String("backend", "local", "store backend: local (directory) or object (in-process, volatile; for demos and tests)")
	sampleRate := flag.Float64("sample-rate", 0.05, "ingest head-sampling keep-rate floor under full overload, in (0, 1]")
	rateLimit := flag.Float64("rate-limit", 0, "per-category ingest rate limit in events/sec of virtual time (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "token-bucket burst for -rate-limit (0 = 2x the rate)")
	shed := flag.Bool("shed", true, "enable tiered load shedding on the ingest path")
	shards := flag.Int("shards", 0, "run a replicated in-process cluster of this many store shards under the -store root (0 = single store)")
	replication := flag.Int("replication", 2, "replicas per stream key in cluster mode (quorum-acked)")
	tenantOverrides := flag.String("tenant-overrides", "", "per-tenant ingest quotas, e.g. alpha=1000,beta=500:2000 (events/sec of virtual time[:burst])")
	liveBuffer := flag.Int("live-buffer", 0, "per-subscriber /live ring capacity in events (0 = default 4096)")
	liveSubscribers := flag.Int("live-subscribers", 0, "max concurrent /live subscribers (0 = default 64)")
	liveMaxMissed := flag.Uint64("live-max-missed", 0, "missed-event count at which a slow /live subscriber is evicted (0 = default 65536)")
	flag.Parse()

	// The operator flag gets the same hard validation as the request
	// parameter: a non-positive or >1 scale is a misconfiguration, not a
	// bigger experiment.
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintf(os.Stderr, "btrace-serve: -scale must be in (0, 1], got %v\n", *scale)
		os.Exit(2)
	}
	if *sampleRate <= 0 || *sampleRate > 1 {
		fmt.Fprintf(os.Stderr, "btrace-serve: -sample-rate must be in (0, 1], got %v\n", *sampleRate)
		os.Exit(2)
	}

	// The live hub exists whenever an ingest path does: it is the
	// post-gate fan-out both pipelines publish admitted batches to.
	var hub *live.Hub
	if *storeDir != "" {
		hub = live.NewHub(live.Config{
			BufferEvents:     *liveBuffer,
			MaxSubscribers:   *liveSubscribers,
			EvictAfterMissed: *liveMaxMissed,
		})
	}
	icfg := ingestConfig{
		SampleRate: *sampleRate,
		RateLimit:  *rateLimit,
		RateBurst:  *rateBurst,
		Shed:       *shed,
		Hub:        hub,
	}
	scfg := store.Config{
		SegmentBytes:    *segmentBytes,
		CommitEvery:     *commitEvery,
		CommitBytes:     *commitBytes,
		CompactInterval: *compactInterval,
		ColdAfterNs:     uint64(coldAfter.Nanoseconds()),
	}
	objectBackend := false
	switch *backendKind {
	case "local":
	case "object":
		objectBackend = true
	default:
		fmt.Fprintf(os.Stderr, "btrace-serve: -backend must be local or object, got %q\n", *backendKind)
		os.Exit(2)
	}
	overrides, err := distributor.ParseOverrides(*tenantOverrides)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrace-serve:", err)
		os.Exit(2)
	}

	var (
		ts      *store.Store
		cluster *clusterPipeline
	)
	switch {
	case *shards > 0:
		// Cluster mode: N replicated shards under the -store root, fronted
		// by the consistent-hash distributor.
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "btrace-serve: -shards requires -store (the cluster root directory)")
			os.Exit(2)
		}
		gcfg, err := icfg.gateConfig()
		if err != nil {
			fmt.Fprintln(os.Stderr, "btrace-serve:", err)
			os.Exit(2)
		}
		cluster, err = newClusterPipeline(clusterConfig{
			Dir:           *storeDir,
			Shards:        *shards,
			Replication:   *replication,
			Overrides:     overrides,
			Store:         scfg,
			ObjectBackend: objectBackend,
			Gate:          gcfg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "btrace-serve: cluster:", err)
			os.Exit(1)
		}
		defer cluster.Close()
		log.Printf("btrace-serve: %s under %s", cluster.d, *storeDir)
	case *storeDir != "":
		var err error
		if objectBackend {
			scfg.Backend = backend.NewObject()
		}
		if ts, err = store.Open(*storeDir, scfg); err != nil {
			fmt.Fprintln(os.Stderr, "btrace-serve: open store:", err)
			os.Exit(1)
		}
		defer ts.Close()
		log.Printf("btrace-serve: store %s (%d segments, %d events)",
			ts.Dir(), len(ts.Segments()), ts.Events())
	}

	srv, err := newServer(*scale, ts, *queryWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrace-serve:", err)
		os.Exit(1)
	}
	if cluster != nil {
		srv.attachCluster(cluster)
	}
	if hub != nil {
		srv.attachLive(hub)
	}
	// With a single store attached the server also accepts traffic on
	// POST /ingest, behind the adaptive overload gate. The pipeline is
	// stopped (with a final flush) before the deferred store Close runs.
	if ts != nil {
		ing, err := newIngestPipeline(ts, icfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btrace-serve: ingest:", err)
			os.Exit(1)
		}
		defer ing.Close()
		srv.attachIngest(ing)
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// A wedged or malicious client must not pin a serving goroutine
		// forever; experiment regeneration is CPU-bound and can be slow,
		// so the write timeout is generous but finite.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("btrace-serve listening on http://%s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("btrace-serve: shutting down (draining up to %v)", drainDeadline)
		dctx, cancel := context.WithTimeout(context.Background(), drainDeadline)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("btrace-serve: shutdown: %v", err)
			os.Exit(1)
		}
	}
}
