// Command btrace-serve runs a local dashboard for the benchmark harness:
// it regenerates the paper's tables and figures on demand and renders
// them in the browser, runs ad-hoc replays, and exports readouts as
// Chrome trace JSON for chrome://tracing / Perfetto.
//
//	btrace-serve -addr localhost:8321
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "localhost:8321", "listen address")
	scale := flag.Float64("scale", 0.02, "default volume fraction for experiments")
	flag.Parse()

	srv, err := newServer(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrace-serve:", err)
		os.Exit(1)
	}
	log.Printf("btrace-serve listening on http://%s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
