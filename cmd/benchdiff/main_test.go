package main

import (
	"strings"
	"testing"
)

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestDiffPassesWithinEnvelope(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{bench("BenchmarkX-8", 100, 0)}}
	newF := &File{Benchmarks: []Benchmark{bench("BenchmarkX-4", 120, 0)}}
	if f := diff("f.json", oldF, newF, 30, 0, nil); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{bench("BenchmarkX", 100, 0)}}
	newF := &File{Benchmarks: []Benchmark{bench("BenchmarkX", 131, 0)}}
	f := diff("f.json", oldF, newF, 30, 0, nil)
	if len(f) != 1 || !strings.Contains(f[0], "regressed 31.0%") {
		t.Fatalf("want one regression failure, got %v", f)
	}
}

func TestDiffZeroAllocContract(t *testing.T) {
	res, err := compilePatterns("BenchmarkRead.*,BenchmarkObsOverhead/.*")
	if err != nil {
		t.Fatal(err)
	}
	newF := &File{Benchmarks: []Benchmark{
		bench("BenchmarkReadCursor-8", 50, 2),
		bench("BenchmarkObsOverhead/record-instrumented-8", 50, 1),
		bench("BenchmarkOther", 50, 7),
	}}
	f := diff("f.json", &File{}, newF, 30, 0, res)
	if len(f) != 2 {
		t.Fatalf("want 2 allocation failures, got %v", f)
	}
	for _, msg := range f {
		if !strings.Contains(msg, "contract is 0") {
			t.Fatalf("unexpected failure %q", msg)
		}
	}
}

func TestDiffMinNsExemptsNoisyBenchmarks(t *testing.T) {
	// A 3x slowdown on a 50 ns baseline is shared-runner noise, not a
	// regression; the same slowdown on a 5000 ns baseline fails.
	oldF := &File{Benchmarks: []Benchmark{
		bench("BenchmarkFast", 50, 0), bench("BenchmarkSlow", 5000, 0),
	}}
	newF := &File{Benchmarks: []Benchmark{
		bench("BenchmarkFast", 150, 0), bench("BenchmarkSlow", 15000, 0),
	}}
	f := diff("f.json", oldF, newF, 30, 1000, nil)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkSlow") {
		t.Fatalf("want only BenchmarkSlow to fail, got %v", f)
	}
}

func benchMB(name string, ns, mb float64) Benchmark {
	return Benchmark{Name: name, NsPerOp: ns, MBPerSec: mb}
}

func TestDiffFlagsThroughputDrop(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{benchMB("BenchmarkStoreAppendConcurrent", 30000, 900)}}
	newF := &File{Benchmarks: []Benchmark{benchMB("BenchmarkStoreAppendConcurrent", 31000, 500)}}
	f := diff("f.json", oldF, newF, 30, 1000, nil)
	if len(f) != 1 || !strings.Contains(f[0], "throughput dropped 44.4%") {
		t.Fatalf("want one throughput failure, got %v", f)
	}
}

func TestDiffThroughputWithinEnvelopePasses(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{benchMB("BenchmarkStoreAppendConcurrent", 30000, 900)}}
	newF := &File{Benchmarks: []Benchmark{benchMB("BenchmarkStoreAppendConcurrent", 32000, 800)}}
	if f := diff("f.json", oldF, newF, 30, 1000, nil); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

func TestDiffThroughputGateSkipsMissingAndNoisy(t *testing.T) {
	// A baseline without MB/s (or below the noise floor) never triggers
	// the throughput gate, even on a large drop.
	oldF := &File{Benchmarks: []Benchmark{
		bench("BenchmarkNoRate", 5000, 0),
		benchMB("BenchmarkNoisy", 50, 900),
	}}
	newF := &File{Benchmarks: []Benchmark{
		benchMB("BenchmarkNoRate", 5000, 100),
		benchMB("BenchmarkNoisy", 50, 100),
	}}
	if f := diff("f.json", oldF, newF, 30, 1000, nil); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

func TestDiffNewAndVanishedBenchmarksDoNotFail(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{bench("BenchmarkGone", 10, 0)}}
	newF := &File{Benchmarks: []Benchmark{bench("BenchmarkFresh", 10, 0)}}
	if f := diff("f.json", oldF, newF, 30, 0, nil); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

func TestCanonicalStripsProcSuffix(t *testing.T) {
	if got := canonical("BenchmarkX/sub=1-16"); got != "BenchmarkX/sub=1" {
		t.Fatalf("canonical = %q", got)
	}
	if got := canonical("BenchmarkX"); got != "BenchmarkX" {
		t.Fatalf("canonical = %q", got)
	}
}

func TestCompilePatternsRejectsBadRegex(t *testing.T) {
	if _, err := compilePatterns("Benchmark[("); err == nil {
		t.Fatal("want error for invalid regex")
	}
}

func benchMetric(name string, ns float64, unit string, v float64) Benchmark {
	return Benchmark{Name: name, NsPerOp: ns, Metrics: map[string]float64{unit: v}}
}

func TestDiffFlagsCustomMetricRegression(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{benchMetric("BenchmarkRecordUnderOverload/storm", 2000, "p99-ns", 2000)}}
	newF := &File{Benchmarks: []Benchmark{benchMetric("BenchmarkRecordUnderOverload/storm", 2100, "p99-ns", 3000)}}
	f := diff("f.json", oldF, newF, 30, 1000, nil)
	if len(f) != 1 || !strings.Contains(f[0], "p99-ns regressed 50.0%") {
		t.Fatalf("want one p99-ns failure, got %v", f)
	}
}

func TestDiffCustomMetricWithinEnvelopeAndNoiseFloor(t *testing.T) {
	// Within the envelope: passes. Below -min-ns: exempt even at 3x.
	oldF := &File{Benchmarks: []Benchmark{
		benchMetric("BenchmarkA", 2000, "p99-ns", 2000),
		benchMetric("BenchmarkB", 2000, "p99-ns", 200),
	}}
	newF := &File{Benchmarks: []Benchmark{
		benchMetric("BenchmarkA", 2000, "p99-ns", 2400),
		benchMetric("BenchmarkB", 2000, "p99-ns", 600),
	}}
	if f := diff("f.json", oldF, newF, 30, 1000, nil); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

// TestDiffRateMetricDirection: metrics whose unit contains "/s" (the
// distributor's events/s) are rates — a drop past the envelope fails,
// growth never does.
func TestDiffRateMetricDirection(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{
		benchMetric("BenchmarkDistributorIngest/rf2", 50000, "events/s", 100000),
		benchMetric("BenchmarkDistributorIngest/direct", 50000, "events/s", 100000),
	}}
	newF := &File{Benchmarks: []Benchmark{
		benchMetric("BenchmarkDistributorIngest/rf2", 50000, "events/s", 60000),
		benchMetric("BenchmarkDistributorIngest/direct", 50000, "events/s", 200000),
	}}
	f := diff("f.json", oldF, newF, 30, 1000, nil)
	if len(f) != 1 || !strings.Contains(f[0], "rf2 events/s regressed -40.0%") {
		t.Fatalf("want one rate-drop failure, got %v", f)
	}
}

// TestDiffRateMetricNoiseFloorUsesNsPerOp: a rate from a sub-floor
// benchmark is exempt regardless of the rate's magnitude.
func TestDiffRateMetricNoiseFloorUsesNsPerOp(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{benchMetric("BenchmarkNoisy", 50, "events/s", 2e6)}}
	newF := &File{Benchmarks: []Benchmark{benchMetric("BenchmarkNoisy", 50, "events/s", 1e5)}}
	if f := diff("f.json", oldF, newF, 30, 1000, nil); len(f) != 0 {
		t.Fatalf("sub-floor rate drop must not fail, got %v", f)
	}
}

func TestDiffCustomMetricMissingBaselineIgnored(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{bench("BenchmarkA", 2000, 0)}}
	newF := &File{Benchmarks: []Benchmark{benchMetric("BenchmarkA", 2000, "p99-ns", 9999)}}
	if f := diff("f.json", oldF, newF, 30, 1000, nil); len(f) != 0 {
		t.Fatalf("metric without baseline must not fail, got %v", f)
	}
}
