// Command benchdiff compares two sets of bench2json files and fails when
// performance regressed past the allowed envelope. CI's bench-smoke job
// copies the committed BENCH_*.json baselines aside, regenerates them
// with `make bench`, and runs benchdiff to gate the push:
//
//	benchdiff -old .benchbase -new . -max-regress 30 \
//	  -zero-allocs 'BenchmarkReadPathCursor,BenchmarkObsOverhead/.*' \
//	  -max-ratio 'BenchmarkColdQuery<=2*BenchmarkStoreQueryParallel'
//
// A benchmark fails the gate if its ns/op grew by more than -max-regress
// percent over the baseline, or if its name matches a -zero-allocs
// pattern and its allocs/op is not zero (the read-path and obs fast-path
// contracts). Benchmarks present on only one side are reported but never
// fail: baselines recorded on different hardware drift, so the absolute
// numbers are advisory — the allocation contract and gross regressions
// are what the gate enforces.
//
// -max-ratio rules gate one benchmark against another within the same
// fresh run ("A<=k*B": A's ns/op may not exceed k times B's). Both sides
// come from the new run on the same machine, so unlike the baseline
// comparison these ratios are hardware-independent contracts — e.g. the
// cold-tier query staying within 2x of the all-hot query. A rule whose
// benchmarks are missing from the run fails, so the contract cannot rot
// away silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Benchmark mirrors cmd/bench2json's per-benchmark record.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File mirrors cmd/bench2json's document.
type File struct {
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		oldDir     = flag.String("old", "", "directory with baseline BENCH_*.json files")
		newDir     = flag.String("new", ".", "directory with freshly generated BENCH_*.json files")
		maxRegress = flag.Float64("max-regress", 30, "maximum allowed ns/op regression in percent")
		minNs      = flag.Float64("min-ns", 1000, "baselines below this ns/op are reported but exempt from the regression gate (timing noise dominates)")
		zeroAllocs = flag.String("zero-allocs", "", "comma-separated name regexes that must stay at 0 allocs/op")
		maxRatio   = flag.String("max-ratio", "", "comma-separated 'A<=k*B' rules: benchmark A's ns/op must stay within k times B's, both from the new run")
	)
	flag.Parse()
	if *oldDir == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old directory required")
		os.Exit(2)
	}
	names := flag.Args()
	if len(names) == 0 {
		matches, err := filepath.Glob(filepath.Join(*newDir, "BENCH_*.json"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no BENCH_*.json files found in", *newDir)
			os.Exit(2)
		}
		for _, m := range matches {
			names = append(names, filepath.Base(m))
		}
	}
	zeroRes, err := compilePatterns(*zeroAllocs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	ratios, err := parseRatios(*maxRatio)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var failures []string
	fresh := map[string]Benchmark{}
	for _, name := range names {
		newFile, err := load(filepath.Join(*newDir, name))
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		for _, b := range newFile.Benchmarks {
			fresh[canonical(b.Name)] = b
		}
		oldFile, err := load(filepath.Join(*oldDir, name))
		if err != nil {
			// No baseline (first commit of this file): allocation
			// contracts still apply, regressions cannot.
			fmt.Printf("%s: no baseline (%v); checking allocation contracts only\n", name, err)
			oldFile = &File{}
		}
		failures = append(failures, diff(name, oldFile, newFile, *maxRegress, *minNs, zeroRes)...)
	}
	failures = append(failures, checkRatios(ratios, fresh)...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: all benchmarks within the allowed envelope")
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &f, nil
}

func compilePatterns(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		re, err := regexp.Compile("^(" + p + ")$")
		if err != nil {
			return nil, fmt.Errorf("bad -zero-allocs pattern %q: %w", p, err)
		}
		res = append(res, re)
	}
	return res, nil
}

// ratioRule is one parsed -max-ratio entry: num's ns/op must stay
// within limit times den's.
type ratioRule struct {
	num, den string
	limit    float64
}

func parseRatios(s string) ([]ratioRule, error) {
	var rules []ratioRule
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(p, "<=")
		if !ok {
			return nil, fmt.Errorf("bad -max-ratio rule %q: want 'A<=k*B'", p)
		}
		ks, den, ok := strings.Cut(rhs, "*")
		if !ok {
			return nil, fmt.Errorf("bad -max-ratio rule %q: want 'A<=k*B'", p)
		}
		var k float64
		if _, err := fmt.Sscanf(strings.TrimSpace(ks), "%g", &k); err != nil || k <= 0 {
			return nil, fmt.Errorf("bad -max-ratio limit in %q", p)
		}
		rules = append(rules, ratioRule{
			num: strings.TrimSpace(lhs), den: strings.TrimSpace(den), limit: k,
		})
	}
	return rules, nil
}

// checkRatios evaluates the -max-ratio rules against the fresh run. A
// missing benchmark is a failure: a contract that silently stops being
// measured is worse than one that fails.
func checkRatios(rules []ratioRule, fresh map[string]Benchmark) []string {
	var failures []string
	for _, r := range rules {
		nb, nok := fresh[r.num]
		db, dok := fresh[r.den]
		if !nok || !dok || db.NsPerOp <= 0 {
			failures = append(failures,
				fmt.Sprintf("ratio: %s<=%g*%s not measurable (missing benchmark in the new run)",
					r.num, r.limit, r.den))
			continue
		}
		ratio := nb.NsPerOp / db.NsPerOp
		verdict := "ok"
		if ratio > r.limit {
			verdict = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("ratio: %s is %.2fx of %s (%.0f vs %.0f ns/op), limit %gx",
					r.num, ratio, r.den, nb.NsPerOp, db.NsPerOp, r.limit))
		}
		fmt.Printf("ratio: %s / %s = %.2fx, limit %gx [%s]\n", r.num, r.den, ratio, r.limit, verdict)
	}
	return failures
}

// canonical strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names, so baselines recorded on machines with different core
// counts still line up.
var procSuffix = regexp.MustCompile(`-\d+$`)

func canonical(name string) string { return procSuffix.ReplaceAllString(name, "") }

// sortedKeys returns m's keys in order, for deterministic report output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// diff compares one file pair and returns the gate failures.
func diff(file string, oldF, newF *File, maxRegress, minNs float64, zeroRes []*regexp.Regexp) []string {
	old := make(map[string]Benchmark, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		old[canonical(b.Name)] = b
	}
	var failures []string
	for _, nb := range newF.Benchmarks {
		name := canonical(nb.Name)
		for _, re := range zeroRes {
			if re.MatchString(name) && nb.AllocsPerOp != 0 {
				failures = append(failures,
					fmt.Sprintf("%s: %s allocates %.0f allocs/op, contract is 0", file, name, nb.AllocsPerOp))
			}
		}
		ob, ok := old[name]
		if !ok {
			fmt.Printf("%s: %s is new (%.0f ns/op), no baseline to compare\n", file, name, nb.NsPerOp)
			continue
		}
		if ob.NsPerOp <= 0 {
			continue
		}
		change := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		verdict := "ok"
		switch {
		case ob.NsPerOp < minNs:
			// Sub-threshold baselines swing far more than any real
			// regression on shared runners; the allocation contract
			// above is the enforceable edge for them.
			verdict = "untimed (below -min-ns)"
		case change > maxRegress:
			verdict = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %s regressed %.1f%% (%.0f -> %.0f ns/op), limit %.0f%%",
					file, name, change, ob.NsPerOp, nb.NsPerOp, maxRegress))
		}
		fmt.Printf("%s: %s %+.1f%% ns/op (%.0f -> %.0f) [%s]\n",
			file, name, change, ob.NsPerOp, nb.NsPerOp, verdict)
		// Custom-metric gate: units reported via b.ReportMetric. Units
		// containing "/s" (the distributor's events/s) are rates — a drop
		// past the envelope fails, growth is an improvement. Everything
		// else (the overload benchmark's p99-ns record latency) is
		// latency-like — growth fails. Same noise floor as ns/op.
		for _, unit := range sortedKeys(nb.Metrics) {
			nv := nb.Metrics[unit]
			ov, has := ob.Metrics[unit]
			if !has || ov <= 0 {
				continue
			}
			mchange := (nv - ov) / ov * 100
			// A rate's own magnitude says nothing about timing noise, so
			// its noise floor is the benchmark's ns/op (like the MB/s
			// gate); a ns-valued metric is its own floor.
			bad, floor := mchange, ov
			if strings.Contains(unit, "/s") {
				bad, floor = -mchange, ob.NsPerOp
			}
			mv := "ok"
			switch {
			case floor < minNs:
				mv = "untimed (below -min-ns)"
			case bad > maxRegress:
				mv = "REGRESSION"
				failures = append(failures,
					fmt.Sprintf("%s: %s %s regressed %.1f%% (%.1f -> %.1f), limit %.0f%%",
						file, name, unit, mchange, ov, nv, maxRegress))
			}
			fmt.Printf("%s: %s %+.1f%% %s (%.1f -> %.1f) [%s]\n",
				file, name, mchange, unit, ov, nv, mv)
		}
		// Throughput gate: benchmarks that report MB/s (the store append
		// and query paths) also fail when the rate drops past the
		// envelope. Derived from the same timing as ns/op, so the same
		// noise floor applies.
		if ob.MBPerSec > 0 && nb.MBPerSec > 0 && ob.NsPerOp >= minNs {
			drop := (ob.MBPerSec - nb.MBPerSec) / ob.MBPerSec * 100
			tv := "ok"
			if drop > maxRegress {
				tv = "REGRESSION"
				failures = append(failures,
					fmt.Sprintf("%s: %s throughput dropped %.1f%% (%.1f -> %.1f MB/s), limit %.0f%%",
						file, name, drop, ob.MBPerSec, nb.MBPerSec, maxRegress))
			}
			fmt.Printf("%s: %s %+.1f%% MB/s (%.1f -> %.1f) [%s]\n",
				file, name, -drop, ob.MBPerSec, nb.MBPerSec, tv)
		}
	}
	for _, ob := range oldF.Benchmarks {
		found := false
		for _, nb := range newF.Benchmarks {
			if canonical(nb.Name) == canonical(ob.Name) {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%s: %s disappeared from the new run\n", file, canonical(ob.Name))
		}
	}
	return failures
}
