// Command btrace-vulture continuously verifies a running btrace-serve:
// it writes known stamped traces through POST /ingest and reads every
// acked stamp back through each query surface — the /live tail, the
// sequential and parallel /store/query cursors, the BTQL filter and
// count() pipelines, and the cold columnar tier — and exits non-zero
// if any acked stamp was lost, duplicated or delivered out of order. CI runs it as a soak gate (make vulture-soak);
// operators can point it at a live deployment as a canary.
//
//	btrace-vulture -url http://localhost:8321 -duration 60s -strict-live
//
// Exit codes: 0 every surface kept the ack contract, 1 violations were
// found (the report names them), 2 the run could not be set up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"btrace/internal/vulture"
)

func main() {
	url := flag.String("url", "http://localhost:8321", "base URL of the btrace-serve under test")
	tenant := flag.String("tenant", "", "tenant to write and tail as (X-Btrace-Tenant; empty = default tenant)")
	duration := flag.Duration("duration", 30*time.Second, "how long to keep writing (verification drains afterwards)")
	writers := flag.Int("writers", 2, "concurrent write streams, one TID each")
	batch := flag.Int("batch", 64, "events per ingest batch")
	interval := flag.Duration("interval", 20*time.Millisecond, "per-writer pause between batches")
	settle := flag.Duration("settle", 500*time.Millisecond, "ack-to-read-back grace for the async single-store path")
	coldAge := flag.Duration("cold-age", 0, "re-verify each range at this age to exercise the cold tier (0 = skip; set past the server's -cold-after)")
	queryWorkers := flag.Int("query-workers", 4, "?workers= for the parallel read surface")
	btqlProbe := flag.Bool("btql", true, "also read each range back as a BTQL ?q= filter and count() aggregate")
	liveTail := flag.Bool("live", true, "verify the /live SSE surface too")
	strictLive := flag.Bool("strict-live", false, "require every admitted event accounted for on /live (server must run without sampling or shedding)")
	payloadBytes := flag.Int("payload", 32, "payload bytes per event (>= 8; the stamp is echoed in the payload)")
	reportPath := flag.String("report", "", "write the Prometheus-style report to this file as well as stdout")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("btrace-vulture: soaking %s for %v (%d writers x %d events)",
		*url, *duration, *writers, *batch)
	rep, err := vulture.Run(ctx, vulture.RunnerConfig{
		BaseURL:      *url,
		Tenant:       *tenant,
		Writers:      *writers,
		Batch:        *batch,
		Interval:     *interval,
		Settle:       *settle,
		Duration:     *duration,
		QueryWorkers: *queryWorkers,
		ColdAge:      *coldAge,
		BTQL:         *btqlProbe,
		Live:         *liveTail,
		StrictLive:   *strictLive,
		PayloadBytes: *payloadBytes,
		Logf:         log.Printf,
	})
	if rep != nil {
		rep.WritePrometheus(os.Stdout)
		if *reportPath != "" {
			f, ferr := os.Create(*reportPath)
			if ferr != nil {
				log.Printf("btrace-vulture: report file: %v", ferr)
			} else {
				rep.WritePrometheus(f)
				f.Close()
			}
		}
	}
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "btrace-vulture:", err)
		os.Exit(2)
	}
	if rep.Failed() {
		fmt.Fprintln(os.Stderr, "btrace-vulture: ACK CONTRACT BROKEN (see report above)")
		os.Exit(1)
	}
	log.Printf("btrace-vulture: clean — every acked stamp read back once, in order, on every surface")
}
