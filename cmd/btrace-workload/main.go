// Command btrace-workload inspects and exports the evaluation workloads:
// it materializes a workload's deterministic event schedule to a file (the
// repository's equivalent of the paper's recorded device traces), prints
// schedule statistics, and replays a saved schedule into a tracer.
//
// Usage:
//
//	btrace-workload list
//	btrace-workload export -workload Video-1 -out video1.btwl [-scale 0.05]
//	btrace-workload info video1.btwl
//	btrace-workload replay -tracer btrace video1.btwl
package main

import (
	"flag"
	"fmt"
	"os"

	"btrace/internal/analysis"
	"btrace/internal/replay"
	"btrace/internal/report"
	"btrace/internal/tracer"
	"btrace/internal/workload"

	_ "btrace/internal/bbq"
	_ "btrace/internal/core"
	_ "btrace/internal/ftrace"
	_ "btrace/internal/lttng"
	_ "btrace/internal/vtrace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		for _, w := range workload.All() {
			fmt.Printf("%-10s %-9s little=%.1fk mid=%.1fk big=%.1fk threads=%d/core\n",
				w.Name, w.Class, w.LittleK, w.MiddleK, w.BigK, w.ThreadsTotal)
		}
	case "export":
		err = exportCmd(os.Args[2:])
	case "info":
		err = infoCmd(os.Args[2:])
	case "replay":
		err = replayCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrace-workload:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: btrace-workload <list|export|info|replay> [flags]")
	os.Exit(2)
}

func exportCmd(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	name := fs.String("workload", "eShop-1", "workload to export")
	out := fs.String("out", "", "output file (required)")
	scale := fs.Float64("scale", 0.05, "fraction of full trace volume")
	level := fs.Int("level", 3, "trace level 1-3")
	_ = fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("export: -out is required")
	}
	w, err := workload.ByName(*name)
	if err != nil {
		return err
	}
	s, err := w.BuildSchedule(workload.GenOptions{Level: uint8(*level), RateScale: *scale})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := s.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("exported %s: %d events, %s of trace, %s on disk\n",
		s.Name, s.Events(), report.HumanBytes(s.Bytes()), report.HumanBytes(uint64(n)))
	return nil
}

func loadSchedule(path string) (*workload.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadSchedule(f)
}

func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: expected one schedule file")
	}
	s, err := loadSchedule(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s: level %d, %.3fx volume, %.1fs window, %d cores, %d events, %s\n",
		s.Name, s.Level, s.RateScale, float64(s.WindowNs)/1e9,
		len(s.PerCore), s.Events(), report.HumanBytes(s.Bytes()))
	tb := report.NewTable("per core", "core", "events", "kE/s", "threads")
	for c, es := range s.PerCore {
		tids := map[uint32]bool{}
		for _, e := range es {
			tids[e.TID] = true
		}
		rate := float64(len(es)) / (float64(s.WindowNs) / 1e9) / 1000
		tb.AddRow(c, len(es), fmt.Sprintf("%.2f", rate), len(tids))
	}
	tb.Render(os.Stdout)
	return nil
}

func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracerName := fs.String("tracer", "btrace", "tracer to drive")
	budget := fs.Int("budget", 0, "buffer budget in bytes (default: schedule volume / 2)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: expected one schedule file")
	}
	s, err := loadSchedule(fs.Arg(0))
	if err != nil {
		return err
	}
	if *budget == 0 {
		*budget = int(s.Bytes() / 2)
	}
	tr, err := tracer.New(*tracerName, *budget, len(s.PerCore), s.Events())
	if err != nil {
		return err
	}
	res, err := replay.Run(replay.Config{
		Tracer: tr, Schedule: s, Mode: replay.ThreadLevel, PreemptProb: 0.002,
	})
	if err != nil {
		return err
	}
	retained, err := replay.RetainedStamps(tr)
	if err != nil {
		return err
	}
	ret, err := analysis.Analyze(res.Truth, retained, *budget)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (%d events) into %s with %s budget:\n",
		s.Name, res.Written, *tracerName, report.HumanBytes(uint64(*budget)))
	fmt.Printf("  latest fragment %s, %d fragments, loss %.1f%%, effectivity %.1f%%\n",
		report.HumanBytes(ret.LatestFragmentBytes), ret.Fragments,
		ret.LossRate*100, ret.EffectivityRatio*100)
	return nil
}
