package main

import (
	"path/filepath"
	"testing"
)

func TestExportInfoReplayRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "im.btwl")
	if err := exportCmd([]string{"-workload", "IM", "-out", out, "-scale", "0.003"}); err != nil {
		t.Fatal(err)
	}
	if err := infoCmd([]string{out}); err != nil {
		t.Fatal(err)
	}
	if err := replayCmd([]string{"-tracer", "btrace", out}); err != nil {
		t.Fatal(err)
	}
}

func TestExportErrors(t *testing.T) {
	if err := exportCmd([]string{"-workload", "IM"}); err == nil {
		t.Error("missing -out: expected error")
	}
	if err := exportCmd([]string{"-workload", "nope", "-out", "/tmp/x"}); err == nil {
		t.Error("unknown workload: expected error")
	}
	if err := infoCmd([]string{"/no/such/file"}); err == nil {
		t.Error("missing file: expected error")
	}
	if err := infoCmd([]string{}); err == nil {
		t.Error("no args: expected error")
	}
	if err := replayCmd([]string{}); err == nil {
		t.Error("no args: expected error")
	}
	if err := replayCmd([]string{"-tracer", "nope", "/no/such"}); err == nil {
		t.Error("bad input: expected error")
	}
}
