package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const sample = `goos: linux
goarch: amd64
pkg: btrace/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReadPathPoll   	    1000	   5495794 ns/op	13952035 B/op	      84 allocs/op
BenchmarkReadPathCursor 	    1000	   3031368 ns/op	   13209 B/op	       0 allocs/op
PASS
ok  	btrace/internal/core	8.642s
pkg: btrace
BenchmarkWritePathStampBatch/batch=1-8         	  200000	        98.52 ns/op	      42 B/op	       0 allocs/op
PASS
`
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("header: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	poll, cursor := f.Benchmarks[0], f.Benchmarks[1]
	if poll.Name != "BenchmarkReadPathPoll" || poll.Package != "btrace/internal/core" ||
		poll.Runs != 1000 || poll.BytesPerOp != 13952035 || poll.AllocsPerOp != 84 {
		t.Fatalf("poll: %+v", poll)
	}
	if cursor.BytesPerOp != 13209 || cursor.AllocsPerOp != 0 {
		t.Fatalf("cursor: %+v", cursor)
	}
	w := f.Benchmarks[2]
	if w.Package != "btrace" || w.NsPerOp != 98.52 {
		t.Fatalf("write bench: %+v", w)
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{"Benchmark", "BenchmarkX notanumber", ""} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}

func TestParseCustomMetrics(t *testing.T) {
	const line = "BenchmarkRecordUnderOverload/storm-8   	    2000	      1699 ns/op	       383.5 p99-ns	     128 B/op	       3 allocs/op"
	b, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line rejected")
	}
	if b.NsPerOp != 1699 || b.AllocsPerOp != 3 {
		t.Fatalf("standard units: %+v", b)
	}
	if got := b.Metrics["p99-ns"]; got != 383.5 {
		t.Fatalf("p99-ns = %v, want 383.5", got)
	}
	if len(b.Metrics) != 1 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}
