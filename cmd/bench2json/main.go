// Command bench2json converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so benchmark results can be recorded
// in the repository (BENCH_readpath.json) and compared across commits.
//
//	go test ./internal/core -run '^$' -bench ReadPath -benchmem | bench2json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Metrics holds custom units emitted via b.ReportMetric (e.g. the
	// overload benchmark's "p99-ns"), keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted document.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*File, error) {
	var (
		f   File
		pkg string
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	return &f, sc.Err()
}

// parseBenchLine parses one result line of the form:
//
//	BenchmarkName-8   1000   98.52 ns/op   42 B/op   0 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerSec = v
		default:
			// Custom units from b.ReportMetric keep their unit string as
			// the key, so downstream gates can pick them up by name.
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, true
}
