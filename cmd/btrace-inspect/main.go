// Command btrace-inspect analyzes a serialized readout produced by
// btrace-replay -dump, or a durable trace store directory: it lists
// per-core and per-category composition, stamp continuity (fragments
// and gaps), and the time span covered — the offline workflow a
// developer uses when a trace is pulled from a device.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"btrace/internal/btql"
	"btrace/internal/export"
	"btrace/internal/report"
	"btrace/internal/store"
	"btrace/internal/tracer"
	"btrace/internal/workload"
)

func main() {
	var (
		maxGaps = flag.Int("gaps", 10, "maximum number of gaps to list")
		format  = flag.String("format", "summary", "output: summary|text|chrome|csv")
		tiers   = flag.Bool("tiers", false, "print the store's blocklist and per-tier totals instead of event analysis (store directories only)")
		blocks  = flag.Bool("blocks", false, "print per-block columnar metadata: column ranges, dictionary size, bloom fill, section sizes (store directories only)")
		query   = flag.String("query", "", "BTQL query to run against the store; a pipeline aggregate prints its result, a plain filter streams matches in -format (store directories only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: btrace-inspect [flags] <readout-file | store-dir>")
		os.Exit(2)
	}
	var err error
	switch {
	case *tiers:
		err = runTiers(flag.Arg(0))
	case *blocks:
		err = runBlocks(flag.Arg(0))
	case *query != "":
		err = runQuery(flag.Arg(0), *query, *format)
	default:
		err = run(flag.Arg(0), *maxGaps, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "btrace-inspect:", err)
		os.Exit(1)
	}
}

// runTiers prints the storage-tier view of a store directory: one
// blocklist row per segment (what the compaction strategy polls) and the
// per-tier aggregates, including the cold tier's compression ratio. A
// cluster root (a directory of shard-* store directories, as laid out by
// btrace-serve -shards) gets the same view per shard plus fleet totals.
func runTiers(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !fi.IsDir() {
		return fmt.Errorf("%s: -tiers needs a store directory", path)
	}
	if shards, err := clusterShards(path); err != nil {
		return err
	} else if len(shards) > 0 {
		return runClusterTiers(path, shards)
	}
	st, err := store.Open(path, store.Config{})
	if err != nil {
		return err
	}
	defer st.Close()
	renderStoreTiers(st, "")
	return nil
}

// openStoreDir opens path as a store directory, rejecting plain files.
func openStoreDir(path, forFlag string) (*store.Store, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("%s: %s needs a store directory", path, forFlag)
	}
	return store.Open(path, store.Config{})
}

// runBlocks prints the cold tier's per-block directory metadata: the
// numbers query pruning runs on. Reading them against a workload's
// predicates shows whether blocks actually prune (tight stamp/TID
// ranges, low bloom fill) or degenerate to full scans.
func runBlocks(path string) error {
	st, err := openStoreDir(path, "-blocks")
	if err != nil {
		return err
	}
	defer st.Close()
	infos := st.ColdBlocks()
	if len(infos) == 0 {
		fmt.Println("no cold blocks (nothing frozen yet)")
		return nil
	}
	tb := report.NewTable("cold blocks",
		"file", "blk", "ver", "events", "stamps", "tids", "dict", "bloom", "meta", "payload", "comp", "raw", "ratio")
	for _, b := range infos {
		tids, dict, bloom, meta, pay := "-", "-", "-", "-", "-"
		if b.Version == 2 {
			tids = fmt.Sprintf("%d..%d", b.MinTID, b.MaxTID)
			dict = fmt.Sprintf("%d", b.DictSize)
			bloom = fmt.Sprintf("%.0f%%", 100*b.BloomFill)
			meta = report.HumanBytes(uint64(b.MetaBytes))
			pay = report.HumanBytes(uint64(b.PayBytes))
		}
		tb.AddRow(b.File, b.Index, b.Version, b.Events,
			fmt.Sprintf("%d..%d", b.BaseStamp, b.MaxStamp),
			tids, dict, bloom, meta, pay,
			report.HumanBytes(uint64(b.CompBytes)), report.HumanBytes(uint64(b.RawBytes)),
			fmt.Sprintf("%.2fx", float64(b.RawBytes)/float64(b.CompBytes)))
	}
	tb.Render(os.Stdout)
	return nil
}

// runQuery executes a BTQL query against a store directory. A pipeline
// aggregate executes columnar (cold v2 blocks never materialize events,
// and payload sections stay compressed unless the predicate inspects
// payloads) and prints its JSON result; a plain filter streams the
// matching events in the chosen format.
func runQuery(path, src, format string) error {
	bq, err := btql.Parse(src)
	if err != nil {
		return err
	}
	st, err := openStoreDir(path, "-query")
	if err != nil {
		return err
	}
	defer st.Close()
	var q store.Query
	if bq.Filter != nil {
		q.Pred = bq.Predicate()
	}
	if bq.Agg != nil {
		results, missed, err := st.Aggregate(q, []btql.AggSpec{*bq.Agg})
		if err != nil {
			return err
		}
		if missed > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d event(s) deleted by retention during the pass\n", missed)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results[0])
	}
	cur := st.Query(q)
	defer cur.Close()
	es, err := tracer.Drain(cur, 1024)
	if err != nil {
		return err
	}
	switch format {
	case "", "summary":
		var span float64
		if len(es) > 0 {
			span = float64(es[len(es)-1].TS-es[0].TS) / 1e9
		}
		fmt.Printf("%d events match %q (%.3fs span)\n", len(es), src, span)
		return nil
	case "text":
		return export.Text(os.Stdout, es)
	case "csv":
		return export.CSV(os.Stdout, es)
	case "chrome":
		return export.ChromeTrace(os.Stdout, es)
	default:
		return fmt.Errorf("unknown format %q (summary|text|chrome|csv)", format)
	}
}

// clusterShards detects a cluster root: the shard-* subdirectories a
// btrace-serve -shards deployment creates. A directory with none is a
// plain single store.
func clusterShards(path string) ([]string, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var shards []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			shards = append(shards, e.Name())
		}
	}
	sort.Strings(shards)
	return shards, nil
}

// runClusterTiers renders the per-shard tier views and the fleet
// aggregate: which shard holds what, and how the tiers add up cluster-
// wide.
func runClusterTiers(root string, shards []string) error {
	type agg struct {
		segments, blocks int
		bytes, raw       int64
		events           uint64
	}
	perTier := map[string]*agg{}
	var tierOrder []string
	for _, name := range shards {
		st, err := store.Open(filepath.Join(root, name), store.Config{})
		if err != nil {
			return fmt.Errorf("shard %s: %w", name, err)
		}
		renderStoreTiers(st, name)
		for _, ts := range st.TierStats() {
			a := perTier[ts.Tier]
			if a == nil {
				a = &agg{}
				perTier[ts.Tier] = a
				tierOrder = append(tierOrder, ts.Tier)
			}
			a.segments += ts.Segments
			a.blocks += ts.Blocks
			a.bytes += ts.Bytes
			a.raw += ts.RawBytes
			a.events += ts.Events
		}
		st.Close()
	}
	tb := report.NewTable(fmt.Sprintf("cluster tiers (%d shards)", len(shards)),
		"tier", "segments", "bytes", "raw", "blocks", "events", "ratio")
	for _, tier := range tierOrder {
		a := perTier[tier]
		ratio := "-"
		if a.bytes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(a.raw)/float64(a.bytes))
		}
		tb.AddRow(tier, a.segments, report.HumanBytes(uint64(a.bytes)),
			report.HumanBytes(uint64(a.raw)), a.blocks, a.events, ratio)
	}
	tb.Render(os.Stdout)
	return nil
}

// renderStoreTiers prints one store's blocklist and tier tables; shard
// labels the tables when the store is one member of a cluster.
func renderStoreTiers(st *store.Store, shard string) {
	label := func(name string) string {
		if shard == "" {
			return name
		}
		return name + " " + shard
	}
	tb := report.NewTable(label("blocklist"), "seq", "file", "tier", "sealed", "bytes", "raw", "blocks", "events", "stamps")
	for _, s := range st.Segments() {
		tb.AddRow(s.Seq, s.File, s.Tier, s.Sealed, report.HumanBytes(uint64(s.Bytes)),
			report.HumanBytes(uint64(s.RawBytes)), s.Blocks, s.Events,
			fmt.Sprintf("%d..%d", s.BaseStamp, s.MaxStamp))
	}
	tb.Render(os.Stdout)

	tb = report.NewTable(label("tiers"), "tier", "segments", "bytes", "raw", "blocks", "events", "ratio")
	for _, ts := range st.TierStats() {
		ratio := "-"
		if ts.Bytes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(ts.RawBytes)/float64(ts.Bytes))
		}
		tb.AddRow(ts.Tier, ts.Segments, report.HumanBytes(uint64(ts.Bytes)),
			report.HumanBytes(uint64(ts.RawBytes)), ts.Blocks, ts.Events, ratio)
	}
	tb.Render(os.Stdout)
}

// load reads the events to inspect: a directory is opened as a durable
// segment store (recovering any torn tail), a file is decoded as a raw
// readout dump.
func load(path string) ([]tracer.Entry, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		st, err := store.Open(path, store.Config{})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		if s := st.Stats(); s.RecoveredTruncations > 0 {
			fmt.Fprintf(os.Stderr, "warning: recovered %d torn segment tail(s), dropped %d byte(s)\n",
				s.RecoveredTruncations, s.TornBytesDropped)
		}
		cur := st.NewCursor()
		defer cur.Close()
		return tracer.Drain(cur, 1024)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Stream the dump record by record: one record buffer, regardless of
	// readout size.
	dec := export.NewDecoder(bufio.NewReader(f))
	es, err := dec.DecodeInto(nil)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, tracer.ErrCorrupt) {
		return nil, err
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "warning: trailing bytes were not decodable (truncated dump?)")
	}
	return es, nil
}

func run(path string, maxGaps int, format string) error {
	es, err := load(path)
	if err != nil {
		return err
	}
	if len(es) == 0 {
		return fmt.Errorf("no events in %s", path)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Stamp < es[j].Stamp })

	switch format {
	case "summary":
		// fallthrough to the summary report below
	case "text":
		return export.Text(os.Stdout, es)
	case "chrome":
		return export.ChromeTrace(os.Stdout, es)
	case "csv":
		return export.CSV(os.Stdout, es)
	default:
		return fmt.Errorf("unknown format %q (summary|text|chrome|csv)", format)
	}

	var (
		bytesTotal uint64
		perCore    = map[uint8]int{}
		perCat     = map[uint8]int{}
		tids       = map[uint32]bool{}
		fragments  = 1
		minTS      = es[0].TS
		maxTS      = es[0].TS
	)
	for i, e := range es {
		bytesTotal += uint64(e.WireSize())
		perCore[e.Core]++
		perCat[e.Category]++
		tids[e.TID] = true
		if e.TS < minTS {
			minTS = e.TS
		}
		if e.TS > maxTS {
			maxTS = e.TS
		}
		if i > 0 && e.Stamp != es[i-1].Stamp+1 {
			fragments++
		}
	}

	fmt.Printf("%s: %d events, %s, stamps %d..%d, %d fragments, %d threads, %.3fs span\n",
		path, len(es), report.HumanBytes(bytesTotal), es[0].Stamp, es[len(es)-1].Stamp,
		fragments, len(tids), float64(maxTS-minTS)/1e9)

	tb := report.NewTable("per core", "core", "events", "share")
	cores := make([]int, 0, len(perCore))
	for c := range perCore {
		cores = append(cores, int(c))
	}
	sort.Ints(cores)
	for _, c := range cores {
		n := perCore[uint8(c)]
		tb.AddRow(c, n, fmt.Sprintf("%.1f%%", 100*float64(n)/float64(len(es))))
	}
	tb.Render(os.Stdout)

	tb = report.NewTable("per category", "category", "events", "share")
	cats := make([]int, 0, len(perCat))
	for c := range perCat {
		cats = append(cats, int(c))
	}
	sort.Slice(cats, func(i, j int) bool { return perCat[uint8(cats[i])] > perCat[uint8(cats[j])] })
	for _, c := range cats {
		n := perCat[uint8(c)]
		tb.AddRow(workload.Category(c).Name(), n, fmt.Sprintf("%.1f%%", 100*float64(n)/float64(len(es))))
	}
	tb.Render(os.Stdout)

	// Gap listing from stamp discontinuities.
	shown := 0
	for i := 1; i < len(es) && shown < maxGaps; i++ {
		if es[i].Stamp != es[i-1].Stamp+1 {
			fmt.Printf("gap: stamps %d..%d missing (%d events)\n",
				es[i-1].Stamp+1, es[i].Stamp-1, es[i].Stamp-es[i-1].Stamp-1)
			shown++
		}
	}
	return nil
}
