package main

import (
	"os"
	"path/filepath"
	"testing"

	"btrace/internal/store"
	"btrace/internal/tracer"
)

func writeDump(t *testing.T, es []tracer.Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dump.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	for i := range es {
		n, err := tracer.EncodeEvent(buf, &es[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestInspect(t *testing.T) {
	es := []tracer.Entry{
		{Stamp: 1, TS: 0, Core: 0, TID: 10, Category: 11, Payload: []byte("a")},
		{Stamp: 2, TS: 1e9, Core: 1, TID: 11, Category: 11, Payload: []byte("b")},
		{Stamp: 5, TS: 2e9, Core: 1, TID: 12, Category: 16, Payload: []byte("c")},
	}
	path := writeDump(t, es)
	for _, format := range []string{"summary", "text", "chrome", "csv"} {
		if err := run(path, 10, format); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
	if err := run(path, 10, "bogus"); err == nil {
		t.Fatal("unknown format: expected error")
	}
}

// TestInspectStoreDir: a directory argument is opened as a durable
// segment store and inspected through its query cursor.
func TestInspectStoreDir(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		e := tracer.Entry{Stamp: i, TS: i * 1e6, Core: uint8(i % 2), Category: 11}
		if err := st.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"summary", "text"} {
		if err := run(dir, 10, format); err != nil {
			t.Fatalf("store dir, format %s: %v", format, err)
		}
	}
	if err := run(t.TempDir(), 10, "summary"); err == nil {
		t.Error("empty store dir: expected error")
	}
}

func TestInspectErrors(t *testing.T) {
	if err := run("/no/such/file", 10, "summary"); err == nil {
		t.Error("missing file: expected error")
	}
	empty := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, 10, "summary"); err == nil {
		t.Error("empty file: expected error")
	}
}
