package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"btrace/internal/store"
	"btrace/internal/tracer"
)

func writeDump(t *testing.T, es []tracer.Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dump.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	for i := range es {
		n, err := tracer.EncodeEvent(buf, &es[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestInspect(t *testing.T) {
	es := []tracer.Entry{
		{Stamp: 1, TS: 0, Core: 0, TID: 10, Category: 11, Payload: []byte("a")},
		{Stamp: 2, TS: 1e9, Core: 1, TID: 11, Category: 11, Payload: []byte("b")},
		{Stamp: 5, TS: 2e9, Core: 1, TID: 12, Category: 16, Payload: []byte("c")},
	}
	path := writeDump(t, es)
	for _, format := range []string{"summary", "text", "chrome", "csv"} {
		if err := run(path, 10, format); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
	if err := run(path, 10, "bogus"); err == nil {
		t.Fatal("unknown format: expected error")
	}
}

// TestInspectStoreDir: a directory argument is opened as a durable
// segment store and inspected through its query cursor.
func TestInspectStoreDir(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		e := tracer.Entry{Stamp: i, TS: i * 1e6, Core: uint8(i % 2), Category: 11}
		if err := st.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"summary", "text"} {
		if err := run(dir, 10, format); err != nil {
			t.Fatalf("store dir, format %s: %v", format, err)
		}
	}
	if err := run(t.TempDir(), 10, "summary"); err == nil {
		t.Error("empty store dir: expected error")
	}
}

// TestInspectTiers: -tiers renders the blocklist and tier tables for a
// single store directory, and rejects plain files.
func TestInspectTiers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		e := tracer.Entry{Stamp: i, TS: i * 1e6, Category: 11}
		if err := st.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := runTiers(dir); err != nil {
		t.Fatalf("single store -tiers: %v", err)
	}
	dump := writeDump(t, []tracer.Entry{{Stamp: 1, Category: 11}})
	if err := runTiers(dump); err == nil {
		t.Error("-tiers on a file: expected error")
	}
}

// TestInspectTiersClusterRoot: a directory of shard-* stores (the layout
// btrace-serve -shards writes) is rendered per shard plus fleet totals.
func TestInspectTiersClusterRoot(t *testing.T) {
	root := t.TempDir()
	for i, n := range []uint64{5, 3} {
		dir := filepath.Join(root, []string{"shard-00", "shard-01"}[i])
		st, err := store.Open(dir, store.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for s := uint64(1); s <= n; s++ {
			e := tracer.Entry{Stamp: s, TS: s * 1e6, Category: 11}
			if err := st.Append(&e); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shards, err := clusterShards(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || shards[0] != "shard-00" || shards[1] != "shard-01" {
		t.Fatalf("clusterShards = %v, want [shard-00 shard-01]", shards)
	}
	if err := runTiers(root); err != nil {
		t.Fatalf("cluster root -tiers: %v", err)
	}
	// A broken shard store surfaces as an error naming the shard.
	if err := os.WriteFile(filepath.Join(root, "shard-02"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// shard-02 is a file, not a directory: it is not picked up as a shard.
	shards, err = clusterShards(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("file entry counted as shard: %v", shards)
	}
}

// coldStoreDir builds a store directory with a frozen (columnar) cold
// tier: one aged segment compacted cold, one fresh row segment on top.
func coldStoreDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{ColdAfterNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		e := tracer.Entry{
			Stamp: i, TS: i * 1e6, Core: uint8(i % 4), TID: 100 + uint32(i%3),
			Category: uint8(1 + i%3), Level: 1,
			Payload: []byte(fmt.Sprintf("payload-%d", i)),
		}
		if err := st.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	// A much newer event ages the sealed segment past ColdAfterNs.
	e := tracer.Entry{Stamp: 1000, TS: 10e9, Category: 1, Level: 1}
	if err := st.Append(&e); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if n, err := st.CompactCold(); err != nil || n == 0 {
		t.Fatalf("CompactCold froze %d segments: %v", n, err)
	}
	infos := st.ColdBlocks()
	if len(infos) == 0 || infos[0].Version != 2 {
		t.Fatalf("expected v2 cold blocks, got %+v", infos)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestInspectBlocks: -blocks renders the cold tier's per-block columnar
// metadata and rejects plain readout files.
func TestInspectBlocks(t *testing.T) {
	dir := coldStoreDir(t)
	if err := runBlocks(dir); err != nil {
		t.Fatalf("-blocks: %v", err)
	}
	// A store with nothing frozen is fine, just empty.
	if err := runBlocks(t.TempDir()); err != nil {
		t.Fatalf("-blocks on empty store: %v", err)
	}
	dump := writeDump(t, []tracer.Entry{{Stamp: 1, Category: 11}})
	if err := runBlocks(dump); err == nil {
		t.Error("-blocks on a file: expected error")
	}
}

// TestInspectQuery: -query runs BTQL filters and aggregates against a
// store directory with a cold columnar tier.
func TestInspectQuery(t *testing.T) {
	dir := coldStoreDir(t)
	for _, src := range []string{
		`category == 2`,
		`tid == 101 && stamp <= 50`,
		`payload contains "payload-7"`,
		`stamp >= 10 | count()`,
		`time >= 0 | topk(2, core)`,
	} {
		if err := runQuery(dir, src, "summary"); err != nil {
			t.Fatalf("-query %q: %v", src, err)
		}
	}
	for _, format := range []string{"text", "csv", "chrome"} {
		if err := runQuery(dir, `core == 1`, format); err != nil {
			t.Fatalf("-query format %s: %v", format, err)
		}
	}
	if err := runQuery(dir, `core ==`, "summary"); err == nil {
		t.Error("malformed query: expected error")
	}
	if err := runQuery(dir, `core == 1`, "xml"); err == nil {
		t.Error("unknown format: expected error")
	}
}

func TestInspectErrors(t *testing.T) {
	if err := run("/no/such/file", 10, "summary"); err == nil {
		t.Error("missing file: expected error")
	}
	empty := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, 10, "summary"); err == nil {
		t.Error("empty file: expected error")
	}
}
