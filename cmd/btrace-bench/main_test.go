package main

import (
	"strings"
	"testing"

	"btrace/internal/experiments"
)

func testOpts() experiments.Options {
	return experiments.Options{
		Budget:      2 << 20,
		RateScale:   0.01,
		PreemptProb: 0.005,
		Workloads:   []string{"LockScr.", "eShop-2"},
		Tracers:     []string{"btrace", "ftrace"},
	}
}

func TestRunEachExperiment(t *testing.T) {
	for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig10", "fig11", "table1", "table2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, name, testOpts()); err != nil {
				t.Fatalf("run(%s): %v", name, err)
			}
			out := sb.String()
			if !strings.Contains(out, "==== "+name+" ====") {
				t.Errorf("missing banner:\n%s", out)
			}
			if len(out) < 100 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig99", testOpts()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}
