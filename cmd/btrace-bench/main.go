// Command btrace-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	btrace-bench [flags] <experiment>...
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig10 fig11 table1 table2 all.
//
// The default configuration replays at 5% of the paper's full trace
// volume into 12 MiB buffers; -scale 1.0 reproduces the full volume (slow).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"btrace"
	"btrace/internal/experiments"
)

func main() {
	var (
		budget    = flag.Int("budget", 12<<20, "per-tracer buffer budget in bytes")
		scale     = flag.Float64("scale", 0.05, "fraction of the paper's full trace volume to replay")
		preempt   = flag.Float64("preempt", 0.005, "mid-write preemption probability (thread-level)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all 20)")
		tracers   = flag.String("tracers", "", "comma-separated tracer subset (default: all 5)")
		quick     = flag.Bool("quick", false, "use the reduced quick configuration")
		metrics   = flag.Bool("metrics", false, "dump the self-observability metrics (Prometheus text) to stderr at exit")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: btrace-bench [flags] <fig1|fig2|fig3|fig4|fig5|fig6|fig10|fig11|table1|table2|all>...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opt := experiments.Defaults()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Budget = *budget
	opt.RateScale = *scale
	opt.PreemptProb = *preempt
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	if *tracers != "" {
		opt.Tracers = strings.Split(*tracers, ",")
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "fig10", "table2", "fig11", "memreq"}
	}
	for _, name := range names {
		if err := run(os.Stdout, name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "btrace-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "# self-observability metrics")
		btrace.WriteMetrics(os.Stderr)
	}
}

// renderer is any experiment result.
type renderer interface{ Render(io.Writer) }

func run(w io.Writer, name string, opt experiments.Options) error {
	started := time.Now()
	var (
		res renderer
		err error
	)
	switch name {
	case "fig1":
		res, err = experiments.Fig1(opt)
	case "fig2":
		res, err = experiments.Fig2(opt)
	case "fig3":
		res, err = experiments.Fig3(opt)
	case "fig4":
		res, err = experiments.Fig4(opt)
	case "fig5":
		res, err = experiments.Fig5(opt)
	case "fig6":
		res, err = experiments.Fig6(opt)
	case "fig10":
		res, err = experiments.Fig10(opt)
	case "fig11":
		res, err = experiments.Fig11(opt)
	case "table1":
		res, err = experiments.Table1(opt)
	case "table2":
		res, err = experiments.Table2(opt)
	case "memreq":
		res, err = experiments.MemoryRequirement(opt)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "==== %s ====\n", name)
	res.Render(w)
	fmt.Fprintf(w, "(%s computed in %v)\n\n", name, time.Since(started).Round(time.Millisecond))
	return nil
}
