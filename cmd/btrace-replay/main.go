// Command btrace-replay replays one workload into one tracer and reports
// the §5 metrics: latest continuous fragment, loss rate, fragment count,
// effectivity ratio and recording latency. With -dump it serializes the
// readout for offline inspection by btrace-inspect.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"btrace"
	"btrace/internal/analysis"
	"btrace/internal/export"
	"btrace/internal/replay"
	"btrace/internal/report"
	"btrace/internal/store"
	"btrace/internal/tracer"
	"btrace/internal/workload"

	_ "btrace/internal/bbq"
	_ "btrace/internal/core"
	_ "btrace/internal/ftrace"
	_ "btrace/internal/lttng"
	_ "btrace/internal/vtrace"
)

func main() {
	var (
		tracerName = flag.String("tracer", "btrace", "tracer to drive (btrace|bbq|ftrace|lttng|vtrace)")
		wlName     = flag.String("workload", "eShop-1", "workload name (see -list)")
		list       = flag.Bool("list", false, "list workloads and tracers, then exit")
		budget     = flag.Int("budget", 12<<20, "buffer budget in bytes")
		scale      = flag.Float64("scale", 0.05, "fraction of full trace volume")
		level      = flag.Int("level", 3, "trace level 1-3")
		threadMode = flag.Bool("threads", true, "thread-level replay (false: core-level)")
		preempt    = flag.Float64("preempt", 0.005, "mid-write preemption probability")
		dump       = flag.String("dump", "", "write the readout to this file for btrace-inspect")
		storeDir   = flag.String("store", "", "persist the readout into this durable segment store directory")
		metrics    = flag.Bool("metrics", false, "dump the self-observability metrics (Prometheus text) to stderr at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("tracers:  ", tracer.Names())
		fmt.Println("workloads:", workload.Names())
		return
	}

	if err := run(*tracerName, *wlName, *budget, *scale, *level, *threadMode, *preempt, *dump, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "btrace-replay:", err)
		os.Exit(1)
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "# self-observability metrics")
		btrace.WriteMetrics(os.Stderr)
	}
}

func run(tracerName, wlName string, budget int, scale float64, level int, threads bool, preempt float64, dump, storeDir string) error {
	w, err := workload.ByName(wlName)
	if err != nil {
		return err
	}
	tr, err := tracer.New(tracerName, budget, 12, w.ThreadsTotal*12)
	if err != nil {
		return err
	}
	mode := replay.CoreLevel
	if threads {
		mode = replay.ThreadLevel
	}
	res, err := replay.Run(replay.Config{
		Tracer: tr, Workload: w, Mode: mode, Level: uint8(level),
		RateScale: scale, PreemptProb: preempt, MeasureLatency: true,
	})
	if err != nil {
		return err
	}
	es, err := tr.ReadAll()
	if err != nil {
		return err
	}
	retained := make([]uint64, len(es))
	for i := range es {
		retained[i] = es[i].Stamp
	}
	ret, err := analysis.Analyze(res.Truth, retained, budget)
	if err != nil {
		return err
	}
	lat := analysis.Latency(res.LatenciesNs)

	fmt.Printf("replayed %s into %s (%s, level %d, scale %.3f) in %v\n",
		wlName, tracerName, mode, level, scale, res.Elapsed.Round(1e6))
	tb := report.NewTable("", "metric", "value")
	tb.AddRow("events written", res.Written)
	tb.AddRow("events dropped by policy", res.Dropped)
	tb.AddRow("bytes written", report.HumanBytes(ret.TotalBytes))
	tb.AddRow("events retained", ret.Retained)
	tb.AddRow("bytes retained", report.HumanBytes(ret.RetainedBytes))
	tb.AddRow("latest fragment", report.HumanBytes(ret.LatestFragmentBytes))
	tb.AddRow("fragments", ret.Fragments)
	tb.AddRow("loss rate", fmt.Sprintf("%.2f%%", ret.LossRate*100))
	tb.AddRow("effectivity ratio", fmt.Sprintf("%.2f%%", ret.EffectivityRatio*100))
	tb.AddRow("latency geo-mean", fmt.Sprintf("%.0f ns", lat.GeoMean))
	tb.AddRow("latency p99", fmt.Sprintf("%d ns", lat.P99))
	tb.Render(os.Stdout)

	gc := analysis.ClassifyGaps(res.Truth, retained)
	fmt.Printf("gap classes: %d small (<=%d events, %s), %d large (%s), largest %d events\n",
		gc.Small, analysis.SmallGapEvents, report.HumanBytes(gc.SmallBytes),
		gc.Large, report.HumanBytes(gc.LargeBytes), gc.LargestEvents)
	gaps := analysis.Gaps(res.Truth, retained)
	if n := len(gaps); n > 0 {
		fmt.Printf("gaps: %d (largest shown last)\n", n)
		show := gaps
		if len(show) > 5 {
			show = show[len(show)-5:]
		}
		for _, g := range show {
			fmt.Printf("  stamps %d..%d (%s)\n", g.FromStamp, g.ToStamp, report.HumanBytes(g.Bytes))
		}
	}

	if dump != "" {
		if err := dumpReadout(dump, es); err != nil {
			return err
		}
		fmt.Printf("readout written to %s (%d events)\n", dump, len(es))
	}
	if storeDir != "" {
		if err := persistReadout(storeDir, es); err != nil {
			return err
		}
		fmt.Printf("readout persisted to store %s (%d events)\n", storeDir, len(es))
	}
	return nil
}

// persistReadout appends the readout to a durable segment store, so a
// later btrace-inspect or btrace-serve -store can query it with crash
// recovery and indexed stamp/time filters.
func persistReadout(dir string, es []tracer.Entry) error {
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		return err
	}
	if err := st.AppendEntries(es); err != nil {
		st.Close()
		return err
	}
	return st.Close()
}

// dumpReadout serializes the readout as consecutive wire records via the
// streaming encoder (one reusable record buffer).
func dumpReadout(path string, es []tracer.Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := export.NewEncoder(bw).EncodeBatch(es); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
