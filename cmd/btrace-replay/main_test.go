package main

import (
	"os"
	"path/filepath"
	"testing"

	"btrace/internal/store"
	"btrace/internal/tracer"
)

func TestRunReplay(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "readout.bin")
	if err := run("btrace", "IM", 2<<20, 0.01, 3, true, 0.005, dump, ""); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(dump)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty dump")
	}
	// The dump must decode back to events.
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	recs, truncated := tracer.DecodeAll(data)
	if truncated || len(recs) == 0 {
		t.Fatalf("dump decode: %d records, truncated=%v", len(recs), truncated)
	}
}

func TestRunReplayCoreLevelNoDump(t *testing.T) {
	if err := run("ftrace", "LockScr.", 1<<20, 0.01, 2, false, 0, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplayPersistsToStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace-store")
	if err := run("btrace", "IM", 2<<20, 0.01, 3, true, 0.005, "", dir); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Events() == 0 {
		t.Fatal("store holds no events after -store replay")
	}
	cur := st.NewCursor()
	defer cur.Close()
	es, err := tracer.Drain(cur, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(es)) != st.Events() {
		t.Fatalf("drained %d events, store reports %d", len(es), st.Events())
	}
}

func TestRunReplayErrors(t *testing.T) {
	if err := run("btrace", "nope", 1<<20, 0.01, 3, true, 0, "", ""); err == nil {
		t.Error("unknown workload: expected error")
	}
	if err := run("nope", "IM", 1<<20, 0.01, 3, true, 0, "", ""); err == nil {
		t.Error("unknown tracer: expected error")
	}
	if err := run("btrace", "IM", 1<<20, 0.01, 3, true, 0, "/no/such/dir/x.bin", ""); err == nil {
		t.Error("bad dump path: expected error")
	}
}
