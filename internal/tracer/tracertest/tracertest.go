// Package tracertest provides a conformance suite that every tracer in
// this repository (BTrace and the four baselines) must pass. Baselines
// declare their documented policy deviations (e.g. drop-newest) through
// Config flags.
package tracertest

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/tracer"
)

// Config describes the tracer under test.
type Config struct {
	// New constructs the tracer for the given budget/cores/threads.
	New func(totalBytes, cores, threads int) (tracer.Tracer, error)
	// Cores and Threads configure the conformance workload.
	Cores, Threads int
	// TotalBytes is the buffer budget.
	TotalBytes int
	// DropsNewest is true for tracers whose documented policy discards
	// the newest entries (the LTTng baseline); the newest-retained check
	// is relaxed for them.
	DropsNewest bool
	// PayloadBytes is the event payload size used by the suite.
	PayloadBytes int
}

func (c Config) defaults() Config {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.TotalBytes == 0 {
		c.TotalBytes = 256 << 10
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 16
	}
	return c
}

// Run executes the conformance suite as subtests.
func Run(t *testing.T, cfg Config) {
	cfg = cfg.defaults()
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, cfg) })
	t.Run("NameAndBudget", func(t *testing.T) { testNameAndBudget(t, cfg) })
	t.Run("TooLarge", func(t *testing.T) { testTooLarge(t, cfg) })
	t.Run("Reset", func(t *testing.T) { testReset(t, cfg) })
	t.Run("OverwriteOldest", func(t *testing.T) { testOverwriteOldest(t, cfg) })
	t.Run("ConcurrentNoDuplicates", func(t *testing.T) { testConcurrent(t, cfg) })
	t.Run("StatsAccounting", func(t *testing.T) { testStats(t, cfg) })
	t.Run("CursorMatchesReadAll", func(t *testing.T) { testCursorMatchesReadAll(t, cfg) })
	t.Run("CursorIncremental", func(t *testing.T) { testCursorIncremental(t, cfg) })
}

func newTracer(t *testing.T, cfg Config) tracer.Tracer {
	t.Helper()
	tr, err := cfg.New(cfg.TotalBytes, cfg.Cores, cfg.Threads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func testRoundTrip(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{CoreID: cfg.Cores - 1, TID: 3}
	want := &tracer.Entry{
		Stamp: 7, TS: 1234, Core: uint8(cfg.Cores - 1), TID: 3,
		Category: 5, Level: 2, Payload: []byte("conformance"),
	}
	if err := tr.Write(p, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	es, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(es) != 1 {
		t.Fatalf("ReadAll: %d entries, want 1", len(es))
	}
	got := es[0]
	if got.Stamp != want.Stamp || got.TS != want.TS || got.Core != want.Core ||
		got.TID != want.TID || got.Category != want.Category || got.Level != want.Level ||
		string(got.Payload) != string(want.Payload) {
		t.Fatalf("entry mismatch: got %+v want %+v", got, *want)
	}
}

func testNameAndBudget(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	if tr.Name() == "" {
		t.Error("empty Name")
	}
	tb := tr.TotalBytes()
	if tb <= 0 || tb > 2*cfg.TotalBytes {
		t.Errorf("TotalBytes = %d for budget %d", tb, cfg.TotalBytes)
	}
}

func testTooLarge(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{}
	e := &tracer.Entry{Stamp: 1, Payload: make([]byte, tracer.MaxPayload)}
	if err := tr.Write(p, e); err == nil {
		// Some tracers may legitimately accommodate 64 KiB payloads if
		// their page size allows it; only fail if the tracer also cannot
		// read it back.
		es, _ := tr.ReadAll()
		if len(es) != 1 {
			t.Error("oversized write succeeded but entry unreadable")
		}
	} else if !errors.Is(err, tracer.ErrTooLarge) {
		t.Errorf("error = %v, want ErrTooLarge", err)
	}
}

func testReset(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	for i := 0; i < 50; i++ {
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i + 1), Payload: make([]byte, cfg.PayloadBytes)}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	tr.Reset()
	es, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll after Reset: %v", err)
	}
	if len(es) != 0 {
		t.Fatalf("%d entries survived Reset", len(es))
	}
	if st := tr.Stats(); st.Writes != 0 {
		t.Errorf("stats survived Reset: %+v", st)
	}
	// Reusable after Reset.
	if err := tr.Write(p, &tracer.Entry{Stamp: 99}); err != nil {
		t.Fatalf("Write after Reset: %v", err)
	}
	es, _ = tr.ReadAll()
	if len(es) != 1 || es[0].Stamp != 99 {
		t.Fatalf("after Reset: %v", es)
	}
}

func testOverwriteOldest(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	// Write far more than the budget: the newest entries must survive; a
	// single producer must never have interior gaps.
	wire := tracer.EventWireSize(cfg.PayloadBytes)
	n := cfg.TotalBytes / wire * 4
	for i := 1; i <= n; i++ {
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i), TS: uint64(i), Payload: make([]byte, cfg.PayloadBytes)}); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	es, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(es) == 0 {
		t.Fatal("nothing retained")
	}
	for i := 1; i < len(es); i++ {
		if es[i].Stamp != es[i-1].Stamp+1 {
			t.Fatalf("interior gap: %d -> %d", es[i-1].Stamp, es[i].Stamp)
		}
	}
	if es[len(es)-1].Stamp != uint64(n) {
		t.Fatalf("newest stamp %d, want %d", es[len(es)-1].Stamp, n)
	}
}

func testConcurrent(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	var dropped atomic.Uint64
	for g := 0; g < cfg.Threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &tracer.FixedProc{CoreID: g % cfg.Cores, TID: g}
			for i := 0; i < 500; i++ {
				e := &tracer.Entry{Stamp: stamp.Add(1), TS: uint64(i), Payload: make([]byte, cfg.PayloadBytes)}
				err := tr.Write(p, e)
				switch {
				case err == nil:
				case errors.Is(err, tracer.ErrDropped) && cfg.DropsNewest:
					dropped.Add(1)
				default:
					t.Errorf("thread %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	es, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	seen := map[uint64]bool{}
	for _, e := range es {
		if e.Stamp == 0 || e.Stamp > stamp.Load() {
			t.Fatalf("stamp %d out of range", e.Stamp)
		}
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d", e.Stamp)
		}
		seen[e.Stamp] = true
	}
	if len(es) == 0 {
		t.Fatal("nothing retained")
	}
}

// newCursor requires the tracer to implement tracer.CursorSource — every
// tracer in this repository must expose the streaming read path.
func newCursor(t *testing.T, tr tracer.Tracer) tracer.Cursor {
	t.Helper()
	cs, ok := tr.(tracer.CursorSource)
	if !ok {
		t.Fatalf("%s does not implement tracer.CursorSource", tr.Name())
	}
	return cs.NewCursor()
}

func testCursorMatchesReadAll(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	const n = 40
	for i := 1; i <= n; i++ {
		payload := []byte{byte(i), byte(i >> 8), byte(i + 1)}
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i), TS: uint64(i), Payload: payload}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	want, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	cur := newCursor(t, tr)
	defer cur.Close()
	// A batch smaller than the readout forces delivery across Next calls.
	got, err := tracer.Drain(cur, 7)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor delivered %d events, ReadAll %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Stamp != want[i].Stamp || got[i].TS != want[i].TS ||
			string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("event %d: cursor %+v != ReadAll %+v", i, got[i], want[i])
		}
	}
	// Exhausted cursor keeps returning 0 without error.
	batch := make([]tracer.Entry, 4)
	if n, missed, err := cur.Next(batch); n != 0 || missed != 0 || err != nil {
		t.Fatalf("Next after drain = (%d, %d, %v), want (0, 0, nil)", n, missed, err)
	}
}

func testCursorIncremental(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	write := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i), TS: uint64(i), Payload: []byte{byte(i)}}); err != nil {
				t.Fatalf("Write %d: %v", i, err)
			}
		}
	}
	write(1, 10)
	cur := newCursor(t, tr)
	defer cur.Close()
	got, err := tracer.Drain(cur, 64)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("first drain delivered %d events, want 10", len(got))
	}
	// New writes after the drain must be delivered exactly once, without
	// re-delivering the first ten.
	write(11, 15)
	batch := make([]tracer.Entry, 64)
	n, missed, err := cur.Next(batch)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if missed != 0 {
		t.Fatalf("missed = %d, want 0", missed)
	}
	if n != 5 {
		t.Fatalf("incremental Next delivered %d events, want 5", n)
	}
	for i := 0; i < n; i++ {
		if want := uint64(11 + i); batch[i].Stamp != want {
			t.Fatalf("incremental event %d: stamp %d, want %d", i, batch[i].Stamp, want)
		}
	}
}

func testStats(t *testing.T, cfg Config) {
	tr := newTracer(t, cfg)
	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	const n = 20
	for i := 1; i <= n; i++ {
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i), Payload: make([]byte, cfg.PayloadBytes)}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	st := tr.Stats()
	if st.Writes != n {
		t.Errorf("Writes = %d, want %d", st.Writes, n)
	}
	if st.BytesWritten < uint64(n*tracer.EventWireSize(cfg.PayloadBytes)) {
		t.Errorf("BytesWritten = %d too small", st.BytesWritten)
	}
}
