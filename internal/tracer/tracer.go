package tracer

import (
	"fmt"
	"sort"
	"sync"
)

// Tracer is the interface implemented by BTrace and by every baseline
// tracer in this repository. All tracers record variable-size entries into
// a bounded in-memory buffer in overwrite mode (except where a baseline's
// documented policy differs, e.g. the LTTng baseline drops the newest
// entries instead of blocking).
type Tracer interface {
	// Name returns the tracer's registry name (e.g. "btrace", "ftrace").
	Name() string

	// Write records e on behalf of the thread running in p. It returns
	// nil on success, ErrDropped if the tracer's policy discarded the
	// entry, or another error on misuse (entry too large, closed tracer).
	Write(p Proc, e *Entry) error

	// ReadAll returns a snapshot of every event currently retained,
	// ordered oldest to newest as well as the tracer can know. Structural
	// records (dummies, headers, skip markers) are filtered out. ReadAll
	// is intended to be called at quiescence (no concurrent writers);
	// BTrace additionally supports concurrent speculative reads via its
	// own Reader type.
	ReadAll() ([]Entry, error)

	// TotalBytes returns the total buffer budget the tracer was
	// configured with, in bytes.
	TotalBytes() int

	// Stats returns a snapshot of the tracer's internal counters.
	Stats() Stats

	// Reset discards all recorded data and returns the tracer to its
	// initial state. Must not be called concurrently with Write.
	Reset()
}

// Stats holds counters every tracer maintains. Not all counters apply to
// all tracers; inapplicable ones stay zero.
type Stats struct {
	// Writes is the number of successful Write calls.
	Writes uint64
	// BytesWritten is the total wire size of successful writes.
	BytesWritten uint64
	// Dropped is the number of entries discarded by policy (drop-newest).
	Dropped uint64
	// Overwritten is the number of entries destroyed by wrap-around.
	Overwritten uint64
	// DummyBytes is the number of filler bytes written to close tails.
	DummyBytes uint64
	// SkippedBlocks is the number of data blocks sacrificed by skipping.
	SkippedBlocks uint64
	// ClosedBlocks is the number of lagging blocks force-closed.
	ClosedBlocks uint64
	// Advancements is the number of slow-path block advancements.
	Advancements uint64
	// CASRetries counts failed compare-and-swap attempts in slow paths.
	CASRetries uint64
}

// Factory constructs a tracer with the given total buffer budget in bytes
// for a machine with the given core count. The threads hint is the maximum
// number of distinct producing threads (per-thread tracers size their
// buffers from it).
type Factory func(totalBytes, cores, threads int) (Tracer, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a tracer constructor available by name. It panics if the
// name is already taken; registration happens from init functions.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("tracer: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named tracer. It returns an error for unknown names.
func New(name string, totalBytes, cores, threads int) (Tracer, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tracer: unknown tracer %q (registered: %v)", name, Names())
	}
	return f(totalBytes, cores, threads)
}

// Names returns the sorted names of all registered tracers.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the stats compactly for logs and dashboards.
func (s Stats) String() string {
	return fmt.Sprintf(
		"writes=%d bytes=%d dropped=%d overwritten=%d dummy=%d skipped=%d closed=%d advance=%d casRetry=%d",
		s.Writes, s.BytesWritten, s.Dropped, s.Overwritten, s.DummyBytes,
		s.SkippedBlocks, s.ClosedBlocks, s.Advancements, s.CASRetries)
}
