package tracer

import (
	"iter"
	"sort"
)

// Cursor is the streaming consumption interface every tracer in this
// repository implements: a bounded, incremental read of the retained
// trace that never materializes the whole buffer as one slice. Each call
// to Next fills the caller-supplied batch with the events recorded since
// the previous call (oldest first by logic stamp) and reports how many
// events were lost to overwrite in between.
//
// Ownership: the entries written into batch — including their Payload
// bytes, which may point into a reusable arena owned by the cursor — are
// valid only until the next Next or Close call. Callers that retain
// events across calls must copy them (see CloneEntries). This is the
// contract that lets the BTrace core reuse its decode arenas across
// polls instead of allocating O(events) per poll.
//
// A Cursor is not safe for concurrent use by multiple goroutines.
type Cursor interface {
	// Next fills batch with up to len(batch) new events and returns the
	// count, the number of events lost to overwrite since the previous
	// call (attributed to the call that observes the loss), and an error.
	// n == 0 with a nil error means no new events are currently
	// available. A zero-length batch returns (0, 0, nil).
	Next(batch []Entry) (n int, missed uint64, err error)

	// Close releases the cursor's resources (e.g. unregisters the
	// underlying reader). After Close, Next must not be called.
	Close() error
}

// CursorSource is implemented by tracers that can mint streaming
// cursors. BTrace's core buffer and all four baseline tracers satisfy
// it; consumers (collect.Supervisor, internal/export, internal/replay)
// prefer it over Tracer.ReadAll.
type CursorSource interface {
	NewCursor() Cursor
}

// Events returns a Go iterator over c, reading through batch (which
// sizes the per-call read; it must be non-empty). The yielded *Entry is
// borrowed — valid only for that iteration step — per the Cursor
// ownership contract. Iteration stops at the first exhausted read
// (n == 0), at the first error (yielded with a nil entry), or when the
// consumer breaks.
func Events(c Cursor, batch []Entry) iter.Seq2[*Entry, error] {
	return func(yield func(*Entry, error) bool) {
		for {
			n, _, err := c.Next(batch)
			if err != nil {
				yield(nil, err)
				return
			}
			if n == 0 {
				return
			}
			for i := 0; i < n; i++ {
				if !yield(&batch[i], nil) {
					return
				}
			}
		}
	}
}

// Drain reads c to exhaustion and returns owned copies of every event
// (payloads included), oldest first by stamp. It is the bridge from the
// streaming world back to the slice-snapshot world: ReadAll
// implementations wrap it, and tests use it to compare cursor and
// snapshot readouts.
func Drain(c Cursor, batchSize int) ([]Entry, error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	batch := make([]Entry, batchSize)
	var out []Entry
	for {
		n, _, err := c.Next(batch)
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
		out = CloneEntries(out, batch[:n])
	}
}

// CloneEntries appends deep copies of src to dst: the entry structs and
// their payload bytes, so the copies survive arena reuse by the cursor
// that produced src. Payloads of one call are packed into a single
// backing allocation.
func CloneEntries(dst []Entry, src []Entry) []Entry {
	total := 0
	for i := range src {
		total += len(src[i].Payload)
	}
	var backing []byte
	if total > 0 {
		backing = make([]byte, 0, total)
	}
	for i := range src {
		e := src[i]
		if len(e.Payload) > 0 {
			off := len(backing)
			backing = append(backing, e.Payload...)
			e.Payload = backing[off:len(backing):len(backing)]
		}
		dst = append(dst, e)
	}
	return dst
}

// SnapshotCursor adapts a quiescent snapshot function (the ReadAll shape
// every baseline tracer already has) into a Cursor using stamp-based
// resume: each refill re-snapshots, drops everything at or below the
// highest stamp already delivered, and reports the stamp gap ahead of
// the first new event as missed. The refilled batch is buffered
// internally, so a refill's events are handed out across Next calls
// without re-snapshotting.
//
// The baselines use it because their read paths are quiescent by design;
// the BTrace core has a native arena-backed cursor instead (see
// internal/core).
type SnapshotCursor struct {
	read    func() ([]Entry, error)
	pending []Entry
	idx     int
	last    uint64
	closed  bool
}

// NewSnapshotCursor wraps read (which must return entries sorted by
// stamp, the ReadAll contract) as a Cursor.
func NewSnapshotCursor(read func() ([]Entry, error)) *SnapshotCursor {
	return &SnapshotCursor{read: read}
}

// Next implements Cursor.
func (c *SnapshotCursor) Next(batch []Entry) (int, uint64, error) {
	if c.closed {
		return 0, 0, ErrClosed
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	var missed uint64
	if c.idx >= len(c.pending) {
		es, err := c.read()
		if err != nil {
			return 0, 0, err
		}
		// Binary-search the resume point (entries are stamp-sorted).
		lo := sort.Search(len(es), func(i int) bool { return es[i].Stamp > c.last })
		es = es[lo:]
		if len(es) == 0 {
			return 0, 0, nil
		}
		if c.last != 0 && es[0].Stamp > c.last+1 {
			missed = es[0].Stamp - c.last - 1
		}
		c.pending, c.idx = es, 0
	}
	n := copy(batch, c.pending[c.idx:])
	c.idx += n
	c.last = c.pending[c.idx-1].Stamp
	if c.idx >= len(c.pending) {
		c.pending, c.idx = nil, 0
	}
	return n, missed, nil
}

// Close implements Cursor.
func (c *SnapshotCursor) Close() error {
	c.closed = true
	c.pending = nil
	return nil
}

var _ Cursor = (*SnapshotCursor)(nil)
