package tracer

// PreemptPoint identifies the location inside a tracer write at which the
// executing thread offers itself for preemption. Real mobile systems
// preempt trace writers at arbitrary program points (§2.2 Observation 2 of
// the paper); the two points below are the ones that matter for tracer
// correctness, because they leave an entry allocated but unconfirmed.
type PreemptPoint uint8

const (
	// PreemptBeforeCopy is offered after space is allocated in the buffer
	// but before the payload is copied in.
	PreemptBeforeCopy PreemptPoint = iota
	// PreemptBeforeConfirm is offered after the payload copy but before
	// the write is confirmed/committed.
	PreemptBeforeConfirm
	// PreemptOutside is offered between writes (ordinary scheduling).
	PreemptOutside
)

// Proc is the execution context a producer runs in. It tells the tracer
// which virtual core the thread currently occupies and gives a simulated
// scheduler the opportunity to preempt the thread at the points where real
// preemption breaks tracers.
//
// Implementations must be safe for use by the single goroutine driving the
// thread; they need not be safe for concurrent use.
type Proc interface {
	// Core returns the virtual core the thread is currently running on.
	Core() int
	// Thread returns the workload-unique thread id.
	Thread() int
	// MaybePreempt gives the scheduler a chance to preempt the thread at
	// the given point. It may block (the thread is scheduled out) and the
	// thread may resume on the same core (mobile schedulers keep trace
	// producers core-affine during a write burst; see internal/sim).
	MaybePreempt(p PreemptPoint)
	// DisablePreemption enters a non-preemptible section, as the kernel
	// ftrace writer does. It returns a restore function. Nesting is
	// permitted.
	DisablePreemption() (restore func())
}

// FixedProc is a trivial Proc for direct library use outside the simulator:
// a thread pinned to one core with no preemption. Its zero value is a valid
// Proc on core 0.
type FixedProc struct {
	CoreID int
	TID    int
}

// Core returns the fixed core id.
func (p *FixedProc) Core() int { return p.CoreID }

// Thread returns the fixed thread id.
func (p *FixedProc) Thread() int { return p.TID }

// MaybePreempt is a no-op: a FixedProc is never preempted.
func (p *FixedProc) MaybePreempt(PreemptPoint) {}

// DisablePreemption is a no-op and returns a no-op restore function.
func (p *FixedProc) DisablePreemption() func() { return func() {} }
