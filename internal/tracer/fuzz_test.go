package tracer

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the record decoder with arbitrary bytes: it
// must never panic, never return a record larger than its input, and
// anything it accepts must re-encode consistently. The decoder parses
// block contents that may have been half-written when a block was closed
// or skipped, so robustness here is a correctness property of the tracer,
// not just hygiene.
func FuzzDecodeRecord(f *testing.F) {
	// Seed with every record kind plus mutations.
	buf := make([]byte, 256)
	e := &Entry{Stamp: 7, TS: 9, Core: 3, TID: 1234, Category: 5, Level: 2, Payload: []byte("seed-payload")}
	n, _ := EncodeEvent(buf, e)
	f.Add(append([]byte(nil), buf[:n]...))
	n = EncodeDummy(buf, 64)
	f.Add(append([]byte(nil), buf[:n]...))
	n = EncodeBlockHeader(buf, 42)
	f.Add(append([]byte(nil), buf[:n]...))
	n = EncodeSkip(buf, 99)
	f.Add(append([]byte(nil), buf[:n]...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if rec.Size < Align || rec.Size > len(data) || rec.Size%Align != 0 {
			t.Fatalf("accepted record with size %d from %d input bytes", rec.Size, len(data))
		}
		if rec.Kind == KindEvent {
			ev := rec.Event
			if len(ev.Payload) > rec.Size-EventHeaderSize {
				t.Fatalf("payload %d exceeds record body %d", len(ev.Payload), rec.Size-EventHeaderSize)
			}
			// Round-trip: re-encoding the decoded event must reproduce
			// the identity fields.
			out := make([]byte, ev.WireSize())
			if _, err := EncodeEvent(out, &ev); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			rec2, err := DecodeRecord(out)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			g := rec2.Event
			if g.Stamp != ev.Stamp || g.TS != ev.TS || g.Core != ev.Core ||
				g.TID != ev.TID || g.Category != ev.Category || g.Level != ev.Level ||
				!bytes.Equal(g.Payload, ev.Payload) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", g, ev)
			}
		}
	})
}

// FuzzDecodeAll checks the streaming decoder: it must never panic, must
// consume monotonically, and must flag truncation instead of over-reading.
func FuzzDecodeAll(f *testing.F) {
	buf := make([]byte, 512)
	off := EncodeBlockHeader(buf, 1)
	n, _ := EncodeEvent(buf[off:], &Entry{Stamp: 2, Payload: []byte("x")})
	off += n
	off += EncodeDummy(buf[off:], 32)
	f.Add(append([]byte(nil), buf[:off]...))
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := DecodeAll(data)
		total := 0
		for _, r := range recs {
			if r.Size < Align {
				t.Fatalf("record size %d", r.Size)
			}
			total += r.Size
		}
		if total > len(data) {
			t.Fatalf("consumed %d of %d bytes", total, len(data))
		}
	})
}
