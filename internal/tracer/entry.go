// Package tracer defines the abstractions shared by every tracer in this
// repository: the wire format of trace entries, the Tracer interface that
// BTrace and all baseline tracers implement, the Proc execution-context
// abstraction that lets a simulated scheduler inject preemption at the
// points where real mobile systems preempt trace writers, and a registry
// used by the benchmark harness.
//
// The wire format is deliberately simple and 8-byte aligned so that every
// tracer (global-buffer, per-core, per-thread and block-based) can share
// one encoder/decoder and the analysis pipeline can compare readouts
// byte-for-byte.
package tracer

import (
	"errors"
	"fmt"
)

// Kind discriminates records in a trace buffer.
type Kind uint8

// Record kinds. Only KindEvent carries workload data; the others are
// structural records written by tracers to keep blocks parseable.
const (
	// KindInvalid marks an unparseable or zeroed region.
	KindInvalid Kind = iota
	// KindEvent is a workload trace event.
	KindEvent
	// KindDummy is filler written to close the unusable tail of a block.
	KindDummy
	// KindBlockHeader is the first record of a (re)initialized data block.
	KindBlockHeader
	// KindSkip marks a data block sacrificed by the skipping mechanism.
	KindSkip
)

// String returns the short human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindDummy:
		return "dummy"
	case KindBlockHeader:
		return "header"
	case KindSkip:
		return "skip"
	default:
		return "invalid"
	}
}

// Wire-format constants. Every record is a multiple of Align bytes. An
// event record is EventHeaderSize bytes of header followed by the payload
// padded up to Align.
const (
	// Align is the alignment (and minimum size) of every record.
	Align = 8
	// EventHeaderSize is the fixed header size of a KindEvent record.
	EventHeaderSize = 32
	// BlockHeaderSize is the size of KindBlockHeader and KindSkip records.
	BlockHeaderSize = 16
	// MaxPayload is the maximum payload length of a single event.
	MaxPayload = 1<<16 - 1
)

// Entry is the decoded form of a trace event. The analysis pipeline
// identifies entries by Stamp, a globally unique, monotonically increasing
// logic stamp assigned at write time (§5 "Replaying setup" of the paper).
type Entry struct {
	// Stamp is the global logic stamp (unique, monotonically increasing).
	Stamp uint64
	// TS is the virtual timestamp in nanoseconds.
	TS uint64
	// Core is the virtual core the producing thread ran on.
	Core uint8
	// TID identifies the producing thread within the workload.
	TID uint32
	// Cat is the trace category (see internal/workload for the atrace set).
	Category uint8
	// Level is the trace detail level (1..3, §2.2 of the paper).
	Level uint8
	// Payload is the event body. May be nil; only its length matters to
	// the size accounting.
	Payload []byte
}

// WireSize returns the encoded size in bytes of e, padded to Align.
func (e *Entry) WireSize() int {
	return EventHeaderSize + (len(e.Payload)+Align-1)/Align*Align
}

// EventWireSize returns the encoded size of an event with a payload of
// payloadLen bytes.
func EventWireSize(payloadLen int) int {
	return EventHeaderSize + (payloadLen+Align-1)/Align*Align
}

// Errors returned by encoding and tracer implementations.
var (
	// ErrTooLarge reports an entry that cannot fit the target buffer or
	// block even after advancing.
	ErrTooLarge = errors.New("tracer: entry too large")
	// ErrCorrupt reports an undecodable record.
	ErrCorrupt = errors.New("tracer: corrupt record")
	// ErrClosed reports a write to a closed tracer.
	ErrClosed = errors.New("tracer: closed")
	// ErrDropped reports that the tracer discarded the entry (drop-newest
	// tracers such as the LTTng baseline do this by design).
	ErrDropped = errors.New("tracer: entry dropped")
)

// word0 packs kind and record size:
//
//	bits 56..63  kind
//	bits  0..31  record size in bytes (including word0)
func packWord0(k Kind, size int) uint64 {
	return uint64(k)<<56 | uint64(uint32(size))
}

func unpackWord0(w uint64) (Kind, int) {
	return Kind(w >> 56), int(uint32(w))
}

// word3 of an event packs identity fields and the exact payload length:
//
//	bits 56..63  core
//	bits 32..55  tid (24 bits)
//	bits 24..31  cat
//	bits 16..23  level
//	bits  0..15  payload length
func packWord3(core uint8, tid uint32, cat, level uint8, payloadLen int) uint64 {
	return uint64(core)<<56 | uint64(tid&0xFFFFFF)<<32 | uint64(cat)<<24 |
		uint64(level)<<16 | uint64(uint16(payloadLen))
}

func unpackWord3(w uint64) (core uint8, tid uint32, cat, level uint8, payloadLen int) {
	return uint8(w >> 56), uint32(w>>32) & 0xFFFFFF, uint8(w >> 24), uint8(w >> 16),
		int(uint16(w))
}

// le stores/loads 64-bit words without importing encoding/binary in the
// hot path (the compiler lowers these to single MOVs on little-endian
// machines).
func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// EncodeEvent writes e into dst, which must be at least e.WireSize() bytes.
// It returns the number of bytes written.
func EncodeEvent(dst []byte, e *Entry) (int, error) {
	if len(e.Payload) > MaxPayload {
		return 0, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(e.Payload))
	}
	size := e.WireSize()
	if len(dst) < size {
		return 0, fmt.Errorf("%w: need %d bytes, have %d", ErrTooLarge, size, len(dst))
	}
	le64put(dst[0:], packWord0(KindEvent, size))
	le64put(dst[8:], e.Stamp)
	le64put(dst[16:], e.TS)
	le64put(dst[24:], packWord3(e.Core, e.TID, e.Category, e.Level, len(e.Payload)))
	copy(dst[EventHeaderSize:], e.Payload)
	// Zero the padding so decodes are deterministic.
	for i := EventHeaderSize + len(e.Payload); i < size; i++ {
		dst[i] = 0
	}
	return size, nil
}

// EncodeDummy writes a dummy record of exactly size bytes (size must be a
// positive multiple of Align).
func EncodeDummy(dst []byte, size int) int {
	le64put(dst[0:], packWord0(KindDummy, size))
	return size
}

// EncodeBlockHeader writes a block header recording the block's global
// position pos.
func EncodeBlockHeader(dst []byte, pos uint64) int {
	le64put(dst[0:], packWord0(KindBlockHeader, BlockHeaderSize))
	le64put(dst[8:], pos)
	return BlockHeaderSize
}

// EncodeSkip writes a skip marker recording the sacrificed global position.
func EncodeSkip(dst []byte, pos uint64) int {
	le64put(dst[0:], packWord0(KindSkip, BlockHeaderSize))
	le64put(dst[8:], pos)
	return BlockHeaderSize
}

// Record is the decoded form of any record in a buffer.
type Record struct {
	Kind Kind
	Size int
	// Pos is the global block position for header/skip records.
	Pos uint64
	// Event holds the decoded entry for KindEvent records.
	Event Entry
}

// PeekRecord reports the kind and total size of the record starting at
// src without decoding its body; src must hold at least the first Align
// bytes. Streaming decoders use it to learn how many bytes to read
// before handing the full record to DecodeRecord.
func PeekRecord(src []byte) (Kind, int, error) {
	if len(src) < Align {
		return KindInvalid, 0, fmt.Errorf("%w: short buffer (%d bytes)", ErrCorrupt, len(src))
	}
	k, size := unpackWord0(le64(src))
	if size < Align || size%Align != 0 {
		return KindInvalid, 0, fmt.Errorf("%w: kind %v size %d", ErrCorrupt, k, size)
	}
	return k, size, nil
}

// DecodeRecord decodes the record at the start of src. It returns the
// record and its size. A zeroed or malformed region decodes as
// (KindInvalid, ErrCorrupt).
func DecodeRecord(src []byte) (Record, error) {
	if len(src) < Align {
		return Record{}, fmt.Errorf("%w: short buffer (%d bytes)", ErrCorrupt, len(src))
	}
	k, size := unpackWord0(le64(src))
	if size < Align || size%Align != 0 || size > len(src) {
		return Record{}, fmt.Errorf("%w: kind %v size %d of %d", ErrCorrupt, k, size, len(src))
	}
	r := Record{Kind: k, Size: size}
	switch k {
	case KindDummy:
		return r, nil
	case KindBlockHeader, KindSkip:
		if size < BlockHeaderSize {
			return Record{}, fmt.Errorf("%w: short header", ErrCorrupt)
		}
		r.Pos = le64(src[8:])
		return r, nil
	case KindEvent:
		if size < EventHeaderSize {
			return Record{}, fmt.Errorf("%w: short event", ErrCorrupt)
		}
		r.Event.Stamp = le64(src[8:])
		r.Event.TS = le64(src[16:])
		w3 := le64(src[24:])
		var plen int
		r.Event.Core, r.Event.TID, r.Event.Category, r.Event.Level, plen = unpackWord3(w3)
		if EventHeaderSize+plen > size {
			return Record{}, fmt.Errorf("%w: payload length %d exceeds record size %d", ErrCorrupt, plen, size)
		}
		if plen > 0 {
			r.Event.Payload = src[EventHeaderSize : EventHeaderSize+plen]
		}
		return r, nil
	default:
		return Record{}, fmt.Errorf("%w: kind byte %d", ErrCorrupt, uint8(k))
	}
}

// DecodeAll decodes consecutive records from a fully written region,
// returning all of them. Decoding stops at the first corrupt record, which
// is reported via the truncated flag rather than an error: tracers use this
// to salvage the parseable prefix of a block whose tail was being written
// when the block was closed.
func DecodeAll(src []byte) (recs []Record, truncated bool) {
	for len(src) >= Align {
		r, err := DecodeRecord(src)
		if err != nil {
			return recs, true
		}
		recs = append(recs, r)
		src = src[r.Size:]
	}
	return recs, len(src) != 0
}
