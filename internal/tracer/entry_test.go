package tracer

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindEvent:       "event",
		KindDummy:       "dummy",
		KindBlockHeader: "header",
		KindSkip:        "skip",
		KindInvalid:     "invalid",
		Kind(200):       "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEventWireSizePadding(t *testing.T) {
	for payload, want := range map[int]int{
		0:  EventHeaderSize,
		1:  EventHeaderSize + 8,
		7:  EventHeaderSize + 8,
		8:  EventHeaderSize + 8,
		9:  EventHeaderSize + 16,
		64: EventHeaderSize + 64,
	} {
		if got := EventWireSize(payload); got != want {
			t.Errorf("EventWireSize(%d) = %d, want %d", payload, got, want)
		}
		e := Entry{Payload: make([]byte, payload)}
		if got := e.WireSize(); got != want {
			t.Errorf("Entry{%d}.WireSize() = %d, want %d", payload, got, want)
		}
	}
}

func TestEncodeDecodeEventRoundTrip(t *testing.T) {
	e := &Entry{
		Stamp:    0xDEADBEEF01234567,
		TS:       987654321,
		Core:     11,
		TID:      1<<24 - 1,
		Category: 7,
		Level:    3,
		Payload:  []byte("hello btrace"),
	}
	buf := make([]byte, e.WireSize())
	n, err := EncodeEvent(buf, e)
	if err != nil {
		t.Fatalf("EncodeEvent: %v", err)
	}
	if n != e.WireSize() {
		t.Fatalf("EncodeEvent wrote %d, want %d", n, e.WireSize())
	}
	rec, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if rec.Kind != KindEvent || rec.Size != n {
		t.Fatalf("decoded kind=%v size=%d, want event/%d", rec.Kind, rec.Size, n)
	}
	got := rec.Event
	if got.Stamp != e.Stamp || got.TS != e.TS || got.Core != e.Core ||
		got.TID != e.TID || got.Category != e.Category || got.Level != e.Level {
		t.Fatalf("decoded header %+v, want %+v", got, *e)
	}
	if !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("decoded payload %q, want %q", got.Payload, e.Payload)
	}
}

func TestEncodeEventEmptyPayload(t *testing.T) {
	e := &Entry{Stamp: 1}
	buf := make([]byte, EventHeaderSize)
	if _, err := EncodeEvent(buf, e); err != nil {
		t.Fatalf("EncodeEvent: %v", err)
	}
	rec, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if rec.Event.Payload != nil {
		t.Fatalf("expected nil payload, got %v", rec.Event.Payload)
	}
}

func TestEncodeEventErrors(t *testing.T) {
	e := &Entry{Payload: make([]byte, MaxPayload+1)}
	if _, err := EncodeEvent(make([]byte, 1<<20), e); err == nil {
		t.Error("oversized payload: expected error")
	}
	small := &Entry{Payload: []byte("xx")}
	if _, err := EncodeEvent(make([]byte, 8), small); err == nil {
		t.Error("short destination: expected error")
	}
}

func TestEncodeDummyAndDecode(t *testing.T) {
	buf := make([]byte, 64)
	if n := EncodeDummy(buf, 64); n != 64 {
		t.Fatalf("EncodeDummy = %d, want 64", n)
	}
	rec, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if rec.Kind != KindDummy || rec.Size != 64 {
		t.Fatalf("got %v/%d, want dummy/64", rec.Kind, rec.Size)
	}
}

func TestEncodeBlockHeaderAndSkip(t *testing.T) {
	buf := make([]byte, BlockHeaderSize)
	EncodeBlockHeader(buf, 42)
	rec, err := DecodeRecord(buf)
	if err != nil || rec.Kind != KindBlockHeader || rec.Pos != 42 {
		t.Fatalf("header: rec=%+v err=%v", rec, err)
	}
	EncodeSkip(buf, 99)
	rec, err = DecodeRecord(buf)
	if err != nil || rec.Kind != KindSkip || rec.Pos != 99 {
		t.Fatalf("skip: rec=%+v err=%v", rec, err)
	}
}

func TestDecodeRecordCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 4),  // short
		make([]byte, 16), // zeroed (kind invalid)
		{0x09, 0, 0, 0, 0, 0, 0, byte(KindDummy)}, // size 9 not aligned
	}
	for i, src := range cases {
		if _, err := DecodeRecord(src); err == nil {
			t.Errorf("case %d: expected corrupt error", i)
		}
	}
	// Size exceeding the buffer.
	big := make([]byte, 16)
	le64put(big, packWord0(KindDummy, 1024))
	if _, err := DecodeRecord(big); err == nil {
		t.Error("oversize record: expected error")
	}
}

func TestDecodeAllSequence(t *testing.T) {
	buf := make([]byte, 256)
	off := EncodeBlockHeader(buf, 7)
	e := &Entry{Stamp: 1, Payload: []byte("abc")}
	n, err := EncodeEvent(buf[off:], e)
	if err != nil {
		t.Fatal(err)
	}
	off += n
	off += EncodeDummy(buf[off:], 32)
	recs, truncated := DecodeAll(buf[:off])
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Kind != KindBlockHeader || recs[1].Kind != KindEvent || recs[2].Kind != KindDummy {
		t.Fatalf("unexpected kinds: %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	// A trailing zeroed region truncates.
	recs, truncated = DecodeAll(buf[:off+16])
	if !truncated || len(recs) != 3 {
		t.Fatalf("zero tail: truncated=%v len=%d", truncated, len(recs))
	}
}

func TestDecodeAllEmpty(t *testing.T) {
	recs, truncated := DecodeAll(nil)
	if len(recs) != 0 || truncated {
		t.Fatalf("nil: recs=%d truncated=%v", len(recs), truncated)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(stamp, ts uint64, core uint8, tid uint32, cat, level uint8, payloadLen uint16) bool {
		plen := int(payloadLen) % 512
		payload := make([]byte, plen)
		rand.New(rand.NewSource(int64(stamp))).Read(payload)
		e := &Entry{
			Stamp: stamp, TS: ts, Core: core, TID: tid & 0xFFFFFF,
			Category: cat, Level: level, Payload: payload,
		}
		buf := make([]byte, e.WireSize())
		if _, err := EncodeEvent(buf, e); err != nil {
			return false
		}
		rec, err := DecodeRecord(buf)
		if err != nil || rec.Kind != KindEvent {
			return false
		}
		g := rec.Event
		if plen == 0 {
			return g.Stamp == e.Stamp && g.TS == e.TS && g.Core == e.Core &&
				g.TID == e.TID && g.Category == e.Category && g.Level == e.Level && g.Payload == nil
		}
		return g.Stamp == e.Stamp && g.TS == e.TS && g.Core == e.Core &&
			g.TID == e.TID && g.Category == e.Category && g.Level == e.Level &&
			bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWord0Quick(t *testing.T) {
	f := func(k uint8, size uint32) bool {
		kind := Kind(k % 5)
		gk, gs := unpackWord0(packWord0(kind, int(size)))
		return gk == kind && gs == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedProc(t *testing.T) {
	p := &FixedProc{CoreID: 3, TID: 9}
	if p.Core() != 3 || p.Thread() != 9 {
		t.Fatalf("FixedProc fields: core=%d tid=%d", p.Core(), p.Thread())
	}
	p.MaybePreempt(PreemptBeforeCopy) // must not block
	restore := p.DisablePreemption()
	restore()
}

func TestRegistry(t *testing.T) {
	names := Names()
	found := false
	for _, n := range names {
		if n == "btrace" {
			found = true
		}
	}
	_ = found // btrace registers from internal/core's init; only linked in its own tests
	if _, err := New("no-such-tracer", 1<<20, 4, 16); err == nil {
		t.Fatal("unknown tracer: expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register: expected panic")
		}
	}()
	Register("dup-test", func(int, int, int) (Tracer, error) { return nil, nil })
	Register("dup-test", func(int, int, int) (Tracer, error) { return nil, nil })
}

func TestStatsString(t *testing.T) {
	s := Stats{Writes: 7, Dropped: 2, SkippedBlocks: 1}
	out := s.String()
	for _, frag := range []string{"writes=7", "dropped=2", "skipped=1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Stats.String() = %q missing %q", out, frag)
		}
	}
}
