package experiments

import (
	"fmt"
	"io"

	"btrace/internal/analysis"
	"btrace/internal/replay"
)

// Fig1Row is one tracer's retention map for one scenario.
type Fig1Row struct {
	Tracer string
	// Map marks, for the last N written events (oldest first), whether
	// each was retained.
	Map []bool
	// Retention carries the numeric summary behind the map.
	Retention analysis.Retention
	// Gaps classifies the losses into the small/large classes Fig. 1
	// annotates ("numerous indistinguishable small gaps" vs "noticeable
	// large gaps").
	Gaps analysis.GapClasses
}

// Fig1Result reproduces Fig. 1: retention maps of the last N written
// events for every tracer on (a) the lock-screen scenario (idle big/middle
// cores) and (b) the shopping-app scenario (imbalanced production and
// heavy oversubscription).
type Fig1Result struct {
	Scenarios []string
	Rows      map[string][]Fig1Row
	Budget    int
}

// Fig1 runs the experiment.
func Fig1(o Options) (*Fig1Result, error) {
	o = o.defaults()
	res := &Fig1Result{
		Scenarios: []string{"LockScr.", "eShop-1"},
		Rows:      map[string][]Fig1Row{},
		Budget:    o.effectiveBudget(),
	}
	for _, scen := range res.Scenarios {
		for _, tn := range o.Tracers {
			row, err := fig1Row(o, scen, tn)
			if err != nil {
				return nil, err
			}
			res.Rows[scen] = append(res.Rows[scen], row)
		}
	}
	return res, nil
}

func fig1Row(o Options, scenario, tracerName string) (Fig1Row, error) {
	w, err := wlByName(scenario)
	if err != nil {
		return Fig1Row{}, err
	}
	budget := o.effectiveBudget()
	tr, err := o.withBudget(budget).newTracer(tracerName, w)
	if err != nil {
		return Fig1Row{}, err
	}
	rr, err := replay.Run(replay.Config{
		Tracer: tr, Workload: w, Topology: o.Topology,
		Mode: replay.ThreadLevel, RateScale: o.RateScale, PreemptProb: o.PreemptProb,
	})
	if err != nil {
		return Fig1Row{}, err
	}
	retained, err := replay.RetainedStamps(tr)
	if err != nil {
		return Fig1Row{}, err
	}
	ret, err := analysis.Analyze(rr.Truth, retained, budget)
	if err != nil {
		return Fig1Row{}, err
	}
	// The X axis covers the last N written events, N sized so an ideal
	// tracer (full utilization) exactly fills the buffer with them.
	mean := float64(ret.TotalBytes) / float64(max(1, ret.TotalWritten))
	n := int(float64(budget) / mean)
	return Fig1Row{
		Tracer:    tracerName,
		Map:       analysis.RetentionMap(len(rr.Truth), retained, n),
		Retention: ret,
		Gaps:      analysis.ClassifyGaps(rr.Truth, retained),
	}, nil
}

// Render writes the retention maps.
func (r *Fig1Result) Render(w io.Writer) {
	const width = 72
	for _, scen := range r.Scenarios {
		fmt.Fprintf(w, "Fig. 1 — retention of the last N written events (N sized to the %s buffer)\n", human(r.Budget))
		fmt.Fprintf(w, "Scenario: %s  (oldest left, newest right; '#': retained, '.': partial, ' ': lost)\n", scen)
		for _, row := range r.Rows[scen] {
			fmt.Fprintf(w, "  %-7s |%s|  latest=%s frags=%d loss=%.0f%% gaps=%d small/%d large\n",
				row.Tracer, renderMap(row.Map, width),
				human(int(row.Retention.LatestFragmentBytes)),
				row.Retention.Fragments, row.Retention.LossRate*100,
				row.Gaps.Small, row.Gaps.Large)
		}
		fmt.Fprintln(w)
	}
}
