package experiments

import (
	"fmt"
	"io"

	"btrace/internal/core"
	"btrace/internal/report"
)

// Table1Row is one tracer's analytic characteristics.
type Table1Row struct {
	Tracer       string
	Contention   string
	Utilization  float64
	Effectivity  float64
	Resizing     string
	Availability string
}

// Table1Result reproduces Table 1: the analytic comparison of BTrace with
// the state-of-the-art tracers, instantiated with concrete parameters
// (the §3.1 example uses C=12, T=500, 4 KiB blocks, a 12 MB buffer).
type Table1Result struct {
	C, T, N, A int
	Rows       []Table1Row
}

// Table1 evaluates the formulas for the configured budget.
func Table1(o Options) (*Table1Result, error) {
	o = o.defaults()
	c := o.Topology.Cores()
	const t = 500
	opt, err := core.OptionsForBudget(o.Budget, c, core.DefaultBlockSize, core.DefaultActivePerCore)
	if err != nil {
		return nil, err
	}
	n := opt.ActiveBlocks * opt.Ratio
	a := opt.ActiveBlocks
	res := &Table1Result{C: c, T: t, N: n, A: a}
	res.Rows = []Table1Row{
		{"bbq", "High (Global Buffer)", 1, 1, "Not support", "Blocking"},
		{"ftrace", "Low (Core Local)", 1 / float64(c), 1 / float64(c), "Disable Preemption", "Disable Preemption"},
		{"lttng", "Low (Core Local)", 1 / float64(c), 1 / float64(c), "Not support", "Dropping Newest"},
		{"vtrace", "Low (Thread Local)", 1 / float64(t), 1 / float64(t), "Not support", "Separating to Threads"},
		{"btrace", "Low (Core Local)",
			1 - float64(c-1)/float64(n),
			1 - float64(a)/float64(n),
			"Implicit Reclaiming", "Skipping Blocked"},
	}
	return res, nil
}

// Render writes the comparison table.
func (r *Table1Result) Render(w io.Writer) {
	tb := report.NewTable(
		fmt.Sprintf("Table 1 — analytic comparison (C=%d, T=%d, N=%d, A=%d)", r.C, r.T, r.N, r.A),
		"tracer", "contention", "utilization", "effectivity", "resizing", "availability")
	for _, row := range r.Rows {
		tb.AddRow(row.Tracer, row.Contention,
			fmt.Sprintf("%.4f", row.Utilization),
			fmt.Sprintf("%.4f", row.Effectivity),
			row.Resizing, row.Availability)
	}
	tb.Render(w)
	fmt.Fprintf(w, "(§3.1 example: per-core utilization %.1f%%, per-thread %.1f%%, btrace %.1f%%)\n",
		100/float64(r.C), 100/float64(r.T), 100*(1-float64(r.C-1)/float64(r.N)))
}
