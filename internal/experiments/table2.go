package experiments

import (
	"fmt"
	"io"
	"math"

	"btrace/internal/analysis"
	"btrace/internal/replay"
	"btrace/internal/report"
)

// Table2Cell is one (tracer, workload) measurement.
type Table2Cell struct {
	LatestMB      float64
	LossRate      float64
	Fragments     int
	LatencyGeoNs  float64
	Effectivity   float64
	WrittenMB     float64
	DroppedEvents uint64
}

// Table2Result reproduces Table 2: latest continuous entries, loss rate,
// fragment count and geometric-mean recording latency for every tracer
// under every workload, thread-level replay, equal budgets.
type Table2Result struct {
	Tracers   []string
	Workloads []string
	// Cells[tracer][workload].
	Cells map[string]map[string]Table2Cell
	// GeoMean[tracer] aggregates each metric across workloads the way
	// the paper's G.M. column does.
	GeoMean  map[string]Table2Cell
	BudgetMB float64
}

// Table2 runs the full grid.
func Table2(o Options) (*Table2Result, error) {
	o = o.defaults()
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	budget := o.effectiveBudget()
	res := &Table2Result{
		Tracers:  o.Tracers,
		Cells:    map[string]map[string]Table2Cell{},
		GeoMean:  map[string]Table2Cell{},
		BudgetMB: float64(budget) / 1e6,
	}
	for _, w := range ws {
		res.Workloads = append(res.Workloads, w.Name)
	}
	for _, tn := range o.Tracers {
		res.Cells[tn] = map[string]Table2Cell{}
		for _, w := range ws {
			tr, err := o.withBudget(budget).newTracer(tn, w)
			if err != nil {
				return nil, err
			}
			rr, err := replay.Run(replay.Config{
				Tracer: tr, Workload: w, Topology: o.Topology,
				Mode: replay.ThreadLevel, RateScale: o.RateScale,
				PreemptProb: o.PreemptProb, MeasureLatency: true,
			})
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", tn, w.Name, err)
			}
			retained, err := replay.RetainedStamps(tr)
			if err != nil {
				return nil, err
			}
			ret, err := analysis.Analyze(rr.Truth, retained, budget)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", tn, w.Name, err)
			}
			lat := analysis.Latency(rr.LatenciesNs)
			res.Cells[tn][w.Name] = Table2Cell{
				LatestMB:      float64(ret.LatestFragmentBytes) / 1e6,
				LossRate:      ret.LossRate,
				Fragments:     ret.Fragments,
				LatencyGeoNs:  lat.GeoMean,
				Effectivity:   ret.EffectivityRatio,
				WrittenMB:     float64(ret.TotalBytes) / 1e6,
				DroppedEvents: rr.Dropped,
			}
		}
		res.GeoMean[tn] = geoMeanCells(res.Cells[tn])
	}
	return res, nil
}

func geoMeanCells(cells map[string]Table2Cell) Table2Cell {
	gm := func(get func(Table2Cell) float64) float64 {
		var logSum float64
		n := 0
		for _, c := range cells {
			v := get(c)
			if v <= 0 {
				v = 1e-6
			}
			logSum += math.Log(v)
			n++
		}
		if n == 0 {
			return 0
		}
		return math.Exp(logSum / float64(n))
	}
	var fragSum int
	for _, c := range cells {
		fragSum += c.Fragments
	}
	out := Table2Cell{
		LatestMB:     gm(func(c Table2Cell) float64 { return c.LatestMB }),
		LossRate:     gm(func(c Table2Cell) float64 { return c.LossRate + 1e-6 }),
		LatencyGeoNs: gm(func(c Table2Cell) float64 { return c.LatencyGeoNs }),
		Effectivity:  gm(func(c Table2Cell) float64 { return c.Effectivity }),
	}
	if len(cells) > 0 {
		out.Fragments = fragSum / len(cells)
	}
	return out
}

// Render writes the four metric tables (the paper stacks them in one).
func (r *Table2Result) Render(w io.Writer) {
	metric := func(title string, get func(Table2Cell) string) {
		headers := append([]string{"tracer"}, r.Workloads...)
		headers = append(headers, "G.M.")
		tb := report.NewTable(title, headers...)
		for _, tn := range r.Tracers {
			row := make([]any, 0, len(r.Workloads)+2)
			row = append(row, tn)
			for _, wn := range r.Workloads {
				row = append(row, get(r.Cells[tn][wn]))
			}
			row = append(row, get(r.GeoMean[tn]))
			tb.AddRow(row...)
		}
		tb.Render(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Table 2 — thread-level replay, %.1f MB budget per tracer\n\n", r.BudgetMB)
	metric("Latest continuous entries (MB) — higher is better", func(c Table2Cell) string {
		return fmt.Sprintf("%.2f", c.LatestMB)
	})
	metric("Loss rate — lower is better", func(c Table2Cell) string {
		return fmt.Sprintf("%.2f", c.LossRate)
	})
	metric("Fragment count — lower is better", func(c Table2Cell) string {
		return formatCount(c.Fragments)
	})
	metric("Recording latency, geometric mean (ns) — lower is better", func(c Table2Cell) string {
		return fmt.Sprintf("%.0f", c.LatencyGeoNs)
	})
}

func formatCount(n int) string {
	switch {
	case n >= 10000:
		return fmt.Sprintf("%de%d", n/pow10(digits(n)-1), digits(n)-1)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func digits(n int) int {
	d := 0
	for n > 0 {
		d++
		n /= 10
	}
	return d
}

func pow10(e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= 10
	}
	return p
}
