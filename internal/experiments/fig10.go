package experiments

import (
	"fmt"
	"io"

	"btrace/internal/analysis"
	"btrace/internal/core"
	"btrace/internal/replay"
	"btrace/internal/report"
)

// Fig10Point is one (active block multiplier, replay mode) cell: the box
// of latest-fragment sizes over the workload set.
type Fig10Point struct {
	// Multiplier is A / cores (the Fig. 10 x-axis, 1x..64x).
	Multiplier int
	// CoreLevel and ThreadLevel box the latest fragment in MB across
	// workloads for the two replay methods.
	CoreLevel, ThreadLevel report.BoxStats
}

// Fig10Result reproduces Fig. 10: the latest fragment under a varying
// number of active blocks, for core-level and thread-level replay. Both
// extremes hurt: a small A closes partially filled blocks too eagerly; a
// large A widens the gap-prone active region (§5.1).
type Fig10Result struct {
	BudgetMB float64
	Points   []Fig10Point
}

// Fig10Multipliers is the paper's sweep: 1x to 64x the core count.
var Fig10Multipliers = []int{1, 2, 4, 8, 16, 32, 64}

// Fig10 runs the sweep.
func Fig10(o Options) (*Fig10Result, error) {
	o = o.defaults()
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	budget := o.effectiveBudget()
	res := &Fig10Result{BudgetMB: float64(budget) / 1e6}
	for _, mult := range Fig10Multipliers {
		pt := Fig10Point{Multiplier: mult}
		for _, mode := range []replay.Mode{replay.CoreLevel, replay.ThreadLevel} {
			var latest []float64
			for _, w := range ws {
				// Honor the multiplier exactly (no sweet-spot clamping):
				// the sweep's entire point is to show both extremes hurt.
				// Keep the paper's block count (N = 3072 at 12 MB / 4 KiB)
				// by scaling the block size with the effective budget, so
				// every multiplier keeps its paper ratio N/A.
				cores := o.Topology.Cores()
				bs := budget / 3072 / 8 * 8
				// Blocks must hold the largest event (~200 B wire) with
				// headroom; tiny smoke budgets get fewer, larger blocks.
				if bs < 2*core.MinBlockSize {
					bs = 2 * core.MinBlockSize
				}
				n := budget / bs
				a := mult * cores
				if a > n {
					a = n
				}
				ratio := n / a
				if ratio < 1 {
					ratio = 1
				}
				opt := core.Options{
					Cores: cores, BlockSize: bs,
					ActiveBlocks: a, Ratio: ratio,
				}
				buf, err := core.New(opt)
				if err != nil {
					return nil, err
				}
				tr := core.Adapter{Buffer: buf}
				rr, err := replay.Run(replay.Config{
					Tracer: tr, Workload: w, Topology: o.Topology,
					Mode: mode, RateScale: o.RateScale, PreemptProb: o.PreemptProb,
				})
				if err != nil {
					return nil, err
				}
				retained, err := replay.RetainedStamps(tr)
				if err != nil {
					return nil, err
				}
				ret, err := analysis.Analyze(rr.Truth, retained, budget)
				if err != nil {
					return nil, err
				}
				latest = append(latest, float64(ret.LatestFragmentBytes)/1e6)
			}
			if mode == replay.CoreLevel {
				pt.CoreLevel = report.Box(latest)
			} else {
				pt.ThreadLevel = report.Box(latest)
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render writes the sweep.
func (r *Fig10Result) Render(w io.Writer) {
	tb := report.NewTable(
		fmt.Sprintf("Fig. 10 — latest fragment (MB) vs active blocks (buffer %.1f MB)", r.BudgetMB),
		"A (x cores)", "core-level med", "core-level box", "thread-level med", "thread-level box")
	maxV := 0.0
	for _, p := range r.Points {
		if p.CoreLevel.Max > maxV {
			maxV = p.CoreLevel.Max
		}
		if p.ThreadLevel.Max > maxV {
			maxV = p.ThreadLevel.Max
		}
	}
	for _, p := range r.Points {
		tb.AddRow(fmt.Sprintf("%dx", p.Multiplier),
			fmt.Sprintf("%.2f", p.CoreLevel.Median), p.CoreLevel.Render(maxV, 24),
			fmt.Sprintf("%.2f", p.ThreadLevel.Median), p.ThreadLevel.Render(maxV, 24))
	}
	tb.Render(w)
	fmt.Fprintln(w, "(paper: both extremes shrink the fragment; 16x is the sweet spot used in production)")
}
