package experiments

import (
	"fmt"
	"io"

	"btrace/internal/analysis"
	"btrace/internal/replay"
	"btrace/internal/workload"
)

// Fig3Level is one trace level's volume model and measured retention.
type Fig3Level struct {
	Level uint8
	// VolumeMB30s is the level's modeled 30-second production volume
	// across all cores at the experiment's rate scale.
	VolumeMB30s float64
	// ContinuousSec maps tracer name to the seconds of latest continuous
	// trace it retains in the fixed buffer.
	ContinuousSec map[string]float64
}

// Fig3Result reproduces Fig. 3: which trace level each tracer can record
// continuously for the full 30 s window within a fixed buffer. The paper
// fixes 450 MB at full volume; the experiment fixes the same
// volume-proportional budget at the configured scale.
type Fig3Result struct {
	Workload  string
	BudgetMB  float64
	RateScale float64
	Levels    []Fig3Level
}

// Fig3 runs the experiment with the btrace and ftrace tracers (the
// figure's two subjects).
func Fig3(o Options) (*Fig3Result, error) {
	o = o.defaults()
	const wlName = "Video-1" // the classic energy-diagnosis scenario, strongly skewed per-core rates
	w, err := wlByName(wlName)
	if err != nil {
		return nil, err
	}
	// The paper's 450 MB buffer is sized to just hold the full-volume
	// level-3 30 s trace (§6: "by reserving a 450 MB buffer ... traces
	// for over 30 seconds"); size the budget the same way against this
	// workload's modeled level-3 volume, so level 3 fits only a tracer
	// with near-ideal effectivity.
	budget := int(w.BytesPerSec(o.Topology, workload.Level3) * 30 * o.RateScale * 1.05)
	res := &Fig3Result{Workload: wlName, BudgetMB: float64(budget) / 1e6, RateScale: o.RateScale}

	for _, level := range []uint8{workload.Level1, workload.Level2, workload.Level3} {
		lv := Fig3Level{
			Level:         level,
			VolumeMB30s:   w.BytesPerSec(o.Topology, level) * 30 * o.RateScale / 1e6,
			ContinuousSec: map[string]float64{},
		}
		for _, tn := range []string{"btrace", "ftrace"} {
			// The figure fixes its own budget rather than the Table 2 one.
			tr, err := o.withBudget(budget).newTracer(tn, w)
			if err != nil {
				return nil, err
			}
			rr, err := replay.Run(replay.Config{
				Tracer: tr, Workload: w, Topology: o.Topology, Level: level,
				Mode: replay.ThreadLevel, RateScale: o.RateScale, PreemptProb: o.PreemptProb,
			})
			if err != nil {
				return nil, err
			}
			retained, err := replay.RetainedStamps(tr)
			if err != nil {
				return nil, err
			}
			ret, err := analysis.Analyze(rr.Truth, retained, budget)
			if err != nil {
				return nil, err
			}
			bytesPerSec := w.BytesPerSec(o.Topology, level) * o.RateScale
			if bytesPerSec > 0 {
				sec := float64(ret.LatestFragmentBytes) / bytesPerSec
				if sec > 30 {
					sec = 30
				}
				lv.ContinuousSec[tn] = sec
			}
		}
		res.Levels = append(res.Levels, lv)
	}
	return res, nil
}

// withBudget returns a copy of o with a different buffer budget.
func (o Options) withBudget(budget int) Options {
	o.Budget = budget
	return o
}

// Render writes the level capacity table.
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 3 — trace levels recordable in a %.0f MB buffer over 30 s (%s, volume scale %.3f)\n",
		r.BudgetMB, r.Workload, r.RateScale)
	for _, lv := range r.Levels {
		fmt.Fprintf(w, "  level-%d: volume %.1f MB/30s; continuous trace: btrace %.1fs, ftrace %.1fs\n",
			lv.Level, lv.VolumeMB30s, lv.ContinuousSec["btrace"], lv.ContinuousSec["ftrace"])
	}
	fmt.Fprintln(w, "  (paper: BTrace stores all level-3 traces of the 30 s window; ftrace only level-2)")
}
