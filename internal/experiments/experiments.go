// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) and motivation (§2.2). Each experiment is a function
// returning a structured result with a Render method; bench_test.go and
// cmd/btrace-bench are thin wrappers over this package.
//
// The experiments run on the virtual SoC at a configurable fraction of
// the paper's full trace volume (Options.RateScale): the absolute numbers
// scale with the volume, while the comparative shape — who wins, by what
// factor, where the crossovers are — is preserved. EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"

	"btrace/internal/sim"
	"btrace/internal/tracer"
	"btrace/internal/workload"

	// Link every tracer into the registry.
	_ "btrace/internal/bbq"
	_ "btrace/internal/core"
	_ "btrace/internal/ftrace"
	_ "btrace/internal/lttng"
	_ "btrace/internal/vtrace"
)

// AllTracers lists the evaluated tracers in the paper's presentation
// order (Table 2 rows).
var AllTracers = []string{"btrace", "bbq", "ftrace", "lttng", "vtrace"}

// Options scales an experiment run.
type Options struct {
	// Budget is each tracer's buffer budget in bytes (paper: 12 MiB).
	Budget int
	// RateScale is the fraction of the paper's full trace volume to
	// replay (1.0 = full; tests and benches use less).
	RateScale float64
	// PreemptProb is the thread-level mid-write preemption probability.
	PreemptProb float64
	// Workloads restricts the workload set (nil = all 20).
	Workloads []string
	// Tracers restricts the tracer set (nil = AllTracers).
	Tracers []string
	// Topology overrides the machine (zero = Phone12).
	Topology sim.Topology
}

// Defaults returns the configuration used by the bench harness: the
// paper's 12 MiB budget at 5% of the full volume. The preemption
// probability is per preemption point; at two points per write, 0.002
// preempts roughly one write in 250 — far above a real device's rate
// (~1e-5, a 100 ns write against 10 ms timeslices) so the availability
// machinery is exercised, yet low enough not to distort retention.
func Defaults() Options {
	return Options{
		Budget:      12 << 20,
		RateScale:   0.05,
		PreemptProb: 0.002,
	}
}

// Quick returns a reduced configuration for fast smoke runs: a handful of
// representative workloads at 1.5% volume.
func Quick() Options {
	o := Defaults()
	o.RateScale = 0.015
	o.Workloads = []string{"LockScr.", "Desktop", "IM", "Video-1", "eShop-1", "eShop-2"}
	return o
}

func (o Options) defaults() Options {
	d := Defaults()
	if o.Budget == 0 {
		o.Budget = d.Budget
	}
	if o.RateScale == 0 {
		o.RateScale = d.RateScale
	}
	if o.PreemptProb == 0 {
		o.PreemptProb = d.PreemptProb
	}
	if o.Tracers == nil {
		o.Tracers = AllTracers
	}
	if o.Workloads == nil {
		o.Workloads = workload.Names()
	}
	if o.Topology.Cores() == 0 {
		o.Topology = sim.Phone12()
	}
	return o
}

// effectiveBudget scales the paper's buffer budget by the replayed volume
// fraction, preserving the paper's volume-to-budget ratio — the quantity
// every retention result depends on (a 12 MiB buffer against hundreds of
// MB of trace per 30 s). Without this, small-scale runs would never wrap
// and all tracers would trivially tie.
func (o Options) effectiveBudget() int {
	b := int(float64(o.Budget) * o.RateScale)
	// Floor at four blocks/pages per core so every tracer design (the
	// per-core ones need at least two pages per core) stays constructible
	// at extreme scales.
	if min := o.Topology.Cores() * 4 * 4096; b < min {
		b = min
	}
	return b
}

// workloads resolves the configured workload set.
func (o Options) workloads() ([]workload.Workload, error) {
	out := make([]workload.Workload, 0, len(o.Workloads))
	for _, name := range o.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no workloads selected")
	}
	return out, nil
}

// newTracer builds the named tracer for this option set. The threads hint
// passed to per-thread tracers matches the workload's oversubscription.
func (o Options) newTracer(name string, w workload.Workload) (tracer.Tracer, error) {
	threads := w.ThreadsTotal * o.Topology.Cores()
	return tracer.New(name, o.Budget, o.Topology.Cores(), threads)
}
