package experiments

import (
	"fmt"
	"io"

	"btrace/internal/analysis"
	"btrace/internal/replay"
	"btrace/internal/report"
	"btrace/internal/workload"
)

// MemReqRow is one tracer's minimum-buffer result for one workload.
type MemReqRow struct {
	Workload string
	// Required maps tracer name to the smallest budget (bytes) that
	// retained the full window as one continuous latest fragment.
	Required map[string]int
	// WrittenBytes is the window's total trace volume.
	WrittenBytes uint64
}

// MemReqResult covers the paper's §1/§2.2 claim that per-core tracers
// need 2-3x more memory than the ideal to keep a full 30 s window ("over
// 1 GB", against ~450 MB of actual data): for each workload it
// binary-searches the smallest buffer with which each tracer retains the
// whole window, and reports the overprovisioning factor relative to the
// written volume.
type MemReqResult struct {
	Rows    []MemReqRow
	Tracers []string
}

// MemoryRequirement runs the search. Only btrace and ftrace are searched
// by default (the paper's comparison); Options.Tracers overrides.
func MemoryRequirement(o Options) (*MemReqResult, error) {
	o = o.defaults()
	tracers := o.Tracers
	if len(tracers) == len(AllTracers) {
		tracers = []string{"btrace", "ftrace"}
	}
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	res := &MemReqResult{Tracers: tracers}
	for _, w := range ws {
		row := MemReqRow{Workload: w.Name, Required: map[string]int{}}
		for _, tn := range tracers {
			req, written, err := minimalBudget(o, w, tn)
			if err != nil {
				return nil, fmt.Errorf("memreq %s/%s: %w", tn, w.Name, err)
			}
			row.Required[tn] = req
			row.WrittenBytes = written
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// minimalBudget binary-searches the smallest budget retaining the whole
// window continuously (zero loss, single fragment covering every stamp).
func minimalBudget(o Options, w workload.Workload, tracerName string) (budget int, written uint64, err error) {
	retainsAll := func(budget int) (bool, uint64, error) {
		tr, err := o.withBudget(budget).newTracer(tracerName, w)
		if err != nil {
			return false, 0, err
		}
		rr, err := replay.Run(replay.Config{
			Tracer: tr, Workload: w, Topology: o.Topology,
			Mode: replay.ThreadLevel, RateScale: o.RateScale, PreemptProb: o.PreemptProb,
		})
		if err != nil {
			return false, 0, err
		}
		retained, err := replay.RetainedStamps(tr)
		if err != nil {
			return false, 0, err
		}
		ret, err := analysis.Analyze(rr.Truth, retained, budget)
		if err != nil {
			return false, 0, err
		}
		return ret.LatestFragmentEntries == ret.TotalWritten, ret.TotalBytes, nil
	}

	// Exponential search up from the written volume's floor, then binary
	// search between the last failure and first success.
	lo := o.Topology.Cores() * 2 * 4096
	hi := lo
	for {
		ok, wr, err := retainsAll(hi)
		if err != nil {
			return 0, 0, err
		}
		written = wr
		if ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<31 {
			return 0, 0, fmt.Errorf("no budget up to %d retains the window", hi)
		}
	}
	for hi-lo > hi/16 { // 6% precision is plenty for a 2-3x claim
		mid := (lo + hi) / 2
		ok, _, err := retainsAll(mid)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, written, nil
}

// Render writes the requirement table.
func (r *MemReqResult) Render(w io.Writer) {
	headers := []string{"workload", "written"}
	for _, tn := range r.Tracers {
		headers = append(headers, tn+" needs", tn+" factor")
	}
	tb := report.NewTable("Memory needed to retain the full 30 s window continuously (§2.2: per-core tracers need 2-3x)", headers...)
	for _, row := range r.Rows {
		cells := []any{row.Workload, report.HumanBytes(row.WrittenBytes)}
		for _, tn := range r.Tracers {
			req := row.Required[tn]
			factor := float64(req) / float64(row.WrittenBytes)
			cells = append(cells, report.HumanBytes(uint64(req)), fmt.Sprintf("%.2fx", factor))
		}
		tb.AddRow(cells...)
	}
	tb.Render(w)
}
