package experiments

import (
	"btrace/internal/report"
	"btrace/internal/workload"
)

func wlByName(name string) (workload.Workload, error) {
	return workload.ByName(name)
}

func human(b int) string {
	if b < 0 {
		b = 0
	}
	return report.HumanBytes(uint64(b))
}

func renderMap(m []bool, width int) string {
	return report.RetentionBar(m, width)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
