package experiments

import (
	"strings"
	"testing"
)

// Golden tests for the deterministic (model-driven) experiment renders:
// these outputs are pure functions of the checked-in calibration tables,
// so any drift is a semantic change that must be reviewed, not noise.

func TestGoldenFig5(t *testing.T) {
	res, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	const want = `Fig. 5 — per-core buffer fragmentation worked example (16-slot budget, 4 cores)
  retained map (ts-1..ts-20): |#        ## # ######|
  latest fragment: 6 entries (ts-15..ts-20); effectivity ratio 6/16 = 37.5% (paper: 37.5%)
  fragments: 4; indistinguishable small gaps at ts-12 and ts-14
`
	if sb.String() != want {
		t.Errorf("Fig5 render drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestGoldenTable1(t *testing.T) {
	res, err := Table1(Options{Budget: 12 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	got := sb.String()
	for _, line := range []string{
		"Table 1 — analytic comparison (C=12, T=500, N=3072, A=192)",
		"| bbq    | High (Global Buffer) | 1.0000      | 1.0000      | Not support         | Blocking              |",
		"| btrace | Low (Core Local)     | 0.9964      | 0.9375      | Implicit Reclaiming | Skipping Blocked      |",
		"(§3.1 example: per-core utilization 8.3%, per-thread 0.2%, btrace 99.6%)",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("Table1 render missing line:\n%s\n--- got ---\n%s", line, got)
		}
	}
}

func TestGoldenFig2TopRows(t *testing.T) {
	res, err := Fig2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	got := sb.String()
	for _, line := range []string{
		"energy/thermal/... L3    200",
		"freq               L3    140",
		"sched              L2    120",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("Fig2 render missing %q:\n%s", line, got)
		}
	}
}

func TestGoldenFig4FirstRow(t *testing.T) {
	res, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	// The jitter is seeded, so the first row is stable.
	if !strings.Contains(sb.String(), "| Desktop  | 5.5") {
		t.Errorf("Fig4 first row drifted:\n%s", sb.String())
	}
}
