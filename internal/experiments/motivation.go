package experiments

import (
	"fmt"
	"io"
	"sort"

	"btrace/internal/analysis"
	"btrace/internal/report"
	"btrace/internal/workload"
)

// --- Fig. 2: trace production speed per atrace category ---

// Fig2Result reproduces Fig. 2: the production speed of each atrace
// category in MB per core per minute.
type Fig2Result struct {
	Rows []workload.CategoryInfo
}

// Fig2 returns the category rate model.
func Fig2(Options) (*Fig2Result, error) {
	rows := make([]workload.CategoryInfo, 0, int(workload.NumCategories))
	for c := workload.Category(0); c < workload.NumCategories; c++ {
		rows = append(rows, workload.Categories[c])
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].PeakMBPerCoreMin > rows[j].PeakMBPerCoreMin })
	return &Fig2Result{Rows: rows}, nil
}

// Render writes the category bar chart.
func (r *Fig2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 2 — trace production speed per atrace category (MB per core per minute)")
	maxV := r.Rows[0].PeakMBPerCoreMin
	for _, ci := range r.Rows {
		fmt.Fprintf(w, "  %-18s L%d %6.0f %s\n", ci.Name, ci.Level, ci.PeakMBPerCoreMin,
			report.Bar(ci.PeakMBPerCoreMin, maxV, 40))
	}
	fmt.Fprintf(w, "  level-3 custom categories (idle/freq/sched/energy) average %.0f MB/core/min (§2.2: ~100)\n",
		(workload.Categories[workload.CatIdle].PeakMBPerCoreMin+
			workload.Categories[workload.CatFreq].PeakMBPerCoreMin+
			workload.Categories[workload.CatSched].PeakMBPerCoreMin+
			workload.Categories[workload.CatEnergy].PeakMBPerCoreMin)/4)
}

// --- Fig. 4: per-core production speed for selected workloads ---

// Fig4Result reproduces Fig. 4: average per-core trace speed (kEntries/s)
// for the six published workload profiles.
type Fig4Result struct {
	Workloads []string
	// RatesK[w][c] is workload w's speed on core c in kEntries/s.
	RatesK [][]float64
	Cores  int
}

// Fig4 evaluates the per-core rate model (measured counts are validated
// against it in the test suite).
func Fig4(o Options) (*Fig4Result, error) {
	o = o.defaults()
	names := []string{"Desktop", "Video-1", "Video-2", "eShop-1", "LockScr.", "IM"}
	res := &Fig4Result{Workloads: names, Cores: o.Topology.Cores()}
	for _, n := range names {
		w, err := wlByName(n)
		if err != nil {
			return nil, err
		}
		rates := make([]float64, o.Topology.Cores())
		for c := range rates {
			rates[c] = w.RateK(o.Topology, c)
		}
		res.RatesK = append(res.RatesK, rates)
	}
	return res, nil
}

// Render writes the per-core table.
func (r *Fig4Result) Render(w io.Writer) {
	headers := []string{"workload"}
	for c := 0; c < r.Cores; c++ {
		headers = append(headers, fmt.Sprintf("c%d", c))
	}
	tb := report.NewTable("Fig. 4 — per-core trace speed (kEntries/s); cores 0-3 little, 4-9 middle, 10-11 big", headers...)
	for i, name := range r.Workloads {
		row := make([]any, 0, r.Cores+1)
		row = append(row, name)
		for _, v := range r.RatesK[i] {
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
}

// --- Fig. 5: the per-core fragmentation worked example ---

// Fig5Result reproduces the Fig. 5 worked example: 16-entry buffer, four
// per-core buffers, skewed production, effectivity 6/16.
type Fig5Result struct {
	Retention analysis.Retention
	Map       []bool
}

// Fig5 computes the worked example exactly as drawn in the paper.
func Fig5(Options) (*Fig5Result, error) {
	// 20 one-unit entries ts-1..ts-20 distributed over four per-core
	// buffers of 4 slots (16 total). The little core produced 8 entries
	// (2,4,...,12,14 plus newer), wrapping and overwriting; the figure's
	// retained set is ts-10,11,13,15..20 plus the old ts-1 in the big
	// core's half-empty buffer.
	truth := make([]uint32, 20)
	for i := range truth {
		truth[i] = 1
	}
	retained := []uint64{1, 10, 11, 13, 15, 16, 17, 18, 19, 20}
	ret, err := analysis.Analyze(truth, retained, 16)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Retention: ret,
		Map:       analysis.RetentionMap(20, retained, 20),
	}, nil
}

// Render writes the worked example.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5 — per-core buffer fragmentation worked example (16-slot budget, 4 cores)")
	fmt.Fprintf(w, "  retained map (ts-1..ts-20): |%s|\n", renderMap(r.Map, 20))
	fmt.Fprintf(w, "  latest fragment: %d entries (ts-15..ts-20); effectivity ratio %d/16 = %.1f%% (paper: 37.5%%)\n",
		r.Retention.LatestFragmentEntries, r.Retention.LatestFragmentEntries,
		r.Retention.EffectivityRatio*100)
	fmt.Fprintf(w, "  fragments: %d; indistinguishable small gaps at ts-12 and ts-14\n", r.Retention.Fragments)
}

// --- Fig. 6: thread oversubscription box plot ---

// Fig6Row is one workload's distinct-thread statistics per core.
type Fig6Row struct {
	Workload string
	// TotalBox summarizes the distinct thread count per core over the
	// full window; PerSecBox within single seconds.
	TotalBox  report.BoxStats
	PerSecBox report.BoxStats
}

// Fig6Result reproduces Fig. 6.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 measures distinct producing threads per core from the generators.
func Fig6(o Options) (*Fig6Result, error) {
	o = o.defaults()
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for _, w := range ws {
		var totals, persec []float64
		for c := 0; c < o.Topology.Cores(); c++ {
			g, err := w.Gen(workload.GenOptions{Topology: o.Topology, Core: c})
			if err != nil {
				return nil, err
			}
			seen := map[uint32]bool{}
			secSeen := map[uint32]bool{}
			var secCounts []float64
			curSec := uint64(0)
			for {
				e, ok := g.Next()
				if !ok {
					break
				}
				seen[e.TID] = true
				if s := e.TS / 1_000_000_000; s != curSec {
					secCounts = append(secCounts, float64(len(secSeen)))
					secSeen = map[uint32]bool{}
					curSec = s
				}
				secSeen[e.TID] = true
			}
			if len(secSeen) > 0 {
				secCounts = append(secCounts, float64(len(secSeen)))
			}
			totals = append(totals, float64(len(seen)))
			var avg float64
			for _, v := range secCounts {
				avg += v
			}
			if len(secCounts) > 0 {
				avg /= float64(len(secCounts))
			}
			persec = append(persec, avg)
		}
		res.Rows = append(res.Rows, Fig6Row{
			Workload:  w.Name,
			TotalBox:  report.Box(totals),
			PerSecBox: report.Box(persec),
		})
	}
	return res, nil
}

// Render writes the box plot table.
func (r *Fig6Result) Render(w io.Writer) {
	tb := report.NewTable("Fig. 6 — distinct trace-producing threads per core (box over cores)",
		"workload", "total30s med", "total30s box", "per-sec med", "per-sec box")
	var maxT float64
	for _, row := range r.Rows {
		if row.TotalBox.Max > maxT {
			maxT = row.TotalBox.Max
		}
	}
	for _, row := range r.Rows {
		tb.AddRow(row.Workload,
			fmt.Sprintf("%.0f", row.TotalBox.Median), row.TotalBox.Render(maxT, 24),
			fmt.Sprintf("%.0f", row.PerSecBox.Median), row.PerSecBox.Render(maxT/10, 24))
	}
	tb.Render(w)
}
