package experiments

import (
	"fmt"
	"io"

	"btrace/internal/analysis"
	"btrace/internal/replay"
	"btrace/internal/report"
)

// Fig11Curve is one tracer's latency CDF.
type Fig11Curve struct {
	Tracer string
	Stats  analysis.LatencyStats
	// CDF holds (latency ns, cumulative %) points.
	CDF [][2]float64
}

// Fig11Result reproduces Fig. 11: recording-latency CDFs for the eShop-2
// workload (heavy oversubscription, subfigure a) and overall across the
// workload set (subfigure b).
type Fig11Result struct {
	// EShop2 and Overall hold one curve per tracer.
	EShop2, Overall []Fig11Curve
}

// Fig11 runs the experiment.
func Fig11(o Options) (*Fig11Result, error) {
	o = o.defaults()
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	const points = 41
	for _, tn := range o.Tracers {
		var all []int64
		var eshop []int64
		for _, w := range ws {
			tr, err := o.withBudget(o.effectiveBudget()).newTracer(tn, w)
			if err != nil {
				return nil, err
			}
			rr, err := replay.Run(replay.Config{
				Tracer: tr, Workload: w, Topology: o.Topology,
				Mode: replay.ThreadLevel, RateScale: o.RateScale,
				PreemptProb: o.PreemptProb, MeasureLatency: true,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, rr.LatenciesNs...)
			if w.Name == "eShop-2" {
				eshop = rr.LatenciesNs
			}
		}
		if eshop == nil {
			// The quick workload subsets always include eShop-2, but a
			// custom selection may not; fall back to the pooled samples.
			eshop = all
		}
		res.EShop2 = append(res.EShop2, Fig11Curve{
			Tracer: tn, Stats: analysis.Latency(eshop), CDF: analysis.CDF(eshop, points),
		})
		res.Overall = append(res.Overall, Fig11Curve{
			Tracer: tn, Stats: analysis.Latency(all), CDF: analysis.CDF(all, points),
		})
	}
	return res, nil
}

// Render writes the latency summary and CDF series.
func (r *Fig11Result) Render(w io.Writer) {
	for name, curves := range map[string][]Fig11Curve{
		"(a) eShop-2 workload": r.EShop2,
		"(b) overall":          r.Overall,
	} {
		tb := report.NewTable("Fig. 11 "+name+" — recording latency",
			"tracer", "geo-mean ns", "p50 ns", "p90 ns", "p99 ns")
		for _, c := range curves {
			tb.AddRow(c.Tracer, fmt.Sprintf("%.0f", c.Stats.GeoMean), c.Stats.P50, c.Stats.P90, c.Stats.P99)
		}
		tb.Render(w)
		fmt.Fprintln(w)
	}
	for _, c := range r.Overall {
		report.Series(w, fmt.Sprintf("Fig. 11b CDF — %s", c.Tracer), "latency_ns", "cdf_percent", c.CDF)
	}
}
