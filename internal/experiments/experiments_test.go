package experiments

import (
	"strings"
	"testing"

	"btrace/internal/sim"
)

// tiny returns a very small option set for fast tests.
func tiny() Options {
	// The paper's 12 MiB budget; the effective budget scales with the
	// volume fraction, preserving the paper's wrap-around pressure.
	return Options{
		Budget:      12 << 20,
		RateScale:   0.05,
		PreemptProb: 0.005,
		Workloads:   []string{"LockScr.", "eShop-1", "eShop-2", "Video-1"},
	}
}

func renderToString(t *testing.T, r interface{ Render(w *strings.Builder) }) string {
	t.Helper()
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

func TestDefaultsAndQuick(t *testing.T) {
	d := Defaults()
	if d.Budget != 12<<20 {
		t.Errorf("default budget = %d", d.Budget)
	}
	q := Quick()
	if len(q.Workloads) == 0 {
		t.Error("quick workloads empty")
	}
	n := Options{}.defaults()
	if n.Topology.Cores() != 12 || len(n.Tracers) != 5 || len(n.Workloads) != 20 {
		t.Errorf("defaults: %+v", n)
	}
}

func TestOptionsWorkloadsErrors(t *testing.T) {
	o := Options{Workloads: []string{"bogus"}}.defaults()
	if _, err := o.workloads(); err == nil {
		t.Error("bogus workload: expected error")
	}
}

func TestFig1(t *testing.T) {
	o := tiny()
	o.Tracers = []string{"btrace", "ftrace"}
	res, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, scen := range res.Scenarios {
		rows := res.Rows[scen]
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", scen, len(rows))
		}
		for _, row := range rows {
			if len(row.Map) == 0 {
				t.Errorf("%s/%s: empty map", scen, row.Tracer)
			}
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "LockScr.") || !strings.Contains(out, "btrace") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 19 {
		t.Fatalf("%d categories, want 19", len(res.Rows))
	}
	// Sorted descending.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PeakMBPerCoreMin > res.Rows[i-1].PeakMBPerCoreMin {
			t.Fatal("not sorted")
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "energy/thermal") {
		t.Error("render missing category")
	}
}

func TestFig3(t *testing.T) {
	o := tiny()
	res, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	// Volumes increase with level; btrace retains at least as much
	// continuous time as ftrace at level 3 (the figure's claim).
	if !(res.Levels[0].VolumeMB30s < res.Levels[2].VolumeMB30s) {
		t.Error("volumes not increasing")
	}
	l3 := res.Levels[2]
	if l3.ContinuousSec["btrace"] < l3.ContinuousSec["ftrace"] {
		t.Errorf("btrace %.1fs < ftrace %.1fs at level 3",
			l3.ContinuousSec["btrace"], l3.ContinuousSec["ftrace"])
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "level-3") {
		t.Error("render")
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 6 || len(res.RatesK) != 6 {
		t.Fatalf("shape: %d/%d", len(res.Workloads), len(res.RatesK))
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Video-1") {
		t.Error("render")
	}
}

func TestFig5(t *testing.T) {
	res, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retention.LatestFragmentEntries != 6 {
		t.Errorf("latest fragment = %d, want 6", res.Retention.LatestFragmentEntries)
	}
	if res.Retention.EffectivityRatio != 0.375 {
		t.Errorf("effectivity = %v, want 0.375", res.Retention.EffectivityRatio)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "37.5%") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestFig6(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"LockScr.", "eShop-2"}
	res, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// eShop-2 is heavily oversubscribed; LockScr. is not (Fig. 6 shape).
	var lock, eshop Fig6Row
	for _, r := range res.Rows {
		if r.Workload == "LockScr." {
			lock = r
		} else {
			eshop = r
		}
	}
	if eshop.TotalBox.Median < 5*lock.TotalBox.Median {
		t.Errorf("oversubscription shape: eShop-2 %.0f vs LockScr. %.0f",
			eshop.TotalBox.Median, lock.TotalBox.Median)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "eShop-2") {
		t.Error("render")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(Options{Budget: 12 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3072 || res.A != 192 {
		t.Fatalf("N=%d A=%d, want 3072/192 (12 MB, 4 KiB blocks, 16x12)", res.N, res.A)
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Tracer] = r
	}
	if byName["bbq"].Utilization != 1 {
		t.Error("bbq utilization")
	}
	if u := byName["btrace"].Utilization; u < 0.99 {
		t.Errorf("btrace utilization = %v (§3.1: 99.6%% for the example)", u)
	}
	if e := byName["btrace"].Effectivity; e < 0.93 || e > 0.94 {
		t.Errorf("btrace effectivity = %v, want 1-192/3072 = 0.9375", e)
	}
	if byName["ftrace"].Utilization != 1.0/12 {
		t.Error("ftrace utilization")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Implicit Reclaiming") {
		t.Error("render")
	}
}

func TestFig11(t *testing.T) {
	o := tiny()
	o.Tracers = []string{"btrace", "bbq"}
	o.Workloads = []string{"eShop-2"}
	res, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EShop2) != 2 || len(res.Overall) != 2 {
		t.Fatalf("curves: %d/%d", len(res.EShop2), len(res.Overall))
	}
	for _, c := range res.Overall {
		if c.Stats.Count == 0 || len(c.CDF) == 0 {
			t.Errorf("%s: empty curve", c.Tracer)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "geo-mean") {
		t.Error("render")
	}
}

func TestTable2Small(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"Video-1", "LockScr."}
	res, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 2 || len(res.Tracers) != 5 {
		t.Fatalf("shape: %d workloads %d tracers", len(res.Workloads), len(res.Tracers))
	}
	// The paper's headline orderings on the skewed workload:
	v1 := func(tr string) Table2Cell { return res.Cells[tr]["Video-1"] }
	if v1("btrace").LatestMB <= v1("ftrace").LatestMB {
		t.Errorf("latest: btrace %.2f <= ftrace %.2f", v1("btrace").LatestMB, v1("ftrace").LatestMB)
	}
	if v1("btrace").LatestMB <= v1("vtrace").LatestMB {
		t.Errorf("latest: btrace %.2f <= vtrace %.2f", v1("btrace").LatestMB, v1("vtrace").LatestMB)
	}
	if v1("btrace").LossRate > 0.05 {
		t.Errorf("btrace loss rate %.3f, want ~0", v1("btrace").LossRate)
	}
	if v1("ftrace").LossRate < v1("btrace").LossRate {
		t.Errorf("ftrace loss %.3f < btrace %.3f", v1("ftrace").LossRate, v1("btrace").LossRate)
	}
	if v1("btrace").Fragments > v1("ftrace").Fragments {
		t.Errorf("fragments: btrace %d > ftrace %d", v1("btrace").Fragments, v1("ftrace").Fragments)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, frag := range []string{"Latest continuous", "Loss rate", "Fragment count", "Recording latency"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestFig10Small(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"Video-1", "eShop-1"}
	res, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig10Multipliers) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The 64x extreme must not beat the mid-range sweet spot at thread
	// level (the effectivity ceiling 1-A/N caps it).
	var at16, at64 float64
	for _, p := range res.Points {
		if p.Multiplier == 16 {
			at16 = p.ThreadLevel.Median
		}
		if p.Multiplier == 64 {
			at64 = p.ThreadLevel.Median
		}
	}
	if at64 > at16*1.15 {
		t.Errorf("64x median %.2f should not exceed 16x %.2f", at64, at16)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "sweet spot") {
		t.Error("render")
	}
}

func TestServerTopologyOption(t *testing.T) {
	o := tiny()
	o.Topology = sim.Server(24)
	o.Workloads = []string{"IM"}
	o.Tracers = []string{"btrace"}
	res, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells["btrace"]["IM"].LatestMB <= 0 {
		t.Error("no retention on server topology")
	}
}

func TestMemoryRequirement(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"Video-1"}
	res, err := MemoryRequirement(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Tracers) != 2 {
		t.Fatalf("shape: %d rows %d tracers", len(res.Rows), len(res.Tracers))
	}
	row := res.Rows[0]
	bt, ft := row.Required["btrace"], row.Required["ftrace"]
	if bt <= 0 || ft <= 0 {
		t.Fatalf("budgets: btrace %d ftrace %d", bt, ft)
	}
	// The §2.2 claim: the per-core tracer needs ~2-3x more memory than
	// the written volume; btrace stays close to 1x.
	btFactor := float64(bt) / float64(row.WrittenBytes)
	ftFactor := float64(ft) / float64(row.WrittenBytes)
	if btFactor > 1.6 {
		t.Errorf("btrace factor %.2f, want near 1x", btFactor)
	}
	if ftFactor < 1.5 {
		t.Errorf("ftrace factor %.2f, want >= 1.5x (paper: 2-3x)", ftFactor)
	}
	if ftFactor < btFactor {
		t.Errorf("ftrace needs less than btrace: %.2f vs %.2f", ftFactor, btFactor)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "factor") {
		t.Error("render")
	}
}
