// Package sim provides the virtual asymmetric SoC the evaluation runs on.
//
// The paper evaluates on a 12-core production smartphone (4 little, 6
// middle, 2 big cores) and pins replay threads to physical cores. The Go
// runtime deliberately hides core placement, so this package substitutes a
// *virtual* SoC: each virtual core admits at most one runnable thread at a
// time (a capacity-1 token), threads are goroutines bound to a virtual
// core, and preemption is injected at the tracer's preemption points with
// a configurable probability. Everything the paper's experiments measure —
// which core owns which trace block, preemption between allocate and
// confirm, 30+ distinct writer threads per core (Fig. 6) — depends only on
// this logical structure, not on physical placement (see DESIGN.md,
// "Faithfulness notes").
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"btrace/internal/tracer"
)

// CoreKind classifies a core in an ARM DynamIQ-style asymmetric topology.
type CoreKind uint8

// Core kinds, ordered by capacity.
const (
	Little CoreKind = iota
	Middle
	Big
)

// String returns the kind name.
func (k CoreKind) String() string {
	switch k {
	case Little:
		return "little"
	case Middle:
		return "middle"
	default:
		return "big"
	}
}

// Topology describes a machine's core mix.
type Topology struct {
	Little, Middle, Big int
}

// Phone12 is the paper's evaluation device [24]: cores 0-3 little, 4-9
// middle, 10-11 big (Fig. 4 caption).
func Phone12() Topology { return Topology{Little: 4, Middle: 6, Big: 2} }

// Server returns a flat many-core topology for the §7 server-scale
// scenario.
func Server(cores int) Topology { return Topology{Middle: cores} }

// Cores returns the total core count.
func (t Topology) Cores() int { return t.Little + t.Middle + t.Big }

// Kind returns the kind of core id under this topology.
func (t Topology) Kind(id int) CoreKind {
	switch {
	case id < t.Little:
		return Little
	case id < t.Little+t.Middle:
		return Middle
	default:
		return Big
	}
}

// Machine is a virtual SoC.
type Machine struct {
	topo  Topology
	cores []*Core
	hp    hotplugState
}

// Core is one virtual core. Its token channel admits one running thread
// at a time; waiting threads queue on the channel like a run queue.
type Core struct {
	id    int
	kind  CoreKind
	token chan struct{}
	// scheduled counts thread dispatches (token acquisitions).
	scheduled atomic.Uint64
	// preemptions counts mid-write preemptions delivered on this core.
	preemptions atomic.Uint64
}

// ID returns the core's id.
func (c *Core) ID() int { return c.id }

// Kind returns the core's kind.
func (c *Core) Kind() CoreKind { return c.kind }

// Scheduled returns how many times a thread was dispatched on the core.
func (c *Core) Scheduled() uint64 { return c.scheduled.Load() }

// Preemptions returns how many mid-write preemptions occurred on the core.
func (c *Core) Preemptions() uint64 { return c.preemptions.Load() }

// NewMachine builds a machine with the given topology.
func NewMachine(topo Topology) (*Machine, error) {
	n := topo.Cores()
	if n <= 0 || n > 255 {
		return nil, fmt.Errorf("sim: invalid topology %+v", topo)
	}
	m := &Machine{topo: topo, cores: make([]*Core, n)}
	m.hp.init()
	for i := range m.cores {
		m.cores[i] = &Core{
			id:    i,
			kind:  topo.Kind(i),
			token: make(chan struct{}, 1),
		}
		m.cores[i].token <- struct{}{}
	}
	return m, nil
}

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// Core returns core id.
func (m *Machine) Core(id int) *Core { return m.cores[id] }

// Topology returns the machine's topology.
func (m *Machine) Topology() Topology { return m.topo }

// FaultAction is a FaultController's verdict for one preemption point.
type FaultAction uint8

// Fault actions a controller may request at a preemption point.
const (
	// FaultNone leaves the point to the thread's ordinary probabilistic
	// preemption.
	FaultNone FaultAction = iota
	// FaultPreempt forces the thread to be scheduled out and immediately
	// recontend for its core — a targeted preemption regardless of the
	// thread's configured probability.
	FaultPreempt
	// FaultStall forces the thread off its core and parks it in the
	// controller's Stall until the fault clears — a writer frozen (or
	// killed) while holding unconfirmed bytes.
	FaultStall
)

// FaultController injects scheduling faults at tracer preemption points.
// At is consulted before the thread's probabilistic preemption; returning
// FaultStall makes the thread release its core and call Stall, which
// blocks until the controller lets the thread resume. Implementations
// must be safe for concurrent use by all threads of a machine.
type FaultController interface {
	At(t *Thread, p tracer.PreemptPoint) FaultAction
	Stall(t *Thread, p tracer.PreemptPoint)
}

// Thread is a simulated execution context: a goroutine bound to one
// virtual core that can be preempted at tracer preemption points. It
// implements tracer.Proc.
//
// A Thread is driven by exactly one goroutine.
type Thread struct {
	m    *Machine
	id   int
	core int

	rng *rand.Rand
	// preemptProb is the probability that a preemption point actually
	// preempts the thread.
	preemptProb float64
	// fc, when set, injects targeted faults at preemption points.
	fc FaultController

	nopreempt  int // preemption-disable nesting
	holding    bool
	bound      bool
	preempted  uint64
	stalls     uint64
	migrations uint64
}

// ThreadConfig configures NewThread.
type ThreadConfig struct {
	// ID is the workload-unique thread id.
	ID int
	// Core is the virtual core the thread is bound to.
	Core int
	// PreemptProb is the probability of preemption at each preemption
	// point while the thread holds its core.
	PreemptProb float64
	// Seed makes the thread's preemption decisions deterministic.
	Seed int64
}

// NewThread creates a thread on m. The thread starts descheduled; it
// acquires its core on the first Run/Acquire.
func (m *Machine) NewThread(cfg ThreadConfig) (*Thread, error) {
	if cfg.Core < 0 || cfg.Core >= len(m.cores) {
		return nil, fmt.Errorf("sim: core %d out of range [0,%d)", cfg.Core, len(m.cores))
	}
	if cfg.PreemptProb < 0 || cfg.PreemptProb > 1 {
		return nil, fmt.Errorf("sim: preempt probability %v out of [0,1]", cfg.PreemptProb)
	}
	return &Thread{
		m:           m,
		id:          cfg.ID,
		core:        cfg.Core,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		preemptProb: cfg.PreemptProb,
	}, nil
}

// Core implements tracer.Proc.
func (t *Thread) Core() int { return t.core }

// Thread implements tracer.Proc.
func (t *Thread) Thread() int { return t.id }

// Preempted returns how many times this thread was scheduled out at a
// preemption point.
func (t *Thread) Preempted() uint64 { return t.preempted }

// Stalls returns how many times a FaultController parked this thread.
func (t *Thread) Stalls() uint64 { return t.stalls }

// SetFaultController installs (or, with nil, removes) a fault controller
// on the thread. Must be called before the thread's driving goroutine
// starts, or from that goroutine.
func (t *Thread) SetFaultController(fc FaultController) { t.fc = fc }

// Acquire schedules the thread onto its core, blocking until the core is
// free. If the core was hot-unplugged, an unbound thread is migrated to
// an online core first, while a bound thread waits (starves) until its
// core returns. It must be balanced by Release.
func (t *Thread) Acquire() {
	if t.holding {
		return
	}
	core := t.admit()
	c := t.m.cores[core]
	<-c.token
	c.scheduled.Add(1)
	t.holding = true
}

// Release deschedules the thread, letting another thread of the core run.
func (t *Thread) Release() {
	if !t.holding {
		return
	}
	t.holding = false
	t.m.cores[t.core].token <- struct{}{}
}

// MaybePreempt implements tracer.Proc: with the configured probability the
// thread is scheduled out (core released and re-acquired), exactly the
// §2.2 Observation 2 hazard — the thread resumes on the same core with
// other threads possibly having run in between.
func (t *Thread) MaybePreempt(p tracer.PreemptPoint) {
	if !t.holding || t.nopreempt > 0 {
		return
	}
	if t.fc != nil {
		switch t.fc.At(t, p) {
		case FaultPreempt:
			t.preempted++
			t.m.cores[t.core].preemptions.Add(1)
			t.Release()
			t.Acquire()
			return
		case FaultStall:
			t.preempted++
			t.stalls++
			t.m.cores[t.core].preemptions.Add(1)
			t.Release()
			t.fc.Stall(t, p)
			t.Acquire()
			return
		}
	}
	if t.preemptProb == 0 || t.rng.Float64() >= t.preemptProb {
		return
	}
	t.preempted++
	c := t.m.cores[t.core]
	c.preemptions.Add(1)
	t.Release()
	t.Acquire()
}

// DisablePreemption implements tracer.Proc, mirroring the kernel-side
// preempt_disable ftrace relies on.
func (t *Thread) DisablePreemption() func() {
	t.nopreempt++
	return func() { t.nopreempt-- }
}

// MigrateTo rebinds the thread to another core (used by the server-scale
// scenario of §7 where tasks migrate frequently). The thread must not be
// holding its current core.
func (t *Thread) MigrateTo(core int) error {
	if t.holding {
		return fmt.Errorf("sim: cannot migrate while scheduled")
	}
	if core < 0 || core >= len(t.m.cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	if core != t.core {
		t.migrations++
	}
	t.core = core
	return nil
}

// Migrations returns how many times the thread changed cores.
func (t *Thread) Migrations() uint64 { return t.migrations }

// Run schedules the thread and executes fn while it holds the core,
// releasing afterwards.
func (t *Thread) Run(fn func(p tracer.Proc)) {
	t.Acquire()
	defer t.Release()
	fn(t)
}

// Exec runs fn concurrently on a set of freshly created threads
// distributed round-robin over the machine's cores, and waits for all of
// them. It is a convenience for tests and examples.
func (m *Machine) Exec(threads int, preemptProb float64, fn func(t *Thread)) error {
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for i := 0; i < threads; i++ {
		th, err := m.NewThread(ThreadConfig{
			ID: i, Core: i % len(m.cores), PreemptProb: preemptProb, Seed: int64(i) + 1,
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, th *Thread) {
			defer wg.Done()
			th.Acquire()
			defer th.Release()
			fn(th)
		}(i, th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

var _ tracer.Proc = (*Thread)(nil)
