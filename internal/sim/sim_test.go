package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btrace/internal/tracer"
)

func TestTopology(t *testing.T) {
	topo := Phone12()
	if topo.Cores() != 12 {
		t.Fatalf("Phone12 cores = %d", topo.Cores())
	}
	wants := map[int]CoreKind{0: Little, 3: Little, 4: Middle, 9: Middle, 10: Big, 11: Big}
	for id, want := range wants {
		if got := topo.Kind(id); got != want {
			t.Errorf("Kind(%d) = %v, want %v", id, got, want)
		}
	}
	if Server(64).Cores() != 64 {
		t.Error("Server(64)")
	}
	for k, s := range map[CoreKind]string{Little: "little", Middle: "middle", Big: "big"} {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(Topology{}); err == nil {
		t.Error("empty topology: expected error")
	}
	if _, err := NewMachine(Topology{Middle: 300}); err == nil {
		t.Error("too many cores: expected error")
	}
	m, err := NewMachine(Phone12())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 12 {
		t.Errorf("Cores = %d", m.Cores())
	}
	if m.Core(11).Kind() != Big || m.Core(11).ID() != 11 {
		t.Errorf("core 11: %v/%d", m.Core(11).Kind(), m.Core(11).ID())
	}
}

func TestThreadValidation(t *testing.T) {
	m, _ := NewMachine(Phone12())
	if _, err := m.NewThread(ThreadConfig{Core: 12}); err == nil {
		t.Error("core out of range: expected error")
	}
	if _, err := m.NewThread(ThreadConfig{Core: 0, PreemptProb: 1.5}); err == nil {
		t.Error("bad probability: expected error")
	}
}

// TestCoreExclusivity: at most one thread of a core runs at a time.
func TestCoreExclusivity(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 2})
	var onCore [2]atomic.Int32
	var maxSeen [2]atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		th, err := m.NewThread(ThreadConfig{ID: i, Core: i % 2, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				th.Run(func(p tracer.Proc) {
					c := p.Core()
					n := onCore[c].Add(1)
					if n > maxSeen[c].Load() {
						maxSeen[c].Store(n)
					}
					onCore[c].Add(-1)
				})
			}
		}(th)
	}
	wg.Wait()
	for c := 0; c < 2; c++ {
		if maxSeen[c].Load() > 1 {
			t.Errorf("core %d admitted %d concurrent threads", c, maxSeen[c].Load())
		}
		if m.Core(c).Scheduled() == 0 {
			t.Errorf("core %d never scheduled", c)
		}
	}
}

// TestPreemptionYieldsCore: a preempted thread releases the core so
// another thread can run in between — the exact mid-write interleaving the
// tracers must survive.
func TestPreemptionYieldsCore(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 1})
	t1, _ := m.NewThread(ThreadConfig{ID: 1, Core: 0, PreemptProb: 1, Seed: 1})
	t2, _ := m.NewThread(ThreadConfig{ID: 2, Core: 0, Seed: 2})

	t1.Acquire()
	ran := make(chan struct{})
	go func() {
		t2.Run(func(tracer.Proc) { close(ran) })
	}()
	// t1 preempts with probability 1: the core is released and
	// re-acquired, giving t2 a chance to run (it may also run right after
	// t1's final release; either way it must complete).
	t1.MaybePreempt(tracer.PreemptBeforeConfirm)
	t1.Release()
	<-ran
	if t1.Preempted() != 1 {
		t.Errorf("Preempted = %d, want 1", t1.Preempted())
	}
	if m.Core(0).Preemptions() != 1 {
		t.Errorf("core preemptions = %d", m.Core(0).Preemptions())
	}
}

func TestDisablePreemption(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 1})
	th, _ := m.NewThread(ThreadConfig{ID: 1, Core: 0, PreemptProb: 1, Seed: 1})
	th.Acquire()
	defer th.Release()
	restore := th.DisablePreemption()
	th.MaybePreempt(tracer.PreemptBeforeCopy)
	if th.Preempted() != 0 {
		t.Error("preempted despite disable")
	}
	restore()
	th.MaybePreempt(tracer.PreemptBeforeCopy)
	if th.Preempted() != 1 {
		t.Error("preemption did not resume after enable")
	}
}

func TestMigration(t *testing.T) {
	m, _ := NewMachine(Phone12())
	th, _ := m.NewThread(ThreadConfig{ID: 1, Core: 0})
	th.Acquire()
	if err := th.MigrateTo(5); err == nil {
		t.Error("migration while scheduled: expected error")
	}
	th.Release()
	if err := th.MigrateTo(99); err == nil {
		t.Error("core out of range: expected error")
	}
	if err := th.MigrateTo(5); err != nil {
		t.Fatal(err)
	}
	if th.Core() != 5 || th.Migrations() != 1 {
		t.Errorf("core=%d migrations=%d", th.Core(), th.Migrations())
	}
	if err := th.MigrateTo(5); err != nil || th.Migrations() != 1 {
		t.Error("no-op migration counted")
	}
}

func TestExec(t *testing.T) {
	m, _ := NewMachine(Phone12())
	var count atomic.Int64
	if err := m.Exec(48, 0.1, func(th *Thread) {
		count.Add(1)
		th.MaybePreempt(tracer.PreemptOutside)
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 48 {
		t.Errorf("ran %d threads, want 48", count.Load())
	}
}

// TestIdempotentAcquireRelease: double Acquire/Release are safe.
func TestIdempotentAcquireRelease(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 1})
	th, _ := m.NewThread(ThreadConfig{ID: 1, Core: 0})
	th.Acquire()
	th.Acquire()
	th.Release()
	th.Release()
	// The core must be available again.
	th2, _ := m.NewThread(ThreadConfig{ID: 2, Core: 0})
	done := make(chan struct{})
	go func() { th2.Run(func(tracer.Proc) {}); close(done) }()
	<-done
}

func TestHotplugMigratesUnboundThreads(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 3})
	if !m.Online(2) {
		t.Fatal("cores start online")
	}
	if err := m.SetOnline(99, false); err == nil {
		t.Fatal("out of range core")
	}
	if err := m.SetOnline(2, false); err != nil {
		t.Fatal(err)
	}
	th, _ := m.NewThread(ThreadConfig{ID: 1, Core: 2})
	th.Run(func(p tracer.Proc) {
		if p.Core() == 2 {
			t.Error("ran on an offline core")
		}
	})
	if th.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", th.Migrations())
	}
	// Back online: a fresh thread stays put.
	if err := m.SetOnline(2, true); err != nil {
		t.Fatal(err)
	}
	th2, _ := m.NewThread(ThreadConfig{ID: 2, Core: 2})
	th2.Run(func(p tracer.Proc) {
		if p.Core() != 2 {
			t.Error("migrated despite online core")
		}
	})
}

func TestHotplugStarvesBoundThread(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 2})
	if err := m.SetOnline(1, false); err != nil {
		t.Fatal(err)
	}
	th, _ := m.NewThread(ThreadConfig{ID: 1, Core: 1})
	th.SetBound(true)
	if !th.Bound() {
		t.Fatal("Bound flag")
	}
	ran := make(chan int, 1)
	go func() {
		th.Run(func(p tracer.Proc) { ran <- p.Core() })
	}()
	// The bound thread must be starving, not migrating.
	select {
	case c := <-ran:
		t.Fatalf("bound thread ran on core %d while its core was offline", c)
	case <-time.After(50 * time.Millisecond):
	}
	// Re-plugging the core releases it (the fix for the §6 defect).
	if err := m.SetOnline(1, true); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-ran:
		if c != 1 {
			t.Fatalf("bound thread ran on core %d, want 1", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bound thread never ran after replug")
	}
	if th.Migrations() != 0 {
		t.Error("bound thread migrated")
	}
}

func TestHotplugAllCoresOffline(t *testing.T) {
	m, _ := NewMachine(Topology{Middle: 2})
	m.SetOnline(0, false)
	m.SetOnline(1, false)
	th, _ := m.NewThread(ThreadConfig{ID: 1, Core: 0})
	ran := make(chan struct{})
	go func() { th.Run(func(tracer.Proc) {}); close(ran) }()
	select {
	case <-ran:
		t.Fatal("ran with all cores offline")
	case <-time.After(50 * time.Millisecond):
	}
	m.SetOnline(1, true)
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("never resumed")
	}
}
