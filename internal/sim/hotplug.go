package sim

import (
	"fmt"
	"sync"
)

// Hotplug support: the §6 silent-defect case study involves a userspace
// driver hot-unplugging a CPU; unbound threads must be migrated off by
// the scheduler, while a thread bound to the core (cpuset/affinity) has
// nowhere to run and starves — the corner case the paper's watchdog
// daemons catch. Machine models exactly that: taking a core offline
// makes unbound threads transparently migrate on their next scheduling,
// and bound threads block until the core returns.

// hotplugState tracks online/offline cores; embedded in Machine.
type hotplugState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	offline map[int]bool
}

func (h *hotplugState) init() {
	h.offline = map[int]bool{}
	h.cond = sync.NewCond(&h.mu)
}

// SetOnline changes a core's hotplug state. Taking a core offline does
// not evict the thread currently holding it (as in Linux, the unplug
// completes once the core's current occupant leaves); it prevents new
// admissions. Bringing a core online wakes threads waiting for it.
func (m *Machine) SetOnline(core int, online bool) error {
	if core < 0 || core >= len(m.cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	m.hp.mu.Lock()
	defer m.hp.mu.Unlock()
	if online {
		delete(m.hp.offline, core)
		m.hp.cond.Broadcast()
	} else {
		m.hp.offline[core] = true
	}
	return nil
}

// Online reports a core's hotplug state.
func (m *Machine) Online(core int) bool {
	m.hp.mu.Lock()
	defer m.hp.mu.Unlock()
	return !m.hp.offline[core]
}

// nextOnline returns an online core to migrate to, preferring the lowest
// id (the kernel's fallback policy is similar); ok=false if every core is
// offline.
func (m *Machine) nextOnline(from int) (int, bool) {
	m.hp.mu.Lock()
	defer m.hp.mu.Unlock()
	for i := 0; i < len(m.cores); i++ {
		c := (from + i) % len(m.cores)
		if !m.hp.offline[c] {
			return c, true
		}
	}
	return 0, false
}

// waitOnline blocks until the core is online (bound-thread behavior: the
// §6 starvation).
func (m *Machine) waitOnline(core int) {
	m.hp.mu.Lock()
	defer m.hp.mu.Unlock()
	for m.hp.offline[core] {
		m.hp.cond.Wait()
	}
}

// waitAnyOnline blocks until at least one core is online.
func (m *Machine) waitAnyOnline() {
	m.hp.mu.Lock()
	defer m.hp.mu.Unlock()
	for len(m.hp.offline) == len(m.cores) {
		m.hp.cond.Wait()
	}
}

// SetBound marks the thread as bound to its core (cpuset/affinity): it
// will never be migrated by hotplug and starves while its core is
// offline.
func (t *Thread) SetBound(bound bool) { t.bound = bound }

// Bound reports whether the thread is core-bound.
func (t *Thread) Bound() bool { return t.bound }

// admit is called by Acquire before taking the core token: it handles
// hotplug migration/starvation and returns the core to run on.
func (t *Thread) admit() int {
	for {
		if t.m.Online(t.core) {
			return t.core
		}
		if t.bound {
			// Bound thread: starve until the core returns.
			t.m.waitOnline(t.core)
			continue
		}
		// Unbound: the scheduler migrates the thread off the dead core.
		if next, ok := t.m.nextOnline(t.core); ok {
			t.migrations++
			t.core = next
			return next
		}
		// Every core offline: wait for any to return.
		t.m.waitAnyOnline()
	}
}
