// Backpressure export: the write path's health signals, distilled for
// the collector's overload controller (internal/overload). The store
// already measures its append and fsync latencies for /metrics; here
// they are additionally folded into cheap EWMAs so a per-step consumer
// gets a recent average without walking histogram buckets.
package store

import (
	"sync/atomic"
	"time"

	"btrace/internal/overload"
)

// ewma is a lock-free 1/8-weight exponentially weighted moving average.
// Updates race benignly (load/store, no CAS loop): the value is a
// pressure signal, not an accounting total.
type ewma struct {
	v atomic.Uint64
	// at is the wall clock of the last observation; reads decay the
	// average against it, so a latency spike fades once the traffic
	// that caused it stops instead of pinning the overload gate at its
	// last sample forever.
	at atomic.Int64
}

// ewmaIdleHalfLife halves an idle EWMA's exported value per interval
// elapsed since its last sample.
const ewmaIdleHalfLife = 500 * time.Millisecond

func (e *ewma) observe(d uint64) {
	old := e.v.Load()
	e.at.Store(time.Now().UnixNano())
	if old == 0 {
		e.v.Store(d)
		return
	}
	e.v.Store(old - old/8 + d/8)
}

func (e *ewma) load() uint64 {
	v := e.v.Load()
	if v == 0 {
		return 0
	}
	idle := time.Now().UnixNano() - e.at.Load()
	if halvings := idle / int64(ewmaIdleHalfLife); halvings > 0 {
		if halvings >= 64 {
			return 0
		}
		v >>= uint(halvings)
	}
	return v
}

// noteFsync records one fsync stall in both the histogram (for
// /metrics) and the EWMA (for Pressure).
func (st *Store) noteFsync(d uint64) {
	st.obs.fsyncNs.Observe(d)
	st.ewmaFsync.observe(d)
}

// Pressure reports the write path's current backpressure signals:
// recent append and fsync latency averages, the staging arena's fill
// fraction, and whether the write path has failed sticky. It is cheap
// enough to call once per collector step.
func (st *Store) Pressure() overload.StorePressure {
	p := &st.pipe
	p.mu.Lock()
	fill := float64(len(p.buf)) / float64(st.cfg.MaxStagedBytes)
	failed := p.err != nil || p.closed
	p.mu.Unlock()
	if fill > 1 {
		fill = 1
	}
	return overload.StorePressure{
		AppendNs:   st.ewmaAppend.load(),
		FsyncNs:    st.ewmaFsync.load(),
		StagedFill: fill,
		Failed:     failed,
	}
}

// WriteErr peeks the write path's sticky error without appending:
// non-nil means every later append will fail until the store is
// reopened (ErrClosed once the store is closed). Consumers that stage
// asynchronous appends use it to learn the path is dead before — or
// instead of — the next append's error.
func (st *Store) WriteErr() error {
	p := &st.pipe
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed && p.err == nil {
		return ErrClosed
	}
	return p.err
}
