// Segment file format and recovery. A segment is an append-only file of
// CRC-framed wire records:
//
//	offset 0    header (80 bytes, rewritten in place when the segment seals)
//	offset 80   frame*   where frame = wire record ++ 8-byte tail
//
// The wire record is exactly the repository's record format
// (tracer.EncodeEvent); the tail packs crc32c(record) in its low 32 bits
// and a frame magic in its high 32 bits, keeping every frame a multiple
// of tracer.Align bytes. The tail is what makes crash recovery exact: a
// torn append fails either the magic or the checksum, and the scan
// truncates the file at the first frame that does — never mid-record,
// never past a whole one.
package store

import (
	"fmt"
	"hash/crc32"
	"io"

	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

const (
	// segMagic identifies a segment file (and its format version).
	segMagic = 0x62747365673032 // "btseg02"
	// frameMagic marks the high half of every frame tail.
	frameMagic = 0xb7f2a3c4
	// headerSize is the fixed on-disk header length.
	headerSize = 88
	// tailSize is the per-frame CRC tail length.
	tailSize = 8
	// indexStride is the sparse-index granularity: one entry every
	// indexStride frames.
	indexStride = 64
)

// castagnoli is the CRC-32C table shared by all frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordSize bounds a frame's claimed record size, mirroring the
// streaming decoder's cap: a corrupt size word must not drive an
// unbounded read.
var maxRecordSize = tracer.EventWireSize(tracer.MaxPayload)

// FrameSize returns the on-disk size of a frame holding e.
func FrameSize(e *tracer.Entry) int { return e.WireSize() + tailSize }

// segmentMeta is the queryable summary of one segment, maintained
// incrementally on append and rebuilt by scanning on open.
type segmentMeta struct {
	baseStamp uint64 // first record's stamp (0 while empty)
	maxStamp  uint64
	minTS     uint64
	maxTS     uint64
	coreBits  uint64 // bit min(core,63) set per record
	catBits   uint64 // bit min(category,63) set per record
	count     uint64
	// ordered reports that stamps were non-decreasing in append order;
	// sparse-index seeks are only valid when it holds.
	ordered bool
}

func (m *segmentMeta) observe(e *tracer.Entry) {
	if m.count == 0 {
		m.baseStamp, m.maxStamp = e.Stamp, e.Stamp
		m.minTS, m.maxTS = e.TS, e.TS
		m.ordered = true
	} else {
		if e.Stamp < m.maxStamp {
			m.ordered = false
		}
		if e.Stamp > m.maxStamp {
			m.maxStamp = e.Stamp
		}
		if e.Stamp < m.baseStamp {
			m.baseStamp = e.Stamp
		}
		if e.TS < m.minTS {
			m.minTS = e.TS
		}
		if e.TS > m.maxTS {
			m.maxTS = e.TS
		}
	}
	m.coreBits |= 1 << min(uint(e.Core), 63)
	m.catBits |= 1 << min(uint(e.Category), 63)
	m.count++
}

// observeStaged is observe for the writer goroutine's staged-frame
// metadata (pipeline.go); the update rules must match observe exactly.
func (m *segmentMeta) observeStaged(se *stagedEntry) {
	if m.count == 0 {
		m.baseStamp, m.maxStamp = se.stamp, se.stamp
		m.minTS, m.maxTS = se.ts, se.ts
		m.ordered = true
	} else {
		if se.stamp < m.maxStamp {
			m.ordered = false
		}
		if se.stamp > m.maxStamp {
			m.maxStamp = se.stamp
		}
		if se.stamp < m.baseStamp {
			m.baseStamp = se.stamp
		}
		if se.ts < m.minTS {
			m.minTS = se.ts
		}
		if se.ts > m.maxTS {
			m.maxTS = se.ts
		}
	}
	m.coreBits |= 1 << min(uint(se.core), 63)
	m.catBits |= 1 << min(uint(se.cat), 63)
	m.count++
}

// observeRaw is observe for fields lifted straight from a raw record
// header (the cold freeze path); the update rules must match observe.
func (m *segmentMeta) observeRaw(stamp, ts uint64, core, cat uint8) {
	if m.count == 0 {
		m.baseStamp, m.maxStamp = stamp, stamp
		m.minTS, m.maxTS = ts, ts
		m.ordered = true
	} else {
		if stamp < m.maxStamp {
			m.ordered = false
		}
		if stamp > m.maxStamp {
			m.maxStamp = stamp
		}
		if stamp < m.baseStamp {
			m.baseStamp = stamp
		}
		if ts < m.minTS {
			m.minTS = ts
		}
		if ts > m.maxTS {
			m.maxTS = ts
		}
	}
	m.coreBits |= 1 << min(uint(core), 63)
	m.catBits |= 1 << min(uint(cat), 63)
	m.count++
}

// indexEntry maps a stamp to the file offset of its frame.
type indexEntry struct {
	stamp uint64
	off   int64
}

// Tier is a segment's place in the hot → compacted → cold lifecycle.
type Tier uint8

const (
	// TierHot is a row segment produced by rotation (possibly still
	// active).
	TierHot Tier = iota
	// TierCompacted is a row segment produced by merging sealed hot
	// segments (coversThrough > seq).
	TierCompacted
	// TierCold is a compressed block file produced by freezing row
	// segments (see cold.go).
	TierCold
)

func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierCompacted:
		return "compacted"
	case TierCold:
		return "cold"
	}
	return "unknown"
}

// segment is one backend file plus its in-memory metadata. Sealed
// segments keep no open file; readers open their own handles.
type segment struct {
	seq  uint64
	name string // backend file name (seg-%08d.seg or col-%08d.blk)
	// coversThrough is the highest source seq this segment subsumes: its
	// own seq normally, the last merged source's seq after compaction.
	// Cursors use it to step over merged ranges without re-delivering.
	coversThrough uint64
	size          int64 // committed backend bytes (compressed size for cold)
	// rawSize is the uncompressed equivalent (header + frame bytes);
	// equals size for row tiers.
	rawSize int64
	tier    Tier
	sealed  bool
	// retired marks a segment deleted by retention or Reset; a parked
	// seal fsync is skipped for it (the data is gone).
	retired bool
	meta    segmentMeta
	// sparse holds one entry per indexStride frames (first frame
	// included), used to seek stamp-range queries when meta.ordered.
	// Row tiers only.
	sparse []indexEntry
	// blocks is the cold tier's block directory (immutable once built);
	// nil for row tiers.
	blocks []coldBlock
	// srcSizes maps each frozen source seq to its committed size, letting
	// a parallel cursor that fully consumed the sources resume past the
	// cold segment without re-delivery. In-process only (nil after
	// reopen, when no such cursor can exist).
	srcSizes map[uint64]int64
}

func (s *segment) isCold() bool { return s.tier == TierCold }

// le64 helpers (the header is little-endian like the wire format).
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le64put(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// encodeHeader renders the segment header. Layout:
//
//	[0:8)   segMagic
//	[8:16)  baseStamp   [16:24) maxStamp
//	[24:32) minTS       [32:40) maxTS
//	[40:48) coreBits    [48:56) catBits
//	[56:64) count
//	[64:72) coversThrough (highest source seq this segment subsumes;
//	        the segment's own seq unless it was produced by compaction)
//	[72:80) flags (bit 0 = sealed, bit 1 = ordered)
//	[80:88) crc32c of [0:80) in the low 32 bits
//
// coversThrough is what makes interrupted-compaction recovery precise:
// the merged segment explicitly names the source seqs it consumed, so
// Open deletes exactly those if a crash left them behind — never an
// unrelated segment that merely repeats a stamp range.
func encodeHeader(dst []byte, m *segmentMeta, coversThrough uint64, sealed bool) {
	encodeHeaderMagic(dst, segMagic, m, coversThrough, sealed)
}

// encodeHeaderMagic is encodeHeader for either file kind: segment files
// (segMagic) and cold block files (coldMagic) share the header layout.
func encodeHeaderMagic(dst []byte, magic uint64, m *segmentMeta, coversThrough uint64, sealed bool) {
	le64put(dst[0:], magic)
	le64put(dst[8:], m.baseStamp)
	le64put(dst[16:], m.maxStamp)
	le64put(dst[24:], m.minTS)
	le64put(dst[32:], m.maxTS)
	le64put(dst[40:], m.coreBits)
	le64put(dst[48:], m.catBits)
	le64put(dst[56:], m.count)
	le64put(dst[64:], coversThrough)
	var flags uint64
	if sealed {
		flags |= 1
	}
	if m.ordered {
		flags |= 2
	}
	le64put(dst[72:], flags)
	le64put(dst[80:], uint64(crc32.Checksum(dst[:80], castagnoli)))
}

// decodeHeader parses and validates a segment header, returning the
// merge coverage and sealed flag. A header whose magic or checksum does
// not match is reported as corrupt; the caller falls back to a full
// scan.
func decodeHeader(src []byte) (m segmentMeta, coversThrough uint64, sealed bool, err error) {
	return decodeHeaderMagic(src, segMagic)
}

func decodeHeaderMagic(src []byte, magic uint64) (m segmentMeta, coversThrough uint64, sealed bool, err error) {
	if len(src) < headerSize {
		return m, 0, false, fmt.Errorf("store: short header (%d bytes)", len(src))
	}
	if le64(src[0:]) != magic {
		return m, 0, false, fmt.Errorf("store: bad segment magic %#x", le64(src[0:]))
	}
	if uint32(le64(src[80:])) != crc32.Checksum(src[:80], castagnoli) {
		return m, 0, false, fmt.Errorf("store: header checksum mismatch")
	}
	m.baseStamp = le64(src[8:])
	m.maxStamp = le64(src[16:])
	m.minTS = le64(src[24:])
	m.maxTS = le64(src[32:])
	m.coreBits = le64(src[40:])
	m.catBits = le64(src[48:])
	m.count = le64(src[56:])
	coversThrough = le64(src[64:])
	flags := le64(src[72:])
	m.ordered = flags&2 != 0
	return m, coversThrough, flags&1 != 0, nil
}

// encodeFrame appends the framed encoding of e to dst: the wire record
// followed by the CRC tail.
func encodeFrame(dst []byte, e *tracer.Entry) ([]byte, error) {
	size := e.WireSize()
	off := len(dst)
	dst = append(dst, make([]byte, size+tailSize)...)
	if _, err := tracer.EncodeEvent(dst[off:off+size], e); err != nil {
		return dst[:off], err
	}
	crc := crc32.Checksum(dst[off:off+size], castagnoli)
	le64put(dst[off+size:], uint64(frameMagic)<<32|uint64(crc))
	return dst, nil
}

// checkFrame validates one complete frame (record ++ tail) in buf.
func checkFrame(rec, tail []byte) error {
	w := le64(tail)
	if uint32(w>>32) != frameMagic {
		return fmt.Errorf("%w: bad frame magic %#x", tracer.ErrCorrupt, uint32(w>>32))
	}
	if uint32(w) != crc32.Checksum(rec, castagnoli) {
		return fmt.Errorf("%w: frame checksum mismatch", tracer.ErrCorrupt)
	}
	return nil
}

// scanSegment walks every frame of f from the data start, rebuilding the
// segment metadata and sparse index, and returns the offset of the first
// byte that is not part of a whole, checksummed event frame — the exact
// truncation point after a torn append. Scanning never trusts the
// header's counters: after a crash they may describe a tail that was
// never written (or one that was torn).
func scanSegment(f backend.File, size int64, s *segment) (valid int64, err error) {
	s.meta = segmentMeta{}
	s.sparse = s.sparse[:0]

	r := &chunkReader{f: f, off: headerSize}
	off := int64(headerSize)
	frame := 0
	for {
		head, err := r.peek(tracer.Align)
		if err != nil || len(head) < tracer.Align {
			return off, nil // clean end (or unreadable tail: truncate here)
		}
		_, recSize, perr := tracer.PeekRecord(head)
		if perr != nil || recSize > maxRecordSize {
			return off, nil
		}
		buf, err := r.peek(recSize + tailSize)
		if err != nil || len(buf) < recSize+tailSize {
			return off, nil // torn frame
		}
		if checkFrame(buf[:recSize], buf[recSize:recSize+tailSize]) != nil {
			return off, nil
		}
		rec, derr := tracer.DecodeRecord(buf[:recSize])
		if derr != nil || rec.Kind != tracer.KindEvent {
			return off, nil // the store only ever appends event records
		}
		if frame%indexStride == 0 {
			s.sparse = append(s.sparse, indexEntry{stamp: rec.Event.Stamp, off: off})
		}
		s.meta.observe(&rec.Event)
		frame++
		r.advance(recSize + tailSize)
		off += int64(recSize + tailSize)
		if off > size {
			// Defensive: cannot happen with a truthful Stat, but never
			// report more valid bytes than the file holds.
			return size, nil
		}
	}
}

// decodeEventTo decodes the KindEvent record at the start of src
// directly into *e, skipping tracer.Record entirely — the by-value
// Record/Entry moves in DecodeRecord dominate sequential query profiles
// (~24% duffcopy). The payload aliases src; the caller owns src's
// lifetime. src must be exactly the record (the caller has already run
// PeekRecord and checkFrame).
func decodeEventTo(src []byte, e *tracer.Entry) error {
	if len(src) < tracer.EventHeaderSize {
		return fmt.Errorf("%w: short event", tracer.ErrCorrupt)
	}
	w0 := le64(src)
	size := int(uint32(w0))
	if tracer.Kind(w0>>56) != tracer.KindEvent || size < tracer.EventHeaderSize || size > len(src) {
		return fmt.Errorf("%w: kind %d size %d of %d", tracer.ErrCorrupt, uint8(w0>>56), size, len(src))
	}
	e.Stamp = le64(src[8:])
	e.TS = le64(src[16:])
	w3 := le64(src[24:])
	e.Core = uint8(w3 >> 56)
	e.TID = uint32(w3>>32) & 0xFFFFFF
	e.Category = uint8(w3 >> 24)
	e.Level = uint8(w3 >> 16)
	plen := int(uint16(w3))
	if tracer.EventHeaderSize+plen > size {
		return fmt.Errorf("%w: payload length %d exceeds record size %d", tracer.ErrCorrupt, plen, size)
	}
	e.Payload = nil
	if plen > 0 {
		e.Payload = src[tracer.EventHeaderSize : tracer.EventHeaderSize+plen : tracer.EventHeaderSize+plen]
	}
	return nil
}

// chunkReader reads a file sequentially through one reusable buffer,
// exposing peek/advance over frame boundaries without a syscall per
// record.
type chunkReader struct {
	f   io.ReaderAt
	off int64 // file offset of buf[0]
	buf []byte
	pos int // current position within buf
	// bound (when > 0) caps what peek may read and cache: bytes at file
	// offsets >= bound are not committed yet — in a preallocated segment
	// they read as zeros until the writer fills them — so they must be
	// re-read from the file after the bound advances, never cached.
	bound int64
}

const chunkSize = 64 << 10

// peek returns at least n bytes starting at the current position, or as
// many as the file still holds.
func (r *chunkReader) peek(n int) ([]byte, error) {
	if r.pos > 0 && len(r.buf)-r.pos < n {
		r.off += int64(r.pos)
		r.buf = append(r.buf[:0], r.buf[r.pos:]...)
		r.pos = 0
	}
	for len(r.buf)-r.pos < n {
		want := n - (len(r.buf) - r.pos)
		if want < chunkSize {
			want = chunkSize
		}
		grow := len(r.buf)
		if r.bound > 0 {
			avail := r.bound - (r.off + int64(grow))
			if avail <= 0 {
				break
			}
			if int64(want) > avail {
				want = int(avail)
			}
		}
		r.buf = append(r.buf, make([]byte, want)...)
		m, err := r.f.ReadAt(r.buf[grow:grow+want], r.off+int64(grow))
		r.buf = r.buf[:grow+m]
		if err == io.EOF {
			break
		}
		if err != nil {
			return r.buf[r.pos:], err
		}
	}
	return r.buf[r.pos:], nil
}

// advance consumes n bytes (which a prior peek must have made available).
func (r *chunkReader) advance(n int) {
	r.pos += n
}
