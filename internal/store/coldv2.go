// Columnar cold blocks (format v2). A v2 block re-encodes its events by
// column instead of preserving row frames:
//
//	offset 0    200-byte block header: per-column min/max (stamp, time,
//	            core/category bitmaps, TID range), a 512-bit TID bloom
//	            filter, section lengths and checksums
//	offset 200  meta section  (DEFLATE): every non-payload column —
//	            zigzag-varint delta stamps and timestamps, raw core and
//	            level bytes, dictionary-coded categories, varint TIDs,
//	            varint payload lengths
//	            payload section (DEFLATE, separate stream): the payloads
//	            concatenated in row order
//
// The split is the point: predicates over header fields decide from the
// block header alone (no I/O past the directory scan), then from the
// decoded meta columns — and only the rows that survive pay for payload
// bytes. A query that matches nothing in a block never inflates either
// section; a metadata-only query (or aggregate) never inflates the
// payload section at all. v1 blocks remain fully readable; the freeze
// path emits v2.
package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"

	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

const (
	// blockMagic2 marks a v2 (columnar) block header.
	blockMagic2 = 0x6274626c6b3032 // "btblk02"
	// blockHeaderV2Size is the fixed v2 block header length.
	blockHeaderV2Size = 200
	// bloomBytes is the TID bloom filter size (512 bits, k=4 — ~1% false
	// positives at the ~50 distinct TIDs a 256 KiB block typically holds).
	bloomBytes = 64
	bloomBits  = bloomBytes * 8
	bloomK     = 4
)

// blockV2 is the columnar extension of a coldBlock directory entry.
type blockV2 struct {
	metaLen    int64 // compressed meta-section length
	metaRawLen int64
	payLen     int64 // compressed payload-section length (0 = no payloads)
	payRawLen  int64
	metaCRC    uint32 // crc32c of the compressed meta section
	payCRC     uint32
	minTID     uint32
	maxTID     uint32
	dictSize   int
	bloom      [bloomBytes]byte
}

// bloomHash derives the two double-hashing streams for a TID
// (splitmix64 finalizer; h2 forced odd so the k probes stay distinct).
func bloomHash(tid uint32) (h1, h2 uint64) {
	x := uint64(tid) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x, (x >> 33) | 1
}

func bloomAdd(b *[bloomBytes]byte, tid uint32) {
	h1, h2 := bloomHash(tid)
	for i := uint64(0); i < bloomK; i++ {
		bit := (h1 + i*h2) % bloomBits
		b[bit>>3] |= 1 << (bit & 7)
	}
}

// mayContainTID is the bloom probe: false is a proof of absence.
func (v *blockV2) mayContainTID(tid uint32) bool {
	h1, h2 := bloomHash(tid)
	for i := uint64(0); i < bloomK; i++ {
		bit := (h1 + i*h2) % bloomBits
		if v.bloom[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// bloomFill returns the filter's set-bit ratio (inspect tooling).
func (v *blockV2) bloomFill() float64 {
	set := 0
	for _, b := range v.bloom {
		set += bits.OnesCount8(b)
	}
	return float64(set) / bloomBits
}

// encodeBlockHeaderV2 renders a v2 block header. Layout:
//
//	[0:8)     blockMagic2
//	[8:16)    count
//	[16:24)   frame-equivalent raw bytes (accounting parity with v1 rawLen)
//	[24:32)   metaLen      [32:40)  metaRawLen
//	[40:48)   payLen       [48:56)  payRawLen
//	[56:64)   baseStamp    [64:72)  maxStamp
//	[72:80)   minTS        [80:88)  maxTS
//	[88:96)   coreBits     [96:104) catBits
//	[104:112) minTID | maxTID<<32
//	[112:120) flags (bit 1 = ordered, like v1; bits 16..31 = dictSize)
//	[120:184) TID bloom (64 bytes)
//	[184:192) metaCRC | payCRC<<32 (checksums of the compressed sections)
//	[192:200) crc32c of [0:192) in the low 32 bits
func encodeBlockHeaderV2(dst []byte, b *coldBlock) {
	v := b.v2
	le64put(dst[0:], blockMagic2)
	le64put(dst[8:], b.meta.count)
	le64put(dst[16:], uint64(b.rawLen))
	le64put(dst[24:], uint64(v.metaLen))
	le64put(dst[32:], uint64(v.metaRawLen))
	le64put(dst[40:], uint64(v.payLen))
	le64put(dst[48:], uint64(v.payRawLen))
	le64put(dst[56:], b.meta.baseStamp)
	le64put(dst[64:], b.meta.maxStamp)
	le64put(dst[72:], b.meta.minTS)
	le64put(dst[80:], b.meta.maxTS)
	le64put(dst[88:], b.meta.coreBits)
	le64put(dst[96:], b.meta.catBits)
	le64put(dst[104:], uint64(v.minTID)|uint64(v.maxTID)<<32)
	var flags uint64
	if b.meta.ordered {
		flags |= 2
	}
	flags |= uint64(uint16(v.dictSize)) << 16
	le64put(dst[112:], flags)
	copy(dst[120:184], v.bloom[:])
	le64put(dst[184:], uint64(v.metaCRC)|uint64(v.payCRC)<<32)
	le64put(dst[192:], uint64(crc32.Checksum(dst[:192], castagnoli)))
}

// decodeBlockHeaderV2 parses and validates a v2 block header. Note the
// header checksum covers the header only: section corruption is caught
// by the per-section CRCs at inflate time, never earlier — that is what
// lets a pruned block skip its bytes entirely.
func decodeBlockHeaderV2(src []byte) (b coldBlock, err error) {
	if len(src) < blockHeaderV2Size {
		return b, fmt.Errorf("store: short v2 block header (%d bytes)", len(src))
	}
	if le64(src[0:]) != blockMagic2 {
		return b, fmt.Errorf("store: bad v2 block magic %#x", le64(src[0:]))
	}
	if uint32(le64(src[192:])) != crc32.Checksum(src[:192], castagnoli) {
		return b, fmt.Errorf("store: v2 block header checksum mismatch")
	}
	v := &blockV2{}
	b.meta.count = le64(src[8:])
	b.rawLen = int64(le64(src[16:]))
	v.metaLen = int64(le64(src[24:]))
	v.metaRawLen = int64(le64(src[32:]))
	v.payLen = int64(le64(src[40:]))
	v.payRawLen = int64(le64(src[48:]))
	b.meta.baseStamp = le64(src[56:])
	b.meta.maxStamp = le64(src[64:])
	b.meta.minTS = le64(src[72:])
	b.meta.maxTS = le64(src[80:])
	b.meta.coreBits = le64(src[88:])
	b.meta.catBits = le64(src[96:])
	tidw := le64(src[104:])
	v.minTID, v.maxTID = uint32(tidw), uint32(tidw>>32)
	flags := le64(src[112:])
	b.meta.ordered = flags&2 != 0
	v.dictSize = int(uint16(flags >> 16))
	copy(v.bloom[:], src[120:184])
	w := le64(src[184:])
	v.metaCRC, v.payCRC = uint32(w), uint32(w>>32)
	b.compLen = v.metaLen + v.payLen
	// Structural sanity: a zero-count or section-free block is never
	// written, and every row costs at least a frame header of raw bytes
	// and one meta byte — reject before any allocation is sized off the
	// claimed lengths.
	if b.meta.count == 0 || v.metaLen <= 0 || v.metaRawLen <= 0 ||
		v.payLen < 0 || v.payRawLen < 0 ||
		(v.payLen == 0) != (v.payRawLen == 0) ||
		b.rawLen < int64(b.meta.count)*int64(tracer.EventHeaderSize+tailSize) ||
		v.metaRawLen > b.rawLen ||
		v.payRawLen > b.rawLen ||
		v.dictSize > 256 {
		return b, fmt.Errorf("store: implausible v2 block geometry")
	}
	b.v2 = v
	return b, nil
}

// colBlock is a decoded v2 meta section: one slice per column, row i of
// every slice describing event i. payOff is the payload-column prefix
// sum (payOff[i]..payOff[i+1] bounds row i's payload).
type colBlock struct {
	stamps []uint64
	ts     []uint64
	cores  []uint8
	cats   []uint8
	tids   []uint32
	levels []uint8
	plens  []uint32
	payOff []uint32
}

// memSize is the decoded footprint, charged against the block-cache
// budget when the colBlock is cached in place of its meta bytes.
func (cb *colBlock) memSize() int64 {
	return int64(8*len(cb.stamps) + 8*len(cb.ts) + len(cb.cores) +
		len(cb.cats) + 4*len(cb.tids) + len(cb.levels) +
		4*len(cb.plens) + 4*len(cb.payOff))
}

// decodeColumns parses the inflated meta section into cb, reusing its
// slices. Every column is validated against the header's row count and
// the payload prefix sum against payRawLen, so a decoded colBlock is
// structurally trustworthy.
func decodeColumns(meta []byte, b *coldBlock, cb *colBlock) error {
	v := b.v2
	count := int(b.meta.count)
	cb.stamps = grow64(cb.stamps, count)
	cb.ts = grow64(cb.ts, count)
	cb.cores = grow8(cb.cores, count)
	cb.cats = grow8(cb.cats, count)
	cb.tids = grow32(cb.tids, count)
	cb.levels = grow8(cb.levels, count)
	cb.plens = grow32(cb.plens, count)
	cb.payOff = grow32(cb.payOff, count+1)
	pos := 0
	fail := func(col string) error {
		return fmt.Errorf("%w: v2 meta column %s truncated", tracer.ErrCorrupt, col)
	}
	// Stamps and timestamps: zigzag deltas anchored at the header's
	// base/min, so the first value costs as little as any other.
	prev := int64(b.meta.baseStamp)
	for i := 0; i < count; i++ {
		d, n := binary.Varint(meta[pos:])
		if n <= 0 {
			return fail("stamp")
		}
		pos += n
		prev += d
		cb.stamps[i] = uint64(prev)
	}
	prev = int64(b.meta.minTS)
	for i := 0; i < count; i++ {
		d, n := binary.Varint(meta[pos:])
		if n <= 0 {
			return fail("time")
		}
		pos += n
		prev += d
		cb.ts[i] = uint64(prev)
	}
	if pos+count > len(meta) {
		return fail("core")
	}
	copy(cb.cores, meta[pos:pos+count])
	pos += count
	// Categories: the dictionary values, then one index byte per row.
	if pos+v.dictSize > len(meta) {
		return fail("category dictionary")
	}
	dict := meta[pos : pos+v.dictSize]
	pos += v.dictSize
	if pos+count > len(meta) {
		return fail("category")
	}
	for i := 0; i < count; i++ {
		idx := int(meta[pos+i])
		if idx >= len(dict) {
			return fmt.Errorf("%w: v2 category index %d outside dictionary of %d", tracer.ErrCorrupt, idx, len(dict))
		}
		cb.cats[i] = dict[idx]
	}
	pos += count
	for i := 0; i < count; i++ {
		u, n := binary.Uvarint(meta[pos:])
		if n <= 0 || u > uint64(^uint32(0)) {
			return fail("tid")
		}
		pos += n
		cb.tids[i] = uint32(u)
	}
	if pos+count > len(meta) {
		return fail("level")
	}
	copy(cb.levels, meta[pos:pos+count])
	pos += count
	var payTotal uint64
	for i := 0; i < count; i++ {
		u, n := binary.Uvarint(meta[pos:])
		if n <= 0 || u > tracer.MaxPayload {
			return fail("payload length")
		}
		pos += n
		cb.plens[i] = uint32(u)
		cb.payOff[i] = uint32(payTotal)
		payTotal += u
	}
	cb.payOff[count] = uint32(payTotal)
	if pos != len(meta) {
		return fmt.Errorf("%w: v2 meta section has %d trailing bytes", tracer.ErrCorrupt, len(meta)-pos)
	}
	if payTotal != uint64(v.payRawLen) {
		return fmt.Errorf("%w: v2 payload lengths sum to %d, header says %d", tracer.ErrCorrupt, payTotal, v.payRawLen)
	}
	return nil
}

func grow64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func grow32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func grow8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// coldWriterV2 streams decoded events into a v2 cold file under
// construction: rows accumulate as columns and are compressed and
// flushed as one block each time their frame-equivalent raw size
// reaches blockBytes (the same sizing rule as the v1 writer, so
// ColdBlockBytes means the same thing in both formats).
type coldWriterV2 struct {
	f          backend.File
	off        int64
	blockBytes int

	cols     colBlock // pending rows, columns only (payOff unused)
	pay      []byte
	frameRaw int64 // frame-equivalent raw bytes pending

	blockMeta      segmentMeta
	minTID, maxTID uint32
	bloom          [bloomBytes]byte

	scratch  []byte // meta-section encode buffer
	comp     bytes.Buffer
	blocks   []coldBlock
	fileMeta segmentMeta
	rawTotal int64
}

func newColdWriterV2(f backend.File, blockBytes int) *coldWriterV2 {
	if blockBytes <= 0 {
		blockBytes = defaultColdBlockBytes
	}
	return &coldWriterV2{f: f, off: headerSize, blockBytes: blockBytes}
}

// add appends one event. frame is its row-tier framing, used only for
// raw-size accounting; e's fields feed the columns (the payload bytes
// are copied, so e may alias a transient read buffer).
func (w *coldWriterV2) add(frame []byte, e *tracer.Entry) error {
	if w.blockMeta.count == 0 {
		w.minTID, w.maxTID = e.TID, e.TID
	} else {
		if e.TID < w.minTID {
			w.minTID = e.TID
		}
		if e.TID > w.maxTID {
			w.maxTID = e.TID
		}
	}
	w.blockMeta.observe(e)
	bloomAdd(&w.bloom, e.TID)
	w.cols.stamps = append(w.cols.stamps, e.Stamp)
	w.cols.ts = append(w.cols.ts, e.TS)
	w.cols.cores = append(w.cols.cores, e.Core)
	w.cols.cats = append(w.cols.cats, e.Category)
	w.cols.tids = append(w.cols.tids, e.TID)
	w.cols.levels = append(w.cols.levels, e.Level)
	w.cols.plens = append(w.cols.plens, uint32(len(e.Payload)))
	w.pay = append(w.pay, e.Payload...)
	w.frameRaw += int64(len(frame))
	if w.frameRaw >= int64(w.blockBytes) {
		return w.flush()
	}
	return nil
}

// encodeMeta renders the pending columns into the meta-section layout
// decodeColumns parses.
func (w *coldWriterV2) encodeMeta() (dictSize int) {
	buf := w.scratch[:0]
	var tmp [binary.MaxVarintLen64]byte
	prev := int64(w.blockMeta.baseStamp)
	for _, s := range w.cols.stamps {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], int64(s)-prev)]...)
		prev = int64(s)
	}
	prev = int64(w.blockMeta.minTS)
	for _, t := range w.cols.ts {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], int64(t)-prev)]...)
		prev = int64(t)
	}
	buf = append(buf, w.cols.cores...)
	// Category dictionary, values in first-appearance order.
	var dictIdx [256]int16
	for i := range dictIdx {
		dictIdx[i] = -1
	}
	var dict []uint8
	for _, cat := range w.cols.cats {
		if dictIdx[cat] < 0 {
			dictIdx[cat] = int16(len(dict))
			dict = append(dict, cat)
		}
	}
	buf = append(buf, dict...)
	for _, cat := range w.cols.cats {
		buf = append(buf, uint8(dictIdx[cat]))
	}
	for _, tid := range w.cols.tids {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(tid))]...)
	}
	buf = append(buf, w.cols.levels...)
	for _, pl := range w.cols.plens {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(pl))]...)
	}
	w.scratch = buf
	return len(dict)
}

// deflate compresses src into w.comp (reset first).
func (w *coldWriterV2) deflate(src []byte) error {
	w.comp.Reset()
	fw, err := flate.NewWriter(&w.comp, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := fw.Write(src); err != nil {
		return err
	}
	return fw.Close()
}

// flush compresses and writes the pending block: meta section, payload
// section, then the header in front of them.
func (w *coldWriterV2) flush() error {
	if w.blockMeta.count == 0 {
		return nil
	}
	dictSize := w.encodeMeta()
	metaOff := w.off + blockHeaderV2Size
	if err := w.deflate(w.scratch); err != nil {
		return err
	}
	v := &blockV2{
		metaLen:    int64(w.comp.Len()),
		metaRawLen: int64(len(w.scratch)),
		payRawLen:  int64(len(w.pay)),
		metaCRC:    crc32.Checksum(w.comp.Bytes(), castagnoli),
		minTID:     w.minTID,
		maxTID:     w.maxTID,
		dictSize:   dictSize,
		bloom:      w.bloom,
	}
	if _, err := w.f.WriteAt(w.comp.Bytes(), metaOff); err != nil {
		return err
	}
	if len(w.pay) > 0 {
		if err := w.deflate(w.pay); err != nil {
			return err
		}
		v.payLen = int64(w.comp.Len())
		v.payCRC = crc32.Checksum(w.comp.Bytes(), castagnoli)
		if _, err := w.f.WriteAt(w.comp.Bytes(), metaOff+v.metaLen); err != nil {
			return err
		}
	}
	b := coldBlock{
		off:     metaOff,
		compLen: v.metaLen + v.payLen,
		rawLen:  w.frameRaw,
		meta:    w.blockMeta,
		v2:      v,
	}
	hdr := make([]byte, blockHeaderV2Size)
	encodeBlockHeaderV2(hdr, &b)
	if _, err := w.f.WriteAt(hdr, w.off); err != nil {
		return err
	}
	w.off = metaOff + b.compLen
	w.blocks = append(w.blocks, b)
	mergeMeta(&w.fileMeta, &w.blockMeta)
	w.rawTotal += w.frameRaw
	// Reset the pending state for the next block.
	w.cols.stamps = w.cols.stamps[:0]
	w.cols.ts = w.cols.ts[:0]
	w.cols.cores = w.cols.cores[:0]
	w.cols.cats = w.cols.cats[:0]
	w.cols.tids = w.cols.tids[:0]
	w.cols.levels = w.cols.levels[:0]
	w.cols.plens = w.cols.plens[:0]
	w.pay = w.pay[:0]
	w.frameRaw = 0
	w.blockMeta = segmentMeta{}
	w.minTID, w.maxTID = 0, 0
	w.bloom = [bloomBytes]byte{}
	return nil
}

// finish flushes the last block, writes the sealed file header (shared
// with v1 cold files — the per-block magic is what versions a block),
// syncs and seals. The caller renames the file in afterwards.
func (w *coldWriterV2) finish(coversThrough uint64) error {
	if err := w.flush(); err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	encodeHeaderMagic(hdr, coldMagic, &w.fileMeta, coversThrough, true)
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Seal()
}

func (w *coldWriterV2) result() (segmentMeta, []coldBlock, int64) {
	return w.fileMeta, w.blocks, w.rawTotal
}
