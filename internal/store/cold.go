// Cold tier: a cold file (col-%08d.blk) is a frozen, compressed copy of
// one or more sealed row segments. The format is frame-preserving: each
// block's payload decompresses to exactly the CRC-framed records the row
// segments held, so the cursor's frame walk, checksum verification and
// decode run unchanged over inflated bytes.
//
//	offset 0    file header (88 bytes, same layout as a segment header
//	            but coldMagic; always written sealed — cold files only
//	            ever appear whole, committed by rename)
//	offset 88   block*  where block = 96-byte block header ++ compressed
//	            payload (DEFLATE)
//
// Each block header carries the block's own min/max stamp, min/max TS
// and core/category bitmaps, so queries prune whole blocks — and skip
// their decompression — from the directory alone.
package store

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

const (
	// coldMagic identifies a cold block file (and its format version).
	coldMagic = 0x6274636f6c3031 // "btcol01"
	// blockMagic marks every block header.
	blockMagic = 0x6274626c6b3031 // "btblk01"
	// blockHeaderSize is the fixed per-block header length.
	blockHeaderSize = 96
	// defaultColdBlockBytes is the raw-bytes-per-block target when
	// Config.ColdBlockBytes is zero.
	defaultColdBlockBytes = 256 << 10
)

// coldBlock is one block's directory entry: where its compressed
// payload lives and what it can contain.
type coldBlock struct {
	off     int64  // file offset of the compressed bytes (v2: meta section)
	compLen int64  // total compressed length (v2: meta + payload sections)
	rawLen  int64  // decompressed frame bytes (v2: frame-equivalent accounting)
	crc     uint32 // v1 only: crc32c of the compressed payload
	meta    segmentMeta
	v2      *blockV2 // nil for v1 blocks
}

// encodeBlockHeader renders one block header. Layout:
//
//	[0:8)   blockMagic
//	[8:16)  compLen     [16:24) rawLen
//	[24:32) count
//	[32:40) baseStamp   [40:48) maxStamp
//	[48:56) minTS       [56:64) maxTS
//	[64:72) coreBits    [72:80) catBits
//	[80:88) flags (bit 1 = ordered, matching the segment header)
//	[88:96) crc32c of [0:88) in the low 32 bits, crc32c of the
//	        compressed payload in the high 32 bits
func encodeBlockHeader(dst []byte, b *coldBlock) {
	le64put(dst[0:], blockMagic)
	le64put(dst[8:], uint64(b.compLen))
	le64put(dst[16:], uint64(b.rawLen))
	le64put(dst[24:], b.meta.count)
	le64put(dst[32:], b.meta.baseStamp)
	le64put(dst[40:], b.meta.maxStamp)
	le64put(dst[48:], b.meta.minTS)
	le64put(dst[56:], b.meta.maxTS)
	le64put(dst[64:], b.meta.coreBits)
	le64put(dst[72:], b.meta.catBits)
	var flags uint64
	if b.meta.ordered {
		flags |= 2
	}
	le64put(dst[80:], flags)
	le64put(dst[88:], uint64(b.crc)<<32|uint64(crc32.Checksum(dst[:88], castagnoli)))
}

// decodeBlockHeader parses and validates one block header.
func decodeBlockHeader(src []byte) (b coldBlock, err error) {
	if len(src) < blockHeaderSize {
		return b, fmt.Errorf("store: short block header (%d bytes)", len(src))
	}
	if le64(src[0:]) != blockMagic {
		return b, fmt.Errorf("store: bad block magic %#x", le64(src[0:]))
	}
	w := le64(src[88:])
	if uint32(w) != crc32.Checksum(src[:88], castagnoli) {
		return b, fmt.Errorf("store: block header checksum mismatch")
	}
	b.compLen = int64(le64(src[8:]))
	b.rawLen = int64(le64(src[16:]))
	b.crc = uint32(w >> 32)
	b.meta.count = le64(src[24:])
	b.meta.baseStamp = le64(src[32:])
	b.meta.maxStamp = le64(src[40:])
	b.meta.minTS = le64(src[48:])
	b.meta.maxTS = le64(src[56:])
	b.meta.coreBits = le64(src[64:])
	b.meta.catBits = le64(src[72:])
	b.meta.ordered = le64(src[80:])&2 != 0
	return b, nil
}

// scanColdFile walks the block directory of a committed cold file,
// filling s.blocks and rebuilding s.meta/rawSize from the block
// headers. A cold file is only ever committed whole (tmp → sync →
// rename), so a block that fails to validate marks the end of the
// trustworthy prefix: the scan keeps what validated and reports how
// many trailing bytes it ignored (bitrot containment, not crash
// recovery).
func scanColdFile(f backend.ReadFile, size int64, s *segment) (ignored int64, err error) {
	hdr := make([]byte, blockHeaderV2Size)
	s.meta = segmentMeta{}
	s.blocks = nil
	s.rawSize = headerSize
	off := int64(headerSize)
	for off+blockHeaderSize <= size {
		// A v1 block near EOF may leave fewer than blockHeaderV2Size
		// bytes; read what is there and let the magic pick the decoder.
		want := hdr
		if size-off < blockHeaderV2Size {
			want = hdr[:size-off]
		}
		if _, rerr := f.ReadAt(want, off); rerr != nil {
			return size - off, nil
		}
		var b coldBlock
		var hdrLen int64
		if le64(want[0:]) == blockMagic2 {
			b2, berr := decodeBlockHeaderV2(want)
			if berr != nil {
				return size - off, nil
			}
			b, hdrLen = b2, blockHeaderV2Size
		} else {
			b1, berr := decodeBlockHeader(want)
			if berr != nil {
				return size - off, nil
			}
			b, hdrLen = b1, blockHeaderSize
		}
		if off+hdrLen+b.compLen > size {
			return size - off, nil
		}
		b.off = off + hdrLen
		s.blocks = append(s.blocks, b)
		mergeMeta(&s.meta, &b.meta)
		s.rawSize += b.rawLen
		off += hdrLen + b.compLen
	}
	return size - off, nil
}

// flateReaders recycles DEFLATE decompressors across blocks, queries and
// cursors; Reset avoids the allocation-heavy NewReader per block.
var flateReaders = sync.Pool{New: func() any { return flate.NewReader(nil) }}

// inflateSection reads, checksums and decompresses one contiguous
// DEFLATE section (a v1 block payload, or a v2 meta or payload
// section). comp is the compressed-bytes scratch buffer and dst the
// output buffer; both are grown as needed and returned for reuse. The
// compressed bytes are checksummed before inflating — pruned blocks and
// skipped sections never pay either cost.
func inflateSection(f io.ReaderAt, off, compLen, rawLen int64, crc uint32, comp, dst []byte) (newComp, out []byte, err error) {
	if int64(cap(comp)) < compLen {
		comp = make([]byte, compLen)
	} else {
		comp = comp[:compLen]
	}
	if _, err := f.ReadAt(comp, off); err != nil {
		return comp, dst[:0], err
	}
	if crc32.Checksum(comp, castagnoli) != crc {
		return comp, dst[:0], fmt.Errorf("%w: cold section checksum mismatch", tracer.ErrCorrupt)
	}
	if int64(cap(dst)) < rawLen {
		dst = make([]byte, rawLen)
	} else {
		dst = dst[:rawLen]
	}
	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return comp, dst[:0], err
	}
	if _, err := io.ReadFull(fr, dst); err != nil {
		return comp, dst[:0], fmt.Errorf("%w: cold section inflate: %v", tracer.ErrCorrupt, err)
	}
	return comp, dst, nil
}

// inflateBlock decompresses a v1 block's frame payload.
func inflateBlock(f io.ReaderAt, b *coldBlock, comp, dst []byte) (newComp, out []byte, err error) {
	return inflateSection(f, b.off, b.compLen, b.rawLen, b.crc, comp, dst)
}

// inflateMetaV2 decompresses a v2 block's meta section.
func inflateMetaV2(f io.ReaderAt, b *coldBlock, comp, dst []byte) (newComp, out []byte, err error) {
	v := b.v2
	return inflateSection(f, b.off, v.metaLen, v.metaRawLen, v.metaCRC, comp, dst)
}

// inflatePayV2 decompresses a v2 block's payload section, which sits
// directly after the meta section.
func inflatePayV2(f io.ReaderAt, b *coldBlock, comp, dst []byte) (newComp, out []byte, err error) {
	v := b.v2
	return inflateSection(f, b.off+v.metaLen, v.payLen, v.payRawLen, v.payCRC, comp, dst)
}

// coldWriter streams frames into a cold file under construction:
// frames accumulate into a raw buffer that is compressed and flushed as
// one block each time it reaches blockBytes.
type coldWriter struct {
	f          backend.File
	off        int64 // next write offset (starts past the file header)
	blockBytes int
	raw        []byte
	comp       bytes.Buffer
	blockMeta  segmentMeta
	blocks     []coldBlock
	fileMeta   segmentMeta
	rawTotal   int64
}

func newColdWriter(f backend.File, blockBytes int) *coldWriter {
	if blockBytes <= 0 {
		blockBytes = defaultColdBlockBytes
	}
	return &coldWriter{f: f, off: headerSize, blockBytes: blockBytes}
}

// add appends one frame (record ++ tail, already checksummed) with its
// decoded event.
func (w *coldWriter) add(frame []byte, e *tracer.Entry) error {
	w.raw = append(w.raw, frame...)
	w.blockMeta.observeRaw(e.Stamp, e.TS, e.Core, e.Category)
	if len(w.raw) >= w.blockBytes {
		return w.flush()
	}
	return nil
}

// flush compresses and writes the pending block.
func (w *coldWriter) flush() error {
	if len(w.raw) == 0 {
		return nil
	}
	w.comp.Reset()
	fw, err := flate.NewWriter(&w.comp, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := fw.Write(w.raw); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	b := coldBlock{
		off:     w.off + blockHeaderSize,
		compLen: int64(w.comp.Len()),
		rawLen:  int64(len(w.raw)),
		crc:     crc32.Checksum(w.comp.Bytes(), castagnoli),
		meta:    w.blockMeta,
	}
	hdr := make([]byte, blockHeaderSize)
	encodeBlockHeader(hdr, &b)
	if _, err := w.f.WriteAt(hdr, w.off); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(w.comp.Bytes(), b.off); err != nil {
		return err
	}
	w.off = b.off + b.compLen
	w.blocks = append(w.blocks, b)
	mergeMeta(&w.fileMeta, &w.blockMeta)
	w.rawTotal += int64(len(w.raw))
	w.raw = w.raw[:0]
	w.blockMeta = segmentMeta{}
	return nil
}

// finish flushes the last block, writes the sealed file header, syncs
// and seals. The caller renames the file in afterwards (the commit).
func (w *coldWriter) finish(coversThrough uint64) error {
	if err := w.flush(); err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	encodeHeaderMagic(hdr, coldMagic, &w.fileMeta, coversThrough, true)
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Seal()
}

func (w *coldWriter) result() (segmentMeta, []coldBlock, int64) {
	return w.fileMeta, w.blocks, w.rawTotal
}

// coldSink abstracts the two cold writers so the freeze path picks the
// block format without caring which one it feeds.
type coldSink interface {
	add(frame []byte, e *tracer.Entry) error
	finish(coversThrough uint64) error
	result() (fileMeta segmentMeta, blocks []coldBlock, rawTotal int64)
}
