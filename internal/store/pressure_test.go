package store

import (
	"errors"
	"testing"

	"btrace/internal/tracer"
)

func TestPressureAndWriteErr(t *testing.T) {
	st, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := st.Pressure(); p.Failed || p.StagedFill != 0 || p.AppendNs != 0 {
		t.Fatalf("fresh store pressure: %+v", p)
	}
	if err := st.WriteErr(); err != nil {
		t.Fatalf("fresh store WriteErr: %v", err)
	}

	es := make([]tracer.Entry, 64)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: uint64(i + 1), TID: 7, Level: 1}
	}
	if err := st.AppendEntries(es); err != nil {
		t.Fatal(err)
	}
	if p := st.Pressure(); p.AppendNs == 0 {
		t.Fatalf("append latency EWMA not updated: %+v", p)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if p := st.Pressure(); p.FsyncNs == 0 {
		t.Fatalf("fsync latency EWMA not updated: %+v", p)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteErr(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed store WriteErr: %v", err)
	}
	if p := st.Pressure(); !p.Failed {
		t.Fatalf("closed store not Failed: %+v", p)
	}
}

func TestEwma(t *testing.T) {
	var e ewma
	if e.load() != 0 {
		t.Fatal("zero ewma")
	}
	e.observe(800)
	if e.load() != 800 {
		t.Fatalf("first observation seeds the average: %d", e.load())
	}
	e.observe(0)
	if got := e.load(); got != 800-800/8 {
		t.Fatalf("decay step: %d", got)
	}
	for i := 0; i < 100; i++ {
		e.observe(1600)
	}
	if got := e.load(); got < 1500 || got > 1600 {
		t.Fatalf("converged value: %d", got)
	}
}
