package store

import (
	"errors"
	"testing"
	"time"

	"btrace/internal/tracer"
)

func TestPressureAndWriteErr(t *testing.T) {
	st, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := st.Pressure(); p.Failed || p.StagedFill != 0 || p.AppendNs != 0 {
		t.Fatalf("fresh store pressure: %+v", p)
	}
	if err := st.WriteErr(); err != nil {
		t.Fatalf("fresh store WriteErr: %v", err)
	}

	es := make([]tracer.Entry, 64)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: uint64(i + 1), TID: 7, Level: 1}
	}
	if err := st.AppendEntries(es); err != nil {
		t.Fatal(err)
	}
	if p := st.Pressure(); p.AppendNs == 0 {
		t.Fatalf("append latency EWMA not updated: %+v", p)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if p := st.Pressure(); p.FsyncNs == 0 {
		t.Fatalf("fsync latency EWMA not updated: %+v", p)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteErr(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed store WriteErr: %v", err)
	}
	if p := st.Pressure(); !p.Failed {
		t.Fatalf("closed store not Failed: %+v", p)
	}
}

func TestEwma(t *testing.T) {
	var e ewma
	if e.load() != 0 {
		t.Fatal("zero ewma")
	}
	e.observe(800)
	if e.load() != 800 {
		t.Fatalf("first observation seeds the average: %d", e.load())
	}
	e.observe(0)
	if got := e.load(); got != 800-800/8 {
		t.Fatalf("decay step: %d", got)
	}
	for i := 0; i < 100; i++ {
		e.observe(1600)
	}
	if got := e.load(); got < 1500 || got > 1600 {
		t.Fatalf("converged value: %d", got)
	}
}

// TestEwmaDecaysWhenIdle: without new samples the exported average
// halves per ewmaIdleHalfLife, so a burst's latency spike cannot pin
// the overload gate at full-drop long after traffic stops (the bug: one
// big ingest batch wedged /readyz at 503 forever).
func TestEwmaDecaysWhenIdle(t *testing.T) {
	var e ewma
	e.observe(1 << 20)
	// Backdate the sample instead of sleeping: 10 half-lives ago.
	e.at.Store(time.Now().Add(-10 * ewmaIdleHalfLife).UnixNano())
	if got := e.load(); got > (1<<20)/512 {
		t.Fatalf("idle ewma did not decay: %d", got)
	}
	e.at.Store(time.Now().Add(-100 * ewmaIdleHalfLife).UnixNano())
	if got := e.load(); got != 0 {
		t.Fatalf("long-idle ewma not zero: %d", got)
	}
	// A fresh observation resets the clock: no decay right after.
	e.observe(1 << 20)
	if got := e.load(); got == 0 {
		t.Fatalf("fresh observation decayed: %d", got)
	}
}

// TestPressureAppendLatencyPerEvent: the pressure EWMA is normalized
// per event, so one large AppendEntries call (whose wall time grows
// with the batch) reads as throughput, not as an overload signal
// blowing the per-event AppendBudgetNs.
func TestPressureAppendLatencyPerEvent(t *testing.T) {
	st, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	es := make([]tracer.Entry, 8192)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: uint64(i + 1), TID: 7, Level: 1}
	}
	if err := st.AppendEntries(es); err != nil {
		t.Fatal(err)
	}
	p := st.Pressure()
	if p.AppendNs == 0 {
		t.Fatalf("append latency EWMA not updated: %+v", p)
	}
	// Per-event staging cost is well under 100µs even on a slow CI
	// runner; the whole-batch latency (the old, wrong sample) is
	// milliseconds for 8k events.
	if p.AppendNs > 100_000 {
		t.Fatalf("AppendNs %d looks like whole-batch latency, want per-event", p.AppendNs)
	}
}
