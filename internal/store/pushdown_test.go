package store

import (
	"bytes"
	"compress/flate"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"btrace/internal/btql"
	"btrace/internal/tracer"
)

// coldSection locates one v2 block's sections on disk, for tests that
// corrupt them to prove the query engine never reads what pruning
// excluded.
type coldSection struct {
	path              string
	hdrOff            int64 // 200-byte v2 block header
	metaOff, metaLen  int64
	payOff, payLen    int64
	baseStamp, maxTop uint64 // the block's stamp range
}

// coldSectionsV2 snapshots every v2 block's on-disk section layout.
func coldSectionsV2(t *testing.T, st *Store) []coldSection {
	t.Helper()
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []coldSection
	for _, s := range st.segs {
		if !s.isCold() {
			continue
		}
		for i := range s.blocks {
			b := &s.blocks[i]
			if b.v2 == nil {
				continue
			}
			out = append(out, coldSection{
				path:    filepath.Join(st.loc, s.name),
				hdrOff:  b.off - blockHeaderV2Size,
				metaOff: b.off, metaLen: b.v2.metaLen,
				payOff: b.off + b.v2.metaLen, payLen: b.v2.payLen,
				baseStamp: b.meta.baseStamp, maxTop: b.meta.maxStamp,
			})
		}
	}
	return out
}

// flipByte XORs one on-disk byte, simulating silent media corruption.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestColdAggregateNeverInflatesPayload is the proof by corruption for
// the columnar executor's I/O discipline: with EVERY v2 payload section
// corrupted on disk, a header-only aggregate still answers correctly —
// the payload columns genuinely stay compressed and unread. A payload
// predicate over the same store must then fail, proving the corruption
// was real and would have been seen by any read that touched it.
func TestColdAggregateNeverInflatesPayload(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	sealEvery(t, st, 1, 1200, 100)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	secs := coldSectionsV2(t, st)
	if len(secs) == 0 {
		t.Fatal("fixture froze no v2 blocks")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		if s.payLen == 0 {
			t.Fatalf("block at %s+%d has no payload section", s.path, s.hdrOff)
		}
		flipByte(t, s.path, s.payOff+s.payLen/2)
	}

	st, err = Open(dir, tierCfg()) // recovery reads directory headers only
	if err != nil {
		t.Fatalf("Open after payload corruption: %v", err)
	}
	defer st.Close()

	count := []btql.AggSpec{{Kind: btql.AggCount}}
	res, missed, err := st.Aggregate(Query{Pred: predOf(t, `category == 2`)}, count)
	if err != nil {
		t.Fatalf("header-only aggregate read a corrupt payload section: %v", err)
	}
	// mkEntry categories are stamp%5: exactly 240 of stamps 1..1200.
	if missed != 0 || res[0].Events != 240 {
		t.Fatalf("count = %d (missed %d), want 240", res[0].Events, missed)
	}

	// The same store must fail a read that does need payload bytes from a
	// cold block — otherwise the corruption above proved nothing.
	if _, _, err := st.Aggregate(Query{Pred: predOf(t, `payload contains "payload-7"`)}, count); err == nil {
		t.Fatal("payload predicate read corrupted sections without error")
	}
	cur := st.Query(Query{})
	defer cur.Close()
	if _, err := tracer.Drain(cur, 64); err == nil {
		t.Fatal("full materializing scan read corrupted payload sections without error")
	}
}

// TestColdStampPruningSkipsCorruptBlocks proves block-level metadata
// pruning on the streaming cursor: blocks past a stamp cutoff are
// corrupted wholesale (meta and payload sections), and a bounded query
// still returns every event below the cutoff, intact — those blocks
// were vetoed by their directory entry before any byte was read.
func TestColdStampPruningSkipsCorruptBlocks(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	sealEvery(t, st, 1, 1200, 100)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	secs := coldSectionsV2(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt every block whose range starts in the upper half.
	var cutoff uint64 = ^uint64(0)
	corrupted := 0
	for _, s := range secs {
		if s.baseStamp <= 600 {
			continue
		}
		if s.baseStamp < cutoff {
			cutoff = s.baseStamp
		}
		flipByte(t, s.path, s.metaOff+s.metaLen/2)
		flipByte(t, s.path, s.payOff+s.payLen/2)
		corrupted++
	}
	if corrupted == 0 || cutoff == ^uint64(0) {
		t.Fatalf("no blocks above stamp 600 to corrupt (%d sections)", len(secs))
	}
	cutoff-- // highest stamp no corrupted block can cover

	st, err = Open(dir, tierCfg())
	if err != nil {
		t.Fatalf("Open after block corruption: %v", err)
	}
	defer st.Close()

	for name, q := range map[string]Query{
		"field-bound": {MaxStamp: cutoff},
		"btql-hull":   {Pred: predOf(t, `stamp <= 600`)},
	} {
		es := drainStore(t, st, q)
		want := cutoff
		if name == "btql-hull" {
			want = 600
		}
		if uint64(len(es)) != want {
			t.Fatalf("%s: %d events, want %d", name, len(es), want)
		}
		for _, e := range es {
			w := mkEntry(e.Stamp)
			if !reflect.DeepEqual(e, w) {
				t.Fatalf("%s: event %d corrupted: %+v", name, e.Stamp, e)
			}
		}
	}
	// (An ordered cold file past its stamp bound is cut off by the
	// early-exit rather than block-by-block pruning, so BlocksPruned is
	// asserted where TID/category vetoes run: TestAggregateColumnarSkips
	// and BenchmarkQuerySelectiveBTQL.)

	// And the corruption was real: an unbounded scan hits it.
	cur := st.Query(Query{})
	defer cur.Close()
	if _, err := tracer.Drain(cur, 64); err == nil {
		t.Fatal("unbounded scan read corrupted blocks without error")
	}
}

// TestColdV1V2MixedDirectory: a store directory holding both legacy v1
// (frame-preserving) and v2 (columnar) cold files — the state of a
// deployment upgraded mid-retention — answers every query and aggregate
// identically to an all-hot reference store.
func TestColdV1V2MixedDirectory(t *testing.T) {
	dir := t.TempDir()
	cfg := tierCfg()
	cfg.coldV1 = true
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sealEvery(t, st, 1, 600, 100)
	if _, err := st.CompactCold(); err != nil {
		t.Fatalf("CompactCold (v1): %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.coldV1 = false
	st, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 601, 1200, 100)
	if _, err := st.CompactCold(); err != nil {
		t.Fatalf("CompactCold (v2): %v", err)
	}
	versions := map[int]int{}
	for _, b := range st.ColdBlocks() {
		versions[b.Version]++
	}
	if versions[1] == 0 || versions[2] == 0 {
		t.Fatalf("directory is not mixed: %v", versions)
	}

	ref, err := Open(t.TempDir(), Config{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	appendRange(t, ref, 1, 1200)
	if err := ref.Seal(); err != nil {
		t.Fatal(err)
	}

	specs := []btql.AggSpec{
		{Kind: btql.AggCount},
		{Kind: btql.AggTopK, K: 3, Field: btql.FTID},
	}
	for _, tc := range []struct {
		name string
		q    Query
	}{
		{"all", Query{}},
		{"fields", Query{MinStamp: 150, Cores: []uint8{1, 2}}},
		{"header-pred", Query{Pred: predOf(t, `category == 2 && core != 3`)}},
		{"stamp-pred", Query{Pred: predOf(t, `stamp >= 200 && stamp <= 700`)}},
		{"payload-pred", Query{Pred: predOf(t, `payload contains "payload-77"`)}},
	} {
		got := drainStore(t, st, tc.q)
		want := drainStore(t, ref, tc.q)
		if len(want) == 0 {
			t.Fatalf("%s: reference matched nothing", tc.name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: mixed directory returned %d events, reference %d",
				tc.name, len(got), len(want))
		}
		ga, missed, err := st.Aggregate(tc.q, specs)
		if err != nil || missed != 0 {
			t.Fatalf("%s: Aggregate: missed=%d err=%v", tc.name, missed, err)
		}
		wa, _, err := ref.Aggregate(tc.q, specs)
		if err != nil {
			t.Fatalf("%s: reference Aggregate: %v", tc.name, err)
		}
		if !reflect.DeepEqual(ga, wa) {
			t.Fatalf("%s: aggregate mismatch:\n got %+v\nwant %+v", tc.name, ga, wa)
		}
	}
}

// FuzzColdBlockV2Decode throws arbitrary bytes at the v2 block header
// and column decoders: they must never panic or accept structurally
// inconsistent columns, whatever the bytes claim.
func FuzzColdBlockV2Decode(f *testing.F) {
	// Seed with a real block: its on-disk header and inflated meta
	// section, so the fuzzer starts from valid structure.
	dir := f.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 32 << 10, ColdAfterNs: 1, ColdBlockBytes: 4 << 10})
	if err != nil {
		f.Fatal(err)
	}
	var es []tracer.Entry
	for s := uint64(1); s <= 300; s++ {
		es = append(es, mkEntryTB(s))
	}
	if err := st.AppendEntries(es); err != nil {
		f.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		f.Fatal(err)
	}
	e := mkEntryTB(1000)
	e.TS = 1 << 40 // age everything sealed before it
	if err := st.Append(&e); err != nil {
		f.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		f.Fatal(err)
	}
	if _, err := st.CompactCold(); err != nil {
		f.Fatal(err)
	}
	var hdr, meta []byte
	st.mu.Lock()
	for _, s := range st.segs {
		if !s.isCold() || len(s.blocks) == 0 || s.blocks[0].v2 == nil {
			continue
		}
		b := &s.blocks[0]
		raw, err := os.ReadFile(filepath.Join(st.loc, s.name))
		if err != nil {
			st.mu.Unlock()
			f.Fatal(err)
		}
		hdr = raw[b.off-blockHeaderV2Size : b.off]
		fr := flate.NewReader(bytes.NewReader(raw[b.off : b.off+b.v2.metaLen]))
		meta, err = io.ReadAll(fr)
		if err != nil {
			st.mu.Unlock()
			f.Fatal(err)
		}
		break
	}
	st.mu.Unlock()
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	if hdr == nil {
		f.Fatal("no v2 block to seed from")
	}
	seedBlock, err := decodeBlockHeaderV2(hdr)
	if err != nil {
		f.Fatalf("seed header does not decode: %v", err)
	}

	f.Add(append([]byte(nil), hdr...), append([]byte(nil), meta...))
	f.Add(append([]byte(nil), hdr...), []byte{})
	f.Add([]byte{}, append([]byte(nil), meta...))
	short := append([]byte(nil), meta...)
	f.Add(append([]byte(nil), hdr...), short[:len(short)/2])
	f.Fuzz(func(t *testing.T, h, m []byte) {
		if b, err := decodeBlockHeaderV2(h); err == nil && b.meta.count <= 1<<16 {
			var cb colBlock
			if derr := decodeColumns(m, &b, &cb); derr == nil {
				checkColumns(t, &b, &cb)
			}
		}
		// The meta bytes also run against the known-good header, so the
		// column decoder is exercised even when the fuzzed header fails
		// its CRC (as almost all mutations do).
		b := seedBlock
		var cb colBlock
		if err := decodeColumns(m, &b, &cb); err == nil {
			checkColumns(t, &b, &cb)
		}
	})
}

// checkColumns asserts the structural contract a successful
// decodeColumns promises: every column row-count matches the header,
// and the payload prefix sum is monotonic and bounded.
func checkColumns(t *testing.T, b *coldBlock, cb *colBlock) {
	t.Helper()
	n := int(b.meta.count)
	if len(cb.stamps) != n || len(cb.ts) != n || len(cb.cores) != n ||
		len(cb.cats) != n || len(cb.tids) != n || len(cb.levels) != n ||
		len(cb.plens) != n || len(cb.payOff) != n+1 {
		t.Fatalf("decoded columns inconsistent with count %d: stamps=%d ts=%d payOff=%d",
			n, len(cb.stamps), len(cb.ts), len(cb.payOff))
	}
	for i := 0; i < n; i++ {
		if cb.payOff[i+1] < cb.payOff[i] || uint64(cb.plens[i]) != uint64(cb.payOff[i+1]-cb.payOff[i]) {
			t.Fatalf("payload prefix sum broken at row %d", i)
		}
	}
	if int64(cb.payOff[n]) != b.v2.payRawLen {
		t.Fatalf("payload prefix sum %d != payRawLen %d", cb.payOff[n], b.v2.payRawLen)
	}
}
