package store

import (
	"reflect"
	"testing"

	"btrace/internal/btql"
)

// aggRef computes the expected results by materializing the matching
// events through the ordinary cursor and replaying them into fresh
// aggregators: the streaming executor must agree with the
// row-at-a-time reference on every tier mix.
func aggRef(t *testing.T, st *Store, q Query, specs []btql.AggSpec) []btql.Result {
	t.Helper()
	es := drainStore(t, st, q)
	out := make([]btql.Result, len(specs))
	for i := range specs {
		a := specs[i].New()
		for j := range es {
			a.ObserveEntry(&es[j])
		}
		out[i] = a.Result()
	}
	return out
}

func predOf(t *testing.T, src string) *btql.Predicate {
	t.Helper()
	q, err := btql.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q.Predicate()
}

func TestAggregateAcrossTiers(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 1200, 100)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	appendRange(t, st, 1201, 1300) // hot tail, unsealed

	specs := []btql.AggSpec{
		{Kind: btql.AggCount},
		{Kind: btql.AggRate, WindowNs: 100_000},
		{Kind: btql.AggTopK, K: 3, Field: btql.FTID},
	}
	for _, tc := range []struct {
		name string
		q    Query
	}{
		{"all", Query{}},
		{"field-filters", Query{Cores: []uint8{1, 2}, MinStamp: 150}},
		{"header-pred", Query{Pred: predOf(t, `category == 2 && core != 3`)}},
		{"stamp-pred", Query{Pred: predOf(t, `stamp >= 200 && stamp <= 400`)}},
		{"payload-pred", Query{Pred: predOf(t, `payload contains "payload-77"`)}},
	} {
		got, missed, err := st.Aggregate(tc.q, specs)
		if err != nil {
			t.Fatalf("%s: Aggregate: %v", tc.name, err)
		}
		if missed != 0 {
			t.Fatalf("%s: missed %d events with no retention running", tc.name, missed)
		}
		want := aggRef(t, st, tc.q, specs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: aggregate mismatch:\n got %+v\nwant %+v", tc.name, got, want)
		}
		if got[0].Events == 0 {
			t.Fatalf("%s: aggregate saw no events", tc.name)
		}
	}
}

// TestAggregateColumnarSkips pins the executor's I/O discipline: a
// header-only aggregate never inflates v2 payload sections, and a
// predicate no block can satisfy prunes on metadata alone.
func TestAggregateColumnarSkips(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 1200, 100)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	count := []btql.AggSpec{{Kind: btql.AggCount}}

	base := st.Stats()
	res, _, err := st.Aggregate(Query{Pred: predOf(t, `category == 2`)}, count)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if res[0].Events == 0 {
		t.Fatal("header-only aggregate matched nothing")
	}
	after := st.Stats()
	if after.PayloadSkips <= base.PayloadSkips {
		t.Fatalf("header-only aggregate inflated payload sections: skips %d -> %d",
			base.PayloadSkips, after.PayloadSkips)
	}

	// mkEntry TIDs are stamp%7: TID 1000 exists nowhere, so the block
	// header's TID range (and bloom) must veto every cold block.
	res, _, err = st.Aggregate(Query{Pred: predOf(t, `tid == 1000`)}, count)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if res[0].Events != 0 {
		t.Fatalf("tid == 1000 matched %d events", res[0].Events)
	}
	final := st.Stats()
	if final.BlocksPruned <= after.BlocksPruned {
		t.Fatalf("absent-TID aggregate pruned no blocks: %d -> %d",
			after.BlocksPruned, final.BlocksPruned)
	}
}
