// Package backend abstracts the trace store's segment I/O behind a
// small filesystem-shaped contract, so the same store engine runs
// against a local directory (backend/local), an in-process object store
// (Object, used by tests and the chaos suite), or any future remote
// tier.
//
// The contract is deliberately narrow — create, ranged read, positional
// append, seal, list, remove, rename — because that is exactly what the
// store's crash-safety story needs:
//
//   - Rename must be atomic with respect to a crash: after Rename
//     returns, a reopened backend sees either the old name or the new
//     one, never both, never a torn file. The store's tier transitions
//     (segment merge, cold compression) all commit through one Rename.
//   - Sync must make a file's bytes durable before it returns; the
//     store orders every rename-commit after the Sync of the file being
//     renamed in.
//   - Remove of an open file must not invalidate existing handles
//     (POSIX inode semantics): cursors keep reading a segment that
//     retention or compaction deleted underneath them.
//   - Seal declares a file's contents final. A sealed file rejects
//     further writes; object-store style backends use it as the
//     put-on-seal commit point.
package backend

import "io"

// ReadFile is a read-only handle: ranged reads plus the committed size.
type ReadFile interface {
	io.ReaderAt
	io.Closer
	// Size returns the file's current size in bytes.
	Size() (int64, error)
}

// File is a writable handle as the store uses one: positional writes
// (the write pipeline tracks its own offsets), truncation of a
// preallocated or torn tail, durability, and the seal that ends the
// file's mutable life.
type File interface {
	ReadFile
	io.WriterAt
	// Truncate cuts (or extends) the file to size bytes.
	Truncate(size int64) error
	// Sync makes every completed write durable.
	Sync() error
	// Seal marks the contents final: every later WriteAt or Truncate
	// through any handle must fail. Sealing is idempotent.
	Seal() error
}

// Backend is a flat namespace of segment files. Implementations must be
// safe for concurrent use: the store's writer, maintenance, compactor
// and cursor goroutines all hold handles at once.
type Backend interface {
	// Lock takes the backend-wide exclusive store lock; closing the
	// returned handle releases it. A second Lock (same or another
	// process, where meaningful) fails fast instead of letting two
	// recoveries truncate each other's files.
	Lock() (io.Closer, error)
	// List returns the names that start with prefix ("" = everything),
	// sorted ascending.
	List(prefix string) ([]string, error)
	// Create creates (truncating any previous content) a writable file.
	// preallocBytes > 0 is a best-effort size hint: backends that can
	// reserve space up front (fallocate) do; others ignore it.
	Create(name string, preallocBytes int64) (File, error)
	// OpenRW opens an existing file for recovery: ranged reads plus the
	// header rewrite and tail truncation recovery performs.
	OpenRW(name string) (File, error)
	// OpenRead opens an existing file read-only.
	OpenRead(name string) (ReadFile, error)
	// Remove deletes a name. Open handles stay readable.
	Remove(name string) error
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
	// Location describes the backend for logs and errors (a directory
	// path, an object-store bucket, ...).
	Location() string
}
