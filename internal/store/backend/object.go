// In-process object backend: an S3-shaped Backend held entirely in
// memory. Objects are named byte blobs; a File buffers writes until
// Seal (or Close), after which the object is immutable — the
// put-on-seal model. Used by the store's conformance and chaos suites,
// where it doubles as a crash camera: Clone snapshots the whole
// namespace at any instant, and a store reopened over the clone sees
// exactly what a crash at that instant would have left behind.
package backend

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// ErrSealed reports a write to a sealed object.
var ErrSealed = errors.New("backend: object is sealed")

// object is one named blob plus its mutability state. Handles share the
// object; data is only ever mutated under mu while unsealed.
type object struct {
	mu     sync.RWMutex
	data   []byte
	sealed bool
}

func (o *object) readAt(p []byte, off int64) (int, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("backend: negative offset %d", off)
	}
	if off >= int64(len(o.data)) {
		return 0, io.EOF
	}
	n := copy(p, o.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (o *object) size() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return int64(len(o.data))
}

// Object is the in-process object store. The zero value is not usable;
// call NewObject.
type Object struct {
	mu      sync.Mutex
	objects map[string]*object
	locked  bool
	name    string
}

// NewObject returns an empty in-process object backend.
func NewObject() *Object {
	return &Object{objects: make(map[string]*object), name: "object:"}
}

// objLock releases the backend-wide lock on Close.
type objLock struct{ b *Object }

func (l *objLock) Close() error {
	l.b.mu.Lock()
	l.b.locked = false
	l.b.mu.Unlock()
	return nil
}

// Lock implements Backend.
func (b *Object) Lock() (io.Closer, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.locked {
		return nil, fmt.Errorf("backend: %s is already in use by another store instance", b.name)
	}
	b.locked = true
	return &objLock{b: b}, nil
}

// List implements Backend.
func (b *Object) List(prefix string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var names []string
	for name := range b.objects {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// objFile is a handle onto one object. The handle stays valid after the
// name is removed or replaced (inode semantics): it references the
// object, not the name.
type objFile struct {
	o        *object
	writable bool
}

func (f *objFile) ReadAt(p []byte, off int64) (int, error) { return f.o.readAt(p, off) }
func (f *objFile) Size() (int64, error)                    { return f.o.size(), nil }
func (f *objFile) Close() error                            { return nil }

func (f *objFile) WriteAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, fmt.Errorf("backend: handle is read-only")
	}
	o := f.o
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.sealed {
		return 0, ErrSealed
	}
	if off < 0 {
		return 0, fmt.Errorf("backend: negative offset %d", off)
	}
	if end := off + int64(len(p)); end > int64(len(o.data)) {
		grown := make([]byte, end)
		copy(grown, o.data)
		o.data = grown
	}
	copy(o.data[off:], p)
	return len(p), nil
}

func (f *objFile) Truncate(size int64) error {
	if !f.writable {
		return fmt.Errorf("backend: handle is read-only")
	}
	o := f.o
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.sealed {
		return ErrSealed
	}
	if size < 0 {
		return fmt.Errorf("backend: negative size %d", size)
	}
	if size <= int64(len(o.data)) {
		o.data = o.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, o.data)
	o.data = grown
	return nil
}

// Sync is a no-op: memory is as durable as this backend gets. Chaos
// wrappers interpose here to model crash points.
func (f *objFile) Sync() error { return nil }

// Seal implements File: the object becomes immutable.
func (f *objFile) Seal() error {
	f.o.mu.Lock()
	f.o.sealed = true
	f.o.mu.Unlock()
	return nil
}

// Create implements Backend.
func (b *Object) Create(name string, preallocBytes int64) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o := &object{}
	b.objects[name] = o
	return &objFile{o: o, writable: true}, nil
}

// OpenRW implements Backend. Recovery may rewrite a sealed segment's
// header and truncate its torn tail, so the seal is lifted: reopening
// for recovery is the one sanctioned way back to mutability.
func (b *Object) OpenRW(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objects[name]
	if !ok {
		return nil, fmt.Errorf("backend: %s: %w", name, errNotExist)
	}
	o.mu.Lock()
	o.sealed = false
	o.mu.Unlock()
	return &objFile{o: o, writable: true}, nil
}

// OpenRead implements Backend.
func (b *Object) OpenRead(name string) (ReadFile, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objects[name]
	if !ok {
		return nil, fmt.Errorf("backend: %s: %w", name, errNotExist)
	}
	return &objFile{o: o}, nil
}

// Remove implements Backend. Handles opened before the remove keep
// reading the object's bytes.
func (b *Object) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.objects[name]; !ok {
		return fmt.Errorf("backend: %s: %w", name, errNotExist)
	}
	delete(b.objects, name)
	return nil
}

// Rename implements Backend: the new name atomically references the old
// name's object.
func (b *Object) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	o, ok := b.objects[oldName]
	if !ok {
		return fmt.Errorf("backend: %s: %w", oldName, errNotExist)
	}
	delete(b.objects, oldName)
	b.objects[newName] = o
	return nil
}

// Location implements Backend.
func (b *Object) Location() string { return b.name }

// Clone deep-copies the namespace: every object's bytes and seal state
// at this instant, with the store lock released. A store opened over
// the clone recovers exactly what a process crash at this instant would
// have left. The chaos suite snapshots after every mutating operation
// to test each tier-transition boundary.
func (b *Object) Clone() *Object {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := NewObject()
	for name, o := range b.objects {
		o.mu.RLock()
		c.objects[name] = &object{data: append([]byte(nil), o.data...), sealed: o.sealed}
		o.mu.RUnlock()
	}
	return c
}

var errNotExist = errors.New("object does not exist")

// IsNotExist reports whether err is any backend's "no such file" —
// fs.ErrNotExist from the local backend or the object backend's own.
func IsNotExist(err error) bool {
	return errors.Is(err, errNotExist) || errors.Is(err, fs.ErrNotExist)
}

var _ Backend = (*Object)(nil)
