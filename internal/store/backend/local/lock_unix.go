//go:build unix

package local

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the advisory-lock marker inside a store directory. It
// never matches the seg-%08d.seg pattern, so recovery ignores it.
const lockFileName = "LOCK"

// lockDir takes an exclusive flock(2) on dir/LOCK for the lifetime of a
// Store. Recovery truncates and deletes files, and appends track
// in-memory offsets, so two Store instances over one directory — say a
// btrace-replay run pointed at a directory a long-lived btrace-serve
// already holds — would corrupt it. The kernel drops the lock when the
// holder exits, so a crash never leaves the directory wedged.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already in use by another store instance (flock: %w)", dir, err)
	}
	return f, nil
}
