// Package local implements the store backend over a local directory:
// one file per segment, flock-guarded exclusivity, fallocate
// preallocation where the platform has it. This is the production path
// — it is exactly the direct-file I/O the store always did, behind the
// backend contract. All of the repository's os.File segment I/O lives
// here.
package local

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"btrace/internal/store/backend"
)

// Local is a directory-backed Backend.
type Local struct {
	dir string
}

// New opens (creating if necessary) dir as a Local backend.
func New(dir string) (*Local, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Local{dir: dir}, nil
}

// Dir returns the backing directory.
func (b *Local) Dir() string { return b.dir }

// Location implements backend.Backend.
func (b *Local) Location() string { return b.dir }

// Lock implements backend.Backend via an exclusive flock on dir/LOCK
// (lock_unix.go / lock_other.go).
func (b *Local) Lock() (io.Closer, error) { return lockDir(b.dir) }

// List implements backend.Backend. The LOCK marker never matches a
// segment-name prefix, but filter it anyway so a "" prefix listing is
// exactly the segment namespace.
func (b *Local) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		name := de.Name()
		if name == lockFileName || de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// file wraps os.File with the File contract's seal latch. The latch is
// in-process only: on disk a sealed segment is marked in its header,
// and recovery (OpenRW) is the sanctioned way back to mutability.
type file struct {
	f      *os.File
	sealed atomic.Bool
}

func (f *file) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *file) Close() error                            { return f.f.Close() }

func (f *file) Size() (int64, error) {
	fi, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if f.sealed.Load() {
		return 0, backend.ErrSealed
	}
	return f.f.WriteAt(p, off)
}

func (f *file) Truncate(size int64) error {
	if f.sealed.Load() {
		return backend.ErrSealed
	}
	return f.f.Truncate(size)
}

func (f *file) Sync() error { return f.f.Sync() }

func (f *file) Seal() error {
	f.sealed.Store(true)
	return nil
}

// Create implements backend.Backend.
func (b *Local) Create(name string, preallocBytes int64) (backend.File, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	preallocate(f, preallocBytes)
	return &file{f: f}, nil
}

// OpenRW implements backend.Backend.
func (b *Local) OpenRW(name string) (backend.File, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{f: f}, nil
}

// OpenRead implements backend.Backend.
func (b *Local) OpenRead(name string) (backend.ReadFile, error) {
	f, err := os.Open(filepath.Join(b.dir, name))
	if err != nil {
		return nil, err
	}
	return &file{f: f}, nil
}

// Remove implements backend.Backend.
func (b *Local) Remove(name string) error {
	return os.Remove(filepath.Join(b.dir, name))
}

// Rename implements backend.Backend (atomic on POSIX).
func (b *Local) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(b.dir, oldName), filepath.Join(b.dir, newName))
}

var _ backend.Backend = (*Local)(nil)
