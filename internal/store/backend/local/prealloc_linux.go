//go:build linux

package local

import (
	"os"
	"syscall"
)

// preallocate reserves size bytes of disk for f up front, so the write
// path's WriteAt calls land in already-reserved extents instead of
// allocating blocks (and joining a journal transaction) as the file
// grows. Best effort: filesystems without fallocate just grow the file
// the usual way, and the seal path truncates any unused tail.
func preallocate(f *os.File, size int64) {
	if size > 0 {
		syscall.Fallocate(int(f.Fd()), 0, 0, size)
	}
}
