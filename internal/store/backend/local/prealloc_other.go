//go:build !linux

package local

import "os"

// preallocate is a no-op where fallocate is unavailable; segments grow
// on demand exactly as before.
func preallocate(*os.File, int64) {}
