//go:build !unix

package local

import (
	"os"
	"path/filepath"
)

const lockFileName = "LOCK"

// lockDir on platforms without flock(2) only creates the marker file;
// inter-process exclusion is advisory-by-convention there.
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
}
