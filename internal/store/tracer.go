// Tracer adapter: exposes a Store through the tracer.Tracer interface so
// the tracertest conformance suite — the contract every in-memory tracer
// in this repository satisfies — also runs against disk. Retention by
// MaxBytes stands in for overwrite-oldest: deleting whole oldest
// segments keeps the newest records and never opens interior gaps for a
// single stamp-ordered producer.
package store

import (
	"sort"

	"btrace/internal/tracer"
)

// Tracer adapts a Store to tracer.Tracer. Unlike the in-memory tracers
// it persists every write; ReadAll and cursors read back from disk.
type Tracer struct {
	st     *Store
	budget int
	// queryWorkers > 0 routes cursors through QueryParallel with that
	// many scan workers; 0 keeps the sequential cursor.
	queryWorkers int
}

// NewTracer opens a store-backed tracer in dir with a total on-disk
// budget of totalBytes (enforced by retention, whole segments at a
// time).
func NewTracer(dir string, totalBytes int) (*Tracer, error) {
	st, err := Open(dir, Config{
		SegmentBytes: int64(totalBytes) / 8,
		MaxBytes:     int64(totalBytes),
	})
	if err != nil {
		return nil, err
	}
	return &Tracer{st: st, budget: totalBytes}, nil
}

// Store returns the underlying store.
func (t *Tracer) Store() *Store { return t.st }

// UseParallelQueries makes NewCursor and ReadAll scan segments with a
// parallel pruned cursor (workers <= 0 selects DefaultQueryWorkers).
func (t *Tracer) UseParallelQueries(workers int) {
	if workers <= 0 {
		workers = DefaultQueryWorkers
	}
	t.queryWorkers = workers
}

// Name implements tracer.Tracer.
func (t *Tracer) Name() string { return "store" }

// Write implements tracer.Tracer; the Proc is unused (the entry already
// carries its core and thread identity).
func (t *Tracer) Write(_ tracer.Proc, e *tracer.Entry) error {
	return t.st.Append(e)
}

// ReadAll implements tracer.Tracer: a full drain of the store, sorted by
// stamp (segments hold append order, which concurrent producers
// interleave arbitrarily).
func (t *Tracer) ReadAll() ([]tracer.Entry, error) {
	cur := t.NewCursor()
	defer cur.Close()
	es, err := tracer.Drain(cur, 1024)
	if err != nil {
		return nil, err
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Stamp < es[j].Stamp })
	return es, nil
}

// NewCursor implements tracer.CursorSource.
func (t *Tracer) NewCursor() tracer.Cursor {
	if t.queryWorkers > 0 {
		return t.st.QueryParallel(Query{}, t.queryWorkers)
	}
	return t.st.NewCursor()
}

// TotalBytes implements tracer.Tracer.
func (t *Tracer) TotalBytes() int { return t.budget }

// Stats implements tracer.Tracer.
func (t *Tracer) Stats() tracer.Stats {
	ss := t.st.Stats()
	return tracer.Stats{
		Writes:       ss.Appends,
		BytesWritten: ss.BytesAppended,
		Overwritten:  ss.EventsRetired,
	}
}

// Reset implements tracer.Tracer.
func (t *Tracer) Reset() { t.st.Reset() }

// Close seals and closes the underlying store.
func (t *Tracer) Close() error { return t.st.Close() }

var (
	_ tracer.Tracer       = (*Tracer)(nil)
	_ tracer.CursorSource = (*Tracer)(nil)
)
