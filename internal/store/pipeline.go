// Write pipeline: the staging arena, the dedicated writer goroutine and
// the background maintenance goroutine that together take the write
// syscall, fsync and retention off the producers' critical path.
//
// Producers (Append/AppendEntries) encode frames into a double-buffered
// staging arena under a short lock and wait for the writer to apply
// them — visibility still means "readable by cursors" — while the
// writer goroutine swaps the arena out (producers refill the spare
// immediately) and drains it with one WriteAt per segment stretch.
// Durability is a group commit: one fsync covers every byte applied
// since the previous commit window. SyncEveryAppend waiters, Sync
// callers, CommitEvery ticks and the CommitBytes threshold all
// piggyback on the same fsync instead of paying one each. Seal
// finalization — header rewrite, preallocation trim, retention — runs
// on the maintenance goroutine, so rotation costs the append path
// nothing but a queue push; the sealed file's own fsync is deferred to
// the next commit window too (parked, bounded by maxParkedSeals), so a
// store with no durability demand pays no fsync at all in steady state.
//
// Lock order: the writer takes pipe.mu, releases it, then takes st.mu
// (writeChunk) — never both. rotateActiveLocked enqueues under st.mu →
// maint.mu; the maintenance loop releases maint.mu before taking st.mu,
// so there is no cycle.
package store

import (
	"fmt"
	"sync"
	"time"

	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// maxSealBacklog caps how many rotated segments may await finalization
// before the writer stalls. It bounds the maintenance queue without
// ever making a producer wait on it directly (the writer waits, between
// chunks, with no locks held).
const maxSealBacklog = 64

// maxParkedSeals caps how many sealed files may sit with their fsync
// deferred to the next commit window. Past the cap the maintenance
// goroutine drains them itself, so the window of sealed-but-not-durable
// data stays bounded even when no commit policy is configured.
const maxParkedSeals = 64

// parkedSeal is a sealed segment file awaiting its deferred fsync.
type parkedSeal struct {
	seg *segment
	f   backend.File
}

// stagedEntry is the per-frame metadata the writer needs to fold a
// staged frame into segment metadata without re-decoding it.
type stagedEntry struct {
	stamp uint64
	ts    uint64
	size  uint32
	core  uint8
	cat   uint8
}

// pipeline is the staging half of the write path. All fields are
// guarded by mu.
type pipeline struct {
	mu    sync.Mutex
	cond  sync.Cond // producers and waiters: tickets advanced / space freed
	wcond sync.Cond // writer: work arrived

	// buf/metas is the arena producers stage into; spare* is the drained
	// pair the writer hands back after each swap (double buffering).
	buf        []byte
	metas      []stagedEntry
	spareBuf   []byte
	spareMetas []stagedEntry

	// Tickets. Each staged batch takes staged+1; a batch is visible once
	// written >= its ticket and durable once synced >= its ticket.
	staged  uint64
	written uint64
	synced  uint64

	syncWant   uint64 // newest ticket with a waiter demanding durability
	forceSync  bool   // Sync(): run a commit even with no new bytes
	flushNow   bool   // CommitEvery timer fired with bytes outstanding
	timerArmed bool
	unsynced   int64 // bytes applied since the last group commit

	sealReqs  uint64 // rotations requested by Seal()
	sealsDone uint64

	err    error // sticky write-path failure; fails all later appends
	closed bool
}

// appendPipelined is the producer side of the write path: encode es
// into the staging arena under pipe.mu, wake the writer, and (when wait
// is set) block until the batch is applied — and, when sync is set,
// until the group commit covering it has fsynced.
//
// An entry that cannot encode (oversized payload) fails the batch at
// that entry; the frames staged before it still go out, matching the
// historical partial-batch semantics.
func (st *Store) appendPipelined(es []tracer.Entry, sync, wait bool) error {
	if len(es) == 0 {
		return nil
	}
	start := time.Now()
	p := &st.pipe
	p.mu.Lock()
	for int64(len(p.buf)) >= st.cfg.MaxStagedBytes && p.err == nil && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	var encErr error
	staged := 0
	for i := range es {
		var err error
		if p.buf, err = encodeFrame(p.buf, &es[i]); err != nil {
			encErr = err
			break
		}
		p.metas = append(p.metas, stagedEntry{
			stamp: es[i].Stamp,
			ts:    es[i].TS,
			size:  uint32(FrameSize(&es[i])),
			core:  es[i].Core,
			cat:   es[i].Category,
		})
		staged++
	}
	if staged == 0 {
		p.mu.Unlock()
		return encErr
	}
	p.staged++
	t := p.staged
	if sync && p.syncWant < t {
		p.syncWant = t
	}
	st.obs.stagedBytes.Set(int64(len(p.buf)))
	p.wcond.Signal()
	var err error
	if wait {
		for (p.written < t || (sync && p.synced < t)) && p.err == nil {
			p.cond.Wait()
		}
		if p.written < t || (sync && p.synced < t) {
			err = p.err
		}
	}
	p.mu.Unlock()
	elapsed := uint64(time.Since(start))
	st.obs.appendNs.Observe(elapsed)
	// The pressure EWMA normalizes per event: the overload gate's
	// AppendBudgetNs is a per-event budget, and a call's latency grows
	// with its batch size — one large AppendEntries is throughput, not
	// overload.
	if n := uint64(len(es)); n > 0 {
		per := elapsed / n
		if per == 0 {
			per = 1
		}
		st.ewmaAppend.observe(per)
	}
	st.obs.batchEvents.Observe(uint64(len(es)))
	if encErr != nil {
		return encErr
	}
	return err
}

// sealJob hands one rotated segment to the maintenance goroutine. The
// segment is already marked sealed and its frames are fully written;
// only the header rewrite, fsync, close and retention remain.
type sealJob struct {
	seg *segment
	f   backend.File
}

// maintenance is the background seal/retention worker's queue.
type maintenance struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []sealJob
	pending int // queued jobs plus the one mid-finalize
	err     error
	stopped bool
}

func (m *maintenance) enqueue(j sealJob) {
	m.mu.Lock()
	m.queue = append(m.queue, j)
	m.pending++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// waitIdle blocks until every enqueued seal has been finalized.
func (m *maintenance) waitIdle() {
	m.mu.Lock()
	for m.pending > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// waitBelow blocks until the backlog is under n jobs.
func (m *maintenance) waitBelow(n int) {
	m.mu.Lock()
	for m.pending >= n {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

func (m *maintenance) firstErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

func (m *maintenance) clearErr() {
	m.mu.Lock()
	m.err = nil
	m.mu.Unlock()
}

// startPipeline wires the condition variables and launches the writer
// and maintenance goroutines. Called by Open after the directory lock
// is held and before recovery (the goroutines idle until work arrives,
// so recovery's lock-free segment mutation cannot race them).
func (st *Store) startPipeline() {
	st.pipe.cond.L = &st.pipe.mu
	st.pipe.wcond.L = &st.pipe.mu
	st.maint.cond.L = &st.maint.mu
	st.writerWG.Add(1)
	st.maintWG.Add(1)
	go st.writerLoop()
	go st.maintLoop()
}

// hasWorkLocked reports whether the writer has anything to do. Called
// with pipe.mu held.
func (st *Store) hasWorkLocked() bool {
	p := &st.pipe
	return len(p.metas) > 0 || p.sealsDone < p.sealReqs || st.wantSyncLocked()
}

// wantSyncLocked reports whether a group commit should run now. Called
// with pipe.mu held, only considered once the staging arena is drained.
func (st *Store) wantSyncLocked() bool {
	p := &st.pipe
	if p.err != nil {
		return false
	}
	if p.forceSync || p.flushNow {
		return true
	}
	if p.syncWant > p.synced {
		return true
	}
	return st.cfg.CommitBytes > 0 && p.unsynced >= st.cfg.CommitBytes
}

// writerLoop drains the staging arena, executes rotation requests and
// runs group commits, in that priority order (a commit only runs once
// everything staged before it has been applied, which is what lets a
// single fsync cover every waiter's ticket).
func (st *Store) writerLoop() {
	defer st.writerWG.Done()
	p := &st.pipe
	p.mu.Lock()
	for {
		for !p.closed && !st.hasWorkLocked() {
			p.wcond.Wait()
		}
		if p.err != nil {
			// Dead write path: drop staged work so waiters fail fast
			// rather than queueing behind a disk that is gone.
			p.buf, p.metas = p.buf[:0], p.metas[:0]
			p.sealsDone = p.sealReqs
			p.forceSync, p.flushNow = false, false
			p.cond.Broadcast()
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.wcond.Wait()
			continue
		}
		if len(p.metas) > 0 {
			buf, metas, t := p.buf, p.metas, p.staged
			p.buf, p.metas = p.spareBuf[:0], p.spareMetas[:0]
			st.obs.stagedBytes.Set(0)
			p.cond.Broadcast() // arena empty again: unblock backpressured producers
			p.mu.Unlock()
			// Throttle on the seal backlog with no locks held; the
			// maintenance goroutine needs st.mu to make progress.
			st.maint.waitBelow(maxSealBacklog)
			err := st.writeChunk(buf, metas)
			p.mu.Lock()
			p.spareBuf, p.spareMetas = buf, metas
			if err != nil {
				if p.err == nil {
					p.err = err
				}
			} else {
				p.written = t
				p.unsynced += int64(len(buf))
				if st.cfg.CommitEvery > 0 && !p.timerArmed {
					p.timerArmed = true
					time.AfterFunc(st.cfg.CommitEvery, st.commitTick)
				}
			}
			p.cond.Broadcast()
			continue
		}
		if p.sealsDone < p.sealReqs {
			p.mu.Unlock()
			st.mu.Lock()
			err := st.rotateActiveLocked()
			st.publishObsLocked()
			st.mu.Unlock()
			p.mu.Lock()
			if err != nil && p.err == nil {
				p.err = err
			}
			p.sealsDone++
			p.cond.Broadcast()
			continue
		}
		if st.wantSyncLocked() {
			w := p.written
			p.forceSync, p.flushNow = false, false
			p.unsynced = 0
			p.mu.Unlock()
			// The commit must cover every byte applied so far: wait for
			// in-flight seal finalizations, fsync the sealed files parked
			// since the last window, then the active remainder with one
			// fsync here.
			st.maint.waitIdle()
			err := st.drainParked()
			if serr := st.syncActiveFile(); err == nil {
				err = serr
			}
			if merr := st.maint.firstErr(); err == nil {
				err = merr
			}
			st.obs.groupCommits.Add(1)
			p.mu.Lock()
			if err != nil && p.err == nil {
				p.err = err
			}
			if p.synced < w {
				p.synced = w
			}
			p.cond.Broadcast()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
	}
}

// commitTick is the CommitEvery timer callback: request a commit if
// bytes accumulated since the last one.
func (st *Store) commitTick() {
	p := &st.pipe
	p.mu.Lock()
	p.timerArmed = false
	if p.unsynced > 0 && !p.closed && p.err == nil {
		p.flushNow = true
		p.wcond.Signal()
	}
	p.mu.Unlock()
}

// syncActiveFile fsyncs the active segment (if any) under st.mu.
func (st *Store) syncActiveFile() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active == nil {
		return nil
	}
	return st.syncActive()
}

// writeChunk applies one drained staging arena to the segment files:
// the longest run of frames that fits the active segment goes out in a
// single WriteAt (the vectored write), rotating between runs exactly
// like the historical locked append path did.
func (st *Store) writeChunk(buf []byte, metas []stagedEntry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	pos := 0
	for i := 0; i < len(metas); {
		seg := st.activeSeg()
		if seg == nil {
			var err error
			if seg, err = st.newSegmentLocked(); err != nil {
				return err
			}
		}
		// Take the longest run of frames that fits the active segment; a
		// frame that fits no segment on its own still goes out alone.
		runBytes := 0
		j := i
		for j < len(metas) {
			fs := int(metas[j].size)
			over := seg.size+int64(runBytes+fs) > st.cfg.SegmentBytes
			if over && (seg.meta.count > 0 || runBytes > 0) {
				break
			}
			runBytes += fs
			j++
		}
		if runBytes == 0 {
			// Nothing fit: rotate and retry the same frame.
			if err := st.rotateActiveLocked(); err != nil {
				return err
			}
			continue
		}
		n, err := st.active.WriteAt(buf[pos:pos+runBytes], seg.size)
		if n < runBytes {
			// Torn in-process write: cut the partial frame immediately so
			// readers (and a later reopen) only ever see whole frames.
			st.active.Truncate(seg.size)
			if err == nil {
				err = fmt.Errorf("store: short write (%d of %d bytes)", n, runBytes)
			}
			return err
		}
		off := seg.size
		for ; i < j; i++ {
			m := &metas[i]
			if seg.meta.count%indexStride == 0 {
				seg.sparse = append(seg.sparse, indexEntry{stamp: m.stamp, off: off})
			}
			seg.meta.observeStaged(m)
			off += int64(m.size)
			st.stats.Appends++
			st.stats.BytesAppended += uint64(m.size)
		}
		pos += runBytes
		seg.size = off
		seg.rawSize = off
		if seg.size >= st.cfg.SegmentBytes {
			if err := st.rotateActiveLocked(); err != nil {
				return err
			}
		}
	}
	st.publishObsLocked()
	return nil
}

// rotateActiveLocked retires the active segment from the write path:
// mark it sealed (it will never grow again, and cursors may treat its
// size as final) and hand the header rewrite + fsync + close + retention
// to the maintenance goroutine. Called with st.mu held.
func (st *Store) rotateActiveLocked() error {
	seg := st.activeSeg()
	if seg == nil {
		return nil
	}
	f := st.active
	st.active = nil
	seg.sealed = true
	st.stats.Seals++
	st.maint.enqueue(sealJob{seg: seg, f: f})
	return nil
}

// maintLoop finalizes rotated segments off the append path.
func (st *Store) maintLoop() {
	defer st.maintWG.Done()
	m := &st.maint
	m.mu.Lock()
	for {
		for len(m.queue) == 0 && !m.stopped {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		job := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		err := st.finalizeSeal(job)
		m.mu.Lock()
		m.pending--
		if err != nil && m.err == nil {
			m.err = err
		}
		m.cond.Broadcast()
	}
}

// finalizeSeal completes one rotation: rewrite the header with the real
// metadata, trim the preallocated tail, park the file for its deferred
// fsync and run retention. The fsync itself belongs to the next commit
// window (group commit covers sealed and active bytes alike); past
// maxParkedSeals the maintenance goroutine drains the backlog here.
func (st *Store) finalizeSeal(j sealJob) error {
	hdr := make([]byte, headerSize)
	// The metadata is final once sealed, but it was written under st.mu;
	// snapshot it under the same lock for the race detector's benefit.
	st.mu.Lock()
	encodeHeader(hdr, &j.seg.meta, j.seg.coversThrough, true)
	size := j.seg.size
	st.mu.Unlock()
	var err error
	if _, werr := j.f.WriteAt(hdr, 0); werr != nil {
		err = werr
	}
	if terr := j.f.Truncate(size); err == nil && terr != nil {
		err = terr
	}
	// The contents are final: latch the backend seal (the object
	// backend's put-on-seal commit; a write-bug tripwire on local).
	if serr := j.f.Seal(); err == nil && serr != nil {
		err = serr
	}
	if st.syncPolicyActive() {
		// A commit policy is running: fsync the sealed file here, off the
		// writer's critical path, so commit windows find it already
		// durable instead of paying the fsync serially.
		start := time.Now()
		serr := j.f.Sync()
		st.noteFsync(uint64(time.Since(start)))
		if err == nil {
			err = serr
		}
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		st.mu.Lock()
		st.enforceRetentionLocked()
		st.publishObsLocked()
		st.mu.Unlock()
		return err
	}
	st.mu.Lock()
	st.parked = append(st.parked, parkedSeal{seg: j.seg, f: j.f})
	overCap := len(st.parked) > maxParkedSeals
	st.enforceRetentionLocked()
	st.publishObsLocked()
	st.mu.Unlock()
	if overCap {
		if derr := st.drainParked(); err == nil {
			err = derr
		}
	}
	return err
}

// syncPolicyActive reports whether the store has a standing durability
// policy. With one active, sealed files are fsynced eagerly on the
// maintenance goroutine; without one, their fsync is parked until a
// commit window (Sync, Seal, Close) or the maxParkedSeals cap asks for
// durability.
func (st *Store) syncPolicyActive() bool {
	return st.cfg.SyncEveryAppend || st.cfg.CommitEvery > 0 || st.cfg.CommitBytes > 0
}

// drainParked fsyncs and closes every sealed file parked since the last
// commit window. Retired segments (deleted by retention or Reset) are
// closed without the fsync — their data is gone. Callers may race; the
// snapshot-and-clear under st.mu hands each file to exactly one drainer.
func (st *Store) drainParked() error {
	st.mu.Lock()
	parked := st.parked
	st.parked = nil
	skip := make([]bool, len(parked))
	for i, ps := range parked {
		skip[i] = ps.seg.retired
	}
	st.mu.Unlock()
	var err error
	for i, ps := range parked {
		if !skip[i] {
			start := time.Now()
			serr := ps.f.Sync()
			st.noteFsync(uint64(time.Since(start)))
			if err == nil {
				err = serr
			}
		}
		if cerr := ps.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// stopMaintenance drains the maintenance queue and joins the goroutine.
// Must only be called after the writer goroutine has exited (nothing
// may enqueue concurrently).
func (st *Store) stopMaintenance() {
	m := &st.maint
	m.mu.Lock()
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	st.maintWG.Wait()
}
