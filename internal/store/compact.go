// Compaction: rotation under a small SegmentBytes (or frequent seals
// from the collector's spill path) leaves runs of small sealed segments,
// each costing a file handle and an index entry per query. Compact
// merges adjacent small sealed segments into one, copying the already
// checksummed frames verbatim.
//
// Crash safety: the merged file is written to a .tmp name, fsynced, then
// renamed over the first source segment (atomic on POSIX), and only then
// are the remaining sources deleted. The merged header records the
// highest source seq it consumed (coversThrough), so a crash between the
// rename and the deletes leaves sources that Open can identify exactly —
// by seq, not by heuristic — and delete (see recoverSegment).
package store

import (
	"fmt"
	"io"
	"os"
)

// compactThreshold: only segments smaller than SegmentBytes/2 are
// considered small enough to merge.
func (st *Store) compactThreshold() int64 { return st.cfg.SegmentBytes / 2 }

// Compact merges adjacent runs of small sealed segments. It returns the
// number of source segments consumed.
func (st *Store) Compact() (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	merged := 0
	for i := 0; i < len(st.segs); {
		run := st.runAt(i)
		if run < 2 {
			i++
			continue
		}
		if err := st.mergeRunLocked(i, run); err != nil {
			return merged, err
		}
		merged += run
		i++ // the merged segment now sits at i; look past it
	}
	if merged > 0 {
		st.stats.Compactions++
		st.stats.SegmentsCompacted += uint64(merged)
	}
	st.publishObsLocked()
	return merged, nil
}

// runAt returns the length of the longest mergeable run starting at i:
// adjacent sealed segments, each small, whose combined payload stays
// within SegmentBytes.
func (st *Store) runAt(i int) int {
	small := st.compactThreshold()
	var total int64
	n := 0
	for j := i; j < len(st.segs); j++ {
		s := st.segs[j]
		if !s.sealed || s.size >= small {
			break
		}
		body := s.size - headerSize
		if n > 0 && total+body+headerSize > st.cfg.SegmentBytes {
			break
		}
		total += body
		n++
	}
	return n
}

// mergeRunLocked merges segs[i:i+run] into a single segment that keeps
// the first source's seq and path.
func (st *Store) mergeRunLocked(i, run int) error {
	first := st.segs[i]
	sources := st.segs[i : i+run]
	tmpPath := first.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}

	m := &segment{seq: first.seq, coversThrough: sources[run-1].coversThrough,
		path: first.path, sealed: true}
	if _, err := tmp.Write(make([]byte, headerSize)); err != nil {
		return cleanup(err)
	}
	off := int64(headerSize)
	for _, s := range sources {
		src, err := os.Open(s.path)
		if err != nil {
			return cleanup(err)
		}
		// Copy the frames verbatim (they are already checksummed), then
		// merge the metadata and rebase the sparse index.
		if _, err := src.Seek(headerSize, io.SeekStart); err != nil {
			src.Close()
			return cleanup(err)
		}
		n, err := io.Copy(tmp, io.LimitReader(src, s.size-headerSize))
		src.Close()
		if err != nil {
			return cleanup(err)
		}
		if n != s.size-headerSize {
			return cleanup(fmt.Errorf("store: compact copied %d of %d bytes from %s",
				n, s.size-headerSize, s.path))
		}
		for _, ie := range s.sparse {
			m.sparse = append(m.sparse, indexEntry{stamp: ie.stamp, off: ie.off - headerSize + off})
		}
		mergeMeta(&m.meta, &s.meta)
		off += n
	}
	m.size = off
	hdr := make([]byte, headerSize)
	encodeHeader(hdr, &m.meta, m.coversThrough, true)
	if _, err := tmp.WriteAt(hdr, 0); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	// Commit point: the merged segment replaces the first source.
	if err := os.Rename(tmpPath, first.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	for _, s := range sources[1:] {
		os.Remove(s.path)
	}
	st.segs = append(st.segs[:i+1], st.segs[i+run:]...)
	st.segs[i] = m
	return nil
}

// mergeMeta folds src into dst (append order: dst precedes src).
func mergeMeta(dst, src *segmentMeta) {
	if src.count == 0 {
		return
	}
	if dst.count == 0 {
		*dst = *src
		return
	}
	// Ordered survives only if the concatenation stays non-decreasing.
	dst.ordered = dst.ordered && src.ordered && src.baseStamp >= dst.maxStamp
	if src.baseStamp < dst.baseStamp {
		dst.baseStamp = src.baseStamp
	}
	if src.maxStamp > dst.maxStamp {
		dst.maxStamp = src.maxStamp
	}
	if src.minTS < dst.minTS {
		dst.minTS = src.minTS
	}
	if src.maxTS > dst.maxTS {
		dst.maxTS = src.maxTS
	}
	dst.coreBits |= src.coreBits
	dst.catBits |= src.catBits
	dst.count += src.count
}
