// Compaction (hot → compacted): rotation under a small SegmentBytes (or
// frequent seals from the collector's spill path) leaves runs of small
// sealed segments, each costing a file handle and an index entry per
// query. Compact merges adjacent small sealed segments into one, copying
// the already checksummed frames verbatim.
//
// Crash safety: the merged file is written to a .tmp name, fsynced, then
// renamed over the first source segment (the backend guarantees the
// rename is atomic with respect to a crash), and only then are the
// remaining sources deleted. The merged header records the highest
// source seq it consumed (coversThrough), so a crash between the rename
// and the deletes leaves sources that Open can identify exactly — by
// seq, not by heuristic — and delete (see recoverSegment).
package store

import "fmt"

// Compact merges adjacent runs of small sealed segments, as selected by
// the strategy. It returns the number of source segments consumed.
func (st *Store) Compact() (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	merged := 0
	from := 0
	for {
		view := st.blocklistLocked()
		start, n := st.cfg.Strategy.MergeRun(view[from:], st.strategyCfgLocked())
		if n < 2 {
			break
		}
		start += from
		if err := st.mergeRunLocked(start, n); err != nil {
			if merged > 0 {
				st.stats.Compactions++
				st.stats.SegmentsCompacted += uint64(merged)
			}
			st.publishObsLocked()
			return merged, err
		}
		merged += n
		from = start + 1 // the merged segment now sits at start; look past it
	}
	if merged > 0 {
		st.stats.Compactions++
		st.stats.SegmentsCompacted += uint64(merged)
	}
	st.publishObsLocked()
	return merged, nil
}

// mergeRunLocked merges segs[i:i+run] into a single segment that keeps
// the first source's seq and name.
func (st *Store) mergeRunLocked(i, run int) error {
	first := st.segs[i]
	sources := st.segs[i : i+run]
	var total int64
	for _, s := range sources {
		total += s.size - headerSize
	}
	tmpName := first.name + ".tmp"
	tmp, err := st.be.Create(tmpName, headerSize+total)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		st.be.Remove(tmpName)
		return e
	}

	m := &segment{seq: first.seq, coversThrough: sources[run-1].coversThrough,
		name: first.name, tier: TierCompacted, sealed: true}
	if _, err := tmp.WriteAt(make([]byte, headerSize), 0); err != nil {
		return cleanup(err)
	}
	off := int64(headerSize)
	for _, s := range sources {
		src, err := st.be.OpenRead(s.name)
		if err != nil {
			return cleanup(err)
		}
		// Copy the frames verbatim (they are already checksummed), then
		// merge the metadata and rebase the sparse index.
		err = copyRange(tmp, off, src, headerSize, s.size-headerSize)
		src.Close()
		if err != nil {
			return cleanup(fmt.Errorf("store: compact %s: %w", s.name, err))
		}
		for _, ie := range s.sparse {
			m.sparse = append(m.sparse, indexEntry{stamp: ie.stamp, off: ie.off - headerSize + off})
		}
		mergeMeta(&m.meta, &s.meta)
		off += s.size - headerSize
	}
	m.size = off
	m.rawSize = off
	hdr := make([]byte, headerSize)
	encodeHeader(hdr, &m.meta, m.coversThrough, true)
	if _, err := tmp.WriteAt(hdr, 0); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Seal(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	// Commit point: the merged segment replaces the first source.
	if err := st.be.Rename(tmpName, first.name); err != nil {
		st.be.Remove(tmpName)
		return err
	}
	for _, s := range sources[1:] {
		st.be.Remove(s.name)
	}
	st.segs = append(st.segs[:i+1], st.segs[i+run:]...)
	st.segs[i] = m
	return nil
}

// copyRange copies n bytes from src at srcOff to dst at dstOff through
// a bounded buffer (the backend contract has positional I/O only).
func copyRange(dst interface {
	WriteAt(p []byte, off int64) (int, error)
}, dstOff int64, src interface {
	ReadAt(p []byte, off int64) (int, error)
}, srcOff, n int64) error {
	buf := make([]byte, min(n, int64(chunkSize)))
	for n > 0 {
		want := int64(len(buf))
		if want > n {
			want = n
		}
		r, err := src.ReadAt(buf[:want], srcOff)
		if int64(r) < want {
			if err == nil {
				err = fmt.Errorf("short read (%d of %d bytes)", r, want)
			}
			return err
		}
		if _, err := dst.WriteAt(buf[:want], dstOff); err != nil {
			return err
		}
		srcOff += want
		dstOff += want
		n -= want
	}
	return nil
}

// mergeMeta folds src into dst (append order: dst precedes src).
func mergeMeta(dst, src *segmentMeta) {
	if src.count == 0 {
		return
	}
	if dst.count == 0 {
		*dst = *src
		return
	}
	// Ordered survives only if the concatenation stays non-decreasing.
	dst.ordered = dst.ordered && src.ordered && src.baseStamp >= dst.maxStamp
	if src.baseStamp < dst.baseStamp {
		dst.baseStamp = src.baseStamp
	}
	if src.maxStamp > dst.maxStamp {
		dst.maxStamp = src.maxStamp
	}
	if src.minTS < dst.minTS {
		dst.minTS = src.minTS
	}
	if src.maxTS > dst.maxTS {
		dst.maxTS = src.maxTS
	}
	dst.coreBits |= src.coreBits
	dst.catBits |= src.catBits
	dst.count += src.count
}
