package store

import (
	"sync/atomic"
	"testing"

	"btrace/internal/btql"
	"btrace/internal/tracer"
)

// benchEntries builds n stamp-ordered events with small payloads, the
// shape the collector's spill path produces.
func benchEntries(n int) []tracer.Entry {
	es := make([]tracer.Entry, n)
	payload := []byte("0123456789abcdef")
	for i := range es {
		s := uint64(i + 1)
		es[i] = tracer.Entry{
			Stamp: s, TS: s * 800, Core: uint8(s % 8), TID: uint32(s % 32),
			Category: uint8(s % 6), Level: 2, Payload: payload,
		}
	}
	return es
}

// BenchmarkStoreAppend measures the durable append path in batches of
// 512 (the supervisor's default cursor batch), rotation included.
func BenchmarkStoreAppend(b *testing.B) {
	const batch = 512
	es := benchEntries(batch)
	st, err := Open(b.TempDir(), Config{SegmentBytes: 4 << 20, MaxBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	var next uint64
	b.SetBytes(int64(batch * FrameSize(&es[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range es {
			next++
			es[j].Stamp = next
			es[j].TS = next * 800
		}
		if err := st.AppendEntries(es); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAppendConcurrent measures the group-commit write path
// under contention: 8 producer goroutines stage 512-event batches into
// the shared arena while the writer goroutine drains with vectored
// writes. Per-goroutine stamp bases keep stamps unique without
// coordination.
func BenchmarkStoreAppendConcurrent(b *testing.B) {
	const batch = 512
	st, err := Open(b.TempDir(), Config{SegmentBytes: 4 << 20, MaxBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	proto := benchEntries(batch)
	b.SetBytes(int64(batch * FrameSize(&proto[0])))
	b.ReportAllocs()
	b.SetParallelism(8) // >= 8 goroutines even at GOMAXPROCS=1
	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := gid.Add(1) << 40
		es := benchEntries(batch)
		var next uint64
		for pb.Next() {
			for j := range es {
				next++
				es[j].Stamp = base | next
				es[j].TS = next * 800
			}
			if err := st.AppendEntries(es); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchQueryStore builds the shared fixture for the wide-query pair: a
// ~100k-record store spread over a dozen sealed segments.
func benchQueryStore(b *testing.B) *Store {
	b.Helper()
	st, err := Open(b.TempDir(), Config{SegmentBytes: 512 << 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.AppendEntries(benchEntries(100_000)); err != nil {
		b.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		b.Fatal(err)
	}
	if n := len(st.Segments()); n < 8 {
		b.Fatalf("fixture has %d segments, want >= 8", n)
	}
	return st
}

// drainCursor runs one full query to exhaustion, the shared inner loop
// of the wide-query pair.
func drainCursor(b *testing.B, cur tracer.Cursor, batch []tracer.Entry) int {
	n := 0
	for {
		m, _, err := cur.Next(batch)
		if err != nil {
			b.Fatal(err)
		}
		if m == 0 {
			break
		}
		n += m
	}
	if err := cur.Close(); err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkStoreQueryWide is the sequential baseline for
// BenchmarkStoreQueryParallel: one category filter drained across every
// segment of the fixture, per-op = one full query.
func BenchmarkStoreQueryWide(b *testing.B) {
	st := benchQueryStore(b)
	defer st.Close()
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := drainCursor(b, st.Query(Query{Categories: []uint8{2}}), batch)
		if n == 0 {
			b.Fatal("query returned no records")
		}
	}
}

// BenchmarkStoreQueryParallel runs the identical query through the
// parallel pruned cursor (pooled span reads, in-place decode, k-way
// merge over per-segment streams).
func BenchmarkStoreQueryParallel(b *testing.B) {
	st := benchQueryStore(b)
	defer st.Close()
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := drainCursor(b, st.QueryParallel(Query{Categories: []uint8{2}}, 4), batch)
		if n == 0 {
			b.Fatal("query returned no records")
		}
	}
}

// benchColdStore freezes the wide-query fixture: same 100k records, but
// every sealed segment except the newest is compressed into the cold
// tier. The acceptance contract is enforced here: the cold tier must
// shrink its raw bytes by at least 3x, or the fixture (and the paper
// claim it backs) is broken.
func benchColdStore(b *testing.B) *Store {
	b.Helper()
	st, err := Open(b.TempDir(), Config{SegmentBytes: 512 << 10, ColdAfterNs: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.AppendEntries(benchEntries(100_000)); err != nil {
		b.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		b.Fatal(err)
	}
	if _, err := st.CompactCold(); err != nil {
		b.Fatal(err)
	}
	ts := st.TierStats()
	cold, total := ts[TierCold], 0
	for _, t := range ts {
		total += t.Segments
	}
	if cold.Segments == 0 || cold.Segments*2 < total {
		b.Fatalf("fixture is not majority-cold: %+v", ts)
	}
	stats := st.Stats()
	if stats.ColdBytesWritten*3 > stats.ColdRawBytes {
		b.Fatalf("cold tier shrank only %.2fx, want >= 3x (%d of %d raw bytes)",
			float64(stats.ColdRawBytes)/float64(stats.ColdBytesWritten),
			stats.ColdBytesWritten, stats.ColdRawBytes)
	}
	b.ReportMetric(float64(stats.ColdRawBytes)/float64(stats.ColdBytesWritten), "shrink-x")
	return st
}

// BenchmarkColdQuery is BenchmarkStoreQueryParallel over the majority-
// cold fixture: the same wide category query now pays block pruning and
// DEFLATE decompression instead of raw span reads. The paper-facing
// contract (cold within 2x of all-hot, at >= 3x less disk) is gated by
// cmd/benchdiff against BenchmarkStoreQueryParallel in BENCH_store.json.
func BenchmarkColdQuery(b *testing.B) {
	st := benchColdStore(b)
	defer st.Close()
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := drainCursor(b, st.QueryParallel(Query{Categories: []uint8{2}}, 4), batch)
		if n == 0 {
			b.Fatal("query returned no records")
		}
	}
}

// selectiveBTQL is the benchmark query: a stamp range covering the
// newest ~10% of the fixture, narrowed to one TID. Its compiled hull
// prunes most cold blocks on the directory metadata alone, and the
// header-only predicate leaves every surviving block's payload section
// compressed.
const selectiveBTQL = `stamp >= 90001 && tid == 7`

// selectiveMatches is the ground truth for selectiveBTQL over
// benchEntries(100_000), computed from the generator rule.
func selectiveMatches() int {
	n := 0
	for s := uint64(90_001); s <= 100_000; s++ {
		if uint32(s%32) == 7 {
			n++
		}
	}
	return n
}

// benchParse compiles one BTQL source for the query benchmarks.
func benchParse(b *testing.B, src string) *btql.Query {
	b.Helper()
	q, err := btql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkQueryFullScan is the no-pushdown baseline for
// BenchmarkQuerySelectiveBTQL: drain every event of the majority-cold
// fixture (every block decompressed, payload sections included) and
// evaluate the selective predicate row by row, grep-style.
func BenchmarkQueryFullScan(b *testing.B) {
	st := benchColdStore(b)
	defer st.Close()
	pred := benchParse(b, selectiveBTQL).Predicate()
	want := selectiveMatches()
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := st.Query(Query{})
		n, matches := 0, 0
		for {
			m, _, err := cur.Next(batch)
			if err != nil {
				b.Fatal(err)
			}
			if m == 0 {
				break
			}
			n += m
			for j := 0; j < m; j++ {
				if pred.Match(&batch[j]) {
					matches++
				}
			}
		}
		cur.Close()
		if n != 100_000 || matches != want {
			b.Fatalf("full scan saw %d events, %d matches (want 100000, %d)", n, matches, want)
		}
	}
}

// BenchmarkQuerySelectiveBTQL runs the identical selection with the
// predicate pushed into the scan: the compiled stamp/TID hull prunes
// files and blocks from their directory metadata, and surviving v2
// blocks decode header columns only — payload sections stay compressed.
// cmd/benchdiff gates this at <= 0.2x of BenchmarkQueryFullScan
// within-run (the paper-facing >= 5x claim).
func BenchmarkQuerySelectiveBTQL(b *testing.B) {
	st := benchColdStore(b)
	defer st.Close()
	pred := benchParse(b, selectiveBTQL).Predicate()
	want := selectiveMatches()
	base := st.Stats()
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := drainCursor(b, st.Query(Query{Pred: pred}), batch)
		if n != want {
			b.Fatalf("selective query matched %d events, want %d", n, want)
		}
	}
	b.StopTimer()
	after := st.Stats()
	if after.BlocksPruned <= base.BlocksPruned {
		b.Fatalf("selective query pruned no cold blocks: %d -> %d",
			base.BlocksPruned, after.BlocksPruned)
	}
	b.ReportMetric(float64(after.BlocksPruned-base.BlocksPruned)/float64(b.N), "blocks-pruned/op")
}

// BenchmarkQueryAggregate measures the columnar aggregate executor: a
// BTQL count() over a header filter, folded from decoded columns
// without materializing a single tracer.Entry (payload sections are
// never inflated).
func BenchmarkQueryAggregate(b *testing.B) {
	st := benchColdStore(b)
	defer st.Close()
	bq := benchParse(b, `core == 2 | count()`)
	q := Query{Pred: bq.Predicate()}
	specs := []btql.AggSpec{*bq.Agg}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := st.Aggregate(q, specs)
		if err != nil {
			b.Fatal(err)
		}
		if res[0].Events != 100_000/8 {
			b.Fatalf("aggregate counted %d, want %d", res[0].Events, 100_000/8)
		}
	}
}

// BenchmarkCompactTier measures one full tier transition: freezing a
// freshly sealed ~20k-record store (frame verification, DEFLATE
// compression, block directory construction, atomic commit) per op.
func BenchmarkCompactTier(b *testing.B) {
	const events = 20_000
	es := benchEntries(events)
	b.SetBytes(int64(events * FrameSize(&es[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := Open(b.TempDir(), Config{SegmentBytes: 256 << 10, ColdAfterNs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.AppendEntries(es); err != nil {
			b.Fatal(err)
		}
		if err := st.Seal(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, err := st.CompactCold()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("nothing frozen")
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkStoreQuery measures an indexed stamp-range query (1k of 100k
// records) against a sealed multi-segment store, per-op = one full query.
func BenchmarkStoreQuery(b *testing.B) {
	const total = 100_000
	st, err := Open(b.TempDir(), Config{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	es := benchEntries(total)
	if err := st.AppendEntries(es); err != nil {
		b.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		b.Fatal(err)
	}
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(1 + (i*37)%(total-1000))
		cur := st.Query(Query{MinStamp: lo, MaxStamp: lo + 999})
		n := 0
		for {
			m, _, err := cur.Next(batch)
			if err != nil {
				b.Fatal(err)
			}
			if m == 0 {
				break
			}
			n += m
		}
		cur.Close()
		if n != 1000 {
			b.Fatalf("query returned %d records, want 1000", n)
		}
	}
}

// BenchmarkStoreScanOpen measures recovery cost: reopening (full scan +
// index rebuild) of a ~100k-record store.
func BenchmarkStoreScanOpen(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.AppendEntries(benchEntries(100_000)); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, Config{SegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if re.Events() != 100_000 {
			b.Fatalf("reopened store has %d events", re.Events())
		}
		re.Close()
	}
}
