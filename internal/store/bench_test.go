package store

import (
	"testing"

	"btrace/internal/tracer"
)

// benchEntries builds n stamp-ordered events with small payloads, the
// shape the collector's spill path produces.
func benchEntries(n int) []tracer.Entry {
	es := make([]tracer.Entry, n)
	payload := []byte("0123456789abcdef")
	for i := range es {
		s := uint64(i + 1)
		es[i] = tracer.Entry{
			Stamp: s, TS: s * 800, Core: uint8(s % 8), TID: uint32(s % 32),
			Category: uint8(s % 6), Level: 2, Payload: payload,
		}
	}
	return es
}

// BenchmarkStoreAppend measures the durable append path in batches of
// 512 (the supervisor's default cursor batch), rotation included.
func BenchmarkStoreAppend(b *testing.B) {
	const batch = 512
	es := benchEntries(batch)
	st, err := Open(b.TempDir(), Config{SegmentBytes: 4 << 20, MaxBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	var next uint64
	b.SetBytes(int64(batch * FrameSize(&es[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range es {
			next++
			es[j].Stamp = next
			es[j].TS = next * 800
		}
		if err := st.AppendEntries(es); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQuery measures an indexed stamp-range query (1k of 100k
// records) against a sealed multi-segment store, per-op = one full query.
func BenchmarkStoreQuery(b *testing.B) {
	const total = 100_000
	st, err := Open(b.TempDir(), Config{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	es := benchEntries(total)
	if err := st.AppendEntries(es); err != nil {
		b.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		b.Fatal(err)
	}
	batch := make([]tracer.Entry, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(1 + (i*37)%(total-1000))
		cur := st.Query(Query{MinStamp: lo, MaxStamp: lo + 999})
		n := 0
		for {
			m, _, err := cur.Next(batch)
			if err != nil {
				b.Fatal(err)
			}
			if m == 0 {
				break
			}
			n += m
		}
		cur.Close()
		if n != 1000 {
			b.Fatalf("query returned %d records, want 1000", n)
		}
	}
}

// BenchmarkStoreScanOpen measures recovery cost: reopening (full scan +
// index rebuild) of a ~100k-record store.
func BenchmarkStoreScanOpen(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.AppendEntries(benchEntries(100_000)); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, Config{SegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if re.Events() != 100_000 {
			b.Fatalf("reopened store has %d events", re.Events())
		}
		re.Close()
	}
}
