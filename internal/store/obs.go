package store

import (
	"runtime"
	"time"

	"btrace/internal/obs"
)

// storeObs mirrors the store's Stats (plus size/latency histograms and
// instantaneous gauges) into obs primitives. The store keeps its stats
// as a plain struct under st.mu; each public mutating operation folds
// the accumulated deltas into these atomic counters on its way out, so
// the /metrics scraper never needs st.mu and a collection pass can never
// deadlock against Close.
//
// storeObs is allocated separately from the Store and is what the
// registry's collector closure captures, keeping the Store finalizable.
type storeObs struct {
	appends       *obs.Counter
	bytesAppended *obs.Counter
	seals         *obs.Counter

	segmentsDeleted *obs.Counter
	eventsRetired   *obs.Counter

	compactions       *obs.Counter
	segmentsCompacted *obs.Counter

	coldCompactions  *obs.Counter
	segmentsFrozen   *obs.Counter
	coldBlocks       *obs.Counter
	coldBytesWritten *obs.Counter
	coldRawBytes     *obs.Counter
	compactorErrors  *obs.Counter
	orphansRemoved   *obs.Counter

	// bcache is read live at collect time: its counters advance on the
	// read path, which never runs publishObsLocked. Referencing the
	// cache (its own allocation, no back-pointer) keeps the Store
	// finalizable; Fold's final collect captures the closing values.
	bcache *blockCache

	// blocksPruned/payloadSkips advance on the read path too (cursors
	// and query workers increment them directly, like bcache's hits):
	// cold blocks rejected on header metadata alone, and v2 blocks whose
	// rows were scanned without ever inflating the payload column.
	blocksPruned *obs.Counter
	payloadSkips *obs.Counter

	recoveredTruncations *obs.Counter
	tornBytesDropped     *obs.Counter
	leftoverSegments     *obs.Counter
	headersRebuilt       *obs.Counter

	// groupCommits counts write-pipeline commit windows: each is one
	// fsync covering every batch staged since the previous window.
	groupCommits *obs.Counter

	// appendNs and fsyncNs are the store's two latencies of record: how
	// long a producer spends staging a batch and waiting for the writer
	// to apply it, and how long each fsync stalls.
	appendNs *obs.Histogram
	fsyncNs  *obs.Histogram
	// batchEvents is the AppendEntries batch-size distribution.
	batchEvents *obs.Histogram

	segments  obs.Gauge
	sizeBytes obs.Gauge
	events    obs.Gauge
	// stagedBytes is the staging arena's fill level at the last stage.
	stagedBytes obs.Gauge
	// Per-tier breakdowns of segments/sizeBytes, indexed by Tier.
	tierSegments [3]obs.Gauge
	tierBytes    [3]obs.Gauge
}

func newStoreObs() *storeObs {
	return &storeObs{
		appends:              obs.NewCounter(1),
		bytesAppended:        obs.NewCounter(1),
		seals:                obs.NewCounter(1),
		segmentsDeleted:      obs.NewCounter(1),
		eventsRetired:        obs.NewCounter(1),
		compactions:          obs.NewCounter(1),
		segmentsCompacted:    obs.NewCounter(1),
		coldCompactions:      obs.NewCounter(1),
		segmentsFrozen:       obs.NewCounter(1),
		coldBlocks:           obs.NewCounter(1),
		coldBytesWritten:     obs.NewCounter(1),
		coldRawBytes:         obs.NewCounter(1),
		compactorErrors:      obs.NewCounter(1),
		orphansRemoved:       obs.NewCounter(1),
		recoveredTruncations: obs.NewCounter(1),
		tornBytesDropped:     obs.NewCounter(1),
		leftoverSegments:     obs.NewCounter(1),
		headersRebuilt:       obs.NewCounter(1),
		groupCommits:         obs.NewCounter(1),
		blocksPruned:         obs.NewCounter(1),
		payloadSkips:         obs.NewCounter(1),
		appendNs:             obs.NewHistogram(obs.LatencyBounds),
		fsyncNs:              obs.NewHistogram(obs.LatencyBounds),
		batchEvents:          obs.NewHistogram(obs.SizeBounds),
	}
}

// collect emits the store's series. It runs under the registry lock and
// must not reference the Store (see type comment).
func (o *storeObs) collect(e *obs.Emitter) {
	e.Counter("btrace_store_appends_total", "events appended", o.appends.Load())
	e.Counter("btrace_store_appended_bytes_total", "frame bytes appended", o.bytesAppended.Load())
	e.Counter("btrace_store_seals_total", "segments sealed", o.seals.Load())
	e.Counter("btrace_store_segments_deleted_total", "segments removed by retention", o.segmentsDeleted.Load())
	e.Counter("btrace_store_events_retired_total", "events removed by retention", o.eventsRetired.Load())
	e.Counter("btrace_store_compactions_total", "compaction passes that merged segments", o.compactions.Load())
	e.Counter("btrace_store_segments_compacted_total", "source segments consumed by compaction", o.segmentsCompacted.Load())
	e.Counter("btrace_store_cold_compactions_total", "freeze passes that built cold files", o.coldCompactions.Load())
	e.Counter("btrace_store_segments_frozen_total", "row segments consumed by freezing", o.segmentsFrozen.Load())
	e.Counter("btrace_store_cold_blocks_total", "compressed cold blocks built", o.coldBlocks.Load())
	e.Counter("btrace_store_cold_bytes_written_total", "compressed bytes written to cold files", o.coldBytesWritten.Load())
	e.Counter("btrace_store_cold_raw_bytes_total", "uncompressed bytes frozen into cold files", o.coldRawBytes.Load())
	e.Counter("btrace_store_compactor_errors_total", "background compactor tick failures", o.compactorErrors.Load())
	e.Counter("btrace_store_orphans_removed_total", "unrecognized files removed at open", o.orphansRemoved.Load())
	hits, misses := o.bcache.counters()
	e.Counter("btrace_store_block_cache_hits_total", "cold block reads served from the decompressed-block cache", hits)
	e.Counter("btrace_store_block_cache_misses_total", "cold block reads that had to inflate", misses)
	e.Counter("btrace_store_blocks_pruned_total", "cold blocks skipped on header metadata alone", o.blocksPruned.Load())
	e.Counter("btrace_store_payload_skips_total", "columnar blocks scanned without inflating the payload column", o.payloadSkips.Load())
	e.Counter("btrace_store_recovered_truncations_total", "torn segment tails truncated at open", o.recoveredTruncations.Load())
	e.Counter("btrace_store_torn_bytes_dropped_total", "bytes cut by recovery truncations", o.tornBytesDropped.Load())
	e.Counter("btrace_store_leftover_segments_total", "interrupted-compaction leftovers deleted at open", o.leftoverSegments.Load())
	e.Counter("btrace_store_headers_rebuilt_total", "corrupt headers rebuilt at open", o.headersRebuilt.Load())
	e.Counter("btrace_store_group_commits_total", "write-pipeline group-commit fsync windows", o.groupCommits.Load())
	e.Histogram("btrace_store_append_ns", "append batch stage+apply latency", o.appendNs.Snapshot())
	e.Histogram("btrace_store_fsync_ns", "fsync latency", o.fsyncNs.Snapshot())
	e.Histogram("btrace_store_batch_events", "events per append batch", o.batchEvents.Snapshot())
	e.Gauge("btrace_store_segments", "live segments", float64(o.segments.Load()))
	e.Gauge("btrace_store_size_bytes", "total on-disk size", float64(o.sizeBytes.Load()))
	e.Gauge("btrace_store_events", "events currently held", float64(o.events.Load()))
	e.Gauge("btrace_store_staged_bytes", "staging arena fill at last stage", float64(o.stagedBytes.Load()))
	e.Gauge("btrace_store_tier_hot_segments", "segments in the hot tier", float64(o.tierSegments[TierHot].Load()))
	e.Gauge("btrace_store_tier_hot_bytes", "bytes in the hot tier", float64(o.tierBytes[TierHot].Load()))
	e.Gauge("btrace_store_tier_compacted_segments", "segments in the compacted tier", float64(o.tierSegments[TierCompacted].Load()))
	e.Gauge("btrace_store_tier_compacted_bytes", "bytes in the compacted tier", float64(o.tierBytes[TierCompacted].Load()))
	e.Gauge("btrace_store_tier_cold_segments", "cold block files", float64(o.tierSegments[TierCold].Load()))
	e.Gauge("btrace_store_tier_cold_bytes", "compressed bytes in the cold tier", float64(o.tierBytes[TierCold].Load()))
	e.Gauge("btrace_store_stores", "open stores", 1)
}

// publishObsLocked folds the stat deltas accumulated since the last
// publish into the counters and refreshes the gauges from the live
// segment list. Called with st.mu held, once per public mutating
// operation — never per event.
func (st *Store) publishObsLocked() {
	o := st.obs
	cur, last := st.stats, st.published
	o.appends.Add(cur.Appends - last.Appends)
	o.bytesAppended.Add(cur.BytesAppended - last.BytesAppended)
	o.seals.Add(cur.Seals - last.Seals)
	o.segmentsDeleted.Add(cur.SegmentsDeleted - last.SegmentsDeleted)
	o.eventsRetired.Add(cur.EventsRetired - last.EventsRetired)
	o.compactions.Add(cur.Compactions - last.Compactions)
	o.segmentsCompacted.Add(cur.SegmentsCompacted - last.SegmentsCompacted)
	o.recoveredTruncations.Add(cur.RecoveredTruncations - last.RecoveredTruncations)
	o.tornBytesDropped.Add(cur.TornBytesDropped - last.TornBytesDropped)
	o.leftoverSegments.Add(cur.LeftoverSegments - last.LeftoverSegments)
	o.headersRebuilt.Add(cur.HeadersRebuilt - last.HeadersRebuilt)
	o.coldCompactions.Add(cur.ColdCompactions - last.ColdCompactions)
	o.segmentsFrozen.Add(cur.SegmentsFrozen - last.SegmentsFrozen)
	o.coldBlocks.Add(cur.ColdBlocksBuilt - last.ColdBlocksBuilt)
	o.coldBytesWritten.Add(cur.ColdBytesWritten - last.ColdBytesWritten)
	o.coldRawBytes.Add(cur.ColdRawBytes - last.ColdRawBytes)
	o.compactorErrors.Add(cur.CompactorErrors - last.CompactorErrors)
	o.orphansRemoved.Add(cur.OrphansRemoved - last.OrphansRemoved)
	st.published = cur

	var size int64
	var events uint64
	var tierSegs, tierSize [3]int64
	for _, s := range st.segs {
		size += s.size
		events += s.meta.count
		tierSegs[s.tier]++
		tierSize[s.tier] += s.size
	}
	o.segments.Set(int64(len(st.segs)))
	o.sizeBytes.Set(size)
	o.events.Set(int64(events))
	for t := range tierSegs {
		o.tierSegments[t].Set(tierSegs[t])
		o.tierBytes[t].Set(tierSize[t])
	}
}

// syncActive fsyncs the active segment, timing the stall.
func (st *Store) syncActive() error {
	start := time.Now()
	err := st.active.Sync()
	st.noteFsync(uint64(time.Since(start)))
	return err
}

// registerObs wires the store's counters into the process-wide registry.
// Close folds them into the retired totals; the finalizer is the backstop
// for stores that are dropped without Close (Fold on an already-folded id
// is a no-op). The collector closure captures only the counters, never
// st, so registration does not defeat the finalizer.
func (st *Store) registerObs() {
	reg := obs.Default()
	st.obsID = reg.Register(st.obs.collect)
	runtime.SetFinalizer(st, func(s *Store) { reg.Fold(s.obsID) })
}
