package store

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btrace/internal/tracer"
	"btrace/internal/tracer/tracertest"
)

// drainParallel fully drains a parallel cursor: a Next returning 0 means
// a whole round over every segment yielded nothing new.
func drainParallel(t *testing.T, c *PCursor, batch int) ([]tracer.Entry, uint64) {
	t.Helper()
	var out []tracer.Entry
	var missed uint64
	buf := make([]tracer.Entry, batch)
	for {
		n, m, err := c.Next(buf)
		missed += m
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if n == 0 {
			return out, missed
		}
		for i := 0; i < n; i++ {
			e := buf[i]
			e.Payload = append([]byte(nil), e.Payload...)
			out = append(out, e)
		}
	}
}

// TestParallelMatchesSequential checks that the parallel cursor delivers
// exactly the sequential cursor's result set for a spread of queries,
// including the segment-pruning ones, over a multi-segment store.
func TestParallelMatchesSequential(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	appendRange(t, st, 1, 2000)
	if err := st.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	appendRange(t, st, 2001, 2400)
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	queries := []Query{
		{},
		{MinStamp: 500, MaxStamp: 1500},
		{Categories: []uint8{2}},
		{Cores: []uint8{0, 3}, MinStamp: 100},
		{MinTS: 700_000, MaxTS: 900_000},
		{Limit: 37},
		{MinStamp: 1900, Limit: 250},
	}
	for qi, q := range queries {
		want := drainStore(t, st, q)
		for _, workers := range []int{1, 4} {
			pc := st.QueryParallel(q, workers)
			got, missed := drainParallel(t, pc, 113)
			pc.Close()
			if missed != 0 {
				t.Fatalf("query %d workers %d: missed=%d on a quiescent store", qi, workers, missed)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d workers %d: got %d entries, want %d", qi, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].Stamp != want[i].Stamp {
					t.Fatalf("query %d workers %d: entry %d stamp %d, want %d", qi, workers, i, got[i].Stamp, want[i].Stamp)
				}
				checkEntry(t, got[i])
			}
		}
	}
}

// TestParallelIncremental checks the round contract: appends landing
// after a full drain are delivered by the next Next, exactly once.
func TestParallelIncremental(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	appendRange(t, st, 1, 100)
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	pc := st.QueryParallel(Query{}, 2)
	defer pc.Close()
	got, _ := drainParallel(t, pc, 64)
	if len(got) != 100 {
		t.Fatalf("first drain delivered %d entries, want 100", len(got))
	}
	appendRange(t, st, 101, 105)
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	buf := make([]tracer.Entry, 64)
	n, missed, err := pc.Next(buf)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if n != 5 || missed != 0 {
		t.Fatalf("incremental Next: n=%d missed=%d, want n=5 missed=0", n, missed)
	}
	for i := 0; i < n; i++ {
		if buf[i].Stamp != uint64(101+i) {
			t.Fatalf("incremental entry %d stamp %d, want %d", i, buf[i].Stamp, 101+i)
		}
	}
}

// TestParallelCursorMissedOnRetention mirrors the sequential cursor's
// retention test: retention lapping an open parallel cursor must surface
// through missed, never silently.
func TestParallelCursorMissedOnRetention(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 4 << 10, MaxBytes: 64 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	appendRange(t, st, 1, 100)
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	pc := st.QueryParallel(Query{}, 2)
	defer pc.Close()
	first, _ := drainParallel(t, pc, 64)
	if len(first) == 0 {
		t.Fatal("first drain empty")
	}
	// Blow well past the byte budget so retention retires segments the
	// cursor has not seen yet.
	appendRange(t, st, 101, 4000)
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	rest, missed := drainParallel(t, pc, 64)
	total := uint64(len(first)+len(rest)) + missed
	if total < 4000 {
		t.Fatalf("delivered %d + missed %d under-reports 4000 appended", len(first)+len(rest), missed)
	}
	seen := make(map[uint64]bool, len(first)+len(rest))
	for _, e := range append(first, rest...) {
		if seen[e.Stamp] {
			t.Fatalf("stamp %d delivered twice", e.Stamp)
		}
		seen[e.Stamp] = true
	}
}

// TestStoreParallelTracerConformance runs the repository-wide tracer
// conformance suite with parallel cursors switched on: the cursor/batch
// contract must hold regardless of which read path answers it.
func TestStoreParallelTracerConformance(t *testing.T) {
	tracertest.Run(t, tracertest.Config{
		New: func(totalBytes, cores, threads int) (tracer.Tracer, error) {
			tr, err := NewTracer(t.TempDir(), totalBytes)
			if err != nil {
				return nil, err
			}
			tr.UseParallelQueries(4)
			return tr, nil
		},
	})
}

// TestStoreParallelStress races appenders, short-lived and long-lived
// parallel cursors, and retention against each other. Meant to run under
// -race. Invariants checked:
//
//   - within one Next batch, stamps are non-decreasing (each batch comes
//     from a single stamp-merged round);
//   - no stamp is ever delivered twice to the same cursor;
//   - delivered + missed never under-reports the total appended: every
//     event a cursor did not see must be covered by its missed tally.
func TestStoreParallelStress(t *testing.T) {
	const (
		writers   = 4
		batchSize = 16
	)
	batches := 400
	if testing.Short() {
		batches = 120
	}
	st, err := Open(t.TempDir(), Config{
		SegmentBytes: 16 << 10,
		MaxBytes:     192 << 10, // retention active mid-scan
		CommitEvery:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	// The long-lived cursor exists before any write and incrementally
	// drains while writers and retention churn underneath it.
	main := st.QueryParallel(Query{}, 3)
	defer main.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	var appendErr atomic.Value
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			es := make([]tracer.Entry, batchSize)
			for b := 0; b < batches; b++ {
				for i := range es {
					stamp := uint64(id)<<40 | uint64(b*batchSize+i+1)
					es[i] = mkEntry(stamp)
					es[i].Stamp = stamp
				}
				if err := st.AppendEntries(es); err != nil {
					appendErr.Store(err)
					return
				}
			}
		}(w)
	}

	// Short-lived cursors: partial drains ending in Close exercise the
	// round-abort path while scans are in flight.
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		buf := make([]tracer.Entry, 256)
		for !stop.Load() {
			pc := st.QueryParallel(Query{Limit: 700}, 2)
			for rounds := 0; rounds < 3; rounds++ {
				n, _, err := pc.Next(buf)
				if err != nil || n == 0 {
					break
				}
				for i := 1; i < n; i++ {
					if buf[i].Stamp < buf[i-1].Stamp {
						t.Errorf("short cursor: stamps regress within a batch: %d after %d", buf[i].Stamp, buf[i-1].Stamp)
						pc.Close()
						return
					}
				}
			}
			pc.Close()
		}
	}()

	seen := make(map[uint64]bool)
	var delivered, missed uint64
	buf := make([]tracer.Entry, 512)
	drainOnce := func() bool {
		n, m, err := main.Next(buf)
		missed += m
		if err != nil {
			t.Fatalf("main cursor Next: %v", err)
		}
		for i := 0; i < n; i++ {
			if i > 0 && buf[i].Stamp < buf[i-1].Stamp {
				t.Fatalf("main cursor: stamps regress within a batch: %d after %d", buf[i].Stamp, buf[i-1].Stamp)
			}
			if seen[buf[i].Stamp] {
				t.Fatalf("stamp %#x delivered twice", buf[i].Stamp)
			}
			seen[buf[i].Stamp] = true
		}
		delivered += uint64(n)
		return n > 0
	}

	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	for draining := true; draining; {
		select {
		case <-writersDone:
			draining = false
		default:
			drainOnce()
		}
	}
	stop.Store(true)
	readerWG.Wait()
	if err, _ := appendErr.Load().(error); err != nil {
		t.Fatalf("AppendEntries: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// One full quiet round picks up everything still on disk.
	for drainOnce() {
	}
	total := uint64(writers * batches * batchSize)
	if delivered+missed < total {
		t.Fatalf("delivered %d + missed %d under-reports %d appended", delivered, missed, total)
	}
	t.Logf("delivered=%d missed=%d total=%d", delivered, missed, total)
}
