// One-shot aggregate execution. BTQL aggregates (count, rate, topk)
// consume only header fields, so the executor never builds entries or
// copies payloads: v2 cold blocks feed the aggregators straight from
// their decoded meta columns, v1 blocks and row segments walk frames
// and observe the raw header words. The payload section of a v2 block
// inflates only when the predicate itself inspects payload bytes.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"

	"btrace/internal/btql"
	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// aggSeg is the point-in-time view of one segment captured for an
// aggregate pass. Sealed segments are immutable; for the active segment
// bound is the committed size at capture, which is exactly the set of
// records the snapshot covers.
type aggSeg struct {
	name    string
	bound   int64
	cold    bool
	ordered bool
	count   uint64
	blocks  []coldBlock
}

// Aggregate executes specs in one streaming pass over the records
// matching q. Query.Limit is ignored: an aggregate is defined over every
// match. The pass runs against a point-in-time snapshot of the store;
// missed reports (an upper bound on) events retention deleted before
// the pass could read them, mirroring the cursor contract.
func (st *Store) Aggregate(q Query, specs []btql.AggSpec) (results []btql.Result, missed uint64, err error) {
	c := compile(q)
	aggs := make([]*btql.Aggregator, len(specs))
	for i := range specs {
		aggs[i] = specs[i].New()
	}
	for _, sn := range st.aggSnapshot(c) {
		m, aerr := st.aggSegment(c, &sn, aggs)
		missed += m
		if aerr != nil {
			return nil, missed, aerr
		}
	}
	results = make([]btql.Result, len(aggs))
	for i, a := range aggs {
		results[i] = a.Result()
	}
	return results, missed, nil
}

// aggSnapshot captures the matching segments under the store lock.
// A still-growing segment is never pruned on metadata: its meta may lag
// its committed bytes, so only the frame walk's per-record filter is
// trustworthy there.
func (st *Store) aggSnapshot(c *compiled) []aggSeg {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := make([]aggSeg, 0, len(st.segs))
	for _, s := range st.segs {
		if s.sealed && !c.matchSegment(&s.meta) {
			continue
		}
		snap = append(snap, aggSeg{
			name: s.name, bound: s.size, cold: s.isCold(),
			ordered: s.meta.ordered, count: s.meta.count,
			blocks: s.blocks,
		})
	}
	return snap
}

// aggSegment folds one snapshotted segment into the aggregators. A
// segment retention deleted between snapshot and open is reported as
// missed (its snapshot count bounds the loss), like a cursor lapped by
// retention.
func (st *Store) aggSegment(c *compiled, sn *aggSeg, aggs []*btql.Aggregator) (missed uint64, err error) {
	f, err := st.be.OpenRead(sn.name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return sn.count, nil
		}
		return 0, err
	}
	defer f.Close()
	if sn.cold {
		return 0, st.aggCold(c, sn, f, aggs)
	}
	return 0, aggFrames(c, &chunkReader{f: f, off: headerSize, bound: sn.bound}, sn.ordered, aggs)
}

// aggCold walks a cold segment's block directory, pruning blocks on
// their header metadata before any decompression, then folding survivors
// in by column (v2) or by inflated frame walk (v1).
func (st *Store) aggCold(c *compiled, sn *aggSeg, f backend.ReadFile, aggs []*btql.Aggregator) error {
	for i := range sn.blocks {
		b := &sn.blocks[i]
		if sn.ordered && c.q.MaxStamp > 0 && b.meta.baseStamp > c.q.MaxStamp {
			return nil // ordered early exit: no later block can match
		}
		if !c.matchColdBlock(b) {
			st.obs.blocksPruned.Add(1)
			continue
		}
		if b.v2 == nil {
			buf, err := st.inflateCached(sn.name, f, b)
			if err != nil {
				return err
			}
			rd := chunkReader{f: bytes.NewReader(buf), bound: int64(len(buf))}
			if err := aggFrames(c, &rd, sn.ordered, aggs); err != nil {
				return err
			}
			continue
		}
		cols, err := st.columnsCached(sn.name, f, b)
		if err != nil {
			return err
		}
		if err := st.aggColumns(c, sn, f, b, cols, aggs); err != nil {
			return err
		}
	}
	return nil
}

// aggColumns folds one v2 block's matching rows into the aggregators
// straight from the decoded columns. The payload section inflates only
// if the predicate needs payload bytes and some header-matched row has
// any; otherwise the aggregate is entirely payload-free.
func (st *Store) aggColumns(c *compiled, sn *aggSeg, f io.ReaderAt, b *coldBlock, cb *colBlock, aggs []*btql.Aggregator) error {
	count := int(b.meta.count)
	needPay := false
	if c.pred != nil && c.pred.NeedsPayload() {
		for i := 0; i < count; i++ {
			if cb.plens[i] > 0 && c.matchRaw(cb.stamps[i], cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i]) {
				needPay = true
				break
			}
		}
	}
	var pay []byte
	if needPay {
		var err error
		if pay, err = st.inflatePayCached(sn.name, f, b); err != nil {
			return err
		}
	} else if b.v2.payLen > 0 {
		st.obs.payloadSkips.Add(1)
	}
	for i := 0; i < count; i++ {
		stamp := cb.stamps[i]
		if sn.ordered && c.q.MaxStamp > 0 && stamp > c.q.MaxStamp {
			return nil
		}
		if !c.matchRaw(stamp, cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i]) {
			continue
		}
		if needPay {
			e := tracer.Entry{
				Stamp: stamp, TS: cb.ts[i],
				Core: cb.cores[i], TID: cb.tids[i],
				Category: cb.cats[i], Level: cb.levels[i],
			}
			if cb.plens[i] > 0 {
				e.Payload = pay[cb.payOff[i]:cb.payOff[i+1]]
			}
			if !c.pred.Match(&e) {
				continue
			}
		}
		for _, a := range aggs {
			a.Observe(stamp, cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i])
		}
	}
	return nil
}

// aggFrames walks CRC-framed records from rd, observing each match.
// Like the parallel scan, the checksum and decode are deferred until the
// raw header fields say the record matters — and the decode happens only
// for payload predicates, since aggregators consume header fields.
func aggFrames(c *compiled, rd *chunkReader, ordered bool, aggs []*btql.Aggregator) error {
	needPay := c.pred != nil && c.pred.NeedsPayload()
	for {
		if rd.off+int64(rd.pos) >= rd.bound {
			return nil
		}
		head, err := rd.peek(tracer.Align)
		if err != nil || len(head) < tracer.Align {
			return nil
		}
		_, recSize, perr := tracer.PeekRecord(head)
		if perr != nil || recSize > maxRecordSize {
			return perr
		}
		if rd.off+int64(rd.pos)+int64(recSize+tailSize) > rd.bound {
			return nil // frame not fully committed
		}
		buf, err := rd.peek(recSize + tailSize)
		if err != nil || len(buf) < recSize+tailSize {
			return nil
		}
		rec, tail := buf[:recSize], buf[recSize:recSize+tailSize]
		rd.advance(recSize + tailSize)
		if recSize < tracer.EventHeaderSize {
			return fmt.Errorf("%w: short event", tracer.ErrCorrupt)
		}
		stamp := le64(rec[8:])
		if ordered && c.q.MaxStamp > 0 && stamp > c.q.MaxStamp {
			return nil
		}
		ts := le64(rec[16:])
		w3 := le64(rec[24:])
		core, tid := uint8(w3>>56), uint32(w3>>32)&0xFFFFFF
		cat, level := uint8(w3>>24), uint8(w3>>16)
		if !c.matchRaw(stamp, ts, core, tid, cat, level) {
			continue
		}
		if cerr := checkFrame(rec, tail); cerr != nil {
			return cerr
		}
		if needPay {
			var e tracer.Entry
			if derr := decodeEventTo(rec, &e); derr != nil {
				return derr
			}
			if !c.pred.Match(&e) {
				continue
			}
		}
		for _, a := range aggs {
			a.Observe(stamp, ts, core, tid, cat, level)
		}
	}
}
