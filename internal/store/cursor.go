// Queries and cursors. A store.Cursor implements tracer.Cursor, so every
// consumer written against the streaming read path — exporters,
// replay.RetainedStamps, the collector pipeline, the conformance suite —
// works against disk unchanged. A cursor is incremental: once it drains
// the active segment it returns n == 0, and later Next calls pick up
// whatever was appended (or rotated in) since.
package store

import (
	"sort"

	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// Query selects a subset of the stored trace. The zero Query matches
// everything. Bounds are inclusive; a zero upper bound means unbounded.
type Query struct {
	// MinStamp/MaxStamp bound the logic-stamp range.
	MinStamp, MaxStamp uint64
	// MinTS/MaxTS bound the virtual-time range in nanoseconds.
	MinTS, MaxTS uint64
	// Cores restricts to these virtual cores (empty = all).
	Cores []uint8
	// Categories restricts to these workload categories (empty = all).
	Categories []uint8
	// Limit caps the number of delivered events (0 = unlimited).
	Limit int
}

// compiled is the evaluated form of a Query: bitmap masks for segment
// pruning plus exact membership sets for record filtering.
type compiled struct {
	q        Query
	coreMask uint64 // union of bit min(core,63); ^0 when unrestricted
	catMask  uint64
	coreSet  [256]bool
	catSet   [256]bool
	anyCore  bool
	anyCat   bool
}

func compile(q Query) *compiled {
	c := &compiled{q: q, anyCore: len(q.Cores) == 0, anyCat: len(q.Categories) == 0}
	c.coreMask, c.catMask = ^uint64(0), ^uint64(0)
	if !c.anyCore {
		c.coreMask = 0
		for _, core := range q.Cores {
			c.coreMask |= 1 << min(uint(core), 63)
			c.coreSet[core] = true
		}
	}
	if !c.anyCat {
		c.catMask = 0
		for _, cat := range q.Categories {
			c.catMask |= 1 << min(uint(cat), 63)
			c.catSet[cat] = true
		}
	}
	return c
}

// matchSegment reports whether the segment can contain matching records.
func (c *compiled) matchSegment(m *segmentMeta) bool {
	if m.count == 0 {
		return false
	}
	if c.q.MinStamp > m.maxStamp || (c.q.MaxStamp > 0 && c.q.MaxStamp < m.baseStamp) {
		return false
	}
	if c.q.MinTS > m.maxTS || (c.q.MaxTS > 0 && c.q.MaxTS < m.minTS) {
		return false
	}
	return c.coreMask&m.coreBits != 0 && c.catMask&m.catBits != 0
}

// match reports whether one record satisfies the query.
func (c *compiled) match(e *tracer.Entry) bool {
	if e.Stamp < c.q.MinStamp || (c.q.MaxStamp > 0 && e.Stamp > c.q.MaxStamp) {
		return false
	}
	if e.TS < c.q.MinTS || (c.q.MaxTS > 0 && e.TS > c.q.MaxTS) {
		return false
	}
	return (c.anyCore || c.coreSet[e.Core]) && (c.anyCat || c.catSet[e.Category])
}

// matchRaw is match evaluated on fields lifted straight from a raw
// record header, so a scan loop can reject a frame before paying its
// checksum and decode.
func (c *compiled) matchRaw(stamp, ts uint64, core, cat uint8) bool {
	if stamp < c.q.MinStamp || (c.q.MaxStamp > 0 && stamp > c.q.MaxStamp) {
		return false
	}
	if ts < c.q.MinTS || (c.q.MaxTS > 0 && ts > c.q.MaxTS) {
		return false
	}
	return (c.anyCore || c.coreSet[core]) && (c.anyCat || c.catSet[cat])
}

// Cursor streams store records, oldest segment first, in append order.
// When the store is fed in stamp order (the collector-pipeline
// guarantee) that is stamp order end to end. Entries handed out borrow
// the cursor's arena per the tracer.Cursor ownership contract.
type Cursor struct {
	st *Store
	q  *compiled

	// nextSeq is the next segment seq to read; cur* describe the
	// segment currently being read.
	nextSeq   uint64
	cur       *segment
	curSealed bool
	curBound  int64 // committed bytes readable this pass
	dedupe    bool  // entered a merged segment: drop stamps <= lastStamp
	f         backend.ReadFile
	rd        chunkReader

	// Cold-tier read state: the block cursor within c.cur.blocks plus
	// the inflated bytes of the block being walked. coldBuf may alias
	// the store's shared block cache and is never written to.
	coldIdx int
	coldBuf []byte
	coldPos int

	lastStamp   uint64
	seenRetired uint64
	delivered   int
	arena       []byte
	closed      bool
}

// NewCursor returns a cursor over the whole store, from the oldest
// retained record onward. It satisfies tracer.CursorSource.
func (st *Store) NewCursor() tracer.Cursor { return st.Query(Query{}) }

// Query returns a cursor over the records matching q.
func (st *Store) Query(q Query) *Cursor {
	st.mu.Lock()
	defer st.mu.Unlock()
	c := &Cursor{st: st, q: compile(q), nextSeq: 1, seenRetired: st.retiredEvents}
	if len(st.segs) > 0 {
		c.nextSeq = st.segs[0].seq
	}
	return c
}

// Next implements tracer.Cursor: it fills batch with up to len(batch)
// matching events and reports how many events retention deleted ahead of
// the cursor since the previous call (an upper bound when retention laps
// a partially-read segment).
func (c *Cursor) Next(batch []tracer.Entry) (int, uint64, error) {
	if c.closed {
		return 0, 0, tracer.ErrClosed
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	c.arena = c.arena[:0]
	var (
		n      int
		missed uint64
	)
	for n < len(batch) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			break
		}
		if c.f == nil {
			m, ok := c.openNext()
			missed += m
			if !ok {
				break
			}
			continue
		}
		read, done, err := c.readFrames(batch[n:])
		n += read
		if err != nil {
			return n, missed, err
		}
		if done {
			// Segment exhausted for good: move on.
			c.f.Close()
			c.f = nil
			c.nextSeq = c.cur.coversThrough + 1
			c.cur = nil
			continue
		}
		if read == 0 {
			// Active segment, nothing new committed yet.
			break
		}
	}
	return n, missed, nil
}

// openNext locates and opens the next readable segment, honoring merged
// coverage and retention. It returns the events missed to retention and
// whether a segment is now open.
func (c *Cursor) openNext() (missed uint64, ok bool) {
	for {
		c.st.mu.Lock()
		if c.st.maxRetiredSeq < c.nextSeq {
			// Deletions (if any) were all behind us; forget them.
			c.seenRetired = c.st.retiredEvents
		} else if c.st.retiredEvents > c.seenRetired {
			// Retention lapped the cursor.
			missed += c.st.retiredEvents - c.seenRetired
			c.seenRetired = c.st.retiredEvents
		}
		idx := c.st.findSeqLocked(c.nextSeq)
		var seg *segment
		dedupe := false
		switch {
		case idx >= 0 && c.st.segs[idx].seq == c.nextSeq:
			seg = c.st.segs[idx]
		case idx >= 0 && c.st.segs[idx].coversThrough >= c.nextSeq:
			// A merged segment subsumes the seq we wanted. Its prefix was
			// already delivered from the pre-merge sources: re-read it
			// only if we can drop duplicates by stamp.
			seg = c.st.segs[idx]
			if seg.meta.ordered {
				dedupe = true
			} else {
				// Unordered merge: stamps can't distinguish delivered
				// records from new ones, so the rest of the merged range
				// cannot be resumed. Surface the gap through missed —
				// the segment's count is an upper bound on what the
				// cursor never saw — rather than skipping silently.
				missed += seg.meta.count
				next := seg.coversThrough + 1
				c.st.mu.Unlock()
				c.nextSeq = next
				continue
			}
		case idx+1 < len(c.st.segs):
			seg = c.st.segs[idx+1]
		default:
			c.st.mu.Unlock()
			return missed, false
		}
		if !c.q.matchSegment(&seg.meta) && seg.sealed {
			next := seg.coversThrough + 1
			c.st.mu.Unlock()
			c.nextSeq = next
			continue
		}
		name, bound, sealed := seg.name, seg.size, seg.sealed
		// Sparse seek: skip straight to the stamp lower bound when the
		// segment is ordered. With dedupe on, everything at or below
		// lastStamp is a duplicate, so seek past it too.
		seekStamp := c.q.q.MinStamp
		if dedupe && c.lastStamp+1 > seekStamp {
			seekStamp = c.lastStamp + 1
		}
		startOff := int64(headerSize)
		coldStart := 0
		if seg.isCold() {
			// Cold tier: the block directory replaces the sparse index —
			// skip whole blocks below the seek stamp when ordered.
			if seg.meta.ordered && seekStamp > 0 {
				for coldStart < len(seg.blocks) && seg.blocks[coldStart].meta.maxStamp < seekStamp {
					coldStart++
				}
			}
		} else if seg.meta.ordered && seekStamp > 0 && len(seg.sparse) > 0 {
			lo := sort.Search(len(seg.sparse), func(i int) bool {
				return seg.sparse[i].stamp >= seekStamp
			})
			if lo > 0 {
				startOff = seg.sparse[lo-1].off
			}
		}
		c.st.mu.Unlock()

		f, err := c.st.be.OpenRead(name)
		if err != nil {
			// Deleted between lookup and open (retention race): retry the
			// loop, which will re-observe the retirement counters.
			c.nextSeq = seg.coversThrough + 1
			continue
		}
		c.f = f
		c.cur = seg
		c.curSealed = sealed
		c.curBound = bound
		c.dedupe = dedupe
		c.coldIdx, c.coldBuf, c.coldPos = coldStart, nil, 0
		c.rd = chunkReader{f: f, off: startOff, bound: bound}
		return missed, true
	}
}

// refreshBound re-reads the committed size of the current segment. For a
// segment no longer in the store (sealed then compacted away while we
// hold its file), the held inode is immutable: its own size is final.
func (c *Cursor) refreshBound() {
	c.st.mu.Lock()
	idx := c.st.findSeqLocked(c.cur.seq)
	if idx >= 0 && c.st.segs[idx] == c.cur {
		c.curBound = c.cur.size
		c.curSealed = c.cur.sealed
		c.st.mu.Unlock()
		c.rd.bound = c.curBound
		return
	}
	c.st.mu.Unlock()
	// The segment left the store while we hold its file. Its committed
	// size is final, but the inode of a preallocated segment may still
	// carry a zeroed tail if it was dropped before the seal finalize
	// trimmed it — keep the last committed bound rather than trusting
	// the file size past it.
	if size, err := c.f.Size(); err == nil && size < c.curBound {
		c.curBound = size
	}
	c.curSealed = true
	c.rd.bound = c.curBound
}

// readFrames decodes committed frames of the current segment into out,
// applying the query filter. done reports the segment is fully consumed
// and will never grow again.
func (c *Cursor) readFrames(out []tracer.Entry) (n int, done bool, err error) {
	if c.cur.isCold() {
		return c.readColdFrames(out)
	}
	if !c.curSealed {
		c.refreshBound()
	}
	pos := func() int64 { return c.rd.off + int64(c.rd.pos) }
	for n < len(out) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			return n, true, nil
		}
		if pos() >= c.curBound {
			return n, c.curSealed, nil
		}
		head, err := c.rd.peek(tracer.Align)
		if err != nil || len(head) < tracer.Align {
			// Committed bytes must be readable; treat shortfall as end.
			return n, c.curSealed, nil
		}
		_, recSize, perr := tracer.PeekRecord(head)
		if perr != nil || recSize > maxRecordSize {
			return n, true, perr
		}
		if pos()+int64(recSize+tailSize) > c.curBound {
			return n, c.curSealed, nil // frame not fully committed yet
		}
		buf, err := c.rd.peek(recSize + tailSize)
		if err != nil || len(buf) < recSize+tailSize {
			return n, c.curSealed, nil
		}
		if err := checkFrame(buf[:recSize], buf[recSize:recSize+tailSize]); err != nil {
			return n, true, err
		}
		rec, derr := tracer.DecodeRecord(buf[:recSize])
		if derr != nil {
			return n, true, derr
		}
		c.rd.advance(recSize + tailSize)
		e := rec.Event
		if c.dedupe && e.Stamp <= c.lastStamp {
			continue
		}
		// Ordered early exit: past the stamp upper bound, nothing later
		// in this segment can match.
		if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && e.Stamp > c.q.q.MaxStamp {
			return n, true, nil
		}
		if !c.q.match(&e) {
			continue
		}
		// Re-home the payload in the cursor's arena: the read buffer is
		// recycled by the next peek.
		if len(e.Payload) > 0 {
			off := len(c.arena)
			c.arena = append(c.arena, e.Payload...)
			e.Payload = c.arena[off:len(c.arena):len(c.arena)]
		}
		out[n] = e
		n++
		c.delivered++
		if e.Stamp > c.lastStamp {
			c.lastStamp = e.Stamp
		}
	}
	return n, false, nil
}

// readColdFrames is readFrames over a cold segment: blocks are pruned
// by their directory metadata (min/max stamp, time range, core and
// category bitmaps) before any decompression, then the inflated bytes
// are walked with exactly the row-tier frame loop. Cold segments are
// always sealed, so there is no bound refresh.
func (c *Cursor) readColdFrames(out []tracer.Entry) (n int, done bool, err error) {
	blocks := c.cur.blocks
	for n < len(out) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			return n, true, nil
		}
		if c.coldPos >= len(c.coldBuf) {
			// Advance to the next block the query cannot rule out.
			for {
				if c.coldIdx >= len(blocks) {
					return n, true, nil
				}
				b := &blocks[c.coldIdx]
				if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && b.meta.baseStamp > c.q.q.MaxStamp {
					// Ordered early exit: no later block can match.
					return n, true, nil
				}
				if c.dedupe && b.meta.maxStamp <= c.lastStamp {
					c.coldIdx++ // entirely already-delivered stamps
					continue
				}
				if !c.q.matchSegment(&b.meta) {
					c.coldIdx++ // pruned without decompression
					continue
				}
				break
			}
			b := &blocks[c.coldIdx]
			c.coldIdx++
			c.coldBuf, err = c.st.inflateCached(c.cur.name, c.f, b)
			if err != nil {
				return n, true, err
			}
			c.coldPos = 0
		}
		buf := c.coldBuf[c.coldPos:]
		if len(buf) < tracer.Align {
			c.coldPos = len(c.coldBuf) // ragged tail cannot happen in a committed block
			continue
		}
		_, recSize, perr := tracer.PeekRecord(buf)
		if perr != nil || recSize > maxRecordSize {
			return n, true, perr
		}
		if recSize+tailSize > len(buf) {
			c.coldPos = len(c.coldBuf)
			continue
		}
		if err := checkFrame(buf[:recSize], buf[recSize:recSize+tailSize]); err != nil {
			return n, true, err
		}
		var e tracer.Entry
		if derr := decodeEventTo(buf[:recSize], &e); derr != nil {
			return n, true, derr
		}
		c.coldPos += recSize + tailSize
		if c.dedupe && e.Stamp <= c.lastStamp {
			continue
		}
		if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && e.Stamp > c.q.q.MaxStamp {
			return n, true, nil
		}
		if !c.q.match(&e) {
			continue
		}
		// Re-home the payload in the cursor's arena: coldBuf is replaced
		// at the next block, and may be shared cache memory the entry
		// must not pin past this batch.
		if len(e.Payload) > 0 {
			off := len(c.arena)
			c.arena = append(c.arena, e.Payload...)
			e.Payload = c.arena[off:len(c.arena):len(c.arena)]
		}
		out[n] = e
		n++
		c.delivered++
		if e.Stamp > c.lastStamp {
			c.lastStamp = e.Stamp
		}
	}
	return n, false, nil
}

// Close implements tracer.Cursor.
func (c *Cursor) Close() error {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
	c.closed = true
	c.arena = nil
	return nil
}

var (
	_ tracer.Cursor       = (*Cursor)(nil)
	_ tracer.CursorSource = (*Store)(nil)
)
