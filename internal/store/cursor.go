// Queries and cursors. A store.Cursor implements tracer.Cursor, so every
// consumer written against the streaming read path — exporters,
// replay.RetainedStamps, the collector pipeline, the conformance suite —
// works against disk unchanged. A cursor is incremental: once it drains
// the active segment it returns n == 0, and later Next calls pick up
// whatever was appended (or rotated in) since.
package store

import (
	"sort"

	"btrace/internal/btql"
	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// Query selects a subset of the stored trace. The zero Query matches
// everything. Bounds are inclusive; a zero upper bound means unbounded.
type Query struct {
	// MinStamp/MaxStamp bound the logic-stamp range.
	MinStamp, MaxStamp uint64
	// MinTS/MaxTS bound the virtual-time range in nanoseconds.
	MinTS, MaxTS uint64
	// Cores restricts to these virtual cores (empty = all).
	Cores []uint8
	// Categories restricts to these workload categories (empty = all).
	Categories []uint8
	// Limit caps the number of delivered events (0 = unlimited).
	Limit int
	// Pred is an optional compiled BTQL predicate, ANDed with the field
	// filters above. Its stamp/time bounds and core/category masks are
	// folded into the pruning ladder at compile time; its exact form is
	// evaluated per record (including payload matches).
	Pred *btql.Predicate
}

// compiled is the evaluated form of a Query: bitmap masks for segment
// pruning plus exact membership sets for record filtering. The BTQL
// predicate's derived bounds and masks are folded in, so every pruning
// site (files, blocks, raw headers) benefits without knowing about it.
type compiled struct {
	q        Query
	coreMask uint64 // union of bit min(core,63); ^0 when unrestricted
	catMask  uint64
	coreSet  [256]bool
	catSet   [256]bool
	anyCore  bool
	anyCat   bool
	pred     *btql.Predicate
}

func compile(q Query) *compiled {
	c := &compiled{q: q, anyCore: len(q.Cores) == 0, anyCat: len(q.Categories) == 0, pred: q.Pred}
	c.coreMask, c.catMask = ^uint64(0), ^uint64(0)
	if !c.anyCore {
		c.coreMask = 0
		for _, core := range q.Cores {
			c.coreMask |= 1 << min(uint(core), 63)
			c.coreSet[core] = true
		}
	}
	if !c.anyCat {
		c.catMask = 0
		for _, cat := range q.Categories {
			c.catMask |= 1 << min(uint(cat), 63)
			c.catSet[cat] = true
		}
	}
	if p := c.pred; p != nil {
		// Tighten the range bounds with the predicate's hull. The Query
		// encodes "unbounded above" as 0 where the predicate uses ^0.
		if lo, hi := p.StampBounds(); true {
			c.q.MinStamp = max(c.q.MinStamp, lo)
			if hi != ^uint64(0) && (c.q.MaxStamp == 0 || hi < c.q.MaxStamp) {
				c.q.MaxStamp = hi
			}
		}
		if lo, hi := p.TimeBounds(); true {
			c.q.MinTS = max(c.q.MinTS, lo)
			if hi != ^uint64(0) && (c.q.MaxTS == 0 || hi < c.q.MaxTS) {
				c.q.MaxTS = hi
			}
		}
		c.coreMask &= p.CoreMask()
		c.catMask &= p.CatMask()
	}
	return c
}

// matchSegment reports whether the segment can contain matching records.
func (c *compiled) matchSegment(m *segmentMeta) bool {
	if m.count == 0 {
		return false
	}
	if c.q.MinStamp > m.maxStamp || (c.q.MaxStamp > 0 && c.q.MaxStamp < m.baseStamp) {
		return false
	}
	if c.q.MinTS > m.maxTS || (c.q.MaxTS > 0 && c.q.MaxTS < m.minTS) {
		return false
	}
	if c.coreMask&m.coreBits == 0 || c.catMask&m.catBits == 0 {
		return false
	}
	if c.pred != nil {
		return c.pred.MatchMeta(&btql.Meta{
			MinStamp: m.baseStamp, MaxStamp: m.maxStamp,
			MinTS: m.minTS, MaxTS: m.maxTS,
			CoreBits: m.coreBits, CatBits: m.catBits,
		})
	}
	return true
}

// matchColdBlock is matchSegment for one cold block, with the extra
// metadata a columnar block header carries: the TID range and bloom
// filter veto TID equality predicates without touching the block bytes.
func (c *compiled) matchColdBlock(b *coldBlock) bool {
	m := &b.meta
	if m.count == 0 {
		return false
	}
	if c.q.MinStamp > m.maxStamp || (c.q.MaxStamp > 0 && c.q.MaxStamp < m.baseStamp) {
		return false
	}
	if c.q.MinTS > m.maxTS || (c.q.MaxTS > 0 && c.q.MaxTS < m.minTS) {
		return false
	}
	if c.coreMask&m.coreBits == 0 || c.catMask&m.catBits == 0 {
		return false
	}
	if c.pred != nil {
		bm := btql.Meta{
			MinStamp: m.baseStamp, MaxStamp: m.maxStamp,
			MinTS: m.minTS, MaxTS: m.maxTS,
			CoreBits: m.coreBits, CatBits: m.catBits,
		}
		if v := b.v2; v != nil {
			bm.HasTID = true
			bm.MinTID, bm.MaxTID = v.minTID, v.maxTID
			bm.TIDMay = v.mayContainTID
		}
		return c.pred.MatchMeta(&bm)
	}
	return true
}

// match reports whether one fully decoded record satisfies the query,
// BTQL predicate included.
func (c *compiled) match(e *tracer.Entry) bool {
	if e.Stamp < c.q.MinStamp || (c.q.MaxStamp > 0 && e.Stamp > c.q.MaxStamp) {
		return false
	}
	if e.TS < c.q.MinTS || (c.q.MaxTS > 0 && e.TS > c.q.MaxTS) {
		return false
	}
	if !(c.anyCore || c.coreSet[e.Core]) || !(c.anyCat || c.catSet[e.Category]) {
		return false
	}
	return c.pred == nil || c.pred.Match(e)
}

// matchRaw is match evaluated on fields lifted straight from a raw
// record header, so a scan loop can reject a frame before paying its
// checksum and decode. It is exact for payload-free predicates and
// conservative (may return true) when the predicate needs the payload —
// callers that append on true must re-check with match/Predicate.Match
// after decoding when NeedsPayload reports true.
func (c *compiled) matchRaw(stamp, ts uint64, core uint8, tid uint32, cat, level uint8) bool {
	if stamp < c.q.MinStamp || (c.q.MaxStamp > 0 && stamp > c.q.MaxStamp) {
		return false
	}
	if ts < c.q.MinTS || (c.q.MaxTS > 0 && ts > c.q.MaxTS) {
		return false
	}
	if !(c.anyCore || c.coreSet[core]) || !(c.anyCat || c.catSet[cat]) {
		return false
	}
	return c.pred == nil || c.pred.MatchHeader(stamp, ts, core, tid, cat, level)
}

// Cursor streams store records, oldest segment first, in append order.
// When the store is fed in stamp order (the collector-pipeline
// guarantee) that is stamp order end to end. Entries handed out borrow
// the cursor's arena per the tracer.Cursor ownership contract.
type Cursor struct {
	st *Store
	q  *compiled

	// nextSeq is the next segment seq to read; cur* describe the
	// segment currently being read.
	nextSeq   uint64
	cur       *segment
	curSealed bool
	curBound  int64 // committed bytes readable this pass
	dedupe    bool  // entered a merged segment: drop stamps <= lastStamp
	f         backend.ReadFile
	rd        chunkReader

	// Cold-tier read state: the block cursor within c.cur.blocks plus
	// the inflated bytes of the block being walked. coldBuf may alias
	// the store's shared block cache and is never written to.
	coldIdx int
	coldBuf []byte
	coldPos int

	// Columnar (v2) block state: candidate entries decoded from the
	// current block's cached columns (payloads aliasing the cached
	// payload section), drained by v2pos.
	v2ents []tracer.Entry
	v2pos  int

	lastStamp   uint64
	seenRetired uint64
	delivered   int
	arena       []byte
	closed      bool
}

// NewCursor returns a cursor over the whole store, from the oldest
// retained record onward. It satisfies tracer.CursorSource.
func (st *Store) NewCursor() tracer.Cursor { return st.Query(Query{}) }

// Query returns a cursor over the records matching q.
func (st *Store) Query(q Query) *Cursor {
	st.mu.Lock()
	defer st.mu.Unlock()
	c := &Cursor{st: st, q: compile(q), nextSeq: 1, seenRetired: st.retiredEvents}
	if len(st.segs) > 0 {
		c.nextSeq = st.segs[0].seq
	}
	return c
}

// Next implements tracer.Cursor: it fills batch with up to len(batch)
// matching events and reports how many events retention deleted ahead of
// the cursor since the previous call (an upper bound when retention laps
// a partially-read segment).
func (c *Cursor) Next(batch []tracer.Entry) (int, uint64, error) {
	if c.closed {
		return 0, 0, tracer.ErrClosed
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	c.arena = c.arena[:0]
	var (
		n      int
		missed uint64
	)
	for n < len(batch) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			break
		}
		if c.f == nil {
			m, ok := c.openNext()
			missed += m
			if !ok {
				break
			}
			continue
		}
		read, done, err := c.readFrames(batch[n:])
		n += read
		if err != nil {
			return n, missed, err
		}
		if done {
			// Segment exhausted for good: move on.
			c.f.Close()
			c.f = nil
			c.nextSeq = c.cur.coversThrough + 1
			c.cur = nil
			continue
		}
		if read == 0 {
			// Active segment, nothing new committed yet.
			break
		}
	}
	return n, missed, nil
}

// openNext locates and opens the next readable segment, honoring merged
// coverage and retention. It returns the events missed to retention and
// whether a segment is now open.
func (c *Cursor) openNext() (missed uint64, ok bool) {
	for {
		c.st.mu.Lock()
		if c.st.maxRetiredSeq < c.nextSeq {
			// Deletions (if any) were all behind us; forget them.
			c.seenRetired = c.st.retiredEvents
		} else if c.st.retiredEvents > c.seenRetired {
			// Retention lapped the cursor.
			missed += c.st.retiredEvents - c.seenRetired
			c.seenRetired = c.st.retiredEvents
		}
		idx := c.st.findSeqLocked(c.nextSeq)
		var seg *segment
		dedupe := false
		switch {
		case idx >= 0 && c.st.segs[idx].seq == c.nextSeq:
			seg = c.st.segs[idx]
		case idx >= 0 && c.st.segs[idx].coversThrough >= c.nextSeq:
			// A merged segment subsumes the seq we wanted. Its prefix was
			// already delivered from the pre-merge sources: re-read it
			// only if we can drop duplicates by stamp.
			seg = c.st.segs[idx]
			if seg.meta.ordered {
				dedupe = true
			} else {
				// Unordered merge: stamps can't distinguish delivered
				// records from new ones, so the rest of the merged range
				// cannot be resumed. Surface the gap through missed —
				// the segment's count is an upper bound on what the
				// cursor never saw — rather than skipping silently.
				missed += seg.meta.count
				next := seg.coversThrough + 1
				c.st.mu.Unlock()
				c.nextSeq = next
				continue
			}
		case idx+1 < len(c.st.segs):
			seg = c.st.segs[idx+1]
		default:
			c.st.mu.Unlock()
			return missed, false
		}
		if !c.q.matchSegment(&seg.meta) && seg.sealed {
			next := seg.coversThrough + 1
			c.st.mu.Unlock()
			c.nextSeq = next
			continue
		}
		name, bound, sealed := seg.name, seg.size, seg.sealed
		// Sparse seek: skip straight to the stamp lower bound when the
		// segment is ordered. With dedupe on, everything at or below
		// lastStamp is a duplicate, so seek past it too.
		seekStamp := c.q.q.MinStamp
		if dedupe && c.lastStamp+1 > seekStamp {
			seekStamp = c.lastStamp + 1
		}
		startOff := int64(headerSize)
		coldStart := 0
		if seg.isCold() {
			// Cold tier: the block directory replaces the sparse index —
			// skip whole blocks below the seek stamp when ordered.
			if seg.meta.ordered && seekStamp > 0 {
				for coldStart < len(seg.blocks) && seg.blocks[coldStart].meta.maxStamp < seekStamp {
					coldStart++
				}
				if coldStart > 0 {
					// The seek is pruning too: these blocks were ruled out
					// on directory metadata alone, same as a matchColdBlock
					// veto.
					c.st.obs.blocksPruned.Add(uint64(coldStart))
				}
			}
		} else if seg.meta.ordered && seekStamp > 0 && len(seg.sparse) > 0 {
			lo := sort.Search(len(seg.sparse), func(i int) bool {
				return seg.sparse[i].stamp >= seekStamp
			})
			if lo > 0 {
				startOff = seg.sparse[lo-1].off
			}
		}
		c.st.mu.Unlock()

		f, err := c.st.be.OpenRead(name)
		if err != nil {
			// Deleted between lookup and open (retention race): retry the
			// loop, which will re-observe the retirement counters.
			c.nextSeq = seg.coversThrough + 1
			continue
		}
		c.f = f
		c.cur = seg
		c.curSealed = sealed
		c.curBound = bound
		c.dedupe = dedupe
		c.coldIdx, c.coldBuf, c.coldPos = coldStart, nil, 0
		c.v2ents, c.v2pos = c.v2ents[:0], 0
		c.rd = chunkReader{f: f, off: startOff, bound: bound}
		return missed, true
	}
}

// refreshBound re-reads the committed size of the current segment. For a
// segment no longer in the store (sealed then compacted away while we
// hold its file), the held inode is immutable: its own size is final.
func (c *Cursor) refreshBound() {
	c.st.mu.Lock()
	idx := c.st.findSeqLocked(c.cur.seq)
	if idx >= 0 && c.st.segs[idx] == c.cur {
		c.curBound = c.cur.size
		c.curSealed = c.cur.sealed
		c.st.mu.Unlock()
		c.rd.bound = c.curBound
		return
	}
	c.st.mu.Unlock()
	// The segment left the store while we hold its file. Its committed
	// size is final, but the inode of a preallocated segment may still
	// carry a zeroed tail if it was dropped before the seal finalize
	// trimmed it — keep the last committed bound rather than trusting
	// the file size past it.
	if size, err := c.f.Size(); err == nil && size < c.curBound {
		c.curBound = size
	}
	c.curSealed = true
	c.rd.bound = c.curBound
}

// readFrames decodes committed frames of the current segment into out,
// applying the query filter. done reports the segment is fully consumed
// and will never grow again.
func (c *Cursor) readFrames(out []tracer.Entry) (n int, done bool, err error) {
	if c.cur.isCold() {
		return c.readColdFrames(out)
	}
	if !c.curSealed {
		c.refreshBound()
	}
	pos := func() int64 { return c.rd.off + int64(c.rd.pos) }
	for n < len(out) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			return n, true, nil
		}
		if pos() >= c.curBound {
			return n, c.curSealed, nil
		}
		head, err := c.rd.peek(tracer.Align)
		if err != nil || len(head) < tracer.Align {
			// Committed bytes must be readable; treat shortfall as end.
			return n, c.curSealed, nil
		}
		_, recSize, perr := tracer.PeekRecord(head)
		if perr != nil || recSize > maxRecordSize {
			return n, true, perr
		}
		if pos()+int64(recSize+tailSize) > c.curBound {
			return n, c.curSealed, nil // frame not fully committed yet
		}
		buf, err := c.rd.peek(recSize + tailSize)
		if err != nil || len(buf) < recSize+tailSize {
			return n, c.curSealed, nil
		}
		if err := checkFrame(buf[:recSize], buf[recSize:recSize+tailSize]); err != nil {
			return n, true, err
		}
		rec, derr := tracer.DecodeRecord(buf[:recSize])
		if derr != nil {
			return n, true, derr
		}
		c.rd.advance(recSize + tailSize)
		e := rec.Event
		if c.dedupe && e.Stamp <= c.lastStamp {
			continue
		}
		// Ordered early exit: past the stamp upper bound, nothing later
		// in this segment can match.
		if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && e.Stamp > c.q.q.MaxStamp {
			return n, true, nil
		}
		if !c.q.match(&e) {
			continue
		}
		// Re-home the payload in the cursor's arena: the read buffer is
		// recycled by the next peek.
		if len(e.Payload) > 0 {
			off := len(c.arena)
			c.arena = append(c.arena, e.Payload...)
			e.Payload = c.arena[off:len(c.arena):len(c.arena)]
		}
		out[n] = e
		n++
		c.delivered++
		if e.Stamp > c.lastStamp {
			c.lastStamp = e.Stamp
		}
	}
	return n, false, nil
}

// readColdFrames is readFrames over a cold segment: blocks are pruned
// by their directory metadata (min/max stamp, time range, core and
// category bitmaps, and for v2 the TID range/bloom) before any
// decompression. A v1 block inflates to frames walked with exactly the
// row-tier loop; a v2 block decodes its meta columns and materializes
// only candidate rows, inflating the payload column only if a candidate
// carries payload bytes. Cold segments are always sealed, so there is
// no bound refresh.
func (c *Cursor) readColdFrames(out []tracer.Entry) (n int, done bool, err error) {
	blocks := c.cur.blocks
	for n < len(out) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			return n, true, nil
		}
		if c.v2pos < len(c.v2ents) {
			e := c.v2ents[c.v2pos]
			c.v2pos++
			if c.dedupe && e.Stamp <= c.lastStamp {
				continue
			}
			if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && e.Stamp > c.q.q.MaxStamp {
				return n, true, nil
			}
			// Candidates passed the header-field filter at load; only a
			// payload predicate still needs the exact check.
			if c.q.pred != nil && c.q.pred.NeedsPayload() && !c.q.pred.Match(&e) {
				continue
			}
			if len(e.Payload) > 0 {
				off := len(c.arena)
				c.arena = append(c.arena, e.Payload...)
				e.Payload = c.arena[off:len(c.arena):len(c.arena)]
			}
			out[n] = e
			n++
			c.delivered++
			if e.Stamp > c.lastStamp {
				c.lastStamp = e.Stamp
			}
			continue
		}
		if c.coldPos >= len(c.coldBuf) {
			// Advance to the next block the query cannot rule out.
			for {
				if c.coldIdx >= len(blocks) {
					return n, true, nil
				}
				b := &blocks[c.coldIdx]
				if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && b.meta.baseStamp > c.q.q.MaxStamp {
					// Ordered early exit: no later block can match.
					return n, true, nil
				}
				if c.dedupe && b.meta.maxStamp <= c.lastStamp {
					c.coldIdx++ // entirely already-delivered stamps
					continue
				}
				if !c.q.matchColdBlock(b) {
					c.coldIdx++ // pruned without decompression
					c.st.obs.blocksPruned.Add(1)
					continue
				}
				break
			}
			b := &blocks[c.coldIdx]
			c.coldIdx++
			if b.v2 != nil {
				if err := c.loadV2Block(b); err != nil {
					return n, true, err
				}
				continue
			}
			c.coldBuf, err = c.st.inflateCached(c.cur.name, c.f, b)
			if err != nil {
				return n, true, err
			}
			c.coldPos = 0
		}
		buf := c.coldBuf[c.coldPos:]
		if len(buf) < tracer.Align {
			c.coldPos = len(c.coldBuf) // ragged tail cannot happen in a committed block
			continue
		}
		_, recSize, perr := tracer.PeekRecord(buf)
		if perr != nil || recSize > maxRecordSize {
			return n, true, perr
		}
		if recSize+tailSize > len(buf) {
			c.coldPos = len(c.coldBuf)
			continue
		}
		if err := checkFrame(buf[:recSize], buf[recSize:recSize+tailSize]); err != nil {
			return n, true, err
		}
		var e tracer.Entry
		if derr := decodeEventTo(buf[:recSize], &e); derr != nil {
			return n, true, derr
		}
		c.coldPos += recSize + tailSize
		if c.dedupe && e.Stamp <= c.lastStamp {
			continue
		}
		if c.cur.meta.ordered && c.q.q.MaxStamp > 0 && e.Stamp > c.q.q.MaxStamp {
			return n, true, nil
		}
		if !c.q.match(&e) {
			continue
		}
		// Re-home the payload in the cursor's arena: coldBuf is replaced
		// at the next block, and may be shared cache memory the entry
		// must not pin past this batch.
		if len(e.Payload) > 0 {
			off := len(c.arena)
			c.arena = append(c.arena, e.Payload...)
			e.Payload = c.arena[off:len(c.arena):len(c.arena)]
		}
		out[n] = e
		n++
		c.delivered++
		if e.Stamp > c.lastStamp {
			c.lastStamp = e.Stamp
		}
	}
	return n, false, nil
}

// loadV2Block decodes a columnar block's meta section and fills v2ents
// with the candidate rows (header-field filter applied column-wise).
// The payload column is inflated only when a surviving candidate
// actually carries payload bytes — the predicate-pushdown payoff: a
// block whose candidate set is empty, or payload-free, never touches
// its compressed payload section.
func (c *Cursor) loadV2Block(b *coldBlock) error {
	cb, err := c.st.columnsCached(c.cur.name, c.f, b)
	if err != nil {
		return err
	}
	count := int(b.meta.count)
	needPay := false
	for i := 0; i < count; i++ {
		if c.q.matchRaw(cb.stamps[i], cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i]) && cb.plens[i] > 0 {
			needPay = true
			break
		}
	}
	var pay []byte
	if needPay {
		pay, err = c.st.inflatePayCached(c.cur.name, c.f, b)
		if err != nil {
			return err
		}
	} else if b.v2.payLen > 0 {
		c.st.obs.payloadSkips.Add(1)
	}
	c.v2ents = c.v2ents[:0]
	for i := 0; i < count; i++ {
		if !c.q.matchRaw(cb.stamps[i], cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i]) {
			continue
		}
		e := tracer.Entry{
			Stamp: cb.stamps[i], TS: cb.ts[i],
			Core: cb.cores[i], TID: cb.tids[i],
			Category: cb.cats[i], Level: cb.levels[i],
		}
		if cb.plens[i] > 0 {
			e.Payload = pay[cb.payOff[i]:cb.payOff[i+1]:cb.payOff[i+1]]
		}
		c.v2ents = append(c.v2ents, e)
	}
	c.v2pos = 0
	return nil
}

// Close implements tracer.Cursor.
func (c *Cursor) Close() error {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
	c.closed = true
	c.arena = nil
	return nil
}

var (
	_ tracer.Cursor       = (*Cursor)(nil)
	_ tracer.CursorSource = (*Store)(nil)
)
