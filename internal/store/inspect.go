// Cold-block introspection: the per-block directory metadata, exposed
// for offline tooling (btrace-inspect -blocks). The same numbers the
// query planner prunes on — column min/max, TID range, bloom fill,
// section sizes — rendered for an operator deciding whether a store's
// blocks actually prune well under their workload.
package store

// ColdBlockInfo describes one cold block as its directory header
// records it. Version 1 blocks carry the shared fields only; the
// columnar extras are v2.
type ColdBlockInfo struct {
	Seq     uint64 `json:"seq"`
	File    string `json:"file"`
	Index   int    `json:"index"` // position within the file's directory
	Version int    `json:"version"`
	Events  uint64 `json:"events"`

	CompBytes int64 `json:"comp_bytes"` // compressed (v2: both sections)
	RawBytes  int64 `json:"raw_bytes"`  // frame-equivalent decompressed size

	BaseStamp uint64 `json:"base_stamp"`
	MaxStamp  uint64 `json:"max_stamp"`
	MinTS     uint64 `json:"min_ts"`
	MaxTS     uint64 `json:"max_ts"`
	CoreBits  uint64 `json:"core_bits"`
	CatBits   uint64 `json:"cat_bits"`
	Ordered   bool   `json:"ordered"`

	// v2 (columnar) only.
	MetaBytes    int64   `json:"meta_bytes,omitempty"` // compressed meta section
	MetaRawBytes int64   `json:"meta_raw_bytes,omitempty"`
	PayBytes     int64   `json:"pay_bytes,omitempty"` // compressed payload section
	PayRawBytes  int64   `json:"pay_raw_bytes,omitempty"`
	DictSize     int     `json:"dict_size,omitempty"` // category dictionary entries
	MinTID       uint32  `json:"min_tid,omitempty"`
	MaxTID       uint32  `json:"max_tid,omitempty"`
	BloomFill    float64 `json:"bloom_fill,omitempty"` // TID bloom set-bit ratio
}

// ColdBlocks returns every cold block's directory metadata, oldest
// segment first, blocks in file order.
func (st *Store) ColdBlocks() []ColdBlockInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []ColdBlockInfo
	for _, s := range st.segs {
		if !s.isCold() {
			continue
		}
		for i := range s.blocks {
			b := &s.blocks[i]
			info := ColdBlockInfo{
				Seq: s.seq, File: s.name, Index: i, Version: 1,
				Events:    b.meta.count,
				CompBytes: b.compLen, RawBytes: b.rawLen,
				BaseStamp: b.meta.baseStamp, MaxStamp: b.meta.maxStamp,
				MinTS: b.meta.minTS, MaxTS: b.meta.maxTS,
				CoreBits: b.meta.coreBits, CatBits: b.meta.catBits,
				Ordered: b.meta.ordered,
			}
			if v := b.v2; v != nil {
				info.Version = 2
				info.MetaBytes, info.MetaRawBytes = v.metaLen, v.metaRawLen
				info.PayBytes, info.PayRawBytes = v.payLen, v.payRawLen
				info.DictSize = v.dictSize
				info.MinTID, info.MaxTID = v.minTID, v.maxTID
				info.BloomFill = v.bloomFill()
			}
			out = append(out, info)
		}
	}
	return out
}
