package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"btrace/internal/tracer"
)

// buildSegmentImage writes count records into a fresh store and returns
// the raw unsealed active-segment bytes — the on-disk state of a process
// killed mid-run.
func buildSegmentImage(t testing.TB, count int) []byte {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	var es []tracer.Entry
	for s := 1; s <= count; s++ {
		es = append(es, mkEntryTB(uint64(s)))
	}
	if err := st.AppendEntries(es); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(filepath.Join(dir, "seg-00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	return img
}

// mkEntryTB mirrors mkEntry for testing.TB contexts (fuzz targets).
func mkEntryTB(stamp uint64) tracer.Entry {
	return tracer.Entry{
		Stamp: stamp, TS: stamp * 1000, Core: uint8(stamp % 4),
		TID: uint32(stamp % 7), Category: uint8(stamp % 5), Level: uint8(stamp%3 + 1),
		Payload: bytes.Repeat([]byte{byte(stamp)}, int(stamp%29)),
	}
}

// FuzzSegmentRecover mangles a real segment image — truncation at an
// arbitrary offset plus an arbitrary byte flip — and asserts the store
// always reopens, delivers only whole, correctly decoded records, and
// never fabricates a record that was not written.
func FuzzSegmentRecover(f *testing.F) {
	img := buildSegmentImage(f, 64)
	f.Add(uint32(len(img)), uint32(0), byte(0))
	f.Add(uint32(len(img)-1), uint32(0), byte(0))
	f.Add(uint32(len(img)-3), uint32(headerSize+9), byte(0xff))
	f.Add(uint32(headerSize+1), uint32(7), byte(0x80))
	f.Add(uint32(12), uint32(60), byte(1))
	f.Add(uint32(0), uint32(0), byte(0))
	f.Fuzz(func(t *testing.T, cut uint32, flipAt uint32, flipBits byte) {
		mangled := append([]byte(nil), img...)
		if int(cut) < len(mangled) {
			mangled = mangled[:cut]
		}
		if flipBits != 0 && len(mangled) > 0 {
			mangled[int(flipAt)%len(mangled)] ^= flipBits
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.seg"), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("Open on mangled segment: %v", err)
		}
		defer st.Close()
		cur := st.Query(Query{})
		defer cur.Close()
		es, err := tracer.Drain(cur, 32)
		if err != nil {
			t.Fatalf("Drain over recovered store: %v", err)
		}
		seen := map[uint64]bool{}
		for _, e := range es {
			// Every surviving record must be one we actually wrote, whole.
			if e.Stamp == 0 || e.Stamp > 64 {
				t.Fatalf("fabricated stamp %d", e.Stamp)
			}
			if seen[e.Stamp] {
				t.Fatalf("duplicate stamp %d", e.Stamp)
			}
			seen[e.Stamp] = true
			want := mkEntryTB(e.Stamp)
			if e.TS != want.TS || e.Core != want.Core || e.TID != want.TID ||
				e.Category != want.Category || e.Level != want.Level ||
				!bytes.Equal(e.Payload, want.Payload) {
				t.Fatalf("record %d corrupted after recovery: %+v", e.Stamp, e)
			}
		}
		// The recovered store must accept appends (the crash-reopen-resume
		// path) and read them back.
		next := uint64(1000)
		e := mkEntryTB(next)
		if err := st.Append(&e); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		after := st.Query(Query{MinStamp: next})
		defer after.Close()
		got, err := tracer.Drain(after, 8)
		if err != nil || len(got) != 1 || got[0].Stamp != next {
			t.Fatalf("post-recovery append not readable: n=%d err=%v", len(got), err)
		}
	})
}
