// Parallel pruned queries. QueryParallel answers the same tracer.Cursor
// contract as the sequential Cursor, but scans the surviving segments
// with a bounded worker pool feeding a k-way merge by stamp:
//
//   - Prune first: the per-round snapshot drops sealed segments whose
//     header metadata (stamp/time min-max, core and category bitsets)
//     cannot match the query, without ever opening their files.
//   - One goroutine per surviving segment streams decoded, pre-filtered
//     chunks over a channel; a semaphore of `workers` permits bounds how
//     many are inside a read+decode at once.
//   - The merge pops streams by head stamp (or concatenates them when
//     the segments' stamp ranges are disjoint and ordered — the common
//     sealed-rotation layout — which is a straight copy per chunk).
//
// Rounds are incremental like the sequential cursor: a round snapshots
// the committed state, drains it, and records per-segment resume
// offsets; a later Next starts a new round from those offsets, so
// appends landing between calls are picked up and nothing is delivered
// twice. Entries handed out borrow chunk buffers that stay valid until
// the next Next or Close, matching the cursor ownership contract, and
// `missed` is the same upper bound the sequential cursor reports when
// retention laps the reader.
package store

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"btrace/internal/tracer"
)

const (
	// scanSpanBytes is the read granularity of a parallel scan: one
	// ReadAt, decode, send. Must exceed maxRecordSize+tailSize so a
	// frame always fits a span.
	scanSpanBytes = 256 << 10
	// chunkMaxEntries bounds one chunk's decoded batch.
	chunkMaxEntries = 4096
	// DefaultQueryWorkers is the scan-pool size when the caller passes
	// workers <= 0.
	DefaultQueryWorkers = 4
)

// segSnap is the immutable per-round snapshot of one segment, taken
// under st.mu. Stream goroutines only ever touch the snapshot, never
// the live *segment (which the writer goroutine keeps mutating).
type segSnap struct {
	seq           uint64
	coversThrough uint64
	name          string
	// start/bound are byte offsets for row segments, block indices for
	// cold ones.
	start     int64 // first byte/block to scan (resume offset or seek)
	bound     int64 // committed bytes / block count at snapshot time
	count     uint64
	baseStamp uint64
	maxStamp  uint64
	ordered   bool
	sealed    bool
	cold      bool
	// blocks shares the cold segment's immutable block directory.
	blocks []coldBlock
}

// pchunk is one decoded batch in flight from a stream to the merge.
// entries' payloads alias data.
type pchunk struct {
	entries []tracer.Entry
	data    []byte
}

// globalChunks backs every cursor's chunkPool, so span buffers (up to
// scanSpanBytes each) survive cursor lifetimes instead of being
// reallocated and rezeroed per query. A chunk only reaches the global
// pool from Close, after its payloads' validity window has ended.
var globalChunks = sync.Pool{New: func() any { return new(pchunk) }}

// chunkPool recycles chunks (and their buffers) across spans and
// rounds. Streams and the merge touch it concurrently.
type chunkPool struct {
	mu   sync.Mutex
	free []*pchunk
}

func (p *chunkPool) get() *pchunk {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		ck := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return ck
	}
	p.mu.Unlock()
	return globalChunks.Get().(*pchunk)
}

func (p *chunkPool) put(ck *pchunk) {
	ck.entries = ck.entries[:0]
	ck.data = ck.data[:0]
	p.mu.Lock()
	p.free = append(p.free, ck)
	p.mu.Unlock()
}

// pmark is one segment's cross-round resume mark. For row segments off
// is a byte offset; for cold segments it is a block index — the cold
// flag records which, so a tier transition between rounds is detected
// instead of misread.
type pmark struct {
	off  int64
	cold bool
}

// pstream is one segment's scan: a goroutine filling ch, plus the
// merge's view of the current chunk. missed/endOff/err are written by
// the goroutine before ch closes and read by the merge only after the
// close (or after wg.Wait), which orders them.
type pstream struct {
	snap segSnap
	ch   chan *pchunk

	missed uint64
	endOff int64 // resume offset for the next round
	err    error

	cur *pchunk
	idx int
}

// PCursor is a parallel query cursor. It implements tracer.Cursor. Like
// the sequential Cursor it is not safe for concurrent use by multiple
// goroutines (the store itself is).
type PCursor struct {
	st      *Store
	q       *compiled
	workers int

	sem  chan struct{}
	pool chunkPool

	// Round state; streams == nil between rounds.
	streams []*pstream
	h       []*pstream // min-heap by head stamp (general path)
	concat  bool       // disjoint-ordered fast path: consume streams in order
	ci      int
	done    chan struct{}
	wg      sync.WaitGroup

	// Cross-round state.
	progress      map[uint64]pmark // seq -> next unread offset/block
	lowSeq        uint64           // lowest not-fully-consumed seq
	seenRetired   uint64
	pendingMissed uint64
	delivered     int
	retired       []*pchunk // chunks whose entries the caller borrowed last Next
	closed        bool
}

// QueryParallel returns a parallel cursor over the records matching q,
// scanning up to workers segments concurrently (<= 0 selects
// DefaultQueryWorkers).
func (st *Store) QueryParallel(q Query, workers int) *PCursor {
	if workers <= 0 {
		workers = DefaultQueryWorkers
	}
	c := &PCursor{
		st:       st,
		q:        compile(q),
		workers:  workers,
		sem:      make(chan struct{}, workers),
		progress: make(map[uint64]pmark),
	}
	st.mu.Lock()
	c.seenRetired = st.retiredEvents
	if len(st.segs) > 0 {
		c.lowSeq = st.segs[0].seq
	} else {
		c.lowSeq = st.nextSeq
	}
	st.mu.Unlock()
	return c
}

// Next implements tracer.Cursor.
func (c *PCursor) Next(batch []tracer.Entry) (int, uint64, error) {
	if c.closed {
		return 0, 0, tracer.ErrClosed
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	// Entries handed out by the previous Next are invalid from here on;
	// their chunks go back to the pool.
	c.recycleRetired()
	var missed uint64
	if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
		if c.streams != nil {
			c.abortRound()
		}
		return 0, 0, nil
	}
	if c.streams == nil {
		missed += c.startRound()
		if c.streams == nil {
			return 0, missed, nil
		}
	}
	var n int
	var err error
	if c.concat {
		n, err = c.mergeConcat(batch)
	} else {
		n, err = c.mergeHeap(batch)
	}
	missed += c.pendingMissed
	c.pendingMissed = 0
	return n, missed, err
}

// startRound snapshots the committed store state and launches one scan
// goroutine per surviving segment. Returns events missed to retention
// since the previous round. On return c.streams is nil if there is
// nothing to scan.
func (c *PCursor) startRound() (missed uint64) {
	snaps, m := c.snapshot()
	missed = m
	if len(snaps) == 0 {
		return missed
	}
	c.done = make(chan struct{})
	c.streams = make([]*pstream, 0, len(snaps))
	// Concat fast path: every stream ordered and the stamp ranges
	// strictly increasing across segments — rotation's natural layout.
	c.concat = true
	for i := range snaps {
		if !snaps[i].ordered {
			c.concat = false
			break
		}
		if i > 0 && snaps[i-1].maxStamp >= snaps[i].baseStamp {
			c.concat = false
			break
		}
	}
	c.ci = 0
	c.h = c.h[:0]
	for i := range snaps {
		ps := &pstream{snap: snaps[i], ch: make(chan *pchunk, 1)}
		ps.endOff = snaps[i].start
		c.streams = append(c.streams, ps)
		c.wg.Add(1)
		go c.runStream(ps)
	}
	if !c.concat {
		// Load every stream's head and heapify.
		for _, ps := range c.streams {
			if c.advanceStream(ps) {
				c.h = append(c.h, ps)
			}
		}
		for i := len(c.h)/2 - 1; i >= 0; i-- {
			c.down(i)
		}
	}
	return missed
}

// snapshot captures, under st.mu, the per-segment scan ranges for one
// round: retention-missed accounting, header-metadata pruning, merged-
// coverage resume rules and the sparse first-visit seek all happen
// here, so stream goroutines never touch live segments.
func (c *PCursor) snapshot() ([]segSnap, uint64) {
	st := c.st
	var missed uint64
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.maxRetiredSeq < c.lowSeq {
		// Deletions (if any) were all behind us; forget them.
		c.seenRetired = st.retiredEvents
	} else if st.retiredEvents > c.seenRetired {
		// Retention lapped the cursor.
		missed += st.retiredEvents - c.seenRetired
		c.seenRetired = st.retiredEvents
	}
	var snaps []segSnap
	low := uint64(0)
	for _, s := range st.segs {
		if s.isCold() {
			sn, m, live := c.snapshotCold(s)
			missed += m
			if !live {
				continue
			}
			if low == 0 {
				low = s.seq
			}
			snaps = append(snaps, sn)
			continue
		}
		start := int64(headerSize)
		resumed := false
		if mk, ok := c.progress[s.seq]; ok && !mk.cold {
			start, resumed = mk.off, true
		}
		if s.coversThrough > s.seq {
			// A compacted segment subsumes seqs we may have partially
			// read from the pre-merge sources. The merged file keeps the
			// first source's frames as a byte-identical prefix, so a
			// resume offset recorded against s.seq itself stays valid —
			// but progress inside any other source cannot be translated.
			tainted := false
			for k := range c.progress {
				if k > s.seq && k <= s.coversThrough {
					tainted = true
					break
				}
			}
			if tainted {
				if start < s.size {
					// The un-resumable remainder is bounded by the
					// segment's count; surface it rather than skipping
					// silently (same upper bound the sequential cursor
					// reports for unordered merges).
					missed += s.meta.count
				}
				c.progress[s.seq] = pmark{off: s.size}
				for k := range c.progress {
					if k > s.seq && k <= s.coversThrough {
						delete(c.progress, k)
					}
				}
				continue
			}
		}
		if start >= s.size && s.sealed {
			continue // fully consumed and immutable
		}
		if !c.q.matchSegment(&s.meta) && s.sealed {
			// Prune without opening the file — the header metadata rules
			// out every record.
			c.progress[s.seq] = pmark{off: s.size}
			continue
		}
		if low == 0 {
			low = s.seq
		}
		if !resumed && s.meta.ordered && c.q.q.MinStamp > 0 && len(s.sparse) > 0 {
			lo := sort.Search(len(s.sparse), func(i int) bool {
				return s.sparse[i].stamp >= c.q.q.MinStamp
			})
			if lo > 0 && s.sparse[lo-1].off > start {
				start = s.sparse[lo-1].off
			}
		}
		snaps = append(snaps, segSnap{
			seq:           s.seq,
			coversThrough: s.coversThrough,
			name:          s.name,
			start:         start,
			bound:         s.size,
			count:         s.meta.count,
			baseStamp:     s.meta.baseStamp,
			maxStamp:      s.meta.maxStamp,
			ordered:       s.meta.ordered,
			sealed:        s.sealed,
		})
	}
	if low == 0 {
		low = st.nextSeq
	}
	c.lowSeq = low
	return snaps, missed
}

// snapshotCold resolves one cold segment against the progress map.
// Returns its snapshot when the round should scan it (live), or folds
// it into progress/missed accounting when it should not.
//
// A freeze between rounds invalidates byte-offset marks recorded
// against the row sources: block indices and byte offsets do not
// translate. Three cases, mirroring the merged-segment rules:
//   - every source was fully consumed → skip the cold segment whole;
//   - nothing was delivered from any source → rescan from block 0
//     (no duplication possible);
//   - partial consumption → the remainder cannot be resumed without
//     re-delivery; skip it and surface the segment's count through
//     missed (the same upper bound used for unordered merges).
func (c *PCursor) snapshotCold(s *segment) (sn segSnap, missed uint64, live bool) {
	consumed := pmark{off: int64(len(s.blocks)), cold: true}
	start := int64(0)
	if mk, ok := c.progress[s.seq]; ok && mk.cold {
		start = mk.off
	}
	stale, delivered := false, false
	for k, mk := range c.progress {
		if mk.cold || k < s.seq || k > s.coversThrough {
			continue
		}
		stale = true
		if mk.off > headerSize {
			delivered = true
		}
	}
	if stale {
		fully := len(s.srcSizes) > 0
		for seq, size := range s.srcSizes {
			if mk, ok := c.progress[seq]; !ok || mk.cold || mk.off < size {
				fully = false
				break
			}
		}
		for k, mk := range c.progress {
			if !mk.cold && k >= s.seq && k <= s.coversThrough {
				delete(c.progress, k)
			}
		}
		switch {
		case fully:
			c.progress[s.seq] = consumed
			return sn, 0, false
		case !delivered:
			start = 0 // fresh scan: nothing was ever delivered
		default:
			c.progress[s.seq] = consumed
			return sn, s.meta.count, false
		}
	}
	if start >= int64(len(s.blocks)) {
		return sn, 0, false // fully consumed (cold is always sealed)
	}
	if !c.q.matchSegment(&s.meta) {
		c.progress[s.seq] = consumed
		return sn, 0, false
	}
	return segSnap{
		seq:           s.seq,
		coversThrough: s.coversThrough,
		name:          s.name,
		start:         start,
		bound:         int64(len(s.blocks)),
		count:         s.meta.count,
		baseStamp:     s.meta.baseStamp,
		maxStamp:      s.meta.maxStamp,
		ordered:       s.meta.ordered,
		sealed:        true,
		cold:          true,
		blocks:        s.blocks,
	}, 0, true
}

// runStream scans one segment snapshot span by span, sending decoded
// chunks to the merge. A semaphore permit is held only across the
// read+decode, never across a channel send, so a blocked merge cannot
// starve other streams of scan slots.
func (c *PCursor) runStream(ps *pstream) {
	defer c.wg.Done()
	defer close(ps.ch)
	sn := &ps.snap
	f, err := c.st.be.OpenRead(sn.name)
	if err != nil {
		// Retention won the race to the file: what this stream would
		// have delivered is bounded by the segment's count.
		ps.missed = sn.count
		ps.endOff = sn.bound
		return
	}
	defer f.Close()
	if sn.cold {
		c.scanCold(ps, f)
		return
	}
	if !sn.ordered {
		c.scanUnordered(ps, f)
		return
	}
	off := sn.start
	for off < sn.bound {
		if !c.acquire() {
			ps.endOff = off
			return
		}
		ck := c.pool.get()
		stop, serr := c.scanSpan(f, sn, &off, ck)
		c.release()
		if serr != nil {
			c.pool.put(ck)
			ps.err = serr
			ps.endOff = off
			return
		}
		if len(ck.entries) > 0 {
			select {
			case ps.ch <- ck:
			case <-c.done:
				c.pool.put(ck)
				ps.endOff = off
				return
			}
		} else {
			c.pool.put(ck)
		}
		ps.endOff = off
		if stop {
			if sn.sealed {
				// Ordered early exit on an immutable segment: nothing
				// later can ever match; mark it fully consumed.
				ps.endOff = sn.bound
			}
			return
		}
	}
	ps.endOff = sn.bound
}

func (c *PCursor) acquire() bool {
	select {
	case c.sem <- struct{}{}:
		return true
	case <-c.done:
		return false
	}
}

func (c *PCursor) release() { <-c.sem }

// scanSpan reads one span of committed bytes at *off and decodes its
// whole frames into ck, filtering as it goes. stop reports the ordered
// early exit (a stamp past MaxStamp was seen).
func (c *PCursor) scanSpan(f io.ReaderAt, sn *segSnap, off *int64, ck *pchunk) (stop bool, err error) {
	want := sn.bound - *off
	if want > scanSpanBytes {
		want = scanSpanBytes
	}
	if int64(cap(ck.data)) < want {
		ck.data = make([]byte, want)
	} else {
		ck.data = ck.data[:want]
	}
	n, rerr := f.ReadAt(ck.data, *off)
	ck.data = ck.data[:n]
	if n == 0 {
		if rerr != nil && rerr != io.EOF {
			return false, rerr
		}
		// Committed bytes unreadable: treat as segment end, like the
		// sequential cursor's shortfall handling.
		*off = sn.bound
		return false, nil
	}
	buf := ck.data
	pos := 0
	for pos+tracer.Align <= len(buf) {
		_, recSize, perr := tracer.PeekRecord(buf[pos:])
		if perr != nil {
			return false, perr
		}
		if recSize > maxRecordSize {
			// Mirror the sequential cursor: an implausible size ends the
			// segment quietly (recovery truncates it at reopen).
			*off = sn.bound
			return false, nil
		}
		frame := recSize + tailSize
		if pos+frame > len(buf) {
			break // frame crosses the span boundary: the next span rereads it
		}
		rec, tail := buf[pos:pos+recSize], buf[pos+recSize:pos+frame]
		// The tail magic keeps the frame walk honest for every frame;
		// the checksum and the decode are deferred until the raw header
		// fields say the query wants this record, so a pruned frame
		// costs three loads and a mask test instead of a CRC pass.
		if uint32(le64(tail)>>32) != frameMagic {
			return false, fmt.Errorf("%w: bad frame magic %#x", tracer.ErrCorrupt, uint32(le64(tail)>>32))
		}
		if recSize < tracer.EventHeaderSize {
			return false, fmt.Errorf("%w: short event", tracer.ErrCorrupt)
		}
		stamp := le64(rec[8:])
		pos += frame
		if sn.ordered && c.q.q.MaxStamp > 0 && stamp > c.q.q.MaxStamp {
			*off += int64(pos)
			return true, nil
		}
		w3 := le64(rec[24:])
		if !c.q.matchRaw(stamp, le64(rec[16:]), uint8(w3>>56), uint32(w3>>32)&0xFFFFFF, uint8(w3>>24), uint8(w3>>16)) {
			continue
		}
		if cerr := checkFrame(rec, tail); cerr != nil {
			return false, cerr
		}
		var e tracer.Entry
		if derr := decodeEventTo(rec, &e); derr != nil {
			return false, derr
		}
		// matchRaw is conservative for payload predicates; finish the
		// job now that the payload is decoded.
		if c.q.pred != nil && c.q.pred.NeedsPayload() && !c.q.pred.Match(&e) {
			continue
		}
		ck.entries = append(ck.entries, e)
		if len(ck.entries) >= chunkMaxEntries {
			break
		}
	}
	if pos == 0 {
		// A frame longer than the remaining committed bytes: the
		// snapshot outran the file. End the stream here.
		*off = sn.bound
		return false, nil
	}
	*off += int64(pos)
	return false, nil
}

// scanUnordered loads the stream's whole remaining range (bounded by
// SegmentBytes) as one chunk and sorts it by stamp, so the merge can
// treat every stream as stamp-ordered.
func (c *PCursor) scanUnordered(ps *pstream, f io.ReaderAt) {
	sn := &ps.snap
	if !c.acquire() {
		return
	}
	ck := c.pool.get()
	want := sn.bound - sn.start
	if int64(cap(ck.data)) < want {
		ck.data = make([]byte, want)
	} else {
		ck.data = ck.data[:want]
	}
	n, rerr := f.ReadAt(ck.data, sn.start)
	ck.data = ck.data[:n]
	var err error
	if int64(n) < want && rerr != nil && rerr != io.EOF {
		err = rerr
	}
	pos := 0
	if err == nil {
		buf := ck.data
		for pos+tracer.Align <= len(buf) {
			_, recSize, perr := tracer.PeekRecord(buf[pos:])
			if perr != nil {
				err = perr
				break
			}
			if recSize > maxRecordSize {
				pos = len(buf)
				break
			}
			frame := recSize + tailSize
			if pos+frame > len(buf) {
				break
			}
			if cerr := checkFrame(buf[pos:pos+recSize], buf[pos+recSize:pos+frame]); cerr != nil {
				err = cerr
				break
			}
			var e tracer.Entry
			if derr := decodeEventTo(buf[pos:pos+recSize], &e); derr != nil {
				err = derr
				break
			}
			pos += frame
			if c.q.match(&e) {
				ck.entries = append(ck.entries, e)
			}
		}
		sort.Slice(ck.entries, func(i, j int) bool {
			return ck.entries[i].Stamp < ck.entries[j].Stamp
		})
	}
	c.release()
	ps.err = err
	ps.endOff = sn.start + int64(pos)
	if len(ck.entries) > 0 {
		select {
		case ps.ch <- ck:
		case <-c.done:
			c.pool.put(ck)
		}
	} else {
		c.pool.put(ck)
	}
}

// scanCold scans one cold segment block by block: prune on the block
// header's metadata (skipping the decompression entirely), then inflate
// and decode under a semaphore permit. endOff counts blocks, not bytes —
// a cold segment is immutable, so block indices are stable resume marks.
func (c *PCursor) scanCold(ps *pstream, f io.ReaderAt) {
	sn := &ps.snap
	if !sn.ordered {
		c.scanColdUnordered(ps, f)
		return
	}
	idx := sn.start
	for idx < sn.bound {
		b := &sn.blocks[idx]
		if c.q.q.MaxStamp > 0 && b.meta.baseStamp > c.q.q.MaxStamp {
			// Ordered early exit: every remaining block starts later
			// still, and cold segments are immutable.
			ps.endOff = sn.bound
			return
		}
		if !c.q.matchColdBlock(b) {
			idx++
			ps.endOff = idx
			c.st.obs.blocksPruned.Add(1)
			continue
		}
		if !c.acquire() {
			ps.endOff = idx
			return
		}
		ck := c.pool.get()
		var stop bool
		var err error
		if b.v2 != nil {
			stop, err = c.decodeColdV2(ck, sn.name, f, b, true)
		} else {
			var buf []byte
			if buf, err = c.st.inflateCached(sn.name, f, b); err == nil {
				stop, err = c.decodeCold(ck, buf, true)
			}
		}
		c.release()
		if err != nil {
			c.pool.put(ck)
			ps.err = err
			ps.endOff = idx
			return
		}
		idx++
		if len(ck.entries) > 0 {
			select {
			case ps.ch <- ck:
			case <-c.done:
				c.pool.put(ck)
				ps.endOff = idx
				return
			}
		} else {
			c.pool.put(ck)
		}
		ps.endOff = idx
		if stop {
			// A stamp past MaxStamp inside an ordered, immutable
			// segment: nothing later can match.
			ps.endOff = sn.bound
			return
		}
	}
	ps.endOff = sn.bound
}

// scanColdUnordered inflates every surviving block into one chunk and
// sorts the matches by stamp, so the heap merge can treat the stream as
// stamp-ordered (mirroring scanUnordered for row segments).
func (c *PCursor) scanColdUnordered(ps *pstream, f io.ReaderAt) {
	sn := &ps.snap
	if !c.acquire() {
		return
	}
	ck := c.pool.get()
	var err error
	for idx := sn.start; idx < sn.bound; idx++ {
		b := &sn.blocks[idx]
		if !c.q.matchColdBlock(b) {
			c.st.obs.blocksPruned.Add(1)
			continue
		}
		if b.v2 != nil {
			if _, err = c.decodeColdV2(ck, sn.name, f, b, false); err != nil {
				break
			}
			continue
		}
		var buf []byte
		if buf, err = c.st.inflateCached(sn.name, f, b); err != nil {
			break
		}
		if _, err = c.decodeCold(ck, buf, false); err != nil {
			break
		}
	}
	if err == nil {
		sort.Slice(ck.entries, func(i, j int) bool {
			return ck.entries[i].Stamp < ck.entries[j].Stamp
		})
	}
	c.release()
	ps.err = err
	if err != nil {
		c.pool.put(ck)
		ps.endOff = sn.start
		return
	}
	ps.endOff = sn.bound
	if len(ck.entries) > 0 {
		select {
		case ps.ch <- ck:
		case <-c.done:
			c.pool.put(ck)
		}
	} else {
		c.pool.put(ck)
	}
}

// decodeCold walks the inflated frames in buf (the cold format is
// frame-preserving, so this is the same walk scanSpan does over row
// bytes), appending matches to ck.entries. buf is typically shared
// block-cache memory: entries alias it read-only and the GC keeps it
// alive for as long as any entry does. With ordered set, stop reports a
// stamp past MaxStamp.
func (c *PCursor) decodeCold(ck *pchunk, buf []byte, ordered bool) (stop bool, err error) {
	pos := 0
	for pos+tracer.Align <= len(buf) {
		_, recSize, perr := tracer.PeekRecord(buf[pos:])
		if perr != nil {
			return false, perr
		}
		frame := recSize + tailSize
		if recSize > maxRecordSize || pos+frame > len(buf) {
			return false, fmt.Errorf("%w: cold frame overruns block", tracer.ErrCorrupt)
		}
		rec, tail := buf[pos:pos+recSize], buf[pos+recSize:pos+frame]
		if uint32(le64(tail)>>32) != frameMagic {
			return false, fmt.Errorf("%w: bad frame magic %#x", tracer.ErrCorrupt, uint32(le64(tail)>>32))
		}
		if recSize < tracer.EventHeaderSize {
			return false, fmt.Errorf("%w: short event", tracer.ErrCorrupt)
		}
		stamp := le64(rec[8:])
		pos += frame
		if ordered && c.q.q.MaxStamp > 0 && stamp > c.q.q.MaxStamp {
			return true, nil
		}
		w3 := le64(rec[24:])
		if !c.q.matchRaw(stamp, le64(rec[16:]), uint8(w3>>56), uint32(w3>>32)&0xFFFFFF, uint8(w3>>24), uint8(w3>>16)) {
			continue
		}
		if cerr := checkFrame(rec, tail); cerr != nil {
			return false, cerr
		}
		var e tracer.Entry
		if derr := decodeEventTo(rec, &e); derr != nil {
			return false, derr
		}
		if c.q.pred != nil && c.q.pred.NeedsPayload() && !c.q.pred.Match(&e) {
			continue
		}
		ck.entries = append(ck.entries, e)
	}
	return false, nil
}

// decodeColdV2 is decodeCold for a columnar block: the decoded columns
// come through the cache and are filtered without touching the payload
// section; the payload column is inflated only when a surviving row
// actually carries payload bytes. Entries' payloads alias the cached
// payload buffer, which the GC keeps alive for as long as any entry
// does. With ordered set, stop reports a stamp past MaxStamp.
func (c *PCursor) decodeColdV2(ck *pchunk, name string, f io.ReaderAt, b *coldBlock, ordered bool) (stop bool, err error) {
	cb, err := c.st.columnsCached(name, f, b)
	if err != nil {
		return false, err
	}
	count := int(b.meta.count)
	needPay := false
	for i := 0; i < count; i++ {
		if ordered && c.q.q.MaxStamp > 0 && cb.stamps[i] > c.q.q.MaxStamp {
			stop = true
			count = i
			break
		}
		if !needPay && cb.plens[i] > 0 &&
			c.q.matchRaw(cb.stamps[i], cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i]) {
			needPay = true
		}
	}
	var pay []byte
	if needPay {
		if pay, err = c.st.inflatePayCached(name, f, b); err != nil {
			return false, err
		}
	} else if b.v2.payLen > 0 {
		c.st.obs.payloadSkips.Add(1)
	}
	for i := 0; i < count; i++ {
		if !c.q.matchRaw(cb.stamps[i], cb.ts[i], cb.cores[i], cb.tids[i], cb.cats[i], cb.levels[i]) {
			continue
		}
		e := tracer.Entry{
			Stamp: cb.stamps[i], TS: cb.ts[i],
			Core: cb.cores[i], TID: cb.tids[i],
			Category: cb.cats[i], Level: cb.levels[i],
		}
		if cb.plens[i] > 0 {
			e.Payload = pay[cb.payOff[i]:cb.payOff[i+1]:cb.payOff[i+1]]
		}
		if c.q.pred != nil && c.q.pred.NeedsPayload() && !c.q.pred.Match(&e) {
			continue
		}
		ck.entries = append(ck.entries, e)
	}
	return stop, nil
}

// advanceStream makes ps.cur/idx reference the stream's next
// undelivered entry, blocking for the scanner when needed. false means
// the stream finished (its missed tally is folded in).
func (c *PCursor) advanceStream(ps *pstream) bool {
	for {
		if ps.cur != nil {
			if ps.idx < len(ps.cur.entries) {
				return true
			}
			c.retired = append(c.retired, ps.cur)
			ps.cur, ps.idx = nil, 0
		}
		ck, ok := <-ps.ch
		if !ok {
			c.pendingMissed += ps.missed
			ps.missed = 0
			return false
		}
		ps.cur, ps.idx = ck, 0
	}
}

// mergeHeap delivers in global stamp order by popping the stream with
// the smallest head stamp.
func (c *PCursor) mergeHeap(batch []tracer.Entry) (int, error) {
	n := 0
	for n < len(batch) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			c.abortRound()
			return n, nil
		}
		if len(c.h) == 0 {
			return n, c.finishRound()
		}
		ps := c.h[0]
		batch[n] = ps.cur.entries[ps.idx]
		ps.idx++
		n++
		c.delivered++
		if ps.idx >= len(ps.cur.entries) {
			if !c.advanceStream(ps) {
				last := len(c.h) - 1
				c.h[0] = c.h[last]
				c.h = c.h[:last]
				if len(c.h) > 1 {
					c.down(0)
				}
				continue
			}
		}
		c.down(0)
	}
	return n, nil
}

// mergeConcat is the disjoint-ordered fast path: streams are consumed
// whole, in segment order, with bulk copies per chunk.
func (c *PCursor) mergeConcat(batch []tracer.Entry) (int, error) {
	n := 0
	for n < len(batch) {
		if c.q.q.Limit > 0 && c.delivered >= c.q.q.Limit {
			c.abortRound()
			return n, nil
		}
		if c.ci >= len(c.streams) {
			return n, c.finishRound()
		}
		ps := c.streams[c.ci]
		if ps.cur == nil || ps.idx >= len(ps.cur.entries) {
			if !c.advanceStream(ps) {
				c.ci++
				continue
			}
		}
		k := copy(batch[n:], ps.cur.entries[ps.idx:])
		if c.q.q.Limit > 0 {
			if rem := c.q.q.Limit - c.delivered; k > rem {
				k = rem
			}
		}
		n += k
		ps.idx += k
		c.delivered += k
	}
	return n, nil
}

// finishRound records every stream's resume offset and surfaces the
// first stream error. Every stream has already closed its channel.
func (c *PCursor) finishRound() error {
	var err error
	c.wg.Wait()
	for _, ps := range c.streams {
		if ps.cur != nil {
			c.retired = append(c.retired, ps.cur)
			ps.cur = nil
		}
		c.progress[ps.snap.seq] = pmark{off: ps.endOff, cold: ps.snap.cold}
		if ps.err != nil && err == nil {
			err = ps.err
		}
	}
	close(c.done)
	c.streams = nil
	c.h = c.h[:0]
	return err
}

// abortRound cancels the in-flight streams (Limit reached or Close) and
// records the offsets they reached. Chunks that never made it to the
// caller go straight back to the pool.
func (c *PCursor) abortRound() {
	close(c.done)
	for _, ps := range c.streams {
		for ck := range ps.ch {
			c.pool.put(ck)
		}
	}
	c.wg.Wait()
	for _, ps := range c.streams {
		if ps.cur != nil {
			c.pool.put(ps.cur)
			ps.cur = nil
		}
		c.progress[ps.snap.seq] = pmark{off: ps.endOff, cold: ps.snap.cold}
	}
	c.streams = nil
	c.h = c.h[:0]
}

func (c *PCursor) recycleRetired() {
	for _, ck := range c.retired {
		c.pool.put(ck)
	}
	c.retired = c.retired[:0]
}

// down restores the min-heap property from index i.
func (c *PCursor) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(c.h) {
			return
		}
		m := l
		if r := l + 1; r < len(c.h) && c.headStamp(r) < c.headStamp(l) {
			m = r
		}
		if c.headStamp(i) <= c.headStamp(m) {
			return
		}
		c.h[i], c.h[m] = c.h[m], c.h[i]
		i = m
	}
}

func (c *PCursor) headStamp(i int) uint64 {
	ps := c.h[i]
	return ps.cur.entries[ps.idx].Stamp
}

// Close implements tracer.Cursor.
func (c *PCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.streams != nil {
		c.abortRound()
	}
	c.recycleRetired()
	for _, ck := range c.pool.free {
		globalChunks.Put(ck)
	}
	c.pool.free = nil
	return nil
}

var _ tracer.Cursor = (*PCursor)(nil)
