// Decompressed-block cache: cold queries pay a DEFLATE inflate per
// block touched, which would make every repeated analytical query over
// the cold tier re-do the same decompression. The store keeps one
// bounded LRU cache of decompressed block sections, shared by all
// cursors (sequential and parallel): v1 row blocks and v2 payload
// sections cache as raw bytes, v2 meta sections as fully decoded column
// blocks (so warm scans skip the varint decode too). The first scan of
// a block inflates and caches it, later scans read the cached form.
//
// Ownership: cached buffers and column blocks are immutable. Cursors
// alias them (entries
// handed to callers may point into cache memory) and never write to
// them; eviction only drops the cache's reference — a buffer still
// aliased by a live cursor stays valid until the GC collects it.
package store

import (
	"container/list"
	"io"
	"sync"
)

// defaultColdCacheBytes is the block-cache budget when
// Config.ColdCacheBytes is zero.
const defaultColdCacheBytes = 32 << 20

// blockKey identifies one cold block: the file it lives in plus its
// payload offset (unique within the file).
type blockKey struct {
	name string
	off  int64
}

// cacheEnt is one cached section: either raw decompressed bytes (v1
// blocks, v2 payload sections) or a decoded v2 column block. size is
// the entry's budget charge — len(data) for bytes, the decoded column
// footprint for cols (larger than the varint-packed meta section it
// came from, which is the point: lookups skip the varint decode).
type cacheEnt struct {
	key  blockKey
	data []byte
	cols *colBlock
	size int64
}

// blockCache is the store-wide decompressed-block LRU. A nil *blockCache
// is a valid always-miss cache (caching disabled).
type blockCache struct {
	mu           sync.Mutex
	max          int64
	size         int64
	lru          *list.List                 // front = most recently used
	m            map[blockKey]*list.Element // value: *cacheEnt
	hits, misses uint64
}

func newBlockCache(max int64) *blockCache {
	return &blockCache{max: max, lru: list.New(), m: make(map[blockKey]*list.Element)}
}

// get returns the cached entry, or nil on a miss.
func (bc *blockCache) get(k blockKey) *cacheEnt {
	if bc == nil {
		return nil
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if el, ok := bc.m[k]; ok {
		bc.lru.MoveToFront(el)
		bc.hits++
		return el.Value.(*cacheEnt)
	}
	bc.misses++
	return nil
}

// lookup returns the cached decompressed payload, or nil on a miss.
func (bc *blockCache) lookup(k blockKey) []byte {
	if ent := bc.get(k); ent != nil {
		return ent.data
	}
	return nil
}

// lookupCols returns the cached decoded column block, or nil on a miss.
func (bc *blockCache) lookupCols(k blockKey) *colBlock {
	if ent := bc.get(k); ent != nil {
		return ent.cols
	}
	return nil
}

// put caches ent and evicts past the budget, oldest first. Two cursors
// racing on the same miss both inflate; the first insert wins and the
// loser's buffer is simply not cached.
func (bc *blockCache) put(ent *cacheEnt) {
	if bc == nil || ent.size > bc.max {
		return
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if _, ok := bc.m[ent.key]; ok {
		return
	}
	bc.m[ent.key] = bc.lru.PushFront(ent)
	bc.size += ent.size
	for bc.size > bc.max {
		el := bc.lru.Back()
		old := el.Value.(*cacheEnt)
		bc.lru.Remove(el)
		delete(bc.m, old.key)
		bc.size -= old.size
	}
}

// insert caches data (taking read-only ownership).
func (bc *blockCache) insert(k blockKey, data []byte) {
	bc.put(&cacheEnt{key: k, data: data, size: int64(len(data))})
}

func (bc *blockCache) counters() (hits, misses uint64) {
	if bc == nil {
		return 0, 0
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.hits, bc.misses
}

// inflateCached returns block b of cold file name decompressed, through
// the cache. The returned buffer is shared and read-only; callers decode
// from it but never write to it.
func (st *Store) inflateCached(name string, f io.ReaderAt, b *coldBlock) ([]byte, error) {
	k := blockKey{name: name, off: b.off}
	if data := st.bcache.lookup(k); data != nil {
		return data, nil
	}
	// Fresh destination buffer on every miss: it becomes the immutable
	// cached copy (or dies young if another inflate won the race).
	_, out, err := inflateBlock(f, b, nil, make([]byte, 0, b.rawLen))
	if err != nil {
		return nil, err
	}
	st.bcache.insert(k, out)
	return out, nil
}

// columnsCached returns a v2 block's meta section decoded into columns,
// through the cache. The cache holds the *decoded* colBlock, not the
// inflated meta bytes: repeated queries over a warm cold tier skip both
// the DEFLATE inflate and the per-row varint/delta/dictionary decode
// (the latter dominated repeated cold scans when the bytes were cached
// instead). Sections get distinct keys within the block: the meta
// section is keyed at the block offset, the payload section at the
// payload's own file offset — so a metadata-only query never forces the
// payload into the cache. The returned colBlock is shared and
// immutable; callers read its columns but never write to them.
func (st *Store) columnsCached(name string, f io.ReaderAt, b *coldBlock) (*colBlock, error) {
	k := blockKey{name: name, off: b.off}
	if cb := st.bcache.lookupCols(k); cb != nil {
		return cb, nil
	}
	_, meta, err := inflateMetaV2(f, b, nil, make([]byte, 0, b.v2.metaRawLen))
	if err != nil {
		return nil, err
	}
	cb := new(colBlock)
	if err := decodeColumns(meta, b, cb); err != nil {
		return nil, err
	}
	st.bcache.put(&cacheEnt{key: k, cols: cb, size: cb.memSize()})
	return cb, nil
}

// inflatePayCached returns a v2 block's decompressed payload section
// through the cache.
func (st *Store) inflatePayCached(name string, f io.ReaderAt, b *coldBlock) ([]byte, error) {
	k := blockKey{name: name, off: b.off + b.v2.metaLen}
	if data := st.bcache.lookup(k); data != nil {
		return data, nil
	}
	_, out, err := inflatePayV2(f, b, nil, make([]byte, 0, b.v2.payRawLen))
	if err != nil {
		return nil, err
	}
	st.bcache.insert(k, out)
	return out, nil
}
