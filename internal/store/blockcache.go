// Decompressed-block cache: cold queries pay a DEFLATE inflate per
// block touched, which would make every repeated analytical query over
// the cold tier re-do the same decompression. The store keeps one
// bounded LRU cache of decompressed block payloads, shared by all
// cursors (sequential and parallel): the first scan of a block inflates
// and caches it, later scans decode straight from the cached buffer.
//
// Ownership: cached buffers are immutable. Cursors alias them (entries
// handed to callers may point into cache memory) and never write to
// them; eviction only drops the cache's reference — a buffer still
// aliased by a live cursor stays valid until the GC collects it.
package store

import (
	"container/list"
	"io"
	"sync"
)

// defaultColdCacheBytes is the block-cache budget when
// Config.ColdCacheBytes is zero.
const defaultColdCacheBytes = 32 << 20

// blockKey identifies one cold block: the file it lives in plus its
// payload offset (unique within the file).
type blockKey struct {
	name string
	off  int64
}

type cacheEnt struct {
	key  blockKey
	data []byte
}

// blockCache is the store-wide decompressed-block LRU. A nil *blockCache
// is a valid always-miss cache (caching disabled).
type blockCache struct {
	mu           sync.Mutex
	max          int64
	size         int64
	lru          *list.List                 // front = most recently used
	m            map[blockKey]*list.Element // value: *cacheEnt
	hits, misses uint64
}

func newBlockCache(max int64) *blockCache {
	return &blockCache{max: max, lru: list.New(), m: make(map[blockKey]*list.Element)}
}

// lookup returns the cached decompressed payload, or nil on a miss.
func (bc *blockCache) lookup(k blockKey) []byte {
	if bc == nil {
		return nil
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if el, ok := bc.m[k]; ok {
		bc.lru.MoveToFront(el)
		bc.hits++
		return el.Value.(*cacheEnt).data
	}
	bc.misses++
	return nil
}

// insert caches data (taking read-only ownership) and evicts past the
// budget, oldest first. Two cursors racing on the same miss both
// inflate; the first insert wins and the loser's buffer is simply not
// cached.
func (bc *blockCache) insert(k blockKey, data []byte) {
	if bc == nil || int64(len(data)) > bc.max {
		return
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if _, ok := bc.m[k]; ok {
		return
	}
	bc.m[k] = bc.lru.PushFront(&cacheEnt{key: k, data: data})
	bc.size += int64(len(data))
	for bc.size > bc.max {
		el := bc.lru.Back()
		ent := el.Value.(*cacheEnt)
		bc.lru.Remove(el)
		delete(bc.m, ent.key)
		bc.size -= int64(len(ent.data))
	}
}

func (bc *blockCache) counters() (hits, misses uint64) {
	if bc == nil {
		return 0, 0
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.hits, bc.misses
}

// inflateCached returns block b of cold file name decompressed, through
// the cache. The returned buffer is shared and read-only; callers decode
// from it but never write to it.
func (st *Store) inflateCached(name string, f io.ReaderAt, b *coldBlock) ([]byte, error) {
	k := blockKey{name: name, off: b.off}
	if data := st.bcache.lookup(k); data != nil {
		return data, nil
	}
	// Fresh destination buffer on every miss: it becomes the immutable
	// cached copy (or dies young if another inflate won the race).
	_, out, err := inflateBlock(f, b, nil, make([]byte, 0, b.rawLen))
	if err != nil {
		return nil, err
	}
	st.bcache.insert(k, out)
	return out, nil
}
