// Background compaction pipeline: ages data through the three tiers.
//
//	hot   — row segments as rotation sealed them
//	compacted — adjacent small sealed segments merged into one (Compact,
//	        compact.go)
//	cold  — row segments compressed into block files (CompactCold,
//	        cold.go)
//
// A pluggable Strategy picks what moves, polling the store's blocklist
// (the per-segment view snapshot); the compactor goroutine runs a merge
// + freeze pass every Config.CompactInterval. Every transition is
// atomic: the result is written to a .tmp name, fsynced, renamed in
// (the commit point), and only then are the sources deleted. A crash at
// any boundary leaves either the sources or the committed result, never
// both live — recovery deletes the duplicate copy by seq coverage.
//
// Freezing does its compression I/O outside st.mu over the sealed,
// immutable sources, then re-takes the lock and verifies the run is
// still intact (retention may have raced it) before committing.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"btrace/internal/tracer"
)

// SegmentView is one blocklist entry: the public, strategy-facing
// summary of a segment.
type SegmentView struct {
	Seq           uint64
	CoversThrough uint64
	Tier          Tier
	Sealed        bool
	Ordered       bool
	Bytes         int64 // committed backend bytes (compressed for cold)
	RawBytes      int64 // uncompressed equivalent
	Blocks        int
	Events        uint64
	BaseStamp     uint64
	MaxStamp      uint64
	MinTS         uint64
	MaxTS         uint64
}

// StrategyConfig is the store state a Strategy decides against.
type StrategyConfig struct {
	SegmentBytes  int64
	ColdAfterNs   uint64
	ColdFileBytes int64
	// NewestTS is the newest event timestamp across all segments; freeze
	// ages are measured against it (virtual time, like retention).
	NewestTS uint64
}

// Strategy selects tier transitions from the blocklist. Implementations
// must be pure functions of their arguments (they are called under the
// store lock).
type Strategy interface {
	// MergeRun picks the next run view[start:start+n] of row segments to
	// merge into one (hot/compacted → compacted). n < 2 means nothing to
	// merge.
	MergeRun(view []SegmentView, cfg StrategyConfig) (start, n int)
	// FreezeRun picks the next run view[start:start+n] of sealed row
	// segments to compress into one cold file. n < 1 means nothing to
	// freeze.
	FreezeRun(view []SegmentView, cfg StrategyConfig) (start, n int)
}

// DefaultStrategy merges runs of adjacent small sealed row segments
// (each under SegmentBytes/2, merged body within SegmentBytes) and
// freezes sealed row segments older than ColdAfterNs, packing adjacent
// ones into cold files of up to ColdFileBytes raw bytes.
type DefaultStrategy struct{}

// MergeRun implements Strategy with the historical Compact selection.
func (DefaultStrategy) MergeRun(view []SegmentView, cfg StrategyConfig) (start, n int) {
	small := cfg.SegmentBytes / 2
	for i := 0; i < len(view); i++ {
		var total int64
		run := 0
		for j := i; j < len(view); j++ {
			s := &view[j]
			if !s.Sealed || s.Tier == TierCold || s.Bytes >= small {
				break
			}
			body := s.Bytes - headerSize
			if run > 0 && total+body+headerSize > cfg.SegmentBytes {
				break
			}
			total += body
			run++
		}
		if run >= 2 {
			return i, run
		}
	}
	return 0, 0
}

// FreezeRun implements Strategy: the leftmost run of sealed, non-empty
// row segments whose newest timestamp trails NewestTS by more than
// ColdAfterNs, extended while the run's raw bytes fit ColdFileBytes.
// ColdAfterNs == 0 disables freezing.
func (DefaultStrategy) FreezeRun(view []SegmentView, cfg StrategyConfig) (start, n int) {
	if cfg.ColdAfterNs == 0 {
		return 0, 0
	}
	eligible := func(s *SegmentView) bool {
		return s.Sealed && s.Tier != TierCold && s.Events > 0 &&
			s.MaxTS+cfg.ColdAfterNs <= cfg.NewestTS
	}
	for i := 0; i < len(view); i++ {
		if !eligible(&view[i]) {
			continue
		}
		var raw int64
		run := 0
		for j := i; j < len(view); j++ {
			if !eligible(&view[j]) {
				break
			}
			if run > 0 && raw+view[j].RawBytes > cfg.ColdFileBytes {
				break
			}
			raw += view[j].RawBytes
			run++
		}
		return i, run
	}
	return 0, 0
}

// blocklistLocked renders the per-segment view the strategies poll.
func (st *Store) blocklistLocked() []SegmentView {
	view := make([]SegmentView, 0, len(st.segs))
	for _, s := range st.segs {
		view = append(view, SegmentView{
			Seq:           s.seq,
			CoversThrough: s.coversThrough,
			Tier:          s.tier,
			Sealed:        s.sealed,
			Ordered:       s.meta.ordered,
			Bytes:         s.size,
			RawBytes:      s.rawSize,
			Blocks:        len(s.blocks),
			Events:        s.meta.count,
			BaseStamp:     s.meta.baseStamp,
			MaxStamp:      s.meta.maxStamp,
			MinTS:         s.meta.minTS,
			MaxTS:         s.meta.maxTS,
		})
	}
	return view
}

func (st *Store) strategyCfgLocked() StrategyConfig {
	cfg := StrategyConfig{
		SegmentBytes:  st.cfg.SegmentBytes,
		ColdAfterNs:   st.cfg.ColdAfterNs,
		ColdFileBytes: st.cfg.ColdFileBytes,
	}
	for _, s := range st.segs {
		if s.meta.count > 0 && s.meta.maxTS > cfg.NewestTS {
			cfg.NewestTS = s.meta.maxTS
		}
	}
	return cfg
}

// Blocklist returns the compactor's view of every segment, oldest
// first — what a Strategy polls, exported for inspection tooling.
func (st *Store) Blocklist() []SegmentView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.blocklistLocked()
}

// TierStat aggregates one tier of the blocklist.
type TierStat struct {
	Tier     string `json:"tier"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	RawBytes int64  `json:"raw_bytes"`
	Blocks   int    `json:"blocks"`
	Events   uint64 `json:"events"`
}

// TierStats returns per-tier aggregates (hot, compacted, cold — always
// three entries, in lifecycle order).
func (st *Store) TierStats() []TierStat {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := []TierStat{{Tier: TierHot.String()}, {Tier: TierCompacted.String()}, {Tier: TierCold.String()}}
	for _, s := range st.segs {
		t := &out[s.tier]
		t.Segments++
		t.Bytes += s.size
		t.RawBytes += s.rawSize
		t.Blocks += len(s.blocks)
		t.Events += s.meta.count
	}
	return out
}

// CompactTick runs one full compactor pass: merge small sealed
// segments, then freeze aged ones. The background goroutine calls it
// every CompactInterval; tests and tooling call it directly.
func (st *Store) CompactTick() error {
	if _, err := st.Compact(); err != nil {
		return err
	}
	_, err := st.CompactCold()
	return err
}

// CompactCold freezes aged sealed row segments into compressed cold
// block files, as selected by the strategy. It returns the number of
// row segments consumed. Passes are serialized: run selection and the
// commit happen under st.mu but the compression I/O between them does
// not, so concurrent passes could otherwise freeze the same run twice.
func (st *Store) CompactCold() (int, error) {
	st.freezeMu.Lock()
	defer st.freezeMu.Unlock()
	frozen := 0
	for {
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return frozen, ErrClosed
		}
		start, n := st.cfg.Strategy.FreezeRun(st.blocklistLocked(), st.strategyCfgLocked())
		if n < 1 {
			st.mu.Unlock()
			return frozen, nil
		}
		run := make([]*segment, n)
		copy(run, st.segs[start:start+n])
		st.mu.Unlock()
		fn, err := st.freezeRun(run)
		frozen += fn
		if err != nil {
			return frozen, err
		}
		if fn == 0 {
			// The run was invalidated between selection and commit
			// (retention or a concurrent pass); don't spin on it.
			return frozen, nil
		}
	}
}

// freezeRun compresses the given sealed row segments into one cold
// file. The compression I/O runs without the store lock (the sources
// are sealed and immutable; retention may delete them, but our read
// handles keep working — backend Remove semantics); the commit re-takes
// the lock, verifies the run is still live and contiguous, and renames
// the file in. Returns the number of segments consumed (0 if the run
// was invalidated and nothing was committed).
func (st *Store) freezeRun(run []*segment) (int, error) {
	for _, s := range run {
		if !s.sealed || s.isCold() {
			return 0, nil
		}
	}
	first, last := run[0], run[len(run)-1]
	name := coldName(first.seq)
	tmpName := name + ".tmp"
	tmp, err := st.be.Create(tmpName, 0)
	if err != nil {
		return 0, err
	}
	abort := func(e error) (int, error) {
		tmp.Close()
		st.be.Remove(tmpName)
		return 0, e
	}
	var w coldSink
	if st.cfg.coldV1 {
		w = newColdWriter(tmp, st.cfg.ColdBlockBytes)
	} else {
		w = newColdWriterV2(tmp, st.cfg.ColdBlockBytes)
	}
	srcSizes := make(map[uint64]int64, len(run))
	for _, s := range run {
		if err := st.freezeSource(w, s); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// Retention deleted the source before we opened it: the
				// run is gone, not broken. The commit-time intactness
				// check would reach the same verdict; fold it in early.
				tmp.Close()
				st.be.Remove(tmpName)
				return 0, nil
			}
			return abort(err)
		}
		srcSizes[s.seq] = s.size
	}
	if err := w.finish(last.coversThrough); err != nil {
		return abort(err)
	}
	fileMeta, blocks, rawTotal := w.result()
	size, err := tmp.Size()
	if err != nil {
		return abort(err)
	}
	if err := tmp.Close(); err != nil {
		st.be.Remove(tmpName)
		return 0, err
	}

	st.mu.Lock()
	if st.closed || !st.runIntactLocked(run) {
		st.mu.Unlock()
		st.be.Remove(tmpName)
		return 0, nil
	}
	// Commit point: the cold file replaces the whole run.
	if err := st.be.Rename(tmpName, name); err != nil {
		st.mu.Unlock()
		st.be.Remove(tmpName)
		return 0, err
	}
	cold := &segment{
		seq:           first.seq,
		name:          name,
		coversThrough: last.coversThrough,
		size:          size,
		rawSize:       headerSize + rawTotal,
		tier:          TierCold,
		sealed:        true,
		meta:          fileMeta,
		blocks:        blocks,
		srcSizes:      srcSizes,
	}
	i := st.segIndexLocked(run[0])
	st.segs[i] = cold
	st.segs = append(st.segs[:i+1], st.segs[i+len(run):]...)
	st.stats.ColdCompactions++
	st.stats.SegmentsFrozen += uint64(len(run))
	st.stats.ColdBlocksBuilt += uint64(len(blocks))
	st.stats.ColdBytesWritten += uint64(size)
	st.stats.ColdRawBytes += uint64(rawTotal)
	st.publishObsLocked()
	names := make([]string, 0, len(run))
	for _, s := range run {
		if s.name != name {
			names = append(names, s.name)
		}
	}
	st.mu.Unlock()
	// The sources are shadowed by the committed cold file; a crash here
	// leaves them for recovery's leftover rule (coversThrough).
	for _, n := range names {
		st.be.Remove(n)
	}
	return len(run), nil
}

// freezeSource copies one source segment's frames into the cold sink,
// verifying every frame's checksum on the way: recovery can no longer
// frame-scan the bytes once they are compressed, so freezing is the
// last cheap moment to catch rot. Events are fully decoded before
// handoff — the columnar writer needs every field, and decode failures
// are freeze failures for the same reason checksum failures are.
func (st *Store) freezeSource(w coldSink, s *segment) error {
	src, err := st.be.OpenRead(s.name)
	if err != nil {
		return err
	}
	defer src.Close()
	rd := chunkReader{f: src, off: headerSize, bound: s.size}
	off := int64(headerSize)
	for off < s.size {
		head, err := rd.peek(tracer.Align)
		if err != nil {
			return err
		}
		if len(head) < tracer.Align {
			return fmt.Errorf("store: freeze: short read in %s at %d", s.name, off)
		}
		_, recSize, perr := tracer.PeekRecord(head)
		if perr != nil || recSize > maxRecordSize {
			return fmt.Errorf("store: freeze: bad frame in %s at %d", s.name, off)
		}
		frame := recSize + tailSize
		buf, err := rd.peek(frame)
		if err != nil || len(buf) < frame {
			return fmt.Errorf("store: freeze: torn frame in %s at %d", s.name, off)
		}
		if cerr := checkFrame(buf[:recSize], buf[recSize:frame]); cerr != nil {
			return fmt.Errorf("store: freeze: %s at %d: %w", s.name, off, cerr)
		}
		if recSize < tracer.EventHeaderSize {
			return fmt.Errorf("store: freeze: short event in %s at %d", s.name, off)
		}
		var e tracer.Entry
		if derr := decodeEventTo(buf[:recSize], &e); derr != nil {
			return fmt.Errorf("store: freeze: %s at %d: %w", s.name, off, derr)
		}
		if err := w.add(buf[:frame], &e); err != nil {
			return err
		}
		rd.advance(frame)
		off += int64(frame)
	}
	return nil
}

// runIntactLocked reports whether the run still sits, in order and
// uninterrupted, in the live segment list.
func (st *Store) runIntactLocked(run []*segment) bool {
	i := st.segIndexLocked(run[0])
	if i < 0 || i+len(run) > len(st.segs) {
		return false
	}
	for k, s := range run {
		if st.segs[i+k] != s {
			return false
		}
	}
	return true
}

// segIndexLocked returns the index of exactly this *segment, or -1.
func (st *Store) segIndexLocked(s *segment) int {
	i := st.findSeqLocked(s.seq)
	if i >= 0 && st.segs[i] == s {
		return i
	}
	return -1
}

// compactorLoop is the background compactor goroutine: one CompactTick
// per interval, failures counted and surfaced as stats/metrics (a tier
// transition that fails leaves the sources untouched; the next tick
// retries).
func (st *Store) compactorLoop() {
	defer st.compactWG.Done()
	t := time.NewTicker(st.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-st.compactStop:
			return
		case <-t.C:
			if err := st.CompactTick(); err != nil && err != ErrClosed {
				st.mu.Lock()
				st.stats.CompactorErrors++
				st.publishObsLocked()
				st.mu.Unlock()
			}
		}
	}
}

// stopCompactor joins the background compactor (idempotent; no-op when
// none is running).
func (st *Store) stopCompactor() {
	if st.compactStop == nil {
		return
	}
	st.compactOnce.Do(func() { close(st.compactStop) })
	st.compactWG.Wait()
}
