package store

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// TestObjectBackendConformance runs the store's core flows — append,
// rotation, merge, freeze, reopen, sequential and parallel queries —
// over the in-process object backend, checking the Backend contract is
// sufficient for everything the local path does.
func TestObjectBackendConformance(t *testing.T) {
	be := backend.NewObject()
	cfg := tierCfg()
	cfg.Backend = be
	st, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 900
	sealEvery(t, st, 1, n, 90)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	ts := st.TierStats()
	if ts[TierCold].Segments == 0 {
		t.Fatalf("object backend froze nothing: %+v", ts)
	}
	es := drainStore(t, st, Query{})
	if len(es) != n {
		t.Fatalf("drained %d events, want %d", len(es), n)
	}
	pc := st.QueryParallel(Query{MinStamp: 100, MaxStamp: 800}, 3)
	pes, _ := drainParallel(t, pc, 64)
	pc.Close()
	if len(pes) != 701 {
		t.Fatalf("parallel ranged query: %d events, want 701", len(pes))
	}
	// A second Open must fail while the lock is held, like the local
	// backend's LOCK file.
	if _, err := Open("", cfg); err == nil {
		t.Fatal("second Open over a locked object backend succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen over the same namespace: full recovery across tiers.
	st2, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if es = drainStore(t, st2, Query{}); len(es) != n {
		t.Fatalf("reopened object store drained %d events, want %d", len(es), n)
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("event %d: stamp %d", i, e.Stamp)
		}
		checkEntry(t, e)
	}
}

// snapBackend wraps an object backend and, while armed, clones the whole
// namespace after every mutating operation. Each clone is the exact
// state a process crash at that instant would leave behind — including
// the states between a tier transition's write, sync, rename and delete
// steps — and is later reopened and checked. Error injection cannot
// simulate this: on an injected error the code's cleanup paths still
// run, where a real crash runs nothing.
type snapBackend struct {
	inner *backend.Object

	mu     sync.Mutex
	armed  bool
	snaps  []*backend.Object
	labels []string
}

func (b *snapBackend) arm(on bool) {
	b.mu.Lock()
	b.armed = on
	b.mu.Unlock()
}

func (b *snapBackend) snap(label string) {
	b.mu.Lock()
	if b.armed {
		b.snaps = append(b.snaps, b.inner.Clone())
		b.labels = append(b.labels, label)
	}
	b.mu.Unlock()
}

func (b *snapBackend) Lock() (io.Closer, error)                    { return b.inner.Lock() }
func (b *snapBackend) List(p string) ([]string, error)             { return b.inner.List(p) }
func (b *snapBackend) OpenRead(n string) (backend.ReadFile, error) { return b.inner.OpenRead(n) }
func (b *snapBackend) Location() string                            { return "snap:" }

func (b *snapBackend) Create(name string, pre int64) (backend.File, error) {
	f, err := b.inner.Create(name, pre)
	b.snap("create " + name)
	if err != nil {
		return nil, err
	}
	return &snapFile{File: f, b: b, name: name}, nil
}

func (b *snapBackend) OpenRW(name string) (backend.File, error) {
	f, err := b.inner.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &snapFile{File: f, b: b, name: name}, nil
}

func (b *snapBackend) Remove(name string) error {
	err := b.inner.Remove(name)
	b.snap("remove " + name)
	return err
}

func (b *snapBackend) Rename(oldName, newName string) error {
	err := b.inner.Rename(oldName, newName)
	b.snap("rename " + newName)
	return err
}

type snapFile struct {
	backend.File
	b    *snapBackend
	name string
}

func (f *snapFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	f.b.snap(fmt.Sprintf("write %s@%d+%d", f.name, off, len(p)))
	return n, err
}

func (f *snapFile) Truncate(size int64) error {
	err := f.File.Truncate(size)
	f.b.snap("truncate " + f.name)
	return err
}

func (f *snapFile) Sync() error {
	err := f.File.Sync()
	f.b.snap("sync " + f.name)
	return err
}

func (f *snapFile) Seal() error {
	err := f.File.Seal()
	f.b.snap("seal " + f.name)
	return err
}

// TestCompactionChaosTierBoundaries is the crash-at-every-tier-boundary
// acceptance test: with a store full of committed events, one compactor
// pass (merge + freeze) runs over a snapshotting backend that records
// the namespace after every single mutation. Reopening every snapshot
// must recover exactly the committed events — each exactly once — no
// matter where in a tier transition the "crash" landed.
func TestCompactionChaosTierBoundaries(t *testing.T) {
	sb := &snapBackend{inner: backend.NewObject()}
	cfg := tierCfg()
	cfg.Backend = sb
	st, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 700
	sealEvery(t, st, 1, n, 35) // ~20 small sealed segments: merge + freeze fodder
	sb.arm(true)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	sb.arm(false)
	stats := st.Stats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsCompacted == 0 || stats.SegmentsFrozen == 0 {
		t.Fatalf("pass crossed no tier boundary: %+v", stats)
	}
	// Guard the test's own coverage: the snapshots must include both
	// commit points (rename to a row segment, rename to a cold file) and
	// the post-commit source deletions.
	var sawMerge, sawFreeze, sawRemove bool
	for _, l := range sb.labels {
		switch {
		case strings.HasPrefix(l, "rename seg-"):
			sawMerge = true
		case strings.HasPrefix(l, "rename col-"):
			sawFreeze = true
		case strings.HasPrefix(l, "remove seg-"):
			sawRemove = true
		}
	}
	if !sawMerge || !sawFreeze || !sawRemove {
		t.Fatalf("snapshots missed a boundary: merge=%v freeze=%v remove=%v (%d snaps)",
			sawMerge, sawFreeze, sawRemove, len(sb.snaps))
	}

	seen := make([]int, n+1)
	for i, clone := range sb.snaps {
		rcfg := tierCfg()
		rcfg.Backend = clone
		st2, err := Open("", rcfg)
		if err != nil {
			t.Fatalf("snapshot %d (%s): reopen: %v", i, sb.labels[i], err)
		}
		for s := range seen {
			seen[s] = 0
		}
		cur := st2.Query(Query{})
		buf := make([]tracer.Entry, 64)
		total := 0
		for {
			k, _, nerr := cur.Next(buf)
			if nerr != nil {
				t.Fatalf("snapshot %d (%s): query: %v", i, sb.labels[i], nerr)
			}
			if k == 0 {
				break
			}
			for _, e := range buf[:k] {
				if e.Stamp < 1 || e.Stamp > n {
					t.Fatalf("snapshot %d (%s): alien stamp %d", i, sb.labels[i], e.Stamp)
				}
				seen[e.Stamp]++
				total++
			}
		}
		cur.Close()
		if err := st2.Close(); err != nil {
			t.Fatalf("snapshot %d (%s): close: %v", i, sb.labels[i], err)
		}
		if total != n {
			t.Fatalf("snapshot %d (%s): recovered %d events, want %d", i, sb.labels[i], total, n)
		}
		for s := 1; s <= n; s++ {
			if seen[s] != 1 {
				t.Fatalf("snapshot %d (%s): stamp %d recovered %d times",
					i, sb.labels[i], s, seen[s])
			}
		}
	}
	t.Logf("verified %d crash points across merge and freeze boundaries", len(sb.snaps))
}

// TestStoreCompactorStress races the background compactor (1ms ticks)
// against live appends, explicit seals, parallel and sequential queries,
// and byte-budget retention. Run under -race via `make compaction-chaos`.
// The assertion is structural: no write-path error, no query corruption
// error, newest data still readable at the end.
func TestStoreCompactorStress(t *testing.T) {
	st, err := Open(t.TempDir(), Config{
		SegmentBytes:    8 << 10,
		MaxBytes:        256 << 10,
		CompactInterval: time.Millisecond,
		ColdAfterNs:     1,
		ColdBlockBytes:  4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var lastStamp uint64
	wg.Add(1)
	go func() { // appender + sealer: a steady diet of small sealed segments
		defer wg.Done()
		stamp := uint64(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var es []tracer.Entry
			for k := 0; k < 32; k++ {
				es = append(es, mkEntry(stamp))
				stamp++
			}
			if err := st.AppendEntries(es); err != nil {
				return
			}
			lastStamp = stamp - 1
			if i%4 == 3 {
				if err := st.Seal(); err != nil {
					return
				}
			}
		}
	}()
	qerrs := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(par bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var cur tracer.Cursor
				if par {
					cur = st.QueryParallel(Query{}, 3)
				} else {
					cur = st.Query(Query{})
				}
				buf := make([]tracer.Entry, 64)
				for {
					k, _, err := cur.Next(buf)
					if err != nil {
						select {
						case qerrs <- err:
						default:
						}
						cur.Close()
						return
					}
					if k == 0 {
						break
					}
				}
				cur.Close()
			}
		}(w == 0)
	}
	wg.Add(1)
	go func() { // foreground compaction racing the background ticker
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.CompactTick(); err != nil && err != ErrClosed {
				select {
				case qerrs <- err:
				default:
				}
				return
			}
		}
	}()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-qerrs:
		t.Fatalf("concurrent query/compaction error: %v", err)
	default:
	}
	if err := st.WriteErr(); err != nil {
		t.Fatalf("write path error: %v", err)
	}
	if lastStamp > 0 {
		es := drainStore(t, st, Query{MinStamp: lastStamp, MaxStamp: lastStamp})
		if len(es) != 1 {
			t.Fatalf("newest event %d not readable after stress: got %d copies", lastStamp, len(es))
		}
	}
	stats := st.Stats()
	if stats.SegmentsFrozen == 0 {
		t.Fatalf("stress never froze a segment: %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
