package store

import (
	"testing"

	"btrace/internal/tracer"
)

// sealEvery appends [from,to] in runs of step events, sealing after each
// run — manufacturing the small sealed segments the merge and freeze
// strategies act on.
func sealEvery(t *testing.T, st *Store, from, to, step uint64) {
	t.Helper()
	for s := from; s <= to; s += step {
		end := s + step - 1
		if end > to {
			end = to
		}
		appendRange(t, st, s, end)
		if err := st.Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
	}
}

// tierCfg is the common tiering test config: small segments, freezing
// enabled with a 1ns age threshold (every sealed segment except the one
// holding the newest timestamp is immediately eligible), small cold
// blocks so files hold several.
func tierCfg() Config {
	return Config{SegmentBytes: 32 << 10, ColdAfterNs: 1, ColdBlockBytes: 4 << 10}
}

func TestFreezeBuildsColdTier(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 1200
	sealEvery(t, st, 1, n, 100)
	if err := st.CompactTick(); err != nil {
		t.Fatalf("CompactTick: %v", err)
	}
	ts := st.TierStats()
	if ts[TierCold].Segments == 0 {
		t.Fatalf("no cold segments after CompactTick: %+v", ts)
	}
	if ts[TierCold].Blocks == 0 || ts[TierCold].Events == 0 {
		t.Fatalf("cold tier missing blocks/events: %+v", ts[TierCold])
	}
	stats := st.Stats()
	if stats.ColdCompactions == 0 || stats.SegmentsFrozen == 0 || stats.ColdBlocksBuilt == 0 {
		t.Fatalf("freeze stats not recorded: %+v", stats)
	}
	if stats.ColdBytesWritten >= stats.ColdRawBytes {
		t.Fatalf("cold tier did not shrink: wrote %d of %d raw bytes",
			stats.ColdBytesWritten, stats.ColdRawBytes)
	}

	// Both cursors must read transparently across all tiers.
	es := drainStore(t, st, Query{})
	if len(es) != n {
		t.Fatalf("sequential drain across tiers: %d events, want %d", len(es), n)
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("event %d: stamp %d", i, e.Stamp)
		}
		checkEntry(t, e)
	}
	pc := st.QueryParallel(Query{}, 3)
	pes, _ := drainParallel(t, pc, 64)
	pc.Close()
	if len(pes) != n {
		t.Fatalf("parallel drain across tiers: %d events, want %d", len(pes), n)
	}
	for i, e := range pes {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("parallel event %d: stamp %d", i, e.Stamp)
		}
		checkEntry(t, e)
	}
}

func TestColdReopenPreservesEverything(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	sealEvery(t, st, 1, n, 80)
	if err := st.CompactTick(); err != nil {
		t.Fatal(err)
	}
	frozen := st.Stats().SegmentsFrozen
	if frozen == 0 {
		t.Fatal("nothing frozen; test would not exercise cold recovery")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts := st2.TierStats()
	if ts[TierCold].Segments == 0 {
		t.Fatalf("cold segments lost across reopen: %+v", ts)
	}
	es := drainStore(t, st2, Query{})
	if len(es) != n {
		t.Fatalf("reopened store drained %d events, want %d", len(es), n)
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("event %d: stamp %d", i, e.Stamp)
		}
	}
	// The store keeps accepting appends and freezing them.
	sealEvery(t, st2, n+1, n+200, 50)
	if err := st2.CompactTick(); err != nil {
		t.Fatal(err)
	}
	if es = drainStore(t, st2, Query{}); len(es) != n+200 {
		t.Fatalf("after reopen+append: %d events, want %d", len(es), n+200)
	}
}

// TestColdPruningSkipsDecompression corrupts the compressed payload of a
// known cold block, then checks that a stamp-bounded query which prunes
// that block by its header metadata still succeeds — proof the pruned
// block was never read or inflated — while an unbounded query fails with
// a corruption error from both cursor implementations.
func TestColdPruningSkipsDecompression(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 1200
	sealEvery(t, st, 1, n, 100)
	if _, err := st.CompactCold(); err != nil {
		t.Fatal(err)
	}
	// Find a cold segment with at least two blocks and corrupt the last
	// block's payload.
	st.mu.Lock()
	var victim *segment
	for _, s := range st.segs {
		if s.isCold() && len(s.blocks) >= 2 {
			victim = s
			break
		}
	}
	st.mu.Unlock()
	if victim == nil {
		t.Fatal("no multi-block cold segment; shrink ColdBlockBytes")
	}
	bad := victim.blocks[len(victim.blocks)-1]
	f, err := st.Backend().OpenRW(victim.name)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, bad.compLen)
	for i := range junk {
		junk[i] = 0xff
	}
	if _, err := f.WriteAt(junk, bad.off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Every stamp below the corrupt block's range: both cursors must
	// prune the bad block from its header alone and succeed.
	q := Query{MaxStamp: bad.meta.baseStamp - 1}
	want := int(bad.meta.baseStamp - 1)
	if es := drainStore(t, st, q); len(es) != want {
		t.Fatalf("pruned sequential query: %d events, want %d", len(es), want)
	}
	pc := st.QueryParallel(q, 2)
	if pes, _ := drainParallel(t, pc, 64); len(pes) != want {
		t.Fatalf("pruned parallel query: %d events, want %d", len(pes), want)
	}
	pc.Close()

	// An unbounded query must hit the corruption, not return bad data.
	cur := st.Query(Query{})
	_, err = tracer.Drain(cur, 64)
	cur.Close()
	if err == nil {
		t.Fatal("sequential query over corrupt block succeeded")
	}
	pc = st.QueryParallel(Query{}, 2)
	buf := make([]tracer.Entry, 64)
	for err = nil; err == nil; {
		var k int
		k, _, err = pc.Next(buf)
		if k == 0 && err == nil {
			break
		}
	}
	pc.Close()
	if err == nil {
		t.Fatal("parallel query over corrupt block succeeded")
	}
}

// TestColdQueryFilters mirrors TestQueryFilters over a majority-cold
// store: filtered queries agree between the sequential and parallel
// cursors and with the expected predicate.
func TestColdQueryFilters(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 1000
	sealEvery(t, st, 1, n, 100)
	if err := st.CompactTick(); err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		q    Query
		keep func(e *tracer.Entry) bool
	}{
		{Query{MinStamp: 200, MaxStamp: 700}, func(e *tracer.Entry) bool { return e.Stamp >= 200 && e.Stamp <= 700 }},
		{Query{Cores: []uint8{1}}, func(e *tracer.Entry) bool { return e.Core == 1 }},
		{Query{Categories: []uint8{2, 3}}, func(e *tracer.Entry) bool { return e.Category == 2 || e.Category == 3 }},
		{Query{MinTS: 300_000, MaxTS: 600_000}, func(e *tracer.Entry) bool { return e.TS >= 300_000 && e.TS <= 600_000 }},
		{Query{Limit: 123}, nil},
	}
	for qi, tc := range queries {
		want := 0
		if tc.keep != nil {
			for s := uint64(1); s <= n; s++ {
				e := mkEntry(s)
				if tc.keep(&e) {
					want++
				}
			}
		} else {
			want = tc.q.Limit
		}
		if es := drainStore(t, st, tc.q); len(es) != want {
			t.Fatalf("query %d sequential: %d events, want %d", qi, len(es), want)
		}
		pc := st.QueryParallel(tc.q, 3)
		pes, _ := drainParallel(t, pc, 64)
		pc.Close()
		if len(pes) != want {
			t.Fatalf("query %d parallel: %d events, want %d", qi, len(pes), want)
		}
	}
}

// TestColdRetention checks that retention retires whole cold files like
// any other segment.
func TestColdRetention(t *testing.T) {
	cfg := tierCfg()
	st, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 2000, 100)
	if _, err := st.CompactCold(); err != nil {
		t.Fatal(err)
	}
	before := st.TierStats()[TierCold].Segments
	if before == 0 {
		t.Fatal("nothing frozen")
	}
	// Shrink the budget under the current size and trigger retention via
	// an append.
	budget := st.Size() / 4
	st.mu.Lock()
	st.cfg.MaxBytes = budget
	st.mu.Unlock()
	appendRange(t, st, 2001, 2100)
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().SegmentsDeleted; got == 0 {
		t.Fatalf("retention deleted nothing (cold segments: %d)", before)
	}
	if es := drainStore(t, st, Query{MinStamp: 2001}); len(es) != 100 {
		t.Fatalf("newest data lost to retention: %d events, want 100", len(es))
	}
}

// TestParallelCursorAcrossFreeze drains one round, freezes everything,
// appends more, and checks the next round delivers only the new data:
// the fully-consumed sources fold into the cold mark without re-delivery
// or phantom missed counts.
func TestParallelCursorAcrossFreeze(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 500, 50)
	pc := st.QueryParallel(Query{}, 2)
	defer pc.Close()
	es, missed := drainParallel(t, pc, 64)
	if len(es) != 500 || missed != 0 {
		t.Fatalf("round 1: %d events (missed %d), want 500 (0)", len(es), missed)
	}
	if _, err := st.CompactCold(); err != nil {
		t.Fatal(err)
	}
	sealEvery(t, st, 501, 600, 50)
	es, missed = drainParallel(t, pc, 64)
	if missed != 0 {
		t.Fatalf("round 2 missed %d events after clean freeze", missed)
	}
	if len(es) != 100 {
		t.Fatalf("round 2: %d events, want exactly the 100 new ones", len(es))
	}
	for i, e := range es {
		if e.Stamp != uint64(501+i) {
			t.Fatalf("round 2 event %d: stamp %d", i, e.Stamp)
		}
	}
}

// TestBlockCacheServesRepeatedColdQueries checks the decompressed-block
// cache end to end: the first cold scan misses and fills it, repeat
// scans (sequential and parallel alike) hit without inflating again,
// the resident size respects the configured budget, and a negative
// budget disables caching entirely.
func TestBlockCacheServesRepeatedColdQueries(t *testing.T) {
	st, err := Open(t.TempDir(), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 1000, 100)
	if _, err := st.CompactCold(); err != nil {
		t.Fatal(err)
	}

	drainSeq := func() int {
		t.Helper()
		cur := st.Query(Query{})
		defer cur.Close()
		es, err := tracer.Drain(cur, 64)
		if err != nil {
			t.Fatal(err)
		}
		return len(es)
	}
	if n := drainSeq(); n != 1000 {
		t.Fatalf("first drain: %d events, want 1000", n)
	}
	s1 := st.Stats()
	if s1.BlockCacheMisses == 0 {
		t.Fatalf("first cold scan recorded no cache misses: %+v", s1)
	}

	if n := drainSeq(); n != 1000 {
		t.Fatalf("second drain: %d events, want 1000", n)
	}
	pc := st.QueryParallel(Query{}, 2)
	es, missed := drainParallel(t, pc, 64)
	pc.Close()
	if len(es) != 1000 || missed != 0 {
		t.Fatalf("parallel drain: %d events (missed %d), want 1000 (0)", len(es), missed)
	}
	s2 := st.Stats()
	if s2.BlockCacheMisses != s1.BlockCacheMisses {
		t.Fatalf("repeat scans re-inflated: misses %d -> %d", s1.BlockCacheMisses, s2.BlockCacheMisses)
	}
	if s2.BlockCacheHits <= s1.BlockCacheHits {
		t.Fatalf("repeat scans did not hit the cache: hits %d -> %d", s1.BlockCacheHits, s2.BlockCacheHits)
	}

	st.bcache.mu.Lock()
	size, max := st.bcache.size, st.bcache.max
	st.bcache.mu.Unlock()
	if size <= 0 || size > max {
		t.Fatalf("cache size %d outside (0, %d]", size, max)
	}
}

func TestBlockCacheEvictsWithinBudget(t *testing.T) {
	cfg := tierCfg()
	cfg.ColdCacheBytes = 8 << 10 // two 4 KiB raw blocks at most
	st, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 1000, 100)
	if _, err := st.CompactCold(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		cur := st.Query(Query{})
		if _, err := tracer.Drain(cur, 64); err != nil {
			t.Fatal(err)
		}
		cur.Close()
		st.bcache.mu.Lock()
		size, n := st.bcache.size, st.bcache.lru.Len()
		st.bcache.mu.Unlock()
		if size > cfg.ColdCacheBytes {
			t.Fatalf("round %d: cache holds %d bytes, budget %d", round, size, cfg.ColdCacheBytes)
		}
		if n == 0 {
			t.Fatalf("round %d: nothing cached despite scans", round)
		}
	}
	if s := st.Stats(); s.BlockCacheMisses == 0 {
		t.Fatalf("thrashing cache recorded no misses: %+v", s)
	}
}

func TestBlockCacheDisabled(t *testing.T) {
	cfg := tierCfg()
	cfg.ColdCacheBytes = -1
	st, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sealEvery(t, st, 1, 500, 50)
	if _, err := st.CompactCold(); err != nil {
		t.Fatal(err)
	}
	if st.bcache != nil {
		t.Fatal("negative ColdCacheBytes should disable the cache")
	}
	for round := 0; round < 2; round++ {
		cur := st.Query(Query{})
		es, err := tracer.Drain(cur, 64)
		cur.Close()
		if err != nil || len(es) != 500 {
			t.Fatalf("round %d: %d events, err %v", round, len(es), err)
		}
	}
	if s := st.Stats(); s.BlockCacheHits != 0 || s.BlockCacheMisses != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", s)
	}
}
