package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"btrace/internal/tracer"
	"btrace/internal/tracer/tracertest"
)

// mkEntry builds a deterministic test entry.
func mkEntry(stamp uint64) tracer.Entry {
	return tracer.Entry{
		Stamp:    stamp,
		TS:       stamp * 1000,
		Core:     uint8(stamp % 4),
		TID:      uint32(stamp % 7),
		Category: uint8(stamp % 5),
		Level:    uint8(stamp%3 + 1),
		Payload:  []byte(fmt.Sprintf("payload-%d", stamp)),
	}
}

func appendRange(t *testing.T, st *Store, from, to uint64) {
	t.Helper()
	var es []tracer.Entry
	for s := from; s <= to; s++ {
		es = append(es, mkEntry(s))
	}
	if err := st.AppendEntries(es); err != nil {
		t.Fatalf("AppendEntries: %v", err)
	}
}

func drainStore(t *testing.T, st *Store, q Query) []tracer.Entry {
	t.Helper()
	cur := st.Query(q)
	defer cur.Close()
	es, err := tracer.Drain(cur, 64)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return es
}

func checkEntry(t *testing.T, got tracer.Entry) {
	t.Helper()
	want := mkEntry(got.Stamp)
	if got.TS != want.TS || got.Core != want.Core || got.TID != want.TID ||
		got.Category != want.Category || got.Level != want.Level ||
		string(got.Payload) != string(want.Payload) {
		t.Fatalf("entry mismatch: got %+v want %+v", got, want)
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendRange(t, st, 1, 500)
	es := drainStore(t, st, Query{})
	if len(es) != 500 {
		t.Fatalf("drained %d events, want 500", len(es))
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("event %d: stamp %d", i, e.Stamp)
		}
		checkEntry(t, e)
	}
	if got := st.Events(); got != 500 {
		t.Fatalf("Events() = %d", got)
	}
	if len(st.Segments()) < 2 {
		t.Fatalf("expected rotation across segments, got %d", len(st.Segments()))
	}
}

func TestReopenPreservesEverything(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, 300)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	es := drainStore(t, st2, Query{})
	if len(es) != 300 {
		t.Fatalf("reopened store has %d events, want 300", len(es))
	}
	// And it keeps accepting appends with monotonically advancing seqs.
	appendRange(t, st2, 301, 320)
	if es = drainStore(t, st2, Query{}); len(es) != 320 {
		t.Fatalf("after reopen+append: %d events, want 320", len(es))
	}
}

// TestCrashRecoveryTornTail is the acceptance criterion: a process killed
// mid-append (simulated by truncating the newest segment at every
// possible byte offset of its tail frame region) reopens losing at most
// the torn record, and a stamp-range query over the recovered store
// matches the same query over the surviving records in memory.
func TestCrashRecoveryTornTail(t *testing.T) {
	const n = 120
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, n)
	// No Close: simulate the crash before any seal by copying the raw
	// active segment bytes.
	segPath := filepath.Join(dir, "seg-00000001.seg")
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, cut := range []int64{
		int64(len(whole)) - 1, int64(len(whole)) - tailSize, int64(len(whole)) - tailSize - 3,
		int64(len(whole)) - 40, int64(len(whole)) / 2, headerSize + 5, headerSize, 0,
	} {
		if cut < 0 {
			continue
		}
		crash := t.TempDir()
		if err := os.WriteFile(filepath.Join(crash, "seg-00000001.seg"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(crash, Config{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		es := drainStore(t, rec, Query{})
		// Only whole records, a strict prefix of what was written, and at
		// most one record lost relative to the bytes that survived.
		for i, e := range es {
			if e.Stamp != uint64(i+1) {
				t.Fatalf("cut=%d: record %d has stamp %d (not a prefix)", cut, i, e.Stamp)
			}
			checkEntry(t, e)
		}
		survived := len(es)
		// Count whole frames present in the truncated bytes: recovery
		// must keep every one of them.
		wholeFrames := countWholeFrames(t, whole, cut)
		if survived != wholeFrames {
			t.Fatalf("cut=%d: recovered %d records, %d whole frames survive on disk",
				cut, survived, wholeFrames)
		}
		// Stamp-range query over the recovered store vs the in-memory
		// readout of the surviving records.
		q := Query{MinStamp: 20, MaxStamp: 90}
		got := drainStore(t, rec, q)
		var want []tracer.Entry
		for _, e := range es {
			if e.Stamp >= q.MinStamp && e.Stamp <= q.MaxStamp {
				want = append(want, e)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("cut=%d: query returned %d records, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i].Stamp != want[i].Stamp || string(got[i].Payload) != string(want[i].Payload) {
				t.Fatalf("cut=%d: query record %d mismatch", cut, i)
			}
		}
		rec.Close()
	}
}

// countWholeFrames walks the segment image and counts frames that lie
// entirely within the first cut bytes.
func countWholeFrames(t *testing.T, img []byte, cut int64) int {
	t.Helper()
	off := int64(headerSize)
	n := 0
	for off+tracer.Align <= int64(len(img)) {
		_, size, err := tracer.PeekRecord(img[off:])
		if err != nil {
			break
		}
		end := off + int64(size+tailSize)
		if end > int64(len(img)) {
			break
		}
		if end <= cut {
			n++
		}
		off = end
	}
	return n
}

func TestRecoveryMidStore(t *testing.T) {
	// Torn tail in the newest segment of a multi-segment store: sealed
	// segments are untouched, only the active one is truncated.
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, 400)
	segs := st.Segments()
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	last := segs[len(segs)-1]
	if last.Sealed {
		t.Skip("no active segment to tear")
	}
	lastPath := filepath.Join(dir, last.File)
	st.Close() // seal happens here, but we restore the pre-seal bytes below

	// Chop 5 bytes off the last segment to tear its final record, and
	// also flip its header back to unsealed state arbitrarily by cutting
	// into it — recovery must not trust the seal.
	fi, err := os.Stat(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(lastPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Stats().RecoveredTruncations != 1 {
		t.Fatalf("RecoveredTruncations = %d, want 1", rec.Stats().RecoveredTruncations)
	}
	es := drainStore(t, rec, Query{})
	if len(es) != 399 {
		t.Fatalf("recovered %d events, want 399 (one torn)", len(es))
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("record %d: stamp %d", i, e.Stamp)
		}
	}
}

func TestQueryFilters(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendRange(t, st, 1, 400)

	cases := []struct {
		name string
		q    Query
		keep func(e *tracer.Entry) bool
	}{
		{"stamp range", Query{MinStamp: 100, MaxStamp: 250},
			func(e *tracer.Entry) bool { return e.Stamp >= 100 && e.Stamp <= 250 }},
		{"time range", Query{MinTS: 50_000, MaxTS: 120_000},
			func(e *tracer.Entry) bool { return e.TS >= 50_000 && e.TS <= 120_000 }},
		{"core", Query{Cores: []uint8{2}},
			func(e *tracer.Entry) bool { return e.Core == 2 }},
		{"category", Query{Categories: []uint8{0, 3}},
			func(e *tracer.Entry) bool { return e.Category == 0 || e.Category == 3 }},
		{"combined", Query{MinStamp: 40, MaxStamp: 360, Cores: []uint8{1, 3}, Categories: []uint8{1, 2, 4}},
			func(e *tracer.Entry) bool {
				return e.Stamp >= 40 && e.Stamp <= 360 && (e.Core == 1 || e.Core == 3) &&
					(e.Category == 1 || e.Category == 2 || e.Category == 4)
			}},
	}
	all := drainStore(t, st, Query{})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := drainStore(t, st, tc.q)
			var want []tracer.Entry
			for i := range all {
				if tc.keep(&all[i]) {
					want = append(want, all[i])
				}
			}
			if len(got) != len(want) {
				t.Fatalf("query returned %d events, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i].Stamp != want[i].Stamp {
					t.Fatalf("event %d: stamp %d, want %d", i, got[i].Stamp, want[i].Stamp)
				}
				checkEntry(t, got[i])
			}
		})
	}

	t.Run("limit", func(t *testing.T) {
		got := drainStore(t, st, Query{Limit: 17})
		if len(got) != 17 {
			t.Fatalf("limit query returned %d events", len(got))
		}
	})
}

func TestRetentionByBytes(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 2 << 10, MaxBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendRange(t, st, 1, 2000)
	// Retention runs on the maintenance goroutine; Sync is the barrier
	// that waits for it.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz := st.Size(); sz > (8<<10)+(2<<10) {
		t.Fatalf("store size %d exceeds budget+active", sz)
	}
	if st.Stats().SegmentsDeleted == 0 {
		t.Fatal("retention never deleted a segment")
	}
	es := drainStore(t, st, Query{})
	if len(es) == 0 {
		t.Fatal("retention deleted everything")
	}
	// Newest survives; survivors are a contiguous suffix.
	if es[len(es)-1].Stamp != 2000 {
		t.Fatalf("newest stamp %d, want 2000", es[len(es)-1].Stamp)
	}
	for i := 1; i < len(es); i++ {
		if es[i].Stamp != es[i-1].Stamp+1 {
			t.Fatalf("interior gap %d -> %d", es[i-1].Stamp, es[i].Stamp)
		}
	}
}

func TestRetentionByAge(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 2 << 10, MaxAgeNs: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendRange(t, st, 1, 1000) // TS = stamp*1000, span 1e6 ns >> MaxAge
	st.Seal()
	es := drainStore(t, st, Query{})
	if len(es) == 0 || len(es) == 1000 {
		t.Fatalf("age retention kept %d of 1000", len(es))
	}
	oldest := es[0].TS
	newest := es[len(es)-1].TS
	// Whole-segment granularity: survivors may exceed the age bound by
	// up to one segment's span, but grossly stale segments must be gone.
	if newest-oldest > 600_000 {
		t.Fatalf("oldest survivor is %d ns old (MaxAge 100000)", newest-oldest)
	}
}

func TestCursorFollowsAppends(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendRange(t, st, 1, 10)
	cur := st.Query(Query{})
	defer cur.Close()
	batch := make([]tracer.Entry, 64)
	n, _, err := cur.Next(batch)
	if err != nil || n != 10 {
		t.Fatalf("first Next = (%d, %v), want 10", n, err)
	}
	if n, _, _ := cur.Next(batch); n != 0 {
		t.Fatalf("drained cursor returned %d", n)
	}
	// Appends spanning a rotation must all be picked up exactly once.
	appendRange(t, st, 11, 60)
	var got []uint64
	for {
		n, _, err := cur.Next(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, batch[i].Stamp)
		}
	}
	if len(got) != 50 {
		t.Fatalf("follow-up read delivered %d events, want 50", len(got))
	}
	for i, s := range got {
		if s != uint64(11+i) {
			t.Fatalf("follow-up event %d: stamp %d", i, s)
		}
	}
}

func TestCursorMissedOnRetention(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cur := st.Query(Query{})
	defer cur.Close()
	appendRange(t, st, 1, 2000)       // far past the byte bound: oldest retired
	if err := st.Sync(); err != nil { // wait for background retention
		t.Fatal(err)
	}
	var total int
	var missed uint64
	batch := make([]tracer.Entry, 128)
	for {
		n, m, err := cur.Next(batch)
		if err != nil {
			t.Fatal(err)
		}
		missed += m
		if n == 0 {
			break
		}
		total += n
	}
	if missed == 0 {
		t.Fatal("cursor reported no missed events despite retention")
	}
	if total+int(missed) < 2000 {
		t.Fatalf("delivered %d + missed %d < 2000 written", total, missed)
	}
}

func TestCompaction(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Seal after every small batch to fabricate many small segments.
	for s := uint64(1); s <= 200; s += 20 {
		appendRange(t, st, s, s+19)
		if err := st.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	before := len(st.Segments())
	if before < 5 {
		t.Fatalf("setup produced only %d segments", before)
	}
	merged, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merged == 0 {
		t.Fatal("compaction merged nothing")
	}
	after := st.Segments()
	if len(after) >= before {
		t.Fatalf("segments %d -> %d after compaction", before, len(after))
	}
	es := drainStore(t, st, Query{})
	if len(es) != 200 {
		t.Fatalf("post-compaction drain: %d events, want 200", len(es))
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("post-compaction record %d: stamp %d", i, e.Stamp)
		}
		checkEntry(t, e)
	}
	// Queries still prune and seek correctly over the merged segment.
	q := drainStore(t, st, Query{MinStamp: 50, MaxStamp: 60})
	if len(q) != 11 {
		t.Fatalf("post-compaction query: %d events, want 11", len(q))
	}
	// And the compacted store survives a reopen byte-for-byte.
	dir := st.Dir()
	st.Close()
	re, err := Open(dir, Config{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if es = drainStore(t, re, Query{}); len(es) != 200 {
		t.Fatalf("reopened compacted store: %d events", len(es))
	}
}

func TestCompactionLeftoverRecovery(t *testing.T) {
	// Simulate a crash between compaction's rename and its source
	// deletes: duplicate a merged segment's content as a later segment
	// whose stamp range the merged one contains.
	dir := t.TempDir()
	st, err := Open(dir, Config{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, 50)
	st.Seal()
	appendRange(t, st, 51, 100)
	st.Seal()
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := len(st.Segments()); n != 1 {
		t.Fatalf("expected 1 merged segment, got %d", n)
	}
	st.Close()

	// Fabricate the leftover: a stale seg-2 holding records 51..100,
	// already contained in the merged seg-1.
	leftover, err := Open(t.TempDir(), Config{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, leftover, 51, 100)
	leftover.Close()
	src, err := os.ReadFile(filepath.Join(leftover.Dir(), "seg-00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000002.seg"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, Config{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Stats().LeftoverSegments != 1 {
		t.Fatalf("LeftoverSegments = %d, want 1", rec.Stats().LeftoverSegments)
	}
	es := drainStore(t, rec, Query{})
	if len(es) != 100 {
		t.Fatalf("recovered %d events, want 100 (no duplicates)", len(es))
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("record %d: stamp %d", i, e.Stamp)
		}
	}
}

// TestReopenKeepsRepeatedStampRanges guards against over-eager leftover
// detection: two runs whose stamp counters both start at 1 (replay
// stamps are per-run) write overlapping stamp ranges into the same
// directory, and reopening must keep both — only segments a merged
// header explicitly covers are compaction leftovers.
func TestReopenKeepsRepeatedStampRanges(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, 100)
	st.Close()

	st2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st2, 10, 50) // contained in the first run's range
	st2.Close()

	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if lo := re.Stats().LeftoverSegments; lo != 0 {
		t.Fatalf("LeftoverSegments = %d, want 0 (second run misdetected)", lo)
	}
	es := drainStore(t, re, Query{})
	if len(es) != 141 {
		t.Fatalf("reopened store has %d events, want 141 (100 + 41)", len(es))
	}
}

// TestRecoveryTornHeader: a crash that tears the seal's in-place header
// rewrite must cost the header only. Recovery rebuilds it from the
// CRC-framed records instead of discarding the segment.
func TestRecoveryTornHeader(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, 100)
	st.Close() // seals: header rewritten in place

	segPath := filepath.Join(dir, "seg-00000001.seg")
	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, 16); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats().HeadersRebuilt != 1 {
		t.Fatalf("HeadersRebuilt = %d, want 1", rec.Stats().HeadersRebuilt)
	}
	es := drainStore(t, rec, Query{})
	if len(es) != 100 {
		t.Fatalf("recovered %d events behind the torn header, want 100", len(es))
	}
	for i, e := range es {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("record %d: stamp %d", i, e.Stamp)
		}
		checkEntry(t, e)
	}
	// The rebuilt header must decode on the next open.
	appendRange(t, rec, 101, 110)
	rec.Close()
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats().HeadersRebuilt != 0 {
		t.Fatalf("second open rebuilt the header again")
	}
	if es = drainStore(t, re, Query{}); len(es) != 110 {
		t.Fatalf("after rebuild + append: %d events, want 110", len(es))
	}
}

// TestCursorMissedOnUnorderedMerge: when compaction merges segments into
// an unordered result under a cursor, the undelivered remainder cannot
// be resumed by stamp — the cursor must report it through missed, not
// skip it silently.
func TestCursorMissedOnUnorderedMerge(t *testing.T) {
	st, err := Open(t.TempDir(), Config{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	appendRange(t, st, 1, 10)
	st.Seal()
	appendRange(t, st, 5, 8) // overlaps: the merge of both is unordered
	st.Seal()

	cur := st.Query(Query{})
	defer cur.Close()
	batch := make([]tracer.Entry, 10)
	n, _, err := cur.Next(batch) // drains exactly the first segment
	if err != nil || n != 10 {
		t.Fatalf("first Next = (%d, %v), want 10", n, err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	if len(segs) != 1 || segs[0].Ordered {
		t.Fatalf("setup: want one unordered merged segment, got %+v", segs)
	}
	var missed uint64
	for {
		n, m, err := cur.Next(batch)
		if err != nil {
			t.Fatal(err)
		}
		missed += m
		if n == 0 {
			break
		}
	}
	if missed < 4 {
		t.Fatalf("missed = %d, want >= 4 (the second segment's events)", missed)
	}
}

// TestStoreTracerConformance runs the repository-wide tracer conformance
// suite against the store-backed tracer: the cursor/batch contract must
// hold against disk exactly as it does against memory.
func TestStoreTracerConformance(t *testing.T) {
	tracertest.Run(t, tracertest.Config{
		New: func(totalBytes, cores, threads int) (tracer.Tracer, error) {
			return NewTracer(t.TempDir(), totalBytes)
		},
	})
}

func TestTracerAdapterStoreAccess(t *testing.T) {
	tr, err := NewTracer(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	p := &tracer.FixedProc{}
	for i := 1; i <= 10; i++ {
		e := mkEntry(uint64(i))
		if err := tr.Write(p, &e); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Store().Events(); got != 10 {
		t.Fatalf("Store().Events() = %d", got)
	}
	if st := tr.Stats(); st.Writes != 10 || st.BytesWritten == 0 {
		t.Fatalf("stats %+v", st)
	}
}
