//go:build unix

package store

import (
	"strings"
	"testing"
)

// TestOpenLocksDirectory: a second Open on a live store directory must
// fail fast (its recovery would truncate files the first instance is
// appending to), and Close must release the lock for the next opener.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, st, 1, 10)

	if _, err := Open(dir, Config{}); err == nil {
		t.Fatal("second Open on a held store directory succeeded")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second Open error = %v, want an in-use diagnosis", err)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer re.Close()
	if es := drainStore(t, re, Query{}); len(es) != 10 {
		t.Fatalf("reopened store has %d events, want 10", len(es))
	}
}
