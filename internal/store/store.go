// Package store implements the durable half of the deployment story: an
// append-only, segmented trace store fed by tracer.Cursor streams. The
// block buffer keeps the latest trace continuous in memory; the store is
// where traces go to survive the process — collector dumps spill into it
// instead of being dropped, and post-mortem queries ("what happened on
// core 3 between t1 and t2") are answered from storage without replaying
// a full export.
//
// Layout: a store is a backend namespace (a local directory by default,
// see internal/store/backend) of numbered files. Row segments
// (seg-00000001.seg, ...) are a fixed header followed by CRC-framed wire
// records (see segment.go). Exactly one segment — the newest — is
// active; it rotates when it reaches Config.SegmentBytes. Sealed
// segments are immutable, which is what makes retention (atomic
// whole-file deletion, oldest first) and the tiering pipeline
// crash-safe: data ages hot → compacted (merged sealed segments,
// compact.go) → cold (compressed block files, col-%08d.blk, cold.go),
// every transition committing through one write-new/fsync/rename/
// delete-old sequence (compactor.go).
//
// Recovery invariant: reopening a store after a crash loses at most the
// final torn record of the active segment. Every surviving record is
// whole and checksummed; the scan truncates the file at the first frame
// whose magic, checksum or decode fails. A crash at any tier boundary
// leaves either the sources or the merged/frozen result — recovery
// deletes exactly the duplicate copy, identified by seq coverage, never
// both.
package store

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"btrace/internal/obs"
	"btrace/internal/store/backend"
	"btrace/internal/store/backend/local"
	"btrace/internal/tracer"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Config configures a Store. Zero values select the documented defaults.
type Config struct {
	// SegmentBytes is the rotation threshold: the active segment seals
	// once appending would push it past this size (default 1 MiB). A
	// single record larger than the threshold still gets a segment of
	// its own rather than being rejected.
	SegmentBytes int64
	// MaxBytes bounds the store's total on-disk size; beyond it the
	// oldest sealed segments are deleted, whole files at a time
	// (0 = unlimited). The active segment is never deleted.
	MaxBytes int64
	// MaxAgeNs bounds retention by virtual age: sealed segments whose
	// newest timestamp trails the store's newest timestamp by more than
	// this are deleted (0 = unlimited).
	MaxAgeNs uint64
	// SyncEveryAppend makes every append batch wait for the group commit
	// covering it: when Append returns, the batch is fsynced. Off by
	// default: the durability point is the seal (rotation), a Sync call,
	// or the CommitEvery/CommitBytes window, matching the paper's
	// dump-then-analyze workflow. Concurrent appenders share one fsync
	// per commit window instead of paying one each.
	SyncEveryAppend bool
	// CommitEvery bounds how long applied-but-unsynced bytes may sit
	// before a group commit fsyncs them (0 = no timer; durability then
	// comes from seals, Sync, SyncEveryAppend or CommitBytes).
	CommitEvery time.Duration
	// CommitBytes triggers a group commit once this many bytes have been
	// applied since the previous commit (0 = no byte threshold).
	CommitBytes int64
	// MaxStagedBytes bounds the staging arena; producers block once this
	// many encoded bytes await the writer goroutine (default 8 MiB).
	MaxStagedBytes int64

	// Backend overrides the storage backend. nil selects the local
	// directory backend over Open's dir argument.
	Backend backend.Backend
	// CompactInterval starts a background compactor goroutine that runs
	// a merge + freeze pass (CompactTick) this often (0 = no background
	// compaction; Compact/CompactCold stay available manually).
	CompactInterval time.Duration
	// ColdAfterNs is the freeze age threshold: sealed row segments whose
	// newest timestamp trails the store's newest timestamp by more than
	// this are compressed into the cold tier (0 = never freeze).
	ColdAfterNs uint64
	// ColdBlockBytes is the raw-bytes-per-block target of cold files
	// (default 256 KiB). Bigger blocks compress better; smaller blocks
	// prune at finer grain.
	ColdBlockBytes int
	// ColdFileBytes caps one freeze run's raw bytes, bounding cold file
	// size and keeping frozen data spread over enough files for parallel
	// queries (default 4 × SegmentBytes).
	ColdFileBytes int64
	// ColdCacheBytes bounds the shared decompressed-block cache that
	// spares repeated cold queries from re-inflating the same blocks
	// (default 32 MiB; negative disables caching).
	ColdCacheBytes int64
	// Strategy overrides tier-transition selection (nil selects
	// DefaultStrategy).
	Strategy Strategy
	// coldV1 makes the freeze path emit legacy frame-preserving v1
	// blocks instead of columnar v2. Test-only: v1 must stay readable
	// and query-equivalent, and this is how tests produce it.
	coldV1 bool
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.MaxStagedBytes <= 0 {
		c.MaxStagedBytes = 8 << 20
	}
	if c.ColdBlockBytes <= 0 {
		c.ColdBlockBytes = defaultColdBlockBytes
	}
	if c.ColdFileBytes <= 0 {
		c.ColdFileBytes = 4 * c.SegmentBytes
	}
	if c.ColdCacheBytes == 0 {
		c.ColdCacheBytes = defaultColdCacheBytes
	}
	if c.Strategy == nil {
		c.Strategy = DefaultStrategy{}
	}
	return c
}

// Stats counts what the store absorbed and survived.
type Stats struct {
	Appends       uint64 // events appended
	BytesAppended uint64 // frame bytes appended
	Seals         uint64 // segments sealed (rotation or Close)

	SegmentsDeleted uint64 // segments removed by retention
	EventsRetired   uint64 // events removed by retention

	Compactions       uint64 // compaction passes that merged something
	SegmentsCompacted uint64 // source segments consumed by compaction

	ColdCompactions  uint64 // freeze passes that produced a cold file
	SegmentsFrozen   uint64 // row segments consumed by freezing
	ColdBlocksBuilt  uint64 // blocks written into cold files
	ColdBytesWritten uint64 // compressed bytes written to the cold tier
	ColdRawBytes     uint64 // raw frame bytes those blocks held
	CompactorErrors  uint64 // background compactor ticks that failed

	BlockCacheHits   uint64 // cold block reads served from the cache
	BlockCacheMisses uint64 // cold block reads that had to inflate

	BlocksPruned uint64 // cold blocks skipped on header metadata alone
	PayloadSkips uint64 // v2 blocks scanned without inflating the payload column

	RecoveredTruncations uint64 // segments truncated at open (torn tails)
	TornBytesDropped     uint64 // bytes cut by those truncations
	LeftoverSegments     uint64 // interrupted-compaction leftovers deleted at open
	HeadersRebuilt       uint64 // corrupt headers rebuilt at open from a frame scan
	OrphansRemoved       uint64 // unrecognized/temporary files removed at open
}

// Store is a segmented trace store over a backend. All methods are safe
// for concurrent use. Appends stage into an in-memory arena drained by a
// dedicated writer goroutine; seal fsyncs and retention run on a
// maintenance goroutine (see pipeline.go); tier transitions run on the
// optional compactor goroutine (see compactor.go).
type Store struct {
	be  backend.Backend
	loc string
	cfg Config

	// pipe and maint are the write pipeline's two queues; writerWG and
	// maintWG join their goroutines at Close.
	pipe     pipeline
	maint    maintenance
	writerWG sync.WaitGroup
	maintWG  sync.WaitGroup

	// compactStop/compactWG manage the background compactor goroutine
	// (nil channel = not running); compactOnce makes stopping idempotent.
	compactStop chan struct{}
	compactWG   sync.WaitGroup
	compactOnce sync.Once

	// bcache is the shared decompressed-block cache for the cold tier
	// (nil = caching disabled); it has its own lock and is safe to use
	// without st.mu.
	bcache *blockCache

	mu sync.Mutex
	// freezeMu serializes whole freeze passes (CompactCold releases
	// st.mu during compression I/O, so without it two concurrent passes
	// — the background ticker plus a foreground call — could select the
	// same run and clobber each other's tmp file).
	freezeMu sync.Mutex
	lock     io.Closer  // held backend lock, released by Close
	segs     []*segment // ascending seq; the last may be active
	active   backend.File
	// parked holds sealed files whose fsync is deferred to the next
	// commit window (drainParked); bounded by maxParkedSeals.
	parked  []parkedSeal
	nextSeq uint64
	closed  bool
	stats   Stats
	// published is the stats snapshot last folded into obs; public
	// mutating operations publish the delta on exit (see obs.go).
	published Stats
	obs       *storeObs
	obsID     uint64
	// retiredEvents / maxRetiredSeq feed the cursors' missed accounting
	// when retention laps a reader.
	retiredEvents uint64
	maxRetiredSeq uint64

	// ewmaAppend / ewmaFsync are recent-latency averages exported to the
	// overload controller via Pressure (see pressure.go).
	ewmaAppend ewma
	ewmaFsync  ewma
}

// Open opens (creating if necessary) the store in dir over the local
// directory backend — or over cfg.Backend when set, in which case dir is
// ignored — and recovers it: stray temp files are removed (and counted),
// every segment is scanned, torn tails are truncated, and leftovers of
// an interrupted tier transition are deleted. Open holds the backend's
// exclusive store lock until Close; a second Open (from this or any
// other process, where that is meaningful) fails fast rather than
// letting two recoveries truncate each other's files.
func Open(dir string, cfg Config) (*Store, error) {
	be := cfg.Backend
	if be == nil {
		var err error
		if be, err = local.New(dir); err != nil {
			return nil, err
		}
	}
	return OpenBackend(be, cfg)
}

// OpenBackend is Open over an explicit backend.
func OpenBackend(be backend.Backend, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	st := &Store{be: be, loc: be.Location(), cfg: cfg, nextSeq: 1, obs: newStoreObs()}
	if cfg.ColdCacheBytes > 0 {
		st.bcache = newBlockCache(cfg.ColdCacheBytes)
	}
	st.obs.bcache = st.bcache
	var err error
	if st.lock, err = be.Lock(); err != nil {
		return nil, err
	}
	// The pipeline goroutines idle until the first append/seal request,
	// so starting them before recovery is safe — and it lets every error
	// path below clean up through the one Close implementation.
	st.startPipeline()
	names, err := be.List("")
	if err != nil {
		st.Close()
		return nil, err
	}
	type entry struct {
		seq  uint64
		cold bool
		name string
	}
	var entries []entry
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// Interrupted tier transition: the result was never renamed
			// in, so the sources are intact. Count it rather than
			// deleting silently.
			be.Remove(name)
			st.stats.OrphansRemoved++
			continue
		}
		var seq uint64
		switch {
		case parseName(name, "seg-%d.seg", &seq):
			entries = append(entries, entry{seq: seq, name: name})
		case parseName(name, "col-%d.blk", &seq):
			entries = append(entries, entry{seq: seq, cold: true, name: name})
		}
	}
	// Ascending seq; at equal seq the cold file sorts first, so the
	// leftover rule below sees the committed freeze result before the
	// stale source it covers.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].seq != entries[j].seq {
			return entries[i].seq < entries[j].seq
		}
		return entries[i].cold && !entries[j].cold
	})
	for i, en := range entries {
		last := i == len(entries)-1
		var rerr error
		if en.cold {
			rerr = st.recoverCold(en.seq, en.name)
		} else {
			rerr = st.recoverSegment(en.seq, en.name, last)
		}
		if rerr != nil {
			st.Close()
			return nil, rerr
		}
		if en.seq >= st.nextSeq {
			st.nextSeq = en.seq + 1
		}
	}
	// A merged last segment may cover source seqs past its own file name
	// (its sources were already deleted); never reissue a covered seq, or
	// cursors would skip the new segment and a later recovery would
	// mistake it for a compaction leftover.
	if s := st.lastSeg(); s != nil && s.coversThrough >= st.nextSeq {
		st.nextSeq = s.coversThrough + 1
	}
	st.publishObsLocked() // surface the recovery counters
	st.registerObs()
	if cfg.CompactInterval > 0 {
		st.compactStop = make(chan struct{})
		st.compactWG.Add(1)
		go st.compactorLoop()
	}
	return st, nil
}

// parseName matches name against a Sscanf file-name pattern with a
// nonzero seq.
func parseName(name, pattern string, seq *uint64) bool {
	*seq = 0
	_, err := fmt.Sscanf(name, pattern, seq)
	return err == nil && *seq != 0
}

// recoverSegment opens, scans and (if needed) truncates one row segment,
// appending it to the store unless it is empty or a compaction leftover.
func (st *Store) recoverSegment(seq uint64, name string, last bool) error {
	s := &segment{seq: seq, coversThrough: seq, name: name}
	f, err := st.be.OpenRW(name)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	if size < headerSize {
		// Too short to hold even a header: a segment creation that never
		// completed. No frame can survive; drop it.
		if size > 0 {
			st.stats.RecoveredTruncations++
			st.stats.TornBytesDropped += uint64(size)
		}
		f.Close()
		st.be.Remove(name)
		return nil
	}
	hdr := make([]byte, headerSize)
	headerOK := false
	if _, err := f.ReadAt(hdr, 0); err == nil {
		if _, covers, sealed, herr := decodeHeader(hdr); herr == nil {
			headerOK = true
			s.sealed = sealed
			if covers > seq {
				s.coversThrough = covers
			}
		}
	}
	// The frame scan never trusts the header — it rebuilds the metadata
	// and finds the exact truncation point whether or not the header
	// decoded. Frames are independently CRC-framed, so a torn in-place
	// header rewrite (sealActiveLocked) costs the header alone, never
	// the records behind it.
	valid, err := scanSegment(f, size, s)
	if err != nil {
		f.Close()
		return err
	}
	if valid < size {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return err
		}
		st.stats.RecoveredTruncations++
		st.stats.TornBytesDropped += uint64(size - valid)
		// A truncated segment is no longer what its seal described.
		s.sealed = false
	}
	s.size = valid
	s.rawSize = valid

	if !headerOK {
		if s.meta.count == 0 {
			// No header and no whole frames: not (or no longer) a segment.
			f.Close()
			st.be.Remove(name)
			st.stats.OrphansRemoved++
			return nil
		}
		// Valid frames behind a corrupt header (e.g. a seal's header
		// rewrite torn by a crash): rebuild the header from the scan
		// instead of discarding the segment.
		encodeHeader(hdr, &s.meta, s.coversThrough, false)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return err
		}
		s.sealed = false
		st.stats.HeadersRebuilt++
	}

	if s.meta.count == 0 && !last {
		// Empty interior segment: nothing to keep.
		f.Close()
		st.be.Remove(name)
		return nil
	}

	// Interrupted tier-transition leftover: both merge and freeze rename
	// the result — whose header names the source seqs it consumed via
	// coversThrough — before deleting those sources. A source file that
	// survived the crash is exactly a segment whose seq the previous
	// recovered segment explicitly covers; nothing else is ever deleted,
	// so independent runs that happen to repeat a stamp range coexist.
	if prev := st.lastSeg(); prev != nil && prev.coversThrough >= seq {
		f.Close()
		st.be.Remove(name)
		st.stats.LeftoverSegments++
		return nil
	}
	if s.coversThrough > s.seq {
		s.tier = TierCompacted
	}

	if !s.sealed && last {
		st.active = f // resume appending where the crash left off
	} else {
		s.sealed = true // an unsealed interior segment can never grow again
		f.Close()
	}
	st.segs = append(st.segs, s)
	return nil
}

// recoverCold opens one cold block file and rebuilds its block
// directory. Cold files are only ever committed whole (tmp → sync →
// rename), so there is no torn-tail recovery: a file whose header does
// not validate is not a committed cold file and is removed as an
// orphan; a block that fails to validate ends the trustworthy prefix.
func (st *Store) recoverCold(seq uint64, name string) error {
	f, err := st.be.OpenRead(name)
	if err != nil {
		return err
	}
	defer f.Close()
	s := &segment{seq: seq, coversThrough: seq, name: name, tier: TierCold, sealed: true}
	size, err := f.Size()
	if err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	if size < headerSize {
		st.be.Remove(name)
		st.stats.OrphansRemoved++
		return nil
	}
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return err
	}
	_, covers, _, herr := decodeHeaderMagic(hdr, coldMagic)
	if herr != nil {
		st.be.Remove(name)
		st.stats.OrphansRemoved++
		return nil
	}
	if covers > seq {
		s.coversThrough = covers
	}
	ignored, err := scanColdFile(f, size, s)
	if err != nil {
		return err
	}
	if ignored > 0 {
		st.stats.RecoveredTruncations++
		st.stats.TornBytesDropped += uint64(ignored)
	}
	s.size = size - ignored
	if s.meta.count == 0 {
		st.be.Remove(name)
		st.stats.OrphansRemoved++
		return nil
	}
	if prev := st.lastSeg(); prev != nil && prev.coversThrough >= seq {
		st.be.Remove(name)
		st.stats.LeftoverSegments++
		return nil
	}
	st.segs = append(st.segs, s)
	return nil
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.seg", seq) }

func coldName(seq uint64) string { return fmt.Sprintf("col-%08d.blk", seq) }

func (st *Store) lastSeg() *segment {
	if len(st.segs) == 0 {
		return nil
	}
	return st.segs[len(st.segs)-1]
}

// activeSeg returns the unsealed last segment, or nil.
func (st *Store) activeSeg() *segment {
	if s := st.lastSeg(); s != nil && !s.sealed {
		return s
	}
	return nil
}

// Append stages one event. The write is visible to cursors as soon as
// Append returns; it is durable at the group commit covering it when
// SyncEveryAppend is set, otherwise at the next seal, Sync, or
// CommitEvery/CommitBytes window.
func (st *Store) Append(e *tracer.Entry) error {
	return st.appendPipelined([]tracer.Entry{*e}, st.cfg.SyncEveryAppend, true)
}

// AppendEntries stages a batch of events; the writer goroutine drains
// it with one write per segment stretch — the bulk path the collector's
// spill and the replay dump use.
func (st *Store) AppendEntries(es []tracer.Entry) error {
	return st.appendPipelined(es, st.cfg.SyncEveryAppend, true)
}

// AppendEntriesAsync stages a batch without waiting for it to reach the
// segment files: the call returns once the batch is in the staging
// arena (blocking only on MaxStagedBytes backpressure). Write errors
// surface on a later append, Sync or Close. The collector's spill path
// uses it so a slow disk cannot stall the poll loop.
func (st *Store) AppendEntriesAsync(es []tracer.Entry) error {
	return st.appendPipelined(es, false, false)
}

// newSegmentLocked creates and activates a fresh segment file.
func (st *Store) newSegmentLocked() (*segment, error) {
	seq := st.nextSeq
	s := &segment{seq: seq, coversThrough: seq, name: segName(seq), size: headerSize, rawSize: headerSize}
	f, err := st.be.Create(s.name, st.cfg.SegmentBytes)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	encodeHeader(hdr, &s.meta, s.coversThrough, false)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		st.be.Remove(s.name)
		return nil, err
	}
	st.nextSeq++
	st.active = f
	st.segs = append(st.segs, s)
	return s, nil
}

// enforceRetentionLocked deletes the oldest sealed segments until the
// byte and age bounds hold. Deletion is atomic per segment (one backend
// Remove); the active segment is never touched.
func (st *Store) enforceRetentionLocked() {
	if st.cfg.MaxBytes > 0 {
		total := int64(0)
		for _, s := range st.segs {
			total += s.size
		}
		for total > st.cfg.MaxBytes && len(st.segs) > 1 && st.segs[0].sealed {
			total -= st.segs[0].size
			st.retireOldestLocked()
		}
	}
	if st.cfg.MaxAgeNs > 0 {
		var newest uint64
		for _, s := range st.segs {
			if s.meta.count > 0 && s.meta.maxTS > newest {
				newest = s.meta.maxTS
			}
		}
		for len(st.segs) > 1 && st.segs[0].sealed &&
			st.segs[0].meta.count > 0 && st.segs[0].meta.maxTS+st.cfg.MaxAgeNs < newest {
			st.retireOldestLocked()
		}
	}
}

func (st *Store) retireOldestLocked() {
	s := st.segs[0]
	s.retired = true // a parked seal fsync would be wasted on it
	st.be.Remove(s.name)
	st.segs = st.segs[1:]
	st.stats.SegmentsDeleted++
	st.stats.EventsRetired += s.meta.count
	st.retiredEvents += s.meta.count
	if s.coversThrough > st.maxRetiredSeq {
		st.maxRetiredSeq = s.coversThrough
	}
}

// Sync makes every previously staged append durable: it drains the
// staging arena, forces a group commit (seal fsyncs included), and
// waits for the maintenance queue — on return, all prior appends are
// fsynced and retention is up to date.
func (st *Store) Sync() error {
	p := &st.pipe
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	t := p.staged
	if p.syncWant < t {
		p.syncWant = t
	}
	p.forceSync = true
	p.wcond.Signal()
	for (p.written < t || p.synced < t || p.forceSync) && p.err == nil {
		p.cond.Wait()
	}
	err := p.err
	p.mu.Unlock()
	if err != nil {
		return err
	}
	st.maint.waitIdle()
	if err := st.drainParked(); err != nil {
		return err
	}
	return st.maint.firstErr()
}

// Seal seals the active segment (if any), making the store's entire
// contents durable and immutable until the next append. It drains the
// staging arena and the maintenance queue before returning.
func (st *Store) Seal() error {
	p := &st.pipe
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	t := p.staged
	p.sealReqs++
	want := p.sealReqs
	p.wcond.Signal()
	for (p.written < t || p.sealsDone < want) && p.err == nil {
		p.cond.Wait()
	}
	err := p.err
	p.mu.Unlock()
	if err != nil {
		return err
	}
	st.maint.waitIdle()
	if err := st.drainParked(); err != nil {
		return err
	}
	return st.maint.firstErr()
}

// Close drains the pipeline, seals the active segment and closes the
// store. Cursors opened before Close keep working over the sealed files
// until their own Close.
func (st *Store) Close() error {
	st.stopCompactor() // no tier transition may straddle shutdown
	p := &st.pipe
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.wcond.Signal()
	p.cond.Broadcast()
	p.mu.Unlock()
	st.writerWG.Wait() // drains everything staged before it exits

	st.mu.Lock()
	rerr := st.rotateActiveLocked()
	st.mu.Unlock()
	st.stopMaintenance() // finalizes the last seal, joins the goroutine
	if derr := st.drainParked(); rerr == nil {
		rerr = derr // clean Close leaves everything durable
	}

	st.mu.Lock()
	st.closed = true
	if st.lock != nil {
		st.lock.Close() // releases the backend store lock
		st.lock = nil
	}
	// Publish the final deltas, then retire this store's counters into
	// the registry's folded totals (the collector never takes st.mu, so
	// folding under it cannot deadlock).
	st.publishObsLocked()
	st.mu.Unlock()
	obs.Default().Fold(st.obsID)

	err := rerr
	p.mu.Lock()
	if err == nil {
		err = p.err
	}
	p.mu.Unlock()
	if err == nil {
		err = st.maint.firstErr()
	}
	return err
}

// Reset deletes every segment and returns the store to its empty state
// (clearing any sticky write-path error with it). Must not race appends
// from other goroutines the caller still owns.
func (st *Store) Reset() error {
	p := &st.pipe
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	// Drain the writer so no staged batch lands after the wipe.
	t := p.staged
	p.wcond.Signal()
	for p.written < t && p.err == nil {
		p.cond.Wait()
	}
	p.buf, p.metas = p.buf[:0], p.metas[:0]
	p.written, p.synced = p.staged, p.staged
	p.err = nil
	p.unsynced = 0
	p.cond.Broadcast()
	p.mu.Unlock()
	st.maint.waitIdle()
	st.maint.clearErr()
	// Parked seal files are about to be deleted: close them without the
	// deferred fsync.
	st.mu.Lock()
	for _, ps := range st.parked {
		ps.seg.retired = true
	}
	st.mu.Unlock()
	st.drainParked()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active != nil {
		st.active.Close()
		st.active = nil
	}
	var firstErr error
	for _, s := range st.segs {
		if err := st.be.Remove(s.name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	st.segs = nil
	st.nextSeq = 1
	// The obs counters stay put — process-lifetime series are monotonic
	// even across a store Reset; only the publish baseline restarts.
	st.stats = Stats{}
	st.published = Stats{}
	st.retiredEvents, st.maxRetiredSeq = 0, 0
	st.publishObsLocked()
	return firstErr
}

// Dir returns the store's backend location (the directory path for the
// local backend).
func (st *Store) Dir() string { return st.loc }

// Backend returns the store's backend.
func (st *Store) Backend() backend.Backend { return st.be }

// Size returns the store's total on-backend size in bytes.
func (st *Store) Size() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total int64
	for _, s := range st.segs {
		total += s.size
	}
	return total
}

// Events returns the number of events currently held.
func (st *Store) Events() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var n uint64
	for _, s := range st.segs {
		n += s.meta.count
	}
	return n
}

// Stats returns a snapshot of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.BlockCacheHits, s.BlockCacheMisses = st.bcache.counters()
	s.BlocksPruned = st.obs.blocksPruned.Load()
	s.PayloadSkips = st.obs.payloadSkips.Load()
	return s
}

// SegmentInfo is the queryable public summary of one segment.
type SegmentInfo struct {
	Seq       uint64 `json:"seq"`
	File      string `json:"file"`
	Tier      string `json:"tier"`
	Bytes     int64  `json:"bytes"`
	RawBytes  int64  `json:"raw_bytes"`
	Blocks    int    `json:"blocks,omitempty"`
	Events    uint64 `json:"events"`
	BaseStamp uint64 `json:"base_stamp"`
	MaxStamp  uint64 `json:"max_stamp"`
	MinTS     uint64 `json:"min_ts"`
	MaxTS     uint64 `json:"max_ts"`
	CoreBits  uint64 `json:"core_bits"`
	CatBits   uint64 `json:"cat_bits"`
	Sealed    bool   `json:"sealed"`
	Ordered   bool   `json:"ordered"`
}

// Segments returns the per-segment metadata, oldest first.
func (st *Store) Segments() []SegmentInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SegmentInfo, 0, len(st.segs))
	for _, s := range st.segs {
		out = append(out, SegmentInfo{
			Seq:       s.seq,
			File:      s.name,
			Tier:      s.tier.String(),
			Bytes:     s.size,
			RawBytes:  s.rawSize,
			Blocks:    len(s.blocks),
			Events:    s.meta.count,
			BaseStamp: s.meta.baseStamp,
			MaxStamp:  s.meta.maxStamp,
			MinTS:     s.meta.minTS,
			MaxTS:     s.meta.maxTS,
			CoreBits:  s.meta.coreBits,
			CatBits:   s.meta.catBits,
			Sealed:    s.sealed,
			Ordered:   s.meta.ordered,
		})
	}
	return out
}

// findSeqLocked returns the index of the last segment with seq <= target
// (-1 if none).
func (st *Store) findSeqLocked(target uint64) int {
	lo := sort.Search(len(st.segs), func(i int) bool { return st.segs[i].seq > target })
	return lo - 1
}
