package replay

import (
	"testing"

	"btrace/internal/analysis"
	"btrace/internal/sim"
	"btrace/internal/tracer"
	"btrace/internal/workload"

	_ "btrace/internal/bbq"
	_ "btrace/internal/core"
	_ "btrace/internal/ftrace"
	_ "btrace/internal/lttng"
	_ "btrace/internal/vtrace"
)

const testBudget = 256 << 10 // 256 KiB buffers for fast tests

func testConfig(t *testing.T, tracerName string, w string, mode Mode) Config {
	t.Helper()
	wl, err := workload.ByName(w)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracer.New(tracerName, testBudget, 12, wl.ThreadsTotal*12)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Tracer:      tr,
		Workload:    wl,
		Mode:        mode,
		RateScale:   0.01,
		PreemptProb: 0.02,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil tracer: expected error")
	}
}

func TestModeString(t *testing.T) {
	if CoreLevel.String() != "core-level" || ThreadLevel.String() != "thread-level" {
		t.Fatal("mode names")
	}
}

func TestCoreLevelReplayBTrace(t *testing.T) {
	cfg := testConfig(t, "btrace", "IM", CoreLevel)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Written == 0 {
		t.Fatal("nothing written")
	}
	if res.Dropped != 0 {
		t.Fatalf("btrace dropped %d", res.Dropped)
	}
	if len(res.Truth) != int(res.Written) {
		t.Fatalf("truth %d != written %d", len(res.Truth), res.Written)
	}
	for i, s := range res.Truth {
		if s == 0 {
			t.Fatalf("stamp %d missing from truth", i+1)
		}
	}
	// All 12 cores must have produced (IM is a flat workload).
	for c, n := range res.PerCoreWritten {
		if n == 0 {
			t.Errorf("core %d wrote nothing", c)
		}
	}
	retained, err := RetainedStamps(cfg.Tracer)
	if err != nil {
		t.Fatal(err)
	}
	r, err := analysis.Analyze(res.Truth, retained, cfg.Tracer.TotalBytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Retained == 0 {
		t.Fatal("nothing retained")
	}
	// The newest stamp must be retained (BTrace never drops newest).
	found := false
	for _, s := range retained {
		if s == uint64(len(res.Truth)) {
			found = true
		}
	}
	if !found {
		t.Error("newest stamp lost")
	}
}

func TestThreadLevelReplayAllTracers(t *testing.T) {
	for _, name := range []string{"btrace", "bbq", "ftrace", "lttng", "vtrace"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, name, "eShop-1", ThreadLevel)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Written == 0 {
				t.Fatal("nothing written")
			}
			if name != "lttng" && res.Dropped != 0 {
				t.Fatalf("%s dropped %d entries", name, res.Dropped)
			}
			retained, err := RetainedStamps(cfg.Tracer)
			if err != nil {
				t.Fatal(err)
			}
			r, err := analysis.Analyze(res.Truth, retained, testBudget)
			if err != nil {
				t.Fatal(err)
			}
			if r.Retained == 0 {
				t.Fatal("nothing retained")
			}
			t.Logf("%s: written=%d retained=%d latest=%dB frags=%d loss=%.2f",
				name, res.Written, r.Retained, r.LatestFragmentBytes, r.Fragments, r.LossRate)
		})
	}
}

// TestRetentionOrdering: the paper's headline — with the same budget,
// BTrace's latest fragment beats the per-core and per-thread baselines
// under a skewed workload.
func TestRetentionOrdering(t *testing.T) {
	latest := map[string]uint64{}
	for _, name := range []string{"btrace", "ftrace", "vtrace"} {
		cfg := testConfig(t, name, "Video-1", ThreadLevel)
		cfg.RateScale = 0.03
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		retained, err := RetainedStamps(cfg.Tracer)
		if err != nil {
			t.Fatal(err)
		}
		r, err := analysis.Analyze(res.Truth, retained, testBudget)
		if err != nil {
			t.Fatal(err)
		}
		latest[name] = r.LatestFragmentBytes
	}
	if latest["btrace"] <= latest["ftrace"] {
		t.Errorf("btrace latest fragment %d <= ftrace %d", latest["btrace"], latest["ftrace"])
	}
	if latest["btrace"] <= latest["vtrace"] {
		t.Errorf("btrace latest fragment %d <= vtrace %d", latest["btrace"], latest["vtrace"])
	}
}

func TestLatencyMeasurement(t *testing.T) {
	cfg := testConfig(t, "btrace", "Music", CoreLevel)
	cfg.MeasureLatency = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LatenciesNs) != int(res.Written+res.Dropped) {
		t.Fatalf("latencies %d != attempts %d", len(res.LatenciesNs), res.Written+res.Dropped)
	}
	st := analysis.Latency(res.LatenciesNs)
	if st.GeoMean <= 0 {
		t.Fatal("zero geomean")
	}
}

func TestDistinctThreadCounts(t *testing.T) {
	wl, _ := workload.ByName("SysTest")
	tr, _ := tracer.New("btrace", testBudget, 12, 6000)
	res, err := Run(Config{Tracer: tr, Workload: wl, Mode: ThreadLevel, RateScale: 0.05, PreemptProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range res.DistinctThreads {
		if n == 0 {
			t.Errorf("core %d: no distinct threads", c)
		}
	}
}

func TestServerTopologyReplay(t *testing.T) {
	wl, _ := workload.ByName("IM")
	tr, _ := tracer.New("btrace", testBudget, 32, 1000)
	res, err := Run(Config{
		Tracer: tr, Workload: wl, Topology: sim.Server(32),
		Mode: CoreLevel, RateScale: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Written == 0 {
		t.Fatal("nothing written")
	}
	if len(res.PerCoreWritten) != 32 {
		t.Fatalf("per-core slice = %d", len(res.PerCoreWritten))
	}
}

func TestReplayFromSchedule(t *testing.T) {
	wl, err := workload.ByName("IM")
	if err != nil {
		t.Fatal(err)
	}
	s, err := wl.BuildSchedule(workload.GenOptions{RateScale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracer.New("btrace", testBudget, 12, 4000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Tracer: tr, Schedule: s, Mode: ThreadLevel, PreemptProb: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Written) != s.Events() {
		t.Fatalf("written %d, schedule has %d", res.Written, s.Events())
	}
	retained, err := RetainedStamps(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(retained) == 0 {
		t.Fatal("nothing retained")
	}
	// Topology mismatch is rejected.
	if _, err := Run(Config{Tracer: tr, Schedule: s, Topology: sim.Server(3)}); err == nil {
		t.Fatal("topology mismatch: expected error")
	}
}

// TestPerCoreRetentionSkew quantifies the Fig. 5 pathology on the real
// tracers: with per-core buffers under a skewed workload, the idle cores'
// retained data reaches much deeper into the past than the busy cores'.
func TestPerCoreRetentionSkew(t *testing.T) {
	cfg := testConfig(t, "ftrace", "Video-1", ThreadLevel)
	cfg.RateScale = 0.03
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	retained, err := RetainedStamps(cfg.Tracer)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := analysis.PerCore(res.Truth, res.TruthCores, retained)
	if err != nil {
		t.Fatal(err)
	}
	byCore := map[uint8]analysis.CoreRetention{}
	for _, r := range rows {
		byCore[r.Core] = r
	}
	// A little core (0) floods its private ring and keeps only recent
	// stamps; a big core (11) writes little and keeps deep history. The
	// per-core ring makes the big core's oldest retained stamp much older.
	little, big := byCore[0], byCore[11]
	if little.Retained == 0 || big.Retained == 0 {
		t.Skip("a core retained nothing at this scale")
	}
	if big.OldestStamp >= little.OldestStamp {
		t.Errorf("per-core skew missing: big oldest %d, little oldest %d",
			big.OldestStamp, little.OldestStamp)
	}
}
