// Package replay implements the paper's trace replay benchmark (§5
// "Replaying setup"): it drives a workload's per-core event streams into
// any tracer, at core level (one producer thread per core) or thread
// level (the workload's oversubscribed thread pool per core, contending
// for the virtual core and preempting mid-write), assigns every event a
// unique monotonically increasing logic stamp, and records per-write
// latencies. Events whose stamps do not appear in the readout are the
// tracer's losses.
package replay

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"btrace/internal/sim"
	"btrace/internal/tracer"
	"btrace/internal/workload"
)

// Mode selects the §5 replay method.
type Mode uint8

const (
	// CoreLevel runs one producer thread per core.
	CoreLevel Mode = iota
	// ThreadLevel runs the workload's per-core thread pool, exposing the
	// tracer to oversubscription and mid-write preemption.
	ThreadLevel
)

// String returns the mode name.
func (m Mode) String() string {
	if m == CoreLevel {
		return "core-level"
	}
	return "thread-level"
}

// Config configures a replay run.
type Config struct {
	// Tracer receives the events.
	Tracer tracer.Tracer
	// Workload is the replayed scenario.
	Workload workload.Workload
	// Topology is the virtual SoC (default Phone12).
	Topology sim.Topology
	// Mode selects core-level or thread-level replay.
	Mode Mode
	// Level caps enabled categories (default Level3).
	Level uint8
	// WindowNs is the virtual capture window (default 30 s).
	WindowNs uint64
	// RateScale scales event rates so tests and benchmarks can run the
	// same schedule shape at a fraction of the full volume (default 1).
	RateScale float64
	// PreemptProb is the probability of mid-write preemption at each
	// preemption point in thread-level mode.
	PreemptProb float64
	// MeasureLatency records per-write wall-clock latencies.
	MeasureLatency bool
	// Epochs divides the virtual window into synchronization epochs: all
	// producer threads align on epoch boundaries, so the global stamp
	// order tracks the events' virtual timestamps at epoch granularity
	// (the paper replays "based on timing"; without pacing, cores with
	// fewer events would finish wall-clock early and the interleaving
	// would not resemble the device's). Default 120 (250 ms at 30 s).
	Epochs int
	// Schedule, when set, replays this exact pre-materialized schedule
	// (see workload.Schedule) instead of generating events from Workload;
	// Level/WindowNs/RateScale are taken from the schedule, and Topology
	// must match its core count (or be zero to derive it).
	Schedule *workload.Schedule
}

func (c Config) defaults() Config {
	if c.Topology.Cores() == 0 {
		c.Topology = sim.Phone12()
	}
	if c.Level == 0 {
		c.Level = workload.Level3
	}
	if c.WindowNs == 0 {
		c.WindowNs = workload.DefaultWindowNs
	}
	if c.RateScale == 0 {
		c.RateScale = 1
	}
	if c.Epochs == 0 {
		c.Epochs = 120
	}
	return c
}

// barrier is a reusable cyclic barrier for n participants.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	round   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have called await for this round.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	round := b.round
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.round++
		b.cond.Broadcast()
		return
	}
	for b.round == round {
		b.cond.Wait()
	}
}

// Result is the outcome of a replay.
type Result struct {
	// Truth maps stamp-1 to the event's wire size: the ground-truth
	// write log the analysis compares readouts against. It includes
	// events the tracer dropped (they were offered and carry stamps).
	Truth []uint32
	// TruthCores maps stamp-1 to the producing core, for per-core
	// retention analysis (the Fig. 5 skew).
	TruthCores []uint8
	// Written counts successful writes; Dropped counts ErrDropped.
	Written, Dropped uint64
	// PerCoreWritten counts successful writes per core.
	PerCoreWritten []uint64
	// LatenciesNs holds one wall-clock sample per write attempt (only
	// when Config.MeasureLatency).
	LatenciesNs []int64
	// Elapsed is the wall-clock duration of the replay.
	Elapsed time.Duration
	// DistinctThreads counts distinct producing threads per core.
	DistinctThreads []int
}

// threadLog is one producer thread's private record of its activity,
// merged into Result afterwards so recording never contends.
type threadLog struct {
	stamps  []uint64
	sizes   []uint32
	lats    []int64
	written uint64
	dropped uint64
}

// Run executes the replay and returns the ground truth and measurements.
// The tracer is NOT reset first; callers compose multi-phase runs.
func Run(cfg Config) (*Result, error) {
	if cfg.Schedule != nil {
		if cfg.Topology.Cores() == 0 {
			cfg.Topology = cfg.Schedule.Topology()
		}
		if cfg.Topology.Cores() != len(cfg.Schedule.PerCore) {
			return nil, fmt.Errorf("replay: topology has %d cores, schedule %d",
				cfg.Topology.Cores(), len(cfg.Schedule.PerCore))
		}
		cfg.WindowNs = cfg.Schedule.WindowNs
	}
	cfg = cfg.defaults()
	if cfg.Tracer == nil {
		return nil, fmt.Errorf("replay: nil tracer")
	}
	m, err := sim.NewMachine(cfg.Topology)
	if err != nil {
		return nil, err
	}
	cores := cfg.Topology.Cores()

	// Partition each core's event stream among its producer threads.
	type job struct {
		core   int
		events []workload.Event
	}
	var jobs []job
	distinct := make([]int, cores)
	for c := 0; c < cores; c++ {
		var events []workload.Event
		tids := map[uint32]bool{}
		if cfg.Schedule != nil {
			events = cfg.Schedule.PerCore[c]
			for _, e := range events {
				tids[e.TID] = true
			}
		} else {
			g, err := cfg.Workload.Gen(workload.GenOptions{
				Topology: cfg.Topology, Core: c, Level: cfg.Level,
				WindowNs: cfg.WindowNs, RateScale: cfg.RateScale,
			})
			if err != nil {
				return nil, err
			}
			for {
				e, ok := g.Next()
				if !ok {
					break
				}
				tids[e.TID] = true
				events = append(events, e)
			}
		}
		distinct[c] = len(tids)
		if len(events) == 0 {
			continue
		}
		if cfg.Mode == CoreLevel {
			jobs = append(jobs, job{core: c, events: events})
			continue
		}
		// Thread-level: split by TID among the concurrently active pool.
		pool := cfg.Workload.ThreadsPerSec
		if pool < 1 {
			// Schedule-only replay: approximate the pool from the
			// distinct thread count (Fig. 6's per-second/total ratio is
			// roughly 1/12 across the workload set).
			pool = distinct[c]/12 + 1
		}
		parts := make([][]workload.Event, pool)
		for _, e := range events {
			k := int(e.TID) % pool
			parts[k] = append(parts[k], e)
		}
		for _, part := range parts {
			if len(part) > 0 {
				jobs = append(jobs, job{core: c, events: part})
			}
		}
	}

	var (
		stamp   atomic.Uint64
		wg      sync.WaitGroup
		logs    = make([]*threadLog, len(jobs))
		runErr  atomic.Value
		started = time.Now()
		bar     = newBarrier(len(jobs))
	)
	for i, jb := range jobs {
		prob := cfg.PreemptProb
		if cfg.Mode == CoreLevel {
			prob = 0
		}
		th, err := m.NewThread(sim.ThreadConfig{
			ID: i, Core: jb.core, PreemptProb: prob, Seed: cfg.Workload.Seed ^ int64(i*2711+1),
		})
		if err != nil {
			return nil, err
		}
		lg := &threadLog{}
		logs[i] = lg
		wg.Add(1)
		go worker(&cfg, jb.core, jb.events, th, lg, bar, &stamp, &runErr, &wg)
	}
	wg.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return nil, err
	}

	res := &Result{
		Truth:           make([]uint32, stamp.Load()),
		TruthCores:      make([]uint8, stamp.Load()),
		PerCoreWritten:  make([]uint64, cores),
		DistinctThreads: distinct,
		Elapsed:         time.Since(started),
	}
	for i, lg := range logs {
		for j, s := range lg.stamps {
			res.Truth[s-1] = lg.sizes[j]
			res.TruthCores[s-1] = uint8(jobs[i].core)
		}
		res.Written += lg.written
		res.Dropped += lg.dropped
		res.PerCoreWritten[jobs[i].core] += lg.written
		res.LatenciesNs = append(res.LatenciesNs, lg.lats...)
	}
	return res, nil
}

// worker drives one producer thread's event list epoch by epoch: it
// acquires its virtual core, writes the epoch's events (offering
// preemption between and inside writes), releases the core and aligns with
// every other producer at the epoch barrier, so stamps track virtual time.
func worker(cfg *Config, coreID int, events []workload.Event, th *sim.Thread,
	lg *threadLog, bar *barrier, stamp *atomic.Uint64, runErr *atomic.Value, wg *sync.WaitGroup) {
	defer wg.Done()
	payload := make([]byte, tracer.MaxPayload)
	epochNs := cfg.WindowNs / uint64(cfg.Epochs)
	if epochNs == 0 {
		epochNs = 1
	}
	next := 0
	failed := false
	for ep := 0; ep < cfg.Epochs; ep++ {
		limit := uint64(ep+1) * epochNs
		if ep == cfg.Epochs-1 {
			limit = cfg.WindowNs
		}
		if !failed && next < len(events) && events[next].TS < limit {
			th.Acquire()
			for next < len(events) && events[next].TS < limit {
				ev := events[next]
				next++
				e := tracer.Entry{
					Stamp:    stamp.Add(1),
					TS:       ev.TS,
					Core:     uint8(coreID),
					TID:      ev.TID & 0xFFFFFF,
					Category: uint8(ev.Cat),
					Level:    ev.Level,
					Payload:  payload[:ev.PayloadLen],
				}
				var t0 time.Time
				if cfg.MeasureLatency {
					t0 = time.Now()
				}
				err := cfg.Tracer.Write(th, &e)
				if cfg.MeasureLatency {
					lg.lats = append(lg.lats, time.Since(t0).Nanoseconds())
				}
				switch {
				case err == nil:
					lg.written++
				case errors.Is(err, tracer.ErrDropped):
					lg.dropped++
				default:
					runErr.Store(fmt.Errorf("replay: core %d tid %d: %w", coreID, ev.TID, err))
					failed = true
				}
				if failed {
					break
				}
				lg.stamps = append(lg.stamps, e.Stamp)
				lg.sizes = append(lg.sizes, uint32(e.WireSize()))
				// Between events the thread offers itself for rescheduling
				// (event gaps are where the OS runs other threads).
				th.MaybePreempt(tracer.PreemptOutside)
			}
			th.Release()
		}
		bar.await()
	}
}

// RetainedStamps reads the tracer back and returns the retained stamps in
// ascending order. Tracers that can mint streaming cursors are drained
// through one reused batch — only the stamps are retained, never the full
// event slice; the rest fall back to ReadAll.
func RetainedStamps(tr tracer.Tracer) ([]uint64, error) {
	if cs, ok := tr.(tracer.CursorSource); ok {
		cur := cs.NewCursor()
		defer cur.Close()
		batch := make([]tracer.Entry, 512)
		var out []uint64
		for {
			n, _, err := cur.Next(batch)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return out, nil
			}
			for i := 0; i < n; i++ {
				out = append(out, batch[i].Stamp)
			}
		}
	}
	es, err := tr.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(es))
	for i := range es {
		out[i] = es[i].Stamp
	}
	return out, nil
}
