package workload

import (
	"bytes"
	"strings"
	"testing"

	"btrace/internal/sim"
)

func buildTestSchedule(t *testing.T) *Schedule {
	t.Helper()
	w, err := ByName("IM")
	if err != nil {
		t.Fatal(err)
	}
	s, err := w.BuildSchedule(GenOptions{RateScale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildSchedule(t *testing.T) {
	s := buildTestSchedule(t)
	if s.Name != "IM" || s.Level != Level3 || len(s.PerCore) != 12 {
		t.Fatalf("header: %+v", s)
	}
	if s.Events() == 0 || s.Bytes() == 0 {
		t.Fatal("empty schedule")
	}
	for c, es := range s.PerCore {
		if len(es) == 0 {
			t.Fatalf("core %d empty", c)
		}
		for i := 1; i < len(es); i++ {
			if es[i].TS <= es[i-1].TS {
				t.Fatalf("core %d: timestamps not increasing", c)
			}
		}
	}
	// Building twice is deterministic.
	s2 := buildTestSchedule(t)
	if s2.Events() != s.Events() {
		t.Fatalf("nondeterministic build: %d vs %d", s2.Events(), s.Events())
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := buildTestSchedule(t)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo count %d != %d", n, buf.Len())
	}
	// The delta+varint encoding should be compact: well under 16 bytes
	// per event.
	if perEvent := float64(buf.Len()) / float64(s.Events()); perEvent > 16 {
		t.Errorf("encoding too large: %.1f bytes/event", perEvent)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Level != s.Level || got.WindowNs != s.WindowNs ||
		got.RateScale != s.RateScale || len(got.PerCore) != len(s.PerCore) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for c := range s.PerCore {
		if len(got.PerCore[c]) != len(s.PerCore[c]) {
			t.Fatalf("core %d: %d events, want %d", c, len(got.PerCore[c]), len(s.PerCore[c]))
		}
		for i := range s.PerCore[c] {
			if got.PerCore[c][i] != s.PerCore[c][i] {
				t.Fatalf("core %d event %d: %+v != %+v", c, i, got.PerCore[c][i], s.PerCore[c][i])
			}
		}
	}
}

func TestReadScheduleErrors(t *testing.T) {
	if _, err := ReadSchedule(strings.NewReader("")); err == nil {
		t.Error("empty input")
	}
	if _, err := ReadSchedule(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic")
	}
	// Corrupt version.
	var buf bytes.Buffer
	s := buildTestSchedule(t)
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadSchedule(bytes.NewReader(data)); err == nil {
		t.Error("bad version")
	}
	// Truncated body.
	data[4] = 1
	if _, err := ReadSchedule(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated input")
	}
}

func TestScheduleTopology(t *testing.T) {
	s := &Schedule{PerCore: make([][]Event, 12)}
	if s.Topology() != sim.Phone12() {
		t.Error("12 cores should map to Phone12")
	}
	s = &Schedule{PerCore: make([][]Event, 32)}
	if s.Topology().Cores() != 32 {
		t.Error("arbitrary core count")
	}
}
