package workload

import (
	"fmt"
	"math/rand"

	"btrace/internal/sim"
)

// Event is one synthetic trace event scheduled by a generator.
type Event struct {
	// TS is the virtual timestamp in nanoseconds from window start.
	TS uint64
	// Cat is the atrace category.
	Cat Category
	// Level is the category's trace level.
	Level uint8
	// TID is the producing thread (unique across cores).
	TID uint32
	// PayloadLen is the event body length in bytes.
	PayloadLen int
}

// DefaultWindowNs is the evaluation's 30-second capture window.
const DefaultWindowNs = 30 * 1_000_000_000

// GenOptions configures a per-core event generator.
type GenOptions struct {
	// Topology locates the core's kind; zero value selects Phone12.
	Topology sim.Topology
	// Core is the core whose stream to generate.
	Core int
	// Level caps the enabled categories (default Level3).
	Level uint8
	// WindowNs is the virtual capture window (default DefaultWindowNs).
	WindowNs uint64
	// RateScale scales the event rate, letting tests run the same
	// schedule shape at a fraction of the volume (default 1.0).
	RateScale float64
}

func (o GenOptions) defaults() GenOptions {
	if o.Topology.Cores() == 0 {
		o.Topology = sim.Phone12()
	}
	if o.Level == 0 {
		o.Level = Level3
	}
	if o.WindowNs == 0 {
		o.WindowNs = DefaultWindowNs
	}
	if o.RateScale == 0 {
		o.RateScale = 1
	}
	return o
}

// Gen produces one core's deterministic event stream: exponential
// inter-arrival times at the workload's Fig. 4 rate, categories sampled by
// the Fig. 2 weights (restricted to the enabled level), payload sizes
// jittered around the category mean, and producing threads churning
// through a pool calibrated to the Fig. 6 oversubscription counts.
type Gen struct {
	rng      *rand.Rand
	now      uint64
	window   uint64
	meanGap  float64 // ns between events
	cats     []Category
	cumW     []float64
	totW     float64
	active   []uint32
	nextTID  uint32
	replaceP float64
	core     int
}

// Gen creates the generator for one core.
func (w Workload) Gen(o GenOptions) (*Gen, error) {
	o = o.defaults()
	if o.Core < 0 || o.Core >= o.Topology.Cores() {
		return nil, fmt.Errorf("workload: core %d out of range [0,%d)", o.Core, o.Topology.Cores())
	}
	if o.Level < Level1 || o.Level > Level3 {
		return nil, fmt.Errorf("workload: level %d out of range [1,3]", o.Level)
	}
	if o.RateScale < 0 {
		return nil, fmt.Errorf("workload: negative rate scale %v", o.RateScale)
	}

	levelFrac := LevelWeight(o.Level) / LevelWeight(Level3)
	rate := w.RateK(o.Topology, o.Core) * 1000 * levelFrac * o.RateScale // entries/s
	g := &Gen{
		rng:    rand.New(rand.NewSource(w.Seed*1_000_003 + int64(o.Core)*7919 + int64(o.Level))),
		window: o.WindowNs,
		core:   o.Core,
	}
	if rate > 0 {
		g.meanGap = 1e9 / rate
	}

	for c := Category(0); c < NumCategories; c++ {
		if Categories[c].Level <= o.Level {
			g.cats = append(g.cats, c)
			g.totW += Categories[c].PeakMBPerCoreMin
			g.cumW = append(g.cumW, g.totW)
		}
	}

	// Thread pool: ThreadsPerSec concurrently active, churning so that
	// ~ThreadsTotal distinct threads appear over the window.
	perSec := w.ThreadsPerSec
	if perSec < 1 {
		perSec = 1
	}
	g.active = make([]uint32, perSec)
	for i := range g.active {
		g.active[i] = g.newTID()
	}
	expectedEvents := rate * float64(o.WindowNs) / 1e9
	if extra := float64(w.ThreadsTotal - perSec); extra > 0 && expectedEvents > 0 {
		g.replaceP = extra / expectedEvents
		if g.replaceP > 1 {
			g.replaceP = 1
		}
	}
	return g, nil
}

func (g *Gen) newTID() uint32 {
	g.nextTID++
	return uint32(g.core)<<16 | g.nextTID
}

// Next returns the next event, or ok=false when the window is exhausted.
func (g *Gen) Next() (Event, bool) {
	if g.meanGap == 0 {
		return Event{}, false
	}
	gap := g.rng.ExpFloat64() * g.meanGap
	if gap < 1 {
		gap = 1
	}
	g.now += uint64(gap)
	if g.now >= g.window {
		return Event{}, false
	}
	// Category by Fig. 2 weight.
	x := g.rng.Float64() * g.totW
	ci := 0
	for ci < len(g.cumW)-1 && x > g.cumW[ci] {
		ci++
	}
	cat := g.cats[ci]
	info := Categories[cat]

	// Payload: mean +/- 50%, 8-byte granularity.
	jitter := 0.5 + g.rng.Float64()
	plen := int(float64(info.MeanPayload) * jitter)
	plen = plen / 8 * 8
	if plen < 8 {
		plen = 8
	}

	// Thread churn.
	if g.replaceP > 0 && g.rng.Float64() < g.replaceP {
		g.active[g.rng.Intn(len(g.active))] = g.newTID()
	}
	tid := g.active[g.rng.Intn(len(g.active))]

	return Event{TS: g.now, Cat: cat, Level: info.Level, TID: tid, PayloadLen: plen}, true
}

// DistinctTIDs drains a fresh generator and returns how many distinct
// threads it would produce; used to validate Fig. 6 calibration.
func (w Workload) DistinctTIDs(o GenOptions) (int, error) {
	g, err := w.Gen(o)
	if err != nil {
		return 0, err
	}
	seen := map[uint32]bool{}
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		seen[e.TID] = true
	}
	return len(seen), nil
}
