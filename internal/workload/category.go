// Package workload models the 20 replay workloads of the paper's
// evaluation (§5 "Workloads"): the top applications and games, the
// developer performance-testing tools, and the typical usage scenarios
// (lock screen, desktop), together with the atrace category mix of Fig. 2,
// the per-core production-speed profiles of Fig. 4, the trace levels of
// Fig. 3 and the thread-oversubscription statistics of Fig. 6.
//
// The real study replays traces captured on production smartphones; those
// traces are not publicly available, so this package generates synthetic
// event streams calibrated to the paper's published aggregates (see
// DESIGN.md, "Faithfulness notes"). Generation is deterministic per
// (workload, core): two runs produce byte-identical schedules.
package workload

// Category enumerates the atrace categories of Fig. 2.
type Category uint8

// The atrace categories, in Fig. 2's legend order.
const (
	CatBinderLock Category = iota
	CatPagecache
	CatBinderDriver
	CatNetwork
	CatHAL
	CatIdle
	CatRes
	CatInput
	CatGfx
	CatPower
	CatView
	CatSched
	CatAM
	CatDalvik
	CatIRQ
	CatSS
	CatFreq
	CatEnergy
	CatWM
	NumCategories // sentinel
)

// Trace levels (§2.2, Fig. 3). Level 1 holds the minimal binder events
// that establish thread dependencies; level 2 adds scheduling decisions
// and IRQs needed for performance diagnosis; level 3 adds the custom
// energy/frequency/idle detail required for system-wide issues.
const (
	Level1 = 1
	Level2 = 2
	Level3 = 3
)

// CategoryInfo describes one atrace category.
type CategoryInfo struct {
	// Name is the atrace category name (Fig. 2 legend).
	Name string
	// PeakMBPerCoreMin is the category's production speed in MB per core
	// per minute when fully exercised (the Fig. 2 bar heights).
	PeakMBPerCoreMin float64
	// Level is the smallest trace level that enables the category.
	Level uint8
	// MeanPayload is the mean event payload in bytes (categories differ:
	// a sched switch record is small, an energy/thermal reasoning record
	// carries explanatory detail).
	MeanPayload int
}

// Categories is the Fig. 2 category table. The bar heights are read off
// the published figure (axis 0-200 MB/core/min); the text's calibration
// point — "idle decisions, frequency altering, scheduling actions and
// energy-aware strategies ... approximately 100 MB of trace data per
// minute on average" per core — holds for the level-3 custom categories.
var Categories = [NumCategories]CategoryInfo{
	CatBinderLock:   {"binder_lock", 15, Level1, 40},
	CatPagecache:    {"pagecache", 10, Level2, 32},
	CatBinderDriver: {"binder_driver", 25, Level1, 56},
	CatNetwork:      {"network", 12, Level2, 48},
	CatHAL:          {"hal", 8, Level2, 40},
	CatIdle:         {"idle", 95, Level3, 24},
	CatRes:          {"res", 5, Level2, 32},
	CatInput:        {"input", 6, Level2, 40},
	CatGfx:          {"gfx", 35, Level2, 48},
	CatPower:        {"power", 20, Level2, 40},
	CatView:         {"view", 30, Level2, 64},
	CatSched:        {"sched", 120, Level2, 48},
	CatAM:           {"am", 10, Level2, 72},
	CatDalvik:       {"dalvik", 15, Level2, 56},
	CatIRQ:          {"irq", 70, Level2, 32},
	CatSS:           {"ss", 8, Level2, 48},
	CatFreq:         {"freq", 140, Level3, 32},
	CatEnergy:       {"energy/thermal/...", 200, Level3, 96},
	CatWM:           {"wm", 6, Level2, 64},
}

// Name returns the category's atrace name.
func (c Category) Name() string {
	if c >= NumCategories {
		return "unknown"
	}
	return Categories[c].Name
}

// LevelWeight returns the total Fig. 2 rate of all categories enabled at
// the given level, in MB per core per minute. It determines both the
// category sampling weights and the relative data volumes of Fig. 3's
// levels.
func LevelWeight(level uint8) float64 {
	var sum float64
	for _, ci := range Categories {
		if ci.Level <= level {
			sum += ci.PeakMBPerCoreMin
		}
	}
	return sum
}
