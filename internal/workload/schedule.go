package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"btrace/internal/sim"
)

// Schedule is a fully materialized replay input: every core's event
// stream for one workload window. The paper replays recorded device
// traces; a saved Schedule is this repository's equivalent artifact —
// it pins the exact event sequence so a regression can be replayed
// bit-for-bit on another machine or after generator changes.
type Schedule struct {
	// Name is the source workload name.
	Name string
	// Level is the trace level the schedule was generated at.
	Level uint8
	// WindowNs is the virtual capture window.
	WindowNs uint64
	// RateScale records the generation scale for provenance.
	RateScale float64
	// PerCore holds each core's events in timestamp order.
	PerCore [][]Event
}

// BuildSchedule materializes the workload's streams for every core of the
// topology.
func (w Workload) BuildSchedule(o GenOptions) (*Schedule, error) {
	o = o.defaults()
	s := &Schedule{
		Name:      w.Name,
		Level:     o.Level,
		WindowNs:  o.WindowNs,
		RateScale: o.RateScale,
		PerCore:   make([][]Event, o.Topology.Cores()),
	}
	for c := 0; c < o.Topology.Cores(); c++ {
		oc := o
		oc.Core = c
		g, err := w.Gen(oc)
		if err != nil {
			return nil, err
		}
		for {
			e, ok := g.Next()
			if !ok {
				break
			}
			s.PerCore[c] = append(s.PerCore[c], e)
		}
	}
	return s, nil
}

// Events returns the total event count.
func (s *Schedule) Events() int {
	n := 0
	for _, es := range s.PerCore {
		n += len(es)
	}
	return n
}

// Bytes returns the total wire volume of the schedule's events (32-byte
// event headers plus padded payloads).
func (s *Schedule) Bytes() uint64 {
	var b uint64
	for _, es := range s.PerCore {
		for _, e := range es {
			b += uint64(32 + (e.PayloadLen+7)/8*8)
		}
	}
	return b
}

// Schedule file format:
//
//	magic "BTWL" | version u8 | level u8 | cores u16
//	windowNs u64 | rateScale float64-bits u64
//	name: len u16 + bytes
//	per core: count u32, then per event:
//	  tsDelta uvarint | cat u8 | level u8 | tid u32 | payloadLen u16
const (
	scheduleMagic   = "BTWL"
	scheduleVersion = 1
)

// WriteTo serializes the schedule.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(scheduleMagic)); err != nil {
		return cw.n, err
	}
	if err := write(uint8(scheduleVersion)); err != nil {
		return cw.n, err
	}
	if err := write(s.Level); err != nil {
		return cw.n, err
	}
	if err := write(uint16(len(s.PerCore))); err != nil {
		return cw.n, err
	}
	if err := write(s.WindowNs); err != nil {
		return cw.n, err
	}
	if err := write(float64bits(s.RateScale)); err != nil {
		return cw.n, err
	}
	if len(s.Name) > 1<<16-1 {
		return cw.n, fmt.Errorf("workload: name too long")
	}
	if err := write(uint16(len(s.Name))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte(s.Name)); err != nil {
		return cw.n, err
	}

	var varint [binary.MaxVarintLen64]byte
	for _, es := range s.PerCore {
		if err := write(uint32(len(es))); err != nil {
			return cw.n, err
		}
		var lastTS uint64
		for _, e := range es {
			n := binary.PutUvarint(varint[:], e.TS-lastTS)
			lastTS = e.TS
			if _, err := cw.Write(varint[:n]); err != nil {
				return cw.n, err
			}
			if err := write(uint8(e.Cat)); err != nil {
				return cw.n, err
			}
			if err := write(e.Level); err != nil {
				return cw.n, err
			}
			if err := write(e.TID); err != nil {
				return cw.n, err
			}
			if err := write(uint16(e.PayloadLen)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSchedule deserializes a schedule written by WriteTo.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading magic: %w", err)
	}
	if string(magic) != scheduleMagic {
		return nil, fmt.Errorf("workload: bad magic %q", magic)
	}
	var version uint8
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != scheduleVersion {
		return nil, fmt.Errorf("workload: unsupported schedule version %d", version)
	}
	s := &Schedule{}
	var cores uint16
	if err := read(&s.Level); err != nil {
		return nil, err
	}
	if err := read(&cores); err != nil {
		return nil, err
	}
	if err := read(&s.WindowNs); err != nil {
		return nil, err
	}
	var scaleBits uint64
	if err := read(&scaleBits); err != nil {
		return nil, err
	}
	s.RateScale = float64frombits(scaleBits)
	var nameLen uint16
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	s.Name = string(name)

	s.PerCore = make([][]Event, cores)
	for c := range s.PerCore {
		var count uint32
		if err := read(&count); err != nil {
			return nil, err
		}
		es := make([]Event, 0, count)
		var lastTS uint64
		for i := uint32(0); i < count; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("workload: core %d event %d: %w", c, i, err)
			}
			lastTS += delta
			var (
				cat, level uint8
				tid        uint32
				plen       uint16
			)
			if err := read(&cat); err != nil {
				return nil, err
			}
			if err := read(&level); err != nil {
				return nil, err
			}
			if err := read(&tid); err != nil {
				return nil, err
			}
			if err := read(&plen); err != nil {
				return nil, err
			}
			es = append(es, Event{
				TS: lastTS, Cat: Category(cat), Level: level,
				TID: tid, PayloadLen: int(plen),
			})
		}
		s.PerCore[c] = es
	}
	return s, nil
}

// Topology returns a flat topology matching the schedule's core count,
// for replaying schedules whose source topology is unknown.
func (s *Schedule) Topology() sim.Topology {
	t := sim.Phone12()
	if t.Cores() != len(s.PerCore) {
		return sim.Server(len(s.PerCore))
	}
	return t
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
