package workload

import (
	"fmt"

	"btrace/internal/sim"
)

// Workload is one of the 20 replay workloads. Rates are given per core
// kind in thousands of entries per second, matching Fig. 4's axis; thread
// counts match Fig. 6's per-core box plot.
type Workload struct {
	// Name as used in Table 2 / Fig. 4.
	Name string
	// Class groups the workload: "app", "game", "tool" (developer
	// performance-testing software) or "scenario" (lock screen, desktop).
	Class string
	// LittleK, MiddleK, BigK are the average trace production speeds of
	// little/middle/big cores in kEntries/s (Fig. 4).
	LittleK, MiddleK, BigK float64
	// ThreadsTotal is the distinct trace-producing thread count per core
	// over the 30 s window (Fig. 6 "Total 30s").
	ThreadsTotal int
	// ThreadsPerSec is the distinct thread count per core within one
	// second (Fig. 6 "Per Sec.").
	ThreadsPerSec int
	// Seed makes the workload's generators deterministic.
	Seed int64
}

// All returns the 20 evaluation workloads (§5: top-10 applications and
// games by downloads, developer testing tools, and typical usage
// scenarios). The six profiles shown in Fig. 4 (Desktop, Video-1,
// Video-2, eShop-1, LockScr., IM) are calibrated to the published curves;
// the remainder interpolate their class.
func All() []Workload {
	return []Workload{
		// Typical usage scenarios.
		{Name: "Desktop", Class: "scenario", LittleK: 6, MiddleK: 3, BigK: 1.5, ThreadsTotal: 120, ThreadsPerSec: 12, Seed: 101},
		{Name: "LockScr.", Class: "scenario", LittleK: 2, MiddleK: 0.3, BigK: 0.1, ThreadsTotal: 30, ThreadsPerSec: 4, Seed: 102},
		// Top applications.
		{Name: "IM", Class: "app", LittleK: 4, MiddleK: 4, BigK: 3.5, ThreadsTotal: 240, ThreadsPerSec: 22, Seed: 103},
		{Name: "Browser", Class: "app", LittleK: 8, MiddleK: 6, BigK: 4, ThreadsTotal: 300, ThreadsPerSec: 26, Seed: 104},
		{Name: "Video-1", Class: "app", LittleK: 15, MiddleK: 6, BigK: 1, ThreadsTotal: 280, ThreadsPerSec: 24, Seed: 105},
		{Name: "Video-2", Class: "app", LittleK: 12, MiddleK: 8, BigK: 2, ThreadsTotal: 320, ThreadsPerSec: 28, Seed: 106},
		{Name: "Video-3", Class: "app", LittleK: 16, MiddleK: 9, BigK: 3, ThreadsTotal: 400, ThreadsPerSec: 34, Seed: 107},
		{Name: "eShop-1", Class: "app", LittleK: 9, MiddleK: 7, BigK: 5, ThreadsTotal: 360, ThreadsPerSec: 30, Seed: 108},
		{Name: "eShop-2", Class: "app", LittleK: 11, MiddleK: 9, BigK: 6, ThreadsTotal: 430, ThreadsPerSec: 38, Seed: 109},
		{Name: "Social-1", Class: "app", LittleK: 7, MiddleK: 5, BigK: 3, ThreadsTotal: 260, ThreadsPerSec: 24, Seed: 110},
		{Name: "Social-2", Class: "app", LittleK: 9, MiddleK: 6, BigK: 2.5, ThreadsTotal: 290, ThreadsPerSec: 25, Seed: 111},
		{Name: "Maps", Class: "app", LittleK: 8, MiddleK: 7, BigK: 4, ThreadsTotal: 310, ThreadsPerSec: 27, Seed: 112},
		{Name: "Music", Class: "app", LittleK: 3, MiddleK: 1.5, BigK: 0.5, ThreadsTotal: 90, ThreadsPerSec: 9, Seed: 113},
		// Games.
		{Name: "Game-1", Class: "game", LittleK: 10, MiddleK: 9, BigK: 8, ThreadsTotal: 380, ThreadsPerSec: 32, Seed: 114},
		{Name: "Game-2", Class: "game", LittleK: 12, MiddleK: 10, BigK: 9, ThreadsTotal: 420, ThreadsPerSec: 36, Seed: 115},
		{Name: "Game-3", Class: "game", LittleK: 9, MiddleK: 8, BigK: 7, ThreadsTotal: 350, ThreadsPerSec: 30, Seed: 116},
		// Developer performance-testing software.
		{Name: "MemTest", Class: "tool", LittleK: 13, MiddleK: 11, BigK: 9, ThreadsTotal: 200, ThreadsPerSec: 18, Seed: 117},
		{Name: "CPUTest", Class: "tool", LittleK: 14, MiddleK: 13, BigK: 12, ThreadsTotal: 160, ThreadsPerSec: 15, Seed: 118},
		{Name: "SysTest", Class: "tool", LittleK: 12, MiddleK: 10, BigK: 8, ThreadsTotal: 440, ThreadsPerSec: 40, Seed: 119},
		{Name: "Camera", Class: "app", LittleK: 10, MiddleK: 8, BigK: 6, ThreadsTotal: 270, ThreadsPerSec: 23, Seed: 120},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns the workload names in evaluation order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// coreJitter deterministically perturbs a per-kind rate so same-kind
// cores differ slightly, as the Fig. 4 curves do.
func coreJitter(core int, seed int64) float64 {
	x := uint64(seed)*2654435761 + uint64(core)*40503
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	// +/-12%
	return 0.88 + 0.24*float64(x%1000)/1000
}

// RateK returns the workload's production speed on the given core of topo
// in kEntries/s (the Fig. 4 per-core profile).
func (w Workload) RateK(topo sim.Topology, core int) float64 {
	var base float64
	switch topo.Kind(core) {
	case sim.Little:
		base = w.LittleK
	case sim.Middle:
		base = w.MiddleK
	default:
		base = w.BigK
	}
	return base * coreJitter(core, w.Seed)
}

// MeanEntryBytes returns the mean wire size of the workload's events at
// the given trace level, derived from the category mix.
func MeanEntryBytes(level uint8) float64 {
	var wsum, bsum float64
	for _, ci := range Categories {
		if ci.Level <= level {
			wsum += ci.PeakMBPerCoreMin
			bsum += ci.PeakMBPerCoreMin * float64(32+ci.MeanPayload) // event header is 32 B
		}
	}
	if wsum == 0 {
		return 0
	}
	return bsum / wsum
}

// BytesPerSec returns the workload's approximate total production speed
// across all cores of topo at the given level, in bytes per second. Fig. 3
// uses this to plot level volumes over time.
func (w Workload) BytesPerSec(topo sim.Topology, level uint8) float64 {
	levelFrac := LevelWeight(level) / LevelWeight(Level3)
	mean := MeanEntryBytes(level)
	var total float64
	for c := 0; c < topo.Cores(); c++ {
		total += w.RateK(topo, c) * 1000 * levelFrac * mean
	}
	return total
}
