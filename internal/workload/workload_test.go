package workload

import (
	"math"
	"testing"
	"testing/quick"

	"btrace/internal/sim"
)

func TestAllTwentyWorkloads(t *testing.T) {
	ws := All()
	if len(ws) != 20 {
		t.Fatalf("got %d workloads, want 20 (§5)", len(ws))
	}
	classes := map[string]int{}
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		classes[w.Class]++
		if w.LittleK <= 0 || w.MiddleK <= 0 || w.BigK <= 0 {
			t.Errorf("%s: non-positive rates", w.Name)
		}
		if w.ThreadsTotal < w.ThreadsPerSec {
			t.Errorf("%s: total threads %d < per-second %d", w.Name, w.ThreadsTotal, w.ThreadsPerSec)
		}
	}
	// §5: apps+games, tools, scenarios must all be represented.
	for _, cl := range []string{"app", "game", "tool", "scenario"} {
		if classes[cl] == 0 {
			t.Errorf("no workloads of class %q", cl)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Video-1")
	if err != nil || w.Name != "Video-1" {
		t.Fatalf("ByName(Video-1): %v %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name: expected error")
	}
	if len(Names()) != 20 {
		t.Fatal("Names length")
	}
}

func TestCategories(t *testing.T) {
	if CatEnergy.Name() != "energy/thermal/..." {
		t.Errorf("energy name = %q", CatEnergy.Name())
	}
	if Category(200).Name() != "unknown" {
		t.Error("out-of-range category name")
	}
	// Level weights must be strictly increasing and level-3-dominated
	// (Fig. 3: level 3 adds the high-frequency custom categories).
	w1, w2, w3 := LevelWeight(Level1), LevelWeight(Level2), LevelWeight(Level3)
	if !(w1 < w2 && w2 < w3) {
		t.Fatalf("level weights not increasing: %v %v %v", w1, w2, w3)
	}
	if w3 < 2*w2 {
		t.Errorf("level 3 should dominate: w2=%v w3=%v", w2, w3)
	}
	// The level-3 custom categories (idle/freq/sched/energy) average
	// ~100 MB/core/min per the §2.2 calibration point.
	avg := (Categories[CatIdle].PeakMBPerCoreMin + Categories[CatFreq].PeakMBPerCoreMin +
		Categories[CatSched].PeakMBPerCoreMin + Categories[CatEnergy].PeakMBPerCoreMin) / 4
	if avg < 80 || avg > 160 {
		t.Errorf("custom category average %v MB/core/min, want ~100-140", avg)
	}
}

// TestFig4Shape: the published per-core profiles — Video-1 strongly
// little-skewed, IM flat, LockScr. near-idle big cores.
func TestFig4Shape(t *testing.T) {
	topo := sim.Phone12()
	v1, _ := ByName("Video-1")
	if v1.RateK(topo, 0) < 3*v1.RateK(topo, 11) {
		t.Errorf("Video-1 little/big skew too small: %v vs %v", v1.RateK(topo, 0), v1.RateK(topo, 11))
	}
	im, _ := ByName("IM")
	ratio := im.RateK(topo, 0) / im.RateK(topo, 11)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("IM should be near-flat, little/big = %v", ratio)
	}
	lock, _ := ByName("LockScr.")
	if lock.RateK(topo, 10) > 0.3 {
		t.Errorf("LockScr. big cores should be near idle: %v k/s", lock.RateK(topo, 10))
	}
}

func TestGenDeterminism(t *testing.T) {
	w, _ := ByName("Browser")
	opt := GenOptions{Core: 2, RateScale: 0.01}
	g1, err := w.Gen(opt)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := w.Gen(opt)
	for i := 0; i < 5000; i++ {
		e1, ok1 := g1.Next()
		e2, ok2 := g2.Next()
		if ok1 != ok2 || e1 != e2 {
			t.Fatalf("divergence at %d: %+v/%v vs %+v/%v", i, e1, ok1, e2, ok2)
		}
		if !ok1 {
			break
		}
	}
}

func TestGenValidation(t *testing.T) {
	w, _ := ByName("IM")
	if _, err := w.Gen(GenOptions{Core: 99}); err == nil {
		t.Error("bad core: expected error")
	}
	if _, err := w.Gen(GenOptions{Core: 0, Level: 9}); err == nil {
		t.Error("bad level: expected error")
	}
	if _, err := w.Gen(GenOptions{Core: 0, RateScale: -1}); err == nil {
		t.Error("negative scale: expected error")
	}
}

func TestGenEventProperties(t *testing.T) {
	w, _ := ByName("eShop-1")
	g, err := w.Gen(GenOptions{Core: 1, RateScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	n := 0
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		n++
		if e.TS <= last {
			t.Fatalf("timestamps not strictly increasing: %d after %d", e.TS, last)
		}
		last = e.TS
		if e.TS >= DefaultWindowNs {
			t.Fatalf("event beyond window: %d", e.TS)
		}
		if e.Cat >= NumCategories {
			t.Fatalf("bad category %d", e.Cat)
		}
		if e.Level < Level1 || e.Level > Level3 {
			t.Fatalf("bad level %d", e.Level)
		}
		if e.PayloadLen < 8 || e.PayloadLen%8 != 0 {
			t.Fatalf("bad payload %d", e.PayloadLen)
		}
		if e.TID>>16 != 1 {
			t.Fatalf("TID %d not namespaced to core 1", e.TID)
		}
	}
	if n == 0 {
		t.Fatal("no events generated")
	}
	// Rate check: ~2% of 7k/s-ish over 30 s.
	expected := w.RateK(sim.Phone12(), 1) * 1000 * 0.02 * 30
	if math.Abs(float64(n)-expected) > expected*0.25 {
		t.Errorf("generated %d events, expected ~%.0f", n, expected)
	}
}

// TestLevelFiltering: a level-1 generator only emits level-1 categories
// and at a much lower rate (Fig. 3).
func TestLevelFiltering(t *testing.T) {
	w, _ := ByName("Game-1")
	count := func(level uint8) (n int) {
		g, err := w.Gen(GenOptions{Core: 0, Level: level, RateScale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		for {
			e, ok := g.Next()
			if !ok {
				return
			}
			if e.Level > level {
				t.Fatalf("level-%d stream contains level-%d event", level, e.Level)
			}
			n++
		}
	}
	n1, n2, n3 := count(Level1), count(Level2), count(Level3)
	if !(n1 < n2 && n2 < n3) {
		t.Fatalf("level volumes not increasing: %d %d %d", n1, n2, n3)
	}
}

// TestFig6Oversubscription: distinct thread counts approximate the
// workload's calibration across all 20 workloads.
func TestFig6Oversubscription(t *testing.T) {
	for _, w := range All() {
		got, err := w.DistinctTIDs(GenOptions{Core: 0})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := w.ThreadsTotal*6/10, w.ThreadsTotal*14/10
		if got < lo || got > hi {
			t.Errorf("%s: %d distinct threads, want ~%d", w.Name, got, w.ThreadsTotal)
		}
	}
}

// TestBytesPerSecMonotonicInLevel holds for every workload (property).
func TestBytesPerSecMonotonicInLevel(t *testing.T) {
	topo := sim.Phone12()
	f := func(sel uint8) bool {
		w := All()[int(sel)%20]
		b1 := w.BytesPerSec(topo, Level1)
		b2 := w.BytesPerSec(topo, Level2)
		b3 := w.BytesPerSec(topo, Level3)
		return b1 > 0 && b1 < b2 && b2 < b3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFig3LevelVolumes: a busy workload's level-3 30-second volume lands
// in the hundreds-of-MB range the paper plots (450 MB buffer, Fig. 3).
func TestFig3LevelVolumes(t *testing.T) {
	topo := sim.Phone12()
	w, _ := ByName("Video-3")
	mb30 := w.BytesPerSec(topo, Level3) * 30 / 1e6
	if mb30 < 150 || mb30 > 900 {
		t.Errorf("level-3 30s volume = %.0f MB, want hundreds of MB", mb30)
	}
	mb30l1 := w.BytesPerSec(topo, Level1) * 30 / 1e6
	if mb30l1 > mb30/5 {
		t.Errorf("level-1 volume %.0f MB should be a small fraction of level-3 %.0f MB", mb30l1, mb30)
	}
}

func TestMeanEntryBytes(t *testing.T) {
	m := MeanEntryBytes(Level3)
	if m < 40 || m > 200 {
		t.Errorf("mean entry bytes = %v, implausible", m)
	}
	if MeanEntryBytes(0) != 0 {
		t.Error("level 0 should have zero mean")
	}
}
