package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Kind classifies a Sample.
type Kind uint8

// Sample kinds, matching the Prometheus metric types they render as.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Sample is one collected metric value. Counter and gauge samples carry
// Value; histogram samples carry Hist.
type Sample struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64
	Hist  HistSnap
}

// Emitter accumulates the samples of one collection pass. Collectors
// call its typed methods; names must be valid Prometheus metric names
// and stable across passes (merging is by name).
type Emitter struct {
	samples []Sample
}

// Counter emits a monotonic counter sample.
func (e *Emitter) Counter(name, help string, v uint64) {
	e.samples = append(e.samples, Sample{Name: name, Help: help, Kind: KindCounter, Value: float64(v)})
}

// Gauge emits an instantaneous value sample.
func (e *Emitter) Gauge(name, help string, v float64) {
	e.samples = append(e.samples, Sample{Name: name, Help: help, Kind: KindGauge, Value: v})
}

// Histogram emits a histogram sample.
func (e *Emitter) Histogram(name, help string, h HistSnap) {
	e.samples = append(e.samples, Sample{Name: name, Help: help, Kind: KindHistogram, Hist: h})
}

// CollectFunc is a live metric source: it emits the instance's current
// samples. It must not call back into the registry it is registered with
// (the registry's lock is held during collection).
type CollectFunc func(e *Emitter)

// Registry aggregates metric sources. Multiple instances of one
// subsystem (every open Buffer, Supervisor, Store) emit the same series
// names; Snapshot merges them by summing, so the rendered view is the
// process-wide total. When an instance goes away it is folded: its final
// counter and histogram values move into a retired accumulator so
// process-lifetime totals never go backwards, while its gauges (capacity,
// queue depths) disappear with it.
type Registry struct {
	mu      sync.Mutex
	nextID  uint64
	sources map[uint64]CollectFunc
	// retired holds folded counter/histogram samples, merged by name.
	retired map[string]*Sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sources: make(map[uint64]CollectFunc),
		retired: make(map[string]*Sample),
	}
}

// defaultRegistry is the process-wide registry every subsystem registers
// into and /metrics renders.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Register adds a metric source and returns its id for Unregister/Fold.
func (r *Registry) Register(fn CollectFunc) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.sources[r.nextID] = fn
	return r.nextID
}

// Unregister removes a source without folding: its contribution simply
// vanishes from future snapshots. Use Fold for instances whose counters
// should persist as retired totals.
func (r *Registry) Unregister(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sources, id)
}

// Fold collects a source one final time, merges its counters and
// histograms into the retired accumulator (gauges are dropped — a dead
// instance has no instantaneous state), and removes it.
func (r *Registry) Fold(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn, ok := r.sources[id]
	if !ok {
		return
	}
	delete(r.sources, id)
	var e Emitter
	fn(&e)
	for i := range e.samples {
		s := &e.samples[i]
		if s.Kind == KindGauge {
			continue
		}
		if prev, ok := r.retired[s.Name]; ok {
			mergeSample(prev, s)
		} else {
			cp := *s
			r.retired[s.Name] = &cp
		}
	}
}

// mergeSample folds src into dst (same name). Counters and gauges sum;
// histograms sum per bucket when the bounds match (mismatched layouts
// keep dst, a programming error surfaced by the unit tests, not worth a
// render-path failure).
func mergeSample(dst, src *Sample) {
	switch dst.Kind {
	case KindHistogram:
		if len(dst.Hist.Counts) != len(src.Hist.Counts) {
			return
		}
		// dst may alias a collector's snapshot; copy before mutating.
		counts := make([]uint64, len(dst.Hist.Counts))
		copy(counts, dst.Hist.Counts)
		for i, c := range src.Hist.Counts {
			counts[i] += c
		}
		dst.Hist.Counts = counts
		dst.Hist.Sum += src.Hist.Sum
		dst.Hist.Count += src.Hist.Count
	default:
		dst.Value += src.Value
	}
}

// Snapshot is a consistent, name-sorted view of every series the
// registry knows: live sources and retired totals, merged by name.
type Snapshot struct {
	Samples []Sample
}

// Get returns the sample with the given name.
func (s Snapshot) Get(name string) (Sample, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Value returns the counter/gauge value of the named series (0 if
// absent), the convenient form for tests and dashboards.
func (s Snapshot) Value(name string) float64 {
	sm, _ := s.Get(name)
	return sm.Value
}

// Snapshot collects every live source, merges with the retired totals,
// and returns the combined view sorted by name. The registry lock is
// held across the whole pass, so one Snapshot never mixes a source's
// pre-Fold and post-Fold contributions.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := make(map[string]*Sample, len(r.retired))
	for name, s := range r.retired {
		cp := *s
		merged[name] = &cp
	}
	var e Emitter
	for _, fn := range r.sources {
		fn(&e)
	}
	for i := range e.samples {
		s := &e.samples[i]
		if prev, ok := merged[s.Name]; ok {
			mergeSample(prev, s)
		} else {
			cp := *s
			merged[s.Name] = &cp
		}
	}
	out := Snapshot{Samples: make([]Sample, 0, len(merged))}
	for _, s := range merged {
		out.Samples = append(out.Samples, *s)
	}
	sort.Slice(out.Samples, func(i, j int) bool { return out.Samples[i].Name < out.Samples[j].Name })
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for i := range s.Samples {
		sm := &s.Samples[i]
		if sm.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", sm.Name, sm.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", sm.Name, sm.Kind); err != nil {
			return err
		}
		switch sm.Kind {
		case KindHistogram:
			if err := writeHist(w, sm.Name, sm.Hist); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", sm.Name, formatFloat(sm.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, h HistSnap) error {
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry's current snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// Handler returns the /metrics HTTP handler over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are out; all we can do is drop the connection.
			return
		}
	})
}
