package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardRouting(t *testing.T) {
	c := NewCounter(5) // rounds up to 8
	if got := len(c.shards); got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
	c.Inc()
	c.Add(4)
	c.IncAt(3)
	c.AddAt(11, 10) // 11 & 7 == 3
	if got := c.Load(); got != 16 {
		t.Fatalf("Load = %d, want 16", got)
	}
	if got := c.shards[3].v.Load(); got != 11 {
		t.Fatalf("shard 3 = %d, want 11 (IncAt + wrapped AddAt)", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("Load after Reset = %d, want 0", got)
	}
}

// TestCounterConcurrent hammers one counter from GOMAXPROCS goroutines
// through both the sharded and the unsharded entry points; run under
// -race this is also the data-race check the metrics contract requires.
func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(runtime.GOMAXPROCS(0))
	g := NewCounter(1)
	const perG = 10000
	n := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.IncAt(shard)
				c.AddAt(shard, 2)
				g.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got, want := c.Load(), uint64(3*perG*n); got != want {
		t.Fatalf("sharded Load = %d, want %d", got, want)
	}
	if got, want := g.Load(), uint64(perG*n); got != want {
		t.Fatalf("unsharded Load = %d, want %d", got, want)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{0, 10, 11, 100, 999, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // le=10: {0,10}; le=100: {11,100}; le=1000: {999,1000}; +Inf: {1001, 2^40}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	if wantSum := uint64(0 + 10 + 11 + 100 + 999 + 1000 + 1001 + 1<<40); s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	for _, bounds := range [][]uint64{nil, {}, {5, 5}, {10, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramSnapshotConsistency takes snapshots while observers are
// mid-flight and checks the documented invariants: Count always equals
// the sum of the buckets, Count never decreases across snapshots, and
// the quiescent final state is exact.
func TestHistogramSnapshotConsistency(t *testing.T) {
	h := NewHistogram(SizeBounds)
	const perG = 5000
	n := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(seed + uint64(j)%4096)
			}
		}(uint64(i))
	}
	go func() { wg.Wait(); close(stop) }()

	var lastCount uint64
	for snaps := 0; ; snaps++ {
		s := h.Snapshot()
		var sum uint64
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d: Count %d != bucket sum %d", snaps, s.Count, sum)
		}
		if s.Count < lastCount {
			t.Fatalf("snapshot %d: Count went backwards %d -> %d", snaps, lastCount, s.Count)
		}
		lastCount = s.Count
		select {
		case <-stop:
			final := h.Snapshot()
			if want := uint64(perG * n); final.Count != want {
				t.Fatalf("final Count = %d, want %d", final.Count, want)
			}
			return
		default:
		}
	}
}

func TestRegistryMergeAcrossSources(t *testing.T) {
	r := NewRegistry()
	mk := func(writes uint64, depth float64) CollectFunc {
		return func(e *Emitter) {
			e.Counter("x_writes_total", "writes", writes)
			e.Gauge("x_depth", "depth", depth)
		}
	}
	r.Register(mk(10, 1))
	r.Register(mk(32, 2))
	s := r.Snapshot()
	if got := s.Value("x_writes_total"); got != 42 {
		t.Fatalf("merged counter = %v, want 42", got)
	}
	if got := s.Value("x_depth"); got != 3 {
		t.Fatalf("merged gauge = %v, want 3", got)
	}
}

func TestRegistryFoldRetiresCountersDropsGauges(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram([]uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	id := r.Register(func(e *Emitter) {
		e.Counter("y_total", "", 7)
		e.Gauge("y_depth", "", 3)
		e.Histogram("y_ns", "", h.Snapshot())
	})
	r.Fold(id)
	s := r.Snapshot()
	if got := s.Value("y_total"); got != 7 {
		t.Fatalf("retired counter = %v, want 7", got)
	}
	if _, ok := s.Get("y_depth"); ok {
		t.Fatal("gauge survived Fold")
	}
	hs, ok := s.Get("y_ns")
	if !ok || hs.Hist.Count != 2 || hs.Hist.Sum != 55 {
		t.Fatalf("retired histogram = %+v, ok=%v", hs.Hist, ok)
	}

	// A second live instance merges on top of the retired totals.
	r.Register(func(e *Emitter) {
		e.Counter("y_total", "", 5)
		e.Histogram("y_ns", "", h.Snapshot())
	})
	s = r.Snapshot()
	if got := s.Value("y_total"); got != 12 {
		t.Fatalf("retired+live counter = %v, want 12", got)
	}
	hs, _ = s.Get("y_ns")
	if hs.Hist.Count != 4 {
		t.Fatalf("retired+live histogram count = %d, want 4", hs.Hist.Count)
	}
	// Folding must not corrupt the retired accumulator across snapshots.
	if got := r.Snapshot().Value("y_total"); got != 12 {
		t.Fatalf("repeat snapshot counter = %v, want 12", got)
	}
}

func TestUnregisterDropsContribution(t *testing.T) {
	r := NewRegistry()
	id := r.Register(func(e *Emitter) { e.Counter("z_total", "", 9) })
	r.Unregister(id)
	if _, ok := r.Snapshot().Get("z_total"); ok {
		t.Fatal("unregistered source still visible")
	}
}

// TestPrometheusRendering renders a snapshot and validates it with a
// strict line-level parser: every registered series appears, every
// sample line is preceded by its TYPE, histogram buckets are cumulative
// and closed by +Inf/_sum/_count.
func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram([]uint64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	r.Register(func(e *Emitter) {
		e.Counter("demo_writes_total", "number of writes", 42)
		e.Gauge("demo_capacity_bytes", "live capacity", 4096)
		e.Histogram("demo_append_ns", "append latency", h.Snapshot())
	})

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	series := ParsePrometheusText(t, bufio.NewScanner(resp.Body))
	for name, want := range map[string]float64{
		"demo_writes_total":    42,
		"demo_capacity_bytes":  4096,
		"demo_append_ns_count": 3,
		"demo_append_ns_sum":   5550,
	} {
		got, ok := series[name]
		if !ok {
			t.Fatalf("series %s missing (got %v)", name, series)
		}
		if got != want {
			t.Fatalf("series %s = %v, want %v", name, got, want)
		}
	}
	if got := series[`demo_append_ns_bucket{le="+Inf"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", got)
	}
	if got := series[`demo_append_ns_bucket{le="1000"}`]; got != 2 {
		t.Fatalf("le=1000 cumulative bucket = %v, want 2", got)
	}

	// Every sample in the snapshot must be rendered.
	for _, s := range r.Snapshot().Samples {
		probe := s.Name
		if s.Kind == KindHistogram {
			probe = s.Name + "_count"
		}
		if _, ok := series[probe]; !ok {
			t.Fatalf("registered series %s not rendered", s.Name)
		}
	}
}

// ParsePrometheusText is the shared test helper validating Prometheus
// text exposition: it fails the test on any malformed line and returns
// the parsed samples keyed by "name" or "name{labels}".
func ParsePrometheusText(t *testing.T, sc *bufio.Scanner) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	typed := make(map[string]string)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		root := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(base, suffix); ok {
				if _, isHist := typed[cut]; isHist {
					root = cut
					break
				}
			}
		}
		if _, ok := typed[root]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		series[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}
