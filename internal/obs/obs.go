// Package obs is BTrace's zero-dependency self-observability core: the
// tracer whose value proposition is negligible overhead must be able to
// measure — and expose — its own cost in production. obs provides the
// three metric primitives the hot subsystems instrument themselves with
// (sharded padded counters, gauges, and fixed-bucket histograms with a
// lock-free Observe), and a registry that merges every live instance into
// one consistent Snapshot rendered as Prometheus text.
//
// The design constraint, enforced by BenchmarkObsOverhead, is that
// instrumentation on the record/read fast paths stays allocation-free and
// within noise of the uninstrumented baseline. That rules out any shared
// mutex and any shared cache line on the write path: Counter shards its
// backing words (callers route by core id via AddAt), and every word is
// padded to its own cache line so two cores incrementing "writes" never
// bounce a line between them.
package obs

import (
	"sync/atomic"
)

// pad64 is one atomic word padded to a full cache line, so adjacent
// counters (or adjacent shards of one counter) never share a line.
type pad64 struct {
	v atomic.Uint64
	_ [7]uint64
}

// Counter is a monotonically increasing counter, sharded across padded
// cache lines. Hot paths that know a stable shard hint (BTrace producers
// know their core id) use AddAt/IncAt and never contend; slow paths use
// Add/Inc, which land on shard 0. The zero value is not usable; construct
// with NewCounter.
type Counter struct {
	shards []pad64
	mask   uint32
}

// NewCounter returns a counter with at least the given number of shards
// (rounded up to a power of two, minimum 1).
func NewCounter(shards int) *Counter {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Counter{shards: make([]pad64, n), mask: uint32(n - 1)}
}

// Inc adds 1 on shard 0 (slow-path form).
func (c *Counter) Inc() { c.shards[0].v.Add(1) }

// Add adds delta on shard 0 (slow-path form).
func (c *Counter) Add(delta uint64) { c.shards[0].v.Add(delta) }

// IncAt adds 1 on the shard selected by hint (hot-path form; hint is
// reduced modulo the shard count).
func (c *Counter) IncAt(hint int) { c.shards[uint32(hint)&c.mask].v.Add(1) }

// AddAt adds delta on the shard selected by hint.
func (c *Counter) AddAt(hint int, delta uint64) { c.shards[uint32(hint)&c.mask].v.Add(delta) }

// Load returns the counter's current value: the sum over all shards. It
// is exact at quiescence and never under-counts a completed Add.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Reset zeroes every shard. Not atomic with respect to concurrent Adds;
// intended for Buffer.Reset-style quiescent reuse.
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// Gauge is an instantaneous value (capacity, queue depth, 0/1 health
// bits). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.v.Store(1)
	} else {
		g.v.Store(0)
	}
}

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of uint64 samples (latencies in
// nanoseconds, sizes in bytes or events). Observe is lock-free: one
// binary search over the immutable bounds plus two atomic adds, no
// allocation. Bucket counts are padded so concurrent observers of nearby
// values do not share cache lines.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending.
	// counts has len(bounds)+1 entries; the last is the overflow (+Inf)
	// bucket.
	bounds []uint64
	counts []pad64
	sum    atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending inclusive
// upper bounds. The bounds slice is not copied and must not be mutated.
// It panics on empty or unsorted bounds — histogram layout is a
// programming decision, not runtime input.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]pad64, len(bounds)+1)}
}

// Observe records one sample. Lock-free and allocation-free.
func (h *Histogram) Observe(v uint64) {
	// Binary search for the first bound >= v; misses land in overflow.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].v.Add(1)
	h.sum.Add(v)
}

// HistSnap is a point-in-time view of a histogram. Count is derived from
// the bucket counts, so Count == the sum of Counts holds by construction
// in every snapshot, even one taken mid-Observe; Sum may trail or lead
// the buckets by in-flight observations and is exact at quiescence.
type HistSnap struct {
	// Bounds are the inclusive upper bounds; Counts has one extra final
	// entry for the overflow (+Inf) bucket.
	Bounds []uint64
	Counts []uint64
	Sum    uint64
	Count  uint64
}

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistSnap {
	s := HistSnap{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].v.Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// LatencyBounds is the shared latency bucket layout (nanoseconds): a
// 1-2.5-5 decade ladder from 1 µs to 10 s. Fixed buckets keep Observe
// search-cheap and make every latency histogram mergeable.
var LatencyBounds = []uint64{
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 1_000_000_000, 10_000_000_000,
}

// SizeBounds is the shared size bucket layout (bytes or events):
// powers of two from 1 to 64 Ki.
var SizeBounds = []uint64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10,
}
