// Package ftrace implements the per-core baseline tracer modeled on the
// Linux kernel's ftrace ring buffer (kernel/trace/ring_buffer.c).
//
// Each core owns a private ring of pages. A writer first disables
// preemption (in the kernel this guarantees no other thread can run on the
// core mid-write; here the Proc provides the same guarantee and a spinlock
// backstops direct library use), then appends the event to the core's
// current page, encoding the timestamp as a delta from the page's previous
// event the way ftrace does. When a page fills, the writer moves to the
// next page of the ring, overwriting the oldest page wholesale.
//
// The per-core design gives low, uncontended latency, but utilization is
// 1/C in the worst case and skewed per-core production speeds fragment the
// retained trace (§2.2 Observation 2, Fig. 5) — the weaknesses BTrace is
// built to fix.
package ftrace

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"btrace/internal/tracer"
)

// TracerName is the registry name of the ftrace baseline.
const TracerName = "ftrace"

const (
	defaultPageSize = 4096
	// maxTSDelta is the largest timestamp delta representable without an
	// extend record (27 bits, as in the ftrace ring buffer format).
	maxTSDelta = 1<<27 - 1
	// extendRecordSize models ftrace's RINGBUF_TYPE_TIME_EXTEND record.
	extendRecordSize = 8
)

// page is one ring page with its fill state.
type page struct {
	data []byte
	// filled is how many bytes of data hold valid records.
	filled int
	// events counts the event records in the page, so rotation can
	// account overwritten events without re-parsing (real ftrace keeps
	// the same per-page counter).
	events int
	// seq is the global fill sequence; higher seq pages are newer.
	seq uint64
	// firstTS is the absolute timestamp base for the page's deltas.
	firstTS uint64
}

// ring is one core's page ring. All fields are guarded by lock.
type ring struct {
	lock    atomic.Bool // spinlock (preemption is disabled while held)
	pages   []page
	cur     int
	seq     uint64
	lastTS  uint64
	extends uint64
	_       [4]uint64
}

func (r *ring) acquire() {
	for !r.lock.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
}

func (r *ring) release() { r.lock.Store(false) }

// Tracer is the per-core ftrace-like tracer.
type Tracer struct {
	pageSize int
	rings    []*ring

	writes       atomic.Uint64
	bytesWritten atomic.Uint64
	overwritten  atomic.Uint64
	dummyBytes   atomic.Uint64
}

// New creates a tracer with the total budget split evenly across cores,
// each core's share divided into pages of pageSize (0 selects 4 KiB).
func New(totalBytes, cores, pageSize int) (*Tracer, error) {
	if pageSize == 0 {
		pageSize = defaultPageSize
	}
	if cores <= 0 {
		return nil, fmt.Errorf("ftrace: cores must be positive, got %d", cores)
	}
	if pageSize < 64 || pageSize%tracer.Align != 0 {
		return nil, fmt.Errorf("ftrace: invalid page size %d", pageSize)
	}
	perCore := totalBytes / cores
	nPages := perCore / pageSize
	if nPages < 2 {
		return nil, fmt.Errorf("ftrace: budget %d B gives %d pages/core of %d B, need >= 2",
			totalBytes, nPages, pageSize)
	}
	t := &Tracer{pageSize: pageSize, rings: make([]*ring, cores)}
	for c := range t.rings {
		r := &ring{pages: make([]page, nPages)}
		for i := range r.pages {
			r.pages[i].data = make([]byte, pageSize)
		}
		t.rings[c] = r
	}
	return t, nil
}

// Name implements tracer.Tracer.
func (t *Tracer) Name() string { return TracerName }

// TotalBytes implements tracer.Tracer.
func (t *Tracer) TotalBytes() int {
	return len(t.rings) * len(t.rings[0].pages) * t.pageSize
}

// Stats implements tracer.Tracer.
func (t *Tracer) Stats() tracer.Stats {
	return tracer.Stats{
		Writes:       t.writes.Load(),
		BytesWritten: t.bytesWritten.Load(),
		Overwritten:  t.overwritten.Load(),
		DummyBytes:   t.dummyBytes.Load(),
	}
}

// Reset implements tracer.Tracer.
func (t *Tracer) Reset() {
	for _, r := range t.rings {
		r.acquire()
		for i := range r.pages {
			r.pages[i].filled = 0
			r.pages[i].events = 0
			r.pages[i].seq = 0
		}
		r.cur, r.seq, r.lastTS, r.extends = 0, 0, 0, 0
		r.release()
	}
	t.writes.Store(0)
	t.bytesWritten.Store(0)
	t.overwritten.Store(0)
	t.dummyBytes.Store(0)
}

// Write implements tracer.Tracer: preemption-disabled append to the
// calling core's ring.
func (t *Tracer) Write(p tracer.Proc, e *tracer.Entry) error {
	size := e.WireSize()
	if size > t.pageSize {
		return fmt.Errorf("%w: entry %d B, page %d B", tracer.ErrTooLarge, size, t.pageSize)
	}
	restore := p.DisablePreemption()
	defer restore()
	r := t.rings[p.Core()]
	r.acquire()
	defer r.release()

	pg := &r.pages[r.cur]
	// Timestamp delta handling, as the ftrace format does: deltas beyond
	// 27 bits require an extend record before the event.
	delta := e.TS - r.lastTS
	need := size
	if delta > maxTSDelta {
		need += extendRecordSize
	}
	if pg.filled+need > t.pageSize {
		t.rotate(r)
		pg = &r.pages[r.cur]
		// A fresh page stores an absolute base, no extend needed.
		pg.firstTS = e.TS
		delta = 0
		need = size
	}
	if delta > maxTSDelta {
		// Model the extend record with a dummy.
		tracer.EncodeDummy(pg.data[pg.filled:pg.filled+extendRecordSize], extendRecordSize)
		pg.filled += extendRecordSize
		t.dummyBytes.Add(extendRecordSize)
		r.extends++
	}
	if _, err := tracer.EncodeEvent(pg.data[pg.filled:pg.filled+size], e); err != nil {
		return err
	}
	pg.filled += size
	pg.events++
	r.lastTS = e.TS
	t.writes.Add(1)
	t.bytesWritten.Add(uint64(size))
	return nil
}

// rotate advances the ring to the next page, discarding its old content
// (overwrite-oldest, page granularity).
func (t *Tracer) rotate(r *ring) {
	r.seq++
	r.cur = (r.cur + 1) % len(r.pages)
	pg := &r.pages[r.cur]
	if pg.events > 0 {
		t.overwritten.Add(uint64(pg.events))
	}
	pg.filled = 0
	pg.events = 0
	pg.seq = r.seq
}

// ReadAll implements tracer.Tracer: a quiescent snapshot merging all
// per-core rings, ordered by logic stamp.
func (t *Tracer) ReadAll() ([]tracer.Entry, error) {
	var out []tracer.Entry
	for _, r := range t.rings {
		r.acquire()
		idxs := make([]int, 0, len(r.pages))
		for i := range r.pages {
			if r.pages[i].filled > 0 {
				idxs = append(idxs, i)
			}
		}
		sort.Slice(idxs, func(a, b int) bool { return r.pages[idxs[a]].seq < r.pages[idxs[b]].seq })
		for _, i := range idxs {
			pg := &r.pages[i]
			recs, _ := tracer.DecodeAll(pg.data[:pg.filled])
			for _, rec := range recs {
				if rec.Kind == tracer.KindEvent {
					ev := rec.Event
					if ev.Payload != nil {
						ev.Payload = append([]byte(nil), ev.Payload...)
					}
					out = append(out, ev)
				}
			}
		}
		r.release()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, nil
}

func init() {
	tracer.Register(TracerName, func(totalBytes, cores, threads int) (tracer.Tracer, error) {
		return New(totalBytes, cores, 0)
	})
}

// NewCursor implements tracer.CursorSource. ftrace's read path is a
// quiescent snapshot, so the generic stamp-resume adapter applies.
func (t *Tracer) NewCursor() tracer.Cursor { return tracer.NewSnapshotCursor(t.ReadAll) }

var _ tracer.CursorSource = (*Tracer)(nil)
