package ftrace

import (
	"testing"

	"btrace/internal/tracer"
	"btrace/internal/tracer/tracertest"
)

func TestConformance(t *testing.T) {
	tracertest.Run(t, tracertest.Config{
		New: func(total, cores, threads int) (tracer.Tracer, error) {
			return New(total, cores, 512)
		},
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1<<20, 0, 0); err == nil {
		t.Error("zero cores: expected error")
	}
	if _, err := New(1<<20, 4, 100); err == nil {
		t.Error("unaligned page: expected error")
	}
	if _, err := New(4096, 4, 4096); err == nil {
		t.Error("one page per core: expected error")
	}
}

// TestPerCoreIsolation: writes on one core never consume another core's
// buffer share — the 1/C worst-case utilization of Table 1.
func TestPerCoreIsolation(t *testing.T) {
	tr, err := New(8<<10, 4, 512) // 2 KiB (4 pages) per core
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 writes a flood; cores 1..3 write one early entry each.
	for c := 1; c < 4; c++ {
		p := &tracer.FixedProc{CoreID: c, TID: c}
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(c), TS: 1, Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	p0 := &tracer.FixedProc{CoreID: 0, TID: 0}
	for i := 100; i < 1100; i++ {
		if err := tr.Write(p0, &tracer.Entry{Stamp: uint64(i), TS: uint64(i), Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	es, _ := tr.ReadAll()
	// The other cores' early entries must still be there: core 0's flood
	// only overwrote core 0's pages. (This is precisely the Fig. 5
	// fragmentation problem: old idle-core data survives while the busy
	// core overwrites its own recent data.)
	found := map[uint64]bool{}
	for _, e := range es {
		found[e.Stamp] = true
	}
	for c := uint64(1); c < 4; c++ {
		if !found[c] {
			t.Errorf("idle core %d's entry was overwritten", c)
		}
	}
	if !found[1099] {
		t.Error("newest entry missing")
	}
	// Core 0 must have lost its oldest entries (1/C share exhausted).
	if found[100] {
		t.Error("flooding core retained its oldest entry; per-core budget not enforced")
	}
}

// TestTimestampExtendRecords: deltas beyond 27 bits produce extend
// records, visible as dummy bytes.
func TestTimestampExtendRecords(t *testing.T) {
	tr, err := New(8<<10, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p := &tracer.FixedProc{}
	if err := tr.Write(p, &tracer.Entry{Stamp: 1, TS: 0}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(p, &tracer.Entry{Stamp: 2, TS: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().DummyBytes < extendRecordSize {
		t.Errorf("no extend record accounted: %+v", tr.Stats())
	}
	es, _ := tr.ReadAll()
	if len(es) != 2 {
		t.Fatalf("retained %d entries, want 2", len(es))
	}
}

// TestPreemptionDisabledDuringWrite: the writer holds a preemption-disable
// scope for the whole write, like kernel ftrace.
func TestPreemptionDisabledDuringWrite(t *testing.T) {
	tr, err := New(8<<10, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := &countingProc{}
	if err := tr.Write(p, &tracer.Entry{Stamp: 1}); err != nil {
		t.Fatal(err)
	}
	if p.disables != 1 || p.depth != 0 {
		t.Errorf("disables=%d depth=%d, want 1/0", p.disables, p.depth)
	}
	if p.preemptsWhileDisabled != 0 {
		t.Errorf("%d preemption points offered while disabled", p.preemptsWhileDisabled)
	}
}

type countingProc struct {
	depth                 int
	disables              int
	preemptsWhileDisabled int
}

func (p *countingProc) Core() int   { return 0 }
func (p *countingProc) Thread() int { return 0 }
func (p *countingProc) MaybePreempt(tracer.PreemptPoint) {
	if p.depth > 0 {
		p.preemptsWhileDisabled++
	}
}
func (p *countingProc) DisablePreemption() func() {
	p.depth++
	p.disables++
	return func() { p.depth-- }
}

func TestOverwrittenStat(t *testing.T) {
	tr, err := New(2<<10, 1, 512) // 4 pages of 512 B
	if err != nil {
		t.Fatal(err)
	}
	p := &tracer.FixedProc{}
	for i := 1; i <= 200; i++ {
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i), TS: uint64(i), Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Overwritten == 0 {
		t.Error("expected overwritten entries after wrapping")
	}
}

func TestRegistered(t *testing.T) {
	tr, err := tracer.New(TracerName, 1<<20, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "ftrace" {
		t.Errorf("Name = %q", tr.Name())
	}
}
