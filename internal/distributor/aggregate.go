package distributor

import (
	"btrace/internal/btql"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// Aggregate executes the aggregate specs over the merged,
// replica-deduplicated stream matching q. Aggregation does not push
// down per shard: with replication every event lives on RF shards, so
// folding per-shard partial aggregates together would observe it RF
// times. Running the aggregators behind the merge cursor's dedup keeps
// each stamp counted exactly once, at the cost of streaming the
// matching events through the distributor — the single-node columnar
// fast path still applies inside each shard's cursor scan. Query.Limit
// is ignored: an aggregate is defined over every match. missed reports
// events retention deleted under the pass, as the cursors do.
func (d *Distributor) Aggregate(q store.Query, specs []btql.AggSpec) (results []btql.Result, missed uint64, err error) {
	q.Limit = 0
	cur, err := d.Query(q)
	if err != nil {
		return nil, 0, err
	}
	defer cur.Close()
	aggs := make([]*btql.Aggregator, len(specs))
	for i := range specs {
		aggs[i] = specs[i].New()
	}
	batch := make([]tracer.Entry, mergeBatch)
	for {
		n, m, nerr := cur.Next(batch)
		missed += m
		if nerr != nil {
			return nil, missed, nerr
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			for _, a := range aggs {
				a.ObserveEntry(&batch[i])
			}
		}
	}
	results = make([]btql.Result, len(aggs))
	for i, a := range aggs {
		results[i] = a.Result()
	}
	return results, missed, nil
}
