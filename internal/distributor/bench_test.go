package distributor

import (
	"fmt"
	"testing"

	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

const benchBatch = 256

func benchEvents(start uint64) []tracer.Entry {
	es := make([]tracer.Entry, benchBatch)
	for i := range es {
		stamp := start + uint64(i)
		es[i] = tracer.Entry{
			Stamp:    stamp,
			TS:       stamp * 1000,
			TID:      uint32(10 + i%16),
			Category: uint8(stamp % 5),
			Level:    1,
			Payload:  []byte("bench payload 0123456789abcdef"),
		}
	}
	return es
}

func benchBytes() int64 {
	var n int64
	for _, e := range benchEvents(1) {
		n += int64(tracer.Align + len(e.Payload))
	}
	return n
}

// BenchmarkDistributorIngest measures ingest throughput through the
// RF=2 fan-out over 4 shards against direct single-shard ingest: the
// price of quorum replication per acked event.
func BenchmarkDistributorIngest(b *testing.B) {
	b.Run("rf2-4shards", func(b *testing.B) {
		locals := make([]Shard, 4)
		for i := range locals {
			st, err := store.OpenBackend(backend.NewObject(), store.Config{})
			if err != nil {
				b.Fatal(err)
			}
			sh, err := NewLocalShard(LocalConfig{Name: fmt.Sprintf("shard-%02d", i), Store: st})
			if err != nil {
				b.Fatal(err)
			}
			locals[i] = sh
		}
		d, err := New(locals, Config{Replication: 2, Gate: overload.Config{MinSampleRate: 1}})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()

		b.SetBytes(benchBytes())
		b.ResetTimer()
		var acked int
		for i := 0; i < b.N; i++ {
			res := d.Ingest("bench", benchEvents(uint64(i)*benchBatch+1))
			acked += res.Acked
		}
		b.StopTimer()
		if acked != b.N*benchBatch {
			b.Fatalf("acked %d of %d events", acked, b.N*benchBatch)
		}
		b.ReportMetric(float64(acked)/b.Elapsed().Seconds(), "events/s")
	})

	b.Run("direct-1shard", func(b *testing.B) {
		st, err := store.OpenBackend(backend.NewObject(), store.Config{})
		if err != nil {
			b.Fatal(err)
		}
		sh, err := NewLocalShard(LocalConfig{Name: "solo", Store: st})
		if err != nil {
			b.Fatal(err)
		}
		defer sh.Close()

		b.SetBytes(benchBytes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.Ingest(benchEvents(uint64(i)*benchBatch + 1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "events/s")
	})
}
