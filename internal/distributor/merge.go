package distributor

import (
	"sort"

	"btrace/internal/tracer"
)

// mergeBatch is the per-source read granularity of the merge cursor.
const mergeBatch = 512

// mergeSource wraps one shard cursor. Replicated delivery applies owner
// groups to a shard in arrival order, so the shard's durable stream is
// an interleaving of stamp-sorted runs rather than one globally sorted
// sequence (store cursors replay append order). The source therefore
// materializes and sorts its matching stream once, on first use; the
// k-way merge then runs over genuinely ordered inputs.
type mergeSource struct {
	cur    tracer.Cursor
	es     []tracer.Entry
	i      int
	loaded bool
	err    error
}

// load drains the cursor, clones the entries out of its arena, sorts
// by stamp and collapses same-shard duplicates. With a limit, only the
// smallest limit entries are retained after the collapse: every slot of
// a truncated prefix must hold a distinct stamp, or the merged stream
// could come up short of limit even though more distinct stamps exist
// past the cut. Deduped, the union of per-source first-L prefixes
// always covers the merged first-L entries.
func (s *mergeSource) load(missed *uint64, limit int) {
	s.loaded = true
	batch := make([]tracer.Entry, mergeBatch)
	for {
		n, m, err := s.cur.Next(batch)
		*missed += m
		if n > 0 {
			s.es = tracer.CloneEntries(s.es, batch[:n])
		}
		if err != nil {
			// Keep the readable prefix; the error surfaces once the
			// merged stream drains.
			s.err = err
			break
		}
		if n == 0 {
			break
		}
	}
	sort.SliceStable(s.es, func(i, j int) bool { return s.es[i].Stamp < s.es[j].Stamp })
	uniq := s.es[:0]
	for i := range s.es {
		if i > 0 && s.es[i].Stamp == s.es[i-1].Stamp {
			continue
		}
		uniq = append(uniq, s.es[i])
	}
	s.es = uniq
	if limit > 0 && len(s.es) > limit {
		s.es = s.es[:limit]
	}
}

// head returns the source's current entry, or nil when drained.
func (s *mergeSource) head(missed *uint64, limit int) *tracer.Entry {
	if !s.loaded {
		s.load(missed, limit)
	}
	if s.i >= len(s.es) {
		return nil
	}
	return &s.es[s.i]
}

// MergeCursor k-way-merges shard cursors into one stamp-ordered stream,
// deduplicating equal stamps: with replication every event exists on RF
// shards, so duplicates are the normal case, and the globally-unique-
// stamp invariant (enforced at collection by the Verifier) makes the
// stamp the identity to collapse on. Sorting per source also makes
// same-shard duplicates (a spilled dump retried cross-replica, then
// flushed on graceful close) adjacent, so they collapse too.
//
// Each source holds its shard's matching stream in memory; callers
// bound that with Query.Limit (the serve endpoints cap query sizes).
// Entries returned by Next stay valid until Close — stricter than the
// tracer.Cursor contract requires.
type MergeCursor struct {
	srcs    []*mergeSource
	limit   int // 0 = unlimited
	emitted int

	last    uint64 // last emitted stamp (dedup key)
	started bool

	missed uint64
	closed bool
}

// NewMergeCursor merges the given cursors. limit bounds the total
// entries emitted (0 = unlimited). The merge takes ownership of the
// cursors and closes them with Close.
func NewMergeCursor(curs []tracer.Cursor, limit int) *MergeCursor {
	m := &MergeCursor{limit: limit}
	for _, c := range curs {
		m.srcs = append(m.srcs, &mergeSource{cur: c})
	}
	return m
}

// Next fills batch with the next merged entries.
func (m *MergeCursor) Next(batch []tracer.Entry) (int, uint64, error) {
	if m.closed || len(batch) == 0 {
		return 0, m.takeMissed(), nil
	}
	out := 0
	for out < len(batch) {
		if m.limit > 0 && m.emitted >= m.limit {
			break
		}
		src := m.minSource()
		if src == nil {
			break
		}
		e := src.es[src.i]
		src.i++
		if m.started && e.Stamp == m.last {
			continue // replica duplicate
		}
		m.started, m.last = true, e.Stamp
		batch[out] = e
		out++
		m.emitted++
	}
	if out == 0 {
		for _, s := range m.srcs {
			if s.err != nil {
				return 0, m.takeMissed(), s.err
			}
		}
	}
	return out, m.takeMissed(), nil
}

// minSource returns the source whose head has the smallest stamp. A
// linear scan: the fan-in is the shard count, small by construction.
func (m *MergeCursor) minSource() *mergeSource {
	var best *mergeSource
	var bestStamp uint64
	for _, s := range m.srcs {
		h := s.head(&m.missed, m.limit)
		if h == nil {
			continue
		}
		if best == nil || h.Stamp < bestStamp {
			best, bestStamp = s, h.Stamp
		}
	}
	return best
}

func (m *MergeCursor) takeMissed() uint64 {
	v := m.missed
	m.missed = 0
	return v
}

// Close closes every source cursor and releases the buffered streams.
func (m *MergeCursor) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	var first error
	for _, s := range m.srcs {
		if err := s.cur.Close(); err != nil && first == nil {
			first = err
		}
		s.es = nil
	}
	return first
}
