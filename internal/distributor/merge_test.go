package distributor

import (
	"errors"
	"fmt"
	"testing"

	"btrace/internal/tracer"
)

// sliceCursor replays a fixed entry slice in mergeBatch-sized chunks.
type sliceCursor struct {
	es     []tracer.Entry
	i      int
	missed uint64
	err    error
	closed bool
}

func (c *sliceCursor) Next(batch []tracer.Entry) (int, uint64, error) {
	if c.closed {
		return 0, 0, tracer.ErrClosed
	}
	m := c.missed
	c.missed = 0
	n := copy(batch, c.es[c.i:])
	c.i += n
	if n == 0 && c.err != nil {
		return 0, m, c.err
	}
	return n, m, nil
}

func (c *sliceCursor) Close() error {
	c.closed = true
	return nil
}

func mkEntries(stamps ...uint64) []tracer.Entry {
	es := make([]tracer.Entry, len(stamps))
	for i, s := range stamps {
		es[i] = tracer.Entry{Stamp: s, TS: s, Level: 1, Payload: []byte(fmt.Sprintf("p%d", s))}
	}
	return es
}

func drainMerge(t *testing.T, m *MergeCursor) []tracer.Entry {
	t.Helper()
	var out []tracer.Entry
	batch := make([]tracer.Entry, 7) // deliberately small: force refills
	for {
		n, _, err := m.Next(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = tracer.CloneEntries(out, batch[:n])
	}
}

func TestMergeDeduplicatesReplicas(t *testing.T) {
	// Two replicas of the same stream, each fully ordered.
	a := &sliceCursor{es: mkEntries(1, 2, 3, 4, 5)}
	b := &sliceCursor{es: mkEntries(1, 2, 3, 4, 5)}
	m := NewMergeCursor([]tracer.Cursor{a, b}, 0)
	defer m.Close()
	got := drainMerge(t, m)
	if len(got) != 5 {
		t.Fatalf("merged %d entries, want 5", len(got))
	}
	for i, e := range got {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("stamp[%d] = %d, want %d", i, e.Stamp, i+1)
		}
		if string(e.Payload) != fmt.Sprintf("p%d", i+1) {
			t.Fatalf("payload[%d] = %q", i, e.Payload)
		}
	}
}

func TestMergeSortsUnorderedSources(t *testing.T) {
	// Cross-replica delivery interleaves owner groups, so a shard's
	// append-order stream is NOT stamp-sorted. The merge must still
	// produce one sorted, deduplicated stream.
	a := &sliceCursor{es: mkEntries(2, 6, 10, 1, 5, 9)} // two interleaved runs
	b := &sliceCursor{es: mkEntries(3, 7, 1, 5, 9, 2, 6, 10)}
	c := &sliceCursor{es: mkEntries(4, 8, 3, 7)}
	m := NewMergeCursor([]tracer.Cursor{a, b, c}, 0)
	defer m.Close()
	got := drainMerge(t, m)
	if len(got) != 10 {
		t.Fatalf("merged %d entries, want 10", len(got))
	}
	for i, e := range got {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("stamp[%d] = %d, want %d", i, e.Stamp, i+1)
		}
	}
}

func TestMergeCollapsesSameSourceDuplicates(t *testing.T) {
	// A spilled dump retried cross-replica then flushed on close leaves
	// the same stamp twice in one shard.
	a := &sliceCursor{es: mkEntries(1, 2, 2, 3, 1)}
	m := NewMergeCursor([]tracer.Cursor{a}, 0)
	defer m.Close()
	got := drainMerge(t, m)
	if len(got) != 3 {
		t.Fatalf("merged %d entries, want 3", len(got))
	}
}

func TestMergeHonorsLimit(t *testing.T) {
	a := &sliceCursor{es: mkEntries(1, 3, 5, 7, 9)}
	b := &sliceCursor{es: mkEntries(2, 4, 6, 8, 10)}
	m := NewMergeCursor([]tracer.Cursor{a, b}, 4)
	defer m.Close()
	got := drainMerge(t, m)
	if len(got) != 4 {
		t.Fatalf("merged %d entries, want 4 (limit)", len(got))
	}
	for i, e := range got {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("stamp[%d] = %d, want %d", i, e.Stamp, i+1)
		}
	}
}

func TestMergeLimitCountsDistinctStamps(t *testing.T) {
	// Regression: the per-source prefix used to be cut at limit before
	// duplicate collapse, so duplicates burned prefix slots and the
	// merged stream came up short of limit even though enough distinct
	// stamps existed past the cut.
	a := &sliceCursor{es: mkEntries(1, 1, 1, 2, 3)}
	b := &sliceCursor{es: mkEntries(1, 1, 1, 2, 3)}
	m := NewMergeCursor([]tracer.Cursor{a, b}, 3)
	defer m.Close()
	got := drainMerge(t, m)
	if len(got) != 3 {
		t.Fatalf("merged %d entries, want 3 (limit over distinct stamps)", len(got))
	}
	for i, e := range got {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("stamp[%d] = %d, want %d", i, e.Stamp, i+1)
		}
	}
}

func TestMergePropagatesMissed(t *testing.T) {
	a := &sliceCursor{es: mkEntries(1, 2), missed: 7}
	b := &sliceCursor{es: mkEntries(3)}
	m := NewMergeCursor([]tracer.Cursor{a, b}, 0)
	defer m.Close()
	batch := make([]tracer.Entry, 16)
	n, missed, err := m.Next(batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || missed != 7 {
		t.Fatalf("n=%d missed=%d, want 3 and 7", n, missed)
	}
}

func TestMergeSurfacesSourceError(t *testing.T) {
	boom := errors.New("boom")
	a := &sliceCursor{es: mkEntries(1), err: boom}
	m := NewMergeCursor([]tracer.Cursor{a}, 0)
	defer m.Close()
	batch := make([]tracer.Entry, 4)
	// The readable prefix is delivered; the error surfaces at the end.
	var last error
	for i := 0; i < 4; i++ {
		n, _, err := m.Next(batch)
		if err != nil {
			last = err
			break
		}
		if n == 0 {
			break
		}
	}
	if !errors.Is(last, boom) {
		t.Fatalf("merge swallowed source error, got %v", last)
	}
}

func TestMergeCloseClosesSources(t *testing.T) {
	a := &sliceCursor{es: mkEntries(1)}
	b := &sliceCursor{es: mkEntries(2)}
	m := NewMergeCursor([]tracer.Cursor{a, b}, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if !a.closed || !b.closed {
		t.Fatal("Close did not close the source cursors")
	}
	if n, _, _ := m.Next(make([]tracer.Entry, 4)); n != 0 {
		t.Fatal("closed merge still emits entries")
	}
}
