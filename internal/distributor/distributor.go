// Package distributor is the multi-tenant front end of the distributed
// ingest tier: it resolves each wire batch to a tenant and a set of
// stream keys, applies per-tenant quotas and the shared overload gate
// once — before replication, so every replica sees the identical
// post-gate stream — and fans the admitted events out to RF shard
// replicas chosen by the consistent-hash ring, with bounded per-shard
// queues, retry and hedging on replica failure, and quorum-ack
// semantics: a batch is acknowledged only when a majority of its
// replica set durably applied it, which is what makes killing any
// single shard lose nothing that was acknowledged.
//
// Placement is deliberately tenant-agnostic: the stream key is the TID
// alone, because durable events do not carry a tenant and drain must be
// able to re-derive every key from the store. Tenancy drives quotas and
// accounting (see internal/overload's tenant attribution), never
// placement.
package distributor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"btrace/internal/overload"
	"btrace/internal/ring"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// Config shapes a Distributor.
type Config struct {
	// Replication is the replica count per stream key (default 2,
	// clamped to the shard count by the ring).
	Replication int
	// VNodes is the ring's virtual nodes per shard (default
	// ring.DefaultVNodes).
	VNodes int
	// Retries is the delivery attempts per replica before the replica
	// counts as failed (default 2).
	Retries int
	// HedgeLimit is how many extra ring candidates beyond the owner set
	// a failed quorum may hedge to (default 1).
	HedgeLimit int
	// DefaultTenant names batches that arrive without a tenant (default
	// overload.DefaultTenant).
	DefaultTenant string
	// Overrides are the per-tenant quota overrides (-tenant-overrides).
	Overrides map[string]TenantLimit
	// Gate configures the shared overload gate applied after the tenant
	// quota and before replication.
	Gate overload.Config
	// RecordStamps makes Ingest return the acked/refused stamp sets —
	// the chaos tests' accounting hook; off in production paths.
	RecordStamps bool
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.HedgeLimit < 0 {
		c.HedgeLimit = 0
	} else if c.HedgeLimit == 0 {
		c.HedgeLimit = 1
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = overload.DefaultTenant
	}
	return c
}

// Result is one Ingest call's event-exact accounting:
// Seen == Throttled + GateDropped + Acked + Refused.
type Result struct {
	Tenant string
	// Seen is the batch size offered.
	Seen int
	// Throttled events were dropped by the tenant's quota override.
	Throttled int
	// GateDropped events were dropped by the shared overload gate
	// (sampled out, rate-limited, or shed).
	GateDropped int
	// Acked events reached quorum on their replica set: durably applied
	// on a majority, guaranteed to survive any single shard failure.
	Acked int
	// Refused events failed quorum even after hedging; the client
	// should retry the batch.
	Refused int
	// AckedStamps and RefusedStamps carry the per-event outcome when
	// Config.RecordStamps is set.
	AckedStamps   []uint64
	RefusedStamps []uint64
}

// Stats are the distributor's cumulative counters, safe to read
// concurrently.
type Stats struct {
	Batches       uint64
	EventsSeen    uint64
	Throttled     uint64
	GateDropped   uint64
	Acked         uint64
	Refused       uint64
	ReplicaErrors uint64 // failed deliveries (after per-replica retries)
	Retries       uint64 // per-replica delivery re-attempts
	Hedges        uint64 // deliveries diverted to a non-owner candidate
	DrainMoved    uint64 // events re-placed by DrainShard
}

// Distributor routes tenant traffic across the shard ring.
type Distributor struct {
	cfg Config

	// admit serializes the tenant limiter and the overload gate — both
	// single-goroutine by contract. Held only for in-memory filtering,
	// never across shard I/O.
	admit   sync.Mutex
	gate    *overload.Gate
	limiter *tenantLimiter

	// topo guards the ring pointer and the shard table. Lookups take the
	// read side; topology changes the write side.
	topo   sync.RWMutex
	ring   *ring.Ring
	shards map[string]Shard

	obs *distObs
}

// New builds a distributor over the given shards.
func New(shards []Shard, cfg Config) (*Distributor, error) {
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(shards))
	table := make(map[string]Shard, len(shards))
	for _, sh := range shards {
		if _, dup := table[sh.Name()]; dup {
			return nil, fmt.Errorf("distributor: duplicate shard %q", sh.Name())
		}
		table[sh.Name()] = sh
		names = append(names, sh.Name())
	}
	r, err := ring.New(names, ring.Config{Replicas: cfg.Replication, VNodes: cfg.VNodes})
	if err != nil {
		return nil, fmt.Errorf("distributor: %w", err)
	}
	d := &Distributor{
		cfg:     cfg,
		gate:    overload.NewGate(cfg.Gate),
		limiter: newTenantLimiter(cfg.Overrides),
		ring:    r,
		shards:  table,
		obs:     newDistObs(),
	}
	d.obs.shards.Set(int64(len(table)))
	d.obs.replication.Set(int64(cfg.Replication))
	d.registerObs()
	return d, nil
}

// streamKey derives the placement key for an entry: the TID alone (see
// the package comment for why the tenant is excluded).
func streamKey(tid uint32) string { return strconv.FormatUint(uint64(tid), 10) }

// group is the fan-out unit: the events of one ingest batch that share
// an owner set, delivered together.
type group struct {
	candidates []string // LookupN(key, RF+HedgeLimit): owners first, hedges after
	rf         int
	es         []tracer.Entry
}

// Ingest admits and fans out one tenant batch, blocking until every
// group resolved (quorum reached, or retries and hedges exhausted).
// Safe for concurrent use. The batch is filtered in place and its
// entries are shared read-only with the shard pipelines — callers must
// not reuse es after the call.
func (d *Distributor) Ingest(tenant string, es []tracer.Entry) Result {
	if tenant == "" {
		tenant = d.cfg.DefaultTenant
	}
	res := Result{Tenant: tenant, Seen: len(es)}

	d.admit.Lock()
	kept, throttled := d.limiter.filter(tenant, es)
	d.gate.SetTenant(tenant)
	admitted := d.gate.Filter(kept)
	d.admit.Unlock()
	res.Throttled = throttled
	res.GateDropped = len(kept) - len(admitted)

	r := d.ringSnapshot()
	rf := r.RF()
	width := rf + d.cfg.HedgeLimit

	// Group the batch by owner set, caching the ring walk per TID.
	byTID := make(map[uint32]*group)
	var groups []*group
	for i := range admitted {
		tid := admitted[i].TID
		g := byTID[tid]
		if g == nil {
			cand := r.LookupN(streamKey(tid), width)
			// Distinct TIDs can share an owner set; merge them so the
			// fan-out is per owner set, not per TID.
			g = d.findGroup(groups, cand, rf)
			if g == nil {
				g = &group{candidates: cand, rf: rf}
				groups = append(groups, g)
			}
			byTID[tid] = g
		}
		g.es = append(g.es, admitted[i])
	}

	var wg sync.WaitGroup
	acked := make([]bool, len(groups))
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			acked[i] = d.deliverGroup(g)
		}(i, g)
	}
	wg.Wait()

	for i, g := range groups {
		if acked[i] {
			res.Acked += len(g.es)
			if d.cfg.RecordStamps {
				for j := range g.es {
					res.AckedStamps = append(res.AckedStamps, g.es[j].Stamp)
				}
			}
		} else {
			res.Refused += len(g.es)
			if d.cfg.RecordStamps {
				for j := range g.es {
					res.RefusedStamps = append(res.RefusedStamps, g.es[j].Stamp)
				}
			}
		}
	}

	o := d.obs
	o.batches.Add(1)
	o.seen.Add(uint64(res.Seen))
	o.throttled.Add(uint64(res.Throttled))
	o.gateDropped.Add(uint64(res.GateDropped))
	o.acked.Add(uint64(res.Acked))
	o.refused.Add(uint64(res.Refused))
	return res
}

// findGroup returns the existing group with the same candidate walk, if
// any. Linear: the number of distinct owner sets is bounded by the
// shard count, not the batch size.
func (d *Distributor) findGroup(groups []*group, cand []string, rf int) *group {
	for _, g := range groups {
		if g.rf != rf || len(g.candidates) != len(cand) {
			continue
		}
		same := true
		for i := range cand {
			if g.candidates[i] != cand[i] {
				same = false
				break
			}
		}
		if same {
			return g
		}
	}
	return nil
}

// quorum is the majority of an rf-sized replica set. At rf=2 that is 2
// — write-all — which is exactly what makes RF=2 survive any single
// shard kill with zero acked loss.
func quorum(rf int) int { return rf/2 + 1 }

// deliverGroup writes one group to its replica set: the rf owners in
// parallel, then — if the ack count is short of quorum — the hedge
// candidates in walk order until quorum is reached or candidates run
// out.
func (d *Distributor) deliverGroup(g *group) bool {
	rf := g.rf
	if rf > len(g.candidates) {
		rf = len(g.candidates)
	}
	need := quorum(rf)
	acks := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, owner := range g.candidates[:rf] {
		wg.Add(1)
		go func(owner string) {
			defer wg.Done()
			if d.deliverTo(owner, g.es) == nil {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		}(owner)
	}
	wg.Wait()
	for _, cand := range g.candidates[rf:] {
		if acks >= need {
			break
		}
		if d.deliverTo(cand, g.es) == nil {
			acks++
			d.obs.hedges.Add(1)
		}
	}
	return acks >= need
}

// deliverTo writes a batch to one named shard, retrying within the
// per-replica budget. A missing shard (removed mid-flight) counts as a
// failed replica, not an error to surface.
func (d *Distributor) deliverTo(name string, es []tracer.Entry) error {
	d.topo.RLock()
	sh := d.shards[name]
	d.topo.RUnlock()
	if sh == nil {
		d.obs.replicaErrors.Add(1)
		return fmt.Errorf("%w: %s (not in ring)", ErrShardDown, name)
	}
	var err error
	for attempt := 0; attempt < d.cfg.Retries; attempt++ {
		if attempt > 0 {
			d.obs.retries.Add(1)
		}
		if err = sh.Ingest(es); err == nil {
			return nil
		}
	}
	d.obs.replicaErrors.Add(1)
	return err
}

// ringSnapshot returns the current ring; in-flight operations keep the
// topology they started with.
func (d *Distributor) ringSnapshot() *ring.Ring {
	d.topo.RLock()
	defer d.topo.RUnlock()
	return d.ring
}

// ParallelQuerier is the optional shard surface for worker-pool scans:
// shards backed by a local store expose Store.QueryParallel through
// it, and QueryParallel uses it when the caller asks for workers.
type ParallelQuerier interface {
	QueryParallel(q store.Query, workers int) (tracer.Cursor, error)
}

// Query fans q out across every healthy shard and k-way-merges the
// results into one stamp-ordered, replica-deduplicated cursor. q.Limit
// applies to the merged stream (each shard holds a subset, so a
// per-shard cursor's first Limit entries always cover the merged
// stream's first Limit stamps).
func (d *Distributor) Query(q store.Query) (tracer.Cursor, error) {
	return d.query(q, 0)
}

// QueryParallel is Query with per-shard worker-pool scans: each shard
// that implements ParallelQuerier scans its segments with up to
// workers goroutines; the rest fall back to their sequential cursor.
// The merged result is identical to Query's — same stamps, same order
// — which is exactly what makes the two surfaces cross-verifiable.
func (d *Distributor) QueryParallel(q store.Query, workers int) (tracer.Cursor, error) {
	if workers < 1 {
		workers = 1
	}
	return d.query(q, workers)
}

func (d *Distributor) query(q store.Query, workers int) (tracer.Cursor, error) {
	d.topo.RLock()
	shards := make([]Shard, 0, len(d.shards))
	for _, sh := range d.shards {
		shards = append(shards, sh)
	}
	d.topo.RUnlock()
	var curs []tracer.Cursor
	for _, sh := range shards {
		var cur tracer.Cursor
		var err error
		if pq, ok := sh.(ParallelQuerier); ok && workers > 0 {
			cur, err = pq.QueryParallel(q, workers)
		} else {
			cur, err = sh.Query(q)
		}
		if err != nil {
			continue // dead replica: its data lives on its peers
		}
		curs = append(curs, cur)
	}
	if len(curs) == 0 {
		return nil, fmt.Errorf("distributor: no healthy shards")
	}
	return NewMergeCursor(curs, q.Limit), nil
}

// Shards returns the current shard set, sorted by name.
func (d *Distributor) Shards() []Shard {
	d.topo.RLock()
	out := make([]Shard, 0, len(d.shards))
	for _, sh := range d.shards {
		out = append(out, sh)
	}
	d.topo.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Shard returns the named shard, or nil.
func (d *Distributor) Shard(name string) Shard {
	d.topo.RLock()
	defer d.topo.RUnlock()
	return d.shards[name]
}

// AddShard joins a shard to the ring and rebalances: new writes to the
// moved hash ranges route to it immediately, and the historical events
// of those ranges are copied over from their old owners before AddShard
// returns. The copy is what keeps the topology invariant — every owner
// in ring.Lookup(key) possesses key's acked events — true across joins;
// DrainShard relies on it when it skips owners that "already" hold a
// key, so a join without rebalance would silently leave the moved
// ranges one replica short and a later drain+crash could lose them.
func (d *Distributor) AddShard(sh Shard) (DrainReport, error) {
	var rep DrainReport
	name := sh.Name()
	d.topo.Lock()
	if _, dup := d.shards[name]; dup {
		d.topo.Unlock()
		return rep, fmt.Errorf("distributor: shard %q already present", name)
	}
	oldRing := d.ring
	newRing, err := oldRing.Add(name)
	if err != nil {
		d.topo.Unlock()
		return rep, err
	}
	d.ring = newRing
	d.shards[name] = sh
	d.obs.shards.Set(int64(len(d.shards)))
	peers := make([]Shard, 0, len(d.shards)-1)
	for pname, p := range d.shards {
		if pname != name {
			peers = append(peers, p)
		}
	}
	d.topo.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name() < peers[j].Name() })

	pending := make([]tracer.Entry, 0, drainBatch)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if err := d.deliverTo(name, pending); err != nil {
			rep.Failed += len(pending)
		} else {
			rep.Moved += len(pending)
			d.obs.drainMoved.Add(uint64(len(pending)))
		}
		pending = pending[:0]
	}
	batch := make([]tracer.Entry, drainBatch)
	picked := make([]tracer.Entry, 0, drainBatch)
	for _, peer := range peers {
		cur, err := peer.Query(store.Query{})
		if err != nil {
			// An unreadable peer cannot ship its ranges; the newcomer
			// still serves new writes, and the peer's replicas keep the
			// historical data readable.
			continue
		}
		for {
			n, _, err := cur.Next(batch)
			if err != nil || n == 0 {
				break
			}
			rep.Scanned += n
			picked = picked[:0]
			for i := range batch[:n] {
				key := streamKey(batch[i].TID)
				if !contains(newRing.Lookup(key), name) {
					continue
				}
				// One canonical source per key — its first old owner —
				// so the newcomer gets one copy, not rf. A possessor
				// outside the old owner set ships too: possession beats
				// placement, and duplicates collapse in the merged
				// query view.
				if old := oldRing.Lookup(key); contains(old, peer.Name()) && old[0] != peer.Name() {
					continue
				}
				picked = append(picked, batch[i])
			}
			// The cursor arena is reused across Next calls; retained
			// entries are deep-copied before the next refill.
			pending = tracer.CloneEntries(pending, picked)
			if len(pending) >= drainBatch {
				flush()
			}
		}
		cur.Close()
	}
	flush()
	if rep.Moved > 0 {
		rep.Targets = []string{name}
	}
	return rep, nil
}

// RemoveShard drops a shard from the ring and table without draining it
// — the crash path. The shard itself is returned for the caller to
// close or discard; quorum replication means its acked data remains
// readable from its peers.
func (d *Distributor) RemoveShard(name string) (Shard, error) {
	d.topo.Lock()
	defer d.topo.Unlock()
	sh := d.shards[name]
	if sh == nil {
		return nil, fmt.Errorf("distributor: shard %q not in ring", name)
	}
	r, err := d.ring.Remove(name)
	if err != nil {
		return nil, err
	}
	d.ring = r
	delete(d.shards, name)
	d.obs.shards.Set(int64(len(d.shards)))
	return sh, nil
}

// DrainReport accounts one DrainShard run.
type DrainReport struct {
	// Scanned is the events read off the drained shard.
	Scanned int
	// Moved is the events redelivered to new owners (an event moving to
	// two new owners counts twice).
	Moved int
	// Failed is redeliveries that did not apply even after retries; the
	// events remain readable from the drained key's surviving replicas.
	Failed int
	// Targets lists the shards that received moved ranges.
	Targets []string
}

// drainBatch is the redelivery granularity of DrainShard.
const drainBatch = 1024

// DrainShard gracefully removes a shard: the ring is re-derived without
// it (so new writes route to the new owners at once), then every event
// it holds is re-placed — delivered only to the owners that are new for
// its key, i.e. exactly the moved hash ranges, never the replicas that
// already hold it — and finally the shard leaves the table. The shard
// is returned for the caller to close.
func (d *Distributor) DrainShard(name string) (Shard, DrainReport, error) {
	var rep DrainReport
	d.topo.Lock()
	sh := d.shards[name]
	if sh == nil {
		d.topo.Unlock()
		return nil, rep, fmt.Errorf("distributor: shard %q not in ring", name)
	}
	oldRing := d.ring
	newRing, err := oldRing.Remove(name)
	if err != nil {
		d.topo.Unlock()
		return nil, rep, err
	}
	// Swap the ring first: from here on, writes route around the
	// draining shard while its data stays queryable until the scan is
	// done.
	d.ring = newRing
	d.topo.Unlock()

	cur, err := sh.Query(store.Query{})
	if err != nil {
		// Shard unreadable (e.g. killed): fall back to crash-removal.
		d.finishRemove(name)
		return sh, rep, fmt.Errorf("distributor: drain %s: %w", name, err)
	}
	pending := make(map[string][]tracer.Entry)
	flush := func(target string) {
		es := pending[target]
		if len(es) == 0 {
			return
		}
		pending[target] = nil
		if err := d.deliverTo(target, es); err != nil {
			rep.Failed += len(es)
			return
		}
		rep.Moved += len(es)
		d.obs.drainMoved.Add(uint64(len(es)))
	}
	batch := make([]tracer.Entry, drainBatch)
	moved := make(map[string]bool)
	for {
		n, _, err := cur.Next(batch)
		if err != nil || n == 0 {
			break
		}
		rep.Scanned += n
		// The cursor arena is reused across Next calls and the pending
		// buffers outlive it, so retained entries are deep-copied.
		es := tracer.CloneEntries(nil, batch[:n])
		for i := range es {
			key := streamKey(es[i].TID)
			old := oldRing.Lookup(key)
			for _, owner := range newRing.Lookup(key) {
				if contains(old, owner) {
					continue // already a replica of this key
				}
				pending[owner] = append(pending[owner], es[i])
				moved[owner] = true
				if len(pending[owner]) >= drainBatch {
					flush(owner)
				}
			}
		}
	}
	cur.Close()
	for target := range pending {
		flush(target)
	}
	for target := range moved {
		rep.Targets = append(rep.Targets, target)
	}
	sort.Strings(rep.Targets)
	d.finishRemove(name)
	return sh, rep, nil
}

func (d *Distributor) finishRemove(name string) {
	d.topo.Lock()
	delete(d.shards, name)
	d.obs.shards.Set(int64(len(d.shards)))
	d.topo.Unlock()
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ShardInfo is one shard's row in the /ring view.
type ShardInfo struct {
	Name      string                 `json:"name"`
	Dir       string                 `json:"dir"`
	Healthy   bool                   `json:"healthy"`
	Events    uint64                 `json:"events"`
	Bytes     int64                  `json:"bytes"`
	Ownership float64                `json:"ownership"`
	Pressure  overload.StorePressure `json:"pressure"`
}

// Info is the /ring topology view.
type Info struct {
	Replication int         `json:"replication"`
	VNodes      int         `json:"vnodes"`
	Shards      []ShardInfo `json:"shards"`
}

// Info snapshots the topology: the ring's arc ownership joined with
// each shard's health and store footprint.
func (d *Distributor) Info() Info {
	d.topo.RLock()
	r := d.ring
	shards := make([]Shard, 0, len(d.shards))
	for _, sh := range d.shards {
		shards = append(shards, sh)
	}
	d.topo.RUnlock()
	own := r.Ownership()
	info := Info{Replication: r.RF(), VNodes: r.VNodes()}
	for _, sh := range shards {
		info.Shards = append(info.Shards, ShardInfo{
			Name:      sh.Name(),
			Dir:       sh.Dir(),
			Healthy:   sh.Healthy(),
			Events:    sh.Events(),
			Bytes:     sh.Size(),
			Ownership: own[sh.Name()],
			Pressure:  sh.Pressure(),
		})
	}
	sort.Slice(info.Shards, func(i, j int) bool { return info.Shards[i].Name < info.Shards[j].Name })
	return info
}

// Stats snapshots the distributor counters.
func (d *Distributor) Stats() Stats {
	o := d.obs
	return Stats{
		Batches:       o.batches.Load(),
		EventsSeen:    o.seen.Load(),
		Throttled:     o.throttled.Load(),
		GateDropped:   o.gateDropped.Load(),
		Acked:         o.acked.Load(),
		Refused:       o.refused.Load(),
		ReplicaErrors: o.replicaErrors.Load(),
		Retries:       o.retries.Load(),
		Hedges:        o.hedges.Load(),
		DrainMoved:    o.drainMoved.Load(),
	}
}

// GateStats snapshots the shared gate's counters.
func (d *Distributor) GateStats() overload.Stats {
	d.admit.Lock()
	defer d.admit.Unlock()
	return d.gate.Stats()
}

// TenantStats snapshots the gate's per-tenant attribution table.
func (d *Distributor) TenantStats() map[string]overload.TenantStats {
	d.admit.Lock()
	defer d.admit.Unlock()
	return d.gate.TenantStats()
}

// GateTier returns the gate's engaged shedding tier.
func (d *Distributor) GateTier() overload.Tier {
	d.admit.Lock()
	defer d.admit.Unlock()
	return d.gate.Tier()
}

// EvaluateGate feeds the gate one pressure observation assembled from
// the worst store signals across the shard fleet — overload anywhere in
// the replica set is overload, since quorum writes wait for it.
func (d *Distributor) EvaluateGate() {
	var p overload.Pressure
	for _, sh := range d.Shards() {
		sp := sh.Pressure()
		if sp.StagedFill > p.Store.StagedFill {
			p.Store.StagedFill = sp.StagedFill
		}
		if sp.AppendNs > p.Store.AppendNs {
			p.Store.AppendNs = sp.AppendNs
		}
		if sp.FsyncNs > p.Store.FsyncNs {
			p.Store.FsyncNs = sp.FsyncNs
		}
	}
	d.admit.Lock()
	d.gate.Evaluate(p)
	d.admit.Unlock()
}

// NotReadyReasons reports why the cluster should refuse traffic — empty
// when it is ready. Mirrors the single-store path's conditions, per
// shard, plus the quorum floor: with fewer healthy shards than a
// replica set needs for majority, no write can be acked.
func (d *Distributor) NotReadyReasons() []string {
	var reasons []string
	healthy := 0
	for _, sh := range d.Shards() {
		if sh.Healthy() {
			healthy++
		} else {
			reasons = append(reasons, fmt.Sprintf("shard %s down or write path failed", sh.Name()))
		}
	}
	rf := d.ringSnapshot().RF()
	if healthy < quorum(rf) {
		reasons = append(reasons, fmt.Sprintf("only %d healthy shards, quorum needs %d", healthy, quorum(rf)))
	}
	if d.GateTier() >= overload.TierStream {
		reasons = append(reasons, "overload shedding at full-drop tier")
	}
	return reasons
}

// Close closes every shard (drain + flush + store close), first error
// wins.
func (d *Distributor) Close() error {
	var first error
	for _, sh := range d.Shards() {
		if err := sh.Close(); err != nil && first == nil {
			first = fmt.Errorf("close shard %s: %w", sh.Name(), err)
		}
	}
	return first
}

// String summarizes the topology for logs.
func (d *Distributor) String() string {
	info := d.Info()
	names := make([]string, len(info.Shards))
	for i, s := range info.Shards {
		names[i] = s.Name
	}
	return fmt.Sprintf("distributor{rf=%d shards=[%s]}", info.Replication, strings.Join(names, " "))
}
