package distributor

import (
	"testing"

	"btrace/internal/btql"
	"btrace/internal/store"
)

// Replication is the trap for cluster aggregation: every event lives on
// RF shards, so any per-shard aggregate fold would count it RF times.
// The executor runs behind the merge cursor's dedup, so the totals must
// come out replica-free.
func TestDistributorAggregateDeduplicatesReplicas(t *testing.T) {
	d, locals := newTestCluster(t, 4, Config{Replication: 2, Gate: gateOff()})
	res := d.Ingest("", events(500, 1, 30, 31, 32, 33))
	if res.Acked != 500 {
		t.Fatalf("acked %d of 500", res.Acked)
	}

	specs := []btql.AggSpec{
		{Kind: btql.AggCount},
		{Kind: btql.AggTopK, K: 2, Field: btql.FTID},
	}
	got, _, err := d.Aggregate(store.Query{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Events != 500 {
		t.Fatalf("cluster count = %d, want 500 (RF=2 must not double-count)", got[0].Events)
	}
	if len(got[1].Top) != 2 || got[1].Top[0].Count != 125 {
		t.Fatalf("topk over 4 uniform TIDs: %+v, want counts of 125", got[1].Top)
	}

	// Filtered aggregate, and Limit must not truncate it.
	q, err := btql.Parse(`category == 2`)
	if err != nil {
		t.Fatal(err)
	}
	filtered, _, err := d.Aggregate(store.Query{Pred: q.Predicate(), Limit: 3}, specs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if filtered[0].Events != 100 {
		t.Fatalf("filtered cluster count = %d, want 100", filtered[0].Events)
	}

	// A killed shard degrades nothing at RF=2.
	locals[1].Kill()
	got, _, err = d.Aggregate(store.Query{}, specs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Events != 500 {
		t.Fatalf("count after shard kill = %d, want 500", got[0].Events)
	}
}
