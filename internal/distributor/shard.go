package distributor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"btrace/internal/collect"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// Shard errors the distributor's retry/hedge logic keys on.
var (
	// ErrShardDown reports delivery to a shard that is no longer running
	// (killed, closed, or removed).
	ErrShardDown = errors.New("distributor: shard down")
	// ErrShardBusy reports a shard whose bounded ingest queue stayed full
	// for the whole ack timeout — backpressure, not failure.
	ErrShardBusy = errors.New("distributor: shard queue full")
	// errNotApplied reports a delivery the shard's pipeline accepted but
	// could not durably apply (the dump spilled instead of reaching the
	// store).
	errNotApplied = errors.New("distributor: delivery not applied")
)

// Shard is one replica target: a named store the distributor can
// synchronously deliver batches to and fan queries out across. Ingest
// is the quorum unit — when it returns nil the batch is applied to the
// shard's durable store, not merely enqueued.
type Shard interface {
	Name() string
	// Ingest delivers one batch and blocks until it is durably applied
	// or refused. Safe for concurrent use.
	Ingest(es []tracer.Entry) error
	// Query opens a stamp-ordered cursor over the shard's durable store.
	Query(q store.Query) (tracer.Cursor, error)
	// Healthy reports whether the shard is accepting work.
	Healthy() bool
	Segments() []store.SegmentInfo
	TierStats() []store.TierStat
	Pressure() overload.StorePressure
	Events() uint64
	Size() int64
	Dir() string
	// Close drains and flushes the shard, then closes its store.
	Close() error
}

// LocalConfig shapes a LocalShard.
type LocalConfig struct {
	// Name identifies the shard on the ring.
	Name string
	// Store is the shard's durable store (required; the shard owns it
	// and closes it on Close).
	Store *store.Store
	// WrapStore, when set, wraps the store as seen by the shard's sink
	// pipeline — the fault-injection seam (queries still read the
	// unwrapped store).
	WrapStore func(collect.DumpStore) collect.DumpStore
	// QueueDepth bounds accepted-but-unapplied batches (default 64).
	QueueDepth int
	// AckTimeout bounds how long one Ingest waits for a full queue or a
	// stuck pipeline (default 5s).
	AckTimeout time.Duration
}

func (c LocalConfig) withDefaults() LocalConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	return c
}

// task is one batch awaiting synchronous application.
type task struct {
	es   []tracer.Entry
	done chan error
}

// shardTrigger fires exactly one dump per delivered batch. It is armed
// by the drive loop before each task and fires on the poll that
// consumes the task's batch even when the Verifier quarantined every
// entry in it (cross-replica delivery interleaves streams, so
// out-of-order batches are routine) — quarantined entries ride the dump
// into the store, and the delivery still acks. Only touched by the
// drive goroutine.
type shardTrigger struct{ armed bool }

func (t *shardTrigger) Observe(es []tracer.Entry) string {
	if t.armed {
		t.armed = false
		return "batch"
	}
	return ""
}
func (t *shardTrigger) Name() string { return "shard-ingest" }

// slot is a one-batch poller: the drive loop loads the current task's
// batch, the supervisor's next poll consumes it.
type slot struct{ es []tracer.Entry }

func (s *slot) Poll() ([]tracer.Entry, uint64, error) {
	es := s.es
	s.es = nil
	return es, 0, nil
}

// LocalShard runs the existing collect.Supervisor + store pipeline as an
// in-process replica: many of them in one process make a cluster that is
// testable and chaos-able without networking. Batches flow through a
// bounded task queue into a single drive goroutine (the Supervisor's
// single-goroutine contract), which steps the pipeline until each dump
// is durably applied or definitively spilled and answers the waiting
// Ingest call.
type LocalShard struct {
	cfg   LocalConfig
	st    *store.Store
	sup   *collect.Supervisor
	slot  *slot
	trig  *shardTrigger
	tasks chan task

	dead     chan struct{} // closed by Kill or Close; fails fast
	deadOnce sync.Once
	done     chan struct{} // drive goroutine exited
	graceful bool          // Close (drain+flush) vs Kill (abrupt)

	mu     sync.Mutex
	closed bool
}

// NewLocalShard wires the pipeline over cfg.Store and starts the drive
// goroutine.
func NewLocalShard(cfg LocalConfig) (*LocalShard, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("distributor: shard needs a name")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("distributor: shard %q needs a store", cfg.Name)
	}
	var sink collect.DumpStore = cfg.Store
	if cfg.WrapStore != nil {
		sink = cfg.WrapStore(cfg.Store)
	}
	s := &LocalShard{
		cfg:   cfg,
		st:    cfg.Store,
		slot:  &slot{},
		trig:  &shardTrigger{},
		tasks: make(chan task, cfg.QueueDepth),
		dead:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	sup, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source:    collect.Fallible(pollAdapter{s.slot}),
		Triggers:  []collect.Trigger{s.trig},
		Store:     sink,
		StoreSink: true,
		// The distributor owns cross-replica retry and hedging; the
		// shard-local budget stays small so a dead store answers fast
		// instead of burning wall-clock per delivery.
		SinkRetryBudget: 2,
		BackoffBase:     1,
		BackoffMax:      2,
	})
	if err != nil {
		return nil, err
	}
	s.sup = sup
	go s.drive()
	return s, nil
}

// pollAdapter narrows *slot to the infallible Poller shape Fallible
// wraps.
type pollAdapter struct{ s *slot }

func (p pollAdapter) Poll() ([]tracer.Entry, uint64) {
	es, _, _ := p.s.Poll()
	return es, 0
}

// driveSteps bounds the Step calls spent resolving one delivery; with
// the small retry budget above a delivery resolves in a handful of
// steps, so hitting the bound means the pipeline is wedged.
const driveSteps = 64

// drive is the shard's single pipeline goroutine: one task at a time,
// stepping the supervisor until the task's dump is applied (ack) or
// spilled (nack).
func (s *LocalShard) drive() {
	defer close(s.done)
	for {
		select {
		case <-s.dead:
			if s.graceful {
				s.drainAndFlush()
			} else {
				s.failQueued()
			}
			return
		case t := <-s.tasks:
			t.done <- s.apply(t.es)
		}
	}
}

// apply pushes one batch through the pipeline and reports whether it
// was durably applied. The supervisor's accounting is event-exact:
// DumpsWritten means the store append returned, Spilled means delivery
// gave up — exactly one of the two moves per batch.
func (s *LocalShard) apply(es []tracer.Entry) error {
	before := s.sup.Stats()
	s.slot.es = es
	s.trig.armed = true
	for i := 0; i < driveSteps; i++ {
		s.sup.Step()
		st := s.sup.Stats()
		// Spill first: a spilled dump means the store refused this batch
		// even after retries, and acking it would claim durability the
		// pipeline could not provide.
		if st.Spilled > before.Spilled {
			return errNotApplied
		}
		if st.DumpsWritten > before.DumpsWritten {
			return nil
		}
	}
	return errNotApplied
}

// drainAndFlush finishes queued work on graceful close: remaining tasks
// still get real answers, then pending and spilled dumps are flushed.
func (s *LocalShard) drainAndFlush() {
	for {
		select {
		case t := <-s.tasks:
			t.done <- s.apply(t.es)
		default:
			s.sup.Flush()
			return
		}
	}
}

// failQueued answers queued tasks with ErrShardDown on Kill: nothing
// queued was acked, so nothing is lost — the distributor re-routes.
func (s *LocalShard) failQueued() {
	for {
		select {
		case t := <-s.tasks:
			t.done <- ErrShardDown
		default:
			return
		}
	}
}

func (s *LocalShard) Name() string { return s.cfg.Name }

// Ingest delivers one batch, blocking until the drive goroutine applied
// it or the shard refused (down, or queue full past the ack timeout).
func (s *LocalShard) Ingest(es []tracer.Entry) error {
	if len(es) == 0 {
		return nil
	}
	t := task{es: es, done: make(chan error, 1)}
	timer := time.NewTimer(s.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case s.tasks <- t:
	case <-s.dead:
		return ErrShardDown
	case <-timer.C:
		return ErrShardBusy
	}
	select {
	case err := <-t.done:
		return err
	case <-s.dead:
		// The drive goroutine may still answer a task it already picked
		// up; prefer that answer over the blanket shard-down error.
		select {
		case err := <-t.done:
			return err
		default:
			return ErrShardDown
		}
	case <-timer.C:
		return ErrShardBusy
	}
}

// Query opens a cursor over the shard's durable store. A killed shard
// refuses: its data is intact on the backend but unavailable, exactly
// like a dead process's disk.
func (s *LocalShard) Query(q store.Query) (tracer.Cursor, error) {
	if !s.Healthy() {
		return nil, fmt.Errorf("%w: %s", ErrShardDown, s.cfg.Name)
	}
	return s.st.Query(q), nil
}

// QueryParallel opens a worker-pool cursor over the shard's durable
// store (distributor.ParallelQuerier); same refusal rule as Query.
func (s *LocalShard) QueryParallel(q store.Query, workers int) (tracer.Cursor, error) {
	if !s.Healthy() {
		return nil, fmt.Errorf("%w: %s", ErrShardDown, s.cfg.Name)
	}
	return s.st.QueryParallel(q, workers), nil
}

// Healthy reports whether the shard accepts work: alive and with a
// working store write path.
func (s *LocalShard) Healthy() bool {
	select {
	case <-s.dead:
		return false
	default:
	}
	return s.st.WriteErr() == nil
}

func (s *LocalShard) Segments() []store.SegmentInfo     { return s.st.Segments() }
func (s *LocalShard) TierStats() []store.TierStat       { return s.st.TierStats() }
func (s *LocalShard) Pressure() overload.StorePressure  { return s.st.Pressure() }
func (s *LocalShard) Events() uint64                    { return s.st.Events() }
func (s *LocalShard) Size() int64                       { return s.st.Size() }
func (s *LocalShard) Dir() string                       { return s.st.Dir() }
func (s *LocalShard) SupStats() collect.SupervisorStats { return s.sup.Stats() }
func (s *LocalShard) Health() collect.HealthReport      { return s.sup.Health() }

// Kill stops the shard abruptly — no drain, no flush — simulating a
// crashed process for chaos tests. Queued (unacked) deliveries fail
// with ErrShardDown; the store is left unclosed, like a dead process's
// files.
func (s *LocalShard) Kill() {
	s.deadOnce.Do(func() { close(s.dead) })
	<-s.done
}

// Close drains the queue, flushes the pipeline, and closes the store.
// Safe to call more than once; Close after Kill only closes the store.
func (s *LocalShard) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.graceful = true
	s.deadOnce.Do(func() { close(s.dead) })
	<-s.done
	return s.st.Close()
}
