package distributor

import (
	"testing"

	"btrace/internal/store"
)

// The two cluster read surfaces must be byte-identical: QueryParallel
// fans each shard's scan across a worker pool, but the merged,
// deduplicated stream it yields has to match the sequential cursor's
// exactly — that equivalence is what btrace-vulture cross-checks
// continuously.
func TestDistributorQueryParallelMatchesSequential(t *testing.T) {
	d, locals := newTestCluster(t, 4, Config{Replication: 2, Gate: gateOff()})
	res := d.Ingest("", events(500, 1, 30, 31, 32, 33, 34))
	if res.Acked != 500 {
		t.Fatalf("acked %d of 500", res.Acked)
	}

	q := store.Query{MinStamp: 50, MaxStamp: 450}
	seqCur, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	seq := drainAll(t, seqCur)
	parCur, err := d.QueryParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	par := drainAll(t, parCur)

	if len(seq) != 401 || len(par) != len(seq) {
		t.Fatalf("sequential %d vs parallel %d events, want 401 each", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Stamp != par[i].Stamp {
			t.Fatalf("surface divergence at %d: sequential stamp %d, parallel %d",
				i, seq[i].Stamp, par[i].Stamp)
		}
		if string(seq[i].Payload) != string(par[i].Payload) {
			t.Fatalf("stamp %d payload differs between surfaces", seq[i].Stamp)
		}
	}

	// A killed shard degrades both surfaces identically: RF=2 keeps
	// every stamp readable.
	locals[2].Kill()
	parCur, err = d.QueryParallel(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, parCur); len(got) != 401 {
		t.Fatalf("parallel query after kill returned %d events, want 401", len(got))
	}
}
