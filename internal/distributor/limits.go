package distributor

import (
	"fmt"
	"strconv"
	"strings"

	"btrace/internal/tracer"
)

// TenantLimit is one tenant's ingest quota override: a token bucket on
// virtual time (the event stream's own TS clock), matching the overload
// gate's limiter semantics so replayed and live traffic behave the
// same. The zero value means "no quota".
type TenantLimit struct {
	// RatePerSec is the refill rate in events per second of virtual
	// time; 0 disables the quota.
	RatePerSec float64
	// Burst is the bucket capacity (default 2×RatePerSec, minimum 1).
	Burst float64
}

func (l TenantLimit) withDefaults() TenantLimit {
	if l.RatePerSec > 0 && l.Burst <= 0 {
		l.Burst = 2 * l.RatePerSec
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// ParseOverrides parses the -tenant-overrides flag syntax: a comma
// list of name=rate or name=rate:burst entries, e.g.
//
//	alpha=1000,beta=500:2000
//
// Rates are events per second of virtual time.
func ParseOverrides(s string) (map[string]TenantLimit, error) {
	out := make(map[string]TenantLimit)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant override %q: want name=rate[:burst]", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("tenant override %q: duplicate tenant", name)
		}
		rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("tenant override %q: bad rate %q", part, rateStr)
		}
		lim := TenantLimit{RatePerSec: rate}
		if hasBurst {
			burst, err := strconv.ParseFloat(strings.TrimSpace(burstStr), 64)
			if err != nil || burst <= 0 {
				return nil, fmt.Errorf("tenant override %q: bad burst %q", part, burstStr)
			}
			lim.Burst = burst
		}
		out[name] = lim.withDefaults()
	}
	return out, nil
}

// vbucket is a token bucket on virtual time, the same latching-clock
// semantics as the overload gate's buckets: out-of-order timestamps
// never refill and never drain.
type vbucket struct {
	tokens float64
	lastNs uint64
	primed bool
}

func (b *vbucket) take(nowNs uint64, rate, burst float64) bool {
	if !b.primed {
		b.tokens = burst
		b.lastNs = nowNs
		b.primed = true
	} else if nowNs > b.lastNs {
		b.tokens += float64(nowNs-b.lastNs) * rate / 1e9
		if b.tokens > burst {
			b.tokens = burst
		}
		b.lastNs = nowNs
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// tenantLimiter applies per-tenant quota overrides ahead of the shared
// gate: a tenant with an override draws every event from its bucket,
// tenants without one pass through untouched. Driven under the
// distributor's admission lock, so no locking of its own.
type tenantLimiter struct {
	limits  map[string]TenantLimit
	buckets map[string]*vbucket
}

func newTenantLimiter(overrides map[string]TenantLimit) *tenantLimiter {
	l := &tenantLimiter{limits: make(map[string]TenantLimit), buckets: make(map[string]*vbucket)}
	for name, lim := range overrides {
		l.limits[name] = lim.withDefaults()
	}
	return l
}

// filter drops events beyond the tenant's quota, in place, returning
// the kept prefix and the number dropped.
func (l *tenantLimiter) filter(tenant string, es []tracer.Entry) ([]tracer.Entry, int) {
	lim, ok := l.limits[tenant]
	if !ok || lim.RatePerSec <= 0 {
		return es, 0
	}
	b := l.buckets[tenant]
	if b == nil {
		b = &vbucket{}
		l.buckets[tenant] = b
	}
	out := es[:0]
	for i := range es {
		if b.take(es[i].TS, lim.RatePerSec, lim.Burst) {
			out = append(out, es[i])
		}
	}
	return out, len(es) - len(out)
}
