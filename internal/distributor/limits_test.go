package distributor

import (
	"testing"

	"btrace/internal/tracer"
)

func TestParseOverrides(t *testing.T) {
	got, err := ParseOverrides("acme=100:200,free=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d overrides, want 2", len(got))
	}
	if l := got["acme"]; l.RatePerSec != 100 || l.Burst != 200 {
		t.Fatalf("acme = %+v", l)
	}
	if l := got["free"]; l.RatePerSec != 5 || l.Burst != 10 {
		t.Fatalf("free = %+v (burst should default to 2x rate)", l)
	}

	if m, err := ParseOverrides(""); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"=5", "a=", "a=0", "a=-1", "a=1:0", "a=x", "a=1:1,a=2:2", "a"} {
		if _, err := ParseOverrides(bad); err == nil {
			t.Fatalf("ParseOverrides(%q) accepted", bad)
		}
	}
}

func TestTenantLimiterThrottles(t *testing.T) {
	limits, err := ParseOverrides("q=2:2")
	if err != nil {
		t.Fatal(err)
	}
	l := newTenantLimiter(limits)

	// Burst of 2 at one instant: 2 admitted, 3 throttled.
	es := make([]tracer.Entry, 5)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: 1_000_000_000}
	}
	kept, dropped := l.filter("q", es)
	if len(kept) != 2 || dropped != 3 {
		t.Fatalf("kept %d dropped %d, want 2 and 3", len(kept), dropped)
	}

	// A second later the bucket refilled 2 tokens.
	es2 := []tracer.Entry{
		{Stamp: 10, TS: 2_000_000_000},
		{Stamp: 11, TS: 2_000_000_000},
		{Stamp: 12, TS: 2_000_000_000},
	}
	kept, dropped = l.filter("q", es2)
	if len(kept) != 2 || dropped != 1 {
		t.Fatalf("after refill: kept %d dropped %d, want 2 and 1", len(kept), dropped)
	}

	// Tenants without an override pass untouched.
	es3 := make([]tracer.Entry, 64)
	kept, dropped = l.filter("other", es3)
	if len(kept) != 64 || dropped != 0 {
		t.Fatalf("unlimited tenant: kept %d dropped %d", len(kept), dropped)
	}
}

func TestTenantLimiterIsolatesTenants(t *testing.T) {
	limits, _ := ParseOverrides("a=1:1,b=1:1")
	l := newTenantLimiter(limits)
	ea := []tracer.Entry{{Stamp: 1, TS: 1000}, {Stamp: 2, TS: 1000}}
	eb := []tracer.Entry{{Stamp: 3, TS: 1000}, {Stamp: 4, TS: 1000}}
	if kept, _ := l.filter("a", ea); len(kept) != 1 {
		t.Fatalf("tenant a kept %d, want 1", len(kept))
	}
	// Tenant a exhausting its bucket must not charge tenant b.
	if kept, _ := l.filter("b", eb); len(kept) != 1 {
		t.Fatalf("tenant b kept %d, want 1", len(kept))
	}
}
