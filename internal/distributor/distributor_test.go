package distributor

import (
	"errors"
	"fmt"
	"testing"

	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// gateOff admits everything: sampling floor at 1 and no limits.
func gateOff() overload.Config { return overload.Config{MinSampleRate: 1} }

// newTestShard builds an object-backed LocalShard (no disk).
func newTestShard(t *testing.T, name string) *LocalShard {
	t.Helper()
	st, err := store.OpenBackend(backend.NewObject(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewLocalShard(LocalConfig{Name: name, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// newTestCluster builds n shards and a distributor over them; everything
// is closed on test cleanup.
func newTestCluster(t *testing.T, n int, cfg Config) (*Distributor, []*LocalShard) {
	t.Helper()
	locals := make([]*LocalShard, n)
	shards := make([]Shard, n)
	for i := range locals {
		locals[i] = newTestShard(t, fmt.Sprintf("shard-%02d", i))
		shards[i] = locals[i]
	}
	d, err := New(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, locals
}

// events builds well-formed entries with globally increasing stamps
// across the given TIDs.
func events(n int, startStamp uint64, tids ...uint32) []tracer.Entry {
	es := make([]tracer.Entry, n)
	for i := range es {
		stamp := startStamp + uint64(i)
		es[i] = tracer.Entry{
			Stamp:    stamp,
			TS:       stamp * 1000,
			TID:      tids[i%len(tids)],
			Category: uint8(stamp % 5),
			Level:    1,
			Payload:  []byte(fmt.Sprintf("e%d", stamp)),
		}
	}
	return es
}

func drainAll(t *testing.T, cur tracer.Cursor) []tracer.Entry {
	t.Helper()
	defer cur.Close()
	var out []tracer.Entry
	batch := make([]tracer.Entry, 256)
	for {
		n, _, err := cur.Next(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = tracer.CloneEntries(out, batch[:n])
	}
}

func TestDistributorReplicatesToQuorum(t *testing.T) {
	d, locals := newTestCluster(t, 4, Config{Replication: 2, Gate: gateOff()})
	res := d.Ingest("acme", events(100, 1, 10, 11, 12, 13))
	if res.Acked != 100 || res.Refused != 0 || res.Throttled != 0 || res.GateDropped != 0 {
		t.Fatalf("result %+v, want 100 acked", res)
	}

	// RF=2: every event must be durably applied on exactly its two ring
	// owners, so total stored events == 2 × acked.
	var total uint64
	for _, sh := range locals {
		total += sh.Events()
	}
	if total != 200 {
		t.Fatalf("cluster stores %d events, want 200 (100 events × RF 2)", total)
	}

	// The merged query view deduplicates the replicas back to one copy
	// each, in stamp order, payloads intact.
	cur, err := d.Query(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, cur)
	if len(got) != 100 {
		t.Fatalf("merged query returned %d events, want 100", len(got))
	}
	for i, e := range got {
		want := uint64(i + 1)
		if e.Stamp != want {
			t.Fatalf("merged stream out of order at %d: stamp %d, want %d", i, e.Stamp, want)
		}
		if string(e.Payload) != fmt.Sprintf("e%d", want) {
			t.Fatalf("stamp %d payload %q corrupted in merge", want, e.Payload)
		}
	}
}

func TestDistributorHedgesAroundDeadReplica(t *testing.T) {
	d, locals := newTestCluster(t, 4, Config{Replication: 2, Gate: gateOff()})
	locals[1].Kill()

	// Every batch must still ack: groups owned by the killed shard reach
	// quorum (2 of 2) by hedging to the next distinct shard on the ring
	// walk.
	res := d.Ingest("", events(200, 1, 20, 21, 22, 23, 24, 25, 26, 27))
	if res.Refused != 0 || res.Acked != 200 {
		t.Fatalf("with one dead shard: %+v, want all 200 acked", res)
	}
	// And the acked events must be fully readable without the dead
	// shard.
	cur, err := d.Query(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, cur); len(got) != 200 {
		t.Fatalf("query after kill returned %d events, want 200", len(got))
	}
	if st := d.Stats(); st.Hedges == 0 && st.ReplicaErrors == 0 {
		t.Fatalf("stats show no replica errors or hedges after a kill: %+v", st)
	}
}

func TestDistributorRefusesWithoutQuorum(t *testing.T) {
	// 2 shards, RF=2, quorum=2: killing one leaves no hedge candidates,
	// so ingest must refuse rather than under-replicate.
	d, locals := newTestCluster(t, 2, Config{Replication: 2, Gate: gateOff()})
	locals[0].Kill()
	res := d.Ingest("", events(10, 1, 5))
	if res.Acked != 0 || res.Refused != 10 {
		t.Fatalf("result %+v, want all 10 refused (no quorum possible)", res)
	}
	if reasons := d.NotReadyReasons(); len(reasons) == 0 {
		t.Fatal("NotReadyReasons empty with half the cluster dead")
	}
}

func TestDistributorTenantOverrides(t *testing.T) {
	overrides, err := ParseOverrides("limited=1:1")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := newTestCluster(t, 3, Config{Replication: 2, Gate: gateOff(), Overrides: overrides})

	// All events share one virtual-time instant, so the 1-token burst
	// admits exactly one event for the limited tenant.
	es := make([]tracer.Entry, 8)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: 1000, TID: 3, Category: 1, Level: 1}
	}
	res := d.Ingest("limited", es)
	if res.Throttled != 7 || res.Acked != 1 {
		t.Fatalf("limited tenant: %+v, want 7 throttled 1 acked", res)
	}

	// An unlimited tenant is untouched by the override.
	res = d.Ingest("free", events(8, 100, 4))
	if res.Throttled != 0 || res.Acked != 8 {
		t.Fatalf("free tenant: %+v, want 0 throttled 8 acked", res)
	}

	// And the gate attributed both tenants.
	ts := d.TenantStats()
	if ts["limited"].Seen != 1 || ts["free"].Seen != 8 {
		t.Fatalf("tenant attribution %+v", ts)
	}
}

func TestDistributorResultIdentity(t *testing.T) {
	overrides, _ := ParseOverrides("q=10:10")
	d, _ := newTestCluster(t, 3, Config{Replication: 2, Gate: gateOff(), Overrides: overrides, RecordStamps: true})
	res := d.Ingest("q", events(64, 1, 1, 2, 3))
	if got := res.Throttled + res.GateDropped + res.Acked + res.Refused; got != res.Seen {
		t.Fatalf("accounting identity broken: %d+%d+%d+%d != %d",
			res.Throttled, res.GateDropped, res.Acked, res.Refused, res.Seen)
	}
	if len(res.AckedStamps) != res.Acked || len(res.RefusedStamps) != res.Refused {
		t.Fatalf("stamp records (%d acked, %d refused) disagree with counts (%d, %d)",
			len(res.AckedStamps), len(res.RefusedStamps), res.Acked, res.Refused)
	}
}

func TestDrainShardMovesOnlyMovedRanges(t *testing.T) {
	d, locals := newTestCluster(t, 4, Config{Replication: 2, Gate: gateOff()})
	res := d.Ingest("", events(300, 1, 30, 31, 32, 33, 34, 35, 36, 37))
	if res.Acked != 300 {
		t.Fatalf("seed ingest: %+v", res)
	}
	victim := locals[2]
	preEvents := victim.Events()

	sh, rep, err := d.DrainShard(victim.Name())
	if err != nil {
		t.Fatal(err)
	}
	if sh != victim {
		t.Fatal("DrainShard returned a different shard")
	}
	if rep.Failed != 0 {
		t.Fatalf("drain failed to move %d events: %+v", rep.Failed, rep)
	}
	if uint64(rep.Scanned) != preEvents {
		t.Fatalf("drain scanned %d of the shard's %d events", rep.Scanned, preEvents)
	}
	// Each drained key keeps its surviving replica and gains exactly one
	// new owner, so moved == scanned is the ceiling; hedged extra copies
	// can only lower it.
	if rep.Moved > rep.Scanned {
		t.Fatalf("drain moved %d > scanned %d", rep.Moved, rep.Scanned)
	}
	victim.Close()

	// The full stream must remain readable from the survivors.
	cur, err := d.Query(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, cur)
	if len(got) != 300 {
		t.Fatalf("post-drain query returned %d events, want 300", len(got))
	}
	// And every key must now be fully replicated among the survivors:
	// RF=2 copies of every event across the remaining shards.
	var total uint64
	for _, l := range locals {
		if l == victim {
			continue
		}
		total += l.Events()
	}
	if total < 600 {
		t.Fatalf("survivors hold %d copies, want >= 600 (300 events × RF 2)", total)
	}
}

func TestAddShardRoutesNewWrites(t *testing.T) {
	d, _ := newTestCluster(t, 3, Config{Replication: 2, Gate: gateOff()})
	if res := d.Ingest("", events(100, 1, 40, 41, 42, 43)); res.Acked != 100 {
		t.Fatalf("seed ingest: %+v", res)
	}
	extra := newTestShard(t, "shard-99")
	rep, err := d.AddShard(extra)
	if err != nil {
		t.Fatal(err)
	}
	// The join rebalances: the newcomer's hash ranges arrive before
	// AddShard returns (40 TIDs on a 3→4 ring always move something).
	if rep.Moved == 0 || rep.Failed != 0 {
		t.Fatalf("join rebalance report %+v, want Moved > 0, Failed 0", rep)
	}
	if _, err := d.AddShard(extra); err == nil {
		t.Fatal("duplicate AddShard accepted")
	}
	if res := d.Ingest("", events(100, 1000, 40, 41, 42, 43)); res.Acked != 100 {
		t.Fatalf("post-add ingest: %+v", res)
	}
	// Old and new events both remain fully queryable across the ring.
	cur, err := d.Query(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, cur); len(got) != 200 {
		t.Fatalf("query after add returned %d events, want 200", len(got))
	}
	info := d.Info()
	if len(info.Shards) != 4 {
		t.Fatalf("Info lists %d shards, want 4", len(info.Shards))
	}
}

// TestAddDrainRemoveLosesNothing is the operator sequence that bit in
// practice: join a shard (ownership moves, data must follow), drain an
// original, then crash-remove another. If the join did not rebalance,
// keys whose placement moved to the newcomer would silently sit one
// replica short after the drain — drain trusts the ring when it skips
// owners that "already" hold a key — and the crash-removal would lose
// them. Every acked event must survive all three reshapes.
func TestAddDrainRemoveLosesNothing(t *testing.T) {
	d, _ := newTestCluster(t, 3, Config{Replication: 2, Gate: gateOff()})
	tids := make([]uint32, 32)
	for i := range tids {
		tids[i] = uint32(100 + i)
	}
	if res := d.Ingest("", events(400, 1, tids...)); res.Acked != 400 {
		t.Fatalf("seed ingest: %+v", res)
	}
	if _, err := d.AddShard(newTestShard(t, "shard-99")); err != nil {
		t.Fatal(err)
	}
	if _, rep, err := d.DrainShard("shard-01"); err != nil {
		t.Fatal(err)
	} else if rep.Failed != 0 {
		t.Fatalf("drain report %+v, want Failed 0", rep)
	}
	if _, err := d.RemoveShard("shard-02"); err != nil {
		t.Fatal(err)
	}
	cur, err := d.Query(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, cur)
	if len(got) != 400 {
		t.Fatalf("query after add+drain+remove returned %d events, want 400", len(got))
	}
	for i := range got {
		if got[i].Stamp != uint64(i+1) {
			t.Fatalf("stamp %d at position %d, want %d", got[i].Stamp, i, i+1)
		}
	}
}

func TestRemoveShardErrors(t *testing.T) {
	d, _ := newTestCluster(t, 2, Config{Replication: 2, Gate: gateOff()})
	if _, err := d.RemoveShard("nope"); err == nil {
		t.Fatal("removing unknown shard accepted")
	}
	if _, _, err := d.DrainShard("nope"); err == nil {
		t.Fatal("draining unknown shard accepted")
	}
}

func TestShardBusyBackpressure(t *testing.T) {
	st, err := store.OpenBackend(backend.NewObject(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewLocalShard(LocalConfig{Name: "s", Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if err := sh.Ingest(events(10, 1, 7)); err != nil {
		t.Fatal(err)
	}
	sh.Kill()
	if err := sh.Ingest(events(10, 100, 7)); !errors.Is(err, ErrShardDown) {
		t.Fatalf("ingest after kill: %v, want ErrShardDown", err)
	}
	if _, err := sh.Query(store.Query{}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("query after kill: %v, want ErrShardDown", err)
	}
	if sh.Healthy() {
		t.Fatal("killed shard reports healthy")
	}
}
