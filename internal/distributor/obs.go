package distributor

import (
	"runtime"

	"btrace/internal/obs"
)

// distObs mirrors the distributor's counters into obs primitives,
// following the gateObs pattern: allocated separately from the
// Distributor so the registry's collector closure never pins it, with a
// finalizer folding the series into retired totals.
type distObs struct {
	batches     *obs.Counter
	seen        *obs.Counter
	throttled   *obs.Counter
	gateDropped *obs.Counter
	acked       *obs.Counter
	refused     *obs.Counter

	replicaErrors *obs.Counter
	retries       *obs.Counter
	hedges        *obs.Counter
	drainMoved    *obs.Counter

	shards      obs.Gauge
	replication obs.Gauge
}

func newDistObs() *distObs {
	return &distObs{
		batches:       obs.NewCounter(4),
		seen:          obs.NewCounter(4),
		throttled:     obs.NewCounter(4),
		gateDropped:   obs.NewCounter(4),
		acked:         obs.NewCounter(4),
		refused:       obs.NewCounter(4),
		replicaErrors: obs.NewCounter(4),
		retries:       obs.NewCounter(4),
		hedges:        obs.NewCounter(4),
		drainMoved:    obs.NewCounter(4),
	}
}

// collect emits the distributor's series; runs under the registry lock
// and must not reference the Distributor.
func (o *distObs) collect(e *obs.Emitter) {
	e.Counter("btrace_distributor_batches_total", "ingest batches offered to the distributor", o.batches.Load())
	e.Counter("btrace_distributor_events_seen_total", "events offered to the distributor", o.seen.Load())
	e.Counter("btrace_distributor_events_throttled_total", "events dropped by per-tenant quota overrides", o.throttled.Load())
	e.Counter("btrace_distributor_events_gate_dropped_total", "events dropped by the shared overload gate", o.gateDropped.Load())
	e.Counter("btrace_distributor_events_acked_total", "events durably applied on a replica quorum", o.acked.Load())
	e.Counter("btrace_distributor_events_refused_total", "events that failed quorum after retries and hedging", o.refused.Load())
	e.Counter("btrace_distributor_replica_errors_total", "replica deliveries that failed after retries", o.replicaErrors.Load())
	e.Counter("btrace_distributor_replica_retries_total", "replica delivery re-attempts", o.retries.Load())
	e.Counter("btrace_distributor_hedges_total", "deliveries hedged to a non-owner candidate", o.hedges.Load())
	e.Counter("btrace_distributor_drain_moved_events_total", "events re-placed by shard drains", o.drainMoved.Load())
	e.Gauge("btrace_distributor_shards", "shards in the ring", float64(o.shards.Load()))
	e.Gauge("btrace_distributor_replication", "configured replication factor", float64(o.replication.Load()))
}

// registerObs wires the mirror into the process-wide registry; the
// finalizer folds the series when the Distributor becomes unreachable
// (tests build many).
func (d *Distributor) registerObs() {
	reg := obs.Default()
	id := reg.Register(d.obs.collect)
	runtime.SetFinalizer(d, func(*Distributor) { reg.Fold(id) })
}
