// Package bbq implements the global-buffer baseline tracer: a block-based
// bounded queue (BBQ, USENIX ATC'22 [45]) used in overwrite mode as a
// single shared trace buffer, the way the paper's Fig. 1 baseline uses it.
//
// All producers on all cores share one allocation cursor, so BBQ achieves
// ~100% buffer utilization and a near-ideal latest fragment, but every
// write contends on the same cache lines, giving it the highest recording
// latency of all tracers (§5.2, Table 2) — and a producer advancing onto a
// block still held by a preempted writer must wait (Table 1:
// "Availability: Blocking").
package bbq

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"btrace/internal/tracer"
)

// TracerName is the registry name of the BBQ baseline.
const TracerName = "bbq"

const (
	headerSize       = tracer.BlockHeaderSize
	defaultBlockSize = 4096
)

// block is one BBQ data block. Like BTrace's metadata, allocated and
// committed pack (version, offset/count); unlike BTrace there is exactly
// one metadata word pair per data block and a single global head shared by
// every producer.
type block struct {
	allocated atomic.Uint64 // version<<32 | byte offset
	committed atomic.Uint64 // version<<32 | committed byte count
	_         [14]uint64
}

func pack(vsn, val uint32) uint64      { return uint64(vsn)<<32 | uint64(val) }
func unpack(w uint64) (uint32, uint32) { return uint32(w >> 32), uint32(w) }

// Queue is a BBQ in overwrite mode holding variable-size trace records.
type Queue struct {
	blockSize int
	nBlocks   int
	buf       []byte
	blocks    []block
	// head is the global position (monotonic); head % nBlocks is the
	// block every producer currently allocates from. This single word is
	// the contention point that distinguishes BBQ from BTrace.
	head atomic.Uint64

	writes       atomic.Uint64
	bytesWritten atomic.Uint64
	dummyBytes   atomic.Uint64
	blocked      atomic.Uint64 // spin episodes waiting for stragglers
	casRetries   atomic.Uint64
}

// New creates a BBQ with the given total budget split into blockSize
// blocks. blockSize 0 selects the 4 KiB default.
func New(totalBytes, blockSize int) (*Queue, error) {
	if blockSize == 0 {
		blockSize = defaultBlockSize
	}
	if blockSize < 64 || blockSize%tracer.Align != 0 {
		return nil, fmt.Errorf("bbq: invalid block size %d", blockSize)
	}
	n := totalBytes / blockSize
	if n < 2 {
		return nil, fmt.Errorf("bbq: budget %d B too small for two blocks of %d B", totalBytes, blockSize)
	}
	q := &Queue{
		blockSize: blockSize,
		nBlocks:   n,
		buf:       make([]byte, n*blockSize),
		blocks:    make([]block, n),
	}
	q.init()
	return q, nil
}

func (q *Queue) init() {
	bs := uint32(q.blockSize)
	for i := range q.blocks {
		q.blocks[i].allocated.Store(pack(0, bs))
		q.blocks[i].committed.Store(pack(0, bs))
	}
	q.head.Store(uint64(q.nBlocks)) // version 1 begins at wrap
}

func (q *Queue) blockData(i int) []byte {
	off := i * q.blockSize
	return q.buf[off : off+q.blockSize : off+q.blockSize]
}

// Name implements tracer.Tracer.
func (q *Queue) Name() string { return TracerName }

// TotalBytes implements tracer.Tracer.
func (q *Queue) TotalBytes() int { return q.nBlocks * q.blockSize }

// Stats implements tracer.Tracer.
func (q *Queue) Stats() tracer.Stats {
	return tracer.Stats{
		Writes:       q.writes.Load(),
		BytesWritten: q.bytesWritten.Load(),
		DummyBytes:   q.dummyBytes.Load(),
		CASRetries:   q.casRetries.Load(),
	}
}

// Blocked returns how many times a producer had to spin-wait for a
// straggling writer while advancing the shared head.
func (q *Queue) Blocked() uint64 { return q.blocked.Load() }

// Reset implements tracer.Tracer.
func (q *Queue) Reset() {
	for i := range q.buf {
		q.buf[i] = 0
	}
	q.init()
	q.writes.Store(0)
	q.bytesWritten.Store(0)
	q.dummyBytes.Store(0)
	q.blocked.Store(0)
	q.casRetries.Store(0)
}

// Write implements tracer.Tracer. Every producer allocates from the single
// shared head block with a fetch-and-add; when the block is exhausted the
// producer advances the head, waiting (blocking) for any straggling writer
// on the next block before reusing it — BBQ in overwrite mode never drops
// the newest entry, it stalls instead.
func (q *Queue) Write(p tracer.Proc, e *tracer.Entry) error {
	size := uint32(e.WireSize())
	bs := uint32(q.blockSize)
	if size > bs-headerSize {
		return fmt.Errorf("%w: entry %d B, block capacity %d B", tracer.ErrTooLarge, size, bs-headerSize)
	}
	for {
		head := q.head.Load()
		idx := int(head % uint64(q.nBlocks))
		vsn := uint32(head / uint64(q.nBlocks))
		blk := &q.blocks[idx]

		w := blk.allocated.Add(uint64(size))
		aVsn, aEnd := unpack(w)
		aPos := aEnd - size
		switch {
		case aVsn == vsn && aEnd <= bs:
			data := q.blockData(idx)
			p.MaybePreempt(tracer.PreemptBeforeCopy)
			if _, err := tracer.EncodeEvent(data[aPos:aEnd], e); err != nil {
				return err
			}
			p.MaybePreempt(tracer.PreemptBeforeConfirm)
			q.commit(blk, vsn, size)
			q.writes.Add(1)
			q.bytesWritten.Add(uint64(size))
			return nil
		case aVsn == vsn && aPos < bs:
			// Straddle: this producer owns the tail; dummy-fill, commit,
			// then advance the shared head.
			tracer.EncodeDummy(q.blockData(idx)[aPos:bs], int(bs-aPos))
			q.dummyBytes.Add(uint64(bs - aPos))
			q.commit(blk, vsn, bs-aPos)
			q.advanceHead(p, head)
		default:
			// Block already full (or a stale version raced us): advance.
			if aVsn != vsn && aPos < bs {
				// We stole space in a reinitialized block (our FAA landed
				// after a wrap producer reset it). Repair it so the block
				// can still fill; otherwise head advancement would wait
				// forever for the stolen bytes.
				n := aEnd
				if n > bs {
					n = bs
				}
				tracer.EncodeDummy(q.blockData(idx)[aPos:n], int(n-aPos))
				q.dummyBytes.Add(uint64(n - aPos))
				q.commit(blk, aVsn, n-aPos)
			}
			q.advanceHead(p, head)
		}
	}
}

// commit adds n committed bytes to version vsn of blk.
func (q *Queue) commit(blk *block, vsn, n uint32) {
	for {
		c := blk.committed.Load()
		cVsn, cCnt := unpack(c)
		if cVsn != vsn {
			panic(fmt.Sprintf("bbq: commit version moved %d -> %d", vsn, cVsn))
		}
		if blk.committed.CompareAndSwap(c, pack(vsn, cCnt+n)) {
			return
		}
		q.casRetries.Add(1)
	}
}

// advanceHead moves the shared head from oldHead to the next block,
// blocking until the next block's previous occupancy is fully committed
// (BBQ's overwrite mode waits for stragglers rather than dropping data).
func (q *Queue) advanceHead(p tracer.Proc, oldHead uint64) {
	if q.head.Load() != oldHead {
		return // someone advanced already
	}
	bs := uint32(q.blockSize)
	next := oldHead + 1
	idx := int(next % uint64(q.nBlocks))
	vsn := uint32(next / uint64(q.nBlocks))
	blk := &q.blocks[idx]

	// Wait for the previous occupancy of the next block to be fully
	// committed: the Blocking availability of Table 1. Blocks may lag by
	// several versions when indices were passed over, so the lock CAS
	// starts from whatever fully committed version is observed.
	var prevVsn uint32
	spun := false
	for {
		cVsn, cCnt := unpack(blk.committed.Load())
		if cVsn >= vsn {
			// Another producer already reinitialized it; retry from the
			// top with a fresh head.
			return
		}
		if cCnt >= bs {
			prevVsn = cVsn
			break
		}
		if !spun {
			spun = true
			q.blocked.Add(1)
		}
		p.MaybePreempt(tracer.PreemptOutside)
		runtime.Gosched()
	}

	// Reinitialize the block for the new version: lock via committed,
	// write the header, reset allocated.
	if !blk.committed.CompareAndSwap(pack(prevVsn, bs), pack(vsn, 0)) {
		q.casRetries.Add(1)
		return
	}
	tracer.EncodeBlockHeader(q.blockData(idx), next)
	for {
		a := blk.allocated.Load()
		if blk.allocated.CompareAndSwap(a, pack(vsn, headerSize)) {
			break
		}
		q.casRetries.Add(1)
	}
	q.commit(blk, vsn, headerSize)
	if !q.head.CompareAndSwap(oldHead, next) {
		q.casRetries.Add(1)
	}
}

// ReadAll implements tracer.Tracer: a quiescent snapshot ordered oldest to
// newest.
func (q *Queue) ReadAll() ([]tracer.Entry, error) {
	head := q.head.Load()
	bs := uint32(q.blockSize)
	start := uint64(q.nBlocks)
	n := uint64(q.nBlocks)
	if head > n && head-n > start {
		start = head - n
	}
	var out []tracer.Entry
	for pos := start; pos <= head; pos++ {
		idx := int(pos % n)
		vsn := uint32(pos / n)
		blk := &q.blocks[idx]
		cVsn, cCnt := unpack(blk.committed.Load())
		aVsn, aPos := unpack(blk.allocated.Load())
		if cVsn != vsn || aVsn != vsn || cCnt != min32(aPos, bs) {
			continue // overwritten, or still racing
		}
		limit := min32(aPos, bs)
		recs, _ := tracer.DecodeAll(q.blockData(idx)[:limit])
		for _, r := range recs {
			if r.Kind == tracer.KindEvent {
				ev := r.Event
				if ev.Payload != nil {
					ev.Payload = append([]byte(nil), ev.Payload...)
				}
				out = append(out, ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, nil
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func init() {
	tracer.Register(TracerName, func(totalBytes, cores, threads int) (tracer.Tracer, error) {
		return New(totalBytes, 0)
	})
}

// NewCursor implements tracer.CursorSource. BBQ's read path is a
// quiescent snapshot, so the generic stamp-resume adapter applies.
func (q *Queue) NewCursor() tracer.Cursor { return tracer.NewSnapshotCursor(q.ReadAll) }

var _ tracer.CursorSource = (*Queue)(nil)
