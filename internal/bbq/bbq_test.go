package bbq

import (
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/tracer"
	"btrace/internal/tracer/tracertest"
)

func TestConformance(t *testing.T) {
	tracertest.Run(t, tracertest.Config{
		New: func(total, cores, threads int) (tracer.Tracer, error) {
			return New(total, 512)
		},
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1024, 63); err == nil {
		t.Error("unaligned block size: expected error")
	}
	if _, err := New(512, 512); err == nil {
		t.Error("single-block budget: expected error")
	}
	q, err := New(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalBytes() != 1<<20 {
		t.Errorf("TotalBytes = %d", q.TotalBytes())
	}
}

// TestGlobalBufferFullUtilization: unlike per-core tracers, a single
// producer can use (nearly) the whole buffer — the property that makes BBQ
// the paper's retention yardstick (Table 1: utilization 1).
func TestGlobalBufferFullUtilization(t *testing.T) {
	q, err := New(64<<10, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := &tracer.FixedProc{CoreID: 0}
	wire := tracer.EventWireSize(16)
	n := 64 << 10 / wire * 3
	for i := 1; i <= n; i++ {
		if err := q.Write(p, &tracer.Entry{Stamp: uint64(i), Payload: make([]byte, 16)}); err != nil {
			t.Fatal(err)
		}
	}
	es, _ := q.ReadAll()
	retained := 0
	for _, e := range es {
		retained += e.WireSize()
	}
	// At least ~90% of the budget should hold live entries (headers and
	// tail dummies account for the rest).
	if retained < 64<<10*9/10 {
		t.Errorf("retained %d bytes of %d budget", retained, 64<<10)
	}
}

// TestBlockingOnStraggler: BBQ's availability policy is blocking — a
// producer wrapping onto a block held by a preempted writer waits for it
// (Table 1). The wait must end as soon as the straggler confirms.
func TestBlockingOnStraggler(t *testing.T) {
	q, err := New(2*512, 512) // two blocks: wrap pressure is immediate
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	held := make(chan struct{})
	var once sync.Once
	p0 := &hookProc{core: 0, hook: func(pt tracer.PreemptPoint) {
		if pt == tracer.PreemptBeforeConfirm {
			once.Do(func() {
				close(held)
				<-release
			})
		}
	}}
	go func() {
		if err := q.Write(p0, &tracer.Entry{Stamp: 1, Payload: make([]byte, 8)}); err != nil {
			t.Errorf("straggler: %v", err)
		}
	}()
	<-held

	// A second producer that wraps must block until the straggler is
	// released — never drop, never corrupt.
	var wrote atomic.Uint64
	doneWriter := make(chan struct{})
	go func() {
		defer close(doneWriter)
		p1 := &tracer.FixedProc{CoreID: 1, TID: 1}
		for i := 2; i <= 60; i++ {
			if err := q.Write(p1, &tracer.Entry{Stamp: uint64(i), Payload: make([]byte, 8)}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			wrote.Store(uint64(i))
		}
	}()

	// Wait until the writer visibly stalls (blocked counter rises).
	for q.Blocked() == 0 {
		select {
		case <-doneWriter:
			t.Fatal("writer finished without ever blocking")
		default:
		}
	}
	stalledAt := wrote.Load()
	close(release)
	<-doneWriter
	if wrote.Load() != 60 {
		t.Fatalf("writer stopped at %d", wrote.Load())
	}
	if stalledAt == 60 {
		t.Fatal("no observable stall")
	}
	es, _ := q.ReadAll()
	if len(es) == 0 || es[len(es)-1].Stamp != 60 {
		t.Fatalf("newest entry missing: %v", es)
	}
}

// hookProc delivers preemption points to a callback.
type hookProc struct {
	core int
	tid  int
	hook func(tracer.PreemptPoint)
}

func (p *hookProc) Core() int   { return p.core }
func (p *hookProc) Thread() int { return p.tid }
func (p *hookProc) MaybePreempt(pt tracer.PreemptPoint) {
	if p.hook != nil {
		p.hook(pt)
	}
}
func (p *hookProc) DisablePreemption() func() { return func() {} }

func TestRegistered(t *testing.T) {
	tr, err := tracer.New(TracerName, 1<<20, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "bbq" {
		t.Errorf("Name = %q", tr.Name())
	}
}
