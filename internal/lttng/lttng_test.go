package lttng

import (
	"errors"
	"sync"
	"testing"

	"btrace/internal/tracer"
	"btrace/internal/tracer/tracertest"
)

func TestConformance(t *testing.T) {
	tracertest.Run(t, tracertest.Config{
		New: func(total, cores, threads int) (tracer.Tracer, error) {
			return New(total, cores, 512)
		},
		DropsNewest: true,
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1<<20, 0, 0); err == nil {
		t.Error("zero cores: expected error")
	}
	if _, err := New(1<<20, 4, 60); err == nil {
		t.Error("bad sub-buffer size: expected error")
	}
	if _, err := New(512, 4, 512); err == nil {
		t.Error("tiny budget: expected error")
	}
}

// hookProc delivers preemption points to a callback.
type hookProc struct {
	core int
	tid  int
	hook func(tracer.PreemptPoint)
}

func (p *hookProc) Core() int   { return p.core }
func (p *hookProc) Thread() int { return p.tid }
func (p *hookProc) MaybePreempt(pt tracer.PreemptPoint) {
	if p.hook != nil {
		p.hook(pt)
	}
}
func (p *hookProc) DisablePreemption() func() { return func() {} }

// TestDropsNewestOnStraggler: when a preempted writer holds a sub-buffer,
// a wrapping producer discards the newest events instead of blocking —
// the defining LTTng behavior the paper contrasts with BTrace (§2.2).
func TestDropsNewestOnStraggler(t *testing.T) {
	tr, err := New(2*512, 1, 512) // one core, two sub-buffers
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	held := make(chan struct{})
	var once sync.Once
	p0 := &hookProc{core: 0, hook: func(pt tracer.PreemptPoint) {
		if pt == tracer.PreemptBeforeConfirm {
			once.Do(func() {
				close(held)
				<-release
			})
		}
	}}
	go func() {
		if err := tr.Write(p0, &tracer.Entry{Stamp: 1, Payload: make([]byte, 8)}); err != nil {
			t.Errorf("straggler: %v", err)
		}
	}()
	<-held

	// Another thread fills the remaining space; once both sub-buffers
	// are exhausted, writes must start failing with ErrDropped.
	p1 := &tracer.FixedProc{CoreID: 0, TID: 1}
	drops := 0
	for i := 2; i <= 100; i++ {
		err := tr.Write(p1, &tracer.Entry{Stamp: uint64(i), Payload: make([]byte, 8)})
		if errors.Is(err, tracer.ErrDropped) {
			drops++
		} else if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if drops == 0 {
		t.Fatal("no drops while a straggler held a sub-buffer")
	}
	if tr.Stats().Dropped != uint64(drops) {
		t.Errorf("Dropped stat = %d, want %d", tr.Stats().Dropped, drops)
	}
	close(release)

	// After the straggler commits, writing works again.
	for {
		err := tr.Write(p1, &tracer.Entry{Stamp: 999, Payload: make([]byte, 8)})
		if err == nil {
			break
		}
		if !errors.Is(err, tracer.ErrDropped) {
			t.Fatal(err)
		}
	}
	es, _ := tr.ReadAll()
	var newest uint64
	for _, e := range es {
		if e.Stamp > newest {
			newest = e.Stamp
		}
	}
	if newest != 999 {
		t.Fatalf("newest retained %d, want 999", newest)
	}
}

// TestPerCoreIsolation mirrors the ftrace test: per-core buffers mean an
// idle core's stale data survives while a busy core overwrites its own.
func TestPerCoreIsolation(t *testing.T) {
	tr, err := New(8<<10, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < 4; c++ {
		p := &tracer.FixedProc{CoreID: c, TID: c}
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(c), Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	p0 := &tracer.FixedProc{CoreID: 0}
	for i := 100; i < 1100; i++ {
		if err := tr.Write(p0, &tracer.Entry{Stamp: uint64(i), Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	es, _ := tr.ReadAll()
	found := map[uint64]bool{}
	for _, e := range es {
		found[e.Stamp] = true
	}
	for c := uint64(1); c < 4; c++ {
		if !found[c] {
			t.Errorf("idle core %d's entry overwritten", c)
		}
	}
	if found[100] {
		t.Error("busy core retained oldest entry")
	}
}

func TestRegistered(t *testing.T) {
	tr, err := tracer.New(TracerName, 1<<20, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "lttng" {
		t.Errorf("Name = %q", tr.Name())
	}
}
