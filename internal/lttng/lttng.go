// Package lttng implements the per-core userspace baseline tracer modeled
// on LTTng-UST's ring buffer (libringbuffer): per-core buffers divided
// into sub-buffers, space reservation through a compare-and-swap loop on
// the buffer's write offset, and per-sub-buffer commit counters.
//
// Being a userspace tracer, LTTng cannot disable preemption. When a
// writer is scheduled out between reserve and commit, the sub-buffer it
// occupies never fully commits; a producer wrapping around onto such a
// sub-buffer cannot reuse it and — rather than blocking — LTTng loses the
// newest events (§2.2: "other tracers, such as LTTng, sacrifice buffer
// availability by discarding the newest data"). The paper's Fig. 1b shows
// the resulting extra gaps under oversubscription.
package lttng

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"btrace/internal/tracer"
)

// TracerName is the registry name of the LTTng baseline.
const TracerName = "lttng"

const defaultSubBufSize = 4096

func pack(vsn, val uint32) uint64      { return uint64(vsn)<<32 | uint64(val) }
func unpack(w uint64) (uint32, uint32) { return uint32(w >> 32), uint32(w) }

// subbuf is one sub-buffer's commit state.
type subbuf struct {
	// committed packs (round, committed byte count). The sub-buffer is
	// deliverable when the count reaches the sub-buffer size.
	committed atomic.Uint64
	_         [15]uint64
}

// ring is one core's buffer: nSub sub-buffers of sbSize bytes.
type ring struct {
	data []byte
	subs []subbuf
	// woff is the monotonic write offset in bytes; woff / sbSize is the
	// current sub-buffer position. Reservation CASes this word (the
	// LTTng-UST reserve path uses the same cmpxchg loop).
	woff atomic.Uint64
	_    [8]uint64
}

// Tracer is the per-core LTTng-like tracer.
type Tracer struct {
	sbSize int
	nSub   int
	rings  []*ring

	writes       atomic.Uint64
	bytesWritten atomic.Uint64
	dropped      atomic.Uint64
	dummyBytes   atomic.Uint64
	casRetries   atomic.Uint64
}

// New creates a tracer with the total budget split across cores, each
// core's share divided into sub-buffers of sbSize bytes (0 selects 4 KiB).
func New(totalBytes, cores, sbSize int) (*Tracer, error) {
	if sbSize == 0 {
		sbSize = defaultSubBufSize
	}
	if cores <= 0 {
		return nil, fmt.Errorf("lttng: cores must be positive, got %d", cores)
	}
	if sbSize < 64 || sbSize%tracer.Align != 0 {
		return nil, fmt.Errorf("lttng: invalid sub-buffer size %d", sbSize)
	}
	perCore := totalBytes / cores
	nSub := perCore / sbSize
	if nSub < 2 {
		return nil, fmt.Errorf("lttng: budget %d B gives %d sub-buffers/core of %d B, need >= 2",
			totalBytes, nSub, sbSize)
	}
	t := &Tracer{sbSize: sbSize, nSub: nSub, rings: make([]*ring, cores)}
	for c := range t.rings {
		r := &ring{
			data: make([]byte, nSub*sbSize),
			subs: make([]subbuf, nSub),
		}
		t.initRing(r)
		t.rings[c] = r
	}
	return t, nil
}

func (t *Tracer) initRing(r *ring) {
	for i := range r.subs {
		r.subs[i].committed.Store(pack(0, uint32(t.sbSize)))
	}
	r.woff.Store(uint64(t.nSub * t.sbSize)) // round 1 starts at wrap
}

// Name implements tracer.Tracer.
func (t *Tracer) Name() string { return TracerName }

// TotalBytes implements tracer.Tracer.
func (t *Tracer) TotalBytes() int { return len(t.rings) * t.nSub * t.sbSize }

// Stats implements tracer.Tracer.
func (t *Tracer) Stats() tracer.Stats {
	return tracer.Stats{
		Writes:       t.writes.Load(),
		BytesWritten: t.bytesWritten.Load(),
		Dropped:      t.dropped.Load(),
		DummyBytes:   t.dummyBytes.Load(),
		CASRetries:   t.casRetries.Load(),
	}
}

// Reset implements tracer.Tracer.
func (t *Tracer) Reset() {
	for _, r := range t.rings {
		for i := range r.data {
			r.data[i] = 0
		}
		t.initRing(r)
	}
	t.writes.Store(0)
	t.bytesWritten.Store(0)
	t.dropped.Store(0)
	t.dummyBytes.Store(0)
	t.casRetries.Store(0)
}

// sbPos decomposes a monotonic byte offset into sub-buffer index, round
// and offset within the sub-buffer.
func (t *Tracer) sbPos(off uint64) (idx int, round uint32, in int) {
	sb := off / uint64(t.sbSize)
	return int(sb % uint64(t.nSub)), uint32(sb / uint64(t.nSub)), int(off % uint64(t.sbSize))
}

// Write implements tracer.Tracer: CAS-loop space reservation in the
// calling core's buffer, dropping the event when the target sub-buffer is
// still held by a straggling (preempted) writer.
func (t *Tracer) Write(p tracer.Proc, e *tracer.Entry) error {
	size := e.WireSize()
	if size > t.sbSize {
		return fmt.Errorf("%w: entry %d B, sub-buffer %d B", tracer.ErrTooLarge, size, t.sbSize)
	}
	r := t.rings[p.Core()]

	// Reserve: CAS loop on the write offset (lib_ring_buffer_reserve).
	var (
		resOff uint64
		padOff uint64 // where boundary padding starts (0 = none)
		padLen int
	)
	for {
		old := r.woff.Load()
		idx, round, in := t.sbPos(old)
		start := old
		padOff, padLen = 0, 0
		if in+size > t.sbSize {
			// The record does not fit the current sub-buffer: pad the
			// tail and start at the next sub-buffer boundary.
			padOff, padLen = old, t.sbSize-in
			start = old + uint64(padLen)
			idx, round, _ = t.sbPos(start)
		}
		// If the target sub-buffer's previous round is not fully
		// committed, a straggler still owns it: discard the event
		// (drop-newest) rather than corrupt or block.
		if in == 0 || padLen > 0 {
			cRnd, cCnt := unpack(r.subs[idx].committed.Load())
			switch {
			case cRnd == round && cCnt <= uint32(t.sbSize):
				// Already reinitialized by a concurrent reserver; fine.
			case cRnd+1 == round && cCnt == uint32(t.sbSize):
				// Fully committed previous round: reusable.
			default:
				t.dropped.Add(1)
				return tracer.ErrDropped
			}
		}
		if r.woff.CompareAndSwap(old, start+uint64(size)) {
			resOff = start
			break
		}
		t.casRetries.Add(1)
	}

	// Pad the abandoned tail of the previous sub-buffer.
	if padLen > 0 {
		pIdx, pRound, pIn := t.sbPos(padOff)
		if padLen >= tracer.Align {
			tracer.EncodeDummy(r.data[pIdx*t.sbSize+pIn:pIdx*t.sbSize+pIn+padLen], padLen)
		}
		t.dummyBytes.Add(uint64(padLen))
		t.commit(r, pIdx, pRound, uint32(padLen))
	}

	idx, round, in := t.sbPos(resOff)
	if in == 0 {
		// First reserver of a sub-buffer reinitializes its commit state
		// (switch_new_start): CAS from the fully committed old round.
		sb := &r.subs[idx]
		for {
			c := sb.committed.Load()
			cRnd, _ := unpack(c)
			if cRnd >= round {
				break
			}
			if sb.committed.CompareAndSwap(c, pack(round, 0)) {
				break
			}
			t.casRetries.Add(1)
		}
	}
	base := idx * t.sbSize
	p.MaybePreempt(tracer.PreemptBeforeCopy)
	if _, err := tracer.EncodeEvent(r.data[base+in:base+in+size], e); err != nil {
		return err
	}
	p.MaybePreempt(tracer.PreemptBeforeConfirm)
	t.commit(r, idx, round, uint32(size))
	t.writes.Add(1)
	t.bytesWritten.Add(uint64(size))
	return nil
}

// commit adds n committed bytes to the sub-buffer's round counter. The
// sub-buffer is reinitialized by the thread whose reservation starts at
// its first byte; a commit arriving before that reinitialization waits for
// it (the window is a few instructions in the reserver).
func (t *Tracer) commit(r *ring, idx int, round uint32, n uint32) {
	sb := &r.subs[idx]
	for {
		c := sb.committed.Load()
		cRnd, cCnt := unpack(c)
		if cRnd > round {
			return // sub-buffer already moved past our round
		}
		if cRnd < round {
			runtime.Gosched() // reserver has not reinitialized yet
			continue
		}
		if sb.committed.CompareAndSwap(c, pack(round, cCnt+n)) {
			return
		}
		t.casRetries.Add(1)
	}
}

// ReadAll implements tracer.Tracer: a quiescent snapshot of all cores'
// fully or partially committed sub-buffers, ordered by logic stamp.
func (t *Tracer) ReadAll() ([]tracer.Entry, error) {
	var out []tracer.Entry
	sbs := uint64(t.sbSize)
	for _, r := range t.rings {
		woff := r.woff.Load()
		curSB := woff / sbs
		start := uint64(t.nSub)
		if curSB > uint64(t.nSub) && curSB-uint64(t.nSub) > start {
			start = curSB - uint64(t.nSub)
		}
		for sb := start; sb <= curSB; sb++ {
			idx := int(sb % uint64(t.nSub))
			round := uint32(sb / uint64(t.nSub))
			cRnd, cCnt := unpack(r.subs[idx].committed.Load())
			if cRnd != round {
				continue
			}
			limit := int(cCnt)
			if sb == curSB {
				limit = int(woff % sbs)
				if uint32(limit) != cCnt {
					continue // uncommitted writer in the current sub-buffer
				}
			} else if cCnt != uint32(t.sbSize) {
				continue // never fully committed (straggler hole)
			} else {
				limit = t.sbSize
			}
			recs, _ := tracer.DecodeAll(r.data[idx*t.sbSize : idx*t.sbSize+limit])
			for _, rec := range recs {
				if rec.Kind == tracer.KindEvent {
					ev := rec.Event
					if ev.Payload != nil {
						ev.Payload = append([]byte(nil), ev.Payload...)
					}
					out = append(out, ev)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, nil
}

func init() {
	tracer.Register(TracerName, func(totalBytes, cores, threads int) (tracer.Tracer, error) {
		return New(totalBytes, cores, 0)
	})
}

// NewCursor implements tracer.CursorSource. LTTng's read path is a
// quiescent snapshot, so the generic stamp-resume adapter applies.
func (t *Tracer) NewCursor() tracer.Cursor { return tracer.NewSnapshotCursor(t.ReadAll) }

var _ tracer.CursorSource = (*Tracer)(nil)
