// Package report renders the benchmark harness's tables and figures as
// ASCII: aligned tables (Table 1, Table 2), retention maps (Fig. 1), bar
// charts (Fig. 2, Fig. 4), box plots (Fig. 6, Fig. 10) and line series
// (Fig. 3, Fig. 11).
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple aligned-column table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(t.Headers)
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RetentionBar renders a Fig. 1 retention map: each cell aggregates a
// span of the last-N-written events; '#' fully retained, '.' partially,
// ' ' lost. Oldest left, newest right.
func RetentionBar(retained []bool, width int) string {
	if len(retained) == 0 || width <= 0 {
		return ""
	}
	if width > len(retained) {
		width = len(retained)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		lo := i * len(retained) / width
		hi := (i + 1) * len(retained) / width
		if hi == lo {
			hi = lo + 1
		}
		kept := 0
		for _, v := range retained[lo:hi] {
			if v {
				kept++
			}
		}
		switch {
		case kept == hi-lo:
			b.WriteByte('#')
		case kept == 0:
			b.WriteByte(' ')
		default:
			b.WriteByte('.')
		}
	}
	return b.String()
}

// Bar renders a horizontal bar scaled to width at value/max.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// BoxStats are five-number summaries for box plots.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box computes BoxStats over values.
func Box(values []float64) BoxStats {
	if len(values) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	q := func(f float64) float64 {
		idx := f * float64(len(s)-1)
		lo := int(idx)
		if lo >= len(s)-1 {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return BoxStats{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

// Render draws the box on a [0,max] axis of the given width.
func (b BoxStats) Render(max float64, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	pos := func(v float64) int {
		p := int(v / max * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	out := []byte(strings.Repeat(" ", width))
	for i := pos(b.Min); i <= pos(b.Max); i++ {
		out[i] = '-'
	}
	for i := pos(b.Q1); i <= pos(b.Q3); i++ {
		out[i] = '='
	}
	out[pos(b.Median)] = '|'
	return string(out)
}

// Series renders (x, y) pairs as aligned "x y" rows with a header, the
// plain form gnuplot and the paper's plotting scripts consume.
func Series(w io.Writer, title, xLabel, yLabel string, points [][2]float64) {
	fmt.Fprintf(w, "# %s\n# %s\t%s\n", title, xLabel, yLabel)
	for _, p := range points {
		fmt.Fprintf(w, "%.1f\t%.2f\n", p[0], p[1])
	}
}

// HumanBytes formats a byte count compactly (KiB/MiB).
func HumanBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
