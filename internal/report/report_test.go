package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 1000000.0)
	tb.AddRow("c", 0.123456)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, frag := range []string{"Title", "name", "value", "alpha", "3.14", "1000000", "0.123"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	w := len(lines[1])
	for i, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("line %d width %d != %d", i, len(l), w)
		}
	}
}

func TestRetentionBar(t *testing.T) {
	retained := []bool{true, true, false, false, true, false, true, true}
	bar := RetentionBar(retained, 4)
	if bar != "# .#" && bar != "#..#" {
		t.Errorf("bar = %q", bar)
	}
	if RetentionBar(nil, 10) != "" {
		t.Error("empty input")
	}
	if got := RetentionBar([]bool{true}, 10); got != "#" {
		t.Errorf("width capped: %q", got)
	}
	full := RetentionBar([]bool{true, true, true, true}, 2)
	if full != "##" {
		t.Errorf("full = %q", full)
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("Bar = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Error("clamp")
	}
	if Bar(1, 0, 10) != "" {
		t.Error("zero max")
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("box: %+v", b)
	}
	if Box(nil) != (BoxStats{}) {
		t.Error("empty box")
	}
	r := b.Render(5, 20)
	if len(r) != 20 || !strings.Contains(r, "|") || !strings.Contains(r, "=") {
		t.Errorf("render: %q", r)
	}
}

func TestSeries(t *testing.T) {
	var sb strings.Builder
	Series(&sb, "cdf", "ns", "%", [][2]float64{{10, 50}, {20, 100}})
	out := sb.String()
	if !strings.Contains(out, "# cdf") || !strings.Contains(out, "10.0\t50.00") {
		t.Errorf("series:\n%s", out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2048:    "2.0KiB",
		5 << 20: "5.00MiB",
		3 << 30: "3.00GiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
