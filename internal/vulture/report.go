// Package vulture continuously verifies a running btrace-serve: it
// writes known stamped traces through POST /ingest and reads every
// acked stamp back through each query surface — the /live tail, the
// sequential and parallel /store/query cursors, the BTQL filter and
// count() pipelines, and (once segments have aged into it) the cold
// columnar tier — alerting on loss, duplication or mis-ordering. The name follows the SRE tradition of "vulture"
// processes that circle a storage system probing for silently dropped
// writes: an ack is a durability promise, and this package exists to
// catch the promise being broken, continuously, in CI soak jobs and
// against live deployments alike.
package vulture

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Violation kinds.
const (
	KindLoss      = "loss"      // an acked stamp a read surface never returned
	KindDuplicate = "duplicate" // a stamp returned more than once by one read
	KindMisorder  = "misorder"  // stamps out of ascending order within one read
)

// maxViolations bounds the retained per-violation detail; past it only
// the counters grow (a broken store would otherwise fill memory with
// millions of identical complaints).
const maxViolations = 64

// Violation is one concrete broken promise, with enough detail to
// reproduce the probe that caught it.
type Violation struct {
	Surface string `json:"surface"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s]: %s", v.Surface, v.Kind, v.Detail)
}

// SurfaceStats aggregates one read surface's verification history.
type SurfaceStats struct {
	Checks     uint64 `json:"checks"`     // verification reads performed
	Events     uint64 `json:"events"`     // acked stamps confirmed present, in order, once
	Loss       uint64 `json:"loss"`       // acked stamps missing from a read
	Duplicates uint64 `json:"duplicates"` // stamps returned more than once
	Misorder   uint64 `json:"misorder"`   // ordering inversions observed
}

func (s SurfaceStats) clean() bool {
	return s.Loss == 0 && s.Duplicates == 0 && s.Misorder == 0
}

// Report accumulates a vulture run's evidence. All methods are safe for
// concurrent use; writers and per-surface readers share one report.
type Report struct {
	mu         sync.Mutex
	surfaces   map[string]*SurfaceStats
	violations []Violation

	// Write-side counters.
	BatchesSent   uint64 // batches POSTed to /ingest
	EventsAcked   uint64 // events the server took responsibility for
	EventsDropped uint64 // events attributably dropped pre-ack (quota, gate)
	EventsRefused uint64 // events refused (failed quorum) — retriable, not loss
	Backoffs      uint64 // 429/503 responses that triggered a retry wait

	// Live-tail accounting (the /live surface reports delivery and loss
	// through its own protocol rather than range reads).
	LiveDelivered uint64 // frames received on the live subscription
	LiveMissed    uint64 // events the hub reported dropping for this subscriber
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{surfaces: make(map[string]*SurfaceStats)}
}

func (r *Report) surface(name string) *SurfaceStats {
	s := r.surfaces[name]
	if s == nil {
		s = &SurfaceStats{}
		r.surfaces[name] = s
	}
	return s
}

func (r *Report) violate(surface, kind, format string, args ...any) {
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations,
			Violation{Surface: surface, Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}
}

// VerifyRange checks one read-back against the ack contract: stamps is
// what surface returned for the inclusive acked range [lo, hi], and
// every stamp in the range must appear exactly once, in ascending
// order. Returns true when the read was clean.
func (r *Report) VerifyRange(surface string, lo, hi uint64, stamps []uint64) bool {
	if hi < lo {
		return true
	}
	n := hi - lo + 1
	seen := make([]uint32, n)
	var loss, dups, misorder uint64
	var prev uint64
	for i, s := range stamps {
		if s < lo || s > hi {
			continue // not ours; range reads over shared stores may co-mingle
		}
		if i > 0 && s <= prev {
			misorder++
		}
		prev = s
		seen[s-lo]++
		if seen[s-lo] == 2 { // count each duplicated stamp once
			dups++
		}
	}
	for i := range seen {
		if seen[i] == 0 {
			loss++
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.surface(surface)
	st.Checks++
	st.Events += n - loss
	st.Loss += loss
	st.Duplicates += dups
	st.Misorder += misorder
	if loss > 0 {
		r.violate(surface, KindLoss, "range [%d, %d]: %d of %d acked stamps missing", lo, hi, loss, n)
	}
	if dups > 0 {
		r.violate(surface, KindDuplicate, "range [%d, %d]: %d stamps returned more than once", lo, hi, dups)
	}
	if misorder > 0 {
		r.violate(surface, KindMisorder, "range [%d, %d]: %d ordering inversions", lo, hi, misorder)
	}
	return loss == 0 && dups == 0 && misorder == 0
}

// VerifyCount holds a server-side aggregate count over the inclusive
// acked range [lo, hi] to the ack contract: got must equal the range
// size exactly. A shortfall is loss, an excess is duplication (a
// replica counted twice). Returns true when the count was exact.
func (r *Report) VerifyCount(surface string, lo, hi, got uint64) bool {
	if hi < lo {
		return true
	}
	n := hi - lo + 1
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.surface(surface)
	st.Checks++
	switch {
	case got < n:
		st.Events += got
		st.Loss += n - got
		r.violate(surface, KindLoss, "range [%d, %d]: count() saw %d of %d acked events", lo, hi, got, n)
	case got > n:
		st.Events += n
		st.Duplicates += got - n
		r.violate(surface, KindDuplicate, "range [%d, %d]: count() saw %d for %d acked events", lo, hi, got, n)
	default:
		st.Events += n
	}
	return got == n
}

// ObserveLive folds one live frame into the report: stamps on a live
// subscription must be strictly increasing per stream (last holds the
// previous stamp for this stream and is updated in place; callers keep
// one per TID).
func (r *Report) ObserveLive(last *uint64, stamp uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.LiveDelivered++
	s := r.surface("live")
	s.Events++
	if *last != 0 {
		if stamp == *last {
			s.Duplicates++
			r.violate("live", KindDuplicate, "stamp %d delivered twice in a row", stamp)
		} else if stamp < *last {
			s.Misorder++
			r.violate("live", KindMisorder, "stamp %d arrived after %d", stamp, *last)
		}
	}
	*last = stamp
}

// LiveLoss records acked events that never surfaced on the live tail as
// either a delivered frame or an acknowledged missed-event notice —
// the strict-live closing check.
func (r *Report) LiveLoss(missing uint64) {
	if missing == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.surface("live")
	s.Loss += missing
	r.violate("live", KindLoss, "%d admitted events neither delivered nor counted missed", missing)
}

// Add atomically bumps one of the write-side counters.
func (r *Report) Add(counter *uint64, n uint64) {
	r.mu.Lock()
	*counter += n
	r.mu.Unlock()
}

// Surfaces returns a copy of the per-surface stats.
func (r *Report) Surfaces() map[string]SurfaceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]SurfaceStats, len(r.surfaces))
	for k, v := range r.surfaces {
		out[k] = *v
	}
	return out
}

// Violations returns the retained violation details (capped at
// maxViolations; the counters in Surfaces are exact).
func (r *Report) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Violation(nil), r.violations...)
}

// Failed reports whether any surface broke the ack contract.
func (r *Report) Failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.surfaces {
		if !s.clean() {
			return true
		}
	}
	return false
}

// WritePrometheus renders the report in Prometheus text exposition
// format — the shape scrapers and CI log-greppers both already parse —
// followed by the retained violations as comments.
func (r *Report) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name := range r.surfaces {
		names = append(names, name)
	}
	sort.Strings(names)
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "# btrace-vulture verification report\n")
	fmt.Fprintf(ew, "btrace_vulture_batches_sent_total %d\n", r.BatchesSent)
	fmt.Fprintf(ew, "btrace_vulture_events_acked_total %d\n", r.EventsAcked)
	fmt.Fprintf(ew, "btrace_vulture_events_dropped_total %d\n", r.EventsDropped)
	fmt.Fprintf(ew, "btrace_vulture_events_refused_total %d\n", r.EventsRefused)
	fmt.Fprintf(ew, "btrace_vulture_backoffs_total %d\n", r.Backoffs)
	fmt.Fprintf(ew, "btrace_vulture_live_delivered_total %d\n", r.LiveDelivered)
	fmt.Fprintf(ew, "btrace_vulture_live_missed_total %d\n", r.LiveMissed)
	for _, name := range names {
		s := r.surfaces[name]
		fmt.Fprintf(ew, "btrace_vulture_checks_total{surface=%q} %d\n", name, s.Checks)
		fmt.Fprintf(ew, "btrace_vulture_events_verified_total{surface=%q} %d\n", name, s.Events)
		fmt.Fprintf(ew, "btrace_vulture_loss_total{surface=%q} %d\n", name, s.Loss)
		fmt.Fprintf(ew, "btrace_vulture_duplicates_total{surface=%q} %d\n", name, s.Duplicates)
		fmt.Fprintf(ew, "btrace_vulture_misorder_total{surface=%q} %d\n", name, s.Misorder)
	}
	for _, v := range r.violations {
		fmt.Fprintf(ew, "# VIOLATION %s\n", v)
	}
	return ew.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
