package vulture

import (
	"strings"
	"testing"
)

func TestVerifyRangeClean(t *testing.T) {
	r := NewReport()
	if !r.VerifyRange("sequential", 10, 14, []uint64{10, 11, 12, 13, 14}) {
		t.Fatal("clean range reported dirty")
	}
	if r.Failed() {
		t.Fatal("clean report Failed()")
	}
	s := r.Surfaces()["sequential"]
	if s.Checks != 1 || s.Events != 5 || !s.clean() {
		t.Fatalf("stats %+v", s)
	}
}

func TestVerifyRangeLossDupMisorder(t *testing.T) {
	r := NewReport()
	// 11 missing, 13 twice, 14 before 12.
	if r.VerifyRange("parallel", 10, 14, []uint64{10, 13, 14, 12, 13}) {
		t.Fatal("dirty range reported clean")
	}
	s := r.Surfaces()["parallel"]
	if s.Loss != 1 || s.Duplicates != 1 || s.Misorder == 0 {
		t.Fatalf("stats %+v", s)
	}
	if !r.Failed() {
		t.Fatal("broken report not Failed()")
	}
	kinds := map[string]bool{}
	for _, v := range r.Violations() {
		kinds[v.Kind] = true
	}
	for _, k := range []string{KindLoss, KindDuplicate, KindMisorder} {
		if !kinds[k] {
			t.Fatalf("missing %s violation; got %v", k, r.Violations())
		}
	}
}

func TestVerifyRangeIgnoresForeignStamps(t *testing.T) {
	r := NewReport()
	// Stamps outside [lo, hi] (another writer's range sharing the store)
	// must not be misread as duplicates or inversions.
	if !r.VerifyRange("cold", 5, 6, []uint64{2, 5, 6, 9}) {
		t.Fatalf("foreign stamps broke a clean range: %v", r.Violations())
	}
}

func TestObserveLiveOrdering(t *testing.T) {
	r := NewReport()
	var last uint64
	for _, s := range []uint64{3, 7, 9} {
		r.ObserveLive(&last, s)
	}
	if r.Failed() {
		t.Fatalf("ascending stream failed: %v", r.Violations())
	}
	r.ObserveLive(&last, 9) // duplicate
	r.ObserveLive(&last, 4) // regression
	s := r.Surfaces()["live"]
	if s.Duplicates != 1 || s.Misorder != 1 || r.LiveDelivered != 5 {
		t.Fatalf("stats %+v delivered %d", s, r.LiveDelivered)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewReport()
	r.Add(&r.EventsAcked, 42)
	r.VerifyRange("sequential", 1, 2, []uint64{1}) // one lost
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"btrace_vulture_events_acked_total 42",
		`btrace_vulture_loss_total{surface="sequential"} 1`,
		"# VIOLATION sequential[loss]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
