package vulture

import (
	"context"
	"encoding/csv"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"btrace/internal/btql"
	"btrace/internal/live"
	"btrace/internal/tracer"
)

// stubStore is a minimal single-node btrace-serve stand-in: /readyz,
// /ingest (async ack like the real thing, but applied synchronously),
// /store/query in CSV, and /live over a real hub. mutate lets tests
// corrupt the read path to prove the vulture notices.
type stubStore struct {
	mu     sync.Mutex
	events map[uint64]tracer.Entry
	hub    *live.Hub
	// mutate rewrites the sorted stamp list a query would return.
	mutate func([]uint64) []uint64
}

func newStub(t *testing.T) (*stubStore, *httptest.Server) {
	t.Helper()
	st := &stubStore{events: make(map[uint64]tracer.Entry), hub: live.NewHub(live.Config{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/ingest", st.handleIngest)
	mux.HandleFunc("/store/query", st.handleQuery)
	mux.HandleFunc("/live", st.handleLive)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return st, ts
}

func (st *stubStore) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	recs, _ := tracer.DecodeAll(body)
	var es []tracer.Entry
	st.mu.Lock()
	for _, rec := range recs {
		if rec.Kind == tracer.KindEvent {
			st.events[rec.Event.Stamp] = rec.Event
			es = append(es, rec.Event)
		}
	}
	st.mu.Unlock()
	st.hub.Publish("", es)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"accepted":%d}`, len(es))
}

func (st *stubStore) handleQuery(w http.ResponseWriter, r *http.Request) {
	lo, _ := strconv.ParseUint(r.URL.Query().Get("min_stamp"), 10, 64)
	hi := ^uint64(0)
	if v := r.URL.Query().Get("max_stamp"); v != "" {
		hi, _ = strconv.ParseUint(v, 10, 64)
	}
	var bq *btql.Query
	if src := r.URL.Query().Get("q"); src != "" {
		var err error
		if bq, err = btql.Parse(src); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	st.mu.Lock()
	var stamps []uint64
	for s := range st.events {
		if s >= lo && s <= hi {
			stamps = append(stamps, s)
		}
	}
	st.mu.Unlock()
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	if st.mutate != nil {
		stamps = st.mutate(stamps)
	}
	if bq != nil && bq.Filter != nil {
		// The real thing pushes the predicate into the scan; the stub
		// evaluates it post-hoc, after mutate, so an injected corruption
		// is visible on the BTQL surfaces too.
		pred := bq.Predicate()
		out := stamps[:0]
		st.mu.Lock()
		for _, s := range stamps {
			e := st.events[s]
			if pred.Match(&e) {
				out = append(out, s)
			}
		}
		st.mu.Unlock()
		stamps = out
	}
	if bq != nil && bq.Agg != nil {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"query":%q,"result":{"kind":"count","events":%d}}`,
			r.URL.Query().Get("q"), len(stamps))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	cw.Write([]string{"stamp", "ts_ns", "core", "tid", "category", "level", "payload_bytes"})
	for _, s := range stamps {
		cw.Write([]string{strconv.FormatUint(s, 10), "0", "0", "0", "1", "1", "8"})
	}
	cw.Flush()
}

func (st *stubStore) handleLive(w http.ResponseWriter, r *http.Request) {
	f, err := live.ParseQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub, err := st.hub.Subscribe(f)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	batch := make([]tracer.Entry, 64)
	for {
		n, missed, err := sub.Next(batch)
		if missed > 0 {
			live.EncodeMissed(w, missed)
		}
		for i := 0; i < n; i++ {
			live.EncodeFrame(w, &batch[i])
		}
		if err != nil {
			return
		}
		fl.Flush()
		if n == 0 && missed == 0 {
			select {
			case <-r.Context().Done():
				return
			case <-sub.Notify():
			}
		}
	}
}

// quickCfg keeps test soaks to a few hundred milliseconds.
func quickCfg(url string) RunnerConfig {
	return RunnerConfig{
		BaseURL:  url,
		Writers:  2,
		Batch:    8,
		Interval: 10 * time.Millisecond,
		Settle:   10 * time.Millisecond,
		Duration: 150 * time.Millisecond,
		BTQL:     true,
	}
}

// TestRunnerCleanServer: a faithful store yields a clean report on
// every surface, with the strict live accounting balancing exactly.
func TestRunnerCleanServer(t *testing.T) {
	_, ts := newStub(t)
	cfg := quickCfg(ts.URL)
	cfg.Live = true
	cfg.StrictLive = true
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean server failed verification: %v", rep.Violations())
	}
	if rep.EventsAcked == 0 || rep.BatchesSent == 0 {
		t.Fatalf("nothing written: %+v", rep)
	}
	surfaces := rep.Surfaces()
	for _, name := range []string{"sequential", "parallel", "btql", "btql-count", "live"} {
		if surfaces[name].Events == 0 {
			t.Fatalf("surface %s never verified anything: %+v", name, surfaces)
		}
	}
	if rep.LiveDelivered+rep.LiveMissed < rep.EventsAcked {
		t.Fatalf("live accounting short: delivered %d + missed %d < acked %d",
			rep.LiveDelivered, rep.LiveMissed, rep.EventsAcked)
	}
}

// TestRunnerDetectsLoss: a store that swallows every 5th stamp must
// fail the run with loss on the range surfaces.
func TestRunnerDetectsLoss(t *testing.T) {
	st, ts := newStub(t)
	st.mutate = func(stamps []uint64) []uint64 {
		out := stamps[:0]
		for _, s := range stamps {
			if s%5 != 0 {
				out = append(out, s)
			}
		}
		return out
	}
	rep, err := Run(context.Background(), quickCfg(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("lossy store passed verification")
	}
	if s := rep.Surfaces()["sequential"]; s.Loss == 0 {
		t.Fatalf("loss not attributed: %+v", rep.Surfaces())
	}
}

// TestRunnerDetectsDuplication: a store that returns one stamp twice
// must fail with duplicates (and the inversion the echo causes).
func TestRunnerDetectsDuplication(t *testing.T) {
	st, ts := newStub(t)
	st.mutate = func(stamps []uint64) []uint64 {
		if len(stamps) > 2 {
			stamps = append(stamps, stamps[1])
		}
		return stamps
	}
	rep, err := Run(context.Background(), quickCfg(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("duplicating store passed verification")
	}
	if s := rep.Surfaces()["parallel"]; s.Duplicates == 0 {
		t.Fatalf("duplicates not attributed: %+v", rep.Surfaces())
	}
}

// TestRunnerUnreachableServer: setup failure, not a hang.
func TestRunnerUnreachableServer(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	cfg := quickCfg("http://127.0.0.1:1") // reserved port, nothing listens
	_, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("expected setup error against dead server")
	}
}
