package vulture

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"btrace/internal/live"
	"btrace/internal/tracer"
)

// RunnerConfig shapes one vulture run.
type RunnerConfig struct {
	// BaseURL locates the btrace-serve under test, e.g.
	// "http://localhost:8321".
	BaseURL string
	// Tenant is sent as X-Btrace-Tenant on every write and on the live
	// subscription; empty uses the server's default tenant.
	Tenant string
	// Writers is the number of concurrent write streams, each with its
	// own TID (default 2).
	Writers int
	// Batch is events per POST /ingest (default 64).
	Batch int
	// Interval is each writer's pause between batches (default 20ms).
	Interval time.Duration
	// Settle is how long after an ack the readers wait before demanding
	// the stamps back — the eventual-durability grace on the async
	// single-store path (default 500ms).
	Settle time.Duration
	// Duration bounds the writing phase; verification of already-acked
	// batches continues past it (default 30s).
	Duration time.Duration
	// QueryWorkers sizes the parallel read surface's ?workers= (default 4).
	QueryWorkers int
	// ColdAge, when positive, re-verifies each batch once it is this old —
	// aimed past the server's -cold-after so the read exercises the
	// frozen columnar tier (0 = skip the cold surface).
	ColdAge time.Duration
	// BTQL additionally reads each range back through the query
	// language: the ?q= filter stage as a CSV stream (surface "btql",
	// the predicate-pushdown scan path) and a count() pipeline whose
	// aggregate executes server-side over the columns (surface
	// "btql-count"; the cold re-verification adds "cold-count"). Both
	// must agree exactly with the ack contract.
	BTQL bool
	// Live subscribes to /live filtered by the writers' TIDs and verifies
	// per-stream ordering and the delivered+missed accounting.
	Live bool
	// StrictLive additionally requires every admitted event to be
	// accounted for on the live tail (delivered or counted missed) —
	// only sound when the server runs with sampling and shedding off.
	StrictLive bool
	// TIDBase is the first writer's TID; writer i uses TIDBase+i
	// (default 9000).
	TIDBase uint32
	// PayloadBytes pads each event's payload to this size; at least 8
	// bytes always carry the stamp for cross-checking (default 32).
	PayloadBytes int
	// HTTP overrides the client (default: dedicated client, no timeout —
	// the live stream is long-lived; range reads set per-request
	// contexts).
	HTTP *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c RunnerConfig) withDefaults() RunnerConfig {
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 500 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = 4
	}
	if c.TIDBase == 0 {
		c.TIDBase = 9000
	}
	if c.PayloadBytes < 8 {
		c.PayloadBytes = 32
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// batchRef is one fully-acked contiguous stamp range awaiting read-back.
type batchRef struct {
	lo, hi uint64
	tid    uint32 // the writer's TID — BTQL probes filter on it
	acked  time.Time
}

// runner is one Run invocation's state.
type runner struct {
	cfg    RunnerConfig
	rep    *Report
	start  time.Time
	stamps atomic.Uint64 // last allocated stamp
}

// writeRetries bounds the backoff loop on 429/503 before a batch's
// stamps are burned (never probed — backpressure is not loss).
const writeRetries = 20

// readRetries bounds transient-failure retries on a verification read
// (a shard drain mid-probe answers 503 for a moment).
const readRetries = 5

// Run drives a complete vulture pass against cfg.BaseURL: writers push
// stamped batches for cfg.Duration while readers verify every acked
// range on every query surface, then everything drains and the report
// is returned. The returned error covers setup failures only (server
// unreachable); verification failures are in the report (Failed()).
func Run(ctx context.Context, cfg RunnerConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	v := &runner{cfg: cfg, rep: NewReport(), start: time.Now()}
	if err := v.waitReady(ctx); err != nil {
		return v.rep, err
	}

	// The live subscription must exist before the first write: a 200
	// response means the server-side Subscribe has happened.
	var (
		liveResp *http.Response
		liveDone chan liveResult
	)
	if cfg.Live {
		resp, err := v.subscribeLive(ctx)
		if err != nil {
			return v.rep, fmt.Errorf("vulture: live subscribe: %w", err)
		}
		liveResp = resp
		liveDone = make(chan liveResult, 1)
		go v.readLive(resp, liveDone)
	}

	pending := make(chan batchRef, 1024)
	coldPending := make(chan batchRef, 4096)
	var admitted atomic.Uint64 // events the gate let through (acked + refused)

	wctx, cancelWriters := context.WithTimeout(ctx, cfg.Duration)
	defer cancelWriters()
	var writers sync.WaitGroup
	for i := 0; i < cfg.Writers; i++ {
		writers.Add(1)
		go func(tid uint32) {
			defer writers.Done()
			v.write(wctx, tid, pending, &admitted)
		}(cfg.TIDBase + uint32(i))
	}

	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		v.verifyWarm(ctx, pending, coldPending)
	}()

	writers.Wait()
	close(pending)
	readers.Wait()
	close(coldPending)
	v.verifyCold(ctx, coldPending)

	if cfg.Live {
		// Grace for in-flight hub deliveries, then cut the stream and
		// settle the books.
		time.Sleep(2 * cfg.Settle)
		liveResp.Body.Close()
		res := <-liveDone
		v.rep.Add(&v.rep.LiveMissed, res.missed)
		if cfg.StrictLive {
			if want := admitted.Load(); want > res.delivered+res.missed {
				v.rep.LiveLoss(want - (res.delivered + res.missed))
			}
		}
	}
	return v.rep, ctx.Err()
}

// waitReady polls /readyz until the server answers 200 or the attempt
// budget runs out.
func (v *runner) waitReady(ctx context.Context) error {
	var lastErr error
	for i := 0; i < 40; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := v.cfg.HTTP.Get(v.cfg.BaseURL + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("readyz status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("vulture: server never became ready: %w", lastErr)
}

// write is one writer stream: contiguous stamp ranges, a fixed TID, a
// virtual-time TS (nanoseconds since run start, so the server's
// cold-after aging clock advances with the run).
func (v *runner) write(ctx context.Context, tid uint32, pending chan<- batchRef, admitted *atomic.Uint64) {
	payload := make([]byte, v.cfg.PayloadBytes)
	for ctx.Err() == nil {
		hi := v.stamps.Add(uint64(v.cfg.Batch))
		lo := hi - uint64(v.cfg.Batch) + 1
		now := uint64(time.Since(v.start).Nanoseconds())
		var buf bytes.Buffer
		for s := lo; s <= hi; s++ {
			for i := 0; i < 8; i++ {
				payload[i] = byte(s >> (8 * i))
			}
			e := tracer.Entry{
				Stamp: s, TS: now + (s - lo), Core: uint8(tid % 4),
				TID: tid, Category: 1, Level: 1, Payload: payload,
			}
			rec := make([]byte, e.WireSize())
			n, err := tracer.EncodeEvent(rec, &e)
			if err != nil {
				v.cfg.Logf("vulture: encode stamp %d: %v", s, err)
				return
			}
			buf.Write(rec[:n])
		}
		if ref, ok := v.post(ctx, buf.Bytes(), lo, hi, admitted); ok {
			ref.tid = tid
			select {
			case pending <- ref:
			case <-ctx.Done():
				return
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(v.cfg.Interval):
		}
	}
}

// ingestAck mirrors the /ingest 202 JSON; Acked is present only in
// cluster mode, which is how the runner tells the two apart.
type ingestAck struct {
	Accepted    uint64  `json:"accepted"`
	Acked       *uint64 `json:"acked"`
	Throttled   uint64  `json:"throttled"`
	GateDropped uint64  `json:"gate_dropped"`
	Refused     uint64  `json:"refused"`
}

// post delivers one encoded batch, retrying through backpressure. It
// returns the batch's verification ref and whether every stamp in
// [lo, hi] was acked (partial acks burn the whole range: stamps that
// were dropped by policy must never be demanded back).
func (v *runner) post(ctx context.Context, body []byte, lo, hi uint64, admitted *atomic.Uint64) (batchRef, bool) {
	n := hi - lo + 1
	for attempt := 0; attempt < writeRetries; attempt++ {
		if ctx.Err() != nil {
			return batchRef{}, false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			v.cfg.BaseURL+"/ingest", bytes.NewReader(body))
		if err != nil {
			return batchRef{}, false
		}
		if v.cfg.Tenant != "" {
			req.Header.Set("X-Btrace-Tenant", v.cfg.Tenant)
		}
		resp, err := v.cfg.HTTP.Do(req)
		if err != nil {
			v.rep.Add(&v.rep.Backoffs, 1)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			v.rep.Add(&v.rep.BatchesSent, 1)
			var ack ingestAck
			if err := json.Unmarshal(respBody, &ack); err != nil {
				v.cfg.Logf("vulture: bad ack body %q: %v", respBody, err)
				return batchRef{}, false
			}
			if ack.Acked == nil {
				// Single store: 202 is an eventual-durability promise for
				// the whole batch.
				v.rep.Add(&v.rep.EventsAcked, ack.Accepted)
				admitted.Add(ack.Accepted)
				return batchRef{lo: lo, hi: hi, acked: time.Now()}, ack.Accepted == n
			}
			v.rep.Add(&v.rep.EventsAcked, *ack.Acked)
			v.rep.Add(&v.rep.EventsDropped, ack.Throttled+ack.GateDropped)
			v.rep.Add(&v.rep.EventsRefused, ack.Refused)
			admitted.Add(*ack.Acked + ack.Refused)
			return batchRef{lo: lo, hi: hi, acked: time.Now()}, *ack.Acked == n
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			v.rep.Add(&v.rep.Backoffs, 1)
			wait := 100 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 && secs <= 10 {
					wait = time.Duration(secs) * time.Second
				}
			}
			time.Sleep(wait)
		default:
			v.cfg.Logf("vulture: ingest status %d: %s", resp.StatusCode, respBody)
			return batchRef{}, false
		}
	}
	v.cfg.Logf("vulture: batch [%d, %d] gave up after %d backoffs (stamps burned)",
		lo, hi, writeRetries)
	return batchRef{}, false
}

// verifyWarm drains the pending queue: each acked range, once settled,
// is read back through the sequential and parallel /store/query
// surfaces; ranges then move on to the cold queue.
func (v *runner) verifyWarm(ctx context.Context, pending <-chan batchRef, cold chan<- batchRef) {
	for ref := range pending {
		if wait := time.Until(ref.acked.Add(v.cfg.Settle)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		v.checkRange(ctx, "sequential", ref, 0, false)
		v.checkRange(ctx, "parallel", ref, v.cfg.QueryWorkers, false)
		if v.cfg.BTQL {
			v.checkRange(ctx, "btql", ref, 0, true)
			v.checkCount(ctx, "btql-count", ref)
		}
		if v.cfg.ColdAge > 0 {
			select {
			case cold <- ref:
			default:
				v.cfg.Logf("vulture: cold queue full, range [%d, %d] skipped", ref.lo, ref.hi)
			}
		}
	}
}

// verifyCold replays settled ranges once they are ColdAge old: by then
// the server's compactor has frozen their segments, so the same read
// exercises the columnar tier.
func (v *runner) verifyCold(ctx context.Context, cold <-chan batchRef) {
	for ref := range cold {
		if wait := time.Until(ref.acked.Add(v.cfg.ColdAge)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		v.checkRange(ctx, "cold", ref, 0, false)
		if v.cfg.BTQL {
			// By now the range is frozen: this count() runs the columnar
			// aggregate executor over cold blocks, pruning on the block
			// metadata the same filter wrote.
			v.checkCount(ctx, "cold-count", ref)
		}
	}
}

// checkRange reads [ref.lo, ref.hi] back through one surface and holds
// it to the ack contract. A dirty first read gets one settle-and-retry
// before it is recorded: the single-store path's 202 is an eventual
// promise, and the vulture alerts on broken promises, not on reads that
// raced durability.
func (v *runner) checkRange(ctx context.Context, surface string, ref batchRef, workers int, btql bool) {
	stamps, err := v.fetchStamps(ctx, ref, workers, btql)
	if err == nil && rangeClean(ref, stamps) {
		v.rep.VerifyRange(surface, ref.lo, ref.hi, stamps)
		return
	}
	select {
	case <-time.After(v.cfg.Settle):
	case <-ctx.Done():
	}
	retry, rerr := v.fetchStamps(ctx, ref, workers, btql)
	if rerr != nil {
		if err == nil {
			retry = stamps // first read at least answered; judge that one
		} else {
			v.cfg.Logf("vulture: %s read [%d, %d] failed twice: %v", surface, ref.lo, ref.hi, rerr)
			v.rep.VerifyRange(surface, ref.lo, ref.hi, nil) // unreadable = loss
			return
		}
	}
	v.rep.VerifyRange(surface, ref.lo, ref.hi, retry)
}

// rangeClean pre-checks a read result so checkRange can skip the retry
// on the happy path without double-counting report stats.
func rangeClean(ref batchRef, stamps []uint64) bool {
	n := ref.hi - ref.lo + 1
	if uint64(len(stamps)) != n {
		return false
	}
	prev := ref.lo - 1
	for _, s := range stamps {
		if s != prev+1 {
			return false
		}
		prev = s
	}
	return true
}

// fetchStamps reads one stamp range through /store/query in CSV form
// and returns the stamp column, retrying transient failures. With btql
// the same range is expressed as a ?q= filter instead of the field
// parameters, so the read exercises the compiled-predicate scan path.
func (v *runner) fetchStamps(ctx context.Context, ref batchRef, workers int, btql bool) ([]uint64, error) {
	n := ref.hi - ref.lo + 1
	limit := 2 * n // room to observe duplicates
	if limit > 1<<20 {
		limit = 1 << 20
	}
	var u string
	if btql {
		src := fmt.Sprintf("stamp >= %d && stamp <= %d && tid == %d", ref.lo, ref.hi, ref.tid)
		u = fmt.Sprintf("%s/store/query?workers=%d&limit=%d&format=csv&q=%s",
			v.cfg.BaseURL, workers, limit, url.QueryEscape(src))
	} else {
		u = fmt.Sprintf("%s/store/query?min_stamp=%d&max_stamp=%d&workers=%d&limit=%d&format=csv",
			v.cfg.BaseURL, ref.lo, ref.hi, workers, limit)
	}
	var lastErr error
	for attempt := 0; attempt < readRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stamps, err := v.fetchCSV(ctx, u)
		if err == nil {
			return stamps, nil
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	return nil, lastErr
}

// checkCount holds a server-side `... | count()` over [ref.lo, ref.hi]
// to the ack contract: exactly one count per acked stamp, replica-free.
// Gets the same settle-and-retry grace as the range reads.
func (v *runner) checkCount(ctx context.Context, surface string, ref batchRef) {
	n := ref.hi - ref.lo + 1
	got, err := v.fetchCount(ctx, ref)
	if err == nil && got == n {
		v.rep.VerifyCount(surface, ref.lo, ref.hi, got)
		return
	}
	select {
	case <-time.After(v.cfg.Settle):
	case <-ctx.Done():
	}
	retry, rerr := v.fetchCount(ctx, ref)
	if rerr != nil {
		if err != nil {
			v.cfg.Logf("vulture: %s count [%d, %d] failed twice: %v", surface, ref.lo, ref.hi, rerr)
			v.rep.VerifyCount(surface, ref.lo, ref.hi, 0) // unanswerable = loss
			return
		}
		retry = got // first read at least answered; judge that one
	}
	v.rep.VerifyCount(surface, ref.lo, ref.hi, retry)
}

// fetchCount runs one BTQL count() aggregate over the range, retrying
// transient failures.
func (v *runner) fetchCount(ctx context.Context, ref batchRef) (uint64, error) {
	src := fmt.Sprintf("stamp >= %d && stamp <= %d && tid == %d | count()", ref.lo, ref.hi, ref.tid)
	u := v.cfg.BaseURL + "/store/query?q=" + url.QueryEscape(src)
	var lastErr error
	for attempt := 0; attempt < readRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		got, err := v.fetchCountOnce(ctx, u)
		if err == nil {
			return got, nil
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	return 0, lastErr
}

func (v *runner) fetchCountOnce(ctx context.Context, u string) (uint64, error) {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := v.cfg.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("count status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out struct {
		Result struct {
			Events uint64 `json:"events"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, fmt.Errorf("bad count body %q: %v", bytes.TrimSpace(body), err)
	}
	return out.Result.Events, nil
}

func (v *runner) fetchCSV(ctx context.Context, url string) ([]uint64, error) {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := v.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("query status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "stamp,") {
		return nil, fmt.Errorf("unexpected CSV header %q", lines[0])
	}
	stamps := make([]uint64, 0, len(lines)-1)
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		col := line
		if i := strings.IndexByte(line, ','); i >= 0 {
			col = line[:i]
		}
		s, err := strconv.ParseUint(col, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad CSV stamp %q: %v", col, err)
		}
		stamps = append(stamps, s)
	}
	return stamps, nil
}

// subscribeLive opens the SSE stream filtered to the writers' TIDs.
func (v *runner) subscribeLive(ctx context.Context) (*http.Response, error) {
	tids := make([]string, v.cfg.Writers)
	for i := range tids {
		tids[i] = strconv.FormatUint(uint64(v.cfg.TIDBase)+uint64(i), 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		v.cfg.BaseURL+"/live?tids="+strings.Join(tids, ","), nil)
	if err != nil {
		return nil, err
	}
	if v.cfg.Tenant != "" {
		req.Header.Set("X-Btrace-Tenant", v.cfg.Tenant)
	}
	resp, err := v.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
		return nil, fmt.Errorf("live status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return resp, nil
}

type liveResult struct {
	delivered uint64
	missed    uint64
	evicted   bool
}

// readLive consumes the SSE stream until it ends (the runner closes the
// body when the soak is over, or the hub evicts us). Every frame's
// stamp must rise strictly within its TID stream, and the stamp echoed
// in the payload must match the frame's.
func (v *runner) readLive(resp *http.Response, done chan<- liveResult) {
	var res liveResult
	defer func() { done <- res }()
	last := make(map[uint32]*uint64)
	sr := live.NewStreamReader(resp.Body)
	for {
		event, data, err := sr.Next()
		if err != nil {
			return
		}
		switch event {
		case live.EventTrace:
			e, derr := live.DecodeFrame(data)
			if derr != nil {
				v.cfg.Logf("vulture: bad live frame %q: %v", data, derr)
				continue
			}
			l := last[e.TID]
			if l == nil {
				l = new(uint64)
				last[e.TID] = l
			}
			v.rep.ObserveLive(l, e.Stamp)
			res.delivered++
			if len(e.Payload) >= 8 {
				var echoed uint64
				for i := 0; i < 8; i++ {
					echoed |= uint64(e.Payload[i]) << (8 * i)
				}
				if echoed != e.Stamp {
					v.rep.VerifyRange("live", e.Stamp, e.Stamp, nil) // payload corruption = loss
				}
			}
		case live.EventMissed:
			if n, perr := live.ParseCount(data); perr == nil {
				res.missed += n
			}
		case live.EventEvicted:
			// The eviction notice carries the authoritative missed total.
			res.evicted = true
			if n, perr := live.ParseCount(data); perr == nil && n > res.missed {
				res.missed = n
			}
			return
		}
	}
}
