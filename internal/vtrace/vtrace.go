// Package vtrace implements the per-thread baseline tracer modeled on
// VampirTrace: every producing thread owns a private buffer carved out of
// the shared total budget, and events are materialized in VampirTrace's
// verbose ASCII OTF record format.
//
// Per-thread buffers need no synchronization at all on the write path, but
// with the thousands of short-lived threads a smartphone runs, the budget
// fragments into slivers: worst-case utilization is 1/T (Table 1) and the
// measured latest fragment is the smallest of all tracers (Table 2,
// average 0.3 MB of 12 MB). The per-event ASCII formatting — OTF is a
// text format — is also the dominant recording cost, giving VTrace the
// second-highest latency in the paper's evaluation.
package vtrace

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"btrace/internal/tracer"
)

// TracerName is the registry name of the VampirTrace baseline.
const TracerName = "vtrace"

const defaultPageSize = 4096

// page is one ring page of a thread buffer.
type page struct {
	data   []byte
	filled int
	seq    uint64
}

// threadBuf is one thread's private ring. Only its owner thread writes it;
// ReadAll synchronizes through the tracer's registry lock plus quiescence.
type threadBuf struct {
	pages []page
	cur   int
	seq   uint64
	// otfScratch is the reusable ASCII formatting buffer.
	otfScratch []byte
}

// Tracer is the per-thread VampirTrace-like tracer.
type Tracer struct {
	perThread int
	pageSize  int

	mu   sync.Mutex
	bufs map[int]*threadBuf

	writes       atomic.Uint64
	bytesWritten atomic.Uint64
	otfBytes     atomic.Uint64
	overwritten  atomic.Uint64
}

// New creates a tracer whose total budget is divided among maxThreads
// per-thread buffers (the reservation a per-thread tracer must make up
// front). Buffers materialize lazily on a thread's first write.
func New(totalBytes, maxThreads, pageSize int) (*Tracer, error) {
	if pageSize == 0 {
		pageSize = defaultPageSize
	}
	if maxThreads <= 0 {
		return nil, fmt.Errorf("vtrace: maxThreads must be positive, got %d", maxThreads)
	}
	if pageSize < 64 || pageSize%tracer.Align != 0 {
		return nil, fmt.Errorf("vtrace: invalid page size %d", pageSize)
	}
	per := totalBytes / maxThreads
	if per < pageSize {
		// Threads get at least one page; with very high thread counts the
		// real VampirTrace would simply run out of memory, which we model
		// by shrinking to a single page per thread.
		per = pageSize
	}
	return &Tracer{perThread: per, pageSize: pageSize, bufs: map[int]*threadBuf{}}, nil
}

// Name implements tracer.Tracer.
func (t *Tracer) Name() string { return TracerName }

// TotalBytes implements tracer.Tracer.
func (t *Tracer) TotalBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.perThread * max(1, len(t.bufs))
}

// Stats implements tracer.Tracer.
func (t *Tracer) Stats() tracer.Stats {
	return tracer.Stats{
		Writes:       t.writes.Load(),
		BytesWritten: t.bytesWritten.Load(),
		Overwritten:  t.overwritten.Load(),
	}
}

// OTFBytes returns the total ASCII OTF bytes formatted — the footprint the
// binary entries would occupy in VampirTrace's real on-disk format.
func (t *Tracer) OTFBytes() uint64 { return t.otfBytes.Load() }

// Reset implements tracer.Tracer.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.bufs = map[int]*threadBuf{}
	t.mu.Unlock()
	t.writes.Store(0)
	t.bytesWritten.Store(0)
	t.otfBytes.Store(0)
	t.overwritten.Store(0)
}

// buf returns (creating if needed) the calling thread's buffer.
func (t *Tracer) buf(tid int) *threadBuf {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.bufs[tid]
	if !ok {
		nPages := t.perThread / t.pageSize
		if nPages < 1 {
			nPages = 1
		}
		b = &threadBuf{pages: make([]page, nPages)}
		for i := range b.pages {
			b.pages[i].data = make([]byte, t.pageSize)
		}
		t.bufs[tid] = b
	}
	return b
}

// formatOTF renders the event in an OTF-like ASCII record, the per-event
// work VampirTrace actually performs. The returned length determines the
// record's footprint in the thread buffer.
func formatOTF(dst []byte, e *tracer.Entry) []byte {
	dst = dst[:0]
	dst = append(dst, "E:"...)
	dst = strconv.AppendUint(dst, e.TS, 10)
	dst = append(dst, ";P:"...)
	dst = strconv.AppendUint(dst, uint64(e.Core), 10)
	dst = append(dst, ";T:"...)
	dst = strconv.AppendUint(dst, uint64(e.TID), 10)
	dst = append(dst, ";F:"...)
	dst = strconv.AppendUint(dst, uint64(e.Category), 16)
	dst = append(dst, ";L:"...)
	dst = strconv.AppendUint(dst, uint64(e.Level), 10)
	dst = append(dst, ";S:"...)
	dst = strconv.AppendUint(dst, e.Stamp, 10)
	dst = append(dst, ";D:"...)
	// OTF hex-encodes binary payloads.
	const hexdigits = "0123456789abcdef"
	for _, b := range e.Payload {
		dst = append(dst, hexdigits[b>>4], hexdigits[b&0xf])
	}
	dst = append(dst, '\n')
	return dst
}

// Write implements tracer.Tracer: an unsynchronized append to the calling
// thread's private ring. The record occupies the footprint of its ASCII
// OTF rendering (at least the binary wire size), so retention honestly
// reflects the format's verbosity.
func (t *Tracer) Write(p tracer.Proc, e *tracer.Entry) error {
	b := t.buf(p.Thread())
	b.otfScratch = formatOTF(b.otfScratch, e)
	t.otfBytes.Add(uint64(len(b.otfScratch)))

	wire := e.WireSize()
	size := (len(b.otfScratch) + tracer.Align - 1) / tracer.Align * tracer.Align
	if size < wire {
		size = wire
	}
	if size > t.pageSize {
		return fmt.Errorf("%w: record %d B, page %d B", tracer.ErrTooLarge, size, t.pageSize)
	}
	pg := &b.pages[b.cur]
	if pg.filled+size > t.pageSize {
		b.seq++
		b.cur = (b.cur + 1) % len(b.pages)
		pg = &b.pages[b.cur]
		if pg.filled > 0 {
			recs, _ := tracer.DecodeAll(pg.data[:pg.filled])
			n := 0
			for _, rec := range recs {
				if rec.Kind == tracer.KindEvent {
					n++
				}
			}
			t.overwritten.Add(uint64(n))
		}
		pg.filled = 0
		pg.seq = b.seq
	}
	// Store the binary record followed by dummy padding up to the OTF
	// footprint, so the decoder can recover the event while occupancy
	// matches the ASCII format.
	if _, err := tracer.EncodeEvent(pg.data[pg.filled:pg.filled+wire], e); err != nil {
		return err
	}
	if size > wire {
		tracer.EncodeDummy(pg.data[pg.filled+wire:pg.filled+size], size-wire)
	}
	pg.filled += size
	t.writes.Add(1)
	t.bytesWritten.Add(uint64(size))
	return nil
}

// ReadAll implements tracer.Tracer: a quiescent snapshot merging all
// thread buffers, ordered by logic stamp.
func (t *Tracer) ReadAll() ([]tracer.Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []tracer.Entry
	for _, b := range t.bufs {
		idxs := make([]int, 0, len(b.pages))
		for i := range b.pages {
			if b.pages[i].filled > 0 {
				idxs = append(idxs, i)
			}
		}
		sort.Slice(idxs, func(x, y int) bool { return b.pages[idxs[x]].seq < b.pages[idxs[y]].seq })
		for _, i := range idxs {
			pg := &b.pages[i]
			recs, _ := tracer.DecodeAll(pg.data[:pg.filled])
			for _, rec := range recs {
				if rec.Kind == tracer.KindEvent {
					ev := rec.Event
					if ev.Payload != nil {
						ev.Payload = append([]byte(nil), ev.Payload...)
					}
					out = append(out, ev)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func init() {
	tracer.Register(TracerName, func(totalBytes, cores, threads int) (tracer.Tracer, error) {
		if threads <= 0 {
			threads = cores
		}
		return New(totalBytes, threads, 0)
	})
}

// NewCursor implements tracer.CursorSource. vtrace's read path is a
// quiescent snapshot, so the generic stamp-resume adapter applies.
func (t *Tracer) NewCursor() tracer.Cursor { return tracer.NewSnapshotCursor(t.ReadAll) }

var _ tracer.CursorSource = (*Tracer)(nil)
