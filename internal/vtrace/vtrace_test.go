package vtrace

import (
	"strings"
	"testing"

	"btrace/internal/tracer"
	"btrace/internal/tracer/tracertest"
)

func TestConformance(t *testing.T) {
	tracertest.Run(t, tracertest.Config{
		New: func(total, cores, threads int) (tracer.Tracer, error) {
			return New(total, threads, 512)
		},
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1<<20, 0, 0); err == nil {
		t.Error("zero threads: expected error")
	}
	if _, err := New(1<<20, 8, 60); err == nil {
		t.Error("bad page size: expected error")
	}
}

// TestPerThreadFragmentation: the total budget fragments across threads,
// so a single busy thread can use only 1/T of it (Table 1) — the reason
// VTrace's latest fragment averages 0.3 MB of 12 MB in Table 2.
func TestPerThreadFragmentation(t *testing.T) {
	const total = 32 << 10
	const threads = 16
	tr, err := New(total, threads, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := &tracer.FixedProc{CoreID: 0, TID: 5}
	wire := tracer.EventWireSize(8)
	n := total / wire * 2
	for i := 1; i <= n; i++ {
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(i), Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	es, _ := tr.ReadAll()
	retained := 0
	for _, e := range es {
		retained += e.WireSize()
	}
	// The thread's share is total/threads = 2 KiB; retention must be in
	// that ballpark, far below the full budget.
	if retained > 2*(total/threads) {
		t.Errorf("thread retained %d bytes, share is %d", retained, total/threads)
	}
	if tr.Stats().Overwritten == 0 {
		t.Error("no overwrites despite exceeding the thread share")
	}
}

// TestOTFFootprint: the ASCII OTF rendering inflates record footprints
// beyond the binary wire size, reducing retention — and the formatted
// byte count is tracked.
func TestOTFFootprint(t *testing.T) {
	tr, err := New(32<<10, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := &tracer.FixedProc{TID: 1}
	e := &tracer.Entry{Stamp: 123456789, TS: 987654321012, Core: 3, TID: 1, Category: 9, Level: 3,
		Payload: []byte("0123456789abcdef0123456789abcdef")}
	if err := tr.Write(p, e); err != nil {
		t.Fatal(err)
	}
	if tr.OTFBytes() == 0 {
		t.Fatal("OTF byte accounting missing")
	}
	// Hex-encoding doubles the payload, so the OTF footprint must exceed
	// the binary wire size for payload-heavy events.
	if tr.OTFBytes() <= uint64(e.WireSize()) {
		t.Errorf("OTF footprint %d not larger than wire size %d", tr.OTFBytes(), e.WireSize())
	}
	if st := tr.Stats(); st.BytesWritten < tr.OTFBytes() {
		t.Errorf("ring footprint %d below OTF length %d", st.BytesWritten, tr.OTFBytes())
	}
}

func TestFormatOTF(t *testing.T) {
	e := &tracer.Entry{Stamp: 42, TS: 100, Core: 2, TID: 7, Category: 15, Level: 1, Payload: []byte{0xAB}}
	s := string(formatOTF(nil, e))
	for _, frag := range []string{"E:100", "P:2", "T:7", "F:f", "L:1", "S:42", "D:ab"} {
		if !strings.Contains(s, frag) {
			t.Errorf("OTF record %q missing %q", s, frag)
		}
	}
	if !strings.HasSuffix(s, "\n") {
		t.Errorf("OTF record %q not newline-terminated", s)
	}
}

// TestManyThreadsLazyAllocation: buffers materialize per thread and the
// budget accounting follows.
func TestManyThreadsLazyAllocation(t *testing.T) {
	tr, err := New(64<<10, 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 32; tid++ {
		p := &tracer.FixedProc{CoreID: tid % 4, TID: tid}
		if err := tr.Write(p, &tracer.Entry{Stamp: uint64(tid + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	es, _ := tr.ReadAll()
	if len(es) != 32 {
		t.Fatalf("retained %d entries, want 32", len(es))
	}
	if got := tr.TotalBytes(); got != 32*(64<<10/64) {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestRegistered(t *testing.T) {
	tr, err := tracer.New(TracerName, 1<<20, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "vtrace" {
		t.Errorf("Name = %q", tr.Name())
	}
}
