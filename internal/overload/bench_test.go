package overload

import (
	"sort"
	"testing"
	"time"

	"btrace/internal/tracer"
)

// benchFilter measures the gate's per-event decision cost over batches
// of 64 and reports the p99 per-event latency as a custom "p99-ns"
// metric so benchdiff can gate regressions on the tail, not just the
// mean.
func benchFilter(b *testing.B, g *Gate) {
	const batch = 64
	src := make([]tracer.Entry, batch)
	buf := make([]tracer.Entry, batch)
	for i := range src {
		src[i] = tracer.Entry{
			TID:      uint32(100 + i%8),
			Category: uint8(i % 4),
			Level:    uint8(1 + i%3),
			Payload:  make([]byte, 16),
		}
	}
	samples := make([]float64, 0, b.N)
	var stamp, ts uint64 = 1, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		for j := range buf {
			buf[j].Stamp = stamp
			buf[j].TS = ts
			stamp++
			ts += 500 // 0.5 µs of virtual time per event
		}
		start := time.Now()
		g.Filter(buf)
		samples = append(samples, float64(time.Since(start).Nanoseconds())/batch)
	}
	b.StopTimer()
	sort.Float64s(samples)
	idx := len(samples) * 99 / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	b.ReportMetric(samples[idx], "p99-ns")
}

// BenchmarkRecordUnderOverload compares the record path's gate cost
// unloaded against a full overload storm. The acceptance bound for the
// PR — storm p99 within 2× of baseline — is asserted by the chaos suite
// (TestChaosOverloadStorm); here the two sub-benchmarks emit the raw
// numbers into BENCH_obs.json so benchdiff can gate drift over time.
func BenchmarkRecordUnderOverload(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		// Quiet gate: no pressure, generous limits — every event admitted.
		g := NewGate(Config{
			RatePerSec:       1 << 30,
			StreamRatePerSec: 1 << 30,
		})
		benchFilter(b, g)
	})
	b.Run("storm", func(b *testing.B) {
		// Saturated gate: pressure pinned at 1 so sampling floors, tight
		// buckets throttle, and the tier machine escalates to category
		// shedding — the expensive decision paths all run.
		g := NewGate(Config{
			MinSampleRate:    0.1,
			RatePerSec:       200_000,
			Burst:            64,
			StreamRatePerSec: 50_000,
			StreamBurst:      16,
			EngageAfter:      2,
			CooldownEvals:    4,
		})
		for i := 0; i < 4; i++ {
			g.Evaluate(Pressure{SpillFill: 1})
		}
		if g.Tier() != TierCategory {
			// Two escalations from 4 hot evaluations at EngageAfter=2.
			b.Fatalf("storm setup: tier %v", g.Tier())
		}
		benchFilter(b, g)
	})
}
