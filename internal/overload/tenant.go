package overload

// Tenant attribution. The gate serves one multi-tenant ingest path but
// runs single-goroutine; the caller names the tenant a batch belongs to
// with SetTenant before Filter, and the gate attributes that Filter's
// stat deltas (seen / admitted / dropped) to the tenant. Placement is
// tenant-agnostic — the ring hashes stream keys only — so this table is
// the one place a noisy tenant becomes visible: quotas, shed decisions
// and the btrace_overload_tenant_* series all read from it.

// DefaultTenant is the tenant batches are attributed to when the caller
// never named one (or named the empty string).
const DefaultTenant = "default"

// TenantOverflow is the bucket tenants beyond MaxTenants collapse into:
// the table stays bounded no matter how many tenant names a client
// invents, at the cost of attribution detail for the overflow.
const TenantOverflow = "~other"

// MaxTenants bounds the per-tenant attribution table (the overflow
// bucket is not counted against it).
const MaxTenants = 64

// TenantStats is one tenant's slice of the gate's accounting. Dropped
// folds every refusal mechanism together — sampling, throttling and
// shedding — because per-tenant blame wants one number; the per-cause
// split remains global in Stats.
type TenantStats struct {
	Seen     uint64
	Admitted uint64
	Dropped  uint64
}

// SetTenant names the tenant the next Filter calls are accounted to.
// Like every Gate method it must be called from the gate's single
// driving goroutine — typically right before handing the tenant's batch
// to Filter.
func (g *Gate) SetTenant(name string) {
	if name == "" {
		name = DefaultTenant
	}
	g.tenant = name
}

// TenantStats returns a snapshot of the per-tenant attribution table.
func (g *Gate) TenantStats() map[string]TenantStats {
	out := make(map[string]TenantStats, len(g.tenants))
	for name, ts := range g.tenants {
		out[name] = *ts
	}
	return out
}

// attributeTenant books the stat delta of one Filter call to the
// current tenant, spilling into the overflow bucket when the table is
// full.
func (g *Gate) attributeTenant(before Stats) {
	name := g.tenant
	if name == "" {
		name = DefaultTenant
	}
	if g.tenants == nil {
		g.tenants = make(map[string]*TenantStats)
	}
	ts := g.tenants[name]
	if ts == nil {
		if len(g.tenants) >= MaxTenants {
			name = TenantOverflow
			ts = g.tenants[name]
		}
		if ts == nil {
			ts = &TenantStats{}
			g.tenants[name] = ts
		}
	}
	ts.Seen += g.stats.Seen - before.Seen
	ts.Admitted += g.stats.Admitted - before.Admitted
	ts.Dropped += g.stats.dropped() - before.dropped()
}
