package overload

import (
	"math/rand"
	"testing"

	"btrace/internal/tracer"
)

// mkBatch builds n well-formed entries: stamps/timestamps increase
// monotonically from start, categories cycle through cats, levels cycle
// 1..3, each with a payload of payload bytes.
func mkBatch(start uint64, n int, stepNs uint64, cats []uint8, payload int) []tracer.Entry {
	es := make([]tracer.Entry, n)
	for i := range es {
		es[i] = tracer.Entry{
			Stamp:    start + uint64(i),
			TS:       start*stepNs + uint64(i)*stepNs,
			TID:      uint32(100 + i%4),
			Category: cats[i%len(cats)],
			Level:    uint8(1 + i%3),
		}
		if payload > 0 {
			es[i].Payload = make([]byte, payload)
		}
	}
	return es
}

// pressurize drives the controller with a constant score for n
// evaluations.
func pressurize(g *Gate, score float64, n int) {
	for i := 0; i < n; i++ {
		g.Evaluate(Pressure{SpillFill: score})
	}
}

func checkIdentity(t *testing.T, s Stats) {
	t.Helper()
	if got := s.Admitted + s.dropped(); got != s.Seen {
		t.Fatalf("accounting identity broken: seen=%d admitted=%d sampled=%d thrCat=%d thrStream=%d shedCat=%d shedStream=%d (sum %d)",
			s.Seen, s.Admitted, s.SampledOut, s.ThrottledCategory, s.ThrottledStream,
			s.ShedCategory, s.ShedStream, got)
	}
}

// TestNoPressurePassesEverything: an unpressured gate with no rate
// limits is a no-op that still counts.
func TestNoPressurePassesEverything(t *testing.T) {
	g := NewGate(Config{})
	es := mkBatch(1, 300, 1000, []uint8{1, 2, 3}, 16)
	out := g.Filter(es)
	if len(out) != 300 {
		t.Fatalf("admitted %d of 300", len(out))
	}
	s := g.Stats()
	if s.Seen != 300 || s.Admitted != 300 || s.dropped() != 0 || s.PayloadShedEvents != 0 {
		t.Fatalf("stats: %+v", s)
	}
	checkIdentity(t, s)
	if n, l := g.SampleRates(); n != 1 || l != 1 {
		t.Fatalf("rates under no pressure: %v %v", n, l)
	}
}

// TestSamplingCreditExactness: the credit accumulator admits exactly
// ⌈r·n⌉ events per category, evenly spread — not a noisy approximation.
func TestSamplingCreditExactness(t *testing.T) {
	g := NewGate(Config{MinSampleRate: 0.25, SampleStart: 0.1, Smoothing: 1})
	// Saturate pressure so the rate floors at MinSampleRate for every
	// priority class.
	pressurize(g, 1, 4)
	if n, l := g.SampleRates(); n != 0.25 || l != 0.25 {
		t.Fatalf("rates at full pressure: %v %v (want 0.25 floor)", n, l)
	}
	es := mkBatch(1, 400, 1000, []uint8{7}, 0)
	out := g.Filter(es)
	if len(out) != 100 {
		t.Fatalf("rate 0.25 over 400 events admitted %d, want exactly 100", len(out))
	}
	// Evenly spread: no run of 8 consecutive admissions or droughts of
	// more than 4 between admissions.
	for i := 1; i < len(out); i++ {
		if gap := out[i].Stamp - out[i-1].Stamp; gap != 4 {
			t.Fatalf("uneven sampling: gap %d between admitted stamps", gap)
		}
	}
	checkIdentity(t, g.Stats())
}

// TestSampleRateScalesWithPressure: rates sit at 1 below SampleStart,
// fall continuously above it, and low-priority decays faster.
func TestSampleRateScalesWithPressure(t *testing.T) {
	g := NewGate(Config{MinSampleRate: 0.1, SampleStart: 0.5, Smoothing: 1})
	pressurize(g, 0.4, 1)
	if n, l := g.SampleRates(); n != 1 || l != 1 {
		t.Fatalf("below SampleStart rates should be 1: %v %v", n, l)
	}
	pressurize(g, 0.75, 1)
	n, l := g.SampleRates()
	if !(n < 1 && n > 0.1) || !(l < n) {
		t.Fatalf("mid-pressure rates: normal %v low %v", n, l)
	}
	pressurize(g, 1, 1)
	if n, _ := g.SampleRates(); n != 0.1 {
		t.Fatalf("full-pressure rate %v, want floor 0.1", n)
	}
}

// TestCategoryTokenBucket: the per-category bucket admits the burst,
// throttles the excess, and refills on virtual time.
func TestCategoryTokenBucket(t *testing.T) {
	g := NewGate(Config{RatePerSec: 1000, Burst: 10})
	// 100 events at the same virtual instant: burst admits 10.
	es := make([]tracer.Entry, 100)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: 1_000_000, TID: 1, Category: 5, Level: 1}
	}
	out := g.Filter(es)
	if len(out) != 10 {
		t.Fatalf("burst 10 admitted %d", len(out))
	}
	if s := g.Stats(); s.ThrottledCategory != 90 {
		t.Fatalf("throttled %d, want 90", s.ThrottledCategory)
	}
	// 1 ms of virtual time refills one token at 1000/s.
	one := []tracer.Entry{{Stamp: 1000, TS: 2_000_000, TID: 1, Category: 5, Level: 1}}
	if out := g.Filter(one); len(out) != 1 {
		t.Fatal("refilled token not granted")
	}
	// An out-of-order (older) event must not refill the bucket.
	old := []tracer.Entry{
		{Stamp: 1001, TS: 1_500_000, TID: 1, Category: 5, Level: 1},
		{Stamp: 1002, TS: 1_500_000, TID: 1, Category: 5, Level: 1},
	}
	if out := g.Filter(old); len(out) != 0 {
		t.Fatalf("out-of-order events refilled the bucket: %d admitted", len(out))
	}
	checkIdentity(t, g.Stats())
}

// TestStreamTokenBucketAndEviction: per-stream buckets limit each TID
// independently and the table stays within MaxStreams by recycling the
// stalest bucket.
func TestStreamTokenBucketAndEviction(t *testing.T) {
	g := NewGate(Config{StreamRatePerSec: 1000, StreamBurst: 2, MaxStreams: 4})
	var es []tracer.Entry
	for tid := uint32(1); tid <= 6; tid++ {
		for k := 0; k < 5; k++ {
			es = append(es, tracer.Entry{
				Stamp: uint64(len(es) + 1), TS: uint64(tid) * 1000, TID: tid, Category: 1, Level: 1,
			})
		}
	}
	out := g.Filter(es)
	// Each of the 6 streams gets its burst of 2.
	if len(out) != 12 {
		t.Fatalf("admitted %d, want 12 (burst 2 × 6 streams)", len(out))
	}
	if s := g.Stats(); s.ThrottledStream != 18 {
		t.Fatalf("stream-throttled %d, want 18", s.ThrottledStream)
	}
	if g.ActiveStreams() > 4 {
		t.Fatalf("stream table grew to %d, bound is 4", g.ActiveStreams())
	}
	checkIdentity(t, g.Stats())
}

// forceTier escalates the controller to the requested tier.
func forceTier(t *testing.T, g *Gate, want Tier) {
	t.Helper()
	for i := 0; i < 100 && g.Tier() < want; i++ {
		g.Evaluate(Pressure{SpillFill: 1})
	}
	if g.Tier() != want {
		t.Fatalf("could not reach tier %v (at %v)", want, g.Tier())
	}
}

// TestShedTiersInOrder: payload stripping, then low-priority category
// drops, then whole-stream drops — with critical events exempt
// throughout.
func TestShedTiersInOrder(t *testing.T) {
	critical := func(cat, _ uint8) bool { return cat == 9 }
	// 120 events: categories cycle {1,2,3,9} (period 4), levels cycle
	// 1..3 (period 3), so every (category, level) pairing occurs. Per
	// batch: 30 critical (cat 9), 30 non-critical at level 3.
	mk := func() []tracer.Entry {
		return mkBatch(1, 120, 1000, []uint8{1, 2, 3, 9}, 8)
	}

	g := NewGate(Config{MinSampleRate: 1, Critical: critical, EngageAfter: 1, CooldownEvals: 1})
	forceTier(t, g, TierPayload)
	out := g.Filter(mk())
	if len(out) != 120 {
		t.Fatalf("payload tier dropped events: %d of 120", len(out))
	}
	s := g.Stats()
	// The 90 non-critical events lose their payloads; critical keep theirs.
	if s.PayloadShedEvents != 90 || s.PayloadShedBytes != 90*8 {
		t.Fatalf("payload shed accounting: %+v", s)
	}
	for _, e := range out {
		if e.Category != 9 && e.Payload != nil {
			t.Fatal("non-critical payload survived the payload tier")
		}
		if e.Category == 9 && len(e.Payload) != 8 {
			t.Fatal("critical payload was stripped")
		}
	}

	forceTier(t, g, TierCategory)
	out = g.Filter(mk())
	if len(out) != 90 {
		t.Fatalf("category tier admitted %d, want 90 (120 − 30 low-priority)", len(out))
	}
	if shed := g.Stats().ShedCategory; shed != 30 {
		t.Fatalf("category tier shed %d, want 30", shed)
	}
	for _, e := range out {
		if e.Category != 9 && e.Level >= 3 {
			t.Fatal("low-priority event survived the category tier")
		}
	}

	forceTier(t, g, TierStream)
	out = g.Filter(mk())
	if len(out) != 30 {
		t.Fatalf("stream tier admitted %d, want only the 30 critical events", len(out))
	}
	for _, e := range out {
		if e.Category != 9 {
			t.Fatal("non-critical event survived the stream tier")
		}
	}
	checkIdentity(t, g.Stats())
}

// TestHysteresisNoFlap is the controller's contract test: tiers engage
// only under sustained pressure, disengage only after the full
// cool-down, and a score oscillating around either threshold — or
// sitting inside the hysteresis band — never flaps the tier.
func TestHysteresisNoFlap(t *testing.T) {
	cfg := Config{
		EngagePressure:    0.75,
		DisengagePressure: 0.35,
		EngageAfter:       3,
		CooldownEvals:     5,
		Smoothing:         1,
	}
	g := NewGate(cfg)

	// Two hot evaluations are not enough; the third engages.
	pressurize(g, 0.9, 2)
	if g.Tier() != TierNone {
		t.Fatalf("engaged after 2 hot evals (want 3): %v", g.Tier())
	}
	pressurize(g, 0.9, 1)
	if g.Tier() != TierPayload {
		t.Fatalf("tier after 3 hot evals: %v, want payload", g.Tier())
	}

	// A dip into the band resets the hot streak: 2 hot + band + 2 hot
	// stays at the current tier.
	pressurize(g, 0.9, 2)
	pressurize(g, 0.5, 1)
	pressurize(g, 0.9, 2)
	if g.Tier() != TierPayload {
		t.Fatalf("band dip failed to reset hot streak: %v", g.Tier())
	}

	// Sustained heat escalates one tier at a time up to the cap.
	pressurize(g, 0.9, 3)
	if g.Tier() != TierCategory {
		t.Fatalf("second escalation: %v", g.Tier())
	}
	pressurize(g, 0.9, 30)
	if g.Tier() != TierStream {
		t.Fatalf("tier cap: %v", g.Tier())
	}

	// Oscillation across the engage threshold and back into the band
	// must hold the tier steady — no flapping.
	for i := 0; i < 20; i++ {
		pressurize(g, 0.9, 1)
		pressurize(g, 0.5, 1)
	}
	if g.Tier() != TierStream {
		t.Fatalf("flapped during oscillation: %v", g.Tier())
	}
	if rel := g.Stats().TierReleases; rel != 0 {
		t.Fatalf("released %d tiers during oscillation", rel)
	}

	// Cooling: 4 cool evaluations are not enough; the 5th releases one
	// tier. A hot blip restarts the cool-down from zero.
	pressurize(g, 0.1, 4)
	if g.Tier() != TierStream {
		t.Fatalf("released before cool-down complete: %v", g.Tier())
	}
	pressurize(g, 0.9, 1) // blip
	pressurize(g, 0.1, 4)
	if g.Tier() != TierStream {
		t.Fatalf("blip failed to restart cool-down: %v", g.Tier())
	}
	pressurize(g, 0.1, 1)
	if g.Tier() != TierCategory {
		t.Fatalf("release after full cool-down: %v", g.Tier())
	}

	// Full recovery is monotonic: the tier only ever steps down while
	// the score stays below the band.
	prev := g.Tier()
	for i := 0; i < 3*cfg.CooldownEvals; i++ {
		g.Evaluate(Pressure{SpillFill: 0.1})
		if cur := g.Tier(); cur > prev {
			t.Fatalf("tier rose from %v to %v during recovery", prev, cur)
		} else {
			prev = cur
		}
	}
	if g.Tier() != TierNone {
		t.Fatalf("did not fully disengage: %v", g.Tier())
	}
	s := g.Stats()
	if s.TierEngagements != 3 || s.TierReleases != 3 {
		t.Fatalf("engage/release totals: %+v", s)
	}
}

// TestAccountingIdentityUnderChurn: with every mechanism active and a
// pressure signal that wanders the whole range, the identity holds
// after every batch.
func TestAccountingIdentityUnderChurn(t *testing.T) {
	g := NewGate(Config{
		MinSampleRate:    0.2,
		RatePerSec:       100,
		Burst:            5,
		StreamRatePerSec: 50,
		StreamBurst:      2,
		EngageAfter:      2,
		CooldownEvals:    3,
	})
	rng := rand.New(rand.NewSource(42))
	var stamp uint64 = 1
	for round := 0; round < 200; round++ {
		g.Evaluate(Pressure{SpillFill: rng.Float64()})
		n := 1 + rng.Intn(64)
		es := mkBatch(stamp, n, uint64(1+rng.Intn(50_000)), []uint8{1, 2, 3, 4}, rng.Intn(32))
		stamp += uint64(n)
		g.Filter(es)
		checkIdentity(t, g.Stats())
	}
	s := g.Stats()
	if s.SampledOut == 0 || s.ThrottledCategory == 0 || s.Seen == 0 {
		t.Fatalf("churn failed to exercise the mechanisms: %+v", s)
	}
}

// TestPressureScore: the scalar takes the worst channel and latencies
// normalize against their budgets.
func TestPressureScore(t *testing.T) {
	const ab, fb = 1_000_000, 20_000_000
	cases := []struct {
		p    Pressure
		want float64
	}{
		{Pressure{}, 0},
		{Pressure{SpillFill: 0.5}, 0.5},
		{Pressure{SpillFill: 0.2, LossRate: 0.7}, 0.7},
		{Pressure{Store: StorePressure{AppendNs: 500_000}}, 0.5},
		{Pressure{Store: StorePressure{FsyncNs: 40_000_000}}, 1},
		{Pressure{Store: StorePressure{Failed: true}}, 1},
		{Pressure{SpillFill: 3}, 1},
	}
	for i, c := range cases {
		if got := c.p.score(ab, fb); got != c.want {
			t.Fatalf("case %d: score %v, want %v", i, got, c.want)
		}
	}
}
