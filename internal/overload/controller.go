package overload

// controller is the feedback half of the gate: it turns the stream of
// pressure scores into (a) a smoothed pressure that drives the sampling
// rates continuously and (b) a shedding tier that moves in discrete
// steps with hysteresis.
//
// The tier state machine:
//
//	score ≥ EngagePressure     → hot streak grows; EngageAfter
//	                             consecutive hot evaluations escalate
//	                             one tier and restart the streak.
//	score ≤ DisengagePressure  → cool streak grows; CooldownEvals
//	                             consecutive cool evaluations release
//	                             one tier and restart the streak.
//	in between (the band)      → both streaks reset: the tier holds.
//
// Because a release requires the score to stay *below* the band for the
// whole cool-down while an engagement requires it *above* the band,
// a score oscillating around either threshold cannot flap the tier —
// crossing into the band resets the opposing streak.
type controller struct {
	cfg *Config

	tier     Tier
	smoothed float64
	hot      int
	cool     int
}

func (c *controller) init(cfg *Config) { c.cfg = cfg }

// evaluate consumes one pressure score and reports whether the tier
// escalated or released on this evaluation.
func (c *controller) evaluate(score float64) (engaged, released bool) {
	c.smoothed += c.cfg.Smoothing * (score - c.smoothed)
	switch {
	case score >= c.cfg.EngagePressure:
		c.cool = 0
		c.hot++
		if c.hot >= c.cfg.EngageAfter && c.tier < TierStream {
			c.tier++
			c.hot = 0
			return true, false
		}
	case score <= c.cfg.DisengagePressure:
		c.hot = 0
		c.cool++
		if c.cool >= c.cfg.CooldownEvals && c.tier > TierNone {
			c.tier--
			c.cool = 0
			return false, true
		}
	default:
		c.hot, c.cool = 0, 0
	}
	return false, false
}
