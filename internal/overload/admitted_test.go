package overload

import (
	"testing"

	"btrace/internal/tracer"
)

// The post-gate fan-out hook: Admitted must see exactly the admitted
// slice (post-shedding, post-sampling), labeled with the resolved
// tenant, and must not fire for empty results.
func TestGateAdmittedHook(t *testing.T) {
	type call struct {
		tenant string
		stamps []uint64
	}
	var calls []call
	g := NewGate(Config{
		MinSampleRate: 1, // sampling off
		Admitted: func(tenant string, es []tracer.Entry) {
			c := call{tenant: tenant}
			for i := range es {
				c.stamps = append(c.stamps, es[i].Stamp)
			}
			calls = append(calls, c)
		},
	})

	es := []tracer.Entry{{Stamp: 1, TS: 10}, {Stamp: 2, TS: 20}}
	out := g.Filter(es)
	if len(out) != 2 {
		t.Fatalf("admitted %d, want 2", len(out))
	}
	if len(calls) != 1 || calls[0].tenant != DefaultTenant {
		t.Fatalf("hook calls = %+v, want one call for %q", calls, DefaultTenant)
	}
	if len(calls[0].stamps) != 2 || calls[0].stamps[0] != 1 || calls[0].stamps[1] != 2 {
		t.Fatalf("hook saw stamps %v", calls[0].stamps)
	}

	g.SetTenant("alpha")
	g.Filter([]tracer.Entry{{Stamp: 3, TS: 30}})
	if len(calls) != 2 || calls[1].tenant != "alpha" {
		t.Fatalf("tenant attribution: %+v", calls)
	}

	// Nothing admitted → no call. Drive the controller to the
	// full-drop tier so the whole batch is shed.
	g.SetTenant("")
	for i := 0; i < 100; i++ {
		g.Evaluate(Pressure{SpillFill: 1})
	}
	if g.Tier() != TierStream {
		t.Fatalf("tier %v, want TierStream", g.Tier())
	}
	before := len(calls)
	out = g.Filter([]tracer.Entry{{Stamp: 4, TS: 40}})
	if len(out) != 0 {
		t.Fatalf("full-drop tier admitted %d events", len(out))
	}
	if len(calls) != before {
		t.Fatalf("hook fired for an empty admitted batch: %+v", calls[before:])
	}
}
