package overload

// bucket is a token bucket refilled on virtual time: capacity burst,
// refill rate tokens/second of the event stream's own TS clock, so the
// limiter behaves identically under replayed and live time. The zero
// value is a bucket that has never seen time; its first take fills it
// to burst (a fresh stream gets its full burst allowance).
type bucket struct {
	tokens float64
	lastNs uint64
	primed bool
}

// reset re-arms the bucket at full burst as of nowNs (used when a
// recycled bucket is handed to a new stream).
func (b *bucket) reset(nowNs uint64, burst float64) {
	b.tokens = burst
	b.lastNs = nowNs
	b.primed = true
}

// take refills by the virtual time elapsed since the last take and
// spends one token if available. Out-of-order timestamps never refill
// (the clock latches forward only) and never drain: a late event draws
// against the bucket's current state.
func (b *bucket) take(nowNs uint64, rate, burst float64) bool {
	if !b.primed {
		b.reset(nowNs, burst)
	} else if nowNs > b.lastNs {
		b.tokens += float64(nowNs-b.lastNs) * rate / 1e9
		if b.tokens > burst {
			b.tokens = burst
		}
		b.lastNs = nowNs
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
