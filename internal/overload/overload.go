// Package overload is the collector's adaptive overload-control
// subsystem: production tracing must degrade gracefully under load, not
// wedge the traced system (the XTrace non-invasive production framing)
// — and every event it gives up must stay attributable (the
// event-cap/truncation-counter idiom). A Gate sits between the
// supervisor's verifier and its ingest step and makes one decision per
// event, in a fixed order:
//
//  1. tiered load shedding — under sustained pressure the controller
//     escalates through three tiers (drop payload bytes → drop
//     low-priority categories → drop whole streams) and steps back down
//     only after a hysteresis cool-down, so the system never flaps
//     across the engage boundary;
//  2. head sampling — per-category keep rates fall smoothly from 1.0
//     toward Config.MinSampleRate as smoothed pressure rises, using a
//     deterministic credit accumulator (exactly ⌈r·n⌉ of n events pass
//     at rate r, evenly spread);
//  3. token buckets — hard per-category and per-stream rate limits with
//     configurable burst, refilled on the events' own virtual
//     timestamps so replayed and live time behave identically.
//
// Every sampling, throttle and shed decision increments a dedicated
// counter, so the accounting identity
//
//	Seen == Admitted + SampledOut + ThrottledCategory + ThrottledStream
//	        + ShedCategory + ShedStream
//
// holds exactly at all times (payload-stripped events count as admitted;
// only their bytes are recorded as shed).
//
// A Gate, like the Supervisor that drives it, is owned by a single
// goroutine; the obs mirror (obs.go) republishes its counters for
// concurrent /metrics scrapes.
package overload

import (
	"btrace/internal/tracer"
)

// Tier is the load-shedding escalation level.
type Tier uint8

// Shedding tiers, in engagement order. Each tier includes the measures
// of the tiers below it.
const (
	// TierNone sheds nothing; sampling and rate limits still apply.
	TierNone Tier = iota
	// TierPayload strips payload bytes from admitted events: the event
	// (header, stamp, identity) survives, its body does not.
	TierPayload
	// TierCategory drops events in low-priority categories entirely.
	TierCategory
	// TierStream drops whole streams: every event is shed except those
	// Config.Critical exempts. This is the full-drop tier a readiness
	// probe should report as not-ready.
	TierStream
)

// String returns the tier's short name.
func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierPayload:
		return "payload"
	case TierCategory:
		return "category"
	default:
		return "stream"
	}
}

// StorePressure is the durable store's contribution to the pressure
// vector: the write path's recent latencies and staging occupancy
// (store.Store.Pressure exports it).
type StorePressure struct {
	// AppendNs is a recent average (EWMA) of append stage+apply latency.
	AppendNs uint64
	// FsyncNs is a recent average (EWMA) of fsync latency.
	FsyncNs uint64
	// StagedFill is the staging arena's occupancy in [0, 1].
	StagedFill float64
	// Failed reports a sticky write-path failure: the store accepts no
	// more appends until reopened.
	Failed bool
}

// PressureSource is the optional surface a DumpStore may implement to
// feed the controller its backpressure signals (store.Store does).
type PressureSource interface {
	Pressure() StorePressure
}

// Pressure is one evaluation's input vector. The supervisor assembles
// it from the signals the pipeline already exports: spill ring depth,
// per-poll loss, and the store's write-path latencies.
type Pressure struct {
	// SpillFill is the spill ring's occupancy in [0, 1].
	SpillFill float64
	// LossRate is the fraction of events lost to overwrite in the most
	// recent poll: missed / (missed + polled), in [0, 1].
	LossRate float64
	// Store carries the durable store's signals (zero when no store).
	Store StorePressure
}

// Score collapses the vector to a scalar in [0, 1]: the worst channel
// wins, because any single saturated resource is overload regardless of
// how idle the others are. Latencies normalize against the configured
// budgets.
func (p Pressure) score(appendBudgetNs, fsyncBudgetNs uint64) float64 {
	s := p.SpillFill
	if p.LossRate > s {
		s = p.LossRate
	}
	if p.Store.StagedFill > s {
		s = p.Store.StagedFill
	}
	if v := float64(p.Store.AppendNs) / float64(appendBudgetNs); v > s {
		s = v
	}
	if v := float64(p.Store.FsyncNs) / float64(fsyncBudgetNs); v > s {
		s = v
	}
	if p.Store.Failed {
		s = 1
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Config configures a Gate. Zero values select the documented defaults.
type Config struct {
	// MinSampleRate is the floor the controller may drive per-category
	// keep rates down to under full pressure (default 0.05; 1 disables
	// dynamic sampling entirely).
	MinSampleRate float64
	// SampleStart is the smoothed pressure at which keep rates begin to
	// fall below 1.0 (default 0.5).
	SampleStart float64

	// RatePerSec is the per-category token refill rate in events per
	// second of virtual time (0 = no category rate limit).
	RatePerSec float64
	// Burst is the per-category bucket capacity (default 2×RatePerSec,
	// minimum 1).
	Burst float64
	// StreamRatePerSec is the per-stream (per-TID) token refill rate
	// (0 = no stream rate limit).
	StreamRatePerSec float64
	// StreamBurst is the per-stream bucket capacity (default
	// 2×StreamRatePerSec, minimum 1).
	StreamBurst float64
	// MaxStreams bounds the per-stream bucket table; beyond it the
	// stalest stream's bucket is recycled (default 1024).
	MaxStreams int

	// EngagePressure is the score at or above which an evaluation counts
	// toward escalation (default 0.75).
	EngagePressure float64
	// DisengagePressure is the score at or below which an evaluation
	// counts toward release (default 0.35). Scores between the two
	// thresholds hold the current tier — that band is the hysteresis.
	DisengagePressure float64
	// EngageAfter is the number of consecutive hot evaluations required
	// per tier escalation (default 3).
	EngageAfter int
	// CooldownEvals is the number of consecutive cool evaluations
	// required per tier release (default 8). Releases are deliberately
	// slower than engagements: shedding too little wedges the system,
	// shedding too long only costs detail.
	CooldownEvals int
	// Smoothing is the EWMA coefficient applied to the pressure score
	// before it drives sampling rates, in (0, 1] (default 0.5; 1 =
	// unsmoothed).
	Smoothing float64

	// AppendBudgetNs and FsyncBudgetNs normalize the store latencies to
	// pressure: a latency at budget reads as pressure 1.0 (defaults
	// 1 ms and 20 ms).
	AppendBudgetNs uint64
	FsyncBudgetNs  uint64

	// Admitted, when set, receives every non-empty admitted batch at the
	// end of Filter, labeled with the tenant the batch was attributed to
	// — the post-gate fan-out seam live-tail subscriptions hang off.
	// The slice is borrowed (it aliases Filter's input, whose payloads
	// may live in a reusable arena): the hook must copy anything it
	// retains, and it runs on the gate's driving goroutine, so it must
	// not block.
	Admitted func(tenant string, es []tracer.Entry)

	// LowPriority classifies events shed at TierCategory. The default
	// treats detail level ≥ 3 (the paper's most verbose level) as low
	// priority.
	LowPriority func(category, level uint8) bool
	// Critical exempts events from TierStream's full drop (and from
	// sampling and rate limits — a watchdog heartbeat must never be the
	// event the tracer dropped). Default: nothing is critical.
	Critical func(category, level uint8) bool
}

func (c Config) withDefaults() Config {
	if c.MinSampleRate <= 0 {
		c.MinSampleRate = 0.05
	}
	if c.MinSampleRate > 1 {
		c.MinSampleRate = 1
	}
	if c.SampleStart <= 0 {
		c.SampleStart = 0.5
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.RatePerSec > 0 && c.Burst < 1 {
		c.Burst = 1
	}
	if c.StreamBurst <= 0 {
		c.StreamBurst = 2 * c.StreamRatePerSec
	}
	if c.StreamRatePerSec > 0 && c.StreamBurst < 1 {
		c.StreamBurst = 1
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1024
	}
	if c.EngagePressure <= 0 {
		c.EngagePressure = 0.75
	}
	if c.DisengagePressure <= 0 {
		c.DisengagePressure = 0.35
	}
	if c.DisengagePressure >= c.EngagePressure {
		c.DisengagePressure = c.EngagePressure / 2
	}
	if c.EngageAfter <= 0 {
		c.EngageAfter = 3
	}
	if c.CooldownEvals <= 0 {
		c.CooldownEvals = 8
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.5
	}
	if c.AppendBudgetNs == 0 {
		c.AppendBudgetNs = 1_000_000
	}
	if c.FsyncBudgetNs == 0 {
		c.FsyncBudgetNs = 20_000_000
	}
	if c.LowPriority == nil {
		c.LowPriority = func(_, level uint8) bool { return level >= 3 }
	}
	if c.Critical == nil {
		c.Critical = func(_, _ uint8) bool { return false }
	}
	return c
}

// Stats counts every decision the gate made. The accounting identity
//
//	Seen == Admitted + SampledOut + ThrottledCategory + ThrottledStream
//	        + ShedCategory + ShedStream
//
// holds exactly after every Filter call.
type Stats struct {
	Seen     uint64 // events offered to the gate
	Admitted uint64 // events passed through (possibly payload-stripped)

	SampledOut        uint64 // events dropped by head sampling
	ThrottledCategory uint64 // events dropped by a category token bucket
	ThrottledStream   uint64 // events dropped by a stream token bucket
	ShedCategory      uint64 // events dropped at TierCategory
	ShedStream        uint64 // events dropped at TierStream

	PayloadShedEvents uint64 // admitted events whose payload was stripped
	PayloadShedBytes  uint64 // payload bytes stripped at TierPayload

	Evaluations     uint64 // controller evaluations
	TierEngagements uint64 // tier escalations (t → t+1)
	TierReleases    uint64 // tier releases (t → t−1)
}

// dropped returns the total events the gate refused.
func (s Stats) dropped() uint64 {
	return s.SampledOut + s.ThrottledCategory + s.ThrottledStream +
		s.ShedCategory + s.ShedStream
}

// Gate is the overload-control decision point. It is driven by the
// single supervisor goroutine; consistency of the concurrent /metrics
// view comes from the obs mirror, not from locks here.
type Gate struct {
	cfg Config
	ctl controller

	// sampleAcc accumulates per-category sampling credit (credit
	// sampling: acc += rate; admit and spend 1 when acc ≥ 1).
	sampleAcc [256]float64
	// catBuckets holds the per-category token buckets, allocated lazily.
	catBuckets [256]bucket
	// streams holds the per-TID buckets, bounded by MaxStreams.
	streams map[uint32]*bucket

	stats Stats
	// published is the stats snapshot last folded into obs.
	published Stats
	obs       *gateObs

	// tenant names the owner of the batches currently being filtered
	// (see SetTenant); tenants is the bounded attribution table and
	// publishedTenants the snapshot last folded into obs.
	tenant           string
	tenants          map[string]*TenantStats
	publishedTenants map[string]TenantStats
}

// NewGate creates a Gate.
func NewGate(cfg Config) *Gate {
	g := &Gate{
		cfg:     cfg.withDefaults(),
		streams: make(map[uint32]*bucket),
		obs:     newGateObs(),
	}
	g.ctl.init(&g.cfg)
	g.registerObs()
	return g
}

// Evaluate feeds one pressure observation to the controller. Call it
// once per supervisor step, before Filter.
func (g *Gate) Evaluate(p Pressure) {
	score := p.score(g.cfg.AppendBudgetNs, g.cfg.FsyncBudgetNs)
	g.stats.Evaluations++
	engaged, released := g.ctl.evaluate(score)
	if engaged {
		g.stats.TierEngagements++
	}
	if released {
		g.stats.TierReleases++
	}
	g.publishObs()
}

// Tier returns the currently engaged shedding tier.
func (g *Gate) Tier() Tier { return g.ctl.tier }

// SmoothedPressure returns the EWMA-smoothed pressure score driving the
// sampling rates.
func (g *Gate) SmoothedPressure() float64 { return g.ctl.smoothed }

// SampleRates returns the current keep rates for normal- and
// low-priority events.
func (g *Gate) SampleRates() (normal, low float64) {
	return g.sampleRate(false), g.sampleRate(true)
}

// Stats returns a snapshot of the gate's counters.
func (g *Gate) Stats() Stats { return g.stats }

// sampleRate maps smoothed pressure to a keep rate in
// [MinSampleRate, 1]. Low-priority categories decay twice as fast: the
// first detail to give up is the detail worth the least.
func (g *Gate) sampleRate(low bool) float64 {
	p := g.ctl.smoothed
	start := g.cfg.SampleStart
	if p <= start {
		return 1
	}
	x := (p - start) / (1 - start)
	if low {
		x *= 2
	}
	r := 1 - x*(1-g.cfg.MinSampleRate)
	if r < g.cfg.MinSampleRate {
		r = g.cfg.MinSampleRate
	}
	return r
}

// Filter applies the gate to one verified batch, in place: the returned
// slice aliases es. Every event is counted exactly once — admitted or
// attributed to the specific mechanism that refused it.
func (g *Gate) Filter(es []tracer.Entry) []tracer.Entry {
	if len(es) == 0 {
		return es
	}
	before := g.stats
	tier := g.ctl.tier
	out := es[:0]
	for i := range es {
		e := &es[i]
		g.stats.Seen++
		if g.cfg.Critical(e.Category, e.Level) {
			g.stats.Admitted++
			out = append(out, *e)
			continue
		}
		if tier >= TierStream {
			g.stats.ShedStream++
			continue
		}
		if tier >= TierCategory && g.cfg.LowPriority(e.Category, e.Level) {
			g.stats.ShedCategory++
			continue
		}
		if !g.sampleAdmit(e) {
			g.stats.SampledOut++
			continue
		}
		if g.cfg.RatePerSec > 0 &&
			!g.catBuckets[e.Category].take(e.TS, g.cfg.RatePerSec, g.cfg.Burst) {
			g.stats.ThrottledCategory++
			continue
		}
		if g.cfg.StreamRatePerSec > 0 && !g.streamTake(e.TID, e.TS) {
			g.stats.ThrottledStream++
			continue
		}
		if tier >= TierPayload && len(e.Payload) > 0 {
			g.stats.PayloadShedEvents++
			g.stats.PayloadShedBytes += uint64(len(e.Payload))
			e.Payload = nil
		}
		g.stats.Admitted++
		out = append(out, *e)
	}
	g.attributeTenant(before)
	g.publishObs()
	if g.cfg.Admitted != nil && len(out) > 0 {
		tenant := g.tenant
		if tenant == "" {
			tenant = DefaultTenant
		}
		g.cfg.Admitted(tenant, out)
	}
	return out
}

// sampleAdmit draws the head-sampling decision for e via the
// per-category credit accumulator: deterministic, and exact over any
// window (rate r admits ⌈r·n⌉ of n events).
func (g *Gate) sampleAdmit(e *tracer.Entry) bool {
	r := g.sampleRate(g.cfg.LowPriority(e.Category, e.Level))
	if r >= 1 {
		return true
	}
	acc := g.sampleAcc[e.Category] + r
	if acc >= 1 {
		g.sampleAcc[e.Category] = acc - 1
		return true
	}
	g.sampleAcc[e.Category] = acc
	return false
}

// streamTake draws from the per-stream bucket, creating (or recycling)
// it as needed within the MaxStreams bound.
func (g *Gate) streamTake(tid uint32, ts uint64) bool {
	b, ok := g.streams[tid]
	if !ok {
		if len(g.streams) >= g.cfg.MaxStreams {
			b = g.evictStalestStream()
		} else {
			b = &bucket{}
		}
		b.reset(ts, g.cfg.StreamBurst)
		g.streams[tid] = b
	}
	return b.take(ts, g.cfg.StreamRatePerSec, g.cfg.StreamBurst)
}

// evictStalestStream removes and returns the bucket whose last refill
// is oldest in virtual time — the stream most likely gone.
func (g *Gate) evictStalestStream() *bucket {
	var (
		stalest   uint32
		oldest    uint64
		found     bool
		victimBkt *bucket
	)
	for tid, b := range g.streams {
		if !found || b.lastNs < oldest {
			found, oldest, stalest, victimBkt = true, b.lastNs, tid, b
		}
	}
	delete(g.streams, stalest)
	return victimBkt
}

// ActiveStreams returns the number of per-stream buckets currently
// tracked.
func (g *Gate) ActiveStreams() int { return len(g.streams) }
