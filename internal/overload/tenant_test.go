package overload

import (
	"fmt"
	"strings"
	"testing"

	"btrace/internal/obs"
	"btrace/internal/tracer"
)

func tenantBatch(n int, startStamp uint64) []tracer.Entry {
	es := make([]tracer.Entry, n)
	for i := range es {
		es[i] = tracer.Entry{Stamp: startStamp + uint64(i), TS: (startStamp + uint64(i)) * 1000,
			TID: 7, Category: 3, Level: 1}
	}
	return es
}

func TestTenantAttributionExact(t *testing.T) {
	g := NewGate(Config{MinSampleRate: 1})
	g.SetTenant("alpha")
	g.Filter(tenantBatch(10, 1))
	g.SetTenant("beta")
	g.Filter(tenantBatch(4, 100))
	g.SetTenant("") // empty falls back to the default tenant
	g.Filter(tenantBatch(3, 200))

	ts := g.TenantStats()
	if got := ts["alpha"]; got.Seen != 10 || got.Admitted != 10 || got.Dropped != 0 {
		t.Fatalf("alpha stats %+v", got)
	}
	if got := ts["beta"]; got.Seen != 4 || got.Admitted != 4 {
		t.Fatalf("beta stats %+v", got)
	}
	if got := ts[DefaultTenant]; got.Seen != 3 {
		t.Fatalf("default-tenant stats %+v", got)
	}

	// Per-tenant accounting must tile the global accounting exactly.
	var seen, admitted, dropped uint64
	for _, s := range ts {
		seen += s.Seen
		admitted += s.Admitted
		dropped += s.Dropped
	}
	gs := g.Stats()
	if seen != gs.Seen || admitted != gs.Admitted || dropped != gs.dropped() {
		t.Fatalf("tenant totals (%d/%d/%d) != gate totals (%d/%d/%d)",
			seen, admitted, dropped, gs.Seen, gs.Admitted, gs.dropped())
	}
}

func TestTenantAttributionCountsDrops(t *testing.T) {
	// One token per virtual second with burst 1: a same-timestamp burst
	// admits one event and throttles the rest, all booked to the tenant.
	g := NewGate(Config{MinSampleRate: 1, RatePerSec: 1, Burst: 1})
	es := make([]tracer.Entry, 8)
	for i := range es {
		es[i] = tracer.Entry{Stamp: uint64(i + 1), TS: 1000, TID: 9, Category: 5, Level: 1}
	}
	g.SetTenant("noisy")
	g.Filter(es)
	got := g.TenantStats()["noisy"]
	if got.Seen != 8 || got.Admitted != 1 || got.Dropped != 7 {
		t.Fatalf("noisy stats %+v, want Seen 8 Admitted 1 Dropped 7", got)
	}
}

func TestTenantTableBounded(t *testing.T) {
	g := NewGate(Config{MinSampleRate: 1})
	for i := 0; i < MaxTenants+16; i++ {
		g.SetTenant(fmt.Sprintf("tenant-%03d", i))
		g.Filter(tenantBatch(1, uint64(i*10+1)))
	}
	ts := g.TenantStats()
	if len(ts) > MaxTenants+1 {
		t.Fatalf("tenant table grew to %d entries, bound is %d + overflow", len(ts), MaxTenants)
	}
	if got := ts[TenantOverflow]; got.Seen != 16 {
		t.Fatalf("overflow bucket saw %d events, want 16", got.Seen)
	}
}

func TestTenantObsSeries(t *testing.T) {
	g := NewGate(Config{MinSampleRate: 1})
	g.SetTenant("acme")
	g.Filter(tenantBatch(5, 1))

	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `btrace_overload_tenant_seen_total{tenant="acme"} 5`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("metrics output missing %q", want)
	}
}
