package overload

import (
	"fmt"
	"runtime"
	"sync"

	"btrace/internal/obs"
)

// gateObs mirrors the gate's Stats (plus the controller gauges) into
// obs primitives. The Gate is single-goroutine and keeps its stats as a
// plain struct; once per Filter/Evaluate it folds the accumulated
// deltas into these atomic counters so the /metrics scraper can read
// them concurrently without racing the pipeline.
//
// Like supObs in internal/collect, gateObs is allocated separately from
// the Gate and is what the registry's collector closure captures,
// keeping the Gate finalizable; the finalizer folds these counters into
// the retired totals.
type gateObs struct {
	seen     *obs.Counter
	admitted *obs.Counter

	sampledOut        *obs.Counter
	throttledCategory *obs.Counter
	throttledStream   *obs.Counter
	shedCategory      *obs.Counter
	shedStream        *obs.Counter

	payloadShedEvents *obs.Counter
	payloadShedBytes  *obs.Counter

	evaluations     *obs.Counter
	tierEngagements *obs.Counter
	tierReleases    *obs.Counter

	// tier is the engaged shedding tier; pressureMilli and the two
	// rate gauges carry the controller's continuous outputs ×1000
	// (obs.Gauge is integral).
	tier             obs.Gauge
	pressureMilli    obs.Gauge
	sampleRateMilli  obs.Gauge
	sampleRateLowMil obs.Gauge
	activeStreams    obs.Gauge

	// tenants mirrors the gate's per-tenant attribution table. The map
	// is the one piece of gateObs written by the pipeline goroutine and
	// read by the scraper, so it carries its own lock; the counters
	// inside stay atomic like every other counter here.
	tenantMu sync.Mutex
	tenants  map[string]*tenantObs
}

// tenantObs is one tenant's mirrored counters.
type tenantObs struct {
	seen     *obs.Counter
	admitted *obs.Counter
	dropped  *obs.Counter
}

func newGateObs() *gateObs {
	return &gateObs{
		seen:              obs.NewCounter(1),
		admitted:          obs.NewCounter(1),
		sampledOut:        obs.NewCounter(1),
		throttledCategory: obs.NewCounter(1),
		throttledStream:   obs.NewCounter(1),
		shedCategory:      obs.NewCounter(1),
		shedStream:        obs.NewCounter(1),
		payloadShedEvents: obs.NewCounter(1),
		payloadShedBytes:  obs.NewCounter(1),
		evaluations:       obs.NewCounter(1),
		tierEngagements:   obs.NewCounter(1),
		tierReleases:      obs.NewCounter(1),
	}
}

// collect emits the gate's series. It runs under the registry lock and
// must not reference the Gate (see type comment).
func (o *gateObs) collect(e *obs.Emitter) {
	e.Counter("btrace_overload_seen_total", "events offered to the overload gate", o.seen.Load())
	e.Counter("btrace_overload_admitted_total", "events admitted by the overload gate", o.admitted.Load())
	e.Counter("btrace_overload_sampled_out_total", "events dropped by head sampling", o.sampledOut.Load())
	e.Counter("btrace_overload_throttled_category_total", "events dropped by a category token bucket", o.throttledCategory.Load())
	e.Counter("btrace_overload_throttled_stream_total", "events dropped by a stream token bucket", o.throttledStream.Load())
	e.Counter("btrace_overload_shed_category_total", "events shed at the category tier", o.shedCategory.Load())
	e.Counter("btrace_overload_shed_stream_total", "events shed at the stream tier", o.shedStream.Load())
	e.Counter("btrace_overload_payload_shed_events_total", "admitted events whose payload was stripped", o.payloadShedEvents.Load())
	e.Counter("btrace_overload_payload_shed_bytes_total", "payload bytes stripped at the payload tier", o.payloadShedBytes.Load())
	e.Counter("btrace_overload_evaluations_total", "controller pressure evaluations", o.evaluations.Load())
	e.Counter("btrace_overload_tier_engagements_total", "shed tier escalations", o.tierEngagements.Load())
	e.Counter("btrace_overload_tier_releases_total", "shed tier releases", o.tierReleases.Load())
	e.Gauge("btrace_overload_shed_tier", "engaged shedding tier (0 none, 1 payload, 2 category, 3 stream)", float64(o.tier.Load()))
	e.Gauge("btrace_overload_pressure", "smoothed pressure score", float64(o.pressureMilli.Load())/1000)
	e.Gauge("btrace_overload_sample_rate", "current keep rate for normal-priority events", float64(o.sampleRateMilli.Load())/1000)
	e.Gauge("btrace_overload_sample_rate_low", "current keep rate for low-priority events", float64(o.sampleRateLowMil.Load())/1000)
	e.Gauge("btrace_overload_streams", "per-stream token buckets tracked", float64(o.activeStreams.Load()))
	e.Gauge("btrace_overload_gates", "live overload gates", 1)
	o.tenantMu.Lock()
	for name, t := range o.tenants {
		label := fmt.Sprintf("{tenant=%q}", name)
		e.Counter("btrace_overload_tenant_seen_total"+label, "events offered to the gate, by tenant", t.seen.Load())
		e.Counter("btrace_overload_tenant_admitted_total"+label, "events admitted by the gate, by tenant", t.admitted.Load())
		e.Counter("btrace_overload_tenant_dropped_total"+label, "events the gate refused, by tenant", t.dropped.Load())
	}
	o.tenantMu.Unlock()
}

// publishObs folds the stat deltas accumulated since the last publish
// into the process-wide counters and refreshes the controller gauges.
// Called once per Filter and per Evaluate — never per event.
func (g *Gate) publishObs() {
	o := g.obs
	cur, last := g.stats, g.published
	o.seen.Add(cur.Seen - last.Seen)
	o.admitted.Add(cur.Admitted - last.Admitted)
	o.sampledOut.Add(cur.SampledOut - last.SampledOut)
	o.throttledCategory.Add(cur.ThrottledCategory - last.ThrottledCategory)
	o.throttledStream.Add(cur.ThrottledStream - last.ThrottledStream)
	o.shedCategory.Add(cur.ShedCategory - last.ShedCategory)
	o.shedStream.Add(cur.ShedStream - last.ShedStream)
	o.payloadShedEvents.Add(cur.PayloadShedEvents - last.PayloadShedEvents)
	o.payloadShedBytes.Add(cur.PayloadShedBytes - last.PayloadShedBytes)
	o.evaluations.Add(cur.Evaluations - last.Evaluations)
	o.tierEngagements.Add(cur.TierEngagements - last.TierEngagements)
	o.tierReleases.Add(cur.TierReleases - last.TierReleases)
	g.published = cur

	o.tier.Set(int64(g.ctl.tier))
	o.pressureMilli.Set(int64(g.ctl.smoothed * 1000))
	normal, low := g.SampleRates()
	o.sampleRateMilli.Set(int64(normal * 1000))
	o.sampleRateLowMil.Set(int64(low * 1000))
	o.activeStreams.Set(int64(len(g.streams)))
	g.publishTenantObs()
}

// publishTenantObs folds per-tenant stat deltas into the mirrored
// counters, creating series lazily as tenants appear. The gate's table
// is bounded (MaxTenants plus the overflow bucket), so the series set
// is too.
func (g *Gate) publishTenantObs() {
	if len(g.tenants) == 0 {
		return
	}
	o := g.obs
	o.tenantMu.Lock()
	if o.tenants == nil {
		o.tenants = make(map[string]*tenantObs)
	}
	for name, cur := range g.tenants {
		t := o.tenants[name]
		if t == nil {
			t = &tenantObs{seen: obs.NewCounter(1), admitted: obs.NewCounter(1), dropped: obs.NewCounter(1)}
			o.tenants[name] = t
		}
		last := g.publishedTenants[name]
		t.seen.Add(cur.Seen - last.Seen)
		t.admitted.Add(cur.Admitted - last.Admitted)
		t.dropped.Add(cur.Dropped - last.Dropped)
	}
	o.tenantMu.Unlock()
	if g.publishedTenants == nil {
		g.publishedTenants = make(map[string]TenantStats)
	}
	for name, cur := range g.tenants {
		g.publishedTenants[name] = *cur
	}
}

// registerObs wires the gate's counters into the process-wide registry;
// the finalizer folds them into the retired totals when the Gate
// becomes unreachable. The collector closure captures only the
// counters, never g, so registration does not defeat the finalizer.
func (g *Gate) registerObs() {
	reg := obs.Default()
	id := reg.Register(g.obs.collect)
	runtime.SetFinalizer(g, func(*Gate) { reg.Fold(id) })
}
