package btql

// Grammar (everything is case-sensitive, whitespace-insensitive):
//
//	query    := filter? ( '|' agg )?
//	filter   := '{' orExpr '}' | orExpr
//	orExpr   := andExpr ( '||' andExpr )*
//	andExpr  := unary ( '&&' unary )*
//	unary    := '!' unary | '(' orExpr ')' | pred
//	pred     := field cmpOp number
//	          | 'payload' ('contains'|'prefix') string
//	field    := 'stamp' | 'time' | 'core' | 'tid' | 'category' | 'level'
//	cmpOp    := '==' | '!=' | '<' | '<=' | '>' | '>='
//	agg      := 'count' '(' ')'
//	          | 'rate' '(' number ')'
//	          | 'topk' '(' number ',' field ')'
//	number   := [0-9]+ ('ns'|'us'|'ms'|'s'|'m')?
//
// The braces form ({ ... }) is accepted for TraceQL familiarity and is
// equivalent to the bare filter.

const (
	// maxDepth bounds parser recursion so adversarial inputs (fuzzers,
	// untrusted ?q=) cannot blow the stack.
	maxDepth = 64
	// MaxQueryLen bounds accepted query source length.
	MaxQueryLen = 4096
	// maxTopK bounds topk fan-out so one query cannot hold an unbounded
	// value table.
	maxTopK = 1024
)

var fieldByName = map[string]Field{
	"stamp":    FStamp,
	"time":     FTime,
	"core":     FCore,
	"tid":      FTID,
	"category": FCategory,
	"level":    FLevel,
	"payload":  FPayload,
}

type parser struct {
	lex lexer
	tok token // lookahead
}

// Parse parses a BTQL query. An empty (or all-whitespace) source yields a
// query with a nil Filter that matches everything.
func Parse(src string) (*Query, error) {
	if len(src) > MaxQueryLen {
		return nil, errAt(MaxQueryLen, "query longer than %d bytes", MaxQueryLen)
	}
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.tok.kind != tEOF && p.tok.kind != tPipe {
		braced := p.tok.kind == tLBrace
		if braced {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		e, err := p.parseOr(0)
		if err != nil {
			return nil, err
		}
		if braced {
			if p.tok.kind != tRBrace {
				return nil, errAt(p.tok.pos, "expected '}'")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		q.Filter = e
	}
	if p.tok.kind == tPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		agg, err := p.parseAgg()
		if err != nil {
			return nil, err
		}
		q.Agg = agg
	}
	if p.tok.kind != tEOF {
		return nil, errAt(p.tok.pos, "trailing input")
	}
	return q, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseOr(depth int) (Expr, error) {
	l, err := p.parseAnd(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tOrOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd(depth + 1)
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd(depth int) (Expr, error) {
	l, err := p.parseUnary(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tAndAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary(depth int) (Expr, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression nested deeper than %d", maxDepth)
	}
	switch p.tok.kind {
	case tBang:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr(depth + 1)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, errAt(p.tok.pos, "expected ')'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	case tIdent:
		return p.parsePred()
	default:
		return nil, errAt(p.tok.pos, "expected predicate")
	}
}

func (p *parser) parsePred() (Expr, error) {
	f, ok := fieldByName[p.tok.text]
	if !ok {
		return nil, errAt(p.tok.pos, "unknown field %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if f == FPayload {
		if p.tok.kind != tIdent || (p.tok.text != "contains" && p.tok.text != "prefix") {
			return nil, errAt(p.tok.pos, "payload supports 'contains' and 'prefix'")
		}
		prefix := p.tok.text == "prefix"
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tString {
			return nil, errAt(p.tok.pos, "expected quoted string")
		}
		needle := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &PayloadMatch{Prefix: prefix, Needle: needle}, nil
	}
	var op CmpOp
	switch p.tok.kind {
	case tEq:
		op = OpEq
	case tNe:
		op = OpNe
	case tLt:
		op = OpLt
	case tLe:
		op = OpLe
	case tGt:
		op = OpGt
	case tGe:
		op = OpGe
	default:
		return nil, errAt(p.tok.pos, "expected comparison operator after %q", f)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tNumber {
		return nil, errAt(p.tok.pos, "expected number")
	}
	v := p.tok.num
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &Cmp{Field: f, Op: op, Val: v}, nil
}

func (p *parser) parseAgg() (*AggSpec, error) {
	if p.tok.kind != tIdent {
		return nil, errAt(p.tok.pos, "expected aggregate (count, rate, topk)")
	}
	name, pos := p.tok.text, p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tLParen {
		return nil, errAt(p.tok.pos, "expected '(' after %q", name)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	spec := &AggSpec{}
	switch name {
	case "count":
		spec.Kind = AggCount
	case "rate":
		spec.Kind = AggRate
		if p.tok.kind != tNumber {
			return nil, errAt(p.tok.pos, "rate needs a window, e.g. rate(10ms)")
		}
		if p.tok.num == 0 {
			return nil, errAt(p.tok.pos, "rate window must be > 0")
		}
		spec.WindowNs = p.tok.num
		if err := p.advance(); err != nil {
			return nil, err
		}
	case "topk":
		spec.Kind = AggTopK
		if p.tok.kind != tNumber {
			return nil, errAt(p.tok.pos, "topk needs a count, e.g. topk(5, tid)")
		}
		if p.tok.num == 0 || p.tok.num > maxTopK {
			return nil, errAt(p.tok.pos, "topk count must be in [1,%d]", maxTopK)
		}
		spec.K = int(p.tok.num)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tComma {
			return nil, errAt(p.tok.pos, "expected ',' then a field")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tIdent {
			return nil, errAt(p.tok.pos, "expected field")
		}
		f, ok := fieldByName[p.tok.text]
		if !ok || f == FPayload || f == FStamp || f == FTime {
			return nil, errAt(p.tok.pos, "topk groups by core, tid, category, or level")
		}
		spec.Field = f
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, errAt(pos, "unknown aggregate %q", name)
	}
	if p.tok.kind != tRParen {
		return nil, errAt(p.tok.pos, "expected ')'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return spec, nil
}
