// Package btql implements the BTrace query language: a small composable
// filter + aggregate language over trace events, in the spirit of Tempo's
// TraceQL scaled down to BTrace's fixed event shape.
//
// A query is a boolean filter over the event fields, optionally piped into
// one aggregate:
//
//	category == 2 && time >= 5ms && payload contains "alloc"
//	core != 0 || tid == 4096
//	stamp >= 1000 && stamp < 2000 | count()
//	category == 3 | rate(10ms)
//	time < 1s | topk(5, tid)
//
// Queries parse to a typed AST (Expr) and compile to a Predicate that can be
// evaluated at three fidelities, matching the store's pruning ladder:
//
//   - MatchMeta: against file/block summaries (min/max ranges, presence
//     bitmaps, TID blooms) — tri-state, false means provably no match, so a
//     whole file or block can be skipped without touching its bytes.
//   - MatchHeader: against a decoded event header (no payload) — exact for
//     payload-free predicates, conservative otherwise.
//   - Match: against a full tracer.Entry — always exact.
package btql

import (
	"fmt"
	"strings"
)

// Field identifies one of the queryable event fields.
type Field uint8

const (
	FStamp Field = iota // global order stamp
	FTime               // raw timestamp (ns scale)
	FCore
	FTID
	FCategory
	FLevel
	FPayload // only valid in contains/prefix matches
)

var fieldNames = map[Field]string{
	FStamp:    "stamp",
	FTime:     "time",
	FCore:     "core",
	FTID:      "tid",
	FCategory: "category",
	FLevel:    "level",
	FPayload:  "payload",
}

func (f Field) String() string { return fieldNames[f] }

// CmpOp is a comparison operator in a Cmp node.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var cmpNames = map[CmpOp]string{
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

func (op CmpOp) String() string { return cmpNames[op] }

// Expr is a node in the filter AST. Expressions are immutable after Parse.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// And is the conjunction L && R.
type And struct{ L, R Expr }

// Or is the disjunction L || R.
type Or struct{ L, R Expr }

// Not is the negation !X.
type Not struct{ X Expr }

// Cmp compares a numeric field against a literal.
type Cmp struct {
	Field Field
	Op    CmpOp
	Val   uint64
}

// PayloadMatch is `payload contains "s"` (Prefix false) or
// `payload prefix "s"` (Prefix true).
type PayloadMatch struct {
	Prefix bool
	Needle string
}

func (*And) isExpr()          {}
func (*Or) isExpr()           {}
func (*Not) isExpr()          {}
func (*Cmp) isExpr()          {}
func (*PayloadMatch) isExpr() {}

// String renders the expression fully parenthesized; Parse(e.String())
// yields a structurally identical AST (the round-trip the fuzzer checks).
func (e *And) String() string { return "(" + e.L.String() + " && " + e.R.String() + ")" }
func (e *Or) String() string  { return "(" + e.L.String() + " || " + e.R.String() + ")" }
func (e *Not) String() string { return "!" + e.X.String() }

func (e *Cmp) String() string {
	return fmt.Sprintf("(%s %s %d)", e.Field, e.Op, e.Val)
}

func (e *PayloadMatch) String() string {
	op := "contains"
	if e.Prefix {
		op = "prefix"
	}
	return "(payload " + op + " " + quoteNeedle(e.Needle) + ")"
}

// quoteNeedle quotes a needle using only the escapes the BTQL lexer
// accepts (\" \\ \n \t \0 \xHH), so String() always reparses.
func quoteNeedle(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c < 0x20 || c >= 0x7f:
			const hex = "0123456789abcdef"
			b.WriteString(`\x`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// AggKind selects the aggregate operator of a query.
type AggKind uint8

const (
	AggCount AggKind = iota // count(): total matching events
	AggRate                 // rate(window): events per window bucket, by event time
	AggTopK                 // topk(n, field): most frequent field values
)

// AggSpec is the parsed aggregate stage of a query.
type AggSpec struct {
	Kind     AggKind
	WindowNs uint64 // AggRate: bucket width in nanoseconds
	K        int    // AggTopK: number of values to keep
	Field    Field  // AggTopK: core, tid, category, or level
}

func (a *AggSpec) String() string {
	switch a.Kind {
	case AggRate:
		return fmt.Sprintf("rate(%dns)", a.WindowNs)
	case AggTopK:
		return fmt.Sprintf("topk(%d, %s)", a.K, a.Field)
	default:
		return "count()"
	}
}

// Query is a parsed BTQL query: an optional filter and an optional aggregate.
// A nil Filter matches every event.
type Query struct {
	Filter Expr
	Agg    *AggSpec
}

func (q *Query) String() string {
	var b strings.Builder
	if q.Filter != nil {
		b.WriteString(q.Filter.String())
	}
	if q.Agg != nil {
		if q.Filter != nil {
			b.WriteString(" ")
		}
		b.WriteString("| ")
		b.WriteString(q.Agg.String())
	}
	return b.String()
}
