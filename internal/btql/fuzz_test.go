package btql

import (
	"reflect"
	"testing"
)

// FuzzBTQLParse checks that Parse never panics on arbitrary input, and that
// any query it accepts survives a String() → Parse round trip unchanged —
// the property the store relies on when it logs or forwards query text.
func FuzzBTQLParse(f *testing.F) {
	f.Add("category == 2 && time >= 5ms")
	f.Add(`payload contains "oom" || !(core == 0)`)
	f.Add("{ stamp >= 100 && stamp < 200 } | count()")
	f.Add("| topk(5, tid)")
	f.Add("tid == 4096 | rate(10ms)")
	f.Add("(((((core==1)))))")
	f.Add(`payload prefix "\"\\\n"`)
	f.Add("core == 18446744073709551615")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("String() of accepted query does not reparse: %q -> %q: %v", src, q.String(), err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round trip changed AST: %q -> %q", src, q.String())
		}
		// Compiling and probing must not panic either.
		p := Compile(q.Filter)
		p.MatchMeta(&Meta{MinStamp: 0, MaxStamp: ^uint64(0), MaxTS: ^uint64(0)})
		p.MatchHeader(1, 2, 3, 4, 5, 6)
	})
}
